# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-review/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("adt")
subdirs("graph")
subdirs("ir")
subdirs("andersen")
subdirs("memssa")
subdirs("svfg")
subdirs("core")
subdirs("checker")
subdirs("workload")
