//===- Checker.h - Source–sink value-flow bug checkers ----------*- C++ -*-===//
///
/// \file
/// A source–sink value-flow engine over the SVFG, parameterised by a
/// \c core::PointsToOracle (a solved whole-program analysis or a demand
/// query engine), plus four concrete checkers:
/// use-after-free, double-free, null-pointer dereference and memory leak.
/// The engine walks the same graph for every backend; all precision
/// differences come from the backend's points-to sets, which is exactly what
/// makes "vsfs is as precise as sfs and both beat ander" a measurable
/// property (see docs/CHECKERS.md for the full semantics).
///
/// The ground-truth types live here (they are plain site lists) so the
/// workload generator can emit them without linking the engine.
///
//===----------------------------------------------------------------------===//

#ifndef VSFS_CHECKER_CHECKER_H
#define VSFS_CHECKER_CHECKER_H

#include "core/PointerAnalysis.h"
#include "svfg/SVFG.h"

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace vsfs {
namespace checker {

enum class CheckKind : uint8_t {
  UseAfterFree, ///< load/store through a pointer to a freed object
  DoubleFree,   ///< free of an already-freed object
  NullDeref,    ///< deref of a pointer loaded from never-initialised memory
  Leak,         ///< heap allocation no free site may reach
  UninitRead,   ///< load that reads a cell no store ever initialises
  UntrackedFree ///< free whose pointee is not a heap allocation
};

constexpr uint32_t NumCheckKinds = 6;

/// Human-readable name ("use-after-free", ...).
const char *checkKindName(CheckKind K);
/// CLI flag spelling ("uaf", "dfree", "null", "leak", "uread", "ufree").
const char *checkKindFlag(CheckKind K);

/// Bit for \p K in a checker mask.
inline uint32_t checkBit(CheckKind K) { return 1u << static_cast<uint32_t>(K); }
constexpr uint32_t AllChecks = (1u << NumCheckKinds) - 1;
/// The four kinds the legacy \c ValueFlowChecker implements; the two newer
/// kinds (uread, ufree) exist only as taint specs (src/taint/), and
/// \c ValueFlowChecker::run ignores their bits.
constexpr uint32_t LegacyChecks = (1u << 4) - 1;

/// Parses a comma-separated spec ("uaf,null" or "all") into a mask.
/// Returns false (mask untouched) on an unknown kind.
bool parseCheckKinds(std::string_view Spec, uint32_t &Mask);

/// One reported bug.
struct Finding {
  CheckKind Kind;
  /// The offending instruction: the faulting load/store/free, or the
  /// allocation site for leaks.
  ir::InstID Sink;
  /// The object involved (freed / never-initialised / leaked).
  ir::ObjID Obj;
  /// Where the badness began: the free (uaf/dfree), the load that produced
  /// the null pointer (null-deref), or the allocation itself (leak).
  ir::InstID Source;
  /// The backend behind this finding was the auxiliary (flow-insensitive)
  /// analysis substituted by budget degradation, not the flow-sensitive
  /// analysis the user asked for: the finding is sound but reported at
  /// aux precision (expect more false positives). Metadata only — findings
  /// compare equal regardless, so degraded results stay comparable.
  bool AuxPrecision = false;

  bool operator==(const Finding &O) const {
    return Kind == O.Kind && Sink == O.Sink && Obj == O.Obj &&
           Source == O.Source;
  }
  bool operator<(const Finding &O) const {
    if (Kind != O.Kind)
      return Kind < O.Kind;
    if (Sink != O.Sink)
      return Sink < O.Sink;
    if (Obj != O.Obj)
      return Obj < O.Obj;
    return Source < O.Source;
  }
};

/// One-line rendering ("use-after-free at #42 (load %p): object o3 freed at
/// #40").
std::string printFinding(const ir::Module &M, const Finding &F);

/// A known bug site: what the workload generator injected (or a test
/// expects). Findings are matched against ground truth by (Kind, Sink).
struct BugSite {
  CheckKind Kind;
  ir::InstID Sink;
};

/// Ground truth for a generated program: every injected bug site plus every
/// heap allocation that is genuinely never freed (leaks).
struct GroundTruth {
  std::vector<BugSite> Sites;
};

/// Per-checker confusion counts against ground truth. Sites are compared at
/// (Kind, Sink) granularity: a sink reported for several objects counts
/// once.
struct CheckScore {
  uint32_t TP = 0; ///< ground-truth sites reported
  uint32_t FP = 0; ///< reported sites not in the ground truth
  uint32_t FN = 0; ///< ground-truth sites missed
};

std::array<CheckScore, NumCheckKinds>
scoreFindings(const std::vector<Finding> &Findings, const GroundTruth &GT);

/// The engine. Construct once per (SVFG, backend) pair and run with a mask
/// of requested checkers; findings come back sorted and deduplicated.
/// Implements the four legacy kinds only (the mask is clipped to
/// \c LegacyChecks); it stays as the differential oracle for the spec
/// engine in src/taint/, which reproduces it bit-identically.
class ValueFlowChecker {
public:
  ValueFlowChecker(const svfg::SVFG &G, const core::PointsToOracle &A)
      : G(G), A(A), M(G.module()) {}

  std::vector<Finding> run(uint32_t KindMask = AllChecks);

private:
  void checkFreeSites(uint32_t KindMask, std::vector<Finding> &Out);
  void checkNullDerefs(std::vector<Finding> &Out);
  void checkLeaks(std::vector<Finding> &Out);

  /// Objects freed by free site \p F under the backend: pt(freePtr) with
  /// field objects widened to their base allocation.
  PointsTo freedObjects(const ir::Instruction &Inst) const;

  const svfg::SVFG &G;
  const core::PointsToOracle &A;
  const ir::Module &M;
};

/// Convenience wrapper: build, run, return findings.
std::vector<Finding> runCheckers(const svfg::SVFG &G,
                                 const core::PointsToOracle &A,
                                 uint32_t KindMask = AllChecks);

} // namespace checker
} // namespace vsfs

#endif // VSFS_CHECKER_CHECKER_H
