//===- Checker.cpp - Source–sink value-flow bug checkers --------*- C++ -*-===//

#include "checker/Checker.h"

#include "ir/Printer.h"

#include <algorithm>
#include <cstdio>

using namespace vsfs;
using namespace vsfs::checker;
using namespace vsfs::ir;
using svfg::NodeID;
using svfg::NodeKind;

const char *vsfs::checker::checkKindName(CheckKind K) {
  switch (K) {
  case CheckKind::UseAfterFree:
    return "use-after-free";
  case CheckKind::DoubleFree:
    return "double-free";
  case CheckKind::NullDeref:
    return "null-deref";
  case CheckKind::Leak:
    return "leak";
  case CheckKind::UninitRead:
    return "uninit-read";
  case CheckKind::UntrackedFree:
    return "untracked-free";
  }
  return "<invalid>";
}

const char *vsfs::checker::checkKindFlag(CheckKind K) {
  switch (K) {
  case CheckKind::UseAfterFree:
    return "uaf";
  case CheckKind::DoubleFree:
    return "dfree";
  case CheckKind::NullDeref:
    return "null";
  case CheckKind::Leak:
    return "leak";
  case CheckKind::UninitRead:
    return "uread";
  case CheckKind::UntrackedFree:
    return "ufree";
  }
  return "<invalid>";
}

bool vsfs::checker::parseCheckKinds(std::string_view Spec, uint32_t &Mask) {
  uint32_t Out = 0;
  size_t Pos = 0;
  while (Pos <= Spec.size()) {
    size_t Comma = Spec.find(',', Pos);
    std::string_view Part = Spec.substr(
        Pos, Comma == std::string_view::npos ? Spec.size() - Pos : Comma - Pos);
    if (Part == "all") {
      Out |= AllChecks;
    } else {
      bool Known = false;
      for (uint32_t K = 0; K < NumCheckKinds; ++K)
        if (Part == checkKindFlag(static_cast<CheckKind>(K))) {
          Out |= 1u << K;
          Known = true;
        }
      if (!Known)
        return false;
    }
    if (Comma == std::string_view::npos)
      break;
    Pos = Comma + 1;
  }
  if (Out == 0)
    return false;
  Mask = Out;
  return true;
}

namespace {

std::string instRef(InstID I) {
  char Buf[16];
  std::snprintf(Buf, sizeof(Buf), "#%u", I);
  return Buf;
}

/// Field objects alias storage inside their base allocation; bug state
/// (freed-ness, leaked-ness) lives on the root allocation.
ObjID rootObject(const SymbolTable &Syms, ObjID O) {
  while (Syms.object(O).Kind == ObjKind::Field)
    O = Syms.object(O).Base;
  return O;
}

/// The pointer operand when \p Inst dereferences memory, else InvalidVar.
VarID derefPtr(const Instruction &Inst) {
  switch (Inst.Kind) {
  case InstKind::Load:
    return Inst.loadPtr();
  case InstKind::Store:
    return Inst.storePtr();
  case InstKind::Free:
    return Inst.freePtr();
  default:
    return InvalidVar;
  }
}

} // namespace

std::string vsfs::checker::printFinding(const Module &M, const Finding &F) {
  const Instruction &Sink = M.inst(F.Sink);
  std::string S = checkKindName(F.Kind);
  S += " at ";
  S += instRef(F.Sink);
  S += " (";
  S += instKindName(Sink.Kind);
  VarID P = derefPtr(Sink);
  if (P != InvalidVar) {
    S += " ";
    S += printVar(M, P);
  }
  S += ")";
  if (F.Obj != InvalidObj) {
    S += ": object '";
    S += M.symbols().object(F.Obj).Name;
    S += "'";
  }
  switch (F.Kind) {
  case CheckKind::UseAfterFree:
  case CheckKind::DoubleFree:
    S += " freed at " + instRef(F.Source);
    break;
  case CheckKind::NullDeref:
    S += " read uninitialised at " + instRef(F.Source);
    break;
  case CheckKind::Leak:
    S += " never freed";
    break;
  case CheckKind::UninitRead:
    S += " read before any initialisation";
    break;
  case CheckKind::UntrackedFree:
    S += " not heap-allocated";
    break;
  }
  if (F.AuxPrecision)
    S += " [aux-precision]";
  return S;
}

std::array<CheckScore, NumCheckKinds>
vsfs::checker::scoreFindings(const std::vector<Finding> &Findings,
                             const GroundTruth &GT) {
  std::array<CheckScore, NumCheckKinds> Scores{};
  // Site-granular comparison: (kind, sink) pairs.
  auto Key = [](CheckKind K, InstID Sink) {
    return (uint64_t(static_cast<uint32_t>(K)) << 32) | Sink;
  };
  std::vector<uint64_t> Reported, Expected;
  for (const Finding &F : Findings)
    Reported.push_back(Key(F.Kind, F.Sink));
  for (const BugSite &S : GT.Sites)
    Expected.push_back(Key(S.Kind, S.Sink));
  std::sort(Reported.begin(), Reported.end());
  Reported.erase(std::unique(Reported.begin(), Reported.end()),
                 Reported.end());
  std::sort(Expected.begin(), Expected.end());
  Expected.erase(std::unique(Expected.begin(), Expected.end()),
                 Expected.end());

  for (uint64_t R : Reported) {
    CheckScore &Sc = Scores[R >> 32];
    if (std::binary_search(Expected.begin(), Expected.end(), R))
      ++Sc.TP;
    else
      ++Sc.FP;
  }
  for (uint64_t E : Expected)
    if (!std::binary_search(Reported.begin(), Reported.end(), E))
      ++Scores[E >> 32].FN;
  return Scores;
}

PointsTo ValueFlowChecker::freedObjects(const Instruction &Inst) const {
  PointsTo Roots;
  for (uint32_t O : A.ptsOfVar(Inst.freePtr()))
    if (!M.symbols().isFunctionObject(O))
      Roots.set(rootObject(M.symbols(), O));
  return Roots;
}

void ValueFlowChecker::checkFreeSites(uint32_t KindMask,
                                      std::vector<Finding> &Out) {
  // Sources: every free site. For each object the backend says the free
  // deallocates, walk forward along that object's value-flow edges; any
  // dereference the walk reaches whose pointer (per the backend) may still
  // refer to the object is a use-after-free — or a double-free when the
  // reached instruction is another free.
  std::vector<char> Visited(G.numNodes(), 0);
  std::vector<NodeID> Stack;
  for (InstID F = 0; F < M.numInstructions(); ++F) {
    const Instruction &FreeInst = M.inst(F);
    if (FreeInst.Kind != InstKind::Free)
      continue;
    for (uint32_t O : freedObjects(FreeInst)) {
      std::fill(Visited.begin(), Visited.end(), 0);
      Stack.clear();
      NodeID Start = G.instNode(F);
      Visited[Start] = 1;
      Stack.push_back(Start);
      while (!Stack.empty()) {
        NodeID N = Stack.back();
        Stack.pop_back();
        for (const svfg::IndEdge &E : G.indirectSuccs(N)) {
          if (rootObject(M.symbols(), E.Obj) != O || Visited[E.Dst])
            continue;
          Visited[E.Dst] = 1;
          Stack.push_back(E.Dst);
          const svfg::Node &Node = G.node(E.Dst);
          if (Node.Kind != NodeKind::Inst)
            continue;
          const Instruction &Sink = M.inst(Node.Inst);
          VarID Ptr = derefPtr(Sink);
          if (Ptr == InvalidVar)
            continue;
          // Backend-sensitive sink test: may the dereferenced pointer still
          // refer to the freed allocation here?
          bool PointsAtFreed = false;
          for (uint32_t P : A.ptsOfVar(Ptr))
            if (!M.symbols().isFunctionObject(P) &&
                rootObject(M.symbols(), P) == O) {
              PointsAtFreed = true;
              break;
            }
          if (!PointsAtFreed)
            continue;
          CheckKind Kind = Sink.Kind == InstKind::Free
                               ? CheckKind::DoubleFree
                               : CheckKind::UseAfterFree;
          if (KindMask & checkBit(Kind))
            Out.push_back({Kind, Node.Inst, O, F});
        }
      }
    }
  }
}

void ValueFlowChecker::checkNullDerefs(std::vector<Finding> &Out) {
  // Sources: loads that may read a cell no store ever initialises — in this
  // IR (no null constant) an uninitialised cell models the null pointer.
  // The cell must be empty both at the load (backend state) and under the
  // auxiliary analysis: requiring aux-emptiness keeps the source set
  // monotone in the backend's precision (sfs sources ⊆ ander sources), so
  // a more precise backend can only remove findings. Null-ness then flows
  // through copies and phis to every dereference.
  const andersen::Andersen &Aux = G.auxAnalysis();
  const uint32_t NumVars = M.symbols().numVars();
  std::vector<char> MayNull(NumVars, 0);
  std::vector<InstID> NullSrc(NumVars, InvalidInst);
  std::vector<ObjID> NullObj(NumVars, InvalidObj);

  for (InstID I = 0; I < M.numInstructions(); ++I) {
    const Instruction &Inst = M.inst(I);
    if (Inst.Kind != InstKind::Load)
      continue;
    for (uint32_t O : A.ptsOfVar(Inst.loadPtr())) {
      if (M.symbols().isFunctionObject(O))
        continue;
      if (!Aux.ptsOfObj(O).empty() || !A.ptsOfObjAt(I, O).empty())
        continue;
      MayNull[Inst.Dst] = 1;
      NullSrc[Inst.Dst] = I;
      NullObj[Inst.Dst] = O;
      break;
    }
  }

  // Fixed point over the (acyclic-per-assignment, but phis may form loops)
  // copy/phi flows.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (InstID I = 0; I < M.numInstructions(); ++I) {
      const Instruction &Inst = M.inst(I);
      VarID Src = InvalidVar;
      if (Inst.Kind == InstKind::Copy) {
        if (MayNull[Inst.copySrc()])
          Src = Inst.copySrc();
      } else if (Inst.Kind == InstKind::Phi) {
        for (VarID S : Inst.phiSrcs())
          if (MayNull[S]) {
            Src = S;
            break;
          }
      }
      if (Src == InvalidVar || MayNull[Inst.Dst])
        continue;
      MayNull[Inst.Dst] = 1;
      NullSrc[Inst.Dst] = NullSrc[Src];
      NullObj[Inst.Dst] = NullObj[Src];
      Changed = true;
    }
  }

  for (InstID I = 0; I < M.numInstructions(); ++I) {
    VarID Ptr = derefPtr(M.inst(I));
    if (Ptr != InvalidVar && MayNull[Ptr])
      Out.push_back({CheckKind::NullDeref, I, NullObj[Ptr], NullSrc[Ptr]});
  }
}

void ValueFlowChecker::checkLeaks(std::vector<Finding> &Out) {
  // A heap allocation leaks when no free site's (backend) pointee set
  // covers it.
  const SymbolTable &Syms = M.symbols();
  PointsTo Covered;
  for (InstID I = 0; I < M.numInstructions(); ++I) {
    const Instruction &Inst = M.inst(I);
    if (Inst.Kind == InstKind::Free)
      Covered.unionWith(freedObjects(Inst));
  }
  for (ObjID O = 0; O < Syms.numObjects(); ++O) {
    const ObjInfo &Obj = Syms.object(O);
    if (Obj.Kind != ObjKind::Heap || Covered.test(O))
      continue;
    if (Obj.AllocSite == InvalidInst)
      continue;
    Out.push_back({CheckKind::Leak, Obj.AllocSite, O, Obj.AllocSite});
  }
}

std::vector<Finding> ValueFlowChecker::run(uint32_t KindMask) {
  // The legacy engine implements the first four kinds only; uread/ufree
  // bits are handled by the spec engine (src/taint/) and ignored here.
  KindMask &= LegacyChecks;
  std::vector<Finding> Out;
  if (KindMask & (checkBit(CheckKind::UseAfterFree) |
                  checkBit(CheckKind::DoubleFree)))
    checkFreeSites(KindMask, Out);
  if (KindMask & checkBit(CheckKind::NullDeref))
    checkNullDerefs(Out);
  if (KindMask & checkBit(CheckKind::Leak))
    checkLeaks(Out);
  std::sort(Out.begin(), Out.end());
  Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  return Out;
}

std::vector<Finding>
vsfs::checker::runCheckers(const svfg::SVFG &G,
                           const core::PointsToOracle &A,
                           uint32_t KindMask) {
  ValueFlowChecker C(G, A);
  return C.run(KindMask);
}
