//===- MemSSA.cpp - Interprocedural memory SSA ------------------*- C++ -*-===//

#include "memssa/MemSSA.h"

#include "adt/WorkList.h"
#include "graph/Dominators.h"
#include "graph/Graph.h"

#include <algorithm>
#include <cassert>

using namespace vsfs;
using namespace vsfs::memssa;
using namespace vsfs::ir;

namespace {

/// Drops function objects: their "memory" is code, never written or read as
/// pointer storage, so they take no part in memory SSA.
PointsTo filterStorageObjects(const PointsTo &P, const SymbolTable &Syms) {
  PointsTo Out;
  for (uint32_t O : P)
    if (!Syms.isFunctionObject(O))
      Out.set(O);
  return Out;
}

} // namespace

MemSSA::MemSSA(Module &M, const andersen::Andersen &Ander,
               ResourceBudget *Budget)
    : M(M), Ander(Ander), Budget(Budget) {
  computeModRef();
  annotate();
  for (FunID F = 0; F < M.numFunctions(); ++F) {
    if (Budget && !Budget->checkpoint())
      break; // Cancelled: partial form; the pipeline stops after this phase.
    buildFunctionSSA(F);
  }
  Stats.get("defs") = Defs.size();
  Stats.get("mus") = Mus.size();
}

void MemSSA::computeModRef() {
  const uint32_t NumFuns = M.numFunctions();
  Mod.assign(NumFuns, {});
  Ref.assign(NumFuns, {});

  // Direct mod/ref from loads and stores.
  for (InstID I = 0; I < M.numInstructions(); ++I) {
    const Instruction &Inst = M.inst(I);
    if (Inst.Kind == InstKind::Store)
      Mod[Inst.Parent].unionWith(
          filterStorageObjects(Ander.ptsOfVar(Inst.storePtr()), M.symbols()));
    else if (Inst.Kind == InstKind::Free)
      // A free redefines (kills) the objects its pointer may reference.
      Mod[Inst.Parent].unionWith(
          filterStorageObjects(Ander.ptsOfVar(Inst.freePtr()), M.symbols()));
    else if (Inst.Kind == InstKind::Load)
      Ref[Inst.Parent].unionWith(
          filterStorageObjects(Ander.ptsOfVar(Inst.loadPtr()), M.symbols()));
  }

  // Callee-transitive closure over the auxiliary call graph.
  adt::FIFOWorkList Work;
  for (FunID F = 0; F < NumFuns; ++F)
    Work.push(F);
  while (!Work.empty()) {
    if (Budget && !Budget->checkpoint())
      return; // Cancelled mid-closure; construction stops at the next gate.
    FunID F = Work.pop();
    for (InstID CS : Ander.callGraph().callers(F)) {
      FunID Caller = M.inst(CS).Parent;
      bool Changed = Mod[Caller].unionWith(Mod[F]);
      Changed |= Ref[Caller].unionWith(Ref[F]);
      if (Changed)
        Work.push(Caller);
    }
  }
}

void MemSSA::annotate() {
  for (InstID I = 0; I < M.numInstructions(); ++I) {
    if (Budget && !Budget->checkpoint())
      return; // Cancelled mid-annotation; construction stops shortly after.
    const Instruction &Inst = M.inst(I);
    switch (Inst.Kind) {
    case InstKind::Load: {
      PointsTo Objs =
          filterStorageObjects(Ander.ptsOfVar(Inst.loadPtr()), M.symbols());
      if (!Objs.empty())
        MuSets.emplace(I, std::move(Objs));
      break;
    }
    case InstKind::Store: {
      PointsTo Objs =
          filterStorageObjects(Ander.ptsOfVar(Inst.storePtr()), M.symbols());
      if (!Objs.empty())
        ChiSets.emplace(I, std::move(Objs));
      break;
    }
    case InstKind::Free: {
      // Table I's DELETE: a memory def with no incoming value — the χ kills
      // the freed object's contents (strong update) or merges (weak).
      PointsTo Objs =
          filterStorageObjects(Ander.ptsOfVar(Inst.freePtr()), M.symbols());
      if (!Objs.empty())
        ChiSets.emplace(I, std::move(Objs));
      break;
    }
    case InstKind::Call: {
      PointsTo ChiObjs, MuObjs;
      for (FunID Callee : Ander.callGraph().callees(I)) {
        ChiObjs.unionWith(Mod[Callee]);
        MuObjs.unionWith(Mod[Callee]);
        MuObjs.unionWith(Ref[Callee]);
      }
      if (!ChiObjs.empty())
        ChiSets.emplace(I, std::move(ChiObjs));
      if (!MuObjs.empty())
        MuSets.emplace(I, std::move(MuObjs));
      break;
    }
    case InstKind::FunEntry: {
      PointsTo Objs = Mod[Inst.Parent];
      Objs.unionWith(Ref[Inst.Parent]);
      if (!Objs.empty())
        ChiSets.emplace(I, std::move(Objs));
      break;
    }
    case InstKind::FunExit: {
      if (!Mod[Inst.Parent].empty())
        MuSets.emplace(I, Mod[Inst.Parent]);
      break;
    }
    default:
      break;
    }
  }
}

void MemSSA::buildFunctionSSA(FunID F) {
  const Function &Fun = M.function(F);
  if (Fun.Blocks.empty())
    return;
  const uint32_t NumBlocks = static_cast<uint32_t>(Fun.Blocks.size());

  // Block-level CFG.
  graph::AdjacencyGraph CFG(NumBlocks);
  for (BlockID B = 0; B < NumBlocks; ++B)
    for (BlockID S : Fun.Blocks[B].Succs)
      CFG.addEdge(B, S);
  graph::DominatorTree DT(CFG, Fun.entryBlock());
  graph::DominanceFrontier DF(CFG, DT);
  auto Preds = CFG.buildPredecessors();

  // Definition blocks per object (blocks holding a χ of that object).
  std::unordered_map<ObjID, std::vector<BlockID>> DefBlocks;
  for (BlockID B = 0; B < NumBlocks; ++B) {
    for (InstID I : Fun.Blocks[B].Insts) {
      auto It = ChiSets.find(I);
      if (It == ChiSets.end())
        continue;
      for (uint32_t O : It->second) {
        auto &Blocks = DefBlocks[O];
        if (Blocks.empty() || Blocks.back() != B)
          Blocks.push_back(B);
      }
    }
  }

  // MemPhi placement at iterated dominance frontiers (per object).
  // PhiAt maps (block, object) to the phi's DefID.
  std::unordered_map<uint64_t, DefID> PhiAt;
  std::vector<std::vector<DefID>> PhisInBlock(NumBlocks);
  std::vector<ObjID> SSAObjects;
  for (auto &[O, Blocks] : DefBlocks)
    SSAObjects.push_back(O);
  std::sort(SSAObjects.begin(), SSAObjects.end());
  for (ObjID O : SSAObjects) {
    for (BlockID B : DF.iteratedFrontier(DefBlocks[O])) {
      Def Phi;
      Phi.Kind = DefKind::MemPhi;
      Phi.Obj = O;
      Phi.Fun = F;
      Phi.Block = B;
      Phi.PhiOperands.assign(Preds[B].size(), InvalidDef);
      DefID Id = makeDef(std::move(Phi));
      PhiAt.emplace((uint64_t(B) << 32) | O, Id);
      PhisInBlock[B].push_back(Id);
      ++Stats.get("memphis");
    }
  }

  // Renaming: iterative preorder walk of the dominator tree with
  // per-object definition stacks.
  std::unordered_map<ObjID, std::vector<DefID>> Stacks;
  auto Top = [&Stacks](ObjID O) -> DefID {
    auto It = Stacks.find(O);
    if (It == Stacks.end() || It->second.empty())
      return InvalidDef;
    return It->second.back();
  };

  struct Frame {
    BlockID Block;
    size_t NextChild;
    std::vector<ObjID> Pushed; // Pop these when leaving the block.
  };
  std::vector<Frame> Walk;

  auto EnterBlock = [&](BlockID B) {
    Frame Fr{B, 0, {}};

    // 1. MemPhi definitions.
    for (DefID Phi : PhisInBlock[B]) {
      ObjID O = Defs[Phi].Obj;
      Stacks[O].push_back(Phi);
      Fr.Pushed.push_back(O);
    }

    // 2. Instructions: μ uses read the pre-state, χ defs replace it.
    for (InstID I : Fun.Blocks[B].Insts) {
      const Instruction &Inst = M.inst(I);
      auto MuIt = MuSets.find(I);
      if (MuIt != MuSets.end()) {
        MuKind MK = Inst.Kind == InstKind::Load    ? MuKind::LoadMu
                    : Inst.Kind == InstKind::Call ? MuKind::CallMu
                                                  : MuKind::ExitMu;
        for (uint32_t O : MuIt->second)
          Mus.push_back(Mu{MK, O, I, Top(O)});
      }
      auto ChiIt = ChiSets.find(I);
      if (ChiIt != ChiSets.end()) {
        DefKind DK = Inst.Kind == InstKind::Store ||
                             Inst.Kind == InstKind::Free
                         ? DefKind::StoreChi
                     : Inst.Kind == InstKind::Call ? DefKind::CallChi
                                                   : DefKind::EntryChi;
        for (uint32_t O : ChiIt->second) {
          Def D;
          D.Kind = DK;
          D.Obj = O;
          D.Fun = F;
          D.Inst = I;
          D.Block = B;
          // Entry χ receives its value from callers, not a local operand.
          D.Operand = DK == DefKind::EntryChi ? InvalidDef : Top(O);
          DefID Id = makeDef(std::move(D));
          Stacks[O].push_back(Id);
          Fr.Pushed.push_back(O);
        }
      }
    }

    // 3. Fill MemPhi operands in CFG successors.
    for (BlockID S : CFG.successors(B)) {
      // Position of B in S's predecessor list (duplicate edges fill the
      // first slot only; the values would be identical anyway).
      size_t PredIdx = 0;
      while (PredIdx < Preds[S].size() && Preds[S][PredIdx] != B)
        ++PredIdx;
      assert(PredIdx < Preds[S].size() && "successor lists inconsistent");
      for (DefID Phi : PhisInBlock[S])
        Defs[Phi].PhiOperands[PredIdx] = Top(Defs[Phi].Obj);
    }

    Walk.push_back(std::move(Fr));
  };

  EnterBlock(Fun.entryBlock());
  while (!Walk.empty()) {
    Frame &Fr = Walk.back();
    const auto &Children = DT.children(Fr.Block);
    if (Fr.NextChild < Children.size()) {
      BlockID Child = Children[Fr.NextChild++];
      EnterBlock(Child);
      continue;
    }
    // Leaving: pop this block's definitions in reverse.
    for (auto It = Fr.Pushed.rbegin(); It != Fr.Pushed.rend(); ++It)
      Stacks[*It].pop_back();
    Walk.pop_back();
  }
}
