//===- Validate.h - Memory SSA validator ------------------------*- C++ -*-===//
///
/// \file
/// Checks the structural invariants of a built memory SSA form:
///
///  - every use's reaching definition is for the same object and, when both
///    live in the same function, the definition dominates the use (MemPhis
///    sit at block tops; χ definitions take effect after their instruction,
///    and μ/χ-operand uses read the state before theirs);
///  - MemPhi operands come from (or dominate) the corresponding predecessor
///    block;
///  - μ/χ records agree with the per-instruction annotation sets;
///  - every annotated object of a reachable instruction has a record.
///
/// Like andersen::validateSolution, this re-derives the invariants with
/// none of the construction machinery (no renaming stacks, no iterated
/// frontiers), so construction bugs cannot hide from it.
///
//===----------------------------------------------------------------------===//

#ifndef VSFS_MEMSSA_VALIDATE_H
#define VSFS_MEMSSA_VALIDATE_H

#include "memssa/MemSSA.h"

#include <string>
#include <vector>

namespace vsfs {
namespace memssa {

/// Returns all violations found (empty means the SSA form is well formed).
std::vector<std::string> validateMemSSA(const ir::Module &M,
                                        const MemSSA &SSA);

} // namespace memssa
} // namespace vsfs

#endif // VSFS_MEMSSA_VALIDATE_H
