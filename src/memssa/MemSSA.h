//===- MemSSA.h - Interprocedural memory SSA --------------------*- C++ -*-===//
///
/// \file
/// Memory SSA construction over address-taken objects, following §II-B of
/// the paper (and Chow et al.'s χ/μ form):
///
///  - every STORE that may write object o (per the auxiliary Andersen
///    analysis) carries a χ(o); every LOAD that may read o carries a μ(o);
///  - FUNENTRY carries a χ(o) for every o the function may use or modify
///    (mod ∪ ref, callee-transitive), FUNEXIT a μ(o) for every o it may
///    modify (mod) — these mimic parameter passing/returning of objects;
///  - every CALL carries μ(o)/χ(o) for the mod/ref of its (auxiliary)
///    callees;
///  - MEMPHI definitions are placed at the iterated dominance frontier of
///    each object's definition blocks, then a standard dominator-tree
///    renaming pass links every use to its unique reaching definition.
///
/// The output is a flat list of definitions (entry-χ, store-χ, call-χ,
/// memphi) and uses (load-μ, call-μ, exit-μ), each use holding the DefID of
/// its reaching definition. The SVFG builder turns defs/uses into nodes and
/// def-use pairs into indirect, object-labelled edges.
///
//===----------------------------------------------------------------------===//

#ifndef VSFS_MEMSSA_MEMSSA_H
#define VSFS_MEMSSA_MEMSSA_H

#include "adt/PointsTo.h"
#include "andersen/Andersen.h"
#include "ir/Module.h"
#include "support/Budget.h"
#include "support/Statistics.h"

#include <unordered_map>
#include <vector>

namespace vsfs {
namespace memssa {

/// Dense ID of one SSA definition of one object.
using DefID = uint32_t;
constexpr DefID InvalidDef = UINT32_MAX;

/// Interprocedural memory SSA form.
class MemSSA {
public:
  enum class DefKind : uint8_t {
    EntryChi, ///< o defined at FunEntry (value arrives from callers)
    StoreChi, ///< o possibly (re)defined by a store
    CallChi,  ///< o possibly (re)defined by a call (value from callees)
    MemPhi    ///< control-flow merge of o's definitions
  };

  enum class MuKind : uint8_t {
    LoadMu, ///< o possibly read by a load
    CallMu, ///< o flows into a call's callees
    ExitMu  ///< o flows out of the function at FunExit
  };

  struct Def {
    DefKind Kind;
    ir::ObjID Obj;
    ir::FunID Fun;
    /// Labelling instruction: the store, the call, or the FunEntry. For
    /// MemPhi this is InvalidInst and Block identifies the join.
    ir::InstID Inst = ir::InvalidInst;
    ir::BlockID Block = ir::InvalidBlock;
    /// Prior reaching definition (StoreChi/CallChi operand); the weak-update
    /// path "new value ⊇ old value" flows along this def-use pair.
    DefID Operand = InvalidDef;
    /// MemPhi operands, one per CFG predecessor (InvalidDef when the object
    /// is undefined along that edge).
    std::vector<DefID> PhiOperands;
  };

  struct Mu {
    MuKind Kind;
    ir::ObjID Obj;
    ir::InstID Inst;
    DefID Reaching = InvalidDef;
  };

  /// Builds the SSA form. \p Ander must already be solved. \p Budget, when
  /// non-null, is polled during construction (not owned): on exhaustion
  /// the build stops early, leaving a partial form the pipeline must not
  /// hand to the SVFG builder (AnalysisContext::build checks the budget
  /// after this phase).
  MemSSA(ir::Module &M, const andersen::Andersen &Ander,
         ResourceBudget *Budget = nullptr);

  const std::vector<Def> &defs() const { return Defs; }
  const std::vector<Mu> &mus() const { return Mus; }

  /// Objects function \p F may modify / reference (callee-transitive).
  const PointsTo &modOf(ir::FunID F) const { return Mod[F]; }
  const PointsTo &refOf(ir::FunID F) const { return Ref[F]; }

  /// χ/μ object sets per annotated instruction (empty set if none).
  const PointsTo &chiObjs(ir::InstID I) const { return lookup(ChiSets, I); }
  const PointsTo &muObjs(ir::InstID I) const { return lookup(MuSets, I); }

  const StatGroup &stats() const { return Stats; }

private:
  static const PointsTo &lookup(const std::unordered_map<ir::InstID, PointsTo> &Map,
                                ir::InstID I) {
    static const PointsTo Empty;
    auto It = Map.find(I);
    return It == Map.end() ? Empty : It->second;
  }

  void computeModRef();
  void annotate();
  void buildFunctionSSA(ir::FunID F);

  DefID makeDef(Def D) {
    Defs.push_back(std::move(D));
    return static_cast<DefID>(Defs.size() - 1);
  }

  ir::Module &M;
  const andersen::Andersen &Ander;
  ResourceBudget *Budget;

  std::vector<PointsTo> Mod, Ref;
  std::unordered_map<ir::InstID, PointsTo> ChiSets, MuSets;

  std::vector<Def> Defs;
  std::vector<Mu> Mus;
  StatGroup Stats{"memssa"};
};

} // namespace memssa
} // namespace vsfs

#endif // VSFS_MEMSSA_MEMSSA_H
