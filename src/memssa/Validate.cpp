//===- Validate.cpp - Memory SSA validator ----------------------*- C++ -*-===//

#include "memssa/Validate.h"

#include "graph/Dominators.h"
#include "graph/Graph.h"
#include "ir/Printer.h"

#include <memory>
#include <unordered_map>

using namespace vsfs;
using namespace vsfs::memssa;
using namespace vsfs::ir;

namespace {

/// Per-function dominance context with instruction positions.
struct FunContext {
  std::unique_ptr<graph::DominatorTree> DT;
  std::vector<std::vector<BlockID>> Preds;
  /// Instruction -> (block, index within block).
  std::unordered_map<InstID, std::pair<BlockID, uint32_t>> Position;
};

FunContext buildContext(const Module &M, FunID F) {
  const Function &Fun = M.function(F);
  graph::AdjacencyGraph CFG(static_cast<uint32_t>(Fun.Blocks.size()));
  for (BlockID B = 0; B < Fun.Blocks.size(); ++B)
    for (BlockID S : Fun.Blocks[B].Succs)
      CFG.addEdge(B, S);
  FunContext Ctx;
  Ctx.DT = std::make_unique<graph::DominatorTree>(CFG, Fun.entryBlock());
  Ctx.Preds = CFG.buildPredecessors();
  for (BlockID B = 0; B < Fun.Blocks.size(); ++B)
    for (uint32_t K = 0; K < Fun.Blocks[B].Insts.size(); ++K)
      Ctx.Position[Fun.Blocks[B].Insts[K]] = {B, K};
  return Ctx;
}

/// Where a definition takes effect: MemPhis at the very top of their block
/// (index -1 conceptually); a χ right after its instruction.
struct DefPos {
  BlockID Block;
  int64_t Index; // -1 for MemPhi, instruction index for χ.
};

DefPos defPosition(const MemSSA::Def &D, const FunContext &Ctx) {
  if (D.Kind == MemSSA::DefKind::MemPhi)
    return {D.Block, -1};
  auto It = Ctx.Position.find(D.Inst);
  return {It->second.first, static_cast<int64_t>(It->second.second)};
}

/// True if a definition at \p Def reaches a *pre-state* use in \p UseBlock
/// at instruction index \p UseIndex by dominance.
bool defDominatesUse(const DefPos &Def, BlockID UseBlock, int64_t UseIndex,
                     const graph::DominatorTree &DT) {
  if (Def.Block == UseBlock)
    return Def.Index < UseIndex;
  return DT.dominates(Def.Block, UseBlock);
}

} // namespace

std::vector<std::string>
vsfs::memssa::validateMemSSA(const Module &M, const MemSSA &SSA) {
  std::vector<std::string> Errors;
  auto Fail = [&Errors](std::string Msg) {
    Errors.push_back(std::move(Msg));
  };

  std::unordered_map<FunID, FunContext> Contexts;
  auto Ctx = [&](FunID F) -> FunContext & {
    auto It = Contexts.find(F);
    if (It == Contexts.end())
      It = Contexts.emplace(F, buildContext(M, F)).first;
    return It->second;
  };

  // --- Definitions -------------------------------------------------------
  for (DefID D = 0; D < SSA.defs().size(); ++D) {
    const MemSSA::Def &Def = SSA.defs()[D];
    FunContext &FC = Ctx(Def.Fun);

    if (Def.Kind != MemSSA::DefKind::MemPhi) {
      // The record must match the instruction's annotation set.
      if (!SSA.chiObjs(Def.Inst).test(Def.Obj))
        Fail("chi def for object not in the chi set of '" +
             printInst(M, Def.Inst) + "'");
      if (M.inst(Def.Inst).Parent != Def.Fun)
        Fail("def attributed to the wrong function");
    }

    // χ operands: same object; the operand's def reaches this pre-state.
    if (Def.Operand != InvalidDef) {
      const MemSSA::Def &Op = SSA.defs()[Def.Operand];
      if (Op.Obj != Def.Obj)
        Fail("chi operand object mismatch at '" + printInst(M, Def.Inst) +
             "'");
      if (Op.Fun == Def.Fun) {
        auto Pos = FC.Position.find(Def.Inst);
        if (!defDominatesUse(defPosition(Op, FC), Pos->second.first,
                             Pos->second.second, *FC.DT))
          Fail("chi operand does not dominate its use at '" +
               printInst(M, Def.Inst) + "'");
      }
    }

    // MemPhi shape: one operand per predecessor; operands dominate the
    // incoming edge (i.e., the predecessor block's end).
    if (Def.Kind == MemSSA::DefKind::MemPhi) {
      if (Def.PhiOperands.size() != FC.Preds[Def.Block].size())
        Fail("memphi operand count differs from predecessor count");
      for (size_t K = 0; K < Def.PhiOperands.size() &&
                         K < FC.Preds[Def.Block].size();
           ++K) {
        DefID Op = Def.PhiOperands[K];
        if (Op == InvalidDef)
          continue; // Undefined along that edge (or duplicate edge slot).
        const MemSSA::Def &OpDef = SSA.defs()[Op];
        if (OpDef.Obj != Def.Obj)
          Fail("memphi operand object mismatch");
        if (OpDef.Fun != Def.Fun)
          continue;
        BlockID Pred = FC.Preds[Def.Block][K];
        DefPos P = defPosition(OpDef, FC);
        // "End of the predecessor block" = index beyond every instruction.
        if (!defDominatesUse(P, Pred, static_cast<int64_t>(1) << 40,
                             *FC.DT))
          Fail("memphi operand does not dominate its incoming edge");
      }
    }
  }

  // --- Uses ---------------------------------------------------------------
  for (const MemSSA::Mu &U : SSA.mus()) {
    if (!SSA.muObjs(U.Inst).test(U.Obj))
      Fail("mu record for object not in the mu set of '" +
           printInst(M, U.Inst) + "'");
    if (U.Reaching == InvalidDef)
      continue;
    const MemSSA::Def &Def = SSA.defs()[U.Reaching];
    if (Def.Obj != U.Obj)
      Fail("mu reaching-def object mismatch at '" + printInst(M, U.Inst) +
           "'");
    FunID F = M.inst(U.Inst).Parent;
    if (Def.Fun != F)
      continue;
    FunContext &FC = Ctx(F);
    auto Pos = FC.Position.find(U.Inst);
    if (!defDominatesUse(defPosition(Def, FC), Pos->second.first,
                         Pos->second.second, *FC.DT))
      Fail("reaching def does not dominate the mu at '" +
           printInst(M, U.Inst) + "'");
  }

  return Errors;
}
