//===- Printer.cpp --------------------------------------------*- C++ -*-===//

#include "ir/Printer.h"

#include <sstream>

using namespace vsfs;
using namespace vsfs::ir;

std::string vsfs::ir::printVar(const Module &M, VarID V) {
  if (V == InvalidVar)
    return "<none>";
  const VarInfo &Info = M.symbols().var(V);
  if (Info.Parent != InvalidFun)
    return "%" + Info.Name;
  FunID F = M.funAddrVarTarget(V);
  if (F != InvalidFun)
    return "@" + M.function(F).Name;
  return "@" + Info.Name;
}

namespace {

/// Prints the attribute suffix for an allocated object.
std::string allocAttrs(const Module &M, ObjID Obj) {
  const ObjInfo &Info = M.symbols().object(Obj);
  std::string Out;
  if (Info.Kind == ObjKind::Heap)
    Out += " [heap]";
  // Heap objects are unconditionally weak; only print for others.
  if (!Info.Singleton && Info.Kind != ObjKind::Heap)
    Out += " [weak]";
  if (Info.NumFields > 1)
    Out += " [fields=" + std::to_string(Info.NumFields) + "]";
  return Out;
}

void printOperandList(const Module &M, const std::vector<VarID> &Ops,
                      std::ostringstream &OS) {
  for (size_t I = 0; I < Ops.size(); ++I) {
    if (I)
      OS << ", ";
    OS << printVar(M, Ops[I]);
  }
}

} // namespace

std::string vsfs::ir::printInst(const Module &M, InstID I) {
  const Instruction &Inst = M.inst(I);
  std::ostringstream OS;
  switch (Inst.Kind) {
  case InstKind::Alloc: {
    ObjID Obj = Inst.allocObject();
    if (M.symbols().object(Obj).Kind == ObjKind::Function) {
      OS << printVar(M, Inst.Dst) << " = funcaddr @"
         << M.function(M.symbols().object(Obj).Func).Name;
    } else {
      OS << printVar(M, Inst.Dst) << " = alloc" << allocAttrs(M, Obj);
    }
    break;
  }
  case InstKind::Copy:
    OS << printVar(M, Inst.Dst) << " = copy " << printVar(M, Inst.copySrc());
    break;
  case InstKind::Phi:
    OS << printVar(M, Inst.Dst) << " = phi ";
    printOperandList(M, Inst.phiSrcs(), OS);
    break;
  case InstKind::FieldAddr:
    OS << printVar(M, Inst.Dst) << " = field " << printVar(M, Inst.fieldBase())
       << ", " << Inst.fieldOffset();
    break;
  case InstKind::Load:
    OS << printVar(M, Inst.Dst) << " = load " << printVar(M, Inst.loadPtr());
    break;
  case InstKind::Store:
    OS << "store " << printVar(M, Inst.storeVal()) << " -> "
       << printVar(M, Inst.storePtr());
    break;
  case InstKind::Free:
    OS << "free " << printVar(M, Inst.freePtr());
    break;
  case InstKind::Call:
    if (Inst.Dst != InvalidVar)
      OS << printVar(M, Inst.Dst) << " = ";
    OS << "call ";
    if (Inst.isIndirectCall())
      OS << printVar(M, Inst.indirectCalleeVar());
    else
      OS << "@" << M.function(Inst.directCallee()).Name;
    OS << "(";
    printOperandList(M, Inst.callArgs(), OS);
    OS << ")";
    break;
  case InstKind::FunEntry:
    OS << "funentry(";
    printOperandList(M, Inst.entryParams(), OS);
    OS << ")";
    break;
  case InstKind::FunExit:
    OS << "ret";
    if (Inst.exitRet() != InvalidVar)
      OS << " " << printVar(M, Inst.exitRet());
    break;
  }
  return OS.str();
}

std::string vsfs::ir::printModule(const Module &M) {
  std::ostringstream OS;

  // Globals: reconstruct declarations and initialisers from __global_init__.
  // Function-address Allocs are implicit (recreated by operand resolution),
  // so they are not printed.
  if (M.globalInit() != InvalidFun) {
    const Function &GI = M.function(M.globalInit());
    // Initialising stores per global variable, in emission order.
    std::unordered_map<VarID, std::vector<VarID>> Inits;
    for (InstID I : GI.Blocks[0].Insts) {
      const Instruction &Inst = M.inst(I);
      if (Inst.Kind == InstKind::Store)
        Inits[Inst.storePtr()].push_back(Inst.storeVal());
    }
    for (InstID I : GI.Blocks[0].Insts) {
      const Instruction &Inst = M.inst(I);
      if (Inst.Kind != InstKind::Alloc)
        continue;
      ObjID Obj = Inst.allocObject();
      if (M.symbols().object(Obj).Kind == ObjKind::Function)
        continue;
      OS << "global @" << M.symbols().var(Inst.Dst).Name
         << allocAttrs(M, Obj);
      auto It = Inits.find(Inst.Dst);
      if (It != Inits.end()) {
        OS << " =";
        for (size_t K = 0; K < It->second.size(); ++K)
          OS << (K ? ", " : " ") << printVar(M, It->second[K]);
      }
      OS << "\n";
    }
    OS << "\n";
  }

  for (FunID F = 0; F < M.numFunctions(); ++F) {
    if (F == M.globalInit())
      continue;
    const Function &Fun = M.function(F);
    OS << "func @" << Fun.Name << "(";
    for (size_t I = 0; I < Fun.Params.size(); ++I)
      OS << (I ? ", " : "") << printVar(M, Fun.Params[I]);
    OS << ") {\n";
    for (BlockID BB = 0; BB < Fun.Blocks.size(); ++BB) {
      const BasicBlock &Block = Fun.Blocks[BB];
      OS << Block.Name << ":\n";
      bool SawRetLikeExit = false;
      for (InstID I : Block.Insts) {
        const Instruction &Inst = M.inst(I);
        // FunEntry is implicit in the textual form.
        if (Inst.Kind == InstKind::FunEntry)
          continue;
        if (Inst.Kind == InstKind::FunExit)
          SawRetLikeExit = true;
        OS << "  " << printInst(M, I) << "\n";
      }
      if (!Block.Succs.empty()) {
        OS << "  br ";
        for (size_t S = 0; S < Block.Succs.size(); ++S)
          OS << (S ? ", " : "") << Fun.Blocks[Block.Succs[S]].Name;
        OS << "\n";
      } else if (!SawRetLikeExit) {
        OS << "  ; unterminated block\n";
      }
    }
    OS << "}\n\n";
  }
  return OS.str();
}
