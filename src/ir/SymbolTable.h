//===- SymbolTable.h - Variables and abstract objects -----------*- C++ -*-===//
///
/// \file
/// Owns the analysis domain of Table I: top-level variables and address-taken
/// abstract objects, including lazily created field objects (the paper's
/// [FIELD-ADDR] rules flatten fields so a field of a field is represented as
/// a single offset into the base object).
///
//===----------------------------------------------------------------------===//

#ifndef VSFS_IR_SYMBOLTABLE_H
#define VSFS_IR_SYMBOLTABLE_H

#include "ir/Ids.h"

#include <cassert>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace vsfs {
namespace ir {

/// Kind of an abstract object.
enum class ObjKind : uint8_t {
  Stack,    ///< alloca in a function body
  Heap,     ///< heap allocation site
  Global,   ///< global variable's storage
  Function, ///< a function's address (targets of indirect calls)
  Field     ///< a field derived from a base object at a constant offset
};

/// Metadata for one abstract object.
struct ObjInfo {
  std::string Name;
  ObjKind Kind = ObjKind::Stack;
  /// True if this abstract object represents exactly one runtime object
  /// (the paper's SN set); strong updates are only legal on singletons.
  bool Singleton = false;
  /// Number of flattened fields (>= 1). Field objects have 1.
  uint32_t NumFields = 1;
  /// For Field objects: the base object and constant offset; otherwise the
  /// object itself at offset 0.
  ObjID Base = InvalidObj;
  uint32_t Offset = 0;
  /// For Function objects: the function whose address this is.
  FunID Func = InvalidFun;
  /// Allocation site, when the object comes from an Alloc instruction.
  InstID AllocSite = InvalidInst;
};

/// Metadata for one top-level variable.
struct VarInfo {
  std::string Name;
  /// Owning function, or InvalidFun for globals.
  FunID Parent = InvalidFun;
};

/// The symbol table: dense registries of variables and objects.
class SymbolTable {
public:
  /// Creates a top-level variable. \p Parent is InvalidFun for globals.
  VarID makeVar(std::string Name, FunID Parent) {
    Vars.push_back(VarInfo{std::move(Name), Parent});
    return static_cast<VarID>(Vars.size() - 1);
  }

  /// Creates a base (non-field) abstract object.
  ObjID makeObject(std::string Name, ObjKind Kind, bool Singleton,
                   uint32_t NumFields) {
    assert(Kind != ObjKind::Field && "use getFieldObject for fields");
    assert(NumFields >= 1 && "objects have at least one field");
    ObjInfo Info;
    Info.Name = std::move(Name);
    Info.Kind = Kind;
    Info.Singleton = Singleton;
    Info.NumFields = NumFields;
    Objs.push_back(std::move(Info));
    ObjID Id = static_cast<ObjID>(Objs.size() - 1);
    Objs[Id].Base = Id;
    Objs[Id].Offset = 0;
    return Id;
  }

  /// Creates the object standing for \p F's address.
  ObjID makeFunctionObject(std::string Name, FunID F) {
    ObjID Id = makeObject(std::move(Name), ObjKind::Function,
                          /*Singleton=*/true, /*NumFields=*/1);
    Objs[Id].Kind = ObjKind::Function;
    Objs[Id].Func = F;
    return Id;
  }

  /// Returns the field object of \p Obj at \p Offset, creating it lazily.
  ///
  /// Offsets are flattened: asking for field k of a field object at offset j
  /// yields the base's field at offset j+k ("D.f_{i+j}, not D.f_i.f_j").
  /// Offsets past the end are clamped to the last field, which soundly
  /// merges out-of-bounds accesses into one abstract location. Objects with
  /// a single field are their own field 0.
  ObjID getFieldObject(ObjID Obj, uint32_t Offset) {
    assert(Obj < Objs.size() && "unknown object");
    ObjID Base = Objs[Obj].Base;
    uint64_t Flat = uint64_t(Objs[Obj].Offset) + Offset;
    const ObjInfo &BaseInfo = Objs[Base];
    if (Flat >= BaseInfo.NumFields)
      Flat = BaseInfo.NumFields - 1;
    if (Flat == 0)
      return Base;
    uint64_t Key = (uint64_t(Base) << 32) | Flat;
    auto It = FieldMap.find(Key);
    if (It != FieldMap.end())
      return It->second;
    ObjInfo Info;
    Info.Name = BaseInfo.Name + ".f" + std::to_string(Flat);
    Info.Kind = ObjKind::Field;
    Info.Singleton = BaseInfo.Singleton;
    Info.NumFields = 1;
    Info.Base = Base;
    Info.Offset = static_cast<uint32_t>(Flat);
    Info.AllocSite = BaseInfo.AllocSite;
    Objs.push_back(std::move(Info));
    ObjID Id = static_cast<ObjID>(Objs.size() - 1);
    FieldMap.emplace(Key, Id);
    return Id;
  }

  uint32_t numVars() const { return static_cast<uint32_t>(Vars.size()); }
  uint32_t numObjects() const { return static_cast<uint32_t>(Objs.size()); }

  const VarInfo &var(VarID V) const {
    assert(V < Vars.size() && "unknown variable");
    return Vars[V];
  }

  const ObjInfo &object(ObjID O) const {
    assert(O < Objs.size() && "unknown object");
    return Objs[O];
  }

  ObjInfo &object(ObjID O) {
    assert(O < Objs.size() && "unknown object");
    return Objs[O];
  }

  bool isFunctionObject(ObjID O) const {
    return object(O).Kind == ObjKind::Function;
  }

private:
  std::vector<VarInfo> Vars;
  std::vector<ObjInfo> Objs;
  /// (base << 32 | offset) -> field object.
  std::unordered_map<uint64_t, ObjID> FieldMap;
};

} // namespace ir
} // namespace vsfs

#endif // VSFS_IR_SYMBOLTABLE_H
