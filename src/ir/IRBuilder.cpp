//===- IRBuilder.cpp ------------------------------------------*- C++ -*-===//

#include "ir/IRBuilder.h"

#include <cassert>

using namespace vsfs;
using namespace vsfs::ir;

const char *vsfs::ir::instKindName(InstKind Kind) {
  switch (Kind) {
  case InstKind::Alloc:
    return "alloc";
  case InstKind::Copy:
    return "copy";
  case InstKind::Phi:
    return "phi";
  case InstKind::FieldAddr:
    return "field";
  case InstKind::Load:
    return "load";
  case InstKind::Store:
    return "store";
  case InstKind::Free:
    return "free";
  case InstKind::Call:
    return "call";
  case InstKind::FunEntry:
    return "funentry";
  case InstKind::FunExit:
    return "funexit";
  }
  return "<invalid>";
}

void vsfs::ir::collectUsedVars(const Instruction &Inst,
                               std::vector<VarID> &Uses) {
  switch (Inst.Kind) {
  case InstKind::Alloc:
    break;
  case InstKind::Copy:
  case InstKind::FieldAddr:
  case InstKind::Load:
  case InstKind::Free:
    Uses.push_back(Inst.Op0);
    break;
  case InstKind::Store:
    Uses.push_back(Inst.Op0);
    Uses.push_back(Inst.Op1);
    break;
  case InstKind::Phi:
    for (VarID V : Inst.Operands)
      Uses.push_back(V);
    break;
  case InstKind::Call:
    if (Inst.isIndirectCall())
      Uses.push_back(Inst.Op0);
    for (VarID V : Inst.Operands)
      Uses.push_back(V);
    break;
  case InstKind::FunEntry:
    break; // Parameters are definitions.
  case InstKind::FunExit:
    if (Inst.Op0 != InvalidVar)
      Uses.push_back(Inst.Op0);
    break;
  }
}

void vsfs::ir::linkProgramEntry(Module &M) {
  FunID Main = M.main();
  FunID GI = M.globalInit();
  if (Main == InvalidFun || GI == InvalidFun)
    return;
  Function &Init = M.function(GI);
  // Idempotence: look for an existing call to main in the init block.
  for (InstID I : Init.Blocks[0].Insts) {
    const Instruction &Inst = M.inst(I);
    if (Inst.Kind == InstKind::Call && !Inst.isIndirectCall() &&
        Inst.directCallee() == Main)
      return;
  }
  Instruction Call;
  Call.Kind = InstKind::Call;
  Call.Parent = GI;
  Call.Block = 0;
  Call.Extra = Main;
  InstID Id = M.addInstruction(std::move(Call));
  Init.Blocks[0].Insts.push_back(Id);
}

FunID vsfs::ir::programEntry(const Module &M) {
  if (M.globalInit() != InvalidFun)
    return M.globalInit();
  return M.main();
}

FunID IRBuilder::ensureGlobalInit() {
  if (M.globalInit() != InvalidFun) {
    GlobalInitBlock = 0;
    return M.globalInit();
  }
  FunID F = M.makeFunction("__global_init__");
  M.setGlobalInit(F);
  Function &Fun = M.function(F);

  // Block 0 holds FunEntry plus all global allocs/initialising stores;
  // block 1 holds the FunExit. Appending to block 0 keeps every global
  // instruction before the exit.
  Fun.Blocks.emplace_back();
  Fun.Blocks[0].Name = "entry";
  Fun.Blocks.emplace_back();
  Fun.Blocks[1].Name = "exit";
  Fun.Blocks[0].Succs.push_back(1);

  Instruction Entry;
  Entry.Kind = InstKind::FunEntry;
  Entry.Parent = F;
  Entry.Block = 0;
  InstID EntryId = M.addInstruction(std::move(Entry));
  Fun.Blocks[0].Insts.push_back(EntryId);
  Fun.Entry = EntryId;

  Instruction Exit;
  Exit.Kind = InstKind::FunExit;
  Exit.Parent = F;
  Exit.Block = 1;
  InstID ExitId = M.addInstruction(std::move(Exit));
  Fun.Blocks[1].Insts.push_back(ExitId);
  Fun.Exit = ExitId;

  GlobalInitBlock = 0;
  return F;
}

VarID IRBuilder::addGlobal(const std::string &Name, uint32_t NumFields) {
  FunID GI = ensureGlobalInit();
  ObjID Obj = M.symbols().makeObject(Name, ObjKind::Global,
                                     /*Singleton=*/true, NumFields);
  VarID V = M.symbols().makeVar(Name, InvalidFun);
  M.registerGlobalVar(Name, V);

  Instruction Alloc;
  Alloc.Kind = InstKind::Alloc;
  Alloc.Parent = GI;
  Alloc.Block = GlobalInitBlock;
  Alloc.Dst = V;
  Alloc.Extra = Obj;
  InstID Id = M.addInstruction(std::move(Alloc));
  M.symbols().object(Obj).AllocSite = Id;
  M.function(GI).Blocks[GlobalInitBlock].Insts.push_back(Id);
  return V;
}

void IRBuilder::addGlobalInit(VarID GlobalVar, VarID Value) {
  FunID GI = ensureGlobalInit();
  Instruction St;
  St.Kind = InstKind::Store;
  St.Parent = GI;
  St.Block = GlobalInitBlock;
  St.Op0 = GlobalVar;
  St.Op1 = Value;
  InstID Id = M.addInstruction(std::move(St));
  M.function(GI).Blocks[GlobalInitBlock].Insts.push_back(Id);
}

VarID IRBuilder::functionAddress(FunID F) {
  auto It = FunAddrVar.find(F);
  if (It != FunAddrVar.end())
    return It->second;
  VarID Existing = M.lookupFunAddrVar(F);
  if (Existing != InvalidVar) {
    FunAddrVar.emplace(F, Existing);
    return Existing;
  }
  FunID GI = ensureGlobalInit();
  ObjID Obj = M.functionAddressObject(F);
  VarID V = M.symbols().makeVar(M.function(F).Name + ".addr", InvalidFun);

  Instruction Alloc;
  Alloc.Kind = InstKind::Alloc;
  Alloc.Parent = GI;
  Alloc.Block = GlobalInitBlock;
  Alloc.Dst = V;
  Alloc.Extra = Obj;
  InstID Id = M.addInstruction(std::move(Alloc));
  M.function(GI).Blocks[GlobalInitBlock].Insts.push_back(Id);
  FunAddrVar.emplace(F, V);
  M.registerFunAddrVar(V, F);
  return V;
}

FunID IRBuilder::startFunction(const std::string &Name,
                               const std::vector<std::string> &ParamNames) {
  assert(CurFun == InvalidFun && "finish the previous function first");
  FunID F = M.lookupFunction(Name);
  if (F == InvalidFun)
    F = M.makeFunction(Name);
  CurFun = F;
  Function &Fun = M.function(F);
  assert(Fun.Blocks.empty() && "function already has a body");

  BlockByName.clear();
  BlockTerminated.clear();
  RetSites.clear();

  Fun.Blocks.emplace_back();
  Fun.Blocks[0].Name = "entry";
  BlockByName.emplace("entry", 0);
  BlockTerminated.push_back(false);
  CurBlock = 0;

  for (const std::string &P : ParamNames)
    Fun.Params.push_back(M.symbols().makeVar(P, F));

  Instruction Entry;
  Entry.Kind = InstKind::FunEntry;
  Entry.Operands = Fun.Params;
  Fun.Entry = emit(std::move(Entry));
  return F;
}

BlockID IRBuilder::block(const std::string &Name) {
  assert(CurFun != InvalidFun && "no current function");
  auto It = BlockByName.find(Name);
  if (It != BlockByName.end())
    return It->second;
  Function &Fun = M.function(CurFun);
  BlockID Id = static_cast<BlockID>(Fun.Blocks.size());
  Fun.Blocks.emplace_back();
  Fun.Blocks[Id].Name = Name;
  BlockByName.emplace(Name, Id);
  BlockTerminated.push_back(false);
  return Id;
}

void IRBuilder::setInsertPoint(BlockID Block) {
  assert(CurFun != InvalidFun && Block < M.function(CurFun).Blocks.size());
  CurBlock = Block;
}

void IRBuilder::br(BlockID B1) {
  assert(!BlockTerminated[CurBlock] && "block already terminated");
  M.function(CurFun).Blocks[CurBlock].Succs.push_back(B1);
  BlockTerminated[CurBlock] = true;
}

void IRBuilder::br(BlockID B1, BlockID B2) {
  assert(!BlockTerminated[CurBlock] && "block already terminated");
  auto &Succs = M.function(CurFun).Blocks[CurBlock].Succs;
  Succs.push_back(B1);
  Succs.push_back(B2);
  BlockTerminated[CurBlock] = true;
}

void IRBuilder::ret(VarID Value) {
  assert(!BlockTerminated[CurBlock] && "block already terminated");
  RetSites.emplace_back(CurBlock, Value);
  BlockTerminated[CurBlock] = true;
}

FunID IRBuilder::finishFunction() {
  assert(CurFun != InvalidFun && "no current function");
  Function &Fun = M.function(CurFun);

  // Synthesise the unified exit (UnifyFunctionExitNodes).
  BlockID ExitBlock = static_cast<BlockID>(Fun.Blocks.size());
  Fun.Blocks.emplace_back();
  Fun.Blocks[ExitBlock].Name = "__exit";
  BlockTerminated.push_back(true);

  VarID RetVal = InvalidVar;
  std::vector<VarID> RetVals;
  for (auto &[Block, Val] : RetSites) {
    Fun.Blocks[Block].Succs.push_back(ExitBlock);
    if (Val != InvalidVar)
      RetVals.push_back(Val);
  }

  CurBlock = ExitBlock;
  BlockTerminated[ExitBlock] = false;
  if (RetVals.size() == 1) {
    RetVal = RetVals.front();
  } else if (RetVals.size() > 1) {
    // Merge the returned pointers; the Phi lives in the exit block.
    Instruction Phi;
    Phi.Kind = InstKind::Phi;
    Phi.Dst = M.symbols().makeVar(Fun.Name + ".retval", CurFun);
    Phi.Operands = RetVals;
    RetVal = Phi.Dst;
    emit(std::move(Phi));
  }

  Instruction Exit;
  Exit.Kind = InstKind::FunExit;
  Exit.Op0 = RetVal;
  Fun.Exit = emit(std::move(Exit));
  BlockTerminated[ExitBlock] = true;

  FunID Finished = CurFun;
  CurFun = InvalidFun;
  CurBlock = InvalidBlock;
  return Finished;
}

InstID IRBuilder::emit(Instruction Inst) {
  assert(CurFun != InvalidFun && CurBlock != InvalidBlock &&
         "no insertion point");
  assert(!BlockTerminated[CurBlock] && "emitting into a terminated block");
  Inst.Parent = CurFun;
  Inst.Block = CurBlock;
  InstID Id = M.addInstruction(std::move(Inst));
  M.function(CurFun).Blocks[CurBlock].Insts.push_back(Id);
  return Id;
}

VarID IRBuilder::makeVar(const std::string &Name) {
  return M.symbols().makeVar(Name, CurFun);
}

void IRBuilder::allocTo(VarID Dst, const std::string &ObjName, ObjKind Kind,
                        bool Singleton, uint32_t NumFields) {
  assert(Kind != ObjKind::Field && Kind != ObjKind::Function &&
         "alloc creates stack/heap/global objects");
  // Heap allocation sites may execute many times; never singletons.
  if (Kind == ObjKind::Heap)
    Singleton = false;
  ObjID Obj = M.symbols().makeObject(ObjName, Kind, Singleton, NumFields);
  Instruction Inst;
  Inst.Kind = InstKind::Alloc;
  Inst.Dst = Dst;
  Inst.Extra = Obj;
  InstID Id = emit(std::move(Inst));
  M.symbols().object(Obj).AllocSite = Id;
}

void IRBuilder::copyTo(VarID Dst, VarID Src) {
  Instruction Inst;
  Inst.Kind = InstKind::Copy;
  Inst.Dst = Dst;
  Inst.Op0 = Src;
  emit(std::move(Inst));
}

void IRBuilder::phiTo(VarID Dst, const std::vector<VarID> &Srcs) {
  assert(!Srcs.empty() && "phi needs at least one source");
  Instruction Inst;
  Inst.Kind = InstKind::Phi;
  Inst.Dst = Dst;
  Inst.Operands = Srcs;
  emit(std::move(Inst));
}

void IRBuilder::fieldAddrTo(VarID Dst, VarID Base, uint32_t Offset) {
  Instruction Inst;
  Inst.Kind = InstKind::FieldAddr;
  Inst.Dst = Dst;
  Inst.Op0 = Base;
  Inst.Extra = Offset;
  emit(std::move(Inst));
}

void IRBuilder::loadTo(VarID Dst, VarID Ptr) {
  Instruction Inst;
  Inst.Kind = InstKind::Load;
  Inst.Dst = Dst;
  Inst.Op0 = Ptr;
  emit(std::move(Inst));
}

void IRBuilder::callDirectTo(VarID Dst, FunID Callee,
                             const std::vector<VarID> &Args) {
  Instruction Inst;
  Inst.Kind = InstKind::Call;
  Inst.Dst = Dst;
  Inst.Extra = Callee;
  Inst.Operands = Args;
  emit(std::move(Inst));
}

void IRBuilder::callIndirectTo(VarID Dst, VarID CalleePtr,
                               const std::vector<VarID> &Args) {
  Instruction Inst;
  Inst.Kind = InstKind::Call;
  Inst.Dst = Dst;
  Inst.Op0 = CalleePtr;
  Inst.Extra = InvalidFun;
  Inst.Operands = Args;
  emit(std::move(Inst));
}

void IRBuilder::funcAddrTo(VarID Dst, FunID F) {
  ObjID Obj = M.functionAddressObject(F);
  Instruction Inst;
  Inst.Kind = InstKind::Alloc;
  Inst.Dst = Dst;
  Inst.Extra = Obj;
  emit(std::move(Inst));
}

VarID IRBuilder::alloc(const std::string &VarName, const std::string &ObjName,
                       ObjKind Kind, bool Singleton, uint32_t NumFields) {
  VarID V = makeVar(VarName);
  allocTo(V, ObjName, Kind, Singleton, NumFields);
  return V;
}

VarID IRBuilder::copy(const std::string &VarName, VarID Src) {
  VarID V = makeVar(VarName);
  copyTo(V, Src);
  return V;
}

VarID IRBuilder::phi(const std::string &VarName,
                     const std::vector<VarID> &Srcs) {
  VarID V = makeVar(VarName);
  phiTo(V, Srcs);
  return V;
}

VarID IRBuilder::fieldAddr(const std::string &VarName, VarID Base,
                           uint32_t Offset) {
  VarID V = makeVar(VarName);
  fieldAddrTo(V, Base, Offset);
  return V;
}

VarID IRBuilder::load(const std::string &VarName, VarID Ptr) {
  VarID V = makeVar(VarName);
  loadTo(V, Ptr);
  return V;
}

void IRBuilder::store(VarID Value, VarID Ptr) {
  Instruction Inst;
  Inst.Kind = InstKind::Store;
  Inst.Op0 = Ptr;
  Inst.Op1 = Value;
  emit(std::move(Inst));
}

void IRBuilder::free(VarID Ptr) {
  Instruction Inst;
  Inst.Kind = InstKind::Free;
  Inst.Op0 = Ptr;
  emit(std::move(Inst));
}

VarID IRBuilder::callDirect(const std::string &DstName, FunID Callee,
                            const std::vector<VarID> &Args) {
  VarID V = DstName.empty() ? InvalidVar : makeVar(DstName);
  callDirectTo(V, Callee, Args);
  return V;
}

VarID IRBuilder::callIndirect(const std::string &DstName, VarID CalleePtr,
                              const std::vector<VarID> &Args) {
  VarID V = DstName.empty() ? InvalidVar : makeVar(DstName);
  callIndirectTo(V, CalleePtr, Args);
  return V;
}

VarID IRBuilder::funcAddr(const std::string &VarName, FunID F) {
  VarID V = makeVar(VarName);
  funcAddrTo(V, F);
  return V;
}
