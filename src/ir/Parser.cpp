//===- Parser.cpp - Textual IR parser ---------------------------*- C++ -*-===//

#include "ir/Parser.h"

#include "ir/IRBuilder.h"

#include <cctype>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

using namespace vsfs;
using namespace vsfs::ir;

namespace {

enum class TokKind : uint8_t {
  AtIdent,      // @name
  PercentIdent, // %name
  Ident,        // bareword / keyword / label
  Int,
  LParen,
  RParen,
  LBracket,
  RBracket,
  LBrace,
  RBrace,
  Comma,
  Equal,
  Arrow,
  Colon,
  End
};

struct Token {
  TokKind Kind;
  std::string Text; // Identifier spelling (without sigil).
  uint64_t IntValue = 0;
  uint32_t Line = 0;
};

/// Tokenises the whole input up front; ';' starts a line comment.
class Lexer {
public:
  Lexer(std::string_view Text, std::string &Error) : Text(Text), Err(Error) {}

  /// Returns false on a lexical error (Err set).
  bool run(std::vector<Token> &Out) {
    while (skipTrivia()) {
      Token T;
      if (!lexOne(T))
        return false;
      Out.push_back(std::move(T));
    }
    Out.push_back(Token{TokKind::End, "", 0, Line});
    return true;
  }

private:
  bool skipTrivia() {
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C == '\n') {
        ++Line;
        ++Pos;
      } else if (std::isspace(static_cast<unsigned char>(C))) {
        ++Pos;
      } else if (C == ';') {
        while (Pos < Text.size() && Text[Pos] != '\n')
          ++Pos;
      } else {
        return true;
      }
    }
    return false;
  }

  bool lexOne(Token &T) {
    char C = Text[Pos];
    T.Line = Line;
    switch (C) {
    case '(':
      T.Kind = TokKind::LParen;
      ++Pos;
      return true;
    case ')':
      T.Kind = TokKind::RParen;
      ++Pos;
      return true;
    case '[':
      T.Kind = TokKind::LBracket;
      ++Pos;
      return true;
    case ']':
      T.Kind = TokKind::RBracket;
      ++Pos;
      return true;
    case '{':
      T.Kind = TokKind::LBrace;
      ++Pos;
      return true;
    case '}':
      T.Kind = TokKind::RBrace;
      ++Pos;
      return true;
    case ',':
      T.Kind = TokKind::Comma;
      ++Pos;
      return true;
    case ':':
      T.Kind = TokKind::Colon;
      ++Pos;
      return true;
    case '=':
      T.Kind = TokKind::Equal;
      ++Pos;
      return true;
    case '-':
      if (Pos + 1 < Text.size() && Text[Pos + 1] == '>') {
        T.Kind = TokKind::Arrow;
        Pos += 2;
        return true;
      }
      return fail("unexpected '-'");
    case '@':
    case '%': {
      ++Pos;
      std::string Name = lexWord();
      if (Name.empty())
        return fail("expected identifier after sigil");
      T.Kind = C == '@' ? TokKind::AtIdent : TokKind::PercentIdent;
      T.Text = std::move(Name);
      return true;
    }
    default:
      break;
    }
    if (std::isdigit(static_cast<unsigned char>(C))) {
      uint64_t Value = 0;
      while (Pos < Text.size() &&
             std::isdigit(static_cast<unsigned char>(Text[Pos])))
        Value = Value * 10 + (Text[Pos++] - '0');
      T.Kind = TokKind::Int;
      T.IntValue = Value;
      return true;
    }
    if (isWordChar(C)) {
      T.Kind = TokKind::Ident;
      T.Text = lexWord();
      return true;
    }
    return fail(std::string("unexpected character '") + C + "'");
  }

  static bool isWordChar(char C) {
    return std::isalnum(static_cast<unsigned char>(C)) || C == '_' ||
           C == '.' || C == '$';
  }

  std::string lexWord() {
    size_t Start = Pos;
    while (Pos < Text.size() && isWordChar(Text[Pos]))
      ++Pos;
    return std::string(Text.substr(Start, Pos - Start));
  }

  bool fail(const std::string &Msg) {
    Err = "line " + std::to_string(Line) + ": " + Msg;
    return false;
  }

  std::string_view Text;
  std::string &Err;
  size_t Pos = 0;
  uint32_t Line = 1;
};

/// Attributes accepted on 'alloc' and 'global'.
struct AllocAttrs {
  bool Heap = false;
  bool Weak = false;
  uint32_t NumFields = 1;
};

class Parser {
public:
  Parser(std::vector<Token> Tokens, Module &M, std::string &Error)
      : Tokens(std::move(Tokens)), M(M), B(M), Err(Error) {}

  bool run() {
    if (!prescan())
      return false;
    Cursor = 0;
    while (peek().Kind != TokKind::End) {
      const Token &T = peek();
      if (T.Kind == TokKind::Ident && T.Text == "global") {
        if (!parseGlobal())
          return false;
      } else if (T.Kind == TokKind::Ident && T.Text == "func") {
        if (!parseFunction())
          return false;
      } else {
        return fail("expected 'global' or 'func'");
      }
    }
    // Emit deferred global initialisers now every global/function exists.
    for (const auto &[GlobalName, ValueName, Line] : DeferredInits) {
      VarID G = M.lookupGlobalVar(GlobalName);
      VarID V = resolveAtName(ValueName);
      if (V == InvalidVar) {
        Err = "line " + std::to_string(Line) + ": unknown global or function @" +
              ValueName;
        return false;
      }
      B.addGlobalInit(G, V);
    }
    FunID Main = M.lookupFunction("main");
    if (Main != InvalidFun)
      M.setMain(Main);
    linkProgramEntry(M);
    return true;
  }

private:
  // --- Token plumbing ---------------------------------------------------

  const Token &peek(size_t Ahead = 0) const {
    size_t I = Cursor + Ahead;
    return I < Tokens.size() ? Tokens[I] : Tokens.back();
  }

  const Token &advance() { return Tokens[Cursor++]; }

  bool expect(TokKind Kind, const char *What) {
    if (peek().Kind != Kind)
      return fail(std::string("expected ") + What);
    ++Cursor;
    return true;
  }

  bool fail(const std::string &Msg) {
    Err = "line " + std::to_string(peek().Line) + ": " + Msg;
    return false;
  }

  // --- Pre-scan: register every function signature -----------------------

  bool prescan() {
    for (size_t I = 0; I + 1 < Tokens.size(); ++I) {
      if (Tokens[I].Kind == TokKind::Ident && Tokens[I].Text == "func") {
        if (Tokens[I + 1].Kind != TokKind::AtIdent) {
          Err = "line " + std::to_string(Tokens[I].Line) +
                ": expected function name after 'func'";
          return false;
        }
        if (M.lookupFunction(Tokens[I + 1].Text) != InvalidFun) {
          Err = "line " + std::to_string(Tokens[I].Line) +
                ": duplicate function @" + Tokens[I + 1].Text;
          return false;
        }
        M.makeFunction(Tokens[I + 1].Text);
      }
    }
    return true;
  }

  // --- Operand resolution -------------------------------------------------

  /// Resolves '@name': a global variable, else a function address.
  VarID resolveAtName(const std::string &Name) {
    VarID G = M.lookupGlobalVar(Name);
    if (G != InvalidVar)
      return G;
    FunID F = M.lookupFunction(Name);
    if (F != InvalidFun)
      return B.functionAddress(F);
    return InvalidVar;
  }

  /// Resolves '%name' within the current function, creating on first use.
  VarID resolveLocal(const std::string &Name) {
    auto It = LocalVars.find(Name);
    if (It != LocalVars.end())
      return It->second;
    VarID V = B.makeVar(Name);
    LocalVars.emplace(Name, V);
    return V;
  }

  /// Parses one operand: %local or @global/function.
  bool parseOperand(VarID &Out) {
    const Token &T = peek();
    if (T.Kind == TokKind::PercentIdent) {
      Out = resolveLocal(T.Text);
      ++Cursor;
      return true;
    }
    if (T.Kind == TokKind::AtIdent) {
      Out = resolveAtName(T.Text);
      if (Out == InvalidVar)
        return fail("unknown global or function @" + T.Text);
      ++Cursor;
      return true;
    }
    return fail("expected operand (%var or @global)");
  }

  // --- Attributes ---------------------------------------------------------

  /// Parses zero or more "[attr]" groups.
  bool parseAttrs(AllocAttrs &Attrs) {
    while (peek().Kind == TokKind::LBracket) {
      ++Cursor;
      const Token &T = peek();
      if (T.Kind != TokKind::Ident)
        return fail("expected attribute name");
      if (T.Text == "heap") {
        Attrs.Heap = true;
        ++Cursor;
      } else if (T.Text == "weak") {
        Attrs.Weak = true;
        ++Cursor;
      } else if (T.Text == "fields") {
        ++Cursor;
        if (!expect(TokKind::Equal, "'=' after fields"))
          return false;
        if (peek().Kind != TokKind::Int)
          return fail("expected field count");
        Attrs.NumFields = static_cast<uint32_t>(advance().IntValue);
        if (Attrs.NumFields == 0)
          return fail("field count must be >= 1");
      } else {
        return fail("unknown attribute '" + T.Text + "'");
      }
      if (!expect(TokKind::RBracket, "']'"))
        return false;
    }
    return true;
  }

  // --- Globals ------------------------------------------------------------

  bool parseGlobal() {
    ++Cursor; // 'global'
    if (peek().Kind != TokKind::AtIdent)
      return fail("expected global name");
    std::string Name = advance().Text;
    if (M.lookupGlobalVar(Name) != InvalidVar)
      return fail("duplicate global @" + Name);
    AllocAttrs Attrs;
    if (!parseAttrs(Attrs))
      return false;
    VarID G = B.addGlobal(Name, Attrs.NumFields);
    if (Attrs.Weak)
      markVarObjectsWeak(G);
    if (peek().Kind == TokKind::Equal) {
      ++Cursor;
      // Initialisers may reference later globals/functions; defer them.
      while (true) {
        if (peek().Kind != TokKind::AtIdent)
          return fail("global initialisers must be @names");
        DeferredInits.emplace_back(Name, advance().Text, peek().Line);
        if (peek().Kind != TokKind::Comma)
          break;
        ++Cursor;
      }
    }
    return true;
  }

  /// Clears the singleton flag on the object allocated for \p GlobalVar.
  void markVarObjectsWeak(VarID GlobalVar) {
    // The global's Alloc is the last instruction emitted in __global_init__.
    (void)GlobalVar;
    for (uint32_t I = M.numInstructions(); I-- > 0;) {
      const Instruction &Inst = M.inst(I);
      if (Inst.Kind == InstKind::Alloc && Inst.Dst == GlobalVar) {
        M.symbols().object(Inst.allocObject()).Singleton = false;
        return;
      }
    }
  }

  // --- Functions ------------------------------------------------------------

  bool parseFunction() {
    ++Cursor; // 'func'
    if (peek().Kind != TokKind::AtIdent)
      return fail("expected function name");
    std::string Name = advance().Text;
    if (!expect(TokKind::LParen, "'('"))
      return false;
    std::vector<std::string> Params;
    if (peek().Kind != TokKind::RParen) {
      while (true) {
        if (peek().Kind != TokKind::PercentIdent)
          return fail("expected parameter %name");
        Params.push_back(advance().Text);
        if (peek().Kind != TokKind::Comma)
          break;
        ++Cursor;
      }
    }
    if (!expect(TokKind::RParen, "')'"))
      return false;
    if (!expect(TokKind::LBrace, "'{'"))
      return false;

    LocalVars.clear();
    FunID F = B.startFunction(Name, Params);
    for (size_t I = 0; I < Params.size(); ++I)
      LocalVars.emplace(Params[I], M.function(F).Params[I]);

    // First label decides whether the implicit entry block is reused.
    if (peek().Kind != TokKind::Ident || peek(1).Kind != TokKind::Colon)
      return fail("expected block label");
    bool First = true;
    while (peek().Kind == TokKind::Ident && peek(1).Kind == TokKind::Colon) {
      std::string Label = advance().Text;
      ++Cursor; // ':'
      BlockID BB;
      if (First && Label == "entry") {
        BB = 0;
      } else {
        BB = B.block(Label);
        if (First)
          B.br(BB); // Fall from the implicit entry into the first block.
      }
      First = false;
      B.setInsertPoint(BB);
      if (!parseBlockBody())
        return false;
    }
    if (!expect(TokKind::RBrace, "'}' or block label"))
      return false;
    B.finishFunction();
    return true;
  }

  /// Parses instructions until a terminator ends the block.
  bool parseBlockBody() {
    while (true) {
      const Token &T = peek();
      if (T.Kind == TokKind::Ident && T.Text == "br")
        return parseBr();
      if (T.Kind == TokKind::Ident && T.Text == "ret")
        return parseRet();
      if (T.Kind == TokKind::Ident && T.Text == "store") {
        if (!parseStore())
          return false;
        continue;
      }
      if (T.Kind == TokKind::Ident && T.Text == "free") {
        if (!parseFree())
          return false;
        continue;
      }
      if (T.Kind == TokKind::Ident && T.Text == "call") {
        if (!parseCall(/*DstName=*/""))
          return false;
        continue;
      }
      if (T.Kind == TokKind::PercentIdent) {
        if (!parseAssignment())
          return false;
        continue;
      }
      return fail("expected instruction or terminator");
    }
  }

  bool parseBr() {
    ++Cursor; // 'br'
    std::vector<BlockID> Targets;
    while (true) {
      if (peek().Kind != TokKind::Ident)
        return fail("expected block label after 'br'");
      Targets.push_back(B.block(advance().Text));
      if (peek().Kind != TokKind::Comma)
        break;
      ++Cursor;
    }
    if (Targets.size() == 1)
      B.br(Targets[0]);
    else if (Targets.size() == 2)
      B.br(Targets[0], Targets[1]);
    else
      return fail("'br' takes one or two targets");
    return true;
  }

  bool parseRet() {
    ++Cursor; // 'ret'
    VarID V = InvalidVar;
    if (peek().Kind == TokKind::PercentIdent ||
        peek().Kind == TokKind::AtIdent) {
      if (!parseOperand(V))
        return false;
    }
    B.ret(V);
    return true;
  }

  bool parseStore() {
    ++Cursor; // 'store'
    VarID Value, Ptr;
    if (!parseOperand(Value))
      return false;
    if (!expect(TokKind::Arrow, "'->' in store"))
      return false;
    if (!parseOperand(Ptr))
      return false;
    B.store(Value, Ptr);
    return true;
  }

  bool parseFree() {
    ++Cursor; // 'free'
    VarID Ptr;
    if (!parseOperand(Ptr))
      return false;
    B.free(Ptr);
    return true;
  }

  bool parseCall(const std::string &DstName) {
    ++Cursor; // 'call'
    const Token &CalleeTok = peek();
    bool Indirect;
    FunID DirectCallee = InvalidFun;
    VarID CalleeVar = InvalidVar;
    if (CalleeTok.Kind == TokKind::AtIdent) {
      DirectCallee = M.lookupFunction(CalleeTok.Text);
      if (DirectCallee == InvalidFun)
        return fail("unknown function @" + CalleeTok.Text);
      Indirect = false;
      ++Cursor;
    } else if (CalleeTok.Kind == TokKind::PercentIdent) {
      CalleeVar = resolveLocal(CalleeTok.Text);
      Indirect = true;
      ++Cursor;
    } else {
      return fail("expected callee after 'call'");
    }
    if (!expect(TokKind::LParen, "'('"))
      return false;
    std::vector<VarID> Args;
    if (peek().Kind != TokKind::RParen) {
      while (true) {
        VarID A;
        if (!parseOperand(A))
          return false;
        Args.push_back(A);
        if (peek().Kind != TokKind::Comma)
          break;
        ++Cursor;
      }
    }
    if (!expect(TokKind::RParen, "')'"))
      return false;
    VarID Dst = DstName.empty() ? InvalidVar : resolveLocal(DstName);
    if (Indirect)
      B.callIndirectTo(Dst, CalleeVar, Args);
    else
      B.callDirectTo(Dst, DirectCallee, Args);
    return true;
  }

  bool parseAssignment() {
    std::string DstName = advance().Text; // %dst
    if (!expect(TokKind::Equal, "'='"))
      return false;
    const Token &Op = peek();
    if (Op.Kind != TokKind::Ident)
      return fail("expected opcode");

    if (Op.Text == "call")
      return parseCall(DstName);

    ++Cursor;
    VarID Dst = resolveLocal(DstName);
    if (Op.Text == "alloc") {
      AllocAttrs Attrs;
      if (!parseAttrs(Attrs))
        return false;
      ObjKind Kind = Attrs.Heap ? ObjKind::Heap : ObjKind::Stack;
      B.allocTo(Dst, DstName + ".obj", Kind,
                /*Singleton=*/!Attrs.Weak, Attrs.NumFields);
      return true;
    }
    if (Op.Text == "copy") {
      VarID Src;
      if (!parseOperand(Src))
        return false;
      B.copyTo(Dst, Src);
      return true;
    }
    if (Op.Text == "phi") {
      std::vector<VarID> Srcs;
      while (true) {
        VarID S;
        if (!parseOperand(S))
          return false;
        Srcs.push_back(S);
        if (peek().Kind != TokKind::Comma)
          break;
        ++Cursor;
      }
      B.phiTo(Dst, Srcs);
      return true;
    }
    if (Op.Text == "field") {
      VarID Base;
      if (!parseOperand(Base))
        return false;
      if (!expect(TokKind::Comma, "',' in field"))
        return false;
      if (peek().Kind != TokKind::Int)
        return fail("expected field offset");
      uint32_t Offset = static_cast<uint32_t>(advance().IntValue);
      B.fieldAddrTo(Dst, Base, Offset);
      return true;
    }
    if (Op.Text == "load") {
      VarID Ptr;
      if (!parseOperand(Ptr))
        return false;
      B.loadTo(Dst, Ptr);
      return true;
    }
    if (Op.Text == "funcaddr") {
      if (peek().Kind != TokKind::AtIdent)
        return fail("expected function name after 'funcaddr'");
      FunID F = M.lookupFunction(advance().Text);
      if (F == InvalidFun)
        return fail("unknown function in funcaddr");
      B.funcAddrTo(Dst, F);
      return true;
    }
    Err = "line " + std::to_string(Op.Line) + ": unknown opcode '" +
          Op.Text + "'";
    return false;
  }

  std::vector<Token> Tokens;
  Module &M;
  IRBuilder B;
  std::string &Err;
  size_t Cursor = 0;
  std::unordered_map<std::string, VarID> LocalVars;
  /// (global name, value @name, source line) emitted after parsing.
  std::vector<std::tuple<std::string, std::string, uint32_t>> DeferredInits;
};

} // namespace

bool vsfs::ir::parseModule(std::string_view Text, Module &M,
                           std::string &Error) {
  std::vector<Token> Tokens;
  Lexer L(Text, Error);
  if (!L.run(Tokens))
    return false;
  Parser P(std::move(Tokens), M, Error);
  return P.run();
}
