//===- ICFG.cpp - Interprocedural control-flow graph ------------*- C++ -*-===//

#include "ir/ICFG.h"

#include <cassert>

using namespace vsfs;
using namespace vsfs::ir;

ICFG::ICFG(const Module &M, CalleeResolver Resolve) : M(M) {
  Succs.assign(M.numInstructions(), {});
  Reachable.assign(M.numInstructions(), false);

  for (FunID F = 0; F < M.numFunctions(); ++F) {
    const Function &Fun = M.function(F);
    if (Fun.Blocks.empty())
      continue;

    // Per-block reachability from the function entry.
    std::vector<uint8_t> BlockReachable(Fun.Blocks.size(), 0);
    {
      std::vector<BlockID> Stack{Fun.entryBlock()};
      BlockReachable[Fun.entryBlock()] = 1;
      while (!Stack.empty()) {
        BlockID Cur = Stack.back();
        Stack.pop_back();
        for (BlockID S : Fun.Blocks[Cur].Succs)
          if (!BlockReachable[S]) {
            BlockReachable[S] = 1;
            Stack.push_back(S);
          }
      }
    }

    // First instructions of each block, looking through empty blocks
    // (blocks holding only a branch own no instructions).
    std::vector<std::vector<InstID>> FirstOf(Fun.Blocks.size());
    for (BlockID B = 0; B < Fun.Blocks.size(); ++B) {
      std::vector<uint8_t> Seen(Fun.Blocks.size(), 0);
      std::vector<BlockID> Stack{B};
      Seen[B] = 1;
      while (!Stack.empty()) {
        BlockID Cur = Stack.back();
        Stack.pop_back();
        if (!Fun.Blocks[Cur].Insts.empty()) {
          FirstOf[B].push_back(Fun.Blocks[Cur].Insts.front());
          continue;
        }
        for (BlockID S : Fun.Blocks[Cur].Succs)
          if (!Seen[S]) {
            Seen[S] = 1;
            Stack.push_back(S);
          }
      }
    }

    auto ConnectToNext = [&](InstID From, BlockID B, size_t Pos) {
      const auto &Insts = Fun.Blocks[B].Insts;
      if (Pos + 1 < Insts.size()) {
        Succs[From].push_back(Insts[Pos + 1]);
        return;
      }
      for (BlockID S : Fun.Blocks[B].Succs)
        for (InstID T : FirstOf[S])
          Succs[From].push_back(T);
    };

    for (BlockID B = 0; B < Fun.Blocks.size(); ++B) {
      if (!BlockReachable[B])
        continue;
      const auto &Insts = Fun.Blocks[B].Insts;
      for (size_t Pos = 0; Pos < Insts.size(); ++Pos) {
        InstID I = Insts[Pos];
        Reachable[I] = true;
        const Instruction &Inst = M.inst(I);
        std::vector<FunID> Callees;
        if (Inst.Kind == InstKind::Call && Resolve)
          Callees = Resolve(I);
        if (!Callees.empty()) {
          for (FunID Callee : Callees) {
            Succs[I].push_back(M.function(Callee).Entry);
            ConnectToNext(M.function(Callee).Exit, B, Pos);
          }
        } else {
          ConnectToNext(I, B, Pos);
        }
      }
    }
  }
}

const std::vector<InstID> &ICFG::predecessors(InstID I) const {
  if (!PredsBuilt) {
    Preds.assign(Succs.size(), {});
    for (InstID N = 0; N < Succs.size(); ++N)
      for (InstID S : Succs[N])
        Preds[S].push_back(N);
    PredsBuilt = true;
  }
  assert(I < Preds.size() && "unknown instruction");
  return Preds[I];
}

uint64_t ICFG::numEdges() const {
  uint64_t Total = 0;
  for (const auto &S : Succs)
    Total += S.size();
  return Total;
}

std::vector<InstID> ICFG::reachableFrom(InstID Entry) const {
  std::vector<InstID> Out;
  std::vector<uint8_t> Seen(Succs.size(), 0);
  std::vector<InstID> Stack{Entry};
  Seen[Entry] = 1;
  while (!Stack.empty()) {
    InstID Cur = Stack.back();
    Stack.pop_back();
    Out.push_back(Cur);
    for (InstID S : Succs[Cur])
      if (!Seen[S]) {
        Seen[S] = 1;
        Stack.push_back(S);
      }
  }
  return Out;
}
