//===- ICFG.h - Interprocedural control-flow graph --------------*- C++ -*-===//
///
/// \file
/// The interprocedural control-flow graph (§IV-A): one node per
/// instruction, with
///
///  - intraprocedural edges following block order and branch successors
///    (empty blocks are looked through),
///  - interprocedural edges for resolved calls: callsite → callee FunEntry
///    and callee FunExit → the callsite's fall-through ("return site"),
///  - a fall-through edge at unresolved callsites so flow is not lost.
///
/// Call resolution is supplied by the caller as a callback so this module
/// stays independent of any particular pointer analysis (Andersen's call
/// graph is the usual source). Only blocks reachable from each function's
/// entry participate: memory SSA gives unreachable code no definitions, and
/// the dense baseline analysis must agree (see IterativeFlowSensitive).
///
//===----------------------------------------------------------------------===//

#ifndef VSFS_IR_ICFG_H
#define VSFS_IR_ICFG_H

#include "ir/Module.h"

#include <functional>
#include <vector>

namespace vsfs {
namespace ir {

/// The ICFG over instruction IDs.
class ICFG {
public:
  /// Resolves a call instruction to its (known) callees; an empty result
  /// means the call is unresolved and keeps its fall-through edge.
  using CalleeResolver = std::function<std::vector<FunID>(InstID)>;

  /// Builds the graph. \p Resolve may be null: all calls fall through
  /// (a purely intraprocedural CFG over instructions).
  ICFG(const Module &M, CalleeResolver Resolve);

  const std::vector<InstID> &successors(InstID I) const {
    return Succs[I];
  }

  /// Predecessor lists (computed on first use).
  const std::vector<InstID> &predecessors(InstID I) const;

  /// True if \p I is inside a block reachable from its function's entry.
  bool isReachableInFunction(InstID I) const { return Reachable[I]; }

  uint64_t numEdges() const;

  /// Instructions reachable in the ICFG from \p Entry (a FunEntry,
  /// typically the program entry's).
  std::vector<InstID> reachableFrom(InstID Entry) const;

private:
  const Module &M;
  std::vector<std::vector<InstID>> Succs;
  std::vector<bool> Reachable;
  mutable std::vector<std::vector<InstID>> Preds;
  mutable bool PredsBuilt = false;
};

} // namespace ir
} // namespace vsfs

#endif // VSFS_IR_ICFG_H
