//===- Instruction.h - Table I instruction set ------------------*- C++ -*-===//
///
/// \file
/// The LLVM-like instruction set of Table I in partial SSA form. MEMPHI
/// instructions are not part of the input IR; memory SSA inserts them and
/// the SVFG materialises them as nodes.
///
/// Instructions are stored by value in a module-wide dense array so that an
/// InstID doubles as a label (the paper's ℓ) and as an index into analysis
/// side tables.
///
//===----------------------------------------------------------------------===//

#ifndef VSFS_IR_INSTRUCTION_H
#define VSFS_IR_INSTRUCTION_H

#include "ir/Ids.h"

#include <cassert>
#include <cstdint>
#include <vector>

namespace vsfs {
namespace ir {

/// Instruction kinds (Table I). CAST is represented as Copy: a pointer cast
/// is a value-preserving copy for points-to purposes.
enum class InstKind : uint8_t {
  Alloc,     ///< p = alloca_o
  Copy,      ///< p = (t) q, or plain p = q
  Phi,       ///< p = phi(q, r, ...)
  FieldAddr, ///< p = &q->f_k
  Load,      ///< p = *q
  Store,     ///< *p = q
  Free,      ///< free p  (deallocates the object p points to; a memory kill)
  Call,      ///< p = q(r1, ..., rn)  (direct or indirect)
  FunEntry,  ///< fun(r1, ..., rn)
  FunExit    ///< ret_fun p
};

/// Returns a printable mnemonic.
const char *instKindName(InstKind Kind);

struct Instruction;

/// Appends the top-level variables \p Inst reads (not defines) to \p Uses.
/// FunEntry parameters count as definitions, not uses.
void collectUsedVars(const Instruction &Inst, std::vector<VarID> &Uses);

/// One instruction. The field meaning depends on \c Kind; use the typed
/// accessors, which assert the kind.
struct Instruction {
  InstKind Kind;
  /// Owning function and block (block set when attached to a block).
  FunID Parent = InvalidFun;
  BlockID Block = InvalidBlock;

  /// Defined top-level variable (Alloc/Copy/Phi/FieldAddr/Load, optional for
  /// Call), otherwise InvalidVar.
  VarID Dst = InvalidVar;
  /// First operand: Copy source, Load/Store/Free pointer, FieldAddr base,
  /// indirect Call callee, FunExit return value.
  VarID Op0 = InvalidVar;
  /// Second operand: Store value.
  VarID Op1 = InvalidVar;
  /// Extra payload: Alloc object, FieldAddr offset, direct Call callee
  /// function (InvalidFun when the call is indirect).
  uint32_t Extra = UINT32_MAX;
  /// Variadic operands: Phi sources, Call arguments, FunEntry parameters.
  std::vector<VarID> Operands;

  // --- Typed accessors -------------------------------------------------

  ObjID allocObject() const {
    assert(Kind == InstKind::Alloc && "not an Alloc");
    return Extra;
  }

  VarID copySrc() const {
    assert(Kind == InstKind::Copy && "not a Copy");
    return Op0;
  }

  VarID fieldBase() const {
    assert(Kind == InstKind::FieldAddr && "not a FieldAddr");
    return Op0;
  }

  uint32_t fieldOffset() const {
    assert(Kind == InstKind::FieldAddr && "not a FieldAddr");
    return Extra;
  }

  VarID loadPtr() const {
    assert(Kind == InstKind::Load && "not a Load");
    return Op0;
  }

  VarID storePtr() const {
    assert(Kind == InstKind::Store && "not a Store");
    return Op0;
  }

  VarID storeVal() const {
    assert(Kind == InstKind::Store && "not a Store");
    return Op1;
  }

  VarID freePtr() const {
    assert(Kind == InstKind::Free && "not a Free");
    return Op0;
  }

  bool isIndirectCall() const {
    assert(Kind == InstKind::Call && "not a Call");
    return Extra == InvalidFun;
  }

  FunID directCallee() const {
    assert(Kind == InstKind::Call && !isIndirectCall() && "not a direct call");
    return Extra;
  }

  VarID indirectCalleeVar() const {
    assert(Kind == InstKind::Call && isIndirectCall() && "not indirect call");
    return Op0;
  }

  const std::vector<VarID> &callArgs() const {
    assert(Kind == InstKind::Call && "not a Call");
    return Operands;
  }

  const std::vector<VarID> &phiSrcs() const {
    assert(Kind == InstKind::Phi && "not a Phi");
    return Operands;
  }

  const std::vector<VarID> &entryParams() const {
    assert(Kind == InstKind::FunEntry && "not a FunEntry");
    return Operands;
  }

  /// FunExit return variable, or InvalidVar for void returns.
  VarID exitRet() const {
    assert(Kind == InstKind::FunExit && "not a FunExit");
    return Op0;
  }

  /// True for instructions that define a top-level variable.
  bool definesVar() const { return Dst != InvalidVar; }
};

} // namespace ir
} // namespace vsfs

#endif // VSFS_IR_INSTRUCTION_H
