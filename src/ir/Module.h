//===- Module.h - Functions, blocks, and the module --------------*- C++ -*-===//
///
/// \file
/// The program container. A module owns a dense array of instructions
/// (indexed by InstID), the functions partitioning them into basic blocks,
/// and the symbol table of variables and objects.
///
/// Global variables are modelled as allocations plus initialising stores in
/// a synthetic "__global_init__" function which the ICFG sequences before
/// \c main, mirroring how SVF handles global initialisation.
///
//===----------------------------------------------------------------------===//

#ifndef VSFS_IR_MODULE_H
#define VSFS_IR_MODULE_H

#include "ir/Instruction.h"
#include "ir/SymbolTable.h"

#include <cassert>
#include <string>
#include <unordered_map>
#include <vector>

namespace vsfs {
namespace ir {

/// A basic block: a sequence of instruction IDs plus successor block IDs.
struct BasicBlock {
  std::string Name;
  std::vector<InstID> Insts;
  std::vector<BlockID> Succs;
};

/// A function. Every function has a unique FunEntry instruction (in its
/// entry block) and a unique FunExit instruction (UnifyFunctionExitNodes);
/// the builder and parser enforce this shape.
struct Function {
  std::string Name;
  FunID Id = InvalidFun;
  std::vector<VarID> Params;
  std::vector<BasicBlock> Blocks;
  InstID Entry = InvalidInst; ///< The FunEntry instruction.
  InstID Exit = InvalidInst;  ///< The FunExit instruction.
  /// The object representing this function's address; created on demand
  /// when the address is taken (targets of indirect calls).
  ObjID AddrObject = InvalidObj;

  bool hasAddressTaken() const { return AddrObject != InvalidObj; }
  BlockID entryBlock() const { return 0; }
};

/// The whole program.
class Module {
public:
  SymbolTable &symbols() { return Symbols; }
  const SymbolTable &symbols() const { return Symbols; }

  // --- Functions --------------------------------------------------------

  /// Creates an empty function (no blocks yet) and registers its name.
  FunID makeFunction(std::string Name) {
    assert(FunByName.find(Name) == FunByName.end() && "duplicate function");
    FunID Id = static_cast<FunID>(Funs.size());
    Funs.emplace_back();
    Funs.back().Name = Name;
    Funs.back().Id = Id;
    FunByName.emplace(std::move(Name), Id);
    return Id;
  }

  Function &function(FunID F) {
    assert(F < Funs.size() && "unknown function");
    return Funs[F];
  }
  const Function &function(FunID F) const {
    assert(F < Funs.size() && "unknown function");
    return Funs[F];
  }

  FunID lookupFunction(const std::string &Name) const {
    auto It = FunByName.find(Name);
    return It == FunByName.end() ? InvalidFun : It->second;
  }

  uint32_t numFunctions() const { return static_cast<uint32_t>(Funs.size()); }

  /// Returns (creating on first use) the object for \p F's address.
  ObjID functionAddressObject(FunID F) {
    Function &Fun = function(F);
    if (Fun.AddrObject == InvalidObj)
      Fun.AddrObject = Symbols.makeFunctionObject(Fun.Name, F);
    return Fun.AddrObject;
  }

  // --- Instructions -----------------------------------------------------

  /// Appends \p Inst to the module-wide array; does not attach it to a
  /// block (the builder does that).
  InstID addInstruction(Instruction Inst) {
    Insts.push_back(std::move(Inst));
    return static_cast<InstID>(Insts.size() - 1);
  }

  Instruction &inst(InstID I) {
    assert(I < Insts.size() && "unknown instruction");
    return Insts[I];
  }
  const Instruction &inst(InstID I) const {
    assert(I < Insts.size() && "unknown instruction");
    return Insts[I];
  }

  uint32_t numInstructions() const {
    return static_cast<uint32_t>(Insts.size());
  }

  // --- Entry points -----------------------------------------------------

  void setGlobalInit(FunID F) { GlobalInit = F; }
  FunID globalInit() const { return GlobalInit; }

  void setMain(FunID F) { Main = F; }
  FunID main() const { return Main; }

  /// Module-level variables holding function addresses (see
  /// IRBuilder::functionAddress); the printer resolves them back to @name.
  void registerFunAddrVar(VarID V, FunID F) { FunAddrVars.emplace(V, F); }
  FunID funAddrVarTarget(VarID V) const {
    auto It = FunAddrVars.find(V);
    return It == FunAddrVars.end() ? InvalidFun : It->second;
  }
  VarID lookupFunAddrVar(FunID F) const {
    for (const auto &[V, Fun] : FunAddrVars)
      if (Fun == F)
        return V;
    return InvalidVar;
  }

  /// Named global top-level variables (for the parser and printer).
  void registerGlobalVar(const std::string &Name, VarID V) {
    GlobalVarByName.emplace(Name, V);
  }
  VarID lookupGlobalVar(const std::string &Name) const {
    auto It = GlobalVarByName.find(Name);
    return It == GlobalVarByName.end() ? InvalidVar : It->second;
  }
  const std::unordered_map<std::string, VarID> &globalVars() const {
    return GlobalVarByName;
  }

private:
  SymbolTable Symbols;
  std::vector<Instruction> Insts;
  std::vector<Function> Funs;
  std::unordered_map<std::string, FunID> FunByName;
  std::unordered_map<std::string, VarID> GlobalVarByName;
  std::unordered_map<VarID, FunID> FunAddrVars;
  FunID GlobalInit = InvalidFun;
  FunID Main = InvalidFun;
};

} // namespace ir
} // namespace vsfs

#endif // VSFS_IR_MODULE_H
