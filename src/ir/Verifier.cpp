//===- Verifier.cpp -------------------------------------------*- C++ -*-===//

#include "ir/Verifier.h"

#include "ir/Printer.h"

#include <unordered_set>

using namespace vsfs;
using namespace vsfs::ir;

namespace {

/// Collects the variables an instruction uses (not defines).
void collectUses(const Instruction &Inst, std::vector<VarID> &Uses) {
  collectUsedVars(Inst, Uses);
}

} // namespace

std::vector<std::string> vsfs::ir::verifyModule(const Module &M) {
  std::vector<std::string> Errors;
  auto Error = [&Errors](std::string Msg) { Errors.push_back(std::move(Msg)); };

  const uint32_t NumVars = M.symbols().numVars();
  std::vector<uint32_t> DefCount(NumVars, 0);

  for (FunID F = 0; F < M.numFunctions(); ++F) {
    const Function &Fun = M.function(F);
    if (Fun.Blocks.empty()) {
      Error("function @" + Fun.Name + " has no body");
      continue;
    }

    uint32_t NumEntries = 0, NumExits = 0;
    for (BlockID BB = 0; BB < Fun.Blocks.size(); ++BB) {
      const BasicBlock &Block = Fun.Blocks[BB];
      for (BlockID S : Block.Succs) {
        if (S >= Fun.Blocks.size())
          Error("function @" + Fun.Name + " block '" + Block.Name +
                "' has out-of-range successor");
        // The entry block holds the FunEntry definitions of the incoming
        // memory state; giving it predecessors would let loop-carried state
        // bypass them (same restriction as LLVM).
        else if (S == Fun.entryBlock())
          Error("@" + Fun.Name + ": branch to the entry block (block '" +
                Block.Name + "')");
      }

      bool HasExit = false;
      for (InstID I : Block.Insts) {
        const Instruction &Inst = M.inst(I);
        if (Inst.Parent != F)
          Error("instruction '" + printInst(M, I) +
                "' is listed by @" + Fun.Name + " but owned elsewhere");
        if (Inst.Block != BB)
          Error("instruction '" + printInst(M, I) +
                "' has a stale block index in @" + Fun.Name);

        if (Inst.Kind == InstKind::FunEntry) {
          ++NumEntries;
          if (BB != 0 || Block.Insts.front() != I)
            Error("@" + Fun.Name +
                  ": FunEntry must be the first instruction of block 0");
          for (VarID P : Inst.Operands)
            if (P < NumVars)
              ++DefCount[P];
        } else if (Inst.Kind == InstKind::FunExit) {
          ++NumExits;
          HasExit = true;
        }

        if (Inst.definesVar()) {
          if (Inst.Dst >= NumVars) {
            Error("@" + Fun.Name + ": instruction defines unknown variable");
          } else {
            ++DefCount[Inst.Dst];
            const VarInfo &Info = M.symbols().var(Inst.Dst);
            if (Info.Parent != F && Info.Parent != InvalidFun)
              Error("@" + Fun.Name + ": defines variable %" + Info.Name +
                    " owned by another function");
          }
        }

        if (Inst.Kind == InstKind::Phi && Inst.Operands.empty())
          Error("@" + Fun.Name + ": phi with no sources");

        std::vector<VarID> Uses;
        collectUses(Inst, Uses);
        for (VarID V : Uses) {
          if (V >= NumVars) {
            Error("@" + Fun.Name + ": instruction '" + printInst(M, I) +
                  "' uses an unknown variable");
            continue;
          }
          const VarInfo &Info = M.symbols().var(V);
          if (Info.Parent != InvalidFun && Info.Parent != F)
            Error("@" + Fun.Name + ": uses %" + Info.Name +
                  " owned by another function");
        }
      }

      if (Block.Succs.empty() && !HasExit)
        Error("@" + Fun.Name + ": block '" + Block.Name +
              "' has no terminator");
      if (HasExit && !Block.Succs.empty())
        Error("@" + Fun.Name + ": exit block has successors");
    }

    if (NumEntries != 1)
      Error("@" + Fun.Name + " has " + std::to_string(NumEntries) +
            " FunEntry instructions (need exactly 1)");
    if (NumExits != 1)
      Error("@" + Fun.Name + " has " + std::to_string(NumExits) +
            " FunExit instructions (need exactly 1)");
    if (Fun.Entry == InvalidInst ||
        M.inst(Fun.Entry).Kind != InstKind::FunEntry)
      Error("@" + Fun.Name + ": Entry does not point at a FunEntry");
    if (Fun.Exit == InvalidInst || M.inst(Fun.Exit).Kind != InstKind::FunExit)
      Error("@" + Fun.Name + ": Exit does not point at a FunExit");
  }

  // Partial SSA: single definitions. A variable that is never used may have
  // zero defs only if it is also never defined (dead name), so check uses.
  std::vector<uint8_t> Used(NumVars, 0);
  for (InstID I = 0; I < M.numInstructions(); ++I) {
    std::vector<VarID> Uses;
    collectUses(M.inst(I), Uses);
    for (VarID V : Uses)
      if (V < NumVars)
        Used[V] = 1;
  }
  for (VarID V = 0; V < NumVars; ++V) {
    if (DefCount[V] > 1)
      Error("variable " + printVar(M, V) + " has " +
            std::to_string(DefCount[V]) + " definitions (partial SSA)");
    if (Used[V] && DefCount[V] == 0)
      Error("variable " + printVar(M, V) + " is used but never defined");
  }

  return Errors;
}

std::vector<std::string> vsfs::ir::lintModule(const Module &M) {
  std::vector<std::string> Warnings;
  auto Warn = [&Warnings](std::string Msg) {
    Warnings.push_back(std::move(Msg));
  };

  const uint32_t NumVars = M.symbols().numVars();
  std::vector<uint8_t> Defined(NumVars, 0), Used(NumVars, 0);

  for (InstID I = 0; I < M.numInstructions(); ++I) {
    const Instruction &Inst = M.inst(I);
    if (Inst.definesVar() && Inst.Dst < NumVars)
      Defined[Inst.Dst] = 1;
    if (Inst.Kind == InstKind::FunEntry)
      for (VarID P : Inst.Operands)
        if (P < NumVars)
          Defined[P] = 1; // Parameters are defined by the entry.
    std::vector<VarID> Uses;
    collectUses(Inst, Uses);
    for (VarID V : Uses)
      if (V < NumVars)
        Used[V] = 1;
  }

  // Unreachable blocks: forward walk over successors from each entry.
  for (FunID F = 0; F < M.numFunctions(); ++F) {
    const Function &Fun = M.function(F);
    if (Fun.Blocks.empty())
      continue;
    std::vector<uint8_t> Seen(Fun.Blocks.size(), 0);
    std::vector<BlockID> Stack{Fun.entryBlock()};
    Seen[Fun.entryBlock()] = 1;
    while (!Stack.empty()) {
      BlockID BB = Stack.back();
      Stack.pop_back();
      for (BlockID S : Fun.Blocks[BB].Succs)
        if (S < Fun.Blocks.size() && !Seen[S]) {
          Seen[S] = 1;
          Stack.push_back(S);
        }
    }
    for (BlockID BB = 0; BB < Fun.Blocks.size(); ++BB)
      if (!Seen[BB])
        Warn("@" + Fun.Name + ": block '" + Fun.Blocks[BB].Name +
             "' is unreachable from the entry");
  }

  // Defined-but-never-used top-level variables (dead definitions).
  for (VarID V = 0; V < NumVars; ++V)
    if (Defined[V] && !Used[V])
      Warn("variable " + printVar(M, V) + " is defined but never used");

  // Loads through pointers with no definition anywhere: such a load can
  // only ever read the null/uninitialised state.
  for (InstID I = 0; I < M.numInstructions(); ++I) {
    const Instruction &Inst = M.inst(I);
    if (Inst.Kind != InstKind::Load)
      continue;
    VarID P = Inst.loadPtr();
    if (P < NumVars && !Defined[P])
      Warn("load '" + printInst(M, I) + "' reads through never-defined "
           "pointer " + printVar(M, P));
  }

  // Cell-level lints over allocs whose address variable is only ever the
  // pointer operand of direct load/store/free instructions. For those the
  // complete access set of the cell is known syntactically (the address
  // cannot have been copied, stored away, phi-merged or passed to a call),
  // so two judgements are safe:
  //  - dead-store cell: stored to at least once but never loaded — every
  //    write through it is unobservable;
  //  - single-block cell: every access sits in the alloc's own block — the
  //    address never even escapes one basic block, so the cell expresses no
  //    cross-block data flow (usually a generator artefact or leftover).
  struct CellUse {
    uint32_t Loads = 0, Stores = 0;
    bool Escapes = false;     ///< Used as anything but a direct access.
    bool LeavesBlock = false; ///< Accessed outside the alloc's block.
    bool Accessed = false;    ///< Any load/store/free through it at all.
  };
  std::vector<InstID> AllocOf(NumVars, InvalidInst);
  for (InstID I = 0; I < M.numInstructions(); ++I) {
    const Instruction &Inst = M.inst(I);
    if (Inst.Kind == InstKind::Alloc && Inst.Dst < NumVars)
      AllocOf[Inst.Dst] = I;
  }
  std::vector<CellUse> Cells(NumVars);
  for (InstID I = 0; I < M.numInstructions(); ++I) {
    const Instruction &Inst = M.inst(I);
    auto Touch = [&](VarID A, bool IsLoad, bool IsStore, bool Direct) {
      if (A >= NumVars || AllocOf[A] == InvalidInst)
        return;
      CellUse &C = Cells[A];
      if (!Direct) {
        C.Escapes = true;
        return;
      }
      C.Accessed = true;
      C.Loads += IsLoad;
      C.Stores += IsStore;
      const Instruction &Alloc = M.inst(AllocOf[A]);
      if (Inst.Parent != Alloc.Parent || Inst.Block != Alloc.Block)
        C.LeavesBlock = true;
    };
    switch (Inst.Kind) {
    case InstKind::Load:
      Touch(Inst.loadPtr(), /*IsLoad=*/true, /*IsStore=*/false, true);
      break;
    case InstKind::Store:
      Touch(Inst.storePtr(), false, /*IsStore=*/true, true);
      Touch(Inst.storeVal(), false, false, /*Direct=*/false); // Address escapes.
      break;
    case InstKind::Free:
      Touch(Inst.freePtr(), false, false, true);
      break;
    default: {
      std::vector<VarID> Uses;
      collectUses(Inst, Uses);
      for (VarID V : Uses)
        Touch(V, false, false, /*Direct=*/false);
      break;
    }
    }
  }
  for (VarID A = 0; A < NumVars; ++A) {
    const CellUse &C = Cells[A];
    if (AllocOf[A] == InvalidInst || C.Escapes)
      continue;
    if (C.Stores > 0 && C.Loads == 0)
      Warn("cell of '" + printInst(M, AllocOf[A]) + "' is stored to " +
           std::to_string(C.Stores) + " time(s) but never loaded");
    if (C.Accessed && !C.LeavesBlock)
      Warn("alloc '" + printInst(M, AllocOf[A]) + "' never escapes its own "
           "block (address " + printVar(M, A) + " only used locally)");
  }

  return Warnings;
}

std::vector<std::string> vsfs::ir::lintModule(const Module &M,
                                              const AuxPtsFn &AuxPts) {
  std::vector<std::string> Warnings = lintModule(M);
  if (!AuxPts)
    return Warnings;

  const SymbolTable &Syms = M.symbols();
  auto RootKind = [&Syms](ObjID O) {
    while (Syms.object(O).Kind == ObjKind::Field)
      O = Syms.object(O).Base;
    return Syms.object(O).Kind;
  };

  // Free of a non-heap target. Sound to warn from a may analysis: when not
  // even the over-approximate set contains a heap object, no execution can
  // hand this free heap memory.
  for (InstID I = 0; I < M.numInstructions(); ++I) {
    const Instruction &Inst = M.inst(I);
    if (Inst.Kind != InstKind::Free)
      continue;
    const PointsTo *Pts = AuxPts(Inst.freePtr());
    if (!Pts)
      continue;
    bool AnyTarget = false, AnyHeap = false;
    for (uint32_t O : *Pts) {
      if (Syms.isFunctionObject(O))
        continue;
      AnyTarget = true;
      if (RootKind(O) == ObjKind::Heap) {
        AnyHeap = true;
        break;
      }
    }
    if (!AnyHeap)
      Warnings.push_back("free '" + printInst(M, I) +
                         "' cannot release a heap object (" +
                         (AnyTarget ? "every target is stack or global memory"
                                    : "the pointer points to nothing") +
                         ")");
  }
  return Warnings;
}
