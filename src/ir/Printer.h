//===- Printer.h - Textual IR printer ---------------------------*- C++ -*-===//
///
/// \file
/// Prints a module in the textual syntax accepted by \c parseModule, so
/// print(parse(T)) round-trips. Also provides single-instruction printing
/// for diagnostics and the examples.
///
//===----------------------------------------------------------------------===//

#ifndef VSFS_IR_PRINTER_H
#define VSFS_IR_PRINTER_H

#include "ir/Module.h"

#include <string>

namespace vsfs {
namespace ir {

/// Renders the whole module as parseable text.
std::string printModule(const Module &M);

/// Renders one instruction (without trailing newline).
std::string printInst(const Module &M, InstID I);

/// Renders an operand: "%name" for locals, "@name" for globals and function
/// addresses.
std::string printVar(const Module &M, VarID V);

} // namespace ir
} // namespace vsfs

#endif // VSFS_IR_PRINTER_H
