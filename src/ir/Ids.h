//===- Ids.h - Dense ID types for the IR ------------------------*- C++ -*-===//
///
/// \file
/// Dense integer identifiers for the entities of Table I: top-level
/// variables (P = S ∪ G), address-taken abstract objects (A = O ∪ F),
/// instruction labels (L), functions, and basic blocks. All IDs are dense
/// uint32_t values so analyses can index vectors and sparse bit vectors
/// directly.
///
//===----------------------------------------------------------------------===//

#ifndef VSFS_IR_IDS_H
#define VSFS_IR_IDS_H

#include <cstdint>

namespace vsfs {
namespace ir {

/// A top-level (stack or global) pointer variable.
using VarID = uint32_t;
/// An address-taken abstract object or field object.
using ObjID = uint32_t;
/// An instruction label (dense across the whole module).
using InstID = uint32_t;
/// A function.
using FunID = uint32_t;
/// A basic block index within its function.
using BlockID = uint32_t;

constexpr VarID InvalidVar = UINT32_MAX;
constexpr ObjID InvalidObj = UINT32_MAX;
constexpr InstID InvalidInst = UINT32_MAX;
constexpr FunID InvalidFun = UINT32_MAX;
constexpr BlockID InvalidBlock = UINT32_MAX;

} // namespace ir
} // namespace vsfs

#endif // VSFS_IR_IDS_H
