//===- Parser.h - Textual IR parser -----------------------------*- C++ -*-===//
///
/// \file
/// Parses the textual form of the Table I instruction set. The syntax is a
/// thin, readable skin over the IR; see the grammar below. Examples and
/// tests express programs in this language.
///
/// \code
///   ; a global object and an initialiser (*g = &x is spelt "= @x")
///   global @g [fields=2] = @x
///   global @x
///
///   func @main(%argc) {
///   entry:
///     %p = alloc                ; stack singleton, 1 field
///     %h = alloc [heap]         ; heap object (never singleton)
///     %q = copy %p
///     %f = field %h, 1          ; %f = &h->f1
///     store %q -> %p            ; *p = q
///     %v = load %p              ; v = *p
///     %r = call @callee(%p, %q) ; direct call
///     %fp = funcaddr @callee
///     %s = call %fp(%p)         ; indirect call
///     br next, done             ; 1..n successor labels
///   next:
///     ret %v
///   done:
///     ret %r                    ; multiple rets are legal; the parser
///   }                           ; unifies them into one FunExit
/// \endcode
///
/// A '@name' operand resolves to the global variable of that name, or, if
/// none exists, to the address of the function of that name.
///
//===----------------------------------------------------------------------===//

#ifndef VSFS_IR_PARSER_H
#define VSFS_IR_PARSER_H

#include "ir/Module.h"

#include <string>
#include <string_view>

namespace vsfs {
namespace ir {

/// Parses \p Text into \p M (which must be empty). On failure returns false
/// and sets \p Error to "line N: message".
bool parseModule(std::string_view Text, Module &M, std::string &Error);

} // namespace ir
} // namespace vsfs

#endif // VSFS_IR_PARSER_H
