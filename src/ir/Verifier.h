//===- Verifier.h - IR structural checks ------------------------*- C++ -*-===//
///
/// \file
/// Validates the structural invariants the analyses assume:
///  - partial SSA: every top-level variable has exactly one definition;
///  - every function has exactly one FunEntry (first instruction of block 0)
///    and one FunExit, and only the FunExit block lacks successors;
///  - instructions are attached to the function/block that lists them;
///  - operands are visible (local to the function, or module-level).
///
//===----------------------------------------------------------------------===//

#ifndef VSFS_IR_VERIFIER_H
#define VSFS_IR_VERIFIER_H

#include "adt/PointsTo.h"
#include "ir/Module.h"

#include <functional>
#include <string>
#include <vector>

namespace vsfs {
namespace ir {

/// Returns all violations found (empty means the module is well formed).
std::vector<std::string> verifyModule(const Module &M);

/// Non-fatal lint pass: structural oddities that are legal IR but usually
/// indicate generator or hand-writing mistakes. Reported as warnings by
/// `vsfs-wpa --lint`; never affects analysis results. Currently:
///  - blocks unreachable from their function's entry block;
///  - top-level variables that are defined but never used;
///  - loads whose pointer operand has no definition anywhere (no defining
///    instruction, not a parameter, not a global);
///  - dead-store cells: an alloc'd cell whose address is only ever the
///    pointer operand of direct load/store/free, stored to but never
///    loaded (every write through it is unobservable);
///  - single-block allocs: such a cell whose every access sits in the
///    alloc's own basic block (the address never escapes one block).
std::vector<std::string> lintModule(const Module &M);

/// Resolves a top-level variable to its (typically flow-insensitive)
/// points-to set, or null when the provider has no answer for that
/// variable. Used to feed pointer-aware lints without making the IR layer
/// depend on any analysis.
using AuxPtsFn = std::function<const PointsTo *(VarID)>;

/// \c lintModule plus pointer-aware lints that need a solved points-to
/// view (the CLI passes Andersen's). On top of the structural warnings:
///  - free of a non-heap target: a `free P` where nothing P may point to
///    (function objects ignored, fields widened to their root object) is
///    heap-allocated — the free either releases stack/global memory or
///    releases nothing at all. A null \p AuxPts degenerates to the
///    structural lint.
std::vector<std::string> lintModule(const Module &M, const AuxPtsFn &AuxPts);

} // namespace ir
} // namespace vsfs

#endif // VSFS_IR_VERIFIER_H
