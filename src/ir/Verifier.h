//===- Verifier.h - IR structural checks ------------------------*- C++ -*-===//
///
/// \file
/// Validates the structural invariants the analyses assume:
///  - partial SSA: every top-level variable has exactly one definition;
///  - every function has exactly one FunEntry (first instruction of block 0)
///    and one FunExit, and only the FunExit block lacks successors;
///  - instructions are attached to the function/block that lists them;
///  - operands are visible (local to the function, or module-level).
///
//===----------------------------------------------------------------------===//

#ifndef VSFS_IR_VERIFIER_H
#define VSFS_IR_VERIFIER_H

#include "ir/Module.h"

#include <string>
#include <vector>

namespace vsfs {
namespace ir {

/// Returns all violations found (empty means the module is well formed).
std::vector<std::string> verifyModule(const Module &M);

/// Non-fatal lint pass: structural oddities that are legal IR but usually
/// indicate generator or hand-writing mistakes. Reported as warnings by
/// `vsfs-wpa --lint`; never affects analysis results. Currently:
///  - blocks unreachable from their function's entry block;
///  - top-level variables that are defined but never used;
///  - loads whose pointer operand has no definition anywhere (no defining
///    instruction, not a parameter, not a global);
///  - dead-store cells: an alloc'd cell whose address is only ever the
///    pointer operand of direct load/store/free, stored to but never
///    loaded (every write through it is unobservable);
///  - single-block allocs: such a cell whose every access sits in the
///    alloc's own basic block (the address never escapes one block).
std::vector<std::string> lintModule(const Module &M);

} // namespace ir
} // namespace vsfs

#endif // VSFS_IR_VERIFIER_H
