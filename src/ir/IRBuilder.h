//===- IRBuilder.h - Programmatic IR construction ----------------*- C++ -*-===//
///
/// \file
/// Builds modules in partial SSA form. The builder enforces the structural
/// invariants the analyses rely on:
///  - every function starts with a FunEntry instruction in block 0;
///  - every function has exactly one FunExit (UnifyFunctionExitNodes): all
///    \c ret sites branch to a synthesised exit block whose return value is
///    merged by a Phi;
///  - taking a function's address materialises an Alloc of the function
///    object, so the [ADDR] rule uniformly seeds function pointers.
///
//===----------------------------------------------------------------------===//

#ifndef VSFS_IR_IRBUILDER_H
#define VSFS_IR_IRBUILDER_H

#include "ir/Module.h"

#include <string>
#include <vector>

namespace vsfs {
namespace ir {

/// Finalises a module for whole-program analysis: if the module has a main
/// function and any global initialisation, appends a "call @main()" to
/// __global_init__ so initialised globals flow into main, and the analyses
/// can treat __global_init__ (if present, else main) as the program entry.
/// Idempotent. Call after building/parsing and before running analyses.
void linkProgramEntry(Module &M);

/// The function analyses should start from: __global_init__ when it exists,
/// otherwise main, otherwise InvalidFun.
FunID programEntry(const Module &M);

/// Incremental module builder. Typical use:
/// \code
///   IRBuilder B(M);
///   FunID F = B.startFunction("main", {"argv"});
///   VarID P = B.alloc("p", "obj_p");
///   B.store(Q, P);
///   B.ret(P);
///   B.finishFunction();
/// \endcode
class IRBuilder {
public:
  explicit IRBuilder(Module &M) : M(M) {}

  Module &module() { return M; }

  // --- Globals ----------------------------------------------------------

  /// Declares a global variable: creates its storage object, the top-level
  /// variable \p Name holding its address, and the Alloc in __global_init__.
  /// Returns the top-level variable.
  VarID addGlobal(const std::string &Name, uint32_t NumFields = 1);

  /// Emits "*global = value" in __global_init__ (global initialiser).
  void addGlobalInit(VarID GlobalVar, VarID Value);

  /// Returns a module-level variable holding \p F's address, creating it
  /// (and its initialising Alloc in __global_init__) on first use.
  VarID functionAddress(FunID F);

  // --- Functions ----------------------------------------------------------

  /// Starts a function with named parameters; creates the entry block with
  /// its FunEntry and leaves the insertion point there.
  FunID startFunction(const std::string &Name,
                      const std::vector<std::string> &ParamNames);

  /// Creates (or retrieves) a block named \p Name in the current function.
  BlockID block(const std::string &Name);

  /// Moves the insertion point to \p Block.
  void setInsertPoint(BlockID Block);
  BlockID insertBlock() const { return CurBlock; }

  /// Terminates the current block with branches to the given successors.
  void br(BlockID B1);
  void br(BlockID B1, BlockID B2);

  /// Terminates the current block with a return of \p Value (InvalidVar for
  /// a void return).
  void ret(VarID Value = InvalidVar);

  /// Synthesises the unified exit block; must be called once per function.
  /// Returns the finished function.
  FunID finishFunction();

  // --- Instructions (emitted at the insertion point) ---------------------

  /// p = alloca_o. Creates object \p ObjName; stack objects default to
  /// singletons, heap objects are never singletons (an allocation site may
  /// execute many times).
  VarID alloc(const std::string &VarName, const std::string &ObjName,
              ObjKind Kind = ObjKind::Stack, bool Singleton = true,
              uint32_t NumFields = 1);

  VarID copy(const std::string &VarName, VarID Src);
  VarID phi(const std::string &VarName, const std::vector<VarID> &Srcs);
  VarID fieldAddr(const std::string &VarName, VarID Base, uint32_t Offset);
  VarID load(const std::string &VarName, VarID Ptr);
  void store(VarID Value, VarID Ptr);
  /// free p: deallocates whatever \p Ptr points to (a memory kill).
  void free(VarID Ptr);

  /// Direct call; \p DstName empty means no return value is used.
  VarID callDirect(const std::string &DstName, FunID Callee,
                   const std::vector<VarID> &Args);
  /// Indirect call through \p CalleePtr.
  VarID callIndirect(const std::string &DstName, VarID CalleePtr,
                     const std::vector<VarID> &Args);

  /// p = &function (an Alloc of the function object).
  VarID funcAddr(const std::string &VarName, FunID F);

  // Destination-reuse variants: emit the same instructions but define an
  // existing variable (the parser needs these to resolve forward references
  // such as loop-carried phi operands).
  void allocTo(VarID Dst, const std::string &ObjName, ObjKind Kind,
               bool Singleton, uint32_t NumFields);
  void copyTo(VarID Dst, VarID Src);
  void phiTo(VarID Dst, const std::vector<VarID> &Srcs);
  void fieldAddrTo(VarID Dst, VarID Base, uint32_t Offset);
  void loadTo(VarID Dst, VarID Ptr);
  void callDirectTo(VarID Dst, FunID Callee, const std::vector<VarID> &Args);
  void callIndirectTo(VarID Dst, VarID CalleePtr,
                      const std::vector<VarID> &Args);
  void funcAddrTo(VarID Dst, FunID F);

  /// Creates a fresh local variable in the current function.
  VarID makeVar(const std::string &Name);

private:
  InstID emit(Instruction Inst);
  FunID ensureGlobalInit();
  void endBlock();

  Module &M;
  FunID CurFun = InvalidFun;
  BlockID CurBlock = InvalidBlock;
  /// Return sites of the current function: (block, returned var).
  std::vector<std::pair<BlockID, VarID>> RetSites;
  /// Whether the current block already has a terminator.
  std::vector<bool> BlockTerminated;
  std::unordered_map<std::string, BlockID> BlockByName;
  std::unordered_map<FunID, VarID> FunAddrVar;
  /// Insertion block inside __global_init__ (its single body block).
  BlockID GlobalInitBlock = InvalidBlock;
};

} // namespace ir
} // namespace vsfs

#endif // VSFS_IR_IRBUILDER_H
