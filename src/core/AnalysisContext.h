//===- AnalysisContext.h - End-to-end analysis pipeline ---------*- C++ -*-===//
///
/// \file
/// Convenience facade assembling the whole stack in the paper's staging
/// order: IR module → Andersen's auxiliary analysis → memory SSA → SVFG.
/// Flow-sensitive analyses (SFS/VSFS) are then constructed on the SVFG.
///
/// \code
///   core::AnalysisContext Ctx;
///   std::string Err;
///   if (!Ctx.loadText(ProgramText, Err)) { ... }
///   Ctx.build();
///   core::VersionedFlowSensitive VSFS(Ctx.svfg());
///   VSFS.solve();
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef VSFS_CORE_ANALYSISCONTEXT_H
#define VSFS_CORE_ANALYSISCONTEXT_H

#include "andersen/Andersen.h"
#include "ir/IRBuilder.h"
#include "ir/Parser.h"
#include "ir/Verifier.h"
#include "memssa/MemSSA.h"
#include "support/Timer.h"
#include "svfg/SVFG.h"

#include <memory>
#include <string>
#include <string_view>

namespace vsfs {
namespace core {

/// Owns the module and every pre-analysis stage.
class AnalysisContext {
public:
  /// Parses textual IR into the module; returns false and sets \p Error on
  /// parse or verification failure.
  bool loadText(std::string_view Text, std::string &Error) {
    if (!ir::parseModule(Text, M, Error))
      return false;
    auto Violations = ir::verifyModule(M);
    if (!Violations.empty()) {
      Error = Violations.front();
      return false;
    }
    return true;
  }

  /// Direct access for programmatically built modules. Call
  /// ir::linkProgramEntry(module()) before build() in that case.
  ir::Module &module() { return M; }
  const ir::Module &module() const { return M; }

  /// Runs Andersen, memory SSA and SVFG construction.
  /// \p ConnectAuxIndirectCalls: wire Andersen-resolved indirect calls into
  /// the SVFG eagerly (required when solving with OnTheFlyCallGraph=false).
  /// \p AndersenOpts configures the auxiliary solver.
  ///
  /// Building is one-shot: the first call fixes the pipeline. A repeated
  /// call with the same options is a no-op returning true; a repeated call
  /// with *different* options returns false and leaves the existing
  /// pipeline untouched — callers must check, or they would silently run
  /// against an SVFG built under other assumptions (e.g. missing the
  /// eagerly connected indirect calls that OnTheFlyCallGraph=false needs).
  bool build(bool ConnectAuxIndirectCalls = false,
             andersen::Andersen::Options AndersenOpts = {}) {
    if (Graph)
      return ConnectAuxIndirectCalls == BuiltConnectAux &&
             AndersenOpts.OfflineSubstitution ==
                 BuiltAndersenOpts.OfflineSubstitution;
    BuiltConnectAux = ConnectAuxIndirectCalls;
    BuiltAndersenOpts = AndersenOpts;
    Timer T;
    Aux = std::make_unique<andersen::Andersen>(M, AndersenOpts);
    Aux->solve();
    AndersenSecs = T.seconds();

    T.start();
    SSA = std::make_unique<memssa::MemSSA>(M, *Aux);
    MemSSASecs = T.seconds();

    T.start();
    Graph = std::make_unique<svfg::SVFG>(M, *Aux, *SSA,
                                         ConnectAuxIndirectCalls);
    SVFGSecs = T.seconds();
    return true;
  }

  /// True once build() has run; accessors below are only valid then.
  bool isBuilt() const { return Graph != nullptr; }
  /// Whether the SVFG was built with Andersen-resolved indirect calls
  /// connected eagerly (what OnTheFlyCallGraph=false solving requires).
  bool builtWithAuxIndirectCalls() const { return BuiltConnectAux; }

  andersen::Andersen &andersen() { return *Aux; }
  memssa::MemSSA &memSSA() { return *SSA; }
  svfg::SVFG &svfg() { return *Graph; }
  const andersen::Andersen &andersen() const { return *Aux; }
  const memssa::MemSSA &memSSA() const { return *SSA; }
  const svfg::SVFG &svfg() const { return *Graph; }

  double andersenSeconds() const { return AndersenSecs; }
  double memSSASeconds() const { return MemSSASecs; }
  double svfgSeconds() const { return SVFGSecs; }

private:
  ir::Module M;
  std::unique_ptr<andersen::Andersen> Aux;
  std::unique_ptr<memssa::MemSSA> SSA;
  std::unique_ptr<svfg::SVFG> Graph;
  bool BuiltConnectAux = false;
  andersen::Andersen::Options BuiltAndersenOpts;
  double AndersenSecs = 0, MemSSASecs = 0, SVFGSecs = 0;
};

} // namespace core
} // namespace vsfs

#endif // VSFS_CORE_ANALYSISCONTEXT_H
