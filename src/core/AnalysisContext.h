//===- AnalysisContext.h - End-to-end analysis pipeline ---------*- C++ -*-===//
///
/// \file
/// Convenience facade assembling the whole stack in the paper's staging
/// order: IR module → Andersen's auxiliary analysis → memory SSA → SVFG.
/// Flow-sensitive analyses (SFS/VSFS) are then constructed on the SVFG.
///
/// \code
///   core::AnalysisContext Ctx;
///   std::string Err;
///   if (!Ctx.loadText(ProgramText, Err)) { ... }
///   Ctx.build();
///   core::VersionedFlowSensitive VSFS(Ctx.svfg());
///   VSFS.solve();
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef VSFS_CORE_ANALYSISCONTEXT_H
#define VSFS_CORE_ANALYSISCONTEXT_H

#include "adt/PointsToCache.h"
#include "andersen/Andersen.h"
#include "ir/IRBuilder.h"
#include "ir/Parser.h"
#include "ir/Verifier.h"
#include "memssa/MemSSA.h"
#include "support/Budget.h"
#include "support/Statistics.h"
#include "support/Timer.h"
#include "svfg/Coalesce.h"
#include "svfg/SVFG.h"

#include <memory>
#include <string>
#include <string_view>

namespace vsfs {
namespace core {

/// Owns the module and every pre-analysis stage.
class AnalysisContext {
public:
  /// Parses textual IR into the module; returns false and sets \p Error on
  /// parse or verification failure.
  bool loadText(std::string_view Text, std::string &Error) {
    if (!ir::parseModule(Text, M, Error))
      return false;
    auto Violations = ir::verifyModule(M);
    if (!Violations.empty()) {
      Error = Violations.front();
      return false;
    }
    return true;
  }

  /// Direct access for programmatically built modules. Call
  /// ir::linkProgramEntry(module()) before build() in that case.
  ir::Module &module() { return M; }
  const ir::Module &module() const { return M; }

  /// Runs Andersen, memory SSA and SVFG construction.
  /// \p ConnectAuxIndirectCalls: wire Andersen-resolved indirect calls into
  /// the SVFG eagerly (required when solving with OnTheFlyCallGraph=false).
  /// \p AndersenOpts configures the auxiliary solver.
  /// \p Budget, when non-null, governs construction (not owned): each stage
  /// runs under its own phase ("andersen", "memssa", "svfg"; none of them
  /// step-governed — the step budget is reserved for the flow-sensitive
  /// solvers, and the auxiliary analysis is the degradation anchor a
  /// step-exhausted run falls back to). On exhaustion the pipeline stops
  /// after the offending stage: a partial Andersen is kept (its monotone
  /// state is a sound under-approximation), while a partial memory SSA or
  /// SVFG is discarded so no solver can run on it. Check buildTermination().
  ///
  /// Building is one-shot: the first call fixes the pipeline (even when it
  /// was cancelled). A repeated call with the same options returns whether
  /// a complete pipeline exists; a repeated call with *different* options
  /// returns false and leaves the existing pipeline untouched — callers
  /// must check, or they would silently run against an SVFG built under
  /// other assumptions (e.g. missing the eagerly connected indirect calls
  /// that OnTheFlyCallGraph=false needs).
  bool build(bool ConnectAuxIndirectCalls = false,
             andersen::Andersen::Options AndersenOpts = {},
             ResourceBudget *Budget = nullptr) {
    if (Attempted)
      return isBuilt() && ConnectAuxIndirectCalls == BuiltConnectAux &&
             AndersenOpts.OfflineSubstitution ==
                 BuiltAndersenOpts.OfflineSubstitution;
    Attempted = true;
    BuiltConnectAux = ConnectAuxIndirectCalls;
    BuiltAndersenOpts = AndersenOpts;

    // A fresh pipeline build is the natural drain point for the
    // process-global interning cache: sets from a torn-down previous
    // context are dead by now, and nothing of this context is interned
    // yet. No-op while any persistent set is still live.
    if (adt::pointsToRepr() == adt::PtsRepr::Persistent)
      adt::PointsToCache::get().drainIfIdle();

    Timer T;
    if (Budget) {
      Budget->beginPhase("andersen", /*StepGoverned=*/false);
      AndersenOpts.Budget = Budget;
    }
    Aux = std::make_unique<andersen::Andersen>(M, AndersenOpts);
    Aux->solve();
    AndersenSecs = T.seconds();
    BuildStatus = Aux->termination();
    if (BuildStatus != Termination::Completed)
      return false; // Partial aux state kept; later stages never run.

    T.start();
    if (Budget)
      Budget->beginPhase("memssa", /*StepGoverned=*/false);
    SSA = std::make_unique<memssa::MemSSA>(M, *Aux, Budget);
    MemSSASecs = T.seconds();
    if (Budget && Budget->exhausted()) {
      BuildStatus = Budget->status();
      SSA.reset(); // Partial SSA form must never reach the SVFG builder.
      return false;
    }

    T.start();
    if (Budget)
      Budget->beginPhase("svfg", /*StepGoverned=*/false);
    Graph = std::make_unique<svfg::SVFG>(M, *Aux, *SSA,
                                         ConnectAuxIndirectCalls, Budget);
    SVFGSecs = T.seconds();
    if (Budget && Budget->exhausted()) {
      BuildStatus = Budget->status();
      Graph.reset(); // Partial graph: solvers must not run on it.
      return false;
    }
    return true;
  }

  /// Runs the transfer-equivalence coalescing pass (svfg/Coalesce.h,
  /// `--coalesce=on`) and rewrites the SVFG onto class representatives.
  /// Must run after a successful build() and before any solver, slicer or
  /// query engine touches the graph — the rewrite changes the edge lists
  /// in place. Idempotent: repeated calls (and calls on an unbuilt
  /// context) return false without touching anything.
  bool coalesce() {
    if (!isBuilt() || CMap != nullptr)
      return false;
    Timer T;
    CMap = std::make_unique<svfg::CoalesceMap>(
        svfg::computeTransferEquivalence(*Graph));
    Graph->applyCoalescing(*CMap);
    CoalesceSecs = T.seconds();
    return true;
  }

  /// The applied coalesce map, or null when coalescing never ran.
  const svfg::CoalesceMap *coalesceMap() const { return CMap.get(); }

  /// The "coalesce" StatGroup for --stats-json (empty when coalescing
  /// never ran): classes, nodes/edges removed, member flavours, refine
  /// iterations — docs/COALESCING.md documents each key.
  StatGroup coalesceStats() const {
    StatGroup S("coalesce");
    if (CMap == nullptr)
      return S;
    S.get("classes") = CMap->numClasses();
    S.get("eligible-nodes") = CMap->EligibleNodes;
    S.get("coalesced-nodes") = CMap->CoalescedNodes;
    S.get("forward-members") = CMap->ForwardMembers;
    S.get("samein-members") = CMap->SameInMembers;
    S.get("edges-removed") = CMap->EdgesRemoved;
    S.get("self-loops-dropped") = CMap->SelfLoopsDropped;
    S.get("refine-iterations") = CMap->RefineIterations;
    return S;
  }

  /// True once build() has produced a complete pipeline; svfg()/memSSA()
  /// are only valid then (andersen() is valid whenever build() ran at all,
  /// including cancelled builds — possibly holding partial monotone state).
  bool isBuilt() const { return Graph != nullptr; }
  /// How construction ended: Completed, or the budget status of the stage
  /// that exhausted it (the stage's partial output is discarded, except
  /// Andersen's, whose monotone partial state is kept).
  Termination buildTermination() const { return BuildStatus; }
  /// Whether the SVFG was built with Andersen-resolved indirect calls
  /// connected eagerly (what OnTheFlyCallGraph=false solving requires).
  bool builtWithAuxIndirectCalls() const { return BuiltConnectAux; }

  andersen::Andersen &andersen() { return *Aux; }
  memssa::MemSSA &memSSA() { return *SSA; }
  svfg::SVFG &svfg() { return *Graph; }
  const andersen::Andersen &andersen() const { return *Aux; }
  const memssa::MemSSA &memSSA() const { return *SSA; }
  const svfg::SVFG &svfg() const { return *Graph; }

  double andersenSeconds() const { return AndersenSecs; }
  double memSSASeconds() const { return MemSSASecs; }
  double svfgSeconds() const { return SVFGSecs; }
  double coalesceSeconds() const { return CoalesceSecs; }

private:
  ir::Module M;
  std::unique_ptr<andersen::Andersen> Aux;
  std::unique_ptr<memssa::MemSSA> SSA;
  std::unique_ptr<svfg::SVFG> Graph;
  std::unique_ptr<svfg::CoalesceMap> CMap;
  bool Attempted = false;
  bool BuiltConnectAux = false;
  andersen::Andersen::Options BuiltAndersenOpts;
  Termination BuildStatus = Termination::Completed;
  double AndersenSecs = 0, MemSSASecs = 0, SVFGSecs = 0, CoalesceSecs = 0;
};

} // namespace core
} // namespace vsfs

#endif // VSFS_CORE_ANALYSISCONTEXT_H
