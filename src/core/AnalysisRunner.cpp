//===- AnalysisRunner.cpp - Name → solver registry and runner ---*- C++ -*-===//

#include "core/AnalysisRunner.h"

#include "adt/PointsToCache.h"
#include "core/FlowSensitive.h"
#include "core/IterativeFlowSensitive.h"
#include "core/VersionedFlowSensitive.h"
#include "support/Schemas.h"
#include "support/Timer.h"

#include <cassert>
#include <cstdio>
#include <sstream>

using namespace vsfs;
using namespace vsfs::core;

uint64_t AndersenResult::numPtsSetsStored() const {
  // Andersen keeps one set per abstract object (what the object's memory
  // points to), position-insensitively.
  const ir::Module &M = A.module();
  uint64_t Total = 0;
  for (ir::ObjID O = 0; O < M.symbols().numObjects(); ++O)
    Total += A.ptsOfObj(O).empty() ? 0 : 1;
  return Total;
}

uint64_t AndersenResult::footprintBytes() const {
  const ir::Module &M = A.module();
  uint64_t Total = 0;
  for (ir::VarID V = 0; V < M.symbols().numVars(); ++V)
    Total += A.ptsOfVar(V).capacityBytes();
  for (ir::ObjID O = 0; O < M.symbols().numObjects(); ++O)
    Total += A.ptsOfObj(O).capacityBytes();
  return Total;
}

AnalysisRunner &AnalysisRunner::registry() {
  static AnalysisRunner R = [] {
    AnalysisRunner Reg;
    Reg.add({"ander",
             {},
             "flow-insensitive inclusion-based analysis (the auxiliary "
             "stage)",
             [](AnalysisContext &Ctx, const SolverOptions &) {
               return std::make_unique<AndersenResult>(Ctx.andersen());
             }});
    Reg.add({"iter",
             {"dense"},
             "dense iterative ICFG data-flow analysis (SIV-A baseline)",
             [](AnalysisContext &Ctx, const SolverOptions &Opts) {
               return std::make_unique<IterativeFlowSensitive>(
                   Ctx.module(), Ctx.andersen(), Opts.Budget);
             }});
    Reg.add({"sfs",
             {},
             "staged flow-sensitive analysis (Hardekopf & Lin)",
             [](AnalysisContext &Ctx, const SolverOptions &Opts) {
               FlowSensitive::Options O;
               O.OnTheFlyCallGraph = Opts.OnTheFlyCallGraph;
               O.Budget = Opts.Budget;
               O.Scope = Opts.Scope;
               return std::make_unique<FlowSensitive>(Ctx.svfg(), O);
             }});
    Reg.add({"vsfs",
             {},
             "versioned staged flow-sensitive analysis (the paper)",
             [](AnalysisContext &Ctx, const SolverOptions &Opts) {
               VersionedFlowSensitive::Options O;
               O.OnTheFlyCallGraph = Opts.OnTheFlyCallGraph;
               O.LabelRep = Opts.LabelRep;
               O.Budget = Opts.Budget;
               O.Scope = Opts.Scope;
               return std::make_unique<VersionedFlowSensitive>(Ctx.svfg(),
                                                               O);
             }});
    return Reg;
  }();
  return R;
}

void AnalysisRunner::add(Entry E) {
  for (Entry &Existing : Entries) {
    if (Existing.Name == E.Name) {
      Existing = std::move(E);
      return;
    }
  }
  Entries.push_back(std::move(E));
}

const AnalysisRunner::Entry *
AnalysisRunner::find(std::string_view Name) const {
  for (const Entry &E : Entries) {
    if (E.Name == Name)
      return &E;
    for (const std::string &A : E.Aliases)
      if (A == Name)
        return &E;
  }
  return nullptr;
}

std::string AnalysisRunner::namesString() const {
  std::string Out;
  for (const Entry &E : Entries) {
    if (!Out.empty())
      Out += " | ";
    Out += E.Name;
  }
  return Out;
}

AnalysisRunner::RunResult
AnalysisRunner::run(AnalysisContext &Ctx, std::string_view Name,
                    const SolverOptions &Opts) const {
  RunResult R;
  const Entry *E = find(Name);
  if (!E)
    return R;
  assert(Ctx.isBuilt() && "run() needs a built AnalysisContext");
  assert((Opts.OnTheFlyCallGraph || Ctx.builtWithAuxIndirectCalls()) &&
         "aux-call-graph solving needs ConnectAuxIndirectCalls at build");
  R.Name = E->Name;
  if (Opts.Budget) {
    // Drain the process-global interning cache if no live persistent set
    // pins it: a previous degraded/failed run's sets are gone by now, and
    // reclaiming them is what keeps the memory meter honest across the
    // independent runs of an --analysis=all session.
    if (adt::pointsToRepr() == adt::PtsRepr::Persistent)
      adt::PointsToCache::get().drainIfIdle();
    // One step-governed phase per flow-sensitive solver; the auxiliary
    // analysis was governed (deadline/memory only) during the build.
    Opts.Budget->beginPhase(E->Name.c_str(),
                            /*StepGoverned=*/E->Name != "ander");
  }
  R.Analysis = E->Make(Ctx, Opts);
  Timer T;
  R.Analysis->solve();
  R.SolveSeconds = T.seconds();
  R.Status = R.Analysis->termination();
  if (R.Status == Termination::Completed)
    return R;
  switch (Opts.Policy) {
  case SolverOptions::OnExhaustion::Degrade:
    // Sound degradation needs a *completed* over-approximation to stand
    // in; a cancelled auxiliary analysis cannot provide one, so the run
    // falls through to failure semantics (Degraded stays false).
    if (Ctx.andersen().termination() == Termination::Completed) {
      R.Analysis = std::make_unique<AndersenResult>(Ctx.andersen());
      R.Degraded = true;
    }
    break;
  case SolverOptions::OnExhaustion::Partial:
    R.Partial = true;
    break;
  case SolverOptions::OnExhaustion::Fail:
    break;
  }
  return R;
}

std::string vsfs::core::statsText(const AnalysisRunner::RunResult &R) {
  std::string Out;
  // VSFS's versioning pre-analysis reports its own group, like the tool
  // always printed it.
  if (const auto *V =
          dynamic_cast<const VersionedFlowSensitive *>(R.Analysis.get()))
    Out += V->versioning().stats().toString();
  Out += R.Analysis->stats().toString();
  // The interning cache is process-global, not per-run, so it reports once
  // per invocation and only when the persistent representation is active.
  if (adt::pointsToRepr() == adt::PtsRepr::Persistent)
    Out += adt::PointsToCache::get().statGroup().toString();
  return Out;
}

namespace {

void jsonKey(std::ostringstream &OS, int Indent, const char *Key) {
  for (int I = 0; I < Indent; ++I)
    OS << ' ';
  OS << '"' << Key << "\": ";
}

std::string jsonDouble(double D) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.6f", D);
  return Buf;
}

/// Wall-clock durations are the only nondeterministic values in the
/// document; under --deterministic-stats they render as 0.000000 so two
/// runs of the same input are bit-identical (see deterministicStats()).
std::string jsonSeconds(double D) {
  return jsonDouble(deterministicStats() ? 0.0 : D);
}

void jsonCounters(std::ostringstream &OS, int Indent, const StatGroup &G) {
  OS << "{";
  bool First = true;
  for (const auto &[Key, Value] : G) {
    OS << (First ? "\n" : ",\n");
    jsonKey(OS, Indent + 2, Key.c_str());
    OS << Value;
    First = false;
  }
  OS << '\n';
  for (int I = 0; I < Indent; ++I)
    OS << ' ';
  OS << '}';
}

} // namespace

std::string vsfs::core::statsJson(
    const AnalysisContext &Ctx,
    const std::vector<AnalysisRunner::RunResult> &Results,
    const std::vector<std::vector<StatGroup>> *ClientGroups,
    const ResourceBudget *Budget, std::string_view Mode) {
  const ir::Module &M = Ctx.module();
  std::ostringstream OS;
  OS << "{\n";
  jsonKey(OS, 2, "schema");
  OS << '"' << schemas::StatsJson << "\",\n";
  jsonKey(OS, 2, "mode");
  OS << '"' << Mode << "\",\n";
  jsonKey(OS, 2, "pts_repr");
  OS << '"' << adt::ptsReprName(adt::pointsToRepr()) << "\",\n";
  // How the pipeline build itself ended; a cancelled build has no
  // pipeline section below.
  jsonKey(OS, 2, "termination");
  OS << '"' << terminationName(Ctx.buildTermination()) << "\",\n";

  jsonKey(OS, 2, "module");
  OS << "{\n";
  jsonKey(OS, 4, "instructions");
  OS << M.numInstructions() << ",\n";
  jsonKey(OS, 4, "functions");
  OS << M.numFunctions() << ",\n";
  jsonKey(OS, 4, "variables");
  OS << M.symbols().numVars() << ",\n";
  jsonKey(OS, 4, "objects");
  OS << M.symbols().numObjects() << "\n  },\n";

  if (Ctx.isBuilt()) {
    jsonKey(OS, 2, "pipeline");
    OS << "{\n";
    jsonKey(OS, 4, "andersen_seconds");
    OS << jsonSeconds(Ctx.andersenSeconds()) << ",\n";
    jsonKey(OS, 4, "memssa_seconds");
    OS << jsonSeconds(Ctx.memSSASeconds()) << ",\n";
    jsonKey(OS, 4, "svfg_seconds");
    OS << jsonSeconds(Ctx.svfgSeconds()) << ",\n";
    jsonKey(OS, 4, "svfg_nodes");
    OS << Ctx.svfg().numNodes() << ",\n";
    jsonKey(OS, 4, "svfg_direct_edges");
    OS << Ctx.svfg().numDirectEdges() << ",\n";
    jsonKey(OS, 4, "svfg_indirect_edges");
    OS << Ctx.svfg().numIndirectEdges() << ",\n";
    jsonKey(OS, 4, "coalesce_seconds");
    OS << jsonSeconds(Ctx.coalesceSeconds()) << "\n  },\n";
  }

  // Transfer-equivalence coalescing counters (vsfs-stats-v4): present only
  // when the pass ran (--coalesce=on), like the optional budget section.
  if (Ctx.isBuilt() && Ctx.coalesceMap() != nullptr) {
    jsonKey(OS, 2, "coalesce");
    jsonCounters(OS, 2, Ctx.coalesceStats());
    OS << ",\n";
  }

  if (Budget) {
    jsonKey(OS, 2, "budget");
    jsonCounters(OS, 2, Budget->statGroup());
    OS << ",\n";
  }

  // The interning cache's counters, present exactly when the persistent
  // representation produced them (the group is process-global, so it sits
  // at the session level, not under any one analysis).
  if (adt::pointsToRepr() == adt::PtsRepr::Persistent) {
    jsonKey(OS, 2, "ptscache");
    jsonCounters(OS, 2, adt::PointsToCache::get().statGroup());
    OS << ",\n";
  }

  jsonKey(OS, 2, "analyses");
  OS << "[";
  for (size_t I = 0; I < Results.size(); ++I) {
    const AnalysisRunner::RunResult &R = Results[I];
    OS << (I == 0 ? "\n" : ",\n") << "    {\n";
    jsonKey(OS, 6, "name");
    OS << '"' << R.Name << "\",\n";
    jsonKey(OS, 6, "solve_seconds");
    OS << jsonSeconds(R.SolveSeconds) << ",\n";
    jsonKey(OS, 6, "termination");
    OS << '"' << terminationName(R.Status) << "\",\n";
    jsonKey(OS, 6, "degraded");
    OS << (R.Degraded ? "true" : "false") << ",\n";
    jsonKey(OS, 6, "partial");
    OS << (R.Partial ? "true" : "false") << ",\n";
    jsonKey(OS, 6, "pts_sets_stored");
    OS << R.Analysis->numPtsSetsStored() << ",\n";
    jsonKey(OS, 6, "footprint_bytes");
    OS << R.Analysis->footprintBytes() << ",\n";
    if (const auto *V = dynamic_cast<const VersionedFlowSensitive *>(
            R.Analysis.get())) {
      jsonKey(OS, 6, "versioning_seconds");
      OS << jsonSeconds(V->versioningSeconds()) << ",\n";
      jsonKey(OS, 6, "versioning_counters");
      jsonCounters(OS, 6, V->versioning().stats());
      OS << ",\n";
    }
    if (ClientGroups && I < ClientGroups->size()) {
      for (const StatGroup &G : (*ClientGroups)[I]) {
        if (G.empty())
          continue;
        jsonKey(OS, 6,
                G.name().empty() ? "client_counters" : G.name().c_str());
        jsonCounters(OS, 6, G);
        OS << ",\n";
      }
    }
    jsonKey(OS, 6, "counters");
    jsonCounters(OS, 6, R.Analysis->stats());
    OS << "\n    }";
  }
  OS << "\n  ]\n}\n";
  return OS.str();
}
