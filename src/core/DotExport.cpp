//===- DotExport.cpp - GraphViz dumps ---------------------------*- C++ -*-===//

#include "core/DotExport.h"

#include "ir/Printer.h"

#include <sstream>

using namespace vsfs;
using namespace vsfs::core;
using namespace vsfs::ir;

namespace {

/// Escapes characters dot label strings cannot contain verbatim.
std::string escape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    Out += C;
  }
  return Out;
}

} // namespace

std::string vsfs::core::dotCFG(const Module &M, FunID F) {
  const Function &Fun = M.function(F);
  std::ostringstream OS;
  OS << "digraph \"cfg_" << escape(Fun.Name) << "\" {\n";
  OS << "  node [shape=box, fontname=\"monospace\"];\n";
  for (BlockID B = 0; B < Fun.Blocks.size(); ++B) {
    const BasicBlock &Block = Fun.Blocks[B];
    OS << "  b" << B << " [label=\"" << escape(Block.Name) << ":\\l";
    for (InstID I : Block.Insts)
      OS << escape(printInst(M, I)) << "\\l";
    OS << "\"];\n";
    for (BlockID S : Block.Succs)
      OS << "  b" << B << " -> b" << S << ";\n";
  }
  OS << "}\n";
  return OS.str();
}

std::string vsfs::core::dotCallGraph(const Module &M,
                                     const andersen::CallGraph &CG) {
  std::ostringstream OS;
  OS << "digraph callgraph {\n  node [shape=oval];\n";
  for (FunID F = 0; F < M.numFunctions(); ++F)
    OS << "  f" << F << " [label=\"" << escape(M.function(F).Name)
       << "\"];\n";
  for (InstID CS : CG.callSites()) {
    const Instruction &Call = M.inst(CS);
    const char *Style = Call.isIndirectCall() ? " [style=dashed]" : "";
    for (FunID Callee : CG.callees(CS))
      OS << "  f" << Call.Parent << " -> f" << Callee << Style << ";\n";
  }
  OS << "}\n";
  return OS.str();
}

std::string vsfs::core::dotSVFG(const svfg::SVFG &G, uint32_t MaxNodes) {
  const Module &M = G.module();
  const uint32_t Limit =
      MaxNodes == 0 ? G.numNodes() : std::min(MaxNodes, G.numNodes());
  std::ostringstream OS;
  OS << "digraph svfg {\n  node [fontname=\"monospace\"];\n";
  for (svfg::NodeID N = 0; N < Limit; ++N) {
    const svfg::Node &Node = G.node(N);
    OS << "  n" << N << " [";
    switch (Node.Kind) {
    case svfg::NodeKind::Inst:
      OS << "shape=box, label=\"" << escape(printInst(M, Node.Inst)) << "\"";
      break;
    case svfg::NodeKind::MemPhi:
      OS << "shape=diamond, label=\"memphi("
         << escape(M.symbols().object(Node.Obj).Name) << ")\"";
      break;
    case svfg::NodeKind::EntryChi:
      OS << "shape=ellipse, label=\"entrychi("
         << escape(M.symbols().object(Node.Obj).Name) << ")@"
         << escape(M.function(Node.Fun).Name) << "\"";
      break;
    case svfg::NodeKind::ExitMu:
      OS << "shape=ellipse, label=\"exitmu("
         << escape(M.symbols().object(Node.Obj).Name) << ")@"
         << escape(M.function(Node.Fun).Name) << "\"";
      break;
    case svfg::NodeKind::CallMu:
      OS << "shape=hexagon, label=\"callmu("
         << escape(M.symbols().object(Node.Obj).Name) << ")\"";
      break;
    case svfg::NodeKind::CallChi:
      OS << "shape=hexagon, label=\"callchi("
         << escape(M.symbols().object(Node.Obj).Name) << ")\"";
      break;
    }
    OS << "];\n";
  }
  for (svfg::NodeID N = 0; N < Limit; ++N) {
    for (svfg::NodeID S : G.directSuccs(N))
      if (S < Limit)
        OS << "  n" << N << " -> n" << S << ";\n";
    for (const svfg::IndEdge &E : G.indirectSuccs(N))
      if (E.Dst < Limit)
        OS << "  n" << N << " -> n" << E.Dst << " [style=dashed, label=\""
           << escape(M.symbols().object(E.Obj).Name) << "\"];\n";
  }
  if (Limit < G.numNodes())
    OS << "  elided [shape=plaintext, label=\"(" << (G.numNodes() - Limit)
       << " more nodes elided)\"];\n";
  OS << "}\n";
  return OS.str();
}
