//===- StrongUpdate.h - Static strong-update eligibility --------*- C++ -*-===//
///
/// \file
/// Decides, per store, whether the flow-sensitive analyses perform a strong
/// update ([SU/WU]): the store's pointer must (per the auxiliary analysis)
/// refer to exactly one abstract object, and that object must be a
/// singleton (paper's SN — it represents exactly one runtime object), so
/// overwriting it kills its incoming value.
///
/// Deciding eligibility from the *auxiliary* points-to set — which is fixed
/// before flow-sensitive solving — rather than from the evolving
/// flow-sensitive set makes every store transfer function monotone with a
/// statically known kill set. The analyses then have a unique least fixed
/// point independent of worklist order, which is what allows the
/// VSFS ≡ SFS precision property (§IV-E) to be verified by exact
/// comparison. With kill decisions based on the evolving sets (as in SVF),
/// a store can weakly pass values through during the transient window
/// before its pointer set narrows to a singleton, making results
/// order-dependent (still sound, but not canonical). Since the
/// flow-sensitive pointer set is a subset of the auxiliary one, every
/// auxiliary-singleton store is also a flow-sensitive-singleton store; the
/// only strong updates given up are those where Andersen is strictly
/// coarser than the flow-sensitive result at the store pointer.
///
//===----------------------------------------------------------------------===//

#ifndef VSFS_CORE_STRONGUPDATE_H
#define VSFS_CORE_STRONGUPDATE_H

#include "andersen/Andersen.h"
#include "ir/Module.h"

#include <vector>

namespace vsfs {
namespace core {

/// Returns a per-instruction flag: true iff the instruction is a store (or
/// free — a deallocation kills its object's contents the same way) whose
/// auxiliary pointee set is exactly one singleton object.
inline std::vector<bool>
computeStrongUpdateStores(const ir::Module &M, const andersen::Andersen &A) {
  std::vector<bool> SU(M.numInstructions(), false);
  for (ir::InstID I = 0; I < M.numInstructions(); ++I) {
    const ir::Instruction &Inst = M.inst(I);
    if (Inst.Kind != ir::InstKind::Store && Inst.Kind != ir::InstKind::Free)
      continue;
    const PointsTo &Pts = A.ptsOfVar(
        Inst.Kind == ir::InstKind::Store ? Inst.storePtr() : Inst.freePtr());
    if (Pts.count() != 1)
      continue;
    const ir::ObjInfo &Obj = M.symbols().object(Pts.findFirst());
    SU[I] = Obj.Singleton && Obj.Kind != ir::ObjKind::Function;
  }
  return SU;
}

} // namespace core
} // namespace vsfs

#endif // VSFS_CORE_STRONGUPDATE_H
