//===- FlowSensitive.h - Staged flow-sensitive analysis (SFS) ---*- C++ -*-===//
///
/// \file
/// The baseline: staged flow-sensitive points-to analysis (Hardekopf & Lin,
/// CGO'11) as formulated in §IV-A of the paper. Top-level variables have one
/// global points-to set each (partial SSA single-def); address-taken objects
/// are tracked with an IN set at every SVFG node and an OUT set at stores,
/// propagated along the SVFG's object-labelled indirect edges:
///
///   IN(ℓ,o)  = ⋃ { OUTISH(ℓ',o) | ℓ' --o--> ℓ }
///   OUT(ℓ,o) = GEN ∪ (IN(ℓ,o) − KILL)       (KILL ≠ ∅ only for strong
///                                             updates at singleton stores)
///
/// This is exactly the redundancy VSFS removes: many of these IN/OUT sets
/// are equal and are nonetheless stored and re-propagated separately.
///
/// The call graph is resolved on the fly from flow-sensitive points-to sets
/// by default; pass OnTheFlyCallGraph=false to reuse the auxiliary
/// (Andersen) call graph instead (the SVFG must then have been built with
/// ConnectAuxIndirectCalls=true).
///
//===----------------------------------------------------------------------===//

#ifndef VSFS_CORE_FLOWSENSITIVE_H
#define VSFS_CORE_FLOWSENSITIVE_H

#include "adt/WorkList.h"
#include "core/PointerAnalysis.h"
#include "svfg/SVFG.h"

#include <unordered_map>
#include <vector>

namespace vsfs {
namespace core {

/// Staged flow-sensitive points-to analysis on the SVFG.
class FlowSensitive : public PointerAnalysisResult {
public:
  struct Options {
    /// Resolve indirect calls with flow-sensitive points-to sets as the
    /// analysis runs. When false, the auxiliary call graph is used as-is.
    bool OnTheFlyCallGraph = true;
  };

  FlowSensitive(svfg::SVFG &G, Options Opts);
  explicit FlowSensitive(svfg::SVFG &G) : FlowSensitive(G, Options()) {}

  /// Runs to a fixed point. Idempotent.
  void solve();

  const PointsTo &ptsOfVar(ir::VarID V) const override {
    return VarPts[V];
  }
  const andersen::CallGraph &callGraph() const override { return FSCG; }
  const StatGroup &stats() const override { return Stats; }

  /// IN set of object \p O at node \p N (empty if never propagated).
  const PointsTo &inOf(svfg::NodeID N, ir::ObjID O) const;

  /// Total number of distinct (node, object) points-to sets stored in
  /// IN/OUT tables — the quantity Figure 2b column 2 counts.
  uint64_t numPtsSetsStored() const;

  /// Approximate bytes of analysis state: IN/OUT hash-map entries, their
  /// points-to sets, and the top-level sets. The per-analysis analogue of
  /// the paper's maximum-resident-size column.
  uint64_t footprintBytes() const;

private:
  using ObjMap = std::unordered_map<ir::ObjID, PointsTo>;

  void processNode(svfg::NodeID N);
  bool processInst(ir::InstID I);
  bool processLoad(const ir::Instruction &Inst, ir::InstID I);
  void processStore(const ir::Instruction &Inst, ir::InstID I);
  void processCall(const ir::Instruction &Inst, ir::InstID I);
  void processFunExit(const ir::Instruction &Inst);
  void connectDiscoveredCallee(ir::InstID CS, ir::FunID Callee);
  void propagateIndirect(svfg::NodeID N);

  PointsTo &inRef(svfg::NodeID N, ir::ObjID O) { return In[N][O]; }

  svfg::SVFG &G;
  ir::Module &M;
  Options Opts;

  std::vector<PointsTo> VarPts;
  std::vector<ObjMap> In;
  std::vector<ObjMap> Out; ///< Populated at stores only.
  /// Stores eligible for strong updates (see core/StrongUpdate.h).
  std::vector<bool> SUStore;
  andersen::CallGraph FSCG;
  adt::FIFOWorkList WL;
  StatGroup Stats{"sfs"};
  bool Solved = false;
};

} // namespace core
} // namespace vsfs

#endif // VSFS_CORE_FLOWSENSITIVE_H
