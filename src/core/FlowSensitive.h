//===- FlowSensitive.h - Staged flow-sensitive analysis (SFS) ---*- C++ -*-===//
///
/// \file
/// The baseline: staged flow-sensitive points-to analysis (Hardekopf & Lin,
/// CGO'11) as formulated in §IV-A of the paper. Top-level variables have one
/// global points-to set each (partial SSA single-def); address-taken objects
/// are tracked with an IN set at every SVFG node and an OUT set at stores,
/// propagated along the SVFG's object-labelled indirect edges:
///
///   IN(ℓ,o)  = ⋃ { OUTISH(ℓ',o) | ℓ' --o--> ℓ }
///   OUT(ℓ,o) = GEN ∪ (IN(ℓ,o) − KILL)       (KILL ≠ ∅ only for strong
///                                             updates at singleton stores)
///
/// This is exactly the redundancy VSFS removes: many of these IN/OUT sets
/// are equal and are nonetheless stored and re-propagated separately.
///
/// Only the memory representation above lives here; the top-level transfer
/// functions, call-graph discovery and return flow are shared with the
/// other solvers in \c SparseSolverBase.
///
/// The call graph is resolved on the fly from flow-sensitive points-to sets
/// by default; pass OnTheFlyCallGraph=false to reuse the auxiliary
/// (Andersen) call graph instead (the SVFG must then have been built with
/// ConnectAuxIndirectCalls=true).
///
//===----------------------------------------------------------------------===//

#ifndef VSFS_CORE_FLOWSENSITIVE_H
#define VSFS_CORE_FLOWSENSITIVE_H

#include "adt/WorkList.h"
#include "core/SparseSolverBase.h"
#include "svfg/SVFG.h"

#include <vector>

namespace vsfs {
namespace core {

/// Staged flow-sensitive points-to analysis on the SVFG.
class FlowSensitive : public SparseSolverBase<FlowSensitive> {
  friend class SparseSolverBase<FlowSensitive>;

public:
  struct Options {
    /// Resolve indirect calls with flow-sensitive points-to sets as the
    /// analysis runs. When false, the auxiliary call graph is used as-is.
    bool OnTheFlyCallGraph = true;
    /// Cooperative resource governor polled by the solve loop; null
    /// disables polling. Not owned; must outlive the solver.
    ResourceBudget *Budget = nullptr;
    /// Node subset to solve (demand mode, svfg/Slice.h); null = full
    /// graph. Must be backward-closed for in-scope results to equal the
    /// whole-program fixpoint. Not owned; must outlive the solver.
    const svfg::NodeScope *Scope = nullptr;
  };

  FlowSensitive(svfg::SVFG &G, Options Opts);
  explicit FlowSensitive(svfg::SVFG &G) : FlowSensitive(G, Options()) {}

  /// Runs to a fixed point. Idempotent.
  void solve() override;

  /// IN set of object \p O at node \p N (empty if never propagated).
  const PointsTo &inOf(svfg::NodeID N, ir::ObjID O) const;

  const PointsTo &ptsOfObjAt(ir::InstID I, ir::ObjID O) const override {
    return inOf(G.instNode(I), O);
  }

  /// Total number of distinct (node, object) points-to sets stored in
  /// IN/OUT tables — the quantity Figure 2b column 2 counts.
  uint64_t numPtsSetsStored() const override;

  /// Approximate bytes of analysis state: IN/OUT hash-map entries, their
  /// points-to sets, and the top-level sets. The per-analysis analogue of
  /// the paper's maximum-resident-size column.
  uint64_t footprintBytes() const override;

private:
  using ObjMap = ObjPtsMap;

  void processNode(svfg::NodeID N);
  // Memory transfer functions and scheduling hooks for SparseSolverBase.
  bool processLoad(const ir::Instruction &Inst, ir::InstID I);
  void processStore(const ir::Instruction &Inst, ir::InstID I);
  void processFree(const ir::Instruction &Inst, ir::InstID I);
  void onCalleeDiscovered(ir::InstID CS, ir::FunID Callee);
  void onFormalBound(ir::FunID Callee, ir::VarID Param);
  void onReturnBound(ir::InstID CS, ir::VarID Dst);
  void propagateIndirect(svfg::NodeID N);

  svfg::SVFG &G;

  std::vector<ObjMap> In;
  std::vector<ObjMap> Out; ///< Populated at stores only.
  adt::FIFOWorkList WL;
};

} // namespace core
} // namespace vsfs

#endif // VSFS_CORE_FLOWSENSITIVE_H
