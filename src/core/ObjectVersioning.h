//===- ObjectVersioning.h - Meld-labelling object versioning ----*- C++ -*-===//
///
/// \file
/// The paper's pre-analysis (§IV-C): versions every address-taken object at
/// every SVFG node that may use or define it, such that two nodes sharing a
/// version of o provably rely on the same set of store-modifications to o
/// and can therefore share one global points-to set for o.
///
/// Prelabelling ([STORE]ᴾ, [OTF-CG]ᴾ):
///  - every store yields a fresh version for each object it may define
///    (per the auxiliary analysis);
///  - every δ node — the entry-χ of an address-taken function and the
///    call-χ of an indirect callsite, which may receive new incoming edges
///    during on-the-fly call-graph resolution — consumes a fresh version.
///
/// Meld labelling ([EXTERNAL]ᵛ, [INTERNAL]ᵛ): versions-as-labels (sets of
/// prelabel origins, melded by set union) propagate along object-labelled
/// indirect edges into non-frozen consume positions; non-store nodes yield
/// what they consume. Finally, identical (object, label-set) pairs are
/// hash-consed into dense version IDs.
///
/// Version ID layout: IDs [0, numObjects) are the ε (identity) version of
/// each object — positions no store modification reaches, whose points-to
/// set is permanently empty. Melded versions follow.
///
//===----------------------------------------------------------------------===//

#ifndef VSFS_CORE_OBJECTVERSIONING_H
#define VSFS_CORE_OBJECTVERSIONING_H

#include "adt/SparseBitVector.h"
#include "support/Budget.h"
#include "support/Statistics.h"
#include "svfg/SVFG.h"
#include "svfg/Slice.h"

#include <unordered_map>
#include <vector>

namespace vsfs {
namespace core {

/// A version of an object: an index into the global version-points-to table.
using Version = uint32_t;
constexpr Version InvalidVersion = UINT32_MAX;

/// How meld labels are represented during the pre-analysis.
enum class MeldRep : uint8_t {
  SparseBits, ///< plain sparse bit vectors (the paper's off-the-shelf choice)
  Interned    ///< hash-consed label IDs with memoised melds (§V-B's idea)
};

/// Computes consumed/yielded versions for every (node, object) pair of
/// interest in the SVFG.
class ObjectVersioning {
public:
  /// \p OnTheFlyCallGraph: when true, δ nodes are prelabelled with fresh
  /// consumed versions so late call edges stay sound; when false, all call
  /// edges are static and no δ prelabels are needed. \p Rep selects the
  /// meld-label representation (a §V-B ablation; the final versions are
  /// identical either way). \p Budget, when non-null, is polled during the
  /// meld fixpoint (not owned; must outlive the pre-analysis): on
  /// exhaustion melding stops early and unreached positions keep their ε
  /// version — a consistent under-approximate labelling the caller must
  /// not solve on (VSFS checks the budget after run()). \p Scope, when
  /// non-null, restricts the versioning to a node subset (demand mode):
  /// only in-scope nodes are prelabelled and only edges with both
  /// endpoints in scope are melded. Over a backward-closed scope
  /// (svfg/Slice.h) every store that can reach an in-scope position is
  /// itself in scope, so the version equivalence classes at in-scope
  /// positions are identical to the whole-graph versioning's (prelabel
  /// numbering is injective per object — only the class structure
  /// matters, not the IDs).
  ObjectVersioning(const svfg::SVFG &G, bool OnTheFlyCallGraph,
                   MeldRep Rep = MeldRep::SparseBits,
                   ResourceBudget *Budget = nullptr,
                   const svfg::NodeScope *Scope = nullptr);

  /// Runs prelabelling + meld labelling + version interning. Idempotent.
  void run();

  /// The version node \p N consumes / yields for object \p O. Pairs the
  /// versioning never saw consume/yield the object's ε version.
  Version consume(svfg::NodeID N, ir::ObjID O) const;
  Version yield(svfg::NodeID N, ir::ObjID O) const;

  uint32_t numVersions() const {
    return static_cast<uint32_t>(VersionObj.size());
  }
  ir::ObjID objectOf(Version V) const { return VersionObj[V]; }
  bool isEpsilon(Version V) const { return V < NumObjects; }

  /// Wall-clock seconds spent versioning (Table III's versioning column).
  double seconds() const { return Seconds; }

  /// Approximate bytes of the lasting consume/yield tables (the transient
  /// meld-labelling state is freed before solving starts).
  uint64_t tableBytes() const {
    auto MapBytes = [](const std::unordered_map<uint64_t, Version> &Map) {
      return Map.bucket_count() * sizeof(void *) +
             Map.size() * (sizeof(std::pair<const uint64_t, Version>) +
                           2 * sizeof(void *));
    };
    return MapBytes(ConsumeVer) + MapBytes(YieldVer) +
           VersionObj.capacity() * sizeof(ir::ObjID);
  }
  const StatGroup &stats() const { return Stats; }

private:
  using Label = adt::SparseBitVector;

  static uint64_t key(uint32_t A, uint32_t B) {
    return (uint64_t(A) << 32) | B;
  }

  void prelabel();
  void meld();
  void internVersions();

  /// Hash-conses (object, label) into a dense version.
  Version intern(ir::ObjID O, const Label &L);

  const svfg::SVFG &G;
  bool OTF;
  MeldRep Rep;
  ResourceBudget *Budget;
  /// Node subset to version (nullable, not owned); null = whole graph.
  const svfg::NodeScope *Scope;
  uint32_t NumObjects = 0;

  /// (node << 32 | obj) -> melded consume-side label.
  std::unordered_map<uint64_t, Label> ConsumeLabel;
  /// (store-node << 32 | obj) -> yielded prelabel ID.
  std::unordered_map<uint64_t, uint32_t> StoreYieldPre;
  /// δ positions whose consume label is fixed by prelabelling.
  std::unordered_map<uint64_t, bool> Frozen;
  /// Total prelabels issued, and the per-object ID allocators (prelabel
  /// bits are object-local so labels stay dense).
  uint32_t NextPrelabel = 0;
  std::unordered_map<ir::ObjID, uint32_t> NextPreOfObj;

  /// Final dense version tables.
  std::unordered_map<uint64_t, Version> ConsumeVer, YieldVer;
  std::vector<ir::ObjID> VersionObj;
  /// Hash-consing: hash(obj, label) -> candidate (obj, label, version).
  struct InternEntry {
    ir::ObjID Obj;
    Label L;
    Version V;
  };
  std::unordered_map<uint64_t, std::vector<InternEntry>> InternTable;

  double Seconds = 0;
  StatGroup Stats{"versioning"};
  /// Interned hot-loop counter (see StatCounter): one bump per meld in the
  /// per-object label propagation sweeps.
  StatCounter MeldOps = Stats.counter("meld-ops");
  bool Ran = false;
};

} // namespace core
} // namespace vsfs

#endif // VSFS_CORE_OBJECTVERSIONING_H
