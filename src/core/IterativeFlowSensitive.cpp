//===- IterativeFlowSensitive.cpp - Dense ICFG data-flow --------*- C++ -*-===//

#include "core/IterativeFlowSensitive.h"

#include "core/StrongUpdate.h"

#include <cassert>

using namespace vsfs;
using namespace vsfs::core;
using namespace vsfs::ir;

IterativeFlowSensitive::IterativeFlowSensitive(
    Module &M, const andersen::Andersen &Ander)
    : M(M), Ander(Ander),
      Graph(M, [&Ander](InstID CS) {
        return Ander.callGraph().callees(CS);
      }) {
  VarPts.assign(M.symbols().numVars(), {});
  SUStore = computeStrongUpdateStores(M, Ander);
  In.assign(M.numInstructions(), {});
  Out.assign(M.numInstructions(), {});
  UsesOfVar.assign(M.symbols().numVars(), {});

  // Def-use pushes for the global top-level points-to sets.
  std::vector<VarID> Uses;
  for (InstID I = 0; I < M.numInstructions(); ++I) {
    Uses.clear();
    collectUsedVars(M.inst(I), Uses);
    for (VarID V : Uses)
      UsesOfVar[V].push_back(I);
  }
}

void IterativeFlowSensitive::solve() {
  if (Solved)
    return;
  Solved = true;
  for (InstID I = 0; I < M.numInstructions(); ++I)
    WL.push(I);
  while (!WL.empty()) {
    ++Stats.get("node-visits");
    process(WL.pop());
  }
  Stats.get("pts-sets-stored") = numPtsSetsStored();
}

void IterativeFlowSensitive::process(InstID I) {
  const Instruction &Inst = M.inst(I);
  const andersen::CallGraph &CG = Ander.callGraph();

  auto TopChanged = [&](VarID V, bool Changed) {
    if (!Changed)
      return;
    for (InstID U : UsesOfVar[V])
      WL.push(U);
  };

  bool IsStore = Inst.Kind == InstKind::Store;
  switch (Inst.Kind) {
  case InstKind::Alloc:
    TopChanged(Inst.Dst, VarPts[Inst.Dst].set(Inst.allocObject()));
    break;
  case InstKind::Copy:
    TopChanged(Inst.Dst, VarPts[Inst.Dst].unionWith(VarPts[Inst.copySrc()]));
    break;
  case InstKind::Phi: {
    bool Changed = false;
    for (VarID Src : Inst.phiSrcs())
      Changed |= VarPts[Inst.Dst].unionWith(VarPts[Src]);
    TopChanged(Inst.Dst, Changed);
    break;
  }
  case InstKind::FieldAddr: {
    bool Changed = false;
    for (uint32_t O : VarPts[Inst.fieldBase()])
      Changed |= VarPts[Inst.Dst].set(
          M.symbols().getFieldObject(O, Inst.fieldOffset()));
    TopChanged(Inst.Dst, Changed);
    break;
  }
  case InstKind::Load: {
    bool Changed = false;
    ObjMap &NodeIn = In[I];
    for (uint32_t O : VarPts[Inst.loadPtr()]) {
      auto It = NodeIn.find(O);
      if (It != NodeIn.end())
        Changed |= VarPts[Inst.Dst].unionWith(It->second);
    }
    TopChanged(Inst.Dst, Changed);
    break;
  }
  case InstKind::Store: {
    // OUT = GEN ∪ (IN − KILL), accumulated monotonically; the kill set is
    // static (core/StrongUpdate.h), matching SFS/VSFS exactly.
    const PointsTo &PtrPts = VarPts[Inst.storePtr()];
    const PointsTo &ValPts = VarPts[Inst.storeVal()];
    const bool StrongUpdate = SUStore[I];
    ObjMap &NodeIn = In[I];
    ObjMap &NodeOut = Out[I];
    for (uint32_t O : PtrPts) {
      if (M.symbols().isFunctionObject(O))
        continue;
      NodeOut[O].unionWith(ValPts);
    }
    // The killed object is the store's (auxiliary) singleton pointee.
    const uint32_t KillObj =
        StrongUpdate ? Ander.ptsOfVar(Inst.storePtr()).findFirst()
                     : UINT32_MAX;
    for (auto &[O, Set] : NodeIn) {
      if (StrongUpdate && O == KillObj)
        continue; // Killed.
      NodeOut[O].unionWith(Set);
    }
    break;
  }
  case InstKind::Call: {
    const auto &Args = Inst.callArgs();
    for (FunID Callee : CG.callees(I)) {
      const Function &F = M.function(Callee);
      size_t N = std::min(Args.size(), F.Params.size());
      for (size_t K = 0; K < N; ++K)
        TopChanged(F.Params[K],
                   VarPts[F.Params[K]].unionWith(VarPts[Args[K]]));
    }
    break;
  }
  case InstKind::FunEntry:
    break;
  case InstKind::FunExit: {
    VarID Ret = Inst.exitRet();
    if (Ret == InvalidVar)
      break;
    for (InstID CS : CG.callers(Inst.Parent)) {
      const Instruction &Call = M.inst(CS);
      if (Call.Dst != InvalidVar)
        TopChanged(Call.Dst, VarPts[Call.Dst].unionWith(VarPts[Ret]));
    }
    break;
  }
  }

  // Flow the memory state to ICFG successors.
  const ObjMap &Source = IsStore ? Out[I] : In[I];
  for (InstID S : Graph.successors(I)) {
    bool Changed = false;
    for (const auto &[O, Set] : Source) {
      ++Stats.get("propagations");
      Changed |= In[S][O].unionWith(Set);
    }
    if (Changed)
      WL.push(S);
  }
}

uint64_t IterativeFlowSensitive::numPtsSetsStored() const {
  uint64_t Total = 0;
  for (const ObjMap &Map : In)
    Total += Map.size();
  for (const ObjMap &Map : Out)
    Total += Map.size();
  return Total;
}
