//===- IterativeFlowSensitive.cpp - Dense ICFG data-flow --------*- C++ -*-===//

#include "core/IterativeFlowSensitive.h"

#include <cassert>

using namespace vsfs;
using namespace vsfs::core;
using namespace vsfs::ir;

IterativeFlowSensitive::IterativeFlowSensitive(Module &M,
                                               const andersen::Andersen &Ander,
                                               ResourceBudget *Budget)
    : SparseSolverBase(M, Ander, "iterative-fs",
                       /*OnTheFlyCallGraph=*/false, Budget),
      Ander(Ander), Graph(M, [&Ander](InstID CS) {
        return Ander.callGraph().callees(CS);
      }) {
  In.assign(M.numInstructions(), {});
  Out.assign(M.numInstructions(), {});
  UsesOfVar.assign(M.symbols().numVars(), {});

  // Def-use pushes for the global top-level points-to sets.
  std::vector<VarID> Uses;
  for (InstID I = 0; I < M.numInstructions(); ++I) {
    Uses.clear();
    collectUsedVars(M.inst(I), Uses);
    for (VarID V : Uses)
      UsesOfVar[V].push_back(I);
  }
}

void IterativeFlowSensitive::solve() {
  if (!beginSolve())
    return;
  for (InstID I = 0; I < M.numInstructions(); ++I)
    WL.push(I);
  while (!WL.empty()) {
    if (!pollBudget())
      break; // Budget exhausted; IN/OUT state stays monotone and usable.
    ++NodeVisits;
    process(WL.pop());
  }
  Stats.get("pts-sets-stored") = numPtsSetsStored();
}

void IterativeFlowSensitive::process(InstID I) {
  const Instruction &Inst = M.inst(I);

  // Shared top-level transfer functions; a changed destination re-runs its
  // uses (this solver is instruction-granular, not SVFG-node-granular).
  if (processInst(I) && Inst.definesVar())
    pushUses(Inst.Dst);

  // Flow the memory state to ICFG successors (memory defs flow their OUT).
  const ObjMap &Source =
      Inst.Kind == InstKind::Store || Inst.Kind == InstKind::Free ? Out[I]
                                                                  : In[I];
  for (InstID S : Graph.successors(I)) {
    bool Changed = false;
    for (const auto &[O, Set] : Source) {
      ++Propagations;
      Changed |= In[S][O].unionWith(Set);
    }
    if (Changed)
      WL.push(S);
  }
}

bool IterativeFlowSensitive::processLoad(const Instruction &Inst, InstID I) {
  bool Changed = false;
  ObjMap &NodeIn = In[I];
  for (uint32_t O : VarPts[Inst.loadPtr()]) {
    auto It = NodeIn.find(O);
    if (It != NodeIn.end())
      Changed |= VarPts[Inst.Dst].unionWith(It->second);
  }
  return Changed;
}

void IterativeFlowSensitive::processStore(const Instruction &Inst, InstID I) {
  // OUT = GEN ∪ (IN − KILL), accumulated monotonically; the kill set is
  // static (core/StrongUpdate.h), matching SFS/VSFS exactly.
  const PointsTo &PtrPts = VarPts[Inst.storePtr()];
  const PointsTo &ValPts = VarPts[Inst.storeVal()];
  const bool StrongUpdate = SUStore[I];
  ObjMap &NodeIn = In[I];
  ObjMap &NodeOut = Out[I];
  for (uint32_t O : PtrPts) {
    if (M.symbols().isFunctionObject(O))
      continue;
    NodeOut[O].unionWith(ValPts);
  }
  // The killed object is the store's (auxiliary) singleton pointee.
  const uint32_t KillObj = StrongUpdate
                               ? Ander.ptsOfVar(Inst.storePtr()).findFirst()
                               : UINT32_MAX;
  for (auto &[O, Set] : NodeIn) {
    if (StrongUpdate && O == KillObj)
      continue; // Killed.
    NodeOut[O].unionWith(Set);
  }
}

void IterativeFlowSensitive::processFree(const Instruction &Inst, InstID I) {
  // OUT = IN − KILL: a free generates nothing; a strong-update free kills
  // its singleton pointee, a weak free passes everything through.
  const bool StrongUpdate = SUStore[I];
  const uint32_t KillObj =
      StrongUpdate ? Ander.ptsOfVar(Inst.freePtr()).findFirst() : UINT32_MAX;
  ObjMap &NodeIn = In[I];
  ObjMap &NodeOut = Out[I];
  for (auto &[O, Set] : NodeIn) {
    if (StrongUpdate && O == KillObj)
      continue; // Killed.
    NodeOut[O].unionWith(Set);
  }
}

void IterativeFlowSensitive::onCalleeDiscovered(InstID CS, FunID Callee) {
  // Unreachable: this solver always runs on the full auxiliary call graph
  // (OnTheFlyCallGraph=false), so the base never discovers callees.
  (void)CS;
  (void)Callee;
  assert(false && "dense solver never resolves callees on the fly");
}

void IterativeFlowSensitive::onFormalBound(FunID Callee, VarID Param) {
  (void)Callee;
  pushUses(Param);
}

void IterativeFlowSensitive::onReturnBound(InstID CS, VarID Dst) {
  (void)CS;
  pushUses(Dst);
}

const PointsTo &IterativeFlowSensitive::ptsOfObjAt(InstID I, ObjID O) const {
  static const PointsTo Empty;
  auto It = In[I].find(O);
  return It == In[I].end() ? Empty : It->second;
}

uint64_t IterativeFlowSensitive::footprintBytes() const {
  return objPtsMapTableBytes(In) + objPtsMapTableBytes(Out) +
         topLevelFootprintBytes();
}

uint64_t IterativeFlowSensitive::numPtsSetsStored() const {
  return objPtsMapTableEntries(In) + objPtsMapTableEntries(Out);
}
