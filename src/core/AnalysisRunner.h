//===- AnalysisRunner.h - Name → solver registry and runner -----*- C++ -*-===//
///
/// \file
/// One place that knows how to go from a built \c AnalysisContext to a
/// solved \c PointerAnalysisResult, for every solver in the library. The
/// CLI driver, the table benches and the tests all dispatch through this
/// registry instead of each hand-rolling the build→solve→report sequence,
/// so adding a solver is one \c add() call and every client picks it up.
///
/// \code
///   const auto *E = core::AnalysisRunner::registry().find("vsfs");
///   core::AnalysisRunner::RunResult R =
///       core::AnalysisRunner::registry().run(Ctx, "vsfs");
///   R.Analysis->ptsOfVar(...);  // solved
///   std::string Json = core::statsJson(Ctx, Results);
/// \endcode
///
/// Builtins: "ander" (flow-insensitive auxiliary), "iter" (dense ICFG
/// data-flow, alias "dense"), "sfs", "vsfs".
///
//===----------------------------------------------------------------------===//

#ifndef VSFS_CORE_ANALYSISRUNNER_H
#define VSFS_CORE_ANALYSISRUNNER_H

#include "core/AnalysisContext.h"
#include "core/ObjectVersioning.h"
#include "core/PointerAnalysis.h"

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace vsfs {
namespace core {

/// Adapts the auxiliary Andersen analysis to the common result interface.
class AndersenResult : public PointerAnalysisResult {
public:
  explicit AndersenResult(andersen::Andersen &A) : A(A) {}

  void solve() override { A.solve(); }
  const PointsTo &ptsOfVar(ir::VarID V) const override {
    return A.ptsOfVar(V);
  }
  const PointsTo &ptsOfObjAt(ir::InstID I, ir::ObjID O) const override {
    (void)I; // Flow-insensitive: one set per object, everywhere.
    return A.ptsOfObj(O);
  }
  const andersen::CallGraph &callGraph() const override {
    return A.callGraph();
  }
  const StatGroup &stats() const override { return A.stats(); }
  Termination termination() const override { return A.termination(); }
  uint64_t numPtsSetsStored() const override;
  uint64_t footprintBytes() const override;

private:
  andersen::Andersen &A;
};

/// Options every factory understands; solver-specific knobs (the meld
/// representation) are simply ignored by solvers without them.
struct SolverOptions {
  /// Resolve indirect calls during solving. When false the SVFG must have
  /// been built with ConnectAuxIndirectCalls=true (AnalysisRunner::run
  /// asserts this).
  bool OnTheFlyCallGraph = true;
  /// Meld-label representation for VSFS's pre-analysis (§V-B ablation).
  MeldRep LabelRep = MeldRep::SparseBits;
  /// Resource governor polled by the solve (not owned); null = ungoverned.
  /// AnalysisRunner::run opens one step-governed phase per flow-sensitive
  /// solver ("iter"/"sfs"/"vsfs"; "ander" is never step-governed).
  ResourceBudget *Budget = nullptr;
  /// What run() does when the governed solve exhausts its budget:
  ///  - Fail: return the exhausted result untouched; the caller treats the
  ///    run as failed (the CLI exits 3/4 without printing points-to sets).
  ///  - Degrade: substitute the solved auxiliary Andersen result — sound,
  ///    flow-insensitively precise — and flag the run Degraded. Requires a
  ///    completed auxiliary analysis; otherwise falls back to Fail.
  ///  - Partial: keep the solver's monotone in-flight state and flag the
  ///    run Partial (a sound under-approximation: sets may be missing
  ///    targets; never use it to prove absence of aliasing).
  enum class OnExhaustion : uint8_t { Fail, Degrade, Partial };
  OnExhaustion Policy = OnExhaustion::Fail;
  /// Node subset to solve (demand mode, svfg/Slice.h); null = whole graph.
  /// Understood by "sfs" and "vsfs"; "iter" has no SVFG node space and
  /// ignores it (the query engine rejects it up front), and "ander" is
  /// whole-program by construction. Not owned; must outlive the solver.
  const svfg::NodeScope *Scope = nullptr;
};

/// The registry: analysis name → factory over a built AnalysisContext.
class AnalysisRunner {
public:
  using Factory = std::function<std::unique_ptr<PointerAnalysisResult>(
      AnalysisContext &, const SolverOptions &)>;

  struct Entry {
    std::string Name;
    std::vector<std::string> Aliases;
    std::string Description;
    Factory Make;
  };

  /// The process-wide registry, pre-seeded with the builtin solvers.
  static AnalysisRunner &registry();

  /// Registers a solver. Later registrations win on name collision, so
  /// clients can override a builtin.
  void add(Entry E);

  /// Resolves a name or alias; nullptr when unknown.
  const Entry *find(std::string_view Name) const;

  /// Registered entries, in registration order.
  const std::vector<Entry> &entries() const { return Entries; }

  /// Comma-separated canonical names, for usage strings.
  std::string namesString() const;

  /// A constructed-and-solved analysis plus how long the solve took.
  struct RunResult {
    std::string Name; ///< Canonical (registered) name.
    std::unique_ptr<PointerAnalysisResult> Analysis;
    double SolveSeconds = 0;
    /// How the solve ended. Stays the exhaustion cause even when the
    /// Degrade policy substituted the auxiliary result.
    Termination Status = Termination::Completed;
    /// Analysis was replaced by the auxiliary Andersen result (sound
    /// over-approximation at flow-insensitive precision).
    bool Degraded = false;
    /// Analysis holds the solver's monotone in-flight state (sound
    /// under-approximation; sets may be missing targets).
    bool Partial = false;
  };

  /// Builds the named solver over \p Ctx (which must already be built) and
  /// solves it, timing the solve. Returns a null Analysis for unknown
  /// names.
  RunResult run(AnalysisContext &Ctx, std::string_view Name,
                const SolverOptions &Opts = {}) const;

private:
  std::vector<Entry> Entries;
};

/// Renders one run's statistics as aligned text (the solver's StatGroup
/// plus the runner-level solve time and storage accounting).
std::string statsText(const AnalysisRunner::RunResult &R);

/// Renders the whole session — pipeline timings/sizes and every run's
/// statistics — as machine-readable JSON (schema \c schemas::StatsJson,
/// currently "vsfs-stats-v4"), so benchmark trajectories can be collected
/// mechanically (--stats-json). v2 added a per-analysis
/// "termination"/"degraded"/"partial" triple, a session-level
/// "termination" (the pipeline build's status), an optional "budget"
/// group, and the interning cache's "drains" counter (docs/ROBUSTNESS.md);
/// v3 adds a session-level "mode" ("exhaustive" or "demand") and allows
/// several client groups per run — demand runs emit both the checkers'
/// counters and the query engine's "query" group (docs/QUERIES.md).
///
/// \p ClientGroups, when non-null, carries extra counter groups per run
/// (outer vector parallel to \p Results) contributed by analysis clients —
/// e.g. the bug checkers' per-kind TP/FP/FN counts and the query engine's
/// slice statistics. Non-empty groups are emitted under their group name
/// ("client_counters" when unnamed); the core stays ignorant of what the
/// counters mean.
///
/// \p Budget, when non-null, adds its statGroup() under "budget". The
/// pipeline section is emitted only for a completely built context, so a
/// budget-cancelled build still renders valid JSON.
std::string
statsJson(const AnalysisContext &Ctx,
          const std::vector<AnalysisRunner::RunResult> &Results,
          const std::vector<std::vector<StatGroup>> *ClientGroups = nullptr,
          const ResourceBudget *Budget = nullptr,
          std::string_view Mode = "exhaustive");

} // namespace core
} // namespace vsfs

#endif // VSFS_CORE_ANALYSISRUNNER_H
