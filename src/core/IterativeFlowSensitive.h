//===- IterativeFlowSensitive.h - Dense ICFG data-flow analysis -*- C++ -*-===//
///
/// \file
/// Traditional data-flow-based flow-sensitive points-to analysis (§IV-A):
/// computes IN/OUT maps of address-taken objects at every ICFG node,
///
///   IN_ℓ  = ⋃ OUT_ℓ'   over ICFG predecessors ℓ'
///   OUT_ℓ = GEN_ℓ ∪ (IN_ℓ − KILL_ℓ)
///
/// with top-level variables kept global thanks to partial SSA. Calls route
/// the whole memory state through their callees (call → callee entry,
/// callee exit → return site), using the auxiliary call graph.
///
/// This analysis is *dense*: every object's state is propagated through
/// every program point, with none of SFS's sparsity. It exists as
///  (a) the precision oracle for the staged analyses (on intraprocedural
///      and single-caller programs it computes exactly SFS's solution; on
///      arbitrary programs it soundly over-approximates it, because routing
///      untouched objects through callees merges caller contexts that the
///      memory-SSA form keeps separate), and
///  (b) the "traditional" baseline for the sparsity ablation bench.
///
//===----------------------------------------------------------------------===//

#ifndef VSFS_CORE_ITERATIVEFLOWSENSITIVE_H
#define VSFS_CORE_ITERATIVEFLOWSENSITIVE_H

#include "adt/WorkList.h"
#include "andersen/Andersen.h"
#include "core/PointerAnalysis.h"
#include "ir/ICFG.h"

#include <unordered_map>
#include <vector>

namespace vsfs {
namespace core {

/// Dense flow-sensitive points-to analysis over the ICFG.
class IterativeFlowSensitive : public PointerAnalysisResult {
public:
  IterativeFlowSensitive(ir::Module &M, const andersen::Andersen &Ander);

  void solve();

  const PointsTo &ptsOfVar(ir::VarID V) const override { return VarPts[V]; }
  const andersen::CallGraph &callGraph() const override {
    return Ander.callGraph();
  }
  const StatGroup &stats() const override { return Stats; }

  /// Total (node, object) points-to sets stored — the dense cost.
  uint64_t numPtsSetsStored() const;

private:
  using ObjMap = std::unordered_map<ir::ObjID, PointsTo>;

  void process(ir::InstID I);

  ir::Module &M;
  const andersen::Andersen &Ander;

  std::vector<PointsTo> VarPts;
  /// Stores eligible for strong updates (see core/StrongUpdate.h).
  std::vector<bool> SUStore;
  std::vector<ObjMap> In;
  std::vector<ObjMap> Out; ///< Stores only; others forward IN.
  /// The interprocedural CFG, with calls routed through their (auxiliary)
  /// callees.
  ir::ICFG Graph;
  /// Instructions using each top-level variable (for def-use pushes).
  std::vector<std::vector<ir::InstID>> UsesOfVar;

  adt::FIFOWorkList WL;
  StatGroup Stats{"iterative-fs"};
  bool Solved = false;
};

} // namespace core
} // namespace vsfs

#endif // VSFS_CORE_ITERATIVEFLOWSENSITIVE_H
