//===- IterativeFlowSensitive.h - Dense ICFG data-flow analysis -*- C++ -*-===//
///
/// \file
/// Traditional data-flow-based flow-sensitive points-to analysis (§IV-A):
/// computes IN/OUT maps of address-taken objects at every ICFG node,
///
///   IN_ℓ  = ⋃ OUT_ℓ'   over ICFG predecessors ℓ'
///   OUT_ℓ = GEN_ℓ ∪ (IN_ℓ − KILL_ℓ)
///
/// with top-level variables kept global thanks to partial SSA. Calls route
/// the whole memory state through their callees (call → callee entry,
/// callee exit → return site), using the auxiliary call graph.
///
/// This analysis is *dense*: every object's state is propagated through
/// every program point, with none of SFS's sparsity. It exists as
///  (a) the precision oracle for the staged analyses (on intraprocedural
///      and single-caller programs it computes exactly SFS's solution; on
///      arbitrary programs it soundly over-approximates it, because routing
///      untouched objects through callees merges caller contexts that the
///      memory-SSA form keeps separate), and
///  (b) the "traditional" baseline for the sparsity ablation bench.
///
/// The top-level transfer functions are shared with SFS/VSFS through
/// \c SparseSolverBase; only the dense memory propagation lives here.
///
//===----------------------------------------------------------------------===//

#ifndef VSFS_CORE_ITERATIVEFLOWSENSITIVE_H
#define VSFS_CORE_ITERATIVEFLOWSENSITIVE_H

#include "adt/WorkList.h"
#include "andersen/Andersen.h"
#include "core/SparseSolverBase.h"
#include "ir/ICFG.h"

#include <vector>

namespace vsfs {
namespace core {

/// Dense flow-sensitive points-to analysis over the ICFG.
class IterativeFlowSensitive
    : public SparseSolverBase<IterativeFlowSensitive> {
  friend class SparseSolverBase<IterativeFlowSensitive>;

public:
  /// \p Budget, when non-null, governs the solve loop cooperatively (not
  /// owned; must outlive the solver).
  IterativeFlowSensitive(ir::Module &M, const andersen::Andersen &Ander,
                         ResourceBudget *Budget = nullptr);

  void solve() override;

  const PointsTo &ptsOfObjAt(ir::InstID I, ir::ObjID O) const override;

  /// Total (node, object) points-to sets stored — the dense cost.
  uint64_t numPtsSetsStored() const override;

  /// Approximate bytes of the dense IN/OUT tables plus the top-level sets.
  uint64_t footprintBytes() const override;

private:
  using ObjMap = ObjPtsMap;

  void process(ir::InstID I);
  // Memory transfer functions and scheduling hooks for SparseSolverBase.
  bool processLoad(const ir::Instruction &Inst, ir::InstID I);
  void processStore(const ir::Instruction &Inst, ir::InstID I);
  void processFree(const ir::Instruction &Inst, ir::InstID I);
  void onCalleeDiscovered(ir::InstID CS, ir::FunID Callee);
  void onFormalBound(ir::FunID Callee, ir::VarID Param);
  void onReturnBound(ir::InstID CS, ir::VarID Dst);

  void pushUses(ir::VarID V) {
    for (ir::InstID U : UsesOfVar[V])
      WL.push(U);
  }

  const andersen::Andersen &Ander;

  std::vector<ObjMap> In;
  std::vector<ObjMap> Out; ///< Stores only; others forward IN.
  /// The interprocedural CFG, with calls routed through their (auxiliary)
  /// callees.
  ir::ICFG Graph;
  /// Instructions using each top-level variable (for def-use pushes).
  std::vector<std::vector<ir::InstID>> UsesOfVar;

  adt::FIFOWorkList WL;
};

} // namespace core
} // namespace vsfs

#endif // VSFS_CORE_ITERATIVEFLOWSENSITIVE_H
