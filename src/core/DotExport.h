//===- DotExport.h - GraphViz dumps of analysis structures ------*- C++ -*-===//
///
/// \file
/// Renders the analysis data structures as GraphViz dot: per-function CFGs,
/// the call graph (direct vs. resolved-indirect edges), and the SVFG
/// (direct edges solid, object-labelled indirect edges dashed and labelled,
/// χ/μ/φ nodes shaped distinctly). Used by the vsfs-wpa tool's --dump-*
/// options and handy when debugging analyses on small programs.
///
//===----------------------------------------------------------------------===//

#ifndef VSFS_CORE_DOTEXPORT_H
#define VSFS_CORE_DOTEXPORT_H

#include "andersen/CallGraph.h"
#include "ir/Module.h"
#include "svfg/SVFG.h"

#include <string>

namespace vsfs {
namespace core {

/// The block-level control-flow graph of \p F.
std::string dotCFG(const ir::Module &M, ir::FunID F);

/// The call graph; indirect-call edges are dashed.
std::string dotCallGraph(const ir::Module &M, const andersen::CallGraph &CG);

/// The SVFG. \p MaxNodes caps output size (0 = no cap); nodes past the cap
/// are elided with a summary note, since real SVFGs are enormous.
std::string dotSVFG(const svfg::SVFG &G, uint32_t MaxNodes = 0);

} // namespace core
} // namespace vsfs

#endif // VSFS_CORE_DOTEXPORT_H
