//===- VersionedFlowSensitive.cpp - VSFS ------------------------*- C++ -*-===//

#include "core/VersionedFlowSensitive.h"

#include <cassert>

using namespace vsfs;
using namespace vsfs::core;
using namespace vsfs::ir;
using svfg::NodeID;
using svfg::NodeKind;

VersionedFlowSensitive::VersionedFlowSensitive(svfg::SVFG &G, Options Opts)
    : SparseSolverBase(G.module(), G.auxAnalysis(), "vsfs",
                       Opts.OnTheFlyCallGraph, Opts.Budget, Opts.Scope),
      G(G),
      OV(G, Opts.OnTheFlyCallGraph, Opts.LabelRep, Opts.Budget, Opts.Scope),
      VersionVisits(Stats.counter("version-visits")) {}

void VersionedFlowSensitive::solve() {
  if (!beginSolve())
    return;

  OV.run();
  VersionPts.assign(OV.numVersions(), {});
  VGSuccs.assign(OV.numVersions(), {});
  VGEdgeSet.assign(OV.numVersions(), {});
  Consumers.assign(OV.numVersions(), {});
  // A budget exhausted during the pre-analysis cancels the main phase too:
  // the version tables above keep the accessors valid (everything reads as
  // the empty, monotone bottom state), but building the version graph and
  // solving on a partially melded labelling would be wasted effort.
  if (!pollBudget()) {
    Stats.get("versions") = OV.numVersions();
    Stats.get("pts-sets-stored") = numPtsSetsStored();
    return;
  }
  buildVersionGraph();

  for (NodeID N = 0; N < G.numNodes(); ++N)
    if (G.node(N).Kind == NodeKind::Inst && inScope(N))
      NodeWL.push(N);

  bool Live = true;
  while (Live && (!NodeWL.empty() || !VersionWL.empty())) {
    while (!NodeWL.empty()) {
      if (!pollBudget()) {
        Live = false;
        break; // Budget exhausted; version state stays monotone and usable.
      }
      ++NodeVisits;
      processNode(NodeWL.pop());
    }
    while (Live && !VersionWL.empty()) {
      if (!pollBudget()) {
        Live = false;
        break;
      }
      ++VersionVisits;
      processVersion(VersionWL.pop());
    }
  }

  Stats.get("versions") = OV.numVersions();
  Stats.get("vg-edges") = [this] {
    uint64_t Total = 0;
    for (const auto &S : VGSuccs)
      Total += S.size();
    return Total;
  }();
  Stats.get("pts-sets-stored") = numPtsSetsStored();
}

bool VersionedFlowSensitive::addVGEdge(Version From, Version To) {
  assert(From != To && "self version edges are propagation no-ops");
  if (!VGEdgeSet[From].insert(To).second)
    return false;
  VGSuccs[From].push_back(To);
  return true;
}

void VersionedFlowSensitive::buildVersionGraph() {
  // [A-PROP]ᵛ: an SVFG indirect edge ℓ --o--> ℓ' demands propagation only
  // when Y_ℓ(o) differs from C_ℓ'(o); shared versions need none.
  // Scoped solves add edges only between in-scope endpoints: consume() of
  // an out-of-scope position returns the object's ε version (the scoped
  // pre-analysis never labelled it), and ε sets must stay permanently empty.
  for (NodeID N = 0; N < G.numNodes(); ++N) {
    if (!inScope(N))
      continue;
    for (const svfg::IndEdge &E : G.indirectSuccs(N)) {
      if (!inScope(E.Dst))
        continue;
      Version Y = OV.yield(N, E.Obj);
      Version C = OV.consume(E.Dst, E.Obj);
      if (Y != C)
        addVGEdge(Y, C);
      else
        ++Stats.get("propagations-avoided");
    }
  }

  // Register the solve-time consumers of each version.
  for (InstID I = 0; I < M.numInstructions(); ++I) {
    if (!inScope(G.instNode(I)))
      continue;
    const Instruction &Inst = M.inst(I);
    if (Inst.Kind == InstKind::Load) {
      for (uint32_t O : G.memSSA().muObjs(I))
        Consumers[OV.consume(G.instNode(I), O)].push_back(G.instNode(I));
    } else if (Inst.Kind == InstKind::Store || Inst.Kind == InstKind::Free) {
      for (uint32_t O : G.memSSA().chiObjs(I))
        Consumers[OV.consume(G.instNode(I), O)].push_back(G.instNode(I));
    }
  }
}

void VersionedFlowSensitive::processNode(NodeID N) {
  const svfg::Node &Node = G.node(N);
  // MemPhi/χ/μ nodes do no work in VSFS: the pre-analysis folded their
  // merging into shared versions and version-graph edges.
  if (Node.Kind != NodeKind::Inst)
    return;
  if (processInst(Node.Inst))
    for (NodeID S : G.directSuccs(N))
      if (inScope(S))
        NodeWL.push(S);
}

bool VersionedFlowSensitive::processLoad(const Instruction &Inst, InstID I) {
  // [LOAD]ᵛ: pt(p) ⊇ pt_{C_ℓ(o)}(o) for every o ∈ pt(q).
  bool Changed = false;
  for (uint32_t O : VarPts[Inst.loadPtr()]) {
    if (M.symbols().isFunctionObject(O))
      continue;
    Changed |= VarPts[Inst.Dst].unionWith(
        VersionPts[OV.consume(G.instNode(I), O)]);
  }
  return Changed;
}

void VersionedFlowSensitive::processStore(const Instruction &Inst, InstID I) {
  // [STORE]ᵛ + [SU/WU]ᵛ over the objects the store may define. Strong
  // updates use the same static eligibility as SFS (core/StrongUpdate.h) so
  // both analyses share one canonical least fixed point.
  NodeID N = G.instNode(I);
  const PointsTo &PtrPts = VarPts[Inst.storePtr()];
  const PointsTo &ValPts = VarPts[Inst.storeVal()];
  const bool StrongUpdate = SUStore[I];
  for (uint32_t O : G.memSSA().chiObjs(I)) {
    Version Y = OV.yield(N, O);
    bool Changed = false;
    if (PtrPts.test(O))
      Changed |= VersionPts[Y].unionWith(ValPts);
    if (!StrongUpdate) {
      // Weak update / pass-through: the consumed version's set survives
      // (the store may not overwrite o, or o's def-use chain was merely
      // routed through this store by the over-approximate memory SSA).
      Changed |= VersionPts[Y].unionWith(VersionPts[OV.consume(N, O)]);
    }
    if (Changed)
      VersionWL.push(Y);
  }
}

void VersionedFlowSensitive::processFree(const Instruction &Inst, InstID I) {
  // [FREE]ᵛ: a memory def with no generated value. A strong-update free
  // leaves its yielded version empty (the kill); a weak free passes the
  // consumed version's set through to the yielded one.
  (void)Inst;
  NodeID N = G.instNode(I);
  if (SUStore[I])
    return;
  for (uint32_t O : G.memSSA().chiObjs(I)) {
    Version Y = OV.yield(N, O);
    if (VersionPts[Y].unionWith(VersionPts[OV.consume(N, O)]))
      VersionWL.push(Y);
  }
}

void VersionedFlowSensitive::onCalleeDiscovered(InstID CS, FunID Callee) {
  // New call edge: wire the SVFG flows and translate each added edge into a
  // version-propagation edge into the δ node's prelabelled version.
  // Scoped solves still materialise the edges (shared graph state any
  // later, larger-scoped solve reuses) but translate only edges with both
  // endpoints in scope: an out-of-scope endpoint has no scoped labelling,
  // so consume()/yield() would alias the permanently-empty ε versions.
  std::vector<std::pair<NodeID, svfg::IndEdge>> Added;
  G.connectCallEdge(CS, Callee, Added);
  for (auto &[From, Edge] : Added) {
    if (!inScope(From) || !inScope(Edge.Dst))
      continue;
    Version Y = OV.yield(From, Edge.Obj);
    Version C = OV.consume(Edge.Dst, Edge.Obj);
    if (Y == C)
      continue;
    if (addVGEdge(Y, C) && VersionPts[C].unionWith(VersionPts[Y]))
      VersionWL.push(C);
  }
  const Function &F = M.function(Callee);
  if (inScope(G.instNode(F.Entry)))
    NodeWL.push(G.instNode(F.Entry));
  if (inScope(G.instNode(F.Exit)))
    NodeWL.push(G.instNode(F.Exit));
}

void VersionedFlowSensitive::onFormalBound(FunID Callee, VarID Param) {
  (void)Param;
  NodeID Entry = G.instNode(M.function(Callee).Entry);
  if (inScope(Entry))
    NodeWL.push(Entry);
}

void VersionedFlowSensitive::onReturnBound(InstID CS, VarID Dst) {
  (void)Dst;
  for (NodeID S : G.directSuccs(G.instNode(CS)))
    if (inScope(S))
      NodeWL.push(S);
}

void VersionedFlowSensitive::processVersion(Version V) {
  // [A-PROP]ᵛ: push the version's points-to set to reliant versions, and
  // re-run the instructions whose transfer functions read it.
  const PointsTo &Pts = VersionPts[V];
  for (Version S : VGSuccs[V]) {
    ++Propagations;
    if (VersionPts[S].unionWith(Pts))
      VersionWL.push(S);
  }
  for (NodeID N : Consumers[V])
    NodeWL.push(N);
}

uint64_t VersionedFlowSensitive::footprintBytes() const {
  uint64_t Total = VersionPts.capacity() * sizeof(PointsTo);
  for (const PointsTo &P : VersionPts)
    Total += P.capacityBytes();
  Total += topLevelFootprintBytes();
  for (const auto &S : VGSuccs)
    Total += S.capacity() * sizeof(Version);
  for (const auto &S : VGEdgeSet)
    Total += S.bucket_count() * sizeof(void *) +
             S.size() * (sizeof(Version) + 2 * sizeof(void *));
  for (const auto &C : Consumers)
    Total += C.capacity() * sizeof(svfg::NodeID);
  // Consume/yield version tables (the versioning's lasting state).
  Total += OV.tableBytes();
  return Total;
}

uint64_t VersionedFlowSensitive::numPtsSetsStored() const {
  uint64_t Total = 0;
  for (const PointsTo &P : VersionPts)
    Total += P.empty() ? 0 : 1;
  return Total;
}
