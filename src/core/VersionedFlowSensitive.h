//===- VersionedFlowSensitive.h - VSFS (the paper's analysis) ---*- C++ -*-===//
///
/// \file
/// Versioned staged flow-sensitive points-to analysis (§IV-D): SFS with
/// IN/OUT sets replaced by one global points-to set per (object, version),
/// where versions come from the meld-labelling pre-analysis
/// (\c ObjectVersioning).
///
///  - [LOAD]ᵛ/[STORE]ᵛ read pt_{C_ℓ(o)}(o) and write pt_{Y_ℓ(o)}(o);
///  - [SU/WU]ᵛ strongly updates singletons (the consumed version is not
///    folded into the yielded version), weakly updates otherwise;
///  - [A-PROP]ᵛ propagates pt between versions only along edges whose
///    endpoint versions differ — nodes that share a version share the set,
///    so the propagation (and the storage) SFS would perform there simply
///    does not exist.
///
/// MemPhi/χ/μ nodes do no solve-time work at all: their merging behaviour
/// was compiled into the version propagation graph by the pre-analysis.
/// On-the-fly call-graph resolution adds version-propagation edges into the
/// fresh versions δ nodes were prelabelled with.
///
//===----------------------------------------------------------------------===//

#ifndef VSFS_CORE_VERSIONEDFLOWSENSITIVE_H
#define VSFS_CORE_VERSIONEDFLOWSENSITIVE_H

#include "adt/WorkList.h"
#include "core/ObjectVersioning.h"
#include "core/PointerAnalysis.h"
#include "svfg/SVFG.h"

#include <unordered_set>
#include <vector>

namespace vsfs {
namespace core {

/// The paper's analysis: versioned staged flow-sensitive points-to.
class VersionedFlowSensitive : public PointerAnalysisResult {
public:
  struct Options {
    /// Resolve indirect calls flow-sensitively during solving (δ-node
    /// machinery). When false, the auxiliary call graph is reused and the
    /// SVFG must have been built with ConnectAuxIndirectCalls=true.
    bool OnTheFlyCallGraph = true;
    /// Meld-label representation for the pre-analysis (§V-B ablation).
    MeldRep LabelRep = MeldRep::SparseBits;
  };

  VersionedFlowSensitive(svfg::SVFG &G, Options Opts);
  explicit VersionedFlowSensitive(svfg::SVFG &G) : VersionedFlowSensitive(G, Options()) {}

  /// Runs versioning (if needed) and the main phase to a fixed point.
  void solve();

  const PointsTo &ptsOfVar(ir::VarID V) const override { return VarPts[V]; }
  const andersen::CallGraph &callGraph() const override { return FSCG; }
  const StatGroup &stats() const override { return Stats; }

  /// The pre-analysis, for inspection (versions, timing).
  const ObjectVersioning &versioning() const { return OV; }

  /// pt_κ(o): the global points-to set of a version.
  const PointsTo &ptsOfVersion(Version V) const { return VersionPts[V]; }

  /// Number of non-empty version points-to sets (Figure 2b column 3's
  /// storage count).
  uint64_t numPtsSetsStored() const;

  /// Seconds spent in the versioning pre-analysis.
  double versioningSeconds() const { return OV.seconds(); }

  /// Approximate bytes of analysis state: the global version points-to
  /// table, the version propagation graph, consumer lists, the
  /// consume/yield tables, and the top-level sets. Analogue of SFS's
  /// footprintBytes() for the paper's memory comparison.
  uint64_t footprintBytes() const;

private:
  void buildVersionGraph();
  bool addVGEdge(Version From, Version To);
  void processNode(svfg::NodeID N);
  bool processInst(ir::InstID I);
  bool processLoad(const ir::Instruction &Inst, ir::InstID I);
  void processStore(const ir::Instruction &Inst, ir::InstID I);
  void processCall(const ir::Instruction &Inst, ir::InstID I);
  void processFunExit(const ir::Instruction &Inst);
  void connectDiscoveredCallee(ir::InstID CS, ir::FunID Callee);
  void processVersion(Version V);

  svfg::SVFG &G;
  ir::Module &M;
  Options Opts;
  ObjectVersioning OV;

  std::vector<PointsTo> VarPts;
  /// pt_κ(o), indexed by version (ε versions stay empty).
  std::vector<PointsTo> VersionPts;
  /// Stores eligible for strong updates (see core/StrongUpdate.h).
  std::vector<bool> SUStore;

  /// Version propagation graph ([A-PROP]ᵛ edges with distinct endpoints).
  std::vector<std::vector<Version>> VGSuccs;
  std::vector<std::unordered_set<Version>> VGEdgeSet;
  /// Nodes to reprocess when a version's points-to set changes: loads
  /// consuming it (top-level result) and stores consuming it (weak-update
  /// flow into their yielded version).
  std::vector<std::vector<svfg::NodeID>> Consumers;

  andersen::CallGraph FSCG;
  adt::FIFOWorkList NodeWL;
  adt::FIFOWorkList VersionWL;
  StatGroup Stats{"vsfs"};
  bool Solved = false;
};

} // namespace core
} // namespace vsfs

#endif // VSFS_CORE_VERSIONEDFLOWSENSITIVE_H
