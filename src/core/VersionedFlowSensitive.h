//===- VersionedFlowSensitive.h - VSFS (the paper's analysis) ---*- C++ -*-===//
///
/// \file
/// Versioned staged flow-sensitive points-to analysis (§IV-D): SFS with
/// IN/OUT sets replaced by one global points-to set per (object, version),
/// where versions come from the meld-labelling pre-analysis
/// (\c ObjectVersioning).
///
///  - [LOAD]ᵛ/[STORE]ᵛ read pt_{C_ℓ(o)}(o) and write pt_{Y_ℓ(o)}(o);
///  - [SU/WU]ᵛ strongly updates singletons (the consumed version is not
///    folded into the yielded version), weakly updates otherwise;
///  - [A-PROP]ᵛ propagates pt between versions only along edges whose
///    endpoint versions differ — nodes that share a version share the set,
///    so the propagation (and the storage) SFS would perform there simply
///    does not exist.
///
/// MemPhi/χ/μ nodes do no solve-time work at all: their merging behaviour
/// was compiled into the version propagation graph by the pre-analysis.
/// On-the-fly call-graph resolution adds version-propagation edges into the
/// fresh versions δ nodes were prelabelled with.
///
/// Only this versioned memory representation lives here; the top-level
/// transfer functions, call-graph discovery and return flow are shared
/// with the other solvers in \c SparseSolverBase.
///
//===----------------------------------------------------------------------===//

#ifndef VSFS_CORE_VERSIONEDFLOWSENSITIVE_H
#define VSFS_CORE_VERSIONEDFLOWSENSITIVE_H

#include "adt/WorkList.h"
#include "core/ObjectVersioning.h"
#include "core/SparseSolverBase.h"
#include "svfg/SVFG.h"

#include <unordered_set>
#include <vector>

namespace vsfs {
namespace core {

/// The paper's analysis: versioned staged flow-sensitive points-to.
class VersionedFlowSensitive : public SparseSolverBase<VersionedFlowSensitive> {
  friend class SparseSolverBase<VersionedFlowSensitive>;

public:
  struct Options {
    /// Resolve indirect calls flow-sensitively during solving (δ-node
    /// machinery). When false, the auxiliary call graph is reused and the
    /// SVFG must have been built with ConnectAuxIndirectCalls=true.
    bool OnTheFlyCallGraph = true;
    /// Meld-label representation for the pre-analysis (§V-B ablation).
    MeldRep LabelRep = MeldRep::SparseBits;
    /// Cooperative resource governor polled by the meld pre-analysis and
    /// the main solve loop (one shared step meter — pre-analysis effort
    /// counts against the solver's step budget); null disables polling.
    /// Not owned; must outlive the solver.
    ResourceBudget *Budget = nullptr;
    /// Node subset to solve (demand mode, svfg/Slice.h); null = full
    /// graph. The meld pre-analysis versions only this subset and the
    /// main phase schedules only in-scope nodes. Must be backward-closed
    /// for in-scope results to equal the whole-program fixpoint. Not
    /// owned; must outlive the solver.
    const svfg::NodeScope *Scope = nullptr;
  };

  VersionedFlowSensitive(svfg::SVFG &G, Options Opts);
  explicit VersionedFlowSensitive(svfg::SVFG &G)
      : VersionedFlowSensitive(G, Options()) {}

  /// Runs versioning (if needed) and the main phase to a fixed point.
  void solve() override;

  /// The pre-analysis, for inspection (versions, timing).
  const ObjectVersioning &versioning() const { return OV; }

  /// pt_κ(o): the global points-to set of a version.
  const PointsTo &ptsOfVersion(Version V) const { return VersionPts[V]; }

  const PointsTo &ptsOfObjAt(ir::InstID I, ir::ObjID O) const override {
    return VersionPts[OV.consume(G.instNode(I), O)];
  }

  /// Number of non-empty version points-to sets (Figure 2b column 3's
  /// storage count).
  uint64_t numPtsSetsStored() const override;

  /// Seconds spent in the versioning pre-analysis.
  double versioningSeconds() const { return OV.seconds(); }

  /// Approximate bytes of analysis state: the global version points-to
  /// table, the version propagation graph, consumer lists, the
  /// consume/yield tables, and the top-level sets. Analogue of SFS's
  /// footprintBytes() for the paper's memory comparison.
  uint64_t footprintBytes() const override;

private:
  void buildVersionGraph();
  bool addVGEdge(Version From, Version To);
  void processNode(svfg::NodeID N);
  // Memory transfer functions and scheduling hooks for SparseSolverBase.
  bool processLoad(const ir::Instruction &Inst, ir::InstID I);
  void processStore(const ir::Instruction &Inst, ir::InstID I);
  void processFree(const ir::Instruction &Inst, ir::InstID I);
  void onCalleeDiscovered(ir::InstID CS, ir::FunID Callee);
  void onFormalBound(ir::FunID Callee, ir::VarID Param);
  void onReturnBound(ir::InstID CS, ir::VarID Dst);
  void processVersion(Version V);

  svfg::SVFG &G;
  ObjectVersioning OV;

  /// pt_κ(o), indexed by version (ε versions stay empty).
  std::vector<PointsTo> VersionPts;

  /// Version propagation graph ([A-PROP]ᵛ edges with distinct endpoints).
  std::vector<std::vector<Version>> VGSuccs;
  std::vector<std::unordered_set<Version>> VGEdgeSet;
  /// Nodes to reprocess when a version's points-to set changes: loads
  /// consuming it (top-level result) and stores consuming it (weak-update
  /// flow into their yielded version).
  std::vector<std::vector<svfg::NodeID>> Consumers;

  adt::FIFOWorkList NodeWL;
  adt::FIFOWorkList VersionWL;
  StatCounter VersionVisits;
};

} // namespace core
} // namespace vsfs

#endif // VSFS_CORE_VERSIONEDFLOWSENSITIVE_H
