//===- SparseSolverBase.h - Shared flow-sensitive solver core ---*- C++ -*-===//
///
/// \file
/// The solver core shared by every flow-sensitive analysis in the library.
/// The paper's analyses (dense iterative §IV-A, SFS §IV-B, VSFS §IV-D)
/// differ *only* in how address-taken memory is represented and propagated:
/// per-node IN/OUT maps for the first two, per-version global points-to
/// sets for VSFS. Everything top-level is identical across them —
/// [ALLOC]/[COPY]/[PHI]/[FIELD-ADDR], on-the-fly call-graph discovery,
/// actual→formal argument binding, and [RET] return flow — and lives here
/// exactly once.
///
/// The base is a CRTP template rather than a virtual interface so the hot
/// instruction switch stays devirtualized: the derived memory transfer
/// functions are resolved statically and inline into the solve loop.
///
/// A derived solver provides its memory semantics and scheduling:
///
///   bool processLoad(const ir::Instruction &, ir::InstID);
///       [LOAD]: read the memory state into the destination's top-level
///       set; returns whether the destination changed.
///   void processStore(const ir::Instruction &, ir::InstID);
///       [STORE]/[SU/WU]: write the memory state, scheduling whatever the
///       representation requires.
///   void onCalleeDiscovered(ir::InstID CS, ir::FunID Callee);
///       A new call edge was resolved on the fly; wire the callee's value
///       flows and reschedule affected work. Never called when the solver
///       runs on the auxiliary call graph.
///   void onFormalBound(ir::FunID Callee, ir::VarID Param);
///       A formal parameter's points-to set grew during [CALL] binding.
///   void onReturnBound(ir::InstID CS, ir::VarID Dst);
///       A call destination's points-to set grew during [RET] binding.
///
/// and the accounting pair \c numPtsSetsStored() / \c footprintBytes()
/// (how much memory state the representation keeps — the quantities
/// Figure 2b and Table III compare).
///
//===----------------------------------------------------------------------===//

#ifndef VSFS_CORE_SPARSESOLVERBASE_H
#define VSFS_CORE_SPARSESOLVERBASE_H

#include "core/PointerAnalysis.h"
#include "core/StrongUpdate.h"
#include "svfg/Slice.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <vector>

namespace vsfs {
namespace core {

/// Per-(node, object) points-to tables, as kept by the dense and SFS
/// solvers. Exposed here so footprint accounting is shared too.
using ObjPtsMap = std::unordered_map<ir::ObjID, PointsTo>;

/// Approximate bytes held by a vector of per-node object→points-to maps:
/// hash buckets, per-entry node overhead, and the points-to payloads.
inline uint64_t objPtsMapTableBytes(const std::vector<ObjPtsMap> &Maps) {
  uint64_t Total = 0;
  for (const ObjPtsMap &Map : Maps) {
    Total += Map.bucket_count() * sizeof(void *);
    Total += Map.size() * (sizeof(std::pair<const ir::ObjID, PointsTo>) +
                           2 * sizeof(void *));
    for (const auto &[O, Set] : Map) {
      (void)O;
      Total += Set.capacityBytes();
    }
  }
  return Total;
}

/// Total number of (node, object) entries across a table — what
/// Figure 2b counts for the map-based representations.
inline uint64_t objPtsMapTableEntries(const std::vector<ObjPtsMap> &Maps) {
  uint64_t Total = 0;
  for (const ObjPtsMap &Map : Maps)
    Total += Map.size();
  return Total;
}

/// CRTP base of the flow-sensitive solvers. Owns the top-level points-to
/// sets, the flow-sensitively resolved call graph, strong-update
/// eligibility, work statistics, and the shared transfer functions.
template <typename Derived>
class SparseSolverBase : public PointerAnalysisResult {
public:
  const PointsTo &ptsOfVar(ir::VarID V) const override { return VarPts[V]; }
  const andersen::CallGraph &callGraph() const override { return FSCG; }
  const StatGroup &stats() const override { return Stats; }
  Termination termination() const override { return Term; }

protected:
  /// Seeds the shared state. Direct call edges are always adopted from the
  /// auxiliary call graph; indirect ones only when \p OnTheFlyCallGraph is
  /// false (the derived solver then never discovers callees itself).
  /// \p Budget, when non-null, governs the solve loop cooperatively (not
  /// owned; must outlive the solver).
  /// \p Scope, when non-null, restricts the solve to a subset of SVFG
  /// nodes (not owned; must outlive the solver): the derived solver seeds
  /// and schedules only in-scope nodes, so the fixpoint is the one of the
  /// scope-induced subgraph. For a backward-closed scope (svfg/Slice.h)
  /// that equals the whole-program fixpoint at every in-scope position —
  /// the demand-mode contract. Out-of-scope positions read as empty
  /// (a sound under-approximation).
  SparseSolverBase(ir::Module &M, const andersen::Andersen &Aux,
                   std::string StatName, bool OnTheFlyCallGraph,
                   ResourceBudget *Budget = nullptr,
                   const svfg::NodeScope *Scope = nullptr)
      : M(M), OnTheFlyCG(OnTheFlyCallGraph), Budget(Budget), Scope(Scope),
        Stats(std::move(StatName)),
        NodeVisits(Stats.counter("node-visits")),
        Propagations(Stats.counter("propagations")) {
    VarPts.assign(M.symbols().numVars(), {});
    SUStore = computeStrongUpdateStores(M, Aux);
    const andersen::CallGraph &AuxCG = Aux.callGraph();
    for (ir::InstID CS : AuxCG.callSites()) {
      if (M.inst(CS).isIndirectCall() && OnTheFlyCG)
        continue;
      for (ir::FunID Callee : AuxCG.callees(CS))
        FSCG.addEdge(CS, Callee);
    }
  }

  Derived &derived() { return static_cast<Derived &>(*this); }

  /// Marks the solver solved; returns false when it already was (solve()
  /// implementations use this for idempotence).
  bool beginSolve() {
    if (Solved)
      return false;
    Solved = true;
    return true;
  }

  /// Whether \p N participates in this solve. Unscoped solvers see the
  /// full graph; scoped ones only their subset. Derived solvers must test
  /// this before seeding or scheduling any node.
  bool inScope(svfg::NodeID N) const { return !Scope || Scope->contains(N); }

  /// Cooperative cancellation point for the derived solve loops: true
  /// while solving may continue. On exhaustion records the termination
  /// status; the loop must break, leaving the (monotone, consistent)
  /// in-flight state in place. With no budget this is a null test.
  bool pollBudget() {
    if (!Budget || Budget->checkpoint())
      return true;
    Term = Budget->status();
    return false;
  }

  /// The shared instruction switch. Returns whether the instruction's
  /// top-level destination changed and its direct uses must re-run
  /// (FunEntry always forwards: parameters are (re)defined by callers and
  /// the node is only rescheduled when a parameter changed).
  bool processInst(ir::InstID I) {
    const ir::Instruction &Inst = M.inst(I);
    switch (Inst.Kind) {
    case ir::InstKind::Alloc:
      return VarPts[Inst.Dst].set(Inst.allocObject());
    case ir::InstKind::Copy:
      return VarPts[Inst.Dst].unionWith(VarPts[Inst.copySrc()]);
    case ir::InstKind::Phi: {
      bool Changed = false;
      for (ir::VarID Src : Inst.phiSrcs())
        Changed |= VarPts[Inst.Dst].unionWith(VarPts[Src]);
      return Changed;
    }
    case ir::InstKind::FieldAddr: {
      bool Changed = false;
      for (uint32_t O : VarPts[Inst.fieldBase()])
        Changed |= VarPts[Inst.Dst].set(
            M.symbols().getFieldObject(O, Inst.fieldOffset()));
      return Changed;
    }
    case ir::InstKind::Load:
      return derived().processLoad(Inst, I);
    case ir::InstKind::Store:
      derived().processStore(Inst, I);
      return false;
    case ir::InstKind::Free:
      derived().processFree(Inst, I);
      return false;
    case ir::InstKind::Call:
      processCall(Inst, I);
      return false;
    case ir::InstKind::FunEntry:
      return true;
    case ir::InstKind::FunExit:
      processFunExit(Inst);
      return false;
    }
    return false;
  }

  /// [CALL]: on-the-fly callee discovery from the current flow-sensitive
  /// points-to set of the callee pointer, then actual→formal binding over
  /// every known callee.
  void processCall(const ir::Instruction &Inst, ir::InstID I) {
    if (Inst.isIndirectCall() && OnTheFlyCG) {
      for (uint32_t O : VarPts[Inst.indirectCalleeVar()]) {
        if (!M.symbols().isFunctionObject(O))
          continue;
        ir::FunID Callee = M.symbols().object(O).Func;
        if (FSCG.addEdge(I, Callee)) {
          derived().onCalleeDiscovered(I, Callee);
          ++Stats.get("otf-call-edges");
        }
      }
    }

    const auto &Args = Inst.callArgs();
    for (ir::FunID Callee : FSCG.callees(I)) {
      const ir::Function &F = M.function(Callee);
      size_t N = std::min(Args.size(), F.Params.size());
      for (size_t K = 0; K < N; ++K)
        if (VarPts[F.Params[K]].unionWith(VarPts[Args[K]]))
          derived().onFormalBound(Callee, F.Params[K]);
    }
  }

  /// [RET]: flow the returned pointer into every caller's destination.
  void processFunExit(const ir::Instruction &Inst) {
    ir::VarID Ret = Inst.exitRet();
    if (Ret == ir::InvalidVar)
      return;
    for (ir::InstID CS : FSCG.callers(Inst.Parent)) {
      const ir::Instruction &Call = M.inst(CS);
      if (Call.Dst == ir::InvalidVar)
        continue;
      if (VarPts[Call.Dst].unionWith(VarPts[Ret]))
        derived().onReturnBound(CS, Call.Dst);
    }
  }

  /// Bytes held by the top-level variable points-to sets.
  uint64_t topLevelFootprintBytes() const {
    uint64_t Total = VarPts.capacity() * sizeof(PointsTo);
    for (const PointsTo &P : VarPts)
      Total += P.capacityBytes();
    return Total;
  }

  ir::Module &M;
  const bool OnTheFlyCG;
  /// The governing budget (nullable, not owned) and how the solve ended.
  ResourceBudget *Budget;
  /// The node subset this solver is restricted to (nullable, not owned);
  /// null means the full graph.
  const svfg::NodeScope *Scope;
  Termination Term = Termination::Completed;

  /// pt(v) for every top-level variable (global: partial SSA single-def).
  std::vector<PointsTo> VarPts;
  /// Stores eligible for strong updates (see core/StrongUpdate.h).
  std::vector<bool> SUStore;
  /// The call graph as resolved by this solver.
  andersen::CallGraph FSCG;
  StatGroup Stats;
  /// Interned hot-loop counters (a map lookup per worklist pop is real
  /// money at millions of pops; see StatCounter).
  StatCounter NodeVisits;
  StatCounter Propagations;

private:
  bool Solved = false;
};

} // namespace core
} // namespace vsfs

#endif // VSFS_CORE_SPARSESOLVERBASE_H
