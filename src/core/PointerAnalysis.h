//===- PointerAnalysis.h - Common analysis result interface -----*- C++ -*-===//
///
/// \file
/// The interface every whole-program pointer analysis in this library
/// implements. Clients (examples, checkers, benches) program against this so
/// Andersen/SFS/VSFS are interchangeable, and the equivalence tests compare
/// any two implementations uniformly.
///
//===----------------------------------------------------------------------===//

#ifndef VSFS_CORE_POINTERANALYSIS_H
#define VSFS_CORE_POINTERANALYSIS_H

#include "adt/PointsTo.h"
#include "andersen/CallGraph.h"
#include "ir/Module.h"
#include "support/Statistics.h"

namespace vsfs {
namespace core {

/// Abstract results of a pointer analysis.
class PointerAnalysisResult {
public:
  virtual ~PointerAnalysisResult() = default;

  /// The final points-to set of a top-level variable.
  virtual const PointsTo &ptsOfVar(ir::VarID V) const = 0;

  /// The call graph as resolved by this analysis.
  virtual const andersen::CallGraph &callGraph() const = 0;

  /// Work/size statistics.
  virtual const StatGroup &stats() const = 0;

  /// True if \p V may point to \p O.
  bool mayPointTo(ir::VarID V, ir::ObjID O) const {
    return ptsOfVar(V).test(O);
  }

  /// True if \p A and \p B may alias (their points-to sets intersect).
  bool mayAlias(ir::VarID A, ir::VarID B) const {
    return ptsOfVar(A).intersects(ptsOfVar(B));
  }
};

} // namespace core
} // namespace vsfs

#endif // VSFS_CORE_POINTERANALYSIS_H
