//===- PointerAnalysis.h - Common analysis result interface -----*- C++ -*-===//
///
/// \file
/// The interface every whole-program pointer analysis in this library
/// implements. Clients (examples, checkers, benches) program against this so
/// Andersen/SFS/VSFS are interchangeable, and the equivalence tests compare
/// any two implementations uniformly.
///
//===----------------------------------------------------------------------===//

#ifndef VSFS_CORE_POINTERANALYSIS_H
#define VSFS_CORE_POINTERANALYSIS_H

#include "adt/PointsTo.h"
#include "andersen/CallGraph.h"
#include "ir/Module.h"
#include "support/Budget.h"
#include "support/Statistics.h"

namespace vsfs {
namespace core {

/// The read-only points-to view clients consume: per-variable sets plus
/// per-position object contents. Checkers and other clients program against
/// this rather than \c PointerAnalysisResult so a demand-driven engine
/// (query/QueryEngine.h) — which answers the same questions from memoised
/// per-query solves instead of one whole-program fixpoint — can stand in
/// for a solved analysis.
class PointsToOracle {
public:
  virtual ~PointsToOracle() = default;

  /// The points-to set of a top-level variable.
  virtual const PointsTo &ptsOfVar(ir::VarID V) const = 0;

  /// The contents of memory object \p O as observed by instruction \p I —
  /// the flow-sensitive IN state for SFS/ITER, the consumed version's set
  /// for VSFS, and the single flow-insensitive set for Andersen. An empty
  /// set means no store into \p O reaches \p I (the cell is still in its
  /// null/uninitialised state there); checkers build on this.
  virtual const PointsTo &ptsOfObjAt(ir::InstID I, ir::ObjID O) const = 0;

  /// True if \p V may point to \p O.
  bool mayPointTo(ir::VarID V, ir::ObjID O) const {
    return ptsOfVar(V).test(O);
  }

  /// True if \p A and \p B may alias (their points-to sets intersect).
  bool mayAlias(ir::VarID A, ir::VarID B) const {
    return ptsOfVar(A).intersects(ptsOfVar(B));
  }
};

/// Abstract results of a pointer analysis.
///
/// Every solver in the library (Andersen via \c AndersenResult, the dense
/// iterative baseline, SFS and VSFS) implements this interface, so clients,
/// the \c AnalysisRunner registry and the equivalence tests can build,
/// solve and compare any pair of analyses uniformly.
class PointerAnalysisResult : public PointsToOracle {
public:

  /// Runs the analysis to its fixed point — or to resource exhaustion when
  /// a ResourceBudget governs it, in which case \c termination() names the
  /// exhausted resource and the stored state is a consistent monotone
  /// under-approximation of the fixed point. Idempotent: repeated calls
  /// return immediately.
  virtual void solve() = 0;

  /// How the last \c solve() ended. \c Termination::Completed means the
  /// fixed point was reached; anything else means the solve was cancelled
  /// cooperatively (docs/ROBUSTNESS.md) and the results are partial.
  virtual Termination termination() const { return Termination::Completed; }

  /// The call graph as resolved by this analysis.
  virtual const andersen::CallGraph &callGraph() const = 0;

  /// Work/size statistics.
  virtual const StatGroup &stats() const = 0;

  /// Number of distinct points-to sets the analysis stores for address-taken
  /// memory (the quantity Figure 2b compares across analyses). Zero for
  /// analyses without per-position memory state (Andersen).
  virtual uint64_t numPtsSetsStored() const { return 0; }

  /// Approximate bytes of final analysis state — points-to sets plus the
  /// index structures holding them. The per-analysis analogue of the
  /// paper's maximum-resident-size column.
  virtual uint64_t footprintBytes() const { return 0; }
};

} // namespace core
} // namespace vsfs

#endif // VSFS_CORE_POINTERANALYSIS_H
