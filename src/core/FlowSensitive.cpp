//===- FlowSensitive.cpp - Staged flow-sensitive analysis -------*- C++ -*-===//

#include "core/FlowSensitive.h"

#include "svfg/Coalesce.h"

#include <cassert>

using namespace vsfs;
using namespace vsfs::core;
using namespace vsfs::ir;
using svfg::NodeID;
using svfg::NodeKind;

FlowSensitive::FlowSensitive(svfg::SVFG &G, Options Opts)
    : SparseSolverBase(G.module(), G.auxAnalysis(), "sfs",
                       Opts.OnTheFlyCallGraph, Opts.Budget, Opts.Scope),
      G(G) {
  In.assign(G.numNodes(), {});
  Out.assign(G.numNodes(), {});
}

void FlowSensitive::solve() {
  if (!beginSolve())
    return;
  const svfg::CoalesceMap *CM = G.coalesceMap();
  for (NodeID N = 0; N < G.numNodes(); ++N)
    if (inScope(N) && (CM == nullptr || !CM->isMember(N)))
      WL.push(N); // Coalesced members are edge-less no-ops: never seeded.
  while (!WL.empty()) {
    if (!pollBudget())
      break; // Budget exhausted; IN/OUT state stays monotone and usable.
    ++NodeVisits;
    processNode(WL.pop());
  }
  Stats.get("pts-sets-stored") = numPtsSetsStored();
}

void FlowSensitive::processNode(NodeID N) {
  const svfg::Node &Node = G.node(N);
  bool TopChanged = false;
  if (Node.Kind == NodeKind::Inst)
    TopChanged = processInst(Node.Inst);
  // Chi/mu/phi nodes have no transfer function of their own: their IN is
  // the union of incoming values, forwarded by the propagation below.

  propagateIndirect(N);
  if (TopChanged)
    for (NodeID S : G.directSuccs(N))
      if (inScope(S))
        WL.push(S);
}

bool FlowSensitive::processLoad(const Instruction &Inst, InstID I) {
  // [LOAD]: pt(p) ⊇ IN(ℓ, o) for every o ∈ pt(q).
  bool Changed = false;
  const ObjMap &NodeIn = In[G.instNode(I)];
  for (uint32_t O : VarPts[Inst.loadPtr()]) {
    if (M.symbols().isFunctionObject(O))
      continue;
    auto It = NodeIn.find(O);
    if (It != NodeIn.end())
      Changed |= VarPts[Inst.Dst].unionWith(It->second);
  }
  return Changed;
}

void FlowSensitive::processStore(const Instruction &Inst, InstID I) {
  // [STORE] and [SU/WU]: objects the store may write get GEN = pt(q); at a
  // strong-update store (statically decided, see core/StrongUpdate.h) the
  // sole pointee's incoming value is killed; every other object annotated
  // on this store passes through IN -> OUT.
  NodeID N = G.instNode(I);
  const PointsTo &PtrPts = VarPts[Inst.storePtr()];
  const PointsTo &ValPts = VarPts[Inst.storeVal()];
  const PointsTo &ChiObjs = G.memSSA().chiObjs(I);
  const bool StrongUpdate = SUStore[I];
  ObjMap &NodeIn = In[N];
  ObjMap &NodeOut = Out[N];
  for (uint32_t O : ChiObjs) {
    PointsTo &OutSet = NodeOut[O];
    if (PtrPts.test(O))
      OutSet.unionWith(ValPts);
    // At an SU store the chi set is exactly the killed singleton; its IN
    // never flows out (even while pt(p) is still empty mid-solve: if it
    // stays empty the store can never execute a write).
    if (StrongUpdate)
      continue;
    auto It = NodeIn.find(O);
    if (It != NodeIn.end())
      OutSet.unionWith(It->second);
  }
}

void FlowSensitive::processFree(const Instruction &Inst, InstID I) {
  // [FREE]: a store with no stored value — nothing is generated. At a
  // strong-update free the sole pointee's incoming value is killed (OUT
  // stays empty); a weak free passes IN through untouched.
  (void)Inst;
  NodeID N = G.instNode(I);
  if (SUStore[I])
    return;
  ObjMap &NodeIn = In[N];
  ObjMap &NodeOut = Out[N];
  for (uint32_t O : G.memSSA().chiObjs(I)) {
    auto It = NodeIn.find(O);
    if (It != NodeIn.end())
      NodeOut[O].unionWith(It->second);
  }
}

void FlowSensitive::onCalleeDiscovered(InstID CS, FunID Callee) {
  // Wire the SVFG value flows for the new call edge and make sure both the
  // freshly connected sources and the callee boundary nodes run again.
  // A scoped solve still materialises the edges (they are shared graph
  // state any later, larger-scoped solve reuses) but only schedules the
  // in-scope endpoints.
  std::vector<std::pair<NodeID, svfg::IndEdge>> Added;
  G.connectCallEdge(CS, Callee, Added);
  for (auto &[From, Edge] : Added) {
    (void)Edge;
    if (inScope(From))
      WL.push(From);
  }
  const Function &F = M.function(Callee);
  if (inScope(G.instNode(F.Entry)))
    WL.push(G.instNode(F.Entry));
  if (inScope(G.instNode(F.Exit)))
    WL.push(G.instNode(F.Exit));
}

void FlowSensitive::onFormalBound(FunID Callee, VarID Param) {
  // Re-run the callee from its entry so the parameter's uses observe the
  // update (the worklist deduplicates repeated pushes per call).
  (void)Param;
  NodeID Entry = G.instNode(M.function(Callee).Entry);
  if (inScope(Entry))
    WL.push(Entry);
}

void FlowSensitive::onReturnBound(InstID CS, VarID Dst) {
  // Wake the uses of the call's destination (the call node's direct succs).
  (void)Dst;
  for (NodeID S : G.directSuccs(G.instNode(CS)))
    if (inScope(S))
      WL.push(S);
}

void FlowSensitive::propagateIndirect(NodeID N) {
  // [A-PROP]: forward this node's view of each object along its outgoing
  // object-labelled edges. Memory defs (stores, frees) forward OUT;
  // everything else forwards IN.
  const auto &IndSuccs = G.indirectSuccs(N);
  if (IndSuccs.empty())
    return;
  const bool IsMemDef =
      G.node(N).Kind == NodeKind::Inst &&
      (M.inst(G.node(N).Inst).Kind == InstKind::Store ||
       M.inst(G.node(N).Inst).Kind == InstKind::Free);
  const ObjMap &Src = IsMemDef ? Out[N] : In[N];
  if (Src.empty())
    return;
  for (const svfg::IndEdge &E : IndSuccs) {
    if (!inScope(E.Dst))
      continue; // Out-of-scope state is never stored or scheduled.
    auto It = Src.find(E.Obj);
    if (It == Src.end() || It->second.empty())
      continue;
    ++Propagations;
    if (In[E.Dst][E.Obj].unionWith(It->second))
      WL.push(E.Dst);
  }
}

const PointsTo &FlowSensitive::inOf(NodeID N, ObjID O) const {
  static const PointsTo Empty;
  // Fan a coalesced member's answer out from its class representative: the
  // representative forwards exactly the value the member forwarded, which
  // is the member's IN — the representative's OUT when it is a memory def
  // (Forward contraction into a store/free), its IN otherwise.
  if (const svfg::CoalesceMap *CM = G.coalesceMap();
      CM != nullptr && CM->isMember(N)) {
    N = CM->rep(N);
    const svfg::Node &Rep = G.node(N);
    if (Rep.Kind == NodeKind::Inst &&
        (M.inst(Rep.Inst).Kind == InstKind::Store ||
         M.inst(Rep.Inst).Kind == InstKind::Free)) {
      auto It = Out[N].find(O);
      return It == Out[N].end() ? Empty : It->second;
    }
  }
  auto It = In[N].find(O);
  return It == In[N].end() ? Empty : It->second;
}

uint64_t FlowSensitive::footprintBytes() const {
  return objPtsMapTableBytes(In) + objPtsMapTableBytes(Out) +
         topLevelFootprintBytes();
}

uint64_t FlowSensitive::numPtsSetsStored() const {
  return objPtsMapTableEntries(In) + objPtsMapTableEntries(Out);
}
