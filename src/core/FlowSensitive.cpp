//===- FlowSensitive.cpp - Staged flow-sensitive analysis -------*- C++ -*-===//

#include "core/FlowSensitive.h"

#include "core/StrongUpdate.h"

#include <cassert>

using namespace vsfs;
using namespace vsfs::core;
using namespace vsfs::ir;
using svfg::NodeID;
using svfg::NodeKind;

FlowSensitive::FlowSensitive(svfg::SVFG &G, Options Opts)
    : G(G), M(G.module()), Opts(Opts) {
  VarPts.assign(M.symbols().numVars(), {});
  In.assign(G.numNodes(), {});
  Out.assign(G.numNodes(), {});
  SUStore = computeStrongUpdateStores(M, G.auxAnalysis());

  // Seed the flow-sensitive call graph. Direct calls are always known; with
  // the auxiliary call graph option, indirect targets are adopted from
  // Andersen (the SVFG already wired their value flows).
  const andersen::CallGraph &AuxCG = G.auxAnalysis().callGraph();
  for (InstID CS : AuxCG.callSites()) {
    if (M.inst(CS).isIndirectCall() && Opts.OnTheFlyCallGraph)
      continue;
    for (FunID Callee : AuxCG.callees(CS))
      FSCG.addEdge(CS, Callee);
  }
}

void FlowSensitive::solve() {
  if (Solved)
    return;
  Solved = true;
  for (NodeID N = 0; N < G.numNodes(); ++N)
    WL.push(N);
  while (!WL.empty()) {
    ++Stats.get("node-visits");
    processNode(WL.pop());
  }
  Stats.get("pts-sets-stored") = numPtsSetsStored();
}

void FlowSensitive::processNode(NodeID N) {
  const svfg::Node &Node = G.node(N);
  bool TopChanged = false;
  if (Node.Kind == NodeKind::Inst)
    TopChanged = processInst(Node.Inst);
  // Chi/mu/phi nodes have no transfer function of their own: their IN is
  // the union of incoming values, forwarded by the propagation below.

  propagateIndirect(N);
  if (TopChanged)
    for (NodeID S : G.directSuccs(N))
      WL.push(S);
}

bool FlowSensitive::processInst(InstID I) {
  const Instruction &Inst = M.inst(I);
  switch (Inst.Kind) {
  case InstKind::Alloc:
    return VarPts[Inst.Dst].set(Inst.allocObject());
  case InstKind::Copy:
    return VarPts[Inst.Dst].unionWith(VarPts[Inst.copySrc()]);
  case InstKind::Phi: {
    bool Changed = false;
    for (VarID Src : Inst.phiSrcs())
      Changed |= VarPts[Inst.Dst].unionWith(VarPts[Src]);
    return Changed;
  }
  case InstKind::FieldAddr: {
    bool Changed = false;
    for (uint32_t O : VarPts[Inst.fieldBase()])
      Changed |= VarPts[Inst.Dst].set(
          M.symbols().getFieldObject(O, Inst.fieldOffset()));
    return Changed;
  }
  case InstKind::Load:
    return processLoad(Inst, I);
  case InstKind::Store:
    processStore(Inst, I);
    return false;
  case InstKind::Call:
    processCall(Inst, I);
    return false;
  case InstKind::FunEntry:
    // Parameters are (re)defined here by callers; always forward so their
    // uses observe updates (this node is only pushed on parameter change).
    return true;
  case InstKind::FunExit:
    processFunExit(Inst);
    return false;
  }
  return false;
}

bool FlowSensitive::processLoad(const Instruction &Inst, InstID I) {
  // [LOAD]: pt(p) ⊇ IN(ℓ, o) for every o ∈ pt(q).
  bool Changed = false;
  const ObjMap &NodeIn = In[G.instNode(I)];
  for (uint32_t O : VarPts[Inst.loadPtr()]) {
    if (M.symbols().isFunctionObject(O))
      continue;
    auto It = NodeIn.find(O);
    if (It != NodeIn.end())
      Changed |= VarPts[Inst.Dst].unionWith(It->second);
  }
  return Changed;
}

void FlowSensitive::processStore(const Instruction &Inst, InstID I) {
  // [STORE] and [SU/WU]: objects the store may write get GEN = pt(q); at a
  // strong-update store (statically decided, see core/StrongUpdate.h) the
  // sole pointee's incoming value is killed; every other object annotated
  // on this store passes through IN -> OUT.
  NodeID N = G.instNode(I);
  const PointsTo &PtrPts = VarPts[Inst.storePtr()];
  const PointsTo &ValPts = VarPts[Inst.storeVal()];
  const PointsTo &ChiObjs = G.memSSA().chiObjs(I);
  const bool StrongUpdate = SUStore[I];
  ObjMap &NodeIn = In[N];
  ObjMap &NodeOut = Out[N];
  for (uint32_t O : ChiObjs) {
    PointsTo &OutSet = NodeOut[O];
    if (PtrPts.test(O))
      OutSet.unionWith(ValPts);
    // At an SU store the chi set is exactly the killed singleton; its IN
    // never flows out (even while pt(p) is still empty mid-solve: if it
    // stays empty the store can never execute a write).
    if (StrongUpdate)
      continue;
    auto It = NodeIn.find(O);
    if (It != NodeIn.end())
      OutSet.unionWith(It->second);
  }
}

void FlowSensitive::connectDiscoveredCallee(InstID CS, FunID Callee) {
  // Wire the SVFG value flows for the new call edge and make sure both the
  // freshly connected sources and the callee boundary nodes run again.
  std::vector<std::pair<NodeID, svfg::IndEdge>> Added;
  G.connectCallEdge(CS, Callee, Added);
  for (auto &[From, Edge] : Added) {
    (void)Edge;
    WL.push(From);
  }
  const Function &F = M.function(Callee);
  WL.push(G.instNode(F.Entry));
  WL.push(G.instNode(F.Exit));
  ++Stats.get("otf-call-edges");
}

void FlowSensitive::processCall(const Instruction &Inst, InstID I) {
  // [CALL]: on-the-fly resolution discovers callees from the current
  // flow-sensitive points-to set of the callee pointer.
  if (Inst.isIndirectCall() && Opts.OnTheFlyCallGraph) {
    for (uint32_t O : VarPts[Inst.indirectCalleeVar()]) {
      if (!M.symbols().isFunctionObject(O))
        continue;
      FunID Callee = M.symbols().object(O).Func;
      if (FSCG.addEdge(I, Callee))
        connectDiscoveredCallee(I, Callee);
    }
  }

  // Actual -> formal argument bindings.
  const auto &Args = Inst.callArgs();
  for (FunID Callee : FSCG.callees(I)) {
    const Function &F = M.function(Callee);
    size_t N = std::min(Args.size(), F.Params.size());
    bool ParamChanged = false;
    for (size_t K = 0; K < N; ++K)
      ParamChanged |= VarPts[F.Params[K]].unionWith(VarPts[Args[K]]);
    if (ParamChanged)
      WL.push(G.instNode(F.Entry));
  }
}

void FlowSensitive::processFunExit(const Instruction &Inst) {
  // [RET]: flow the returned pointer into every caller's destination, and
  // wake the uses of those destinations (the call nodes' direct succs).
  VarID Ret = Inst.exitRet();
  if (Ret == InvalidVar)
    return;
  for (InstID CS : FSCG.callers(Inst.Parent)) {
    const Instruction &Call = M.inst(CS);
    if (Call.Dst == InvalidVar)
      continue;
    if (VarPts[Call.Dst].unionWith(VarPts[Ret]))
      for (NodeID S : G.directSuccs(G.instNode(CS)))
        WL.push(S);
  }
}

void FlowSensitive::propagateIndirect(NodeID N) {
  // [A-PROP]: forward this node's view of each object along its outgoing
  // object-labelled edges. Stores forward OUT; everything else forwards IN.
  const bool IsStore = G.node(N).Kind == NodeKind::Inst &&
                       M.inst(G.node(N).Inst).Kind == InstKind::Store;
  const ObjMap &Src = IsStore ? Out[N] : In[N];
  if (Src.empty() && G.indirectSuccs(N).empty())
    return;
  for (const svfg::IndEdge &E : G.indirectSuccs(N)) {
    auto It = Src.find(E.Obj);
    if (It == Src.end() || It->second.empty())
      continue;
    ++Stats.get("propagations");
    if (In[E.Dst][E.Obj].unionWith(It->second))
      WL.push(E.Dst);
  }
}

const PointsTo &FlowSensitive::inOf(NodeID N, ObjID O) const {
  static const PointsTo Empty;
  auto It = In[N].find(O);
  return It == In[N].end() ? Empty : It->second;
}

uint64_t FlowSensitive::footprintBytes() const {
  auto MapBytes = [](const ObjMap &Map) {
    // Hash buckets + per-entry node overhead + the PointsTo headers.
    uint64_t B = Map.bucket_count() * sizeof(void *);
    B += Map.size() * (sizeof(std::pair<const ir::ObjID, PointsTo>) +
                       2 * sizeof(void *));
    for (const auto &[O, Set] : Map) {
      (void)O;
      B += Set.capacityBytes();
    }
    return B;
  };
  uint64_t Total = 0;
  for (const ObjMap &Map : In)
    Total += MapBytes(Map);
  for (const ObjMap &Map : Out)
    Total += MapBytes(Map);
  Total += VarPts.capacity() * sizeof(PointsTo);
  for (const PointsTo &P : VarPts)
    Total += P.capacityBytes();
  return Total;
}

uint64_t FlowSensitive::numPtsSetsStored() const {
  uint64_t Total = 0;
  for (const ObjMap &Map : In)
    Total += Map.size();
  for (const ObjMap &Map : Out)
    Total += Map.size();
  return Total;
}
