//===- ObjectVersioning.cpp - Meld-labelling object versioning --*- C++ -*-===//

#include "core/ObjectVersioning.h"

#include "svfg/Coalesce.h"

#include "adt/WorkList.h"
#include "adt/LabelStore.h"
#include "graph/Graph.h"
#include "graph/SCC.h"
#include "support/Timer.h"

#include <cassert>

using namespace vsfs;
using namespace vsfs::core;
using namespace vsfs::ir;
using svfg::NodeID;
using svfg::NodeKind;

ObjectVersioning::ObjectVersioning(const svfg::SVFG &G, bool OnTheFlyCallGraph,
                                   MeldRep Rep, ResourceBudget *Budget,
                                   const svfg::NodeScope *Scope)
    : G(G), OTF(OnTheFlyCallGraph), Rep(Rep), Budget(Budget), Scope(Scope) {}

void ObjectVersioning::run() {
  if (Ran)
    return;
  Ran = true;
  Timer T;
  NumObjects = G.module().symbols().numObjects();

  // ε versions first: version ID == object ID for the identity version
  // (intern() maps every empty label straight to this range).
  VersionObj.resize(NumObjects);
  for (ObjID O = 0; O < NumObjects; ++O)
    VersionObj[O] = O;

  prelabel();
  meld();
  internVersions();

  Seconds = T.seconds();
  Stats.get("prelabels") = NextPrelabel;
  Stats.get("versions") = VersionObj.size();
  Stats.get("consume-positions") = ConsumeVer.size();
}

void ObjectVersioning::prelabel() {
  const Module &M = G.module();
  // Prelabel IDs are numbered per object: labels are only ever compared
  // within one object, and object-local numbering keeps them dense (small
  // sparse-bit-vector footprints during melding).
  auto NewPrelabel = [this](ObjID O) {
    ++NextPrelabel;
    return NextPreOfObj[O]++;
  };
  for (NodeID N = 0; N < G.numNodes(); ++N) {
    if (Scope && !Scope->contains(N))
      continue; // Demand mode: only the sliced subgraph is versioned.
    const svfg::Node &Node = G.node(N);
    switch (Node.Kind) {
    case NodeKind::Inst: {
      // [STORE]ᴾ: a store yields a fresh version for each object it may
      // define, because it may propagate forward a different points-to set
      // than the one propagated to it. Free is a memory def too (its χ may
      // kill the freed object's contents), so it yields fresh versions for
      // the same reason.
      const Instruction &Inst = M.inst(Node.Inst);
      if (Inst.Kind != InstKind::Store && Inst.Kind != InstKind::Free)
        break;
      for (uint32_t O : G.memSSA().chiObjs(Node.Inst))
        StoreYieldPre.emplace(key(N, O), NewPrelabel(O));
      break;
    }
    case NodeKind::EntryChi:
      // [OTF-CG]ᴾ: entry-χ of an address-taken function may gain incoming
      // edges when indirect calls are resolved during the main phase.
      if (OTF && M.function(Node.Fun).hasAddressTaken()) {
        Label L;
        L.set(NewPrelabel(Node.Obj));
        ConsumeLabel[key(N, Node.Obj)] = std::move(L);
        Frozen[key(N, Node.Obj)] = true;
      }
      break;
    case NodeKind::CallChi:
      // [OTF-CG]ᴾ: the return side of an indirect call likewise gains
      // incoming exit-μ edges during solving.
      if (OTF && M.inst(Node.Inst).isIndirectCall()) {
        Label L;
        L.set(NewPrelabel(Node.Obj));
        ConsumeLabel[key(N, Node.Obj)] = std::move(L);
        Frozen[key(N, Node.Obj)] = true;
      }
      break;
    default:
      break;
    }
  }
}

void ObjectVersioning::meld() {
  // [EXTERNAL]ᵛ along indirect edges; [INTERNAL]ᵛ is implicit because a
  // non-store node's yield is read from the same label storage it consumes.
  //
  // The fixpoint is computed one object at a time on that object's labelled
  // subgraph: nodes in a cycle provably share a label, so we condense the
  // subgraph with Tarjan and propagate labels in one topological pass —
  // O(edges + label unions) per object instead of a quadratic node-level
  // worklist over the whole SVFG.
  //
  // Store nodes split in two: their consume side receives like any node,
  // while their yield side is a fresh source holding only the store's
  // prelabel ([INTERNAL]ᵛ does not apply to stores). δ consume positions
  // are sources too: prelabelled, with incoming edges cut (frozen).

  // Bucket the SVFG's indirect edges by object. Scoped versioning melds
  // only edges inside the scope: a backward-closed scope has no incoming
  // edges from outside, and labels must never flow to positions the
  // scoped solver will not process.
  std::unordered_map<ObjID, std::vector<std::pair<NodeID, NodeID>>>
      EdgesByObj;
  for (NodeID N = 0; N < G.numNodes(); ++N) {
    if (Scope && !Scope->contains(N))
      continue;
    for (const svfg::IndEdge &E : G.indirectSuccs(N))
      if (!Scope || Scope->contains(E.Dst))
        EdgesByObj[E.Obj].emplace_back(N, E.Dst);
  }

  for (auto &[Obj, Edges] : EdgesByObj) {
    // Cooperative cancellation between per-object fixpoints: finished
    // objects keep their melded labels, unreached ones fall back to ε.
    if (Budget && !Budget->checkpoint())
      return;
    // Local node numbering: consume side of every endpoint, plus a
    // dedicated source node per store's yield. Init is the ID allocator:
    // one label slot per local node.
    std::unordered_map<NodeID, uint32_t> LocalOf;
    std::unordered_map<NodeID, uint32_t> StoreSrcLocal;
    std::vector<Label> Init;
    auto LocalConsume = [&](NodeID N) {
      auto [It, New] = LocalOf.emplace(N, static_cast<uint32_t>(Init.size()));
      if (New)
        Init.emplace_back();
      return It->second;
    };

    vsfs::graph::AdjacencyGraph LG;
    std::vector<std::pair<uint32_t, uint32_t>> LocalEdges;
    LocalEdges.reserve(Edges.size());
    for (auto &[From, To] : Edges) {
      uint32_t Dst = LocalConsume(To);
      if (Frozen.count(key(To, Obj)))
        continue; // δ consume positions never meld incoming labels.
      uint32_t Src;
      auto PreIt = StoreYieldPre.find(key(From, Obj));
      if (PreIt != StoreYieldPre.end()) {
        // The store's yield: a fresh source carrying its prelabel.
        auto [SIt, SNew] =
            StoreSrcLocal.emplace(From, static_cast<uint32_t>(Init.size()));
        if (SNew) {
          Init.emplace_back();
          Init.back().set(PreIt->second);
        }
        Src = SIt->second;
      } else {
        Src = LocalConsume(From);
      }
      LocalEdges.emplace_back(Src, Dst);
    }
    // Seed δ consume prelabels.
    for (auto &[From, To] : Edges) {
      for (NodeID N : {From, To}) {
        auto It = ConsumeLabel.find(key(N, Obj));
        if (It != ConsumeLabel.end()) {
          auto LocalIt = LocalOf.find(N);
          if (LocalIt != LocalOf.end())
            Init[LocalIt->second].unionWith(It->second);
        }
      }
    }

    LG.resize(static_cast<uint32_t>(Init.size()));
    for (auto &[Src, Dst] : LocalEdges)
      LG.addEdge(Src, Dst);

    // Condense and propagate in one topological sweep: component IDs are
    // in reverse topological order, so walking them downwards visits every
    // component after all of its predecessors.
    vsfs::graph::SCCResult SCCs = vsfs::graph::computeSCCs(LG);
    std::vector<std::vector<uint32_t>> CompSuccs(SCCs.NumComponents);
    for (auto &[Src, Dst] : LocalEdges) {
      uint32_t CS = SCCs.ComponentOf[Src], CD = SCCs.ComponentOf[Dst];
      if (CS != CD)
        CompSuccs[CS].push_back(CD);
    }

    std::vector<Label> CompLabel(SCCs.NumComponents);
    if (Rep == MeldRep::SparseBits) {
      for (uint32_t L = 0; L < Init.size(); ++L)
        CompLabel[SCCs.ComponentOf[L]].unionWith(Init[L]);
      for (uint32_t C = SCCs.NumComponents; C-- > 0;) {
        if (Budget && !Budget->checkpoint())
          return; // Abandon this object mid-sweep: its labels stay ε.
        for (uint32_t S : CompSuccs[C]) {
          ++MeldOps;
          CompLabel[S].unionWith(CompLabel[C]);
        }
      }
    } else {
      // §V-B's versioning-specific representation: labels are interned
      // IDs; repeated melds of the same pair are one memo lookup.
      adt::LabelStore Store;
      std::vector<adt::LabelID> CompId(SCCs.NumComponents, adt::EpsilonLabel);
      for (uint32_t L = 0; L < Init.size(); ++L) {
        uint32_t C = SCCs.ComponentOf[L];
        CompId[C] = Store.meld(CompId[C], Store.fromBits(Init[L]));
      }
      for (uint32_t C = SCCs.NumComponents; C-- > 0;) {
        if (Budget && !Budget->checkpoint())
          return; // Abandon this object mid-sweep: its labels stay ε.
        for (uint32_t S : CompSuccs[C]) {
          ++MeldOps;
          CompId[S] = Store.meld(CompId[S], CompId[C]);
        }
      }
      for (uint32_t C = 0; C < SCCs.NumComponents; ++C)
        CompLabel[C] = Store.bits(CompId[C]);
      Stats.add("memo-hits", Store.memoHits());
      Stats.add("memo-misses", Store.memoMisses());
    }

    // Publish the melded consume labels (δ positions already hold theirs).
    for (const auto &[N, L] : LocalOf) {
      uint64_t K = key(N, Obj);
      if (Frozen.count(K))
        continue;
      const Label &Final = CompLabel[SCCs.ComponentOf[L]];
      if (!Final.empty())
        ConsumeLabel[K] = Final;
    }
  }
}

Version ObjectVersioning::intern(ObjID O, const Label &L) {
  if (L.empty())
    return O; // ε version of O.
  uint64_t H = (key(O, 0) * 0x9E3779B97F4A7C15ull) ^ L.hash();
  auto &Chain = InternTable[H];
  for (const InternEntry &E : Chain)
    if (E.Obj == O && E.L == L)
      return E.V;
  Version V = static_cast<Version>(VersionObj.size());
  VersionObj.push_back(O);
  Chain.push_back(InternEntry{O, L, V});
  return V;
}

void ObjectVersioning::internVersions() {
  for (const auto &[Key, L] : ConsumeLabel) {
    ObjID O = static_cast<ObjID>(Key & 0xFFFFFFFF);
    ConsumeVer.emplace(Key, intern(O, L));
  }
  for (const auto &[Key, Pre] : StoreYieldPre) {
    ObjID O = static_cast<ObjID>(Key & 0xFFFFFFFF);
    Label L;
    L.set(Pre);
    YieldVer.emplace(Key, intern(O, L));
  }
}

Version ObjectVersioning::consume(NodeID N, ObjID O) const {
  // A coalesced member is edge-less on the graph the labelling ran over;
  // it consumed exactly what its class representative yields (the
  // representative carries the member's forwarded value). Representatives
  // are never members themselves, so this redirects at most once.
  if (const svfg::CoalesceMap *CM = G.coalesceMap();
      CM != nullptr && CM->isMember(N))
    return yield(CM->rep(N), O);
  auto It = ConsumeVer.find(key(N, O));
  if (It != ConsumeVer.end())
    return It->second;
  return O; // ε version of O.
}

Version ObjectVersioning::yield(NodeID N, ObjID O) const {
  if (const svfg::CoalesceMap *CM = G.coalesceMap();
      CM != nullptr && CM->isMember(N))
    N = CM->rep(N);
  // Stores yield their prelabel; everyone else yields what they consume.
  auto It = YieldVer.find(key(N, O));
  if (It != YieldVer.end())
    return It->second;
  return consume(N, O);
}
