//===- MeldLabelling.h - Generic prelabelling extension ---------*- C++ -*-===//
///
/// \file
/// Meld labelling (§IV-B): a prelabelling extension for directed graphs.
/// Given a prelabelling of some nodes, each node's final label is the meld
/// (⊕) of the labels of everything that transitively reaches it:
///
///   [MELD]  n' → n  ⟹  κ_n = κ_n' ⊕ κ_n      (to fixpoint)
///
/// The meld operator must be commutative, associative, idempotent, and have
/// an identity ε — exactly the algebra of set union, which is the
/// instantiation object versioning uses (labels are sets of prelabel IDs,
/// represented as sparse bit vectors).
///
/// Nodes can optionally be \e frozen: their label is fixed by the
/// prelabelling and never melds incoming labels (the paper's δ nodes).
///
/// This header is the reusable, graph-generic form; \c ObjectVersioning
/// applies the same process per-object over the SVFG's labelled edges.
///
//===----------------------------------------------------------------------===//

#ifndef VSFS_CORE_MELDLABELLING_H
#define VSFS_CORE_MELDLABELLING_H

#include "adt/WorkList.h"
#include "graph/Graph.h"

#include <vector>

namespace vsfs {
namespace core {

/// Runs meld labelling over \p G.
///
/// \tparam LabelT   the label domain K; default-constructed = identity ε.
/// \tparam MeldInto callable bool(LabelT &Dst, const LabelT &Src) melding
///                  Src into Dst, returning true iff Dst changed. The
///                  operation must be commutative, associative and
///                  idempotent over the labels actually used.
///
/// \param Prelabels initial labels, one per node (ε for non-prelabelled).
/// \param Frozen    per-node flags; frozen nodes keep their prelabel.
/// \returns the fixpoint labelling.
template <typename LabelT, typename MeldInto>
std::vector<LabelT> meldLabel(const graph::AdjacencyGraph &G,
                              std::vector<LabelT> Prelabels,
                              const std::vector<bool> &Frozen,
                              MeldInto Meld) {
  std::vector<LabelT> Labels = std::move(Prelabels);
  Labels.resize(G.numNodes());

  adt::LIFOWorkList WL;
  for (uint32_t N = 0; N < G.numNodes(); ++N)
    WL.push(N);

  while (!WL.empty()) {
    uint32_t N = WL.pop();
    for (uint32_t S : G.successors(N)) {
      if (S < Frozen.size() && Frozen[S])
        continue;
      if (Meld(Labels[S], Labels[N]))
        WL.push(S);
    }
  }
  return Labels;
}

/// Convenience overload without frozen nodes.
template <typename LabelT, typename MeldInto>
std::vector<LabelT> meldLabel(const graph::AdjacencyGraph &G,
                              std::vector<LabelT> Prelabels, MeldInto Meld) {
  return meldLabel(G, std::move(Prelabels), std::vector<bool>(),
                   std::move(Meld));
}

} // namespace core
} // namespace vsfs

#endif // VSFS_CORE_MELDLABELLING_H
