//===- Client.h - Thin client for the analysis daemon -----------*- C++ -*-===//
///
/// \file
/// The client side of docs/SERVICE.md: connect to a `vsfs-served` socket,
/// exchange one request/response frame pair, and hand the structured
/// \c Response back. `vsfs-wpa --connect` and the service tests/bench sit
/// on top of this; all exit-code mapping stays in \c statusExitCode().
///
//===----------------------------------------------------------------------===//

#ifndef VSFS_SERVICE_CLIENT_H
#define VSFS_SERVICE_CLIENT_H

#include "service/Protocol.h"

#include <string>

namespace vsfs {
namespace service {

/// Sends one already-encoded request payload and reads the response.
/// Returns false with \p Error set on any transport failure (daemon
/// unreachable, timeout, malformed response) — the "service unavailable"
/// condition the CLI maps to exit code 5. A request the daemon *refused*
/// is not a transport failure: that arrives as a parsed \c Response.
bool roundTrip(const std::string &SocketPath, const std::string &Payload,
               Response &Out, std::string &Error,
               double TimeoutSeconds = 30);

/// Convenience wrappers.
bool requestAnalyze(const std::string &SocketPath, const AnalyzeRequest &R,
                    Response &Out, std::string &Error,
                    double TimeoutSeconds = 30);
bool requestHealth(const std::string &SocketPath, Response &Out,
                   std::string &Error, double TimeoutSeconds = 30);

} // namespace service
} // namespace vsfs

#endif // VSFS_SERVICE_CLIENT_H
