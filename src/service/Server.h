//===- Server.h - Fault-isolated analysis daemon core -----------*- C++ -*-===//
///
/// \file
/// The daemon behind `vsfs-served` (docs/SERVICE.md): a unix-domain
/// socket acceptor, a bounded connection queue with overload shedding,
/// and a pool of worker threads that each execute one request at a time
/// as an isolated analysis universe (thread-local representation latch,
/// interning cache, memory accounting and fault plan; their own
/// \c ResourceBudget and \c AnalysisContext per request).
///
/// Robustness properties, each soak-tested:
///  - a malformed frame, exhausted budget or injected fault maps to a
///    structured per-request \c Status; the daemon and its other
///    in-flight requests are untouched;
///  - the queue never grows past QueueCap: excess connections receive an
///    explicit shed response with a retry-after hint at accept time;
///  - completed (Status::Ok) responses land in a bounded LRU result
///    cache; hits are served byte-identical without re-analysis;
///  - \c requestStop() is async-signal-safe; \c stop() drains queued and
///    in-flight work before joining (graceful SIGTERM);
///  - health requests report queue depth, cache hit rate and cumulative
///    Termination counts without touching the worker pool.
///
//===----------------------------------------------------------------------===//

#ifndef VSFS_SERVICE_SERVER_H
#define VSFS_SERVICE_SERVER_H

#include "service/ResultCache.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace vsfs {
namespace service {

class Server {
public:
  struct Config {
    std::string SocketPath;
    uint32_t Workers = 2;
    uint32_t QueueCap = 16; ///< pending connections before shedding
    ResultCache::Limits Cache;
    /// Server-side ceiling on any one request's wall-clock budget,
    /// enforced through the same cooperative checkpoint polling as a
    /// client-supplied --time-budget (0 = no ceiling). Note that a
    /// tighter effective budget is visible in that request's stats.
    double RequestTimeoutSeconds = 0;
    double IoTimeoutSeconds = 10; ///< per-socket read/write timeout
    uint32_t RetryAfterMs = 100;  ///< hint carried by shed responses
  };

  explicit Server(Config C);
  ~Server();
  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds the socket and spawns the acceptor + worker threads. False
  /// with \p Error set on any setup failure.
  bool start(std::string &Error);

  /// Async-signal-safe stop request (an atomic store and one pipe write);
  /// the signal handler in vsfs-served calls this, then the main thread
  /// runs \c stop().
  void requestStop();

  /// Stops accepting, drains queued and in-flight requests, joins all
  /// threads and removes the socket file. Idempotent.
  void stop();

  bool running() const { return Started; }
  const Config &config() const { return C; }

  /// The health/stats document (schema vsfs-health-v1); also what a
  /// health request over the wire returns.
  std::string healthJson() const;

private:
  void acceptLoop();
  void workerLoop();
  void handleConnection(int Fd);
  void countResponse(const Response &R);

  Config C;
  int ListenFd = -1;
  int WakePipe[2] = {-1, -1};
  std::thread Acceptor;
  std::vector<std::thread> WorkerThreads;
  std::atomic<bool> Stopping{false};
  bool Started = false;

  mutable std::mutex M; ///< guards Queue, Cache and Stats
  std::condition_variable QueueCV;
  std::deque<int> Queue;
  ResultCache Cache;

  struct Counters {
    uint64_t RequestsTotal = 0;
    uint64_t HealthRequests = 0;
    uint64_t ReadErrors = 0;
    uint64_t ByStatus[8] = {};      ///< indexed by Status
    uint64_t ByTermination[5] = {}; ///< indexed by Termination
  } Stats;
};

} // namespace service
} // namespace vsfs

#endif // VSFS_SERVICE_SERVER_H
