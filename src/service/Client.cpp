//===- Client.cpp - Thin client for the analysis daemon -------------------===//

#include "service/Client.h"

#include <cerrno>
#include <cstring>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace vsfs;
using namespace vsfs::service;

bool vsfs::service::roundTrip(const std::string &SocketPath,
                              const std::string &Payload, Response &Out,
                              std::string &Error, double TimeoutSeconds) {
  if (SocketPath.empty() ||
      SocketPath.size() >= sizeof(sockaddr_un{}.sun_path)) {
    Error = "bad socket path";
    return false;
  }
  int Fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (Fd < 0) {
    Error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  if (TimeoutSeconds > 0) {
    struct timeval TV;
    TV.tv_sec = static_cast<time_t>(TimeoutSeconds);
    TV.tv_usec =
        static_cast<suseconds_t>((TimeoutSeconds - double(TV.tv_sec)) * 1e6);
    ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &TV, sizeof(TV));
    ::setsockopt(Fd, SOL_SOCKET, SO_SNDTIMEO, &TV, sizeof(TV));
  }
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  std::strncpy(Addr.sun_path, SocketPath.c_str(), sizeof(Addr.sun_path) - 1);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    Error = "cannot connect to " + SocketPath + ": " + std::strerror(errno);
    ::close(Fd);
    return false;
  }
  // A shedding daemon answers (and closes) without reading the request,
  // so a failed write is not fatal by itself: the response — which is
  // what we are really after — may already be in our receive buffer.
  bool Wrote = writeFrame(Fd, Payload);
  std::string ReadError;
  std::string RespPayload;
  int RF = readFrame(Fd, RespPayload, ReadError);
  ::close(Fd);
  if (RF <= 0) {
    Error = !Wrote ? "request write failed (daemon gone?)"
                   : (RF == 0 ? "daemon closed the connection without a "
                                "response"
                              : "response read failed: " + ReadError);
    return false;
  }
  if (!parseResponse(RespPayload, Out, Error)) {
    Error = "malformed response: " + Error;
    return false;
  }
  return true;
}

bool vsfs::service::requestAnalyze(const std::string &SocketPath,
                                   const AnalyzeRequest &R, Response &Out,
                                   std::string &Error,
                                   double TimeoutSeconds) {
  return roundTrip(SocketPath, encodeAnalyzeRequest(R), Out, Error,
                   TimeoutSeconds);
}

bool vsfs::service::requestHealth(const std::string &SocketPath,
                                  Response &Out, std::string &Error,
                                  double TimeoutSeconds) {
  return roundTrip(SocketPath, encodeHealthRequest(), Out, Error,
                   TimeoutSeconds);
}
