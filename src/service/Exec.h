//===- Exec.h - One analysis request, executed in-process -------*- C++ -*-===//
///
/// \file
/// \c executeAnalyze runs one validated \c AnalyzeRequest to completion on
/// the calling thread and returns the full \c Response. It replays exactly
/// the sequence `vsfs-wpa` runs locally for the same options — same budget
/// construction, same pipeline phases, same checker/taint reporting, same
/// stats/findings JSON composition — which is what makes a served response
/// bit-identical to a cold CLI run (tests/service_identity.sh asserts this
/// per preset). The narrative the CLI prints to stdout is captured into
/// \c Response::Summary; stderr diagnostics into \c Response::Error.
///
/// Isolation contract: the function brackets the run in its own
/// \c PtsReprScope and \c CacheSessionScope, so concurrent callers on
/// different threads are independent analysis universes (all mutable
/// analysis globals are thread-local). The caller is responsible for
/// arming the thread's \c FaultInjection from \c AnalyzeRequest::Fault
/// beforehand (mirroring the CLI, where main() arms from the environment
/// before run()) and for disarming any unfired plan afterwards.
///
//===----------------------------------------------------------------------===//

#ifndef VSFS_SERVICE_EXEC_H
#define VSFS_SERVICE_EXEC_H

#include "service/Protocol.h"

namespace vsfs {
namespace service {

/// Precondition: \c validateRequest(R) passed. Never throws; never exits;
/// every failure becomes a structured per-request status.
Response executeAnalyze(const AnalyzeRequest &R);

} // namespace service
} // namespace vsfs

#endif // VSFS_SERVICE_EXEC_H
