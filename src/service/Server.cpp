//===- Server.cpp - Fault-isolated analysis daemon core -------------------===//

#include "service/Server.h"

#include "adt/PointsToCache.h"
#include "service/Exec.h"
#include "support/FaultInjection.h"
#include "support/Schemas.h"

#include <cerrno>
#include <cstring>
#include <poll.h>
#include <sstream>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace vsfs;
using namespace vsfs::service;

namespace {

void setSocketTimeouts(int Fd, double Seconds) {
  if (Seconds <= 0)
    return;
  struct timeval TV;
  TV.tv_sec = static_cast<time_t>(Seconds);
  TV.tv_usec = static_cast<suseconds_t>((Seconds - double(TV.tv_sec)) * 1e6);
  ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &TV, sizeof(TV));
  ::setsockopt(Fd, SOL_SOCKET, SO_SNDTIMEO, &TV, sizeof(TV));
}

} // namespace

Server::Server(Config Cfg) : C(std::move(Cfg)), Cache(C.Cache) {}

Server::~Server() { stop(); }

bool Server::start(std::string &Error) {
  if (Started) {
    Error = "server already started";
    return false;
  }
  if (C.SocketPath.empty() ||
      C.SocketPath.size() >= sizeof(sockaddr_un{}.sun_path)) {
    Error = "bad socket path";
    return false;
  }
  if (::pipe(WakePipe) != 0) {
    Error = std::string("pipe: ") + std::strerror(errno);
    return false;
  }
  ListenFd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (ListenFd < 0) {
    Error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  std::strncpy(Addr.sun_path, C.SocketPath.c_str(),
               sizeof(Addr.sun_path) - 1);
  ::unlink(C.SocketPath.c_str()); // Replace any stale socket file.
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
          0 ||
      ::listen(ListenFd, 64) != 0) {
    Error = std::string("bind/listen ") + C.SocketPath + ": " +
            std::strerror(errno);
    ::close(ListenFd);
    ListenFd = -1;
    return false;
  }
  // Touch the read-only analysis registry once before any worker exists;
  // after this, workers only ever read it.
  core::AnalysisRunner::registry();
  Stopping.store(false);
  Started = true;
  Acceptor = std::thread([this] { acceptLoop(); });
  for (uint32_t I = 0; I < std::max(1u, C.Workers); ++I)
    WorkerThreads.emplace_back([this] { workerLoop(); });
  return true;
}

void Server::requestStop() {
  Stopping.store(true);
  // One byte wakes the acceptor's poll; both calls are async-signal-safe.
  if (WakePipe[1] >= 0) {
    char B = 'x';
    (void)!::write(WakePipe[1], &B, 1);
  }
}

void Server::stop() {
  if (!Started)
    return;
  requestStop();
  Acceptor.join();
  ::close(ListenFd); // New connects are refused from here on.
  ListenFd = -1;
  ::unlink(C.SocketPath.c_str());
  QueueCV.notify_all();
  for (std::thread &W : WorkerThreads)
    W.join(); // Workers drain the queue and in-flight work first.
  WorkerThreads.clear();
  ::close(WakePipe[0]);
  ::close(WakePipe[1]);
  WakePipe[0] = WakePipe[1] = -1;
  Started = false;
}

void Server::acceptLoop() {
  while (!Stopping.load()) {
    pollfd P[2] = {{ListenFd, POLLIN, 0}, {WakePipe[0], POLLIN, 0}};
    if (::poll(P, 2, -1) < 0)
      continue; // EINTR
    if (Stopping.load())
      break;
    if (!(P[0].revents & POLLIN))
      continue;
    int Fd = ::accept4(ListenFd, nullptr, nullptr, SOCK_CLOEXEC);
    if (Fd < 0)
      continue;
    setSocketTimeouts(Fd, C.IoTimeoutSeconds);
    bool Enqueued = false;
    {
      std::lock_guard<std::mutex> L(M);
      if (Queue.size() < C.QueueCap) {
        Queue.push_back(Fd);
        Enqueued = true;
      }
    }
    if (Enqueued) {
      QueueCV.notify_one();
      continue;
    }
    // Overload shedding: never let the queue grow — tell the client to
    // retry instead, without reading (or buffering) its request.
    Response Shed;
    Shed.St = Status::Shed;
    Shed.RetryAfterMs = C.RetryAfterMs;
    Shed.Error = "queue full (" + std::to_string(C.QueueCap) +
                 " pending); retry after " + std::to_string(C.RetryAfterMs) +
                 "ms";
    {
      std::lock_guard<std::mutex> L(M);
      countResponse(Shed);
    }
    writeFrame(Fd, encodeResponse(Shed));
    ::close(Fd);
  }
}

void Server::workerLoop() {
  while (true) {
    int Fd;
    {
      std::unique_lock<std::mutex> L(M);
      QueueCV.wait(L, [this] { return Stopping.load() || !Queue.empty(); });
      if (Queue.empty()) {
        if (Stopping.load())
          return;
        continue;
      }
      Fd = Queue.front();
      Queue.pop_front();
    }
    handleConnection(Fd);
    ::close(Fd);
    // Between requests the worker's thread-local interning cache returns
    // to its process-start state, so the next request sees exactly what a
    // cold process would (and per-worker memory stays bounded).
    adt::PointsToCache::get().resetLifecycle();
  }
}

void Server::countResponse(const Response &R) {
  ++Stats.ByStatus[static_cast<size_t>(R.St)];
  ++Stats.ByTermination[static_cast<size_t>(R.Term)];
}

void Server::handleConnection(int Fd) {
  std::string Payload, IoError;
  int RF = readFrame(Fd, Payload, IoError);
  if (RF == 0)
    return; // Client connected and left; nothing to answer.
  auto Respond = [&](const Response &R) {
    {
      std::lock_guard<std::mutex> L(M);
      countResponse(R);
    }
    writeFrame(Fd, encodeResponse(R));
  };
  auto BadRequest = [](std::string Why) {
    Response R;
    R.St = Status::BadRequest;
    R.Error = std::move(Why);
    return R;
  };
  if (RF < 0) {
    {
      std::lock_guard<std::mutex> L(M);
      ++Stats.ReadErrors;
    }
    Respond(BadRequest("request read failed: " + IoError));
    return;
  }

  RequestKind Kind;
  AnalyzeRequest Req;
  std::string Error;
  if (!parseRequest(Payload, Kind, Req, Error)) {
    Respond(BadRequest("malformed request: " + Error));
    return;
  }
  if (Kind == RequestKind::Health) {
    Response H;
    H.St = Status::Ok;
    H.StatsJson = healthJson();
    {
      std::lock_guard<std::mutex> L(M);
      ++Stats.HealthRequests;
    }
    writeFrame(Fd, encodeResponse(H)); // Health is not an analysis request:
    return;                            // it skips the status counters.
  }

  {
    std::lock_guard<std::mutex> L(M);
    ++Stats.RequestsTotal;
  }
  if (!validateRequest(Req, Error)) {
    Respond(BadRequest(Error));
    return;
  }

  // Arm this worker's fault plan exactly where the CLI arms from the
  // environment: after validation, before any budget poll. The plan is
  // thread-local, so it can only poison this request.
  bool FaultArmed = false;
  if (!Req.Fault.empty()) {
    Termination K;
    uint64_t AtPoll;
    std::string Phase;
    FaultInjection::parseSpec(Req.Fault, K, AtPoll, Phase); // validated above
    FaultInjection::get().arm(K, AtPoll, std::move(Phase));
    FaultArmed = true;
  }

  // The service phases poll a limit-free throwaway budget: fault plans
  // can target the serving machinery itself ("kind@N:serve" etc.), while
  // the request's real budget — created inside executeAnalyze exactly as
  // the CLI creates it — keeps poll ordinals identical to a cold run.
  ResourceBudget ServiceBudget{ResourceBudget::Limits{}};
  auto ServicePhaseTripped = [&](const char *Phase, Response &Out) {
    ServiceBudget.beginPhase(Phase, /*StepGoverned=*/false);
    if (ServiceBudget.checkpoint())
      return false;
    Termination K = ServiceBudget.status();
    Out = Response();
    Out.St = K == Termination::Fault ? Status::Fault : Status::Exhausted;
    Out.Term = K;
    Out.Error = std::string("budget exhausted (") + terminationName(K) +
                ") during service phase " + Phase;
    return true;
  };

  Response Resp;
  bool Done = false;
  const bool Cacheable = Req.Fault.empty();
  const std::string Key = cacheKey(Req);

  if (ServicePhaseTripped(phases::Serve, Resp))
    Done = true;
  if (!Done && ServicePhaseTripped(phases::Cache, Resp))
    Done = true;
  if (!Done && Cacheable) {
    std::lock_guard<std::mutex> L(M);
    if (Cache.lookup(Key, Resp)) {
      Resp.Cached = true;
      Done = true;
    }
  }
  if (!Done && ServicePhaseTripped(phases::Worker, Resp))
    Done = true;
  if (!Done) {
    AnalyzeRequest Eff = Req;
    if (C.RequestTimeoutSeconds > 0 &&
        (Eff.TimeBudget <= 0 || Eff.TimeBudget > C.RequestTimeoutSeconds))
      Eff.TimeBudget = C.RequestTimeoutSeconds;
    Resp = executeAnalyze(Eff);
    // Store only completed results: degraded/partial/exhausted outcomes
    // depend on transient pressure, and replaying them as hits would
    // launder a one-off condition into a permanent answer.
    if (Cacheable && Resp.St == Status::Ok &&
        !ServicePhaseTripped(phases::Cache, Resp)) {
      std::lock_guard<std::mutex> L(M);
      Cache.insert(Key, Resp);
    }
  }
  if (FaultArmed)
    FaultInjection::get().disarm(); // Unfired plans must not leak.
  Respond(Resp);
}

std::string Server::healthJson() const {
  std::lock_guard<std::mutex> L(M);
  std::ostringstream OS;
  OS << "{\n";
  OS << "  \"schema\": \"" << schemas::HealthJson << "\",\n";
  OS << "  \"workers\": " << C.Workers << ",\n";
  OS << "  \"queue_cap\": " << C.QueueCap << ",\n";
  OS << "  \"queue_depth\": " << Queue.size() << ",\n";
  OS << "  \"requests_total\": " << Stats.RequestsTotal << ",\n";
  OS << "  \"health_requests\": " << Stats.HealthRequests << ",\n";
  OS << "  \"read_errors\": " << Stats.ReadErrors << ",\n";
  OS << "  \"status\": {";
  for (size_t I = 0; I < 8; ++I) {
    OS << (I ? ", " : "") << '"' << statusName(static_cast<Status>(I))
       << "\": " << Stats.ByStatus[I];
  }
  OS << "},\n";
  OS << "  \"terminations\": {";
  for (size_t I = 0; I < 5; ++I) {
    OS << (I ? ", " : "") << '"'
       << terminationName(static_cast<Termination>(I))
       << "\": " << Stats.ByTermination[I];
  }
  OS << "},\n";
  OS << "  \"cache\": {\"entries\": " << Cache.entries()
     << ", \"bytes\": " << Cache.bytes() << ", \"hits\": " << Cache.hits()
     << ", \"misses\": " << Cache.misses()
     << ", \"insertions\": " << Cache.insertions()
     << ", \"evictions\": " << Cache.evictions() << "}\n";
  OS << "}\n";
  return OS.str();
}
