//===- Exec.cpp - One analysis request, executed in-process ---------------===//
//
// This file intentionally mirrors tools/vsfs-wpa.cpp's run() for the
// served option subset, printf formats included: the identity tests
// compare served output against a cold CLI run byte-for-byte, so any
// drift between the two paths is a test failure, not a cosmetic choice.
//
//===----------------------------------------------------------------------===//

#include "service/Exec.h"

#include "checker/Checker.h"
#include "core/AnalysisContext.h"
#include "core/VersionedFlowSensitive.h"
#include "query/QueryEngine.h"
#include "support/FaultInjection.h"
#include "support/Format.h"
#include "support/MemUsage.h"
#include "taint/Report.h"
#include "taint/TaintEngine.h"
#include "taint/WitnessVerifier.h"

#include <cstdarg>
#include <cstdio>
#include <vector>

using namespace vsfs;
using namespace vsfs::service;

namespace {

/// Captures the driver's printf narrative into a string.
class SummaryWriter {
public:
  __attribute__((format(printf, 2, 3))) void printf(const char *Fmt, ...) {
    va_list Args;
    va_start(Args, Fmt);
    char Buf[1024];
    int N = std::vsnprintf(Buf, sizeof(Buf), Fmt, Args);
    va_end(Args);
    if (N < 0)
      return;
    if (static_cast<size_t>(N) < sizeof(Buf)) {
      Out.append(Buf, static_cast<size_t>(N));
      return;
    }
    std::string Big(static_cast<size_t>(N) + 1, '\0');
    va_start(Args, Fmt);
    std::vsnprintf(Big.data(), Big.size(), Fmt, Args);
    va_end(Args);
    Big.resize(static_cast<size_t>(N));
    Out += Big;
  }

  void append(const std::string &S) { Out += S; }
  std::string take() { return std::move(Out); }

private:
  std::string Out;
};

/// RAII for the thread's deterministic-stats switch.
class DeterministicScope {
public:
  explicit DeterministicScope(bool On) : Saved(deterministicStats()) {
    setDeterministicStats(On);
  }
  ~DeterministicScope() { setDeterministicStats(Saved); }
  DeterministicScope(const DeterministicScope &) = delete;
  DeterministicScope &operator=(const DeterministicScope &) = delete;

private:
  bool Saved;
};

/// Mirror of the CLI's reportFindings for the no-ground-truth case (the
/// daemon never scores against injected bugs: --inject-bugs is local-only).
void reportFindings(SummaryWriter &SW, const core::AnalysisContext &Ctx,
                    const std::string &Name,
                    std::vector<checker::Finding> Findings, uint32_t KindMask,
                    StatGroup &CG, bool AuxPrecision) {
  if (AuxPrecision)
    for (checker::Finding &F : Findings)
      F.AuxPrecision = true;
  SW.printf("--- %s: %zu checker finding(s)%s ---\n", Name.c_str(),
            Findings.size(), AuxPrecision ? " [aux-precision]" : "");
  for (const checker::Finding &F : Findings)
    SW.printf("  %s\n", checker::printFinding(Ctx.module(), F).c_str());

  uint32_t PerKind[checker::NumCheckKinds] = {};
  for (const checker::Finding &F : Findings)
    ++PerKind[static_cast<uint32_t>(F.Kind)];
  for (uint32_t K = 0; K < checker::NumCheckKinds; ++K) {
    if (!(KindMask & (1u << K)))
      continue;
    const char *Flag =
        checker::checkKindFlag(static_cast<checker::CheckKind>(K));
    CG.get(std::string(Flag) + "_findings") = PerKind[K];
  }
}

/// Mirror of the CLI's reportTaintFindings (no ground truth, findings
/// JSON captured into the response instead of written to a file).
void reportTaintFindings(SummaryWriter &SW, Response &Resp,
                         const core::AnalysisContext &Ctx,
                         const std::string &Name, const AnalyzeRequest &Req,
                         const std::vector<taint::TaintSpec> &Specs,
                         std::vector<taint::TaintFinding> TFs,
                         uint32_t ReportMask, StatGroup &CG, StatGroup &TG,
                         bool AuxPrecision) {
  if (AuxPrecision)
    for (taint::TaintFinding &TF : TFs)
      TF.F.AuxPrecision = true;
  uint64_t Verified = 0, Unverifiable = 0;
  for (const taint::TaintFinding &TF : TFs) {
    Verified += TF.V == taint::Verdict::Verified;
    Unverifiable += TF.V == taint::Verdict::Unverifiable;
  }
  SW.printf("--- %s: %zu spec finding(s) from %zu spec(s), %llu verified, "
            "%llu unverifiable%s ---\n",
            Name.c_str(), TFs.size(), Specs.size(),
            (unsigned long long)Verified, (unsigned long long)Unverifiable,
            AuxPrecision ? " [aux-precision]" : "");
  for (const taint::TaintFinding &TF : TFs) {
    SW.printf("  %s [spec %s, %s, witness %zu node(s)]\n",
              checker::printFinding(Ctx.module(), TF.F).c_str(),
              Specs[TF.Spec].Name.c_str(), taint::verdictName(TF.V),
              TF.Witness.size());
    if (!TF.Note.empty())
      SW.printf("    note: %s\n", TF.Note.c_str());
  }

  std::vector<checker::Finding> Projected = taint::toCheckerFindings(TFs);
  uint32_t PerKind[checker::NumCheckKinds] = {};
  for (const checker::Finding &F : Projected)
    ++PerKind[static_cast<uint32_t>(F.Kind)];
  for (uint32_t K = 0; K < checker::NumCheckKinds; ++K) {
    if (!(ReportMask & (1u << K)))
      continue;
    const char *Flag =
        checker::checkKindFlag(static_cast<checker::CheckKind>(K));
    CG.get(std::string(Flag) + "_findings") = PerKind[K];
  }

  TG.get("verified") = Verified;
  TG.get("unverifiable") = Unverifiable;

  if (Req.WantFindings)
    Resp.FindingsJson = taint::findingsJson(Ctx.module(), Specs, TFs, Name);
}

} // namespace

Response vsfs::service::executeAnalyze(const AnalyzeRequest &Req) {
  Response Resp;
  Resp.St = Status::Ok;
  SummaryWriter SW;

  // The request's analysis universe: representation latch, deterministic
  // switch and cache session are all thread-local, restored on exit.
  DeterministicScope Det(Req.Deterministic);
  adt::PtsReprScope Repr(Req.PtsRepr);
  adt::CacheSessionScope Session;

  // Resolve the taint spec set first: a bad spec set fails before any
  // analysis work happens (same order as the CLI).
  const bool UseTaint = !Req.CheckSpecs.empty();
  std::vector<taint::TaintSpec> Specs;
  if (UseTaint) {
    if (Req.CheckSpecs == "builtin") {
      Specs = taint::builtinSpecs(Req.CheckMask ? Req.CheckMask
                                                : checker::AllChecks);
    } else {
      std::string Error;
      if (!taint::parseTaintSpecs(Req.SpecText, Specs, Error)) {
        Resp.St = Status::BadRequest;
        Resp.Error = "specs: " + Error;
        return Resp;
      }
    }
  }
  uint32_t ReportMask = 0;
  for (const taint::TaintSpec &S : Specs)
    ReportMask |= checker::checkBit(S.Kind);

  core::AnalysisContext Ctx;
  {
    std::string Error;
    if (!Ctx.loadText(Req.ModuleText, Error)) {
      Resp.St = Status::BadInput;
      Resp.Error = "module: " + Error;
      return Resp;
    }
  }

  // The budget exists when any limit is set *or* fault injection is armed
  // — identical to the CLI, so budget poll ordinals (and with them every
  // deterministic fault plan) line up between cold and served runs.
  std::unique_ptr<ResourceBudget> Budget;
  if (Req.TimeBudget > 0 || Req.MemBudget != 0 || Req.StepBudget != 0 ||
      FaultInjection::active()) {
    ResourceBudget::Limits L;
    L.TimeBudgetSeconds = Req.TimeBudget;
    L.MemBudgetBytes = Req.MemBudget;
    L.StepBudget = Req.StepBudget;
    Budget = std::make_unique<ResourceBudget>(L);
  }

  andersen::Andersen::Options AuxOpts;
  AuxOpts.OfflineSubstitution = Req.OVS;
  bool Built = Ctx.build(/*ConnectAuxIndirectCalls=*/Req.AuxCallGraph,
                         AuxOpts, Budget.get());
  if (Built)
    SW.printf("pipeline: andersen %.3fs, memssa %.3fs, svfg %.3fs "
              "(%u nodes, %llu direct, %llu indirect edges)\n",
              Ctx.andersenSeconds(), Ctx.memSSASeconds(), Ctx.svfgSeconds(),
              Ctx.svfg().numNodes(),
              (unsigned long long)Ctx.svfg().numDirectEdges(),
              (unsigned long long)Ctx.svfg().numIndirectEdges());
  else
    SW.printf("pipeline: cancelled during %s (%s)\n",
              Budget ? Budget->phase() : "build",
              terminationName(Ctx.buildTermination()));

  if (Built && Req.Coalesce) {
    Ctx.coalesce();
    const svfg::CoalesceMap &CM = *Ctx.coalesceMap();
    SW.printf("coalesce: %u classes, %llu nodes + %llu edges removed "
              "(%llu forward, %llu same-in, %llu refine iters, %.3fs)\n",
              CM.numClasses(), (unsigned long long)CM.CoalescedNodes,
              (unsigned long long)CM.EdgesRemoved,
              (unsigned long long)CM.ForwardMembers,
              (unsigned long long)CM.SameInMembers,
              (unsigned long long)CM.RefineIterations, Ctx.coalesceSeconds());
  }

  const core::AnalysisRunner &Runner = core::AnalysisRunner::registry();
  const std::string Name = Runner.find(Req.Analysis)->Name;

  core::SolverOptions SolverOpts;
  SolverOpts.OnTheFlyCallGraph = !Req.AuxCallGraph;
  SolverOpts.Budget = Budget.get();
  SolverOpts.Policy = Req.Policy;

  std::vector<core::AnalysisRunner::RunResult> Results;
  std::vector<std::vector<StatGroup>> CheckerGroups;

  if (!Built) {
    // The pipeline itself ran out of budget: apply the CLI's degradation
    // ladder at the request level.
    Termination BS = Ctx.buildTermination();
    bool AuxDone = Ctx.andersen().termination() == Termination::Completed;
    bool Degrade =
        Req.Policy == core::SolverOptions::OnExhaustion::Degrade && AuxDone;
    bool Partial = Req.Policy == core::SolverOptions::OnExhaustion::Partial;
    if (!Degrade && !Partial) {
      Resp.St = BS == Termination::Fault ? Status::Fault : Status::Exhausted;
      Resp.Term = BS;
      Resp.Error = "budget exhausted (" + std::string(terminationName(BS)) +
                   ") during pipeline build";
      Resp.Summary = SW.take();
      return Resp;
    }
    core::AnalysisRunner::RunResult R;
    R.Name = Name;
    R.Status = BS;
    R.Degraded = Degrade;
    R.Partial = Partial;
    R.Analysis = std::make_unique<core::AndersenResult>(Ctx.andersen());
    SW.printf("%s: pipeline budget exhausted (%s); %s\n", R.Name.c_str(),
              terminationName(BS),
              Degrade ? "degraded to the auxiliary (ander) result"
                      : "exposing partial (under-approximate) auxiliary "
                        "state");
    if (Req.Stats)
      SW.append(core::statsText(R));
    if (Req.CheckMask || UseTaint)
      SW.printf("--- %s: checkers skipped (no SVFG: pipeline "
                "cancelled) ---\n",
                R.Name.c_str());
    CheckerGroups.push_back({StatGroup("checkers")});
    Results.push_back(std::move(R));
  }

  if (Built && Req.Mode == "demand") {
    query::QueryEngine::Options QO;
    QO.Solver = Name;
    QO.OnTheFlyCallGraph = !Req.AuxCallGraph;
    QO.QueryLimits.TimeBudgetSeconds = Req.QueryTimeBudget;
    QO.QueryLimits.StepBudget = Req.QueryStepBudget;
    query::QueryEngine Engine(Ctx, QO);

    std::vector<checker::Finding> Findings;
    std::vector<taint::TaintFinding> TaintFindings;
    StatGroup TG("taint");
    if (UseTaint) {
      TaintFindings = query::runTaintDemand(Engine, Specs, &TG);
      taint::WitnessVerifier(Ctx.svfg(), Engine)
          .verifyAll(Specs, TaintFindings);
    } else {
      Findings = query::runCheckersDemand(Engine, Req.CheckMask);
    }
    bool Degraded = Engine.degraded();
    StatGroup QueryStats = Engine.stats();
    core::AnalysisRunner::RunResult R = Engine.takeRunResult();

    SW.printf("%s (demand): %llu queries (%llu slice-cache hits, %llu "
              "solves), scope %llu of %llu SVFG nodes, solved in %.3fs\n",
              R.Name.c_str(),
              (unsigned long long)QueryStats.lookup("queries"),
              (unsigned long long)QueryStats.lookup("slice-cache-hits"),
              (unsigned long long)QueryStats.lookup("solves"),
              (unsigned long long)QueryStats.lookup("scope-nodes"),
              (unsigned long long)QueryStats.lookup("svfg-nodes"),
              R.SolveSeconds);
    if (QueryStats.lookup("degraded-queries"))
      SW.printf("%s (demand): %llu query(ies) exhausted their budget "
                "(%s)%s\n",
                R.Name.c_str(),
                (unsigned long long)QueryStats.lookup("degraded-queries"),
                terminationName(R.Status),
                Degraded ? "; final answers at auxiliary precision" : "");

    if (Req.Stats) {
      SW.append(QueryStats.toString());
      SW.append(core::statsText(R));
    }
    StatGroup CG("checkers");
    if (UseTaint) {
      reportTaintFindings(SW, Resp, Ctx, R.Name + " (demand)", Req, Specs,
                          std::move(TaintFindings), ReportMask, CG, TG,
                          Degraded);
      CheckerGroups.push_back(
          {std::move(CG), std::move(TG), std::move(QueryStats)});
    } else {
      reportFindings(SW, Ctx, R.Name + " (demand)", std::move(Findings),
                     Req.CheckMask, CG, Degraded);
      CheckerGroups.push_back({std::move(CG), std::move(QueryStats)});
    }
    Results.push_back(std::move(R));
  }

  if (Built && Req.Mode != "demand") {
    core::AnalysisRunner::RunResult R = Runner.run(Ctx, Name, SolverOpts);
    if (R.Status != Termination::Completed && !R.Degraded && !R.Partial) {
      Resp.St =
          R.Status == Termination::Fault ? Status::Fault : Status::Exhausted;
      Resp.Term = R.Status;
      Resp.Error = R.Name + ": budget exhausted (" +
                   terminationName(R.Status) + ")";
      Resp.Summary = SW.take();
      return Resp;
    }
    const core::PointerAnalysisResult &A = *R.Analysis;

    if (R.Degraded)
      SW.printf("%s: budget exhausted (%s) after %.3fs; degraded to the "
                "auxiliary (ander) result\n",
                R.Name.c_str(), terminationName(R.Status), R.SolveSeconds);
    else if (R.Partial)
      SW.printf("%s: budget exhausted (%s) after %.3fs; exposing partial "
                "(under-approximate) state, %s of analysis state\n",
                R.Name.c_str(), terminationName(R.Status), R.SolveSeconds,
                formatBytes(A.footprintBytes()).c_str());
    else if (const auto *VSFS =
                 dynamic_cast<const core::VersionedFlowSensitive *>(&A))
      SW.printf("%s: solved in %.3fs (versioning %.3fs), %s of analysis "
                "state\n",
                R.Name.c_str(), R.SolveSeconds, VSFS->versioningSeconds(),
                formatBytes(A.footprintBytes()).c_str());
    else if (R.Name == "ander")
      SW.printf("%s: solved in %.3fs\n", R.Name.c_str(),
                Ctx.andersenSeconds());
    else
      SW.printf("%s: solved in %.3fs, %s of analysis state\n",
                R.Name.c_str(), R.SolveSeconds,
                formatBytes(A.footprintBytes()).c_str());

    if (Req.Stats)
      SW.append(core::statsText(R));
    StatGroup CG("checkers");
    if (UseTaint) {
      taint::TaintEngine TE(Ctx.svfg(), A);
      std::vector<taint::TaintFinding> TFs = TE.run(Specs);
      taint::WitnessVerifier(Ctx.svfg(), A).verifyAll(Specs, TFs);
      StatGroup TG = TE.stats();
      reportTaintFindings(SW, Resp, Ctx, R.Name, Req, Specs, std::move(TFs),
                          ReportMask, CG, TG, /*AuxPrecision=*/R.Degraded);
      CheckerGroups.push_back({std::move(CG), std::move(TG)});
    } else {
      if (Req.CheckMask)
        reportFindings(SW, Ctx, R.Name,
                       checker::runCheckers(Ctx.svfg(), A, Req.CheckMask),
                       Req.CheckMask, CG, /*AuxPrecision=*/R.Degraded);
      CheckerGroups.push_back({std::move(CG)});
    }
    Results.push_back(std::move(R));
  }

  if (Req.WantStats)
    Resp.StatsJson = core::statsJson(Ctx, Results,
                                     (Req.CheckMask || UseTaint)
                                         ? &CheckerGroups
                                         : nullptr,
                                     Budget.get(), Req.Mode);

  SW.printf("peak RSS: %s\n", formatBytes(peakRSSBytes()).c_str());

  const core::AnalysisRunner::RunResult &Final = Results.front();
  Resp.Term = Final.Status;
  Resp.Degraded = Final.Degraded;
  Resp.Partial = Final.Partial;
  Resp.St = Final.Degraded  ? Status::Degraded
            : Final.Partial ? Status::Partial
                            : Status::Ok;
  Resp.Summary = SW.take();
  return Resp;
}
