//===- ResultCache.h - Bounded LRU cache of analysis responses --*- C++ -*-===//
///
/// \file
/// The daemon's result cache: completed responses keyed by
/// \c service::cacheKey (a content hash of module text + canonical
/// options). Bounded on both entry count and payload bytes with
/// least-recently-used eviction, so a daemon fed an endless stream of
/// distinct modules holds steady-state memory instead of growing without
/// bound — the same "never unbounded" discipline as the request queue.
///
/// Policy (docs/SERVICE.md): only \c Status::Ok responses are stored.
/// Degraded/partial/exhausted outcomes can depend on wall-clock and
/// memory conditions at run time, and fault-armed requests are poisoned
/// by construction — replaying any of those as a "hit" would launder a
/// transient outcome into a permanent one. A hit returns the stored
/// payload byte-identical to the original miss.
///
/// Not thread-safe by itself; the server serialises access under its
/// state mutex (cache operations are hash-map lookups, never analysis
/// work, so the critical section is tiny).
///
//===----------------------------------------------------------------------===//

#ifndef VSFS_SERVICE_RESULTCACHE_H
#define VSFS_SERVICE_RESULTCACHE_H

#include "service/Protocol.h"

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <utility>

namespace vsfs {
namespace service {

class ResultCache {
public:
  struct Limits {
    uint64_t MaxEntries = 256;
    uint64_t MaxBytes = 256ull << 20; ///< payload bytes across all entries
  };

  explicit ResultCache(Limits L) : Lim(L) {}

  /// On hit, copies the stored response into \p Out and marks the entry
  /// most-recently-used.
  bool lookup(const std::string &Key, Response &Out) {
    auto It = Index.find(Key);
    if (It == Index.end()) {
      ++Misses;
      return false;
    }
    ++Hits;
    Entries.splice(Entries.begin(), Entries, It->second);
    Out = It->second->second;
    return true;
  }

  /// Stores \p R under \p Key (replacing any stale entry), then evicts
  /// LRU entries until both limits hold. An entry larger than MaxBytes on
  /// its own is simply not retained.
  void insert(const std::string &Key, const Response &R) {
    auto It = Index.find(Key);
    if (It != Index.end())
      erase(It);
    Entries.emplace_front(Key, R);
    Index[Key] = Entries.begin();
    Bytes += entryBytes(Entries.front());
    ++Insertions;
    while (!Entries.empty() &&
           (Entries.size() > Lim.MaxEntries || Bytes > Lim.MaxBytes)) {
      ++Evictions;
      erase(Index.find(Entries.back().first));
    }
  }

  uint64_t entries() const { return Entries.size(); }
  uint64_t bytes() const { return Bytes; }
  uint64_t hits() const { return Hits; }
  uint64_t misses() const { return Misses; }
  uint64_t insertions() const { return Insertions; }
  uint64_t evictions() const { return Evictions; }

private:
  using Entry = std::pair<std::string, Response>;

  static uint64_t entryBytes(const Entry &E) {
    return E.first.size() + E.second.Summary.size() +
           E.second.StatsJson.size() + E.second.FindingsJson.size() +
           E.second.Error.size();
  }

  void erase(std::unordered_map<std::string, std::list<Entry>::iterator>::
                 iterator It) {
    Bytes -= entryBytes(*It->second);
    Entries.erase(It->second);
    Index.erase(It);
  }

  Limits Lim;
  std::list<Entry> Entries; ///< front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> Index;
  uint64_t Bytes = 0;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Insertions = 0;
  uint64_t Evictions = 0;
};

} // namespace service
} // namespace vsfs

#endif // VSFS_SERVICE_RESULTCACHE_H
