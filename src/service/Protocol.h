//===- Protocol.h - Analysis service wire protocol --------------*- C++ -*-===//
///
/// \file
/// The wire protocol between `vsfs-wpa --connect` and the `vsfs-served`
/// daemon (docs/SERVICE.md).
///
/// Framing: every message is one frame — a 4-byte big-endian payload
/// length followed by that many payload bytes. Payloads are text headers
/// (`key=value` lines, terminated by an `end` line) followed by sized
/// binary sections whose lengths the header declared (`module-bytes=N`,
/// ...), so module text and JSON documents travel byte-exact without any
/// quoting.
///
/// The request model is deliberately the CLI's option surface for one
/// analysis run: the thin client translates flags 1:1, and the daemon's
/// executor replays exactly the code path `vsfs-wpa` runs locally, which
/// is what makes served stats/findings JSON bit-identical to a cold run
/// (the identity tests assert this on every preset).
///
/// Each response carries a \c Status — the PR 5 exit-code contract lifted
/// onto the wire — plus the run's \c Termination and the payload sections.
/// \c statusExitCode() is the single place the mapping back to process
/// exit codes lives.
///
//===----------------------------------------------------------------------===//

#ifndef VSFS_SERVICE_PROTOCOL_H
#define VSFS_SERVICE_PROTOCOL_H

#include "adt/PointsToCache.h"
#include "core/AnalysisRunner.h"
#include "support/Budget.h"

#include <cstdint>
#include <string>
#include <string_view>

namespace vsfs {
namespace service {

/// Leads every frame payload; bump when the encoding changes shape.
inline constexpr const char *ProtocolMagic = "vsfs-served-v1";

/// Hard ceiling on a single frame — a corrupt or hostile length prefix
/// must not translate into an unbounded allocation.
inline constexpr uint32_t MaxFrameBytes = 256u << 20;

/// What a request asks for.
enum class RequestKind : uint8_t {
  Analyze, ///< run (or serve from cache) one analysis
  Health,  ///< report daemon health/stats JSON; never queued or shed work
};

/// Per-request outcome on the wire: the exit-code contract of
/// docs/ROBUSTNESS.md as a structured status, so one daemon can fail one
/// request without dying and the client can reconstruct the exact exit
/// code a local run would have produced.
enum class Status : uint8_t {
  Ok,         ///< exit 0: analysis ran to the requested result
  Degraded,   ///< exit 0: budget exhausted, degraded to the auxiliary result
  Partial,    ///< exit 0: budget exhausted, partial monotone state exposed
  BadRequest, ///< exit 1: malformed frame/options/specs (usage error)
  BadInput,   ///< exit 2: module failed to parse or verify
  Exhausted,  ///< exit 3: budget exhausted under on-exhaustion=fail
  Fault,      ///< exit 4: injected/internal fault surfaced
  Shed,       ///< exit 5: queue full or draining — retry later
};

/// Lower-case wire spelling ("ok", "bad-request", ...).
const char *statusName(Status S);

/// Parses a \c statusName() spelling; returns false when unknown.
bool parseStatus(std::string_view Name, Status &Out);

/// The documented status → process-exit-code mapping (docs/SERVICE.md).
int statusExitCode(Status S);

/// One analysis request: the supported subset of `vsfs-wpa`'s options plus
/// the module (and optional spec) text inline. Fields mirror the CLI flags
/// they are translated from.
struct AnalyzeRequest {
  std::string Analysis = "vsfs"; ///< registry name; "all" is not served
  std::string Mode = "exhaustive"; ///< "exhaustive" | "demand"
  double QueryTimeBudget = 0;
  uint64_t QueryStepBudget = 0;
  adt::PtsRepr PtsRepr = adt::PtsRepr::SBV;
  bool Coalesce = false;
  uint32_t CheckMask = 0;
  /// "" = no spec engine; "builtin" = built-in rules (filtered by
  /// CheckMask); "inline" = parse SpecText as a spec file.
  std::string CheckSpecs;
  std::string SpecText;
  bool AuxCallGraph = false;
  bool OVS = false;
  bool Stats = false; ///< include the aligned-text stat groups in Summary
  double TimeBudget = 0;
  uint64_t MemBudget = 0;
  uint64_t StepBudget = 0;
  core::SolverOptions::OnExhaustion Policy =
      core::SolverOptions::OnExhaustion::Fail;
  bool Deterministic = false; ///< zero wall-clock fields in stats JSON
  bool WantStats = false;     ///< return the --stats-json document
  bool WantFindings = false;  ///< return the --findings-json document
  /// Fault plan in VSFS_FAULT_INJECT grammar ("kind@N[:phase]", "" = none).
  /// The thin client forwards its environment here instead of arming
  /// locally; the daemon arms it on the worker serving this request only.
  /// Excluded from the cache key, and its presence bypasses the cache.
  std::string Fault;
  std::string ModuleText;
};

/// The daemon's answer. Sections are byte-exact copies of what a local
/// run would have written: Summary is the driver's stdout narrative,
/// StatsJson/FindingsJson the machine documents.
struct Response {
  Status St = Status::BadRequest;
  Termination Term = Termination::Completed;
  bool Degraded = false;
  bool Partial = false;
  bool Cached = false;      ///< served from the result cache
  uint32_t RetryAfterMs = 0; ///< only meaningful with Status::Shed
  std::string Error;   ///< one line; what a local run printed to stderr
  std::string Summary; ///< multi-line; what a local run printed to stdout
  std::string StatsJson;
  std::string FindingsJson;
};

/// Validates the option combinations the daemon refuses to serve —
/// exactly the ones the CLI rejects as usage errors, plus the wire-only
/// restriction to a single named analysis. Returns false with a
/// one-line reason.
bool validateRequest(const AnalyzeRequest &R, std::string &Error);

/// The result-cache key: a content hash over the canonical encoding of
/// the request with the fault plan blanked (a poisoned run must never be
/// stored or served), prefixed with the section sizes so accidental
/// collisions cannot cross payload shapes.
std::string cacheKey(const AnalyzeRequest &R);

//===----------------------------------------------------------------------===//
// Payload encoding
//===----------------------------------------------------------------------===//

std::string encodeAnalyzeRequest(const AnalyzeRequest &R);
std::string encodeHealthRequest();
std::string encodeResponse(const Response &R);

/// Parses a request payload of either kind. On failure returns false and
/// sets \p Error; \p Kind and \p Out are meaningful only on success.
bool parseRequest(std::string_view Payload, RequestKind &Kind,
                  AnalyzeRequest &Out, std::string &Error);

bool parseResponse(std::string_view Payload, Response &Out,
                   std::string &Error);

//===----------------------------------------------------------------------===//
// Framing over a connected socket
//===----------------------------------------------------------------------===//

/// Writes one length-prefixed frame; false on any short write or error.
bool writeFrame(int Fd, std::string_view Payload);

/// Reads one frame. Returns 1 on success, 0 on clean EOF before any
/// byte, -1 on error/timeout/oversized frame (with \p Error set).
int readFrame(int Fd, std::string &Payload, std::string &Error);

} // namespace service
} // namespace vsfs

#endif // VSFS_SERVICE_PROTOCOL_H
