//===- Protocol.cpp - Analysis service wire protocol ----------------------===//

#include "service/Protocol.h"

#include "query/QueryEngine.h"
#include "support/FaultInjection.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sys/socket.h>
#include <unistd.h>

using namespace vsfs;
using namespace vsfs::service;

const char *vsfs::service::statusName(Status S) {
  switch (S) {
  case Status::Ok:
    return "ok";
  case Status::Degraded:
    return "degraded";
  case Status::Partial:
    return "partial";
  case Status::BadRequest:
    return "bad-request";
  case Status::BadInput:
    return "bad-input";
  case Status::Exhausted:
    return "exhausted";
  case Status::Fault:
    return "fault";
  case Status::Shed:
    return "shed";
  }
  return "bad-request";
}

bool vsfs::service::parseStatus(std::string_view Name, Status &Out) {
  for (Status S : {Status::Ok, Status::Degraded, Status::Partial,
                   Status::BadRequest, Status::BadInput, Status::Exhausted,
                   Status::Fault, Status::Shed}) {
    if (Name == statusName(S)) {
      Out = S;
      return true;
    }
  }
  return false;
}

int vsfs::service::statusExitCode(Status S) {
  switch (S) {
  case Status::Ok:
  case Status::Degraded:
  case Status::Partial:
    return 0;
  case Status::BadRequest:
    return 1;
  case Status::BadInput:
    return 2;
  case Status::Exhausted:
    return 3;
  case Status::Fault:
    return 4;
  case Status::Shed:
    return 5;
  }
  return 1;
}

namespace {

const char *policyName(core::SolverOptions::OnExhaustion P) {
  switch (P) {
  case core::SolverOptions::OnExhaustion::Fail:
    return "fail";
  case core::SolverOptions::OnExhaustion::Degrade:
    return "degrade";
  case core::SolverOptions::OnExhaustion::Partial:
    return "partial";
  }
  return "fail";
}

bool parsePolicy(std::string_view V, core::SolverOptions::OnExhaustion &Out) {
  if (V == "fail")
    Out = core::SolverOptions::OnExhaustion::Fail;
  else if (V == "degrade")
    Out = core::SolverOptions::OnExhaustion::Degrade;
  else if (V == "partial")
    Out = core::SolverOptions::OnExhaustion::Partial;
  else
    return false;
  return true;
}

/// %.17g round-trips every double exactly, keeping the canonical encoding
/// (and hence the cache key) a pure function of the request's values.
std::string doubleField(double D) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.17g", D);
  return Buf;
}

bool parseDoubleField(std::string_view V, double &Out) {
  char *End = nullptr;
  std::string S(V);
  double D = std::strtod(S.c_str(), &End);
  if (End == S.c_str() || *End || D < 0)
    return false;
  Out = D;
  return true;
}

bool parseU64Field(std::string_view V, uint64_t &Out) {
  if (V.empty())
    return false;
  uint64_t N = 0;
  for (char C : V) {
    if (C < '0' || C > '9')
      return false;
    N = N * 10 + static_cast<uint64_t>(C - '0');
  }
  Out = N;
  return true;
}

bool parseBoolField(std::string_view V, bool &Out) {
  if (V != "0" && V != "1")
    return false;
  Out = V == "1";
  return true;
}

void headerLine(std::string &S, const char *Key, const std::string &Value) {
  S += Key;
  S += '=';
  S += Value;
  S += '\n';
}

/// Splits the header (up to the "end" line) into key=value pairs via a
/// callback; returns the offset of the first section byte, or npos with
/// \p Error set.
template <typename OnPair>
size_t parseHeader(std::string_view Payload, std::string_view ExpectKind,
                   OnPair &&Pair, std::string &Error) {
  size_t Pos = 0;
  bool First = true;
  while (Pos < Payload.size()) {
    size_t NL = Payload.find('\n', Pos);
    if (NL == std::string_view::npos) {
      Error = "truncated header";
      return std::string_view::npos;
    }
    std::string_view Line = Payload.substr(Pos, NL - Pos);
    Pos = NL + 1;
    if (First) {
      std::string Expect = std::string(ProtocolMagic) + " ";
      Expect += ExpectKind;
      if (Line != Expect) {
        Error = "bad magic line '" + std::string(Line) + "'";
        return std::string_view::npos;
      }
      First = false;
      continue;
    }
    if (Line == "end")
      return Pos;
    size_t Eq = Line.find('=');
    if (Eq == std::string_view::npos) {
      Error = "malformed header line '" + std::string(Line) + "'";
      return std::string_view::npos;
    }
    if (!Pair(Line.substr(0, Eq), Line.substr(Eq + 1))) {
      Error = "bad header field '" + std::string(Line) + "'";
      return std::string_view::npos;
    }
  }
  Error = "header missing end line";
  return std::string_view::npos;
}

/// FNV-1a over \p Data starting from \p Basis.
uint64_t fnv1a(std::string_view Data, uint64_t Basis) {
  uint64_t H = Basis;
  for (unsigned char C : Data) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return H;
}

std::string singleLine(std::string_view S) {
  std::string Out(S);
  for (char &C : Out)
    if (C == '\n' || C == '\r')
      C = ' ';
  return Out;
}

} // namespace

bool vsfs::service::validateRequest(const AnalyzeRequest &R,
                                    std::string &Error) {
  if (R.Analysis == "all" ||
      !core::AnalysisRunner::registry().find(R.Analysis)) {
    Error = "unknown or unserved analysis '" + R.Analysis +
            "' (the daemon serves one named analysis per request)";
    return false;
  }
  if (R.Mode != "exhaustive" && R.Mode != "demand") {
    Error = "bad mode '" + R.Mode + "' (want exhaustive | demand)";
    return false;
  }
  if (!R.CheckSpecs.empty() && R.CheckSpecs != "builtin" &&
      R.CheckSpecs != "inline") {
    Error = "bad check-specs '" + R.CheckSpecs +
            "' (want builtin | inline; spec files travel as inline text)";
    return false;
  }
  if (R.Mode == "demand") {
    if (!R.CheckMask && R.CheckSpecs.empty()) {
      Error = "demand mode needs check or check-specs";
      return false;
    }
    if (!query::QueryEngine::supportsSolver(R.Analysis)) {
      Error = "demand mode cannot slice for '" + R.Analysis +
              "' (want sfs | vsfs | ander)";
      return false;
    }
  }
  if (R.WantFindings && R.CheckSpecs.empty()) {
    Error = "findings-json needs check-specs";
    return false;
  }
  if (!R.Fault.empty()) {
    Termination K;
    uint64_t AtPoll;
    std::string Phase;
    if (!FaultInjection::parseSpec(R.Fault, K, AtPoll, Phase)) {
      Error = "bad fault spec '" + R.Fault + "' (want kind@N[:phase])";
      return false;
    }
  }
  return true;
}

std::string vsfs::service::encodeAnalyzeRequest(const AnalyzeRequest &R) {
  std::string S = ProtocolMagic;
  S += " analyze\n";
  headerLine(S, "analysis", R.Analysis);
  headerLine(S, "mode", R.Mode);
  headerLine(S, "query-time-budget", doubleField(R.QueryTimeBudget));
  headerLine(S, "query-step-budget", std::to_string(R.QueryStepBudget));
  headerLine(S, "pts-repr", adt::ptsReprName(R.PtsRepr));
  headerLine(S, "coalesce", R.Coalesce ? "1" : "0");
  headerLine(S, "check-mask", std::to_string(R.CheckMask));
  headerLine(S, "check-specs", R.CheckSpecs);
  headerLine(S, "aux-call-graph", R.AuxCallGraph ? "1" : "0");
  headerLine(S, "ovs", R.OVS ? "1" : "0");
  headerLine(S, "stats", R.Stats ? "1" : "0");
  headerLine(S, "time-budget", doubleField(R.TimeBudget));
  headerLine(S, "mem-budget", std::to_string(R.MemBudget));
  headerLine(S, "step-budget", std::to_string(R.StepBudget));
  headerLine(S, "on-exhaustion", policyName(R.Policy));
  headerLine(S, "deterministic", R.Deterministic ? "1" : "0");
  headerLine(S, "want-stats", R.WantStats ? "1" : "0");
  headerLine(S, "want-findings", R.WantFindings ? "1" : "0");
  headerLine(S, "fault", R.Fault);
  headerLine(S, "module-bytes", std::to_string(R.ModuleText.size()));
  headerLine(S, "specs-bytes", std::to_string(R.SpecText.size()));
  S += "end\n";
  S += R.ModuleText;
  S += R.SpecText;
  return S;
}

std::string vsfs::service::encodeHealthRequest() {
  std::string S = ProtocolMagic;
  S += " health\nend\n";
  return S;
}

std::string vsfs::service::cacheKey(const AnalyzeRequest &R) {
  AnalyzeRequest Canon = R;
  Canon.Fault.clear();
  std::string Enc = encodeAnalyzeRequest(Canon);
  // Two independent FNV-1a streams make accidental collision odds ~2^-128;
  // the appended section sizes additionally pin the payload shape.
  char Buf[96];
  std::snprintf(Buf, sizeof(Buf), "k%016llx%016llx-%zu-%zu",
                (unsigned long long)fnv1a(Enc, 14695981039346656037ull),
                (unsigned long long)fnv1a(Enc, 88172645463325252ull),
                R.ModuleText.size(), R.SpecText.size());
  return Buf;
}

bool vsfs::service::parseRequest(std::string_view Payload, RequestKind &Kind,
                                 AnalyzeRequest &Out, std::string &Error) {
  // Peek the magic line to pick the kind.
  size_t NL = Payload.find('\n');
  if (NL == std::string_view::npos) {
    Error = "truncated request";
    return false;
  }
  std::string_view Magic = Payload.substr(0, NL);
  std::string HealthMagic = std::string(ProtocolMagic) + " health";
  std::string AnalyzeMagic = std::string(ProtocolMagic) + " analyze";
  if (Magic == HealthMagic) {
    Kind = RequestKind::Health;
    return true;
  }
  if (Magic != AnalyzeMagic) {
    Error = "bad magic line '" + std::string(Magic) + "'";
    return false;
  }

  AnalyzeRequest R;
  uint64_t ModuleBytes = 0, SpecBytes = 0;
  auto Pair = [&](std::string_view K, std::string_view V) -> bool {
    if (K == "analysis") {
      R.Analysis = std::string(V);
      return true;
    }
    if (K == "mode") {
      R.Mode = std::string(V);
      return true;
    }
    if (K == "query-time-budget")
      return parseDoubleField(V, R.QueryTimeBudget);
    if (K == "query-step-budget")
      return parseU64Field(V, R.QueryStepBudget);
    if (K == "pts-repr")
      return adt::parsePtsRepr(V, R.PtsRepr);
    if (K == "coalesce")
      return parseBoolField(V, R.Coalesce);
    if (K == "check-mask") {
      uint64_t M;
      if (!parseU64Field(V, M) || M > UINT32_MAX)
        return false;
      R.CheckMask = static_cast<uint32_t>(M);
      return true;
    }
    if (K == "check-specs") {
      R.CheckSpecs = std::string(V);
      return true;
    }
    if (K == "aux-call-graph")
      return parseBoolField(V, R.AuxCallGraph);
    if (K == "ovs")
      return parseBoolField(V, R.OVS);
    if (K == "stats")
      return parseBoolField(V, R.Stats);
    if (K == "time-budget")
      return parseDoubleField(V, R.TimeBudget);
    if (K == "mem-budget")
      return parseU64Field(V, R.MemBudget);
    if (K == "step-budget")
      return parseU64Field(V, R.StepBudget);
    if (K == "on-exhaustion")
      return parsePolicy(V, R.Policy);
    if (K == "deterministic")
      return parseBoolField(V, R.Deterministic);
    if (K == "want-stats")
      return parseBoolField(V, R.WantStats);
    if (K == "want-findings")
      return parseBoolField(V, R.WantFindings);
    if (K == "fault") {
      R.Fault = std::string(V);
      return true;
    }
    if (K == "module-bytes")
      return parseU64Field(V, ModuleBytes);
    if (K == "specs-bytes")
      return parseU64Field(V, SpecBytes);
    return false; // Unknown key: likely a protocol version mismatch.
  };
  size_t Sections = parseHeader(Payload, "analyze", Pair, Error);
  if (Sections == std::string_view::npos)
    return false;
  if (Payload.size() - Sections != ModuleBytes + SpecBytes) {
    Error = "section sizes disagree with payload length";
    return false;
  }
  R.ModuleText = std::string(Payload.substr(Sections, ModuleBytes));
  R.SpecText = std::string(Payload.substr(Sections + ModuleBytes, SpecBytes));
  Kind = RequestKind::Analyze;
  Out = std::move(R);
  return true;
}

std::string vsfs::service::encodeResponse(const Response &R) {
  std::string S = ProtocolMagic;
  S += " response\n";
  headerLine(S, "status", statusName(R.St));
  headerLine(S, "termination", terminationName(R.Term));
  headerLine(S, "degraded", R.Degraded ? "1" : "0");
  headerLine(S, "partial", R.Partial ? "1" : "0");
  headerLine(S, "cached", R.Cached ? "1" : "0");
  headerLine(S, "retry-after-ms", std::to_string(R.RetryAfterMs));
  headerLine(S, "error", singleLine(R.Error));
  headerLine(S, "summary-bytes", std::to_string(R.Summary.size()));
  headerLine(S, "stats-bytes", std::to_string(R.StatsJson.size()));
  headerLine(S, "findings-bytes", std::to_string(R.FindingsJson.size()));
  S += "end\n";
  S += R.Summary;
  S += R.StatsJson;
  S += R.FindingsJson;
  return S;
}

bool vsfs::service::parseResponse(std::string_view Payload, Response &Out,
                                  std::string &Error) {
  Response R;
  uint64_t SummaryBytes = 0, StatsBytes = 0, FindingsBytes = 0;
  auto Pair = [&](std::string_view K, std::string_view V) -> bool {
    if (K == "status")
      return parseStatus(V, R.St);
    if (K == "termination")
      return parseTermination(V, R.Term);
    if (K == "degraded")
      return parseBoolField(V, R.Degraded);
    if (K == "partial")
      return parseBoolField(V, R.Partial);
    if (K == "cached")
      return parseBoolField(V, R.Cached);
    if (K == "retry-after-ms") {
      uint64_t Ms;
      if (!parseU64Field(V, Ms) || Ms > UINT32_MAX)
        return false;
      R.RetryAfterMs = static_cast<uint32_t>(Ms);
      return true;
    }
    if (K == "error") {
      R.Error = std::string(V);
      return true;
    }
    if (K == "summary-bytes")
      return parseU64Field(V, SummaryBytes);
    if (K == "stats-bytes")
      return parseU64Field(V, StatsBytes);
    if (K == "findings-bytes")
      return parseU64Field(V, FindingsBytes);
    return false;
  };
  size_t Sections = parseHeader(Payload, "response", Pair, Error);
  if (Sections == std::string_view::npos)
    return false;
  if (Payload.size() - Sections != SummaryBytes + StatsBytes + FindingsBytes) {
    Error = "section sizes disagree with payload length";
    return false;
  }
  R.Summary = std::string(Payload.substr(Sections, SummaryBytes));
  R.StatsJson =
      std::string(Payload.substr(Sections + SummaryBytes, StatsBytes));
  R.FindingsJson = std::string(
      Payload.substr(Sections + SummaryBytes + StatsBytes, FindingsBytes));
  Out = std::move(R);
  return true;
}

bool vsfs::service::writeFrame(int Fd, std::string_view Payload) {
  if (Payload.size() > MaxFrameBytes)
    return false;
  unsigned char Len[4] = {
      static_cast<unsigned char>(Payload.size() >> 24),
      static_cast<unsigned char>(Payload.size() >> 16),
      static_cast<unsigned char>(Payload.size() >> 8),
      static_cast<unsigned char>(Payload.size()),
  };
  // send() with MSG_NOSIGNAL: a peer that hung up must surface as EPIPE,
  // not as a process-killing SIGPIPE (the daemon writes to clients that
  // may be gone; the client writes to a daemon that may have shed it).
  auto WriteAll = [Fd](const char *Data, size_t N) {
    size_t Done = 0;
    while (Done < N) {
      ssize_t W = ::send(Fd, Data + Done, N - Done, MSG_NOSIGNAL);
      if (W < 0) {
        if (errno == EINTR)
          continue;
        return false;
      }
      if (W == 0)
        return false;
      Done += static_cast<size_t>(W);
    }
    return true;
  };
  return WriteAll(reinterpret_cast<const char *>(Len), 4) &&
         WriteAll(Payload.data(), Payload.size());
}

int vsfs::service::readFrame(int Fd, std::string &Payload,
                             std::string &Error) {
  auto ReadAll = [Fd, &Error](char *Data, size_t N, bool EofOk) -> int {
    size_t Done = 0;
    while (Done < N) {
      ssize_t R = ::read(Fd, Data + Done, N - Done);
      if (R < 0) {
        if (errno == EINTR)
          continue;
        Error = std::strerror(errno);
        return -1;
      }
      if (R == 0) {
        if (EofOk && Done == 0)
          return 0;
        Error = "connection closed mid-frame";
        return -1;
      }
      Done += static_cast<size_t>(R);
    }
    return 1;
  };
  unsigned char Len[4];
  int R = ReadAll(reinterpret_cast<char *>(Len), 4, /*EofOk=*/true);
  if (R <= 0)
    return R;
  uint32_t N = (uint32_t(Len[0]) << 24) | (uint32_t(Len[1]) << 16) |
               (uint32_t(Len[2]) << 8) | uint32_t(Len[3]);
  if (N > MaxFrameBytes) {
    Error = "frame length " + std::to_string(N) + " exceeds limit";
    return -1;
  }
  Payload.resize(N);
  return N == 0 ? 1 : ReadAll(Payload.data(), N, /*EofOk=*/false);
}
