//===- SCC.h - Strongly connected components --------------------*- C++ -*-===//
///
/// \file
/// Iterative Tarjan SCC over an \c AdjacencyGraph. Andersen's solver uses
/// this to detect and collapse copy-edge cycles; tests use it as an oracle
/// for meld-labelling equivalence reasoning.
///
/// Components are numbered in the order Tarjan pops them, which is a
/// *reverse topological* order of the condensation: every edge between
/// distinct components goes from a higher component ID to a lower one.
///
//===----------------------------------------------------------------------===//

#ifndef VSFS_GRAPH_SCC_H
#define VSFS_GRAPH_SCC_H

#include "graph/Graph.h"

#include <cstdint>
#include <vector>

namespace vsfs {
namespace graph {

/// Result of an SCC computation.
struct SCCResult {
  /// Maps each node to its component ID in [0, NumComponents).
  std::vector<uint32_t> ComponentOf;
  uint32_t NumComponents = 0;

  /// Members of each component, in discovery order.
  std::vector<std::vector<uint32_t>> Members;

  /// True if \p Node is in a component with >1 member or with a self loop
  /// (the caller supplies self-loop knowledge; this only checks size).
  bool inCycle(uint32_t Node) const {
    return Members[ComponentOf[Node]].size() > 1;
  }
};

/// Computes SCCs of all nodes of \p G (every node is visited).
SCCResult computeSCCs(const AdjacencyGraph &G);

} // namespace graph
} // namespace vsfs

#endif // VSFS_GRAPH_SCC_H
