//===- SCC.cpp - Iterative Tarjan -------------------------------*- C++ -*-===//

#include "graph/SCC.h"

#include <cassert>

using namespace vsfs;
using namespace vsfs::graph;

namespace {

constexpr uint32_t Unvisited = UINT32_MAX;

/// Explicit DFS frame for the iterative Tarjan walk.
struct Frame {
  uint32_t Node;
  size_t NextSucc;
};

} // namespace

SCCResult vsfs::graph::computeSCCs(const AdjacencyGraph &G) {
  const uint32_t N = G.numNodes();
  SCCResult Result;
  Result.ComponentOf.assign(N, Unvisited);

  std::vector<uint32_t> Index(N, Unvisited);
  std::vector<uint32_t> LowLink(N, 0);
  std::vector<uint8_t> OnStack(N, 0);
  std::vector<uint32_t> TarjanStack;
  std::vector<Frame> CallStack;
  uint32_t NextIndex = 0;

  for (uint32_t Root = 0; Root < N; ++Root) {
    if (Index[Root] != Unvisited)
      continue;
    CallStack.push_back({Root, 0});
    Index[Root] = LowLink[Root] = NextIndex++;
    TarjanStack.push_back(Root);
    OnStack[Root] = 1;

    while (!CallStack.empty()) {
      Frame &F = CallStack.back();
      const auto &Out = G.successors(F.Node);
      if (F.NextSucc < Out.size()) {
        uint32_t S = Out[F.NextSucc++];
        if (Index[S] == Unvisited) {
          Index[S] = LowLink[S] = NextIndex++;
          TarjanStack.push_back(S);
          OnStack[S] = 1;
          CallStack.push_back({S, 0});
        } else if (OnStack[S]) {
          if (Index[S] < LowLink[F.Node])
            LowLink[F.Node] = Index[S];
        }
        continue;
      }

      // All successors processed: maybe emit a component, then propagate
      // the lowlink to the parent frame.
      uint32_t Node = F.Node;
      CallStack.pop_back();
      if (LowLink[Node] == Index[Node]) {
        uint32_t Comp = Result.NumComponents++;
        Result.Members.emplace_back();
        uint32_t Member;
        do {
          Member = TarjanStack.back();
          TarjanStack.pop_back();
          OnStack[Member] = 0;
          Result.ComponentOf[Member] = Comp;
          Result.Members[Comp].push_back(Member);
        } while (Member != Node);
      }
      if (!CallStack.empty()) {
        uint32_t Parent = CallStack.back().Node;
        if (LowLink[Node] < LowLink[Parent])
          LowLink[Parent] = LowLink[Node];
      }
    }
  }

  assert(TarjanStack.empty() && "Tarjan stack fully drained");
  return Result;
}
