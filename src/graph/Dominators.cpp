//===- Dominators.cpp - Cooper–Harvey–Kennedy dominators --------*- C++ -*-===//

#include "graph/Dominators.h"

#include <algorithm>
#include <cassert>

using namespace vsfs;
using namespace vsfs::graph;

DominatorTree::DominatorTree(const AdjacencyGraph &G, uint32_t Entry)
    : EntryNode(Entry) {
  const uint32_t N = G.numNodes();
  IDom.assign(N, None);
  RPONumber.assign(N, None);
  Kids.assign(N, {});
  if (N == 0)
    return;

  std::vector<uint32_t> RPO = reversePostOrder(G, Entry);
  for (uint32_t I = 0; I < RPO.size(); ++I)
    RPONumber[RPO[I]] = I;

  auto Preds = G.buildPredecessors();

  // "Engineering a simple, fast dominance algorithm": intersect walks both
  // fingers up the as-yet-computed tree until they meet.
  auto Intersect = [this](uint32_t A, uint32_t B) {
    while (A != B) {
      while (RPONumber[A] > RPONumber[B])
        A = IDom[A];
      while (RPONumber[B] > RPONumber[A])
        B = IDom[B];
    }
    return A;
  };

  IDom[Entry] = Entry;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (uint32_t Node : RPO) {
      if (Node == Entry)
        continue;
      uint32_t NewIDom = None;
      for (uint32_t P : Preds[Node]) {
        if (IDom[P] == None)
          continue; // Unreachable or not yet processed.
        NewIDom = NewIDom == None ? P : Intersect(P, NewIDom);
      }
      if (NewIDom != None && IDom[Node] != NewIDom) {
        IDom[Node] = NewIDom;
        Changed = true;
      }
    }
  }

  for (uint32_t Node = 0; Node < N; ++Node)
    if (Node != Entry && IDom[Node] != None)
      Kids[IDom[Node]].push_back(Node);
}

bool DominatorTree::dominates(uint32_t A, uint32_t B) const {
  if (!isReachable(A) || !isReachable(B))
    return false;
  // Walk B up the tree; RPO numbers strictly decrease along idom chains,
  // so stop once we pass A's position.
  while (RPONumber[B] > RPONumber[A]) {
    if (B == EntryNode)
      return false;
    B = IDom[B];
  }
  return A == B;
}

DominanceFrontier::DominanceFrontier(const AdjacencyGraph &G,
                                     const DominatorTree &DT) {
  const uint32_t N = G.numNodes();
  DF.assign(N, {});
  auto Preds = G.buildPredecessors();
  // Cytron et al.: a join node with >=2 reachable preds is in the frontier
  // of every node on the pred->idom(join) chains.
  for (uint32_t Join = 0; Join < N; ++Join) {
    if (!DT.isReachable(Join))
      continue;
    uint32_t NumReachablePreds = 0;
    for (uint32_t P : Preds[Join])
      if (DT.isReachable(P))
        ++NumReachablePreds;
    if (NumReachablePreds < 2)
      continue;
    for (uint32_t P : Preds[Join]) {
      if (!DT.isReachable(P))
        continue;
      uint32_t Runner = P;
      while (Runner != DT.immediateDominator(Join)) {
        DF[Runner].push_back(Join);
        if (Runner == DT.entry())
          break;
        Runner = DT.immediateDominator(Runner);
      }
    }
  }
  // Deduplicate (a node can reach the same join through several preds).
  for (auto &Front : DF) {
    std::sort(Front.begin(), Front.end());
    Front.erase(std::unique(Front.begin(), Front.end()), Front.end());
  }
}

std::vector<uint32_t> DominanceFrontier::iteratedFrontier(
    const std::vector<uint32_t> &DefSites) const {
  std::vector<uint32_t> Result;
  std::vector<uint8_t> InResult(DF.size(), 0);
  std::vector<uint32_t> Work(DefSites);
  std::vector<uint8_t> Visited(DF.size(), 0);
  for (uint32_t D : DefSites)
    Visited[D] = 1;
  while (!Work.empty()) {
    uint32_t Node = Work.back();
    Work.pop_back();
    for (uint32_t F : DF[Node]) {
      if (InResult[F])
        continue;
      InResult[F] = 1;
      Result.push_back(F);
      if (!Visited[F]) {
        Visited[F] = 1;
        Work.push_back(F);
      }
    }
  }
  std::sort(Result.begin(), Result.end());
  return Result;
}
