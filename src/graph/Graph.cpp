//===- Graph.cpp ----------------------------------------------*- C++ -*-===//

#include "graph/Graph.h"

using namespace vsfs;
using namespace vsfs::graph;

std::vector<uint32_t> vsfs::graph::reversePostOrder(const AdjacencyGraph &G,
                                                    uint32_t Entry) {
  std::vector<uint32_t> PostOrder;
  if (G.numNodes() == 0)
    return PostOrder;
  std::vector<uint8_t> Visited(G.numNodes(), 0);
  // Iterative DFS; the frame records the next successor index to explore.
  std::vector<std::pair<uint32_t, size_t>> Stack;
  Stack.emplace_back(Entry, 0);
  Visited[Entry] = 1;
  while (!Stack.empty()) {
    auto &[Node, NextSucc] = Stack.back();
    const auto &Out = G.successors(Node);
    bool Descended = false;
    while (NextSucc < Out.size()) {
      uint32_t S = Out[NextSucc++];
      if (!Visited[S]) {
        Visited[S] = 1;
        Stack.emplace_back(S, 0);
        Descended = true;
        break;
      }
    }
    if (Descended)
      continue;
    PostOrder.push_back(Node);
    Stack.pop_back();
  }
  std::reverse(PostOrder.begin(), PostOrder.end());
  return PostOrder;
}
