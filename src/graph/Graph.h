//===- Graph.h - Adjacency-list directed graph ------------------*- C++ -*-===//
///
/// \file
/// A minimal adjacency-list digraph over dense uint32_t node IDs. The graph
/// algorithms in this library (SCC, dominators) and the analyses' internal
/// graphs (constraint graph, version constraint graph) all operate on this
/// shape.
///
//===----------------------------------------------------------------------===//

#ifndef VSFS_GRAPH_GRAPH_H
#define VSFS_GRAPH_GRAPH_H

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

namespace vsfs {
namespace graph {

/// Directed graph as vectors of successor lists. Parallel edges are allowed
/// unless \c addUniqueEdge is used.
class AdjacencyGraph {
public:
  AdjacencyGraph() = default;
  explicit AdjacencyGraph(uint32_t NumNodes) : Succs(NumNodes) {}

  uint32_t numNodes() const { return static_cast<uint32_t>(Succs.size()); }

  /// Adds a node and returns its ID.
  uint32_t addNode() {
    Succs.emplace_back();
    return numNodes() - 1;
  }

  /// Grows the graph to at least \p NumNodes nodes.
  void resize(uint32_t NumNodes) {
    if (NumNodes > numNodes())
      Succs.resize(NumNodes);
  }

  void addEdge(uint32_t From, uint32_t To) {
    assert(From < numNodes() && To < numNodes() && "edge endpoints exist");
    Succs[From].push_back(To);
  }

  /// Adds the edge unless it is already present; returns true if added.
  /// Linear in out-degree; fine for the small degrees seen here.
  bool addUniqueEdge(uint32_t From, uint32_t To) {
    assert(From < numNodes() && To < numNodes() && "edge endpoints exist");
    auto &Out = Succs[From];
    if (std::find(Out.begin(), Out.end(), To) != Out.end())
      return false;
    Out.push_back(To);
    return true;
  }

  const std::vector<uint32_t> &successors(uint32_t Node) const {
    assert(Node < numNodes() && "node exists");
    return Succs[Node];
  }

  /// Builds and returns the predecessor lists (O(V+E)).
  std::vector<std::vector<uint32_t>> buildPredecessors() const {
    std::vector<std::vector<uint32_t>> Preds(numNodes());
    for (uint32_t N = 0; N < numNodes(); ++N)
      for (uint32_t S : Succs[N])
        Preds[S].push_back(N);
    return Preds;
  }

  uint64_t numEdges() const {
    uint64_t Total = 0;
    for (const auto &Out : Succs)
      Total += Out.size();
    return Total;
  }

private:
  std::vector<std::vector<uint32_t>> Succs;
};

/// Reverse post-order of the nodes reachable from \p Entry.
std::vector<uint32_t> reversePostOrder(const AdjacencyGraph &G,
                                       uint32_t Entry);

} // namespace graph
} // namespace vsfs

#endif // VSFS_GRAPH_GRAPH_H
