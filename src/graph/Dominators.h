//===- Dominators.h - Dominator tree & dominance frontier -------*- C++ -*-===//
///
/// \file
/// Dominator tree via the Cooper–Harvey–Kennedy iterative algorithm and
/// Cytron-style dominance frontiers. Memory SSA construction places MemPhi
/// nodes at the iterated dominance frontier of each object's definition
/// sites, exactly as ordinary SSA places phis for scalar variables.
///
//===----------------------------------------------------------------------===//

#ifndef VSFS_GRAPH_DOMINATORS_H
#define VSFS_GRAPH_DOMINATORS_H

#include "graph/Graph.h"

#include <cstdint>
#include <vector>

namespace vsfs {
namespace graph {

/// Dominator tree of the nodes reachable from a designated entry node.
/// Unreachable nodes have no immediate dominator and are excluded from
/// frontiers.
class DominatorTree {
public:
  /// Builds the tree for \p G rooted at \p Entry.
  DominatorTree(const AdjacencyGraph &G, uint32_t Entry);

  static constexpr uint32_t None = UINT32_MAX;

  uint32_t entry() const { return EntryNode; }
  bool isReachable(uint32_t Node) const { return IDom[Node] != None; }

  /// Immediate dominator of \p Node; the entry dominates itself; \c None
  /// for unreachable nodes.
  uint32_t immediateDominator(uint32_t Node) const { return IDom[Node]; }

  /// Returns true if \p A dominates \p B (reflexive).
  bool dominates(uint32_t A, uint32_t B) const;

  /// Children of \p Node in the dominator tree.
  const std::vector<uint32_t> &children(uint32_t Node) const {
    return Kids[Node];
  }

private:
  uint32_t EntryNode;
  std::vector<uint32_t> IDom;
  /// Reverse-post-order position of each node; used to order intersections
  /// and to answer \c dominates by walking up the tree.
  std::vector<uint32_t> RPONumber;
  std::vector<std::vector<uint32_t>> Kids;
};

/// Dominance frontier DF(n) for every reachable node of the graph.
class DominanceFrontier {
public:
  DominanceFrontier(const AdjacencyGraph &G, const DominatorTree &DT);

  const std::vector<uint32_t> &frontier(uint32_t Node) const {
    return DF[Node];
  }

  /// Iterated dominance frontier of a set of definition sites: the classic
  /// worklist closure used for pruned SSA phi placement.
  std::vector<uint32_t>
  iteratedFrontier(const std::vector<uint32_t> &DefSites) const;

private:
  std::vector<std::vector<uint32_t>> DF;
};

} // namespace graph
} // namespace vsfs

#endif // VSFS_GRAPH_DOMINATORS_H
