//===- Format.cpp ---------------------------------------------*- C++ -*-===//

#include "support/Format.h"

#include <cmath>
#include <cstdio>
#include <sstream>

using namespace vsfs;

std::string vsfs::formatDouble(double Value, int Precision) {
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.*f", Precision, Value);
  return Buffer;
}

std::string vsfs::formatBytes(uint64_t Bytes) {
  static const char *Units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double Value = static_cast<double>(Bytes);
  int Unit = 0;
  while (Value >= 1024.0 && Unit < 4) {
    Value /= 1024.0;
    ++Unit;
  }
  return formatDouble(Value, Unit == 0 ? 0 : 2) + " " + Units[Unit];
}

std::string vsfs::formatRatio(double Ratio) {
  if (!std::isfinite(Ratio))
    return "-";
  return formatDouble(Ratio, 2) + "x";
}

double vsfs::geometricMean(const std::vector<double> &Values) {
  double LogSum = 0.0;
  size_t Count = 0;
  for (double V : Values) {
    if (V <= 0.0 || !std::isfinite(V))
      continue;
    LogSum += std::log(V);
    ++Count;
  }
  if (Count == 0)
    return 0.0;
  return std::exp(LogSum / static_cast<double>(Count));
}

std::string TableWriter::row(const std::vector<std::string> &Cells) const {
  std::ostringstream OS;
  for (size_t I = 0, E = Widths.size(); I != E; ++I) {
    const std::string Cell = I < Cells.size() ? Cells[I] : "";
    int Width = Widths[I];
    bool Left = Width < 0;
    size_t AbsWidth = static_cast<size_t>(Left ? -Width : Width);
    if (Left)
      OS << Cell;
    if (Cell.size() < AbsWidth)
      OS << std::string(AbsWidth - Cell.size(), ' ');
    if (!Left)
      OS << Cell;
    OS << (I + 1 == E ? "" : "  ");
  }
  OS << '\n';
  return OS.str();
}

std::string TableWriter::separator() const {
  size_t Total = 0;
  for (int W : Widths)
    Total += static_cast<size_t>(W < 0 ? -W : W) + 2;
  if (Total >= 2)
    Total -= 2;
  return std::string(Total, '-') + "\n";
}
