//===- Budget.cpp - Resource governor slow path ---------------------------===//

#include "support/Budget.h"

#include "support/FaultInjection.h"
#include "support/MemUsage.h"

#include <algorithm>
#include <cstdlib>

namespace vsfs {

const char *terminationName(Termination T) {
  switch (T) {
  case Termination::Completed:
    return "completed";
  case Termination::Deadline:
    return "deadline";
  case Termination::Memory:
    return "memory";
  case Termination::Steps:
    return "steps";
  case Termination::Fault:
    return "fault";
  }
  return "completed";
}

bool parseTermination(std::string_view Name, Termination &Out) {
  for (Termination T :
       {Termination::Completed, Termination::Deadline, Termination::Memory,
        Termination::Steps, Termination::Fault}) {
    if (Name == terminationName(T)) {
      Out = T;
      return true;
    }
  }
  return false;
}

ResourceBudget::ResourceBudget(Limits L) : Lim(L), BaseRSS(peakRSSBytes()) {}

void ResourceBudget::beginPhase(const char *Name, bool Governed) {
  // Materialise the partial stride of the phase we are leaving.
  TotalSteps += stepsSinceLastPoll();
  Phase = Name;
  StepGoverned = Governed;
  StepsUsed = 0;
  // Steps exhaustion is phase-local; memory pressure may have receded
  // (e.g. a degraded run dropped its state). Deadline and fault are
  // terminal. The first checkpoint of the phase polls immediately, so a
  // still-standing condition re-trips before any work is done.
  if (Status == Termination::Steps)
    Status = Termination::Completed;
  if (Status == Termination::Memory &&
      (Lim.MemBudgetBytes == 0 || PointsToBytes::live() <= Lim.MemBudgetBytes))
    Status = Termination::Completed;
  Countdown = Stride = 1;
}

bool ResourceBudget::poll() {
  ++Polls;
  StepsUsed += Stride;
  TotalSteps += Stride;
  if (Status != Termination::Completed) {
    Countdown = Stride = 1;
    return false;
  }
  if (FaultInjection::active()) {
    Termination F = FaultInjection::get().fire(Phase);
    if (F != Termination::Completed) {
      Status = F;
      Countdown = Stride = 1;
      return false;
    }
  }
  if (StepGoverned && Lim.StepBudget && StepsUsed >= Lim.StepBudget)
    Status = Termination::Steps;
  else if (Lim.TimeBudgetSeconds > 0 &&
           Clock.seconds() >= Lim.TimeBudgetSeconds)
    Status = Termination::Deadline;
  else if (Lim.MemBudgetBytes &&
           (PointsToBytes::live() > Lim.MemBudgetBytes ||
            peakRSSBytes() - BaseRSS > Lim.MemBudgetBytes))
    Status = Termination::Memory;
  if (Status != Termination::Completed) {
    Countdown = Stride = 1;
    return false;
  }
  armCountdown();
  return true;
}

void ResourceBudget::armCountdown() {
  uint64_t S = DefaultStride;
  if (StepGoverned && Lim.StepBudget) {
    // Land a poll exactly on the budget boundary so exhaustion is
    // detected with zero overshoot (deterministic step accounting).
    uint64_t Remaining = Lim.StepBudget - StepsUsed;
    S = std::min<uint64_t>(S, Remaining);
  }
  Stride = Countdown = static_cast<uint32_t>(std::max<uint64_t>(S, 1));
}

StatGroup ResourceBudget::statGroup() const {
  StatGroup G("budget");
  G.get("checkpoints") = totalSteps();
  G.get("polls") = Polls;
  G.get("phase-steps") = phaseSteps();
  G.get("step-budget") = Lim.StepBudget;
  if (Lim.StepBudget)
    G.get("steps-remaining") =
        Lim.StepBudget > phaseSteps() ? Lim.StepBudget - phaseSteps() : 0;
  G.get("time-budget-ms") =
      static_cast<uint64_t>(Lim.TimeBudgetSeconds * 1000.0);
  if (Lim.TimeBudgetSeconds > 0) {
    // The only clock-derived value in the group; zeroed under
    // --deterministic-stats so governed runs stay byte-comparable.
    double Left =
        deterministicStats() ? 0 : Lim.TimeBudgetSeconds - Clock.seconds();
    G.get("time-remaining-ms") =
        Left > 0 ? static_cast<uint64_t>(Left * 1000.0) : 0;
  }
  G.get("mem-budget-bytes") = Lim.MemBudgetBytes;
  if (Lim.MemBudgetBytes) {
    uint64_t Live = PointsToBytes::live();
    G.get("mem-remaining-bytes") =
        Live < Lim.MemBudgetBytes ? Lim.MemBudgetBytes - Live : 0;
  }
  return G;
}

bool FaultInjection::parseSpec(std::string_view Spec, Termination &K,
                               uint64_t &AtPoll, std::string &PhaseFilter) {
  size_t At = Spec.find('@');
  if (At == std::string_view::npos)
    return false;
  Termination Kind;
  if (!parseTermination(Spec.substr(0, At), Kind) ||
      Kind == Termination::Completed)
    return false;
  std::string_view Rest = Spec.substr(At + 1);
  std::string Phase;
  size_t Colon = Rest.find(':');
  if (Colon != std::string_view::npos) {
    Phase = std::string(Rest.substr(Colon + 1));
    Rest = Rest.substr(0, Colon);
  }
  if (Rest.empty())
    return false;
  uint64_t N = 0;
  for (char C : Rest) {
    if (C < '0' || C > '9')
      return false;
    N = N * 10 + static_cast<uint64_t>(C - '0');
  }
  if (N == 0)
    return false;
  K = Kind;
  AtPoll = N;
  PhaseFilter = std::move(Phase);
  return true;
}

bool FaultInjection::armFromEnv() {
  const char *Spec = std::getenv("VSFS_FAULT_INJECT");
  if (!Spec || !*Spec)
    return true;
  Termination K;
  uint64_t AtPoll;
  std::string Phase;
  if (!parseSpec(Spec, K, AtPoll, Phase))
    return false;
  arm(K, AtPoll, std::move(Phase));
  return true;
}

} // namespace vsfs
