//===- Budget.h - Resource governor for cooperative cancellation -*- C++ -*-===//
///
/// \file
/// The resource governor behind graceful degradation (docs/ROBUSTNESS.md).
///
/// A \c ResourceBudget bundles the three limits a production deployment
/// cares about — a wall-clock deadline, a points-to-memory ceiling and a
/// solver-step budget — behind one cheap, amortised \c checkpoint() that
/// every worklist loop polls cooperatively: Andersen's solve, the three
/// flow-sensitive solvers (ITER/SFS/VSFS), VSFS's meld-labelling
/// pre-analysis, and MemSSA/SVFG construction. Exhaustion never aborts the
/// process: \c checkpoint() starts returning false, the loop breaks at a
/// consistent (monotone) intermediate state, and the phase reports a
/// structured \c Termination status. Policy — fail, expose the partial
/// state, or degrade to the auxiliary Andersen result — is applied above,
/// in \c AnalysisRunner and the CLI driver.
///
/// The fast path is a single counter decrement and branch; the limit
/// checks (clock read, byte counters, deterministic fault injection) run
/// only in the out-of-line \c poll() every \c DefaultStride checkpoints.
/// Solvers hold a *nullable* budget pointer: with no budget configured the
/// pointer is null, no checkpoint is ever taken, and results are
/// bit-identical to an ungoverned run by construction.
///
//===----------------------------------------------------------------------===//

#ifndef VSFS_SUPPORT_BUDGET_H
#define VSFS_SUPPORT_BUDGET_H

#include "support/Statistics.h"
#include "support/Timer.h"

#include <cstdint>
#include <string_view>

namespace vsfs {

/// How a governed phase ended. \c Completed means the fixed point (or full
/// construction) was reached; every other value names the exhausted
/// resource. \c Fault is an injected or detected internal failure
/// (support/FaultInjection.h) — it shares the cancellation machinery so a
/// simulated allocation failure unwinds exactly like a real limit.
enum class Termination : uint8_t {
  Completed = 0,
  Deadline, ///< Wall-clock budget exceeded.
  Memory,   ///< Points-to live bytes or RSS growth exceeded the ceiling.
  Steps,    ///< Solver-step budget for the phase exhausted.
  Fault,    ///< Injected/internal fault surfaced at a checkpoint.
};

/// Lower-case status name as emitted in --stats-json ("completed", ...).
const char *terminationName(Termination T);

/// Parses a \c terminationName() spelling; returns false when unknown.
bool parseTermination(std::string_view Name, Termination &Out);

/// Wall-clock + memory + step limits with a cooperative checkpoint.
///
/// Phases: the pipeline calls \c beginPhase() as it enters each stage
/// ("andersen", "memssa", "svfg", then one per solver run). The step meter
/// is per-phase and only armed for flow-sensitive solver phases
/// (StepGoverned) — the step budget bounds flow-sensitive effort, while
/// the deadline and the memory ceiling govern the entire pipeline
/// including the auxiliary analysis (which must be allowed to finish for
/// degradation to have a sound target). Deadline and fault exhaustion are
/// terminal; steps (phase-local by definition) and memory (pressure may
/// recede when a degraded run's state is dropped) are re-evaluated at the
/// next \c beginPhase().
class ResourceBudget {
public:
  struct Limits {
    double TimeBudgetSeconds = 0; ///< 0 = no deadline.
    uint64_t MemBudgetBytes = 0;  ///< 0 = no memory ceiling.
    uint64_t StepBudget = 0;      ///< 0 = no step limit; per governed phase.
  };

  ResourceBudget() : ResourceBudget(Limits{}) {}
  explicit ResourceBudget(Limits L);

  /// Enters a new pipeline phase: names it (for fault-injection filters
  /// and diagnostics), resets the per-phase step meter, and arms or
  /// disarms step governance.
  void beginPhase(const char *Name, bool StepGoverned);

  /// The cooperative cancellation point. Returns true while the phase may
  /// continue; once it returns false it keeps returning false until a
  /// \c beginPhase() re-arms a recoverable condition. Each call counts as
  /// one solver step; limits are only inspected every \c stride() calls.
  bool checkpoint() {
    if (--Countdown != 0)
      return Status == Termination::Completed;
    return poll();
  }

  Termination status() const { return Status; }
  bool exhausted() const { return Status != Termination::Completed; }
  const char *phase() const { return Phase; }
  const Limits &limits() const { return Lim; }

  uint64_t totalSteps() const { return TotalSteps + stepsSinceLastPoll(); }
  uint64_t phaseSteps() const { return StepsUsed + stepsSinceLastPoll(); }
  uint64_t polls() const { return Polls; }

  /// Whether any limit is configured (an all-zero budget still polls, so
  /// fault injection works, but can never exhaust on its own).
  bool anyLimit() const {
    return Lim.TimeBudgetSeconds > 0 || Lim.MemBudgetBytes != 0 ||
           Lim.StepBudget != 0;
  }

  /// Snapshot for --stats-json's "budget" group: checkpoints polled and
  /// budget remaining at finish (docs/ROBUSTNESS.md lists the keys).
  StatGroup statGroup() const;

private:
  /// Slow path: materialise the steps taken since the last poll, run the
  /// fault-injection hook and the limit checks, re-arm the countdown.
  bool poll();
  void armCountdown();
  uint64_t stepsSinceLastPoll() const { return Stride - Countdown; }

  static constexpr uint32_t DefaultStride = 64;

  Limits Lim;
  Termination Status = Termination::Completed;
  const char *Phase = "";
  bool StepGoverned = false;
  uint64_t StepsUsed = 0;  ///< Steps in the current phase (poll-granular).
  uint64_t TotalSteps = 0; ///< Steps across all phases (poll-granular).
  uint64_t Polls = 0;
  uint32_t Countdown = 1; ///< Checkpoints until the next poll.
  uint32_t Stride = 1;    ///< What Countdown was last armed to.
  Timer Clock;            ///< Deadline base: budget construction.
  uint64_t BaseRSS;       ///< peakRSSBytes() at construction; the memory
                          ///< ceiling bounds growth, not the absolute RSS.
};

} // namespace vsfs

#endif // VSFS_SUPPORT_BUDGET_H
