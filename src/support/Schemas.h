//===- Schemas.h - Machine-readable output schema versions ------*- C++ -*-===//
///
/// \file
/// The schema-version strings stamped into every machine-readable JSON
/// document this repository emits (--stats-json, the table benches, the
/// demand-mode ablation). They live in exactly one place so a schema bump
/// is one edit here plus the documented delta (docs/ROBUSTNESS.md,
/// docs/QUERIES.md) — not a grep across tools and benches.
///
/// History of the driver schema:
///   vsfs-stats-v1  original pipeline + per-analysis counters
///   vsfs-stats-v2  + termination/degraded/partial, budget group, drains
///   vsfs-stats-v3  + session "mode" (exhaustive | demand) and the demand
///                    engine's per-analysis "query" group (docs/QUERIES.md)
///   vsfs-stats-v4  + pipeline "coalesce_seconds" and, under --coalesce=on,
///                    the "coalesce" group (classes, nodes/edges removed,
///                    refine iterations — docs/COALESCING.md)
///   vsfs-stats-v5  + the spec engine's per-analysis "taint" group (specs,
///                    sources, walk work, findings, verified/unverifiable —
///                    docs/CHECKERS.md)
///
//===----------------------------------------------------------------------===//

#ifndef VSFS_SUPPORT_SCHEMAS_H
#define VSFS_SUPPORT_SCHEMAS_H

namespace vsfs {
namespace schemas {

/// --stats-json (tools/vsfs-wpa.cpp via core::statsJson).
inline constexpr const char *StatsJson = "vsfs-stats-v5";

/// --findings-json (tools/vsfs-wpa.cpp via taint::findingsJson).
inline constexpr const char *FindingsJson = "vsfs-findings-v1";

/// bench_table2 --json (Table II reproduction).
inline constexpr const char *BenchTable2 = "vsfs-table2-v2";

/// bench_table3 --json (Table III reproduction).
inline constexpr const char *BenchTable3 = "vsfs-table3-v2";

/// bench_ptscache --json (points-to representation ablation).
inline constexpr const char *BenchPtsCache = "vsfs-ptscache-v1";

/// bench_demand --json (exhaustive vs. demand-mode ablation).
inline constexpr const char *BenchDemand = "vsfs-demand-v1";

/// bench_coalesce --json (transfer-equivalence coalescing ablation).
inline constexpr const char *BenchCoalesce = "vsfs-coalesce-v1";

/// bench_taint --json (spec engine vs. legacy walk ablation).
inline constexpr const char *BenchTaint = "vsfs-taint-v1";

/// vsfs-served health/stats document (docs/SERVICE.md).
inline constexpr const char *HealthJson = "vsfs-health-v1";

/// bench_service --json (cold vs. warm-hit vs. shed latency).
inline constexpr const char *BenchService = "vsfs-service-v1";

} // namespace schemas
} // namespace vsfs

#endif // VSFS_SUPPORT_SCHEMAS_H
