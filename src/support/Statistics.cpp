//===- Statistics.cpp -----------------------------------------*- C++ -*-===//

#include "support/Statistics.h"

#include <sstream>

using namespace vsfs;

std::string StatGroup::toString() const {
  std::ostringstream OS;
  if (!GroupName.empty())
    OS << "=== " << GroupName << " ===\n";
  size_t Width = 0;
  for (const auto &[Key, Value] : Counters)
    Width = Key.size() > Width ? Key.size() : Width;
  for (const auto &[Key, Value] : Counters) {
    OS << "  " << Key;
    for (size_t I = Key.size(); I < Width + 2; ++I)
      OS << ' ';
    OS << Value << '\n';
  }
  return OS.str();
}
