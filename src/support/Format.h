//===- Format.h - Table/number formatting helpers --------------*- C++ -*-===//
///
/// \file
/// Small formatting utilities used by the benchmark harnesses to print
/// Table II / Table III style rows: fixed-width columns, human-readable
/// sizes, ratios ("5.31x"), and geometric means.
///
//===----------------------------------------------------------------------===//

#ifndef VSFS_SUPPORT_FORMAT_H
#define VSFS_SUPPORT_FORMAT_H

#include <cstdint>
#include <string>
#include <vector>

namespace vsfs {

/// Formats \p Value with \p Precision digits after the decimal point.
std::string formatDouble(double Value, int Precision = 2);

/// Formats a byte count as "12.3 KiB" / "4.5 MiB" / "1.2 GiB".
std::string formatBytes(uint64_t Bytes);

/// Formats a ratio as "5.31x"; returns "-" for non-finite input.
std::string formatRatio(double Ratio);

/// Geometric mean of \p Values, ignoring non-positive entries (the paper
/// ignores non-existent data, e.g. SFS on lynx). Returns 0 if none remain.
double geometricMean(const std::vector<double> &Values);

/// A fixed-width left/right aligned plain-text table writer.
class TableWriter {
public:
  /// \p Widths: column widths; negative width means left-aligned.
  explicit TableWriter(std::vector<int> Widths) : Widths(std::move(Widths)) {}

  /// Renders one row; cells beyond Widths.size() are ignored.
  std::string row(const std::vector<std::string> &Cells) const;

  /// Renders a separator line of '-' spanning all columns.
  std::string separator() const;

private:
  std::vector<int> Widths;
};

} // namespace vsfs

#endif // VSFS_SUPPORT_FORMAT_H
