//===- FaultInjection.h - Deterministic exhaustion injection ----*- C++ -*-===//
///
/// \file
/// Deterministic fault injection for the resource governor, so every
/// \c Termination kind and every degradation path is reachable in tests
/// without sleeps or multi-GiB inputs (docs/ROBUSTNESS.md).
///
/// A plan is "simulate exhaustion kind K at the Nth budget poll whose
/// phase matches F" — e.g. deadline at poll 3 of the vsfs phase, or a
/// simulated allocation failure (\c Termination::Fault) at the first poll
/// anywhere. Polls are the amortised slow path of
/// \c ResourceBudget::checkpoint(), so firing there exercises exactly the
/// cancellation route a real limit would take, and the poll ordinal is a
/// deterministic function of the work done — no clocks involved.
///
/// Arming: tests call \c arm() directly; the CLI honours the environment
/// variable \c VSFS_FAULT_INJECT ("kind@N" or "kind@N:phase", e.g.
/// "fault@1:vsfs") via \c armFromEnv(). A plan fires once and disarms.
/// When disarmed — the production state — the only cost is the inline
/// \c active() flag test on the poll slow path; the solver fast path
/// never sees it.
///
/// Phase filters match whatever name the active budget phase carries. On
/// top of the pipeline phases ("andersen", "memssa", "svfg", one per
/// solver) the analysis service (docs/SERVICE.md) opens three service
/// phases around each request — \c phases::Serve (request parse and
/// validation), \c phases::Cache (result-cache lookup/store) and
/// \c phases::Worker (worker-side setup/teardown) — so a plan can target
/// the serving machinery itself, not just the analysis it wraps.
///
//===----------------------------------------------------------------------===//

#ifndef VSFS_SUPPORT_FAULTINJECTION_H
#define VSFS_SUPPORT_FAULTINJECTION_H

#include "support/Budget.h"

#include <cstdint>
#include <string>
#include <string_view>

namespace vsfs {

/// Budget-phase names the analysis service adds around each request, for
/// use as fault-plan phase filters (grammar: "kind@N:serve" etc.).
namespace phases {
inline constexpr const char *Serve = "serve";   ///< parse + validate request
inline constexpr const char *Cache = "cache";   ///< result-cache lookup/store
inline constexpr const char *Worker = "worker"; ///< worker setup/teardown
} // namespace phases

/// Per-thread fault plan. Each analysis is single-threaded, but the
/// service runs one per worker thread; a \c thread_local plan means an
/// injected fault poisons exactly the request that armed it — a
/// neighbouring worker's polls can never consume or trip it.
class FaultInjection {
public:
  static FaultInjection &get() {
    static thread_local FaultInjection FI;
    return FI;
  }

  /// True when a plan is armed; inlined so an unarmed check is one load.
  static bool active() { return get().Kind != Termination::Completed; }

  /// Arms: simulate \p K at the \p AtPoll-th (1-based) matching budget
  /// poll. \p PhaseFilter restricts matching to polls taken in that phase
  /// ("" matches every phase). Re-arming replaces any existing plan.
  void arm(Termination K, uint64_t AtPoll, std::string PhaseFilter = "") {
    Kind = K;
    Target = AtPoll ? AtPoll : 1;
    Seen = 0;
    Filter = std::move(PhaseFilter);
  }

  void disarm() {
    Kind = Termination::Completed;
    Target = Seen = 0;
    Filter.clear();
  }

  /// Called by ResourceBudget::poll() with the current phase. Counts
  /// matching polls; on the Nth it disarms and returns the simulated
  /// exhaustion kind, otherwise Termination::Completed.
  Termination fire(const char *Phase) {
    if (Kind == Termination::Completed)
      return Termination::Completed;
    if (!Filter.empty() && Filter != Phase)
      return Termination::Completed;
    if (++Seen < Target)
      return Termination::Completed;
    Termination K = Kind;
    disarm();
    return K;
  }

  /// Parses "kind@N[:phase]" where kind is a terminationName() spelling
  /// other than "completed". Returns false (leaving outputs untouched) on
  /// a malformed spec.
  static bool parseSpec(std::string_view Spec, Termination &K,
                        uint64_t &AtPoll, std::string &PhaseFilter);

  /// The inverse of \c parseSpec: renders a plan back to the
  /// "kind@N[:phase]" grammar, so a plan can round-trip through
  /// \c VSFS_FAULT_INJECT (the thin client forwards its environment to the
  /// daemon as exactly this string).
  static std::string formatSpec(Termination K, uint64_t AtPoll,
                                std::string_view PhaseFilter) {
    std::string S = terminationName(K);
    S += '@';
    S += std::to_string(AtPoll ? AtPoll : 1);
    if (!PhaseFilter.empty()) {
      S += ':';
      S += PhaseFilter;
    }
    return S;
  }

  /// Arms from $VSFS_FAULT_INJECT if set. Returns false when the variable
  /// is set but malformed (callers should treat that as a usage error —
  /// a typo must not silently disable an intended fault).
  bool armFromEnv();

private:
  Termination Kind = Termination::Completed;
  uint64_t Target = 0;
  uint64_t Seen = 0;
  std::string Filter;
};

} // namespace vsfs

#endif // VSFS_SUPPORT_FAULTINJECTION_H
