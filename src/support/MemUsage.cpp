//===- MemUsage.cpp -------------------------------------------*- C++ -*-===//

#include "support/MemUsage.h"

#include <sys/resource.h>

using namespace vsfs;

thread_local uint64_t PointsToBytes::Live = 0;
thread_local uint64_t PointsToBytes::Peak = 0;

uint64_t vsfs::peakRSSBytes() {
  struct rusage Usage;
  if (getrusage(RUSAGE_SELF, &Usage) != 0)
    return 0;
  // ru_maxrss is kilobytes on Linux.
  return static_cast<uint64_t>(Usage.ru_maxrss) * 1024;
}
