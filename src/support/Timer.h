//===- Timer.h - Wall-clock timing helpers ---------------------*- C++ -*-===//
///
/// \file
/// Minimal wall-clock timer used by the benchmark harnesses. The paper's
/// Table III reports per-phase analysis time; \c Timer measures one phase and
/// \c ScopedTimer accumulates into a double on scope exit.
///
//===----------------------------------------------------------------------===//

#ifndef VSFS_SUPPORT_TIMER_H
#define VSFS_SUPPORT_TIMER_H

#include <chrono>

namespace vsfs {

/// Measures wall-clock seconds between \c start() and \c seconds().
class Timer {
public:
  Timer() { start(); }

  void start() { Begin = Clock::now(); }

  /// Seconds elapsed since the last \c start().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Begin).count();
  }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Begin;
};

/// Adds the scope's duration to a caller-owned accumulator on destruction.
class ScopedTimer {
public:
  explicit ScopedTimer(double &Accumulator) : Acc(Accumulator) {}
  ~ScopedTimer() { Acc += T.seconds(); }

  ScopedTimer(const ScopedTimer &) = delete;
  ScopedTimer &operator=(const ScopedTimer &) = delete;

private:
  double &Acc;
  Timer T;
};

} // namespace vsfs

#endif // VSFS_SUPPORT_TIMER_H
