//===- MemUsage.h - Memory accounting --------------------------*- C++ -*-===//
///
/// \file
/// Two complementary memory measurements for Table III:
///
///  1. \c peakRSSBytes(): the process maximum resident set size, the same
///     quantity GNU time reports in the paper. It is cumulative across the
///     whole process, so when several analyses run in one binary it can only
///     bound the largest one.
///  2. \c PointsToBytes: an exact byte counter maintained by
///     \c adt::SparseBitVector for live points-to/label storage. Per-analysis
///     deltas of this counter attribute the paper's "propagation and storage
///     of points-to sets" cost precisely even in a single process.
///
//===----------------------------------------------------------------------===//

#ifndef VSFS_SUPPORT_MEMUSAGE_H
#define VSFS_SUPPORT_MEMUSAGE_H

#include <cassert>
#include <cstddef>
#include <cstdint>

namespace vsfs {

/// Returns the process peak resident set size in bytes (0 if unavailable).
uint64_t peakRSSBytes();

/// Global live/peak byte accounting for sparse-bit-vector storage.
///
/// SparseBitVector calls \c retain / \c release around element allocation.
/// The counters are plain (non-atomic) because all analyses here are
/// single-threaded, matching the paper's setting.
class PointsToBytes {
public:
  static void retain(size_t Bytes) {
    Live += Bytes;
    if (Live > Peak)
      Peak = Live;
  }

  /// A release that outpaces retains (a double-release bug) must not wrap
  /// the counter — the resource governor compares \c live() against the
  /// memory budget, and a wrapped value reads as instant exhaustion.
  static void release(size_t Bytes) {
    assert(Bytes <= Live && "PointsToBytes release underflow");
    Live -= Bytes <= Live ? Bytes : Live;
  }

  static uint64_t live() { return Live; }
  static uint64_t peak() { return Peak; }

  /// Resets the peak to the current live amount; call before a phase to
  /// measure that phase's peak with \c peak() afterwards.
  static void resetPeak() { Peak = Live; }

private:
  static uint64_t Live;
  static uint64_t Peak;
};

} // namespace vsfs

#endif // VSFS_SUPPORT_MEMUSAGE_H
