//===- MemUsage.h - Memory accounting --------------------------*- C++ -*-===//
///
/// \file
/// Two complementary memory measurements for Table III:
///
///  1. \c peakRSSBytes(): the process maximum resident set size, the same
///     quantity GNU time reports in the paper. It is cumulative across the
///     whole process, so when several analyses run in one binary it can only
///     bound the largest one.
///  2. \c PointsToBytes: an exact byte counter maintained by
///     \c adt::SparseBitVector for live points-to/label storage. Per-analysis
///     deltas of this counter attribute the paper's "propagation and storage
///     of points-to sets" cost precisely even in a single process.
///
//===----------------------------------------------------------------------===//

#ifndef VSFS_SUPPORT_MEMUSAGE_H
#define VSFS_SUPPORT_MEMUSAGE_H

#include <cassert>
#include <cstddef>
#include <cstdint>

namespace vsfs {

/// Returns the process peak resident set size in bytes (0 if unavailable).
uint64_t peakRSSBytes();

/// Per-thread live/peak byte accounting for sparse-bit-vector storage.
///
/// SparseBitVector calls \c retain / \c release around element allocation.
/// The counters are \c thread_local: each analysis is single-threaded
/// (matching the paper's setting), but the analysis service
/// (docs/SERVICE.md) runs one analysis per worker thread, and each worker
/// must meter exactly its own request — a neighbour's allocations must
/// neither trip this request's memory budget nor mask its leaks. The
/// invariant this imposes is that a set allocated on one thread is
/// released on the same thread; analyses never share mutable state across
/// threads, so this holds by construction.
class PointsToBytes {
public:
  static void retain(size_t Bytes) {
    Live += Bytes;
    if (Live > Peak)
      Peak = Live;
  }

  /// A release that outpaces retains (a double-release bug) must not wrap
  /// the counter — the resource governor compares \c live() against the
  /// memory budget, and a wrapped value reads as instant exhaustion.
  static void release(size_t Bytes) {
    assert(Bytes <= Live && "PointsToBytes release underflow");
    Live -= Bytes <= Live ? Bytes : Live;
  }

  static uint64_t live() { return Live; }
  static uint64_t peak() { return Peak; }

  /// Resets the peak to the current live amount; call before a phase to
  /// measure that phase's peak with \c peak() afterwards.
  static void resetPeak() { Peak = Live; }

private:
  static thread_local uint64_t Live;
  static thread_local uint64_t Peak;
};

} // namespace vsfs

#endif // VSFS_SUPPORT_MEMUSAGE_H
