//===- Statistics.h - Named counter registry ------------------*- C++ -*-===//
///
/// \file
/// A lightweight named-counter registry used by the analyses to report how
/// much work they performed (propagations, points-to sets stored, versions
/// created, ...). Counters live in a \c StatGroup owned by the analysis so
/// separate runs never share state.
///
//===----------------------------------------------------------------------===//

#ifndef VSFS_SUPPORT_STATISTICS_H
#define VSFS_SUPPORT_STATISTICS_H

#include <cstdint>
#include <map>
#include <string>

namespace vsfs {

/// Per-thread switch that zeroes every wall-clock-derived field in
/// machine-readable output (--stats-json's *_seconds and the budget
/// group's time-remaining-ms). Everything else the stats report — counter
/// values, set sizes, terminations — is a deterministic function of the
/// input, so with the switch on, two runs of the same module with the
/// same options emit bit-identical documents. That is the contract the
/// analysis service's result cache and its identity tests are built on
/// (docs/SERVICE.md); enable via `vsfs-wpa --deterministic-stats` or
/// per-request on the wire.
inline bool &deterministicStatsSlot() {
  static thread_local bool Deterministic = false;
  return Deterministic;
}
inline bool deterministicStats() { return deterministicStatsSlot(); }
inline void setDeterministicStats(bool On) { deterministicStatsSlot() = On; }

/// An interned handle to one counter of a \c StatGroup.
///
/// Resolving a counter by name costs a \c std::map lookup; the solvers'
/// hot loops (worklist pops, propagations) bump counters millions of times,
/// so they intern the handle once (\c StatGroup::counter) and use it
/// thereafter. Handles stay valid for the group's lifetime: map nodes are
/// pointer-stable under insertion.
class StatCounter {
public:
  StatCounter() = default;

  StatCounter &operator++() {
    ++*Slot;
    return *this;
  }
  StatCounter &operator+=(uint64_t Delta) {
    *Slot += Delta;
    return *this;
  }
  StatCounter &operator=(uint64_t Value) {
    *Slot = Value;
    return *this;
  }
  uint64_t value() const { return *Slot; }

private:
  friend class StatGroup;
  explicit StatCounter(uint64_t *Slot) : Slot(Slot) {}
  uint64_t *Slot = nullptr;
};

/// An ordered collection of named 64-bit counters.
///
/// Counters are created on first access and iterate in name order, so output
/// is deterministic. The group is cheap to copy (used to snapshot state
/// before/after a phase).
class StatGroup {
public:
  StatGroup() = default;
  explicit StatGroup(std::string Name) : GroupName(std::move(Name)) {}

  /// Returns a mutable reference to the counter \p Key, creating it at zero.
  uint64_t &get(const std::string &Key) { return Counters[Key]; }

  /// Interns \p Key and returns a stable handle, creating the counter at
  /// zero. Use for counters bumped in hot loops; see \c StatCounter.
  StatCounter counter(const std::string &Key) {
    return StatCounter(&Counters[Key]);
  }

  /// Returns the value of \p Key, or 0 when the counter was never touched.
  uint64_t lookup(const std::string &Key) const {
    auto It = Counters.find(Key);
    return It == Counters.end() ? 0 : It->second;
  }

  /// Adds \p Delta to counter \p Key.
  void add(const std::string &Key, uint64_t Delta) { Counters[Key] += Delta; }

  /// Records \p Value into \p Key if it exceeds the current value.
  void max(const std::string &Key, uint64_t Value) {
    uint64_t &Cur = Counters[Key];
    if (Value > Cur)
      Cur = Value;
  }

  const std::string &name() const { return GroupName; }
  bool empty() const { return Counters.empty(); }

  using const_iterator = std::map<std::string, uint64_t>::const_iterator;
  const_iterator begin() const { return Counters.begin(); }
  const_iterator end() const { return Counters.end(); }

  /// Renders the group as aligned "key: value" lines.
  std::string toString() const;

private:
  std::string GroupName;
  std::map<std::string, uint64_t> Counters;
};

} // namespace vsfs

#endif // VSFS_SUPPORT_STATISTICS_H
