//===- Coalesce.cpp - Transfer-equivalence SVFG coalescing ----------------===//
///
/// Congruence partition refinement over the relay subgraph. The scheme is a
/// value numbering: every node that can source an indirect edge carries a
/// *value symbol* — itself for memory defs (store/free instructions) and δ
/// relays, its class representative for coalesced relays — and a relay's
/// signature is the deduplicated set of symbols flowing into it. One
/// signature element means the relay forwards exactly that value (Forward
/// contraction); equal multi-element signatures under equal (kind, object)
/// mean equal IN sets at every fixpoint (SameIn merging).
///
/// Cycles are condensed first: in an SCC of identity-transfer relays every
/// member's IN is the union of all values entering the SCC (each external
/// input reaches every member), so the whole component shares one value and
/// is classified by the component-level signature.
///
//===----------------------------------------------------------------------===//

#include "svfg/Coalesce.h"

#include "graph/SCC.h"
#include "ir/Module.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace vsfs;
using namespace vsfs::svfg;

namespace {

/// True for relay nodes the pass may coalesce. Excludes instruction nodes
/// (real transfer functions, observation points) and δ-eligible relays
/// (their in-edge sets can grow during on-the-fly call-graph resolution;
/// excluded regardless of how the current solver is configured, since one
/// graph serves solvers with either setting).
bool isEligible(const SVFG &G, NodeID N) {
  const Node &Nd = G.node(N);
  const ir::Module &M = G.module();
  switch (Nd.Kind) {
  case NodeKind::Inst:
    return false;
  case NodeKind::EntryChi:
    return !M.function(Nd.Fun).hasAddressTaken();
  case NodeKind::CallChi:
    return !M.inst(Nd.Inst).isIndirectCall();
  case NodeKind::ExitMu:
  case NodeKind::CallMu:
  case NodeKind::MemPhi:
    return true;
  }
  return false;
}

} // namespace

CoalesceMap svfg::computeTransferEquivalence(const SVFG &G) {
  const uint32_t NumNodes = G.numNodes();
  CoalesceMap CM;
  CM.RepOf.resize(NumNodes);
  for (NodeID N = 0; N < NumNodes; ++N)
    CM.RepOf[N] = N;
  CM.RoleOf.assign(NumNodes, CoalesceRole::Self);
  CM.ClassIndexOf.assign(NumNodes, CoalesceMap::NoClass);

  std::vector<char> Eligible(NumNodes, 0);
  for (NodeID N = 0; N < NumNodes; ++N)
    if (isEligible(G, N))
      Eligible[N] = 1;
  CM.EligibleNodes =
      static_cast<uint64_t>(std::count(Eligible.begin(), Eligible.end(), 1));

  // In-edge sources per eligible relay. Every in-edge of a relay carries
  // the relay's own object (svfg_invariants_test checks this role
  // invariant), so sources alone determine the incoming value set.
  std::vector<std::vector<NodeID>> InSrc(NumNodes);
  for (NodeID S = 0; S < NumNodes; ++S)
    for (const IndEdge &E : G.indirectSuccs(S))
      if (Eligible[E.Dst])
        InSrc[E.Dst].push_back(S);

  // Condense the eligible-relay subgraph. The SCC structure (and hence the
  // topological sweep order) is computed once on the original edges; merges
  // only ever redirect a node to a topologically earlier carrier, so the
  // order stays valid across refinement sweeps.
  std::vector<uint32_t> LocalOf(NumNodes, UINT32_MAX);
  std::vector<NodeID> NodeOfLocal;
  for (NodeID N = 0; N < NumNodes; ++N)
    if (Eligible[N]) {
      LocalOf[N] = static_cast<uint32_t>(NodeOfLocal.size());
      NodeOfLocal.push_back(N);
    }
  graph::AdjacencyGraph Sub(static_cast<uint32_t>(NodeOfLocal.size()));
  for (NodeID D : NodeOfLocal)
    for (NodeID S : InSrc[D])
      if (Eligible[S])
        Sub.addUniqueEdge(LocalOf[S], LocalOf[D]);
  graph::SCCResult SCC = graph::computeSCCs(Sub);

  // Value symbol of a source: chase representatives to a fixpoint (the
  // chains are short and acyclic — members always point at a node that was
  // classified Self in the same sweep).
  auto Find = [&CM](NodeID N) {
    while (CM.RepOf[N] != N)
      N = CM.RepOf[N] = CM.RepOf[CM.RepOf[N]];
    return N;
  };

  // Refinement sweeps: reclassify every component in topological order
  // (descending component ID — Tarjan numbers reverse-topologically) until
  // no node moves. The Gauss–Seidel sweep converges in one working pass
  // for chains and DAG-shaped congruences; the extra pass confirms.
  bool Changed = true;
  std::vector<NodeID> Sig;
  std::map<std::vector<uint64_t>, NodeID> SigTable;
  while (Changed) {
    Changed = false;
    ++CM.RefineIterations;
    SigTable.clear();
    for (uint32_t C = SCC.NumComponents; C-- > 0;) {
      const std::vector<uint32_t> &Members = SCC.Members[C];
      // Deduplicated value symbols entering the component from outside.
      Sig.clear();
      for (uint32_t L : Members)
        for (NodeID S : InSrc[NodeOfLocal[L]]) {
          if (Eligible[S] && SCC.ComponentOf[LocalOf[S]] == C)
            continue; // Intra-component identity hop.
          Sig.push_back(Find(S));
        }
      std::sort(Sig.begin(), Sig.end());
      Sig.erase(std::unique(Sig.begin(), Sig.end()), Sig.end());

      auto Assign = [&](NodeID N, NodeID Rep, CoalesceRole Role) {
        if (CM.RepOf[N] == Rep)
          return;
        CM.RepOf[N] = Rep;
        CM.RoleOf[N] = Rep == N ? CoalesceRole::Self : Role;
        Changed = true;
      };

      if (Sig.size() == 1) {
        // One distinct incoming value: the whole component forwards it
        // verbatim, so every member contracts into its carrier.
        for (uint32_t L : Members)
          Assign(NodeOfLocal[L], Sig[0], CoalesceRole::Forward);
        continue;
      }
      // Zero or ≥2 incoming values: sibling-merge by (kind, object,
      // signature) — per kind, since the ISSUE-level equivalence keeps
      // classes kind-homogeneous (an SCC can mix kinds across calls).
      for (uint32_t L : Members) {
        NodeID N = NodeOfLocal[L];
        const Node &Nd = G.node(N);
        std::vector<uint64_t> Key;
        Key.reserve(Sig.size() + 2);
        Key.push_back(static_cast<uint64_t>(Nd.Kind));
        Key.push_back(Nd.Obj);
        for (NodeID V : Sig)
          Key.push_back(V);
        auto [It, Inserted] = SigTable.emplace(std::move(Key), N);
        if (Inserted)
          Assign(N, N, CoalesceRole::Self);
        else
          Assign(N, It->second, CoalesceRole::SameIn);
      }
    }
    assert(CM.RefineIterations <= NumNodes + 2 && "refinement must converge");
  }

  // Finalise: path-compress, then build the dense non-trivial classes.
  for (NodeID N = 0; N < NumNodes; ++N)
    Find(N);
  std::vector<uint32_t> ClassOfRep(NumNodes, CoalesceMap::NoClass);
  for (NodeID N = 0; N < NumNodes; ++N) {
    if (!CM.isMember(N))
      continue;
    ++CM.CoalescedNodes;
    if (CM.RoleOf[N] == CoalesceRole::Forward)
      ++CM.ForwardMembers;
    else
      ++CM.SameInMembers;
    NodeID R = CM.RepOf[N];
    uint32_t &C = ClassOfRep[R];
    if (C == CoalesceMap::NoClass) {
      C = CM.numClasses();
      CM.Classes.emplace_back();
      CM.Classes.back().push_back(R);
      CM.ClassIndexOf[R] = C;
    }
    CM.Classes[C].push_back(N);
    CM.ClassIndexOf[N] = C;
  }
  return CM;
}
