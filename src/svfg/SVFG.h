//===- SVFG.h - Sparse value-flow graph -------------------------*- C++ -*-===//
///
/// \file
/// The sparse value-flow graph (SVFG) of §II-B: one node per instruction
/// plus dedicated nodes for the memory-SSA artefacts (MemPhi, entry-χ,
/// exit-μ, call-μ, call-χ), connected by
///
///  - \b direct edges: def-use chains of top-level variables (trivially
///    known from partial SSA), and
///  - \b indirect edges, labelled with an object: possible def-use chains of
///    address-taken objects, derived from the memory SSA form.
///
/// Interprocedural indirect edges (call-μ → entry-χ, exit-μ → call-χ) are
/// added eagerly for call edges known at construction; the flow-sensitive
/// solvers add the remaining ones when they resolve indirect calls on the
/// fly (the paper's δ nodes anticipate exactly these late edges).
///
//===----------------------------------------------------------------------===//

#ifndef VSFS_SVFG_SVFG_H
#define VSFS_SVFG_SVFG_H

#include "memssa/MemSSA.h"
#include "support/Budget.h"

#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace vsfs {
namespace svfg {

struct CoalesceMap;

using NodeID = uint32_t;
constexpr NodeID InvalidNode = UINT32_MAX;

enum class NodeKind : uint8_t {
  Inst,     ///< an IR instruction (NodeID == InstID for these)
  EntryChi, ///< per (function, object): o's value on function entry
  ExitMu,   ///< per (function, object): o's value on function exit
  CallMu,   ///< per (callsite, object): o's value flowing into callees
  CallChi,  ///< per (callsite, object): o's value after the call
  MemPhi    ///< per (function, block, object): control-flow merge of o
};

struct Node {
  NodeKind Kind;
  /// Inst nodes: the instruction. EntryChi/ExitMu: the FunEntry/FunExit
  /// instruction. CallMu/CallChi: the call instruction. MemPhi: InvalidInst.
  ir::InstID Inst = ir::InvalidInst;
  /// The object for chi/mu/phi nodes.
  ir::ObjID Obj = ir::InvalidObj;
  ir::FunID Fun = ir::InvalidFun;
  ir::BlockID Block = ir::InvalidBlock;
};

/// One indirect edge: destination node + the object whose value flows.
struct IndEdge {
  NodeID Dst;
  ir::ObjID Obj;
};

/// The SVFG. Construction wires all intraprocedural edges and the
/// interprocedural edges of calls resolved by the auxiliary analysis
/// (optionally only direct calls, for on-the-fly call-graph solving).
class SVFG {
public:
  /// \p ConnectAuxIndirectCalls: when true, indirect-call value flows
  /// resolved by Andersen are wired eagerly (the solvers then need no
  /// on-the-fly resolution); when false, only direct calls are wired and
  /// solvers call \c connectCallEdge as they discover targets. \p Budget,
  /// when non-null, is polled during construction (not owned): on
  /// exhaustion the build stops early — later build stages never run on a
  /// partially built node table — and the pipeline must not hand the
  /// partial graph to a solver (AnalysisContext::build checks the budget
  /// after this phase).
  SVFG(ir::Module &M, const andersen::Andersen &Ander,
       const memssa::MemSSA &SSA, bool ConnectAuxIndirectCalls,
       ResourceBudget *Budget = nullptr);

  const ir::Module &module() const { return M; }
  ir::Module &module() { return M; }
  const memssa::MemSSA &memSSA() const { return SSA; }
  const andersen::Andersen &auxAnalysis() const { return Ander; }

  uint32_t numNodes() const { return static_cast<uint32_t>(Nodes.size()); }
  const Node &node(NodeID N) const { return Nodes[N]; }

  const std::vector<NodeID> &directSuccs(NodeID N) const {
    return DirectSuccs[N];
  }
  const std::vector<IndEdge> &indirectSuccs(NodeID N) const {
    return IndSuccs[N];
  }

  uint64_t numDirectEdges() const { return DirectEdgeCount; }
  uint64_t numIndirectEdges() const { return IndirectEdgeCount; }

  // --- Node lookups -------------------------------------------------------

  NodeID instNode(ir::InstID I) const { return I; } // By construction.
  NodeID entryChiNode(ir::FunID F, ir::ObjID O) const {
    return lookup(EntryChiMap, key(F, O));
  }
  NodeID exitMuNode(ir::FunID F, ir::ObjID O) const {
    return lookup(ExitMuMap, key(F, O));
  }
  NodeID callMuNode(ir::InstID CS, ir::ObjID O) const {
    return lookup(CallMuMap, key(CS, O));
  }
  NodeID callChiNode(ir::InstID CS, ir::ObjID O) const {
    return lookup(CallChiMap, key(CS, O));
  }

  /// All chi/mu nodes of a callsite / function, for call-edge wiring.
  const std::vector<NodeID> &callMusOf(ir::InstID CS) const {
    return lookupList(CallMusOfSite, CS);
  }
  const std::vector<NodeID> &callChisOf(ir::InstID CS) const {
    return lookupList(CallChisOfSite, CS);
  }
  const std::vector<NodeID> &entryChisOf(ir::FunID F) const {
    return lookupList(EntryChisOfFun, F);
  }
  const std::vector<NodeID> &exitMusOf(ir::FunID F) const {
    return lookupList(ExitMusOfFun, F);
  }

  // --- Edge mutation (on-the-fly call graph) -------------------------------

  /// Adds the object value-flow edges for a newly discovered call edge:
  /// CallMu(cs,o) -> EntryChi(callee,o) and ExitMu(callee,o) -> CallChi(cs,o)
  /// for every object annotated on both ends. Appends each added edge to
  /// \p Added. Idempotent per (callsite, callee).
  void connectCallEdge(ir::InstID CS, ir::FunID Callee,
                       std::vector<std::pair<NodeID, IndEdge>> &Added);

  /// Adds one indirect edge if not already present; returns true if added.
  /// After \c applyCoalescing the endpoints are remapped onto their class
  /// representatives first (relay self-loops that remapping produces are
  /// identity hops and dropped).
  bool addIndirectEdge(NodeID From, NodeID To, ir::ObjID Obj);

  // --- Witness replay (taint/WitnessVerifier.h) ---------------------------

  /// Does the graph, as materialised right now, contain the direct edge
  /// From -> To? Linear in From's out-degree; witness chains are short.
  bool hasDirectEdge(NodeID From, NodeID To) const;

  /// Does the graph contain an indirect edge From -> To labelled exactly
  /// \p Obj? O(1) via the dedup membership set.
  bool hasIndirectEdge(NodeID From, NodeID To, ir::ObjID Obj) const {
    return From < IndEdgeSet.size() &&
           IndEdgeSet[From].count(key(To, Obj)) != 0;
  }

  // --- Coalescing (svfg/Coalesce.h) ---------------------------------------

  /// Rewrites the indirect edge lists onto class representatives: every
  /// endpoint is redirected through \c CM.rep, duplicates collapse, and
  /// relay self-loops (identity transfers) are dropped — member nodes end
  /// up edge-less and the graph behaves as the coalesced view. Updates
  /// \p CM's EdgesRemoved / SelfLoopsDropped counters and keeps a pointer
  /// to \p CM (not owned; must outlive the graph's use). Call at most
  /// once, before any solver or slicer touches the graph.
  void applyCoalescing(CoalesceMap &CM);

  /// The applied map, or null when the graph is uncoalesced.
  const CoalesceMap *coalesceMap() const { return CMap; }

  /// \c CM.rep(N) when coalesced, N otherwise.
  NodeID coalesceRep(NodeID N) const;

private:
  static uint64_t key(uint32_t A, uint32_t B) {
    return (uint64_t(A) << 32) | B;
  }
  static NodeID lookup(const std::unordered_map<uint64_t, NodeID> &Map,
                       uint64_t K) {
    auto It = Map.find(K);
    return It == Map.end() ? InvalidNode : It->second;
  }
  template <typename MapT, typename KeyT>
  static const std::vector<NodeID> &lookupList(const MapT &Map, KeyT K) {
    static const std::vector<NodeID> Empty;
    auto It = Map.find(K);
    return It == Map.end() ? Empty : It->second;
  }

  NodeID makeNode(Node N);
  void addDirectEdge(NodeID From, NodeID To);
  void buildNodes();
  void buildDirectEdges();
  void buildIndirectEdges();
  void connectKnownCalls(bool ConnectAuxIndirectCalls);
  NodeID defNode(memssa::DefID D) const;

  ir::Module &M;
  const andersen::Andersen &Ander;
  const memssa::MemSSA &SSA;
  ResourceBudget *Budget;

  std::vector<Node> Nodes;
  std::vector<std::vector<NodeID>> DirectSuccs;
  std::vector<std::vector<IndEdge>> IndSuccs;
  /// Membership for indirect-edge dedup: (dst << 32 | obj) per source node.
  std::vector<std::unordered_set<uint64_t>> IndEdgeSet;
  uint64_t DirectEdgeCount = 0;
  uint64_t IndirectEdgeCount = 0;

  std::unordered_map<uint64_t, NodeID> EntryChiMap, ExitMuMap, CallMuMap,
      CallChiMap;
  std::unordered_map<ir::InstID, std::vector<NodeID>> CallMusOfSite,
      CallChisOfSite;
  std::unordered_map<ir::FunID, std::vector<NodeID>> EntryChisOfFun,
      ExitMusOfFun;
  /// MemSSA DefID -> defining SVFG node.
  std::vector<NodeID> DefNode;
  std::unordered_set<uint64_t> ConnectedCallEdges;
  const CoalesceMap *CMap = nullptr;
};

} // namespace svfg
} // namespace vsfs

#endif // VSFS_SVFG_SVFG_H
