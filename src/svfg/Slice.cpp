//===- Slice.cpp - Backward slicing over the SVFG ---------------*- C++ -*-===//

#include "svfg/Slice.h"

#include "andersen/Andersen.h"
#include "svfg/Coalesce.h"

#include <algorithm>

using namespace vsfs;
using namespace vsfs::svfg;
using namespace vsfs::ir;

BackwardSlicer::BackwardSlicer(const SVFG &G)
    : G(G), Preds(G.numNodes()), VisitEpoch(G.numNodes(), 0) {
  buildStaticPreds();
  buildPotentialPreds();
  // Dedup the pred lists: potential edges overlap the static ones for
  // direct calls (and entirely under ConnectAuxIndirectCalls), and BFS
  // cost is proportional to list length.
  for (std::vector<NodeID> &P : Preds) {
    std::sort(P.begin(), P.end());
    P.erase(std::unique(P.begin(), P.end()), P.end());
  }
}

void BackwardSlicer::buildStaticPreds() {
  for (NodeID N = 0; N < G.numNodes(); ++N) {
    for (NodeID S : G.directSuccs(N))
      addPred(S, N);
    for (const IndEdge &E : G.indirectSuccs(N))
      addPred(E.Dst, N);
  }
}

void BackwardSlicer::buildPotentialPreds() {
  // Every interprocedural value flow the solvers can materialise, bounded
  // by the auxiliary call graph (a superset of any flow-sensitively
  // discovered callee set). For each potential call edge CS → f:
  //
  //  - call-μ(CS,o) → entry-χ(f,o) and exit-μ(f,o) → call-χ(CS,o), the
  //    object flows connectCallEdge would add;
  //  - the callsite node itself is a dependence of both callee-side
  //    boundary nodes: the edge only materialises when the solver
  //    processes CS (whose callee pointer's def is a direct pred of CS);
  //  - f's formals are (re)bound when CS is processed, so f's entry
  //    depends on CS; CS's destination is written when f's exit runs, so
  //    CS depends on f's exit.
  const Module &M = G.module();
  const andersen::CallGraph &AuxCG = G.auxAnalysis().callGraph();
  auto HasStaticEdge = [this](NodeID From, NodeID To, ObjID Obj) {
    for (const IndEdge &E : G.indirectSuccs(From))
      if (E.Dst == To && E.Obj == Obj)
        return true;
    return false;
  };
  // The chi/mu lookup tables name the nodes the builder created; on a
  // coalesced graph the flow (and any edge connectCallEdge later adds)
  // lives on the class representatives, so remap through them. The static
  // pred pass needs no such care — it walks the live adjacency lists.
  for (InstID CS : AuxCG.callSites()) {
    NodeID CallNode = G.instNode(CS);
    for (FunID Callee : AuxCG.callees(CS)) {
      for (NodeID MuN : G.callMusOf(CS)) {
        ObjID O = G.node(MuN).Obj;
        NodeID ChiN = G.entryChiNode(Callee, O);
        if (ChiN == InvalidNode)
          continue;
        NodeID RMu = G.coalesceRep(MuN), RChi = G.coalesceRep(ChiN);
        addPred(RChi, RMu);
        addPred(RChi, CallNode);
        if (!HasStaticEdge(RMu, RChi, O))
          PotentialSuccs[RMu].push_back(IndEdge{RChi, O});
      }
      for (NodeID MuN : G.exitMusOf(Callee)) {
        ObjID O = G.node(MuN).Obj;
        NodeID ChiN = G.callChiNode(CS, O);
        if (ChiN == InvalidNode)
          continue;
        NodeID RMu = G.coalesceRep(MuN), RChi = G.coalesceRep(ChiN);
        addPred(RChi, RMu);
        addPred(RChi, CallNode);
        if (!HasStaticEdge(RMu, RChi, O))
          PotentialSuccs[RMu].push_back(IndEdge{RChi, O});
      }
      const Function &F = M.function(Callee);
      addPred(G.instNode(F.Entry), CallNode);
      addPred(CallNode, G.instNode(F.Exit));
    }
  }
}

BackwardSlicer::SliceResult BackwardSlicer::slice(NodeID Root,
                                                  NodeScope &Scope) {
  ++Epoch;
  SliceResult R;
  Queue.clear();
  VisitEpoch[Root] = Epoch;
  Queue.push_back(Root);
  const CoalesceMap *CM = G.coalesceMap();
  for (size_t Head = 0; Head < Queue.size(); ++Head) {
    NodeID N = Queue[Head];
    ++R.SliceNodes;
    if (Scope.insert(N))
      ++R.NewNodes;
    // Keep the scope closed under class membership: an edge-less member
    // contributes nothing to the scoped solve, but anything that fans a
    // member's answer out (ObjectVersioning::consume, inOf) must find it
    // in scope alongside its representative.
    if (CM != nullptr)
      for (NodeID Member : CM->classOf(N))
        if (Scope.insert(Member))
          ++R.NewNodes;
    for (NodeID P : Preds[N]) {
      if (VisitEpoch[P] == Epoch)
        continue;
      VisitEpoch[P] = Epoch;
      Queue.push_back(P);
    }
  }
  return R;
}
