//===- Coalesce.h - Transfer-equivalence SVFG coalescing --------*- C++ -*-===//
///
/// \file
/// A pre-solve static analysis over the SVFG that detects
/// *redundancy-equivalent* nodes — nodes whose transfer behaviour is
/// provably identical at every fixpoint — and coalesces each equivalence
/// class into a single representative, so the flow-sensitive solvers (and
/// the meld-labelling / versioning machinery) pay for each class once
/// (docs/COALESCING.md; ROADMAP item 5).
///
/// Only memory-SSA relay nodes (entry-χ, exit-μ, call-μ, call-χ, MemPhi)
/// are ever coalesced: they have no transfer function of their own — they
/// forward the union of their incoming values for their single object — so
/// equality of incoming value sets implies equality of the forwarded value.
/// Two member flavours arise:
///
///  - \b Forward: the node receives exactly one distinct incoming value;
///    it forwards that value verbatim, so it contracts into the value's
///    carrier node (chain contraction — e.g. every call-μ/exit-μ, which by
///    construction has exactly one producing def).
///  - \b SameIn: same node kind, same object, and the same deduplicated
///    set of incoming value carriers as the class representative (sibling
///    merging — e.g. parallel MemPhis fed by the same defs).
///
/// Instruction nodes are never coalesced (they carry real transfer
/// functions and are the observation points: \c ptsOfObjAt, checker sinks,
/// demand queries all address Inst nodes). The paper's δ nodes (entry-χ of
/// address-taken functions, call-χ of indirect callsites) are excluded
/// unconditionally: on-the-fly call-graph resolution may grow their
/// *incoming* edge sets after this pass has frozen the classes — the same
/// set [OTF-CG]ᴾ prelabels (ObjectVersioning.h).
///
/// The pass is a congruence partition refinement: SCCs of the eligible
/// relay subgraph are condensed first (all relays of one SCC provably share
/// one value — the same theorem meld labelling rests on), then a
/// topological value-numbering sweep hash-buckets nodes by signature and
/// repeats until the partition is stable.
///
//===----------------------------------------------------------------------===//

#ifndef VSFS_SVFG_COALESCE_H
#define VSFS_SVFG_COALESCE_H

#include "svfg/SVFG.h"

#include <cstdint>
#include <vector>

namespace vsfs {
namespace svfg {

/// How a node relates to its equivalence class.
enum class CoalesceRole : uint8_t {
  Self,    ///< Its own representative (possibly of a singleton class).
  Forward, ///< Contracted into the carrier of its single incoming value.
  SameIn,  ///< Merged with the representative sharing its incoming set.
};

/// NodeID → class representative + dense class index, plus the pass's
/// counters. Produced by \c computeTransferEquivalence, consumed by
/// \c SVFG::applyCoalescing and the solving layer's fan-out hooks.
struct CoalesceMap {
  static constexpr uint32_t NoClass = UINT32_MAX;

  /// Final representative per node (identity for uncoalesced nodes). The
  /// representative *forwards the same value* the member forwards: for
  /// SameIn members it is a relay with the same IN set; for Forward
  /// members it is the carrier (possibly a store/free instruction) whose
  /// outgoing value the member relays.
  std::vector<NodeID> RepOf;
  std::vector<CoalesceRole> RoleOf;
  /// Dense index of the node's non-trivial class, or \c NoClass.
  std::vector<uint32_t> ClassIndexOf;
  /// Members of each non-trivial class, representative first.
  std::vector<std::vector<NodeID>> Classes;

  // --- Pass counters (the "coalesce" StatGroup; docs/COALESCING.md) -------
  uint64_t EligibleNodes = 0;    ///< Relay nodes considered (δ excluded).
  uint64_t CoalescedNodes = 0;   ///< Members redirected to a representative.
  uint64_t ForwardMembers = 0;   ///< Chain contractions.
  uint64_t SameInMembers = 0;    ///< Sibling merges.
  uint64_t RefineIterations = 0; ///< Sweeps until the partition was stable.
  uint64_t EdgesRemoved = 0;     ///< Filled by \c SVFG::applyCoalescing.
  uint64_t SelfLoopsDropped = 0; ///< Subset of EdgesRemoved (identity hops).

  NodeID rep(NodeID N) const { return RepOf[N]; }
  bool isMember(NodeID N) const { return RepOf[N] != N; }
  CoalesceRole role(NodeID N) const { return RoleOf[N]; }
  uint32_t classIndex(NodeID N) const { return ClassIndexOf[N]; }
  uint32_t numClasses() const { return static_cast<uint32_t>(Classes.size()); }

  /// All nodes of \p N's class (representative first), or just {N} when it
  /// is in a trivial class. Used to close demand scopes under membership.
  const std::vector<NodeID> &classOf(NodeID N) const {
    static const std::vector<NodeID> Empty;
    uint32_t C = ClassIndexOf[N];
    return C == NoClass ? Empty : Classes[C];
  }
};

/// Computes the transfer-equivalence classes of \p G. Pure analysis: the
/// graph is not modified — pass the result to \c SVFG::applyCoalescing to
/// rewrite the edge lists onto representatives.
CoalesceMap computeTransferEquivalence(const SVFG &G);

} // namespace svfg
} // namespace vsfs

#endif // VSFS_SVFG_COALESCE_H
