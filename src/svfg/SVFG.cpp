//===- SVFG.cpp - Sparse value-flow graph builder ---------------*- C++ -*-===//

#include "svfg/SVFG.h"

#include "svfg/Coalesce.h"

#include <cassert>

using namespace vsfs;
using namespace vsfs::svfg;
using namespace vsfs::ir;
using memssa::DefID;
using memssa::InvalidDef;
using memssa::MemSSA;

SVFG::SVFG(Module &M, const andersen::Andersen &Ander, const MemSSA &SSA,
           bool ConnectAuxIndirectCalls, ResourceBudget *Budget)
    : M(M), Ander(Ander), SSA(SSA), Budget(Budget) {
  // Each build stage gates on the previous one having completed: a
  // cancelled buildNodes leaves the node table short, so the edge builders
  // (which index it) must never run on a partial table.
  auto Exhausted = [this] { return this->Budget && this->Budget->exhausted(); };
  buildNodes();
  if (Exhausted())
    return;
  buildDirectEdges();
  if (Exhausted())
    return;
  buildIndirectEdges();
  if (Exhausted())
    return;
  connectKnownCalls(ConnectAuxIndirectCalls);
}

NodeID SVFG::makeNode(Node N) {
  Nodes.push_back(std::move(N));
  DirectSuccs.emplace_back();
  IndSuccs.emplace_back();
  IndEdgeSet.emplace_back();
  return static_cast<NodeID>(Nodes.size() - 1);
}

void SVFG::buildNodes() {
  // Instruction nodes first so NodeID == InstID for them.
  for (InstID I = 0; I < M.numInstructions(); ++I) {
    if (Budget && !Budget->checkpoint())
      return; // Cancelled: the ctor gates the later build stages.
    const Instruction &Inst = M.inst(I);
    Node N;
    N.Kind = NodeKind::Inst;
    N.Inst = I;
    N.Fun = Inst.Parent;
    N.Block = Inst.Block;
    makeNode(std::move(N));
  }

  DefNode.assign(SSA.defs().size(), InvalidNode);

  for (DefID D = 0; D < SSA.defs().size(); ++D) {
    if (Budget && !Budget->checkpoint())
      return;
    const MemSSA::Def &Def = SSA.defs()[D];
    switch (Def.Kind) {
    case MemSSA::DefKind::StoreChi:
      DefNode[D] = instNode(Def.Inst);
      break;
    case MemSSA::DefKind::EntryChi: {
      Node N;
      N.Kind = NodeKind::EntryChi;
      N.Inst = Def.Inst;
      N.Obj = Def.Obj;
      N.Fun = Def.Fun;
      NodeID Id = makeNode(std::move(N));
      EntryChiMap.emplace(key(Def.Fun, Def.Obj), Id);
      EntryChisOfFun[Def.Fun].push_back(Id);
      DefNode[D] = Id;
      break;
    }
    case MemSSA::DefKind::CallChi: {
      Node N;
      N.Kind = NodeKind::CallChi;
      N.Inst = Def.Inst;
      N.Obj = Def.Obj;
      N.Fun = Def.Fun;
      NodeID Id = makeNode(std::move(N));
      CallChiMap.emplace(key(Def.Inst, Def.Obj), Id);
      CallChisOfSite[Def.Inst].push_back(Id);
      DefNode[D] = Id;
      break;
    }
    case MemSSA::DefKind::MemPhi: {
      Node N;
      N.Kind = NodeKind::MemPhi;
      N.Obj = Def.Obj;
      N.Fun = Def.Fun;
      N.Block = Def.Block;
      NodeID Id = makeNode(std::move(N));
      DefNode[D] = Id;
      break;
    }
    }
  }

  // Call-mu and exit-mu uses get their own nodes too.
  for (const MemSSA::Mu &U : SSA.mus()) {
    if (Budget && !Budget->checkpoint())
      return;
    if (U.Kind == MemSSA::MuKind::CallMu) {
      Node N;
      N.Kind = NodeKind::CallMu;
      N.Inst = U.Inst;
      N.Obj = U.Obj;
      N.Fun = M.inst(U.Inst).Parent;
      NodeID Id = makeNode(std::move(N));
      CallMuMap.emplace(key(U.Inst, U.Obj), Id);
      CallMusOfSite[U.Inst].push_back(Id);
    } else if (U.Kind == MemSSA::MuKind::ExitMu) {
      Node N;
      N.Kind = NodeKind::ExitMu;
      N.Inst = U.Inst;
      N.Obj = U.Obj;
      N.Fun = M.inst(U.Inst).Parent;
      NodeID Id = makeNode(std::move(N));
      ExitMuMap.emplace(key(M.inst(U.Inst).Parent, U.Obj), Id);
      ExitMusOfFun[M.inst(U.Inst).Parent].push_back(Id);
    }
  }
}

void SVFG::addDirectEdge(NodeID From, NodeID To) {
  DirectSuccs[From].push_back(To);
  ++DirectEdgeCount;
}

bool SVFG::addIndirectEdge(NodeID From, NodeID To, ObjID Obj) {
  if (CMap) {
    From = CMap->rep(From);
    To = CMap->rep(To);
    // A relay self-loop forwards a node's IN into itself — a no-op. (A
    // store/free self-loop is kept: it feeds the def's OUT back into its
    // IN, which is a real flow the original graph routed via a relay.)
    if (From == To && Nodes[From].Kind != NodeKind::Inst)
      return false;
  }
  if (!IndEdgeSet[From].insert(key(To, Obj)).second)
    return false;
  IndSuccs[From].push_back(IndEdge{To, Obj});
  ++IndirectEdgeCount;
  return true;
}

bool SVFG::hasDirectEdge(NodeID From, NodeID To) const {
  if (From >= DirectSuccs.size())
    return false;
  for (NodeID S : DirectSuccs[From])
    if (S == To)
      return true;
  return false;
}

NodeID SVFG::coalesceRep(NodeID N) const { return CMap ? CMap->rep(N) : N; }

void SVFG::applyCoalescing(CoalesceMap &CM) {
  assert(!CMap && "coalescing is applied at most once");
  assert(CM.RepOf.size() == Nodes.size() && "map built for this graph");
  const uint64_t Before = IndirectEdgeCount;
  std::vector<std::vector<IndEdge>> NewSuccs(Nodes.size());
  std::vector<std::unordered_set<uint64_t>> NewSet(Nodes.size());
  uint64_t Count = 0;
  for (NodeID S = 0; S < numNodes(); ++S) {
    NodeID RS = CM.rep(S);
    for (const IndEdge &E : IndSuccs[S]) {
      NodeID RD = CM.rep(E.Dst);
      if (RS == RD && Nodes[RS].Kind != NodeKind::Inst) {
        ++CM.SelfLoopsDropped;
        continue;
      }
      if (NewSet[RS].insert(key(RD, E.Obj)).second) {
        NewSuccs[RS].push_back(IndEdge{RD, E.Obj});
        ++Count;
      }
    }
  }
  IndSuccs = std::move(NewSuccs);
  IndEdgeSet = std::move(NewSet);
  IndirectEdgeCount = Count;
  CM.EdgesRemoved = Before - Count;
  CMap = &CM;
}

void SVFG::buildDirectEdges() {
  // Single definition site per top-level variable (partial SSA).
  std::vector<NodeID> DefOfVar(M.symbols().numVars(), InvalidNode);
  for (InstID I = 0; I < M.numInstructions(); ++I) {
    const Instruction &Inst = M.inst(I);
    if (Inst.definesVar())
      DefOfVar[Inst.Dst] = instNode(I);
    if (Inst.Kind == InstKind::FunEntry)
      for (VarID P : Inst.entryParams())
        DefOfVar[P] = instNode(I);
  }

  std::vector<VarID> Uses;
  for (InstID I = 0; I < M.numInstructions(); ++I) {
    if (Budget && !Budget->checkpoint())
      return;
    Uses.clear();
    collectUsedVars(M.inst(I), Uses);
    for (VarID V : Uses)
      if (DefOfVar[V] != InvalidNode)
        addDirectEdge(DefOfVar[V], instNode(I));
  }
}

void SVFG::buildIndirectEdges() {
  // χ operands: the old value of o flows into the redefining node
  // (weak-update path), and MemPhi operands flow into the phi.
  for (DefID D = 0; D < SSA.defs().size(); ++D) {
    if (Budget && !Budget->checkpoint())
      return;
    const MemSSA::Def &Def = SSA.defs()[D];
    if (Def.Operand != InvalidDef)
      addIndirectEdge(DefNode[Def.Operand], DefNode[D], Def.Obj);
    for (DefID Op : Def.PhiOperands)
      if (Op != InvalidDef)
        addIndirectEdge(DefNode[Op], DefNode[D], Def.Obj);
  }

  // μ uses: the reaching definition flows into the reading node.
  for (const MemSSA::Mu &U : SSA.mus()) {
    if (Budget && !Budget->checkpoint())
      return;
    if (U.Reaching == InvalidDef)
      continue;
    NodeID UseNode = InvalidNode;
    switch (U.Kind) {
    case MemSSA::MuKind::LoadMu:
      UseNode = instNode(U.Inst);
      break;
    case MemSSA::MuKind::CallMu:
      UseNode = callMuNode(U.Inst, U.Obj);
      break;
    case MemSSA::MuKind::ExitMu:
      UseNode = exitMuNode(M.inst(U.Inst).Parent, U.Obj);
      break;
    }
    assert(UseNode != InvalidNode && "mu node exists");
    addIndirectEdge(DefNode[U.Reaching], UseNode, U.Obj);
  }
}

void SVFG::connectKnownCalls(bool ConnectAuxIndirectCalls) {
  std::vector<std::pair<NodeID, IndEdge>> Ignored;
  for (InstID CS : Ander.callGraph().callSites()) {
    if (Budget && !Budget->checkpoint())
      return;
    const Instruction &Call = M.inst(CS);
    if (Call.isIndirectCall() && !ConnectAuxIndirectCalls)
      continue;
    for (FunID Callee : Ander.callGraph().callees(CS))
      connectCallEdge(CS, Callee, Ignored);
  }
}

void SVFG::connectCallEdge(InstID CS, FunID Callee,
                           std::vector<std::pair<NodeID, IndEdge>> &Added) {
  if (!ConnectedCallEdges.insert(key(CS, Callee)).second)
    return;
  // Objects flowing in: callsite μ meets the callee's entry χ. Endpoints
  // are reported (and wired) through their class representatives when the
  // graph is coalesced — members are edge-less, so the solvers must see
  // the node that actually carries the flow.
  for (NodeID MuN : callMusOf(CS)) {
    ObjID O = Nodes[MuN].Obj;
    NodeID ChiN = entryChiNode(Callee, O);
    if (ChiN == InvalidNode)
      continue;
    if (addIndirectEdge(MuN, ChiN, O))
      Added.emplace_back(coalesceRep(MuN), IndEdge{coalesceRep(ChiN), O});
  }
  // Objects flowing out: callee's exit μ meets the callsite χ.
  for (NodeID MuN : exitMusOf(Callee)) {
    ObjID O = Nodes[MuN].Obj;
    NodeID ChiN = callChiNode(CS, O);
    if (ChiN == InvalidNode)
      continue;
    if (addIndirectEdge(MuN, ChiN, O))
      Added.emplace_back(coalesceRep(MuN), IndEdge{coalesceRep(ChiN), O});
  }
}
