//===- Slice.h - Backward slicing over the SVFG -----------------*- C++ -*-===//
///
/// \file
/// Reverse-reachability support for demand-driven solving (docs/QUERIES.md).
///
/// A query about a program position only depends on the SVFG nodes whose
/// values can flow into it: the *backward slice* of the query node. A
/// flow-sensitive solver restricted to a backward-closed node set computes
/// exactly the whole-program fixpoint at every in-slice position, because
/// no out-of-slice node can influence an in-slice one — that closure is the
/// entire soundness argument of `--mode=demand`, so the slicer must
/// over-approximate every dependence the solvers exercise:
///
///  - direct edges (top-level def-use) and indirect edges (object-labelled
///    memory def-use) present in the graph;
///  - *potential* interprocedural edges: with on-the-fly call-graph
///    solving the SVFG initially lacks the call-μ → entry-χ and
///    exit-μ → call-χ edges of indirect calls. The auxiliary Andersen call
///    graph over-approximates every callee the flow-sensitive solvers can
///    discover, so its edges bound all future materialisations;
///  - discovery and binding dependences: a late call edge only appears
///    when the solver processes the callsite (so the callsite — and
///    transitively the callee pointer's def — is a dependence of the
///    callee-side boundary nodes), formal parameters depend on every
///    potential caller, and call destinations depend on the callee's exit.
///
/// \c NodeScope is the dense membership set the scoped solvers test against;
/// \c BackwardSlicer owns the reverse adjacency (static + potential) and
/// grows a cumulative scope per query.
///
//===----------------------------------------------------------------------===//

#ifndef VSFS_SVFG_SLICE_H
#define VSFS_SVFG_SLICE_H

#include "svfg/SVFG.h"

#include <cstdint>
#include <vector>

namespace vsfs {
namespace svfg {

/// A subset of the SVFG's nodes, with O(1) membership. Scoped solvers hold
/// a nullable pointer to one: null means "the full graph".
class NodeScope {
public:
  explicit NodeScope(uint32_t NumNodes) : Member(NumNodes, 0) {}

  bool contains(NodeID N) const { return Member[N] != 0; }

  /// Returns true when \p N was newly inserted.
  bool insert(NodeID N) {
    if (Member[N])
      return false;
    Member[N] = 1;
    ++Count;
    return true;
  }

  uint32_t size() const { return Count; }
  uint32_t numNodes() const { return static_cast<uint32_t>(Member.size()); }

private:
  std::vector<char> Member;
  uint32_t Count = 0;
};

/// Computes backward slices of SVFG nodes over the static graph plus every
/// potential interprocedural dependence (see the file comment). Built once
/// per graph; the reverse adjacency is immutable, so slices stay valid as
/// solvers materialise call edges (materialised edges are always a subset
/// of the potential ones).
class BackwardSlicer {
public:
  explicit BackwardSlicer(const SVFG &G);

  /// Result of one slice request.
  struct SliceResult {
    uint32_t SliceNodes = 0; ///< |backward slice of the root| (incl. root).
    uint32_t NewNodes = 0;   ///< How many of those were not yet in scope.
  };

  /// Backward-reachability BFS from \p Root; every reached node (and the
  /// root itself) is added to \p Scope. NewNodes == 0 means the scope
  /// already covered the whole slice — the memoisation hit test.
  SliceResult slice(NodeID Root, NodeScope &Scope);

  /// The potential *forward* indirect edges of \p N that the static graph
  /// lacks (interprocedural flows of aux-resolved indirect calls). Checker
  /// clients union these with \c G.indirectSuccs(N) to walk the graph the
  /// solvers could at most materialise. Empty when the SVFG was built with
  /// ConnectAuxIndirectCalls (the edges then exist statically).
  const std::vector<IndEdge> &potentialIndirectSuccs(NodeID N) const {
    static const std::vector<IndEdge> Empty;
    auto It = PotentialSuccs.find(N);
    return It == PotentialSuccs.end() ? Empty : It->second;
  }

  const SVFG &graph() const { return G; }

private:
  void addPred(NodeID Of, NodeID Pred) { Preds[Of].push_back(Pred); }
  void buildStaticPreds();
  void buildPotentialPreds();

  const SVFG &G;
  /// Reverse adjacency: every node that may influence the key node.
  std::vector<std::vector<NodeID>> Preds;
  /// Potential forward indirect edges keyed by source (sparse: only
  /// call-μ / exit-μ nodes of aux-resolved calls carry any).
  std::unordered_map<NodeID, std::vector<IndEdge>> PotentialSuccs;
  /// Scratch for slice() BFS, epoch-tagged so repeated slices need no
  /// clearing sweep.
  std::vector<uint32_t> VisitEpoch;
  uint32_t Epoch = 0;
  std::vector<NodeID> Queue;
};

} // namespace svfg
} // namespace vsfs

#endif // VSFS_SVFG_SLICE_H
