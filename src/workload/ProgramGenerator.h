//===- ProgramGenerator.h - Synthetic partial-SSA programs ------*- C++ -*-===//
///
/// \file
/// Deterministic, seeded generator of synthetic programs in the Table I
/// instruction set. Substitutes for the paper's 15 open-source LLVM-bitcode
/// benchmarks (see DESIGN.md): the generated programs exercise the
/// structural features that drive SFS's redundancy —
///
///  - heap-intensive allocation with objects stored/loaded at many sites,
///  - long def-use chains over shared (global) objects across functions,
///  - control-flow joins producing MemPhis,
///  - aggregate objects accessed through field addresses,
///  - function-pointer tables driving indirect calls (δ nodes).
///
/// Generation is reproducible: the same \c GenConfig (including seed)
/// produces the same module.
///
//===----------------------------------------------------------------------===//

#ifndef VSFS_WORKLOAD_PROGRAMGENERATOR_H
#define VSFS_WORKLOAD_PROGRAMGENERATOR_H

#include "checker/Checker.h"
#include "ir/Module.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace vsfs {
namespace workload {

/// Knobs controlling the synthetic program's shape.
struct GenConfig {
  uint64_t Seed = 1;

  /// Number of functions besides main (and __global_init__).
  uint32_t NumFunctions = 8;
  /// Blocks per function (before the unified exit).
  uint32_t BlocksPerFunction = 4;
  /// Instructions per block, on average.
  uint32_t InstsPerBlock = 6;
  /// Global variables; a fraction become function-pointer slots.
  uint32_t NumGlobals = 6;
  /// Max flattened fields for aggregate allocations.
  uint32_t MaxFields = 4;
  /// Parameters per function.
  uint32_t ParamsPerFunction = 2;

  // Instruction mix (relative weights; normalised internally).
  double AllocWeight = 1.0;
  double CopyWeight = 1.0;
  double PhiWeight = 0.6;
  double FieldWeight = 0.6;
  double LoadWeight = 2.0;
  double StoreWeight = 2.0;
  double CallWeight = 0.7;

  /// Fraction of allocs on the heap (never singletons).
  double HeapFraction = 0.5;
  /// Fraction of calls made through a function pointer.
  double IndirectCallFraction = 0.2;
  /// Fraction of load/store pointer operands drawn from globals (drives
  /// cross-function sharing of the same objects' points-to sets).
  double GlobalAccessFraction = 0.4;
  /// Probability a block gets a second (conditional) successor.
  double BranchProbability = 0.45;
  /// Probability an extra edge becomes a back edge (loop).
  double LoopProbability = 0.2;

  /// Inject the deterministic bug patterns (and their clean variants) into
  /// main's entry block; see docs/CHECKERS.md. The injected code is
  /// hermetic — its variables and objects never enter the random pools —
  /// so ground truth is exact by construction.
  bool InjectBugs = false;
};

/// Generates a verified module. The module is entry-linked and ready for
/// AnalysisContext::build().
std::unique_ptr<ir::Module> generateProgram(const GenConfig &Config);

/// As above; when \p GT is non-null and Config.InjectBugs is set, fills it
/// with every injected bug site plus every heap allocation the program
/// never frees (the full leak ground truth).
std::unique_ptr<ir::Module> generateProgram(const GenConfig &Config,
                                            checker::GroundTruth *GT);

} // namespace workload
} // namespace vsfs

#endif // VSFS_WORKLOAD_PROGRAMGENERATOR_H
