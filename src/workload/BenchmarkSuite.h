//===- BenchmarkSuite.h - The 15 synthetic benchmark presets ----*- C++ -*-===//
///
/// \file
/// Named generator presets standing in for the paper's 15 open-source
/// benchmarks (Table II). Each preset scales and shapes the synthetic
/// generator to echo its namesake's character — small utilities (du, dpkg),
/// heap-intensive build tools (bake, ninja), mid-size interpreters
/// (janet, mruby), and the large, store/load-dense programs where SFS's
/// redundancy explodes (bash, lynx, hyriseConsole).
///
/// Absolute sizes are laptop-scale (seconds, not hours); the paper's
/// *relative* ordering and the heap-intensity gradient are what matter for
/// reproducing the shape of Tables II and III.
///
//===----------------------------------------------------------------------===//

#ifndef VSFS_WORKLOAD_BENCHMARKSUITE_H
#define VSFS_WORKLOAD_BENCHMARKSUITE_H

#include "workload/ProgramGenerator.h"

#include <string>
#include <vector>

namespace vsfs {
namespace workload {

/// One benchmark preset.
struct BenchSpec {
  std::string Name;
  std::string Description;
  GenConfig Config;
};

/// The full 15-preset suite, ordered as in Table II.
std::vector<BenchSpec> benchmarkSuite();

/// A reduced suite for quick runs (the paper's 8 GB tier analogue).
std::vector<BenchSpec> quickSuite();

/// Looks up a preset by name; returns false if unknown.
bool findBenchmark(const std::string &Name, BenchSpec &Out);

} // namespace workload
} // namespace vsfs

#endif // VSFS_WORKLOAD_BENCHMARKSUITE_H
