//===- ProgramGenerator.cpp - Synthetic partial-SSA programs ----*- C++ -*-===//

#include "workload/ProgramGenerator.h"

#include "ir/IRBuilder.h"

#include <cassert>
#include <cstdio>
#include <random>

using namespace vsfs;
using namespace vsfs::workload;
using namespace vsfs::ir;

namespace {

/// All the state threaded through generation of one module.
class Generator {
public:
  Generator(const GenConfig &Config)
      : Config(Config), M(std::make_unique<Module>()), B(*M),
        Rng(Config.Seed) {}

  std::unique_ptr<Module> run() {
    declareFunctions();
    makeGlobals();
    buildFunction(M->main());
    for (FunID F : Funs)
      buildFunction(F);
    linkProgramEntry(*M);
    return std::move(M);
  }

private:
  // --- Random helpers (modulo bias is irrelevant here; explicit arithmetic
  // keeps results identical across standard libraries) ------------------

  uint64_t next() { return Rng(); }
  uint32_t below(uint32_t N) {
    assert(N > 0);
    return static_cast<uint32_t>(next() % N);
  }
  bool chance(double P) {
    return static_cast<double>(next() % 1000000) < P * 1000000.0;
  }

  template <typename T> T &pick(std::vector<T> &V) { return V[below(V.size())]; }

  // --- Module-level pieces ------------------------------------------------

  void declareFunctions() {
    FunID Main = M->makeFunction("main");
    M->setMain(Main);
    for (uint32_t I = 0; I < Config.NumFunctions; ++I)
      Funs.push_back(M->makeFunction(numberedName('f', I)));
    // Call targets: the generated functions, or main itself (recursion) in
    // the degenerate zero-function configuration.
    CallTargets = Funs;
    if (CallTargets.empty())
      CallTargets.push_back(Main);
  }

  void makeGlobals() {
    for (uint32_t I = 0; I < Config.NumGlobals; ++I) {
      uint32_t Fields = 1 + below(Config.MaxFields);
      VarID G = B.addGlobal(numberedName('g', I), Fields);
      Globals.push_back(G);
      // Roughly a third of globals become function-pointer slots feeding
      // indirect calls; the rest may point at each other.
      if (I % 3 == 0) {
        B.addGlobalInit(G, B.functionAddress(pick(CallTargets)));
        if (chance(0.5))
          B.addGlobalInit(G, B.functionAddress(pick(CallTargets)));
        FunPtrGlobals.push_back(G);
      } else if (!Globals.empty() && chance(0.5)) {
        B.addGlobalInit(G, pick(Globals));
      }
    }
  }

  // --- Function bodies -----------------------------------------------------

  // snprintf instead of "v" + to_string: the latter trips GCC 12's
  // false-positive -Wrestrict (PR 105329) under -O2, and check.sh builds
  // with -Werror.
  std::string freshName() { return numberedName('v', NameCounter++); }

  static std::string numberedName(char Prefix, uint32_t N) {
    char Buf[16];
    std::snprintf(Buf, sizeof(Buf), "%c%u", Prefix, N);
    return Buf;
  }

  VarID pickValue() { return pick(Pool); }

  /// Pointer operands are biased toward objects shared across functions
  /// (globals) and locally allocated objects, so loads and stores hit real
  /// abstract objects often.
  VarID pickPointer() {
    if (!Globals.empty() && chance(Config.GlobalAccessFraction))
      return pick(Globals);
    if (!PtrPool.empty() && chance(0.8))
      return pick(PtrPool);
    return pickValue();
  }

  void emitRandomInst() {
    double Total = Config.AllocWeight + Config.CopyWeight + Config.PhiWeight +
                   Config.FieldWeight + Config.LoadWeight +
                   Config.StoreWeight + Config.CallWeight;
    double Roll = (next() % 1000000) / 1000000.0 * Total;

    auto Takes = [&Roll](double W) {
      if (Roll < W)
        return true;
      Roll -= W;
      return false;
    };

    if (Takes(Config.AllocWeight)) {
      bool Heap = chance(Config.HeapFraction);
      uint32_t Fields = 1 + below(Config.MaxFields);
      VarID V = B.alloc(freshName(), numberedName('o', NameCounter),
                        Heap ? ObjKind::Heap : ObjKind::Stack,
                        /*Singleton=*/true, Fields);
      Pool.push_back(V);
      PtrPool.push_back(V);
      return;
    }
    if (Takes(Config.CopyWeight)) {
      Pool.push_back(B.copy(freshName(), pickValue()));
      return;
    }
    if (Takes(Config.PhiWeight)) {
      Pool.push_back(B.phi(freshName(), {pickValue(), pickValue()}));
      return;
    }
    if (Takes(Config.FieldWeight)) {
      VarID V = B.fieldAddr(freshName(), pickPointer(),
                            below(Config.MaxFields + 1));
      Pool.push_back(V);
      PtrPool.push_back(V);
      return;
    }
    if (Takes(Config.LoadWeight)) {
      VarID V = B.load(freshName(), pickPointer());
      Pool.push_back(V);
      if (chance(0.5))
        PtrPool.push_back(V); // Loaded pointers get dereferenced too.
      return;
    }
    if (Takes(Config.StoreWeight)) {
      B.store(pickValue(), pickPointer());
      return;
    }

    // Call.
    FunID Callee = pick(CallTargets);
    std::vector<VarID> Args;
    for (uint32_t I = 0; I < Config.ParamsPerFunction; ++I)
      Args.push_back(pickValue());
    bool WantIndirect =
        !FunPtrGlobals.empty() && chance(Config.IndirectCallFraction);
    VarID Dst;
    if (WantIndirect) {
      VarID FP = B.load(freshName(), pick(FunPtrGlobals));
      Dst = B.callIndirect(freshName(), FP, Args);
    } else {
      Dst = B.callDirect(freshName(), Callee, Args);
    }
    Pool.push_back(Dst);
  }

  void buildFunction(FunID F) {
    std::vector<std::string> ParamNames;
    for (uint32_t I = 0; I < Config.ParamsPerFunction; ++I)
      ParamNames.push_back(numberedName('p', I));
    B.startFunction(M->function(F).Name, ParamNames);

    Pool.clear();
    PtrPool.clear();
    for (VarID P : M->function(F).Params)
      Pool.push_back(P);
    for (VarID G : Globals)
      Pool.push_back(G);

    const uint32_t NumBlocks = std::max<uint32_t>(1, Config.BlocksPerFunction);
    std::vector<BlockID> Blocks;
    Blocks.push_back(0); // Implicit entry block.
    for (uint32_t I = 1; I < NumBlocks; ++I)
      Blocks.push_back(B.block(numberedName('b', I)));
    // An optional early-return block exercises multi-ret unification.
    BlockID EarlyRet = InvalidBlock;
    if (NumBlocks >= 3 && chance(0.5))
      EarlyRet = B.block("early");

    for (uint32_t I = 0; I < NumBlocks; ++I) {
      B.setInsertPoint(Blocks[I]);
      uint32_t Count = 1 + below(std::max<uint32_t>(1, 2 * Config.InstsPerBlock));
      for (uint32_t K = 0; K < Count; ++K)
        emitRandomInst();

      if (I + 1 == NumBlocks) {
        B.ret(pickValue());
        continue;
      }
      if (chance(Config.BranchProbability)) {
        BlockID Extra;
        if (EarlyRet != InvalidBlock && chance(0.3)) {
          Extra = EarlyRet;
        } else if (I > 0 && chance(Config.LoopProbability)) {
          Extra = Blocks[1 + below(I)]; // Back edge (loop), never to entry.
        } else {
          Extra = Blocks[I + 1 + below(NumBlocks - I - 1)]; // Forward jump.
        }
        B.br(Blocks[I + 1], Extra);
      } else {
        B.br(Blocks[I + 1]);
      }
    }

    if (EarlyRet != InvalidBlock) {
      B.setInsertPoint(EarlyRet);
      B.ret(pickValue());
    }
    B.finishFunction();
  }

  const GenConfig &Config;
  std::unique_ptr<Module> M;
  IRBuilder B;
  std::mt19937_64 Rng;

  std::vector<FunID> Funs;
  std::vector<FunID> CallTargets;
  std::vector<VarID> Globals;
  std::vector<VarID> FunPtrGlobals;
  std::vector<VarID> Pool;    ///< All usable values in the current function.
  std::vector<VarID> PtrPool; ///< Values likely to point at objects.
  uint32_t NameCounter = 0;
};

} // namespace

std::unique_ptr<Module>
vsfs::workload::generateProgram(const GenConfig &Config) {
  Generator G(Config);
  return G.run();
}
