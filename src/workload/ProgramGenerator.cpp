//===- ProgramGenerator.cpp - Synthetic partial-SSA programs ----*- C++ -*-===//

#include "workload/ProgramGenerator.h"

#include "ir/IRBuilder.h"

#include <cassert>
#include <cstdio>
#include <random>

using namespace vsfs;
using namespace vsfs::workload;
using namespace vsfs::ir;

namespace {

/// All the state threaded through generation of one module.
class Generator {
public:
  Generator(const GenConfig &Config, checker::GroundTruth *GT)
      : Config(Config), GT(GT), M(std::make_unique<Module>()), B(*M),
        Rng(Config.Seed) {}

  std::unique_ptr<Module> run() {
    declareFunctions();
    makeGlobals();
    buildFunction(M->main());
    for (FunID F : Funs)
      buildFunction(F);
    linkProgramEntry(*M);
    return std::move(M);
  }

private:
  // --- Random helpers (modulo bias is irrelevant here; explicit arithmetic
  // keeps results identical across standard libraries) ------------------

  uint64_t next() { return Rng(); }
  uint32_t below(uint32_t N) {
    assert(N > 0);
    return static_cast<uint32_t>(next() % N);
  }
  bool chance(double P) {
    return static_cast<double>(next() % 1000000) < P * 1000000.0;
  }

  template <typename T> T &pick(std::vector<T> &V) { return V[below(V.size())]; }

  // --- Module-level pieces ------------------------------------------------

  void declareFunctions() {
    FunID Main = M->makeFunction("main");
    M->setMain(Main);
    for (uint32_t I = 0; I < Config.NumFunctions; ++I)
      Funs.push_back(M->makeFunction(numberedName('f', I)));
    // Call targets: the generated functions, or main itself (recursion) in
    // the degenerate zero-function configuration.
    CallTargets = Funs;
    if (CallTargets.empty())
      CallTargets.push_back(Main);
  }

  void makeGlobals() {
    for (uint32_t I = 0; I < Config.NumGlobals; ++I) {
      uint32_t Fields = 1 + below(Config.MaxFields);
      VarID G = B.addGlobal(numberedName('g', I), Fields);
      Globals.push_back(G);
      // Roughly a third of globals become function-pointer slots feeding
      // indirect calls; the rest may point at each other.
      if (I % 3 == 0) {
        B.addGlobalInit(G, B.functionAddress(pick(CallTargets)));
        if (chance(0.5))
          B.addGlobalInit(G, B.functionAddress(pick(CallTargets)));
        FunPtrGlobals.push_back(G);
      } else if (!Globals.empty() && chance(0.5)) {
        B.addGlobalInit(G, pick(Globals));
      }
    }
  }

  // --- Function bodies -----------------------------------------------------

  // snprintf instead of "v" + to_string: the latter trips GCC 12's
  // false-positive -Wrestrict (PR 105329) under -O2, and check.sh builds
  // with -Werror.
  std::string freshName() { return numberedName('v', NameCounter++); }

  static std::string numberedName(char Prefix, uint32_t N) {
    char Buf[16];
    std::snprintf(Buf, sizeof(Buf), "%c%u", Prefix, N);
    return Buf;
  }

  VarID pickValue() { return pick(Pool); }

  /// Pointer operands are biased toward objects shared across functions
  /// (globals) and locally allocated objects, so loads and stores hit real
  /// abstract objects often.
  VarID pickPointer() {
    if (!Globals.empty() && chance(Config.GlobalAccessFraction))
      return pick(Globals);
    if (!PtrPool.empty() && chance(0.8))
      return pick(PtrPool);
    return pickValue();
  }

  void emitRandomInst() {
    double Total = Config.AllocWeight + Config.CopyWeight + Config.PhiWeight +
                   Config.FieldWeight + Config.LoadWeight +
                   Config.StoreWeight + Config.CallWeight;
    double Roll = (next() % 1000000) / 1000000.0 * Total;

    auto Takes = [&Roll](double W) {
      if (Roll < W)
        return true;
      Roll -= W;
      return false;
    };

    if (Takes(Config.AllocWeight)) {
      bool Heap = chance(Config.HeapFraction);
      uint32_t Fields = 1 + below(Config.MaxFields);
      // Random code never frees, so every random heap allocation is a
      // genuine leak and belongs in the ground truth.
      if (Heap)
        recordBug(checker::CheckKind::Leak, nextInst());
      VarID V = B.alloc(freshName(), numberedName('o', NameCounter),
                        Heap ? ObjKind::Heap : ObjKind::Stack,
                        /*Singleton=*/true, Fields);
      Pool.push_back(V);
      PtrPool.push_back(V);
      return;
    }
    if (Takes(Config.CopyWeight)) {
      Pool.push_back(B.copy(freshName(), pickValue()));
      return;
    }
    if (Takes(Config.PhiWeight)) {
      Pool.push_back(B.phi(freshName(), {pickValue(), pickValue()}));
      return;
    }
    if (Takes(Config.FieldWeight)) {
      VarID V = B.fieldAddr(freshName(), pickPointer(),
                            below(Config.MaxFields + 1));
      Pool.push_back(V);
      PtrPool.push_back(V);
      return;
    }
    if (Takes(Config.LoadWeight)) {
      VarID V = B.load(freshName(), pickPointer());
      Pool.push_back(V);
      if (chance(0.5))
        PtrPool.push_back(V); // Loaded pointers get dereferenced too.
      return;
    }
    if (Takes(Config.StoreWeight)) {
      B.store(pickValue(), pickPointer());
      return;
    }

    // Call.
    FunID Callee = pick(CallTargets);
    std::vector<VarID> Args;
    for (uint32_t I = 0; I < Config.ParamsPerFunction; ++I)
      Args.push_back(pickValue());
    bool WantIndirect =
        !FunPtrGlobals.empty() && chance(Config.IndirectCallFraction);
    VarID Dst;
    if (WantIndirect) {
      VarID FP = B.load(freshName(), pick(FunPtrGlobals));
      Dst = B.callIndirect(freshName(), FP, Args);
    } else {
      Dst = B.callDirect(freshName(), Callee, Args);
    }
    Pool.push_back(Dst);
  }

  // --- Bug injection -------------------------------------------------------

  /// Next instruction ID the builder will emit; recorded *before* emitting a
  /// sink so ground-truth sites are exact.
  InstID nextInst() const { return M->numInstructions(); }

  void recordBug(checker::CheckKind K, InstID Sink) {
    if (GT)
      GT->Sites.push_back({K, Sink});
  }

  /// Emits the deterministic bug patterns (and their clean variants) at the
  /// head of main's entry block. Every variable and object here is hermetic:
  /// none enters Pool/PtrPool, so random code can never alias into them and
  /// the recorded ground truth is exact. The clean variants are built around
  /// a strongly-updated singleton slot, which flow-sensitive backends resolve
  /// precisely while a flow-insensitive auxiliary (Andersen) conflates both
  /// stores — producing ander-only false positives for uaf and null.
  void injectBugPatterns() {
    using checker::CheckKind;

    // (1) Use-after-free: free then load through the same pointer.
    VarID HU = B.alloc("bug.uaf.p", "bug.uaf.obj", ObjKind::Heap,
                       /*Singleton=*/false, 1);
    VarID VU = B.alloc("bug.uaf.v", "bug.uaf.val", ObjKind::Stack,
                       /*Singleton=*/true, 1);
    B.store(VU, HU); // Initialise so the later load is not a null source.
    B.free(HU);
    recordBug(CheckKind::UseAfterFree, nextInst());
    B.load("bug.uaf.use", HU);

    // (2) Clean use-after-free (ander-only FP): a singleton slot holds A,
    // A is freed, the slot is strongly updated to B, and the reloaded
    // pointer is used. Flow-sensitive backends see pt(pb) = {B} and stay
    // silent; Andersen sees {A, B} and reports. B is never freed at
    // runtime, so its allocation is part of the leak ground truth.
    VarID Slot = B.alloc("ok.uaf.slot", "ok.uaf.slot_obj", ObjKind::Stack,
                         /*Singleton=*/true, 1);
    VarID H1 = B.alloc("ok.uaf.a", "ok.uaf.obj_a", ObjKind::Heap,
                       /*Singleton=*/false, 1);
    recordBug(CheckKind::Leak, nextInst());
    VarID H2 = B.alloc("ok.uaf.b", "ok.uaf.obj_b", ObjKind::Heap,
                       /*Singleton=*/false, 1);
    VarID VA = B.alloc("ok.uaf.v", "ok.uaf.val", ObjKind::Stack,
                       /*Singleton=*/true, 1);
    B.store(VA, H1); // Initialise both heap cells (avoid null cross-talk).
    B.store(VA, H2);
    B.store(H1, Slot);
    VarID PA = B.load("ok.uaf.pa", Slot);
    B.free(PA);
    B.store(H2, Slot); // Strong update: kills A in the slot.
    VarID PB = B.load("ok.uaf.pb", Slot);
    B.load("ok.uaf.use", PB);

    // (3) Double-free: two frees of the same allocation.
    VarID HD = B.alloc("bug.dfree.p", "bug.dfree.obj", ObjKind::Heap,
                       /*Singleton=*/false, 1);
    B.free(HD);
    recordBug(CheckKind::DoubleFree, nextInst());
    B.free(HD);

    // (4) Null deref: load from a never-initialised cell (the IR's model of
    // null), then dereference the result.
    VarID CZ = B.alloc("bug.null.cell", "bug.null.cell_obj", ObjKind::Stack,
                       /*Singleton=*/true, 1);
    // The null-producing load reads the never-initialised cell, so it is
    // itself an uninitialised read (the uread spec's sink).
    recordBug(CheckKind::UninitRead, nextInst());
    VarID NZ = B.load("bug.null.p", CZ);
    recordBug(CheckKind::NullDeref, nextInst());
    B.load("bug.null.use", NZ);

    // (5) Clean null deref (ander-only FP): the slot first holds a pointer
    // to never-initialised cell E, then is strongly updated to point at
    // initialised cell F. Flow-sensitive backends load only from F;
    // Andersen's pt(pf) = {E, F} with E empty everywhere makes the final
    // dereference look null.
    VarID S2 = B.alloc("ok.null.slot", "ok.null.slot_obj", ObjKind::Stack,
                       /*Singleton=*/true, 1);
    VarID CE = B.alloc("ok.null.e", "ok.null.cell_e", ObjKind::Stack,
                       /*Singleton=*/true, 1);
    VarID CF = B.alloc("ok.null.f", "ok.null.cell_f", ObjKind::Stack,
                       /*Singleton=*/true, 1);
    VarID VF = B.alloc("ok.null.v", "ok.null.val", ObjKind::Stack,
                       /*Singleton=*/true, 1);
    B.store(VF, CF); // F initialised; E deliberately never is.
    B.store(CE, S2);
    B.store(CF, S2); // Strong update: kills E in the slot.
    VarID PF = B.load("ok.null.pf", S2);
    VarID Val = B.load("ok.null.pv", PF);
    B.store(VF, Val);

    // (6) Leak: heap allocation that is never freed.
    recordBug(CheckKind::Leak, nextInst());
    B.alloc("bug.leak.p", "bug.leak.obj", ObjKind::Heap,
            /*Singleton=*/false, 1);

    // (7) Clean leak: allocated and freed.
    VarID LC = B.alloc("ok.leak.p", "ok.leak.obj", ObjKind::Heap,
                       /*Singleton=*/false, 1);
    B.free(LC);

    // (8) Uninitialised read: a load from a cell nothing ever stores to.
    // The loaded value is deliberately never dereferenced, so the pattern
    // stays out of the null-deref ground truth.
    VarID CU = B.alloc("bug.uread.cell", "bug.uread.obj", ObjKind::Stack,
                       /*Singleton=*/true, 1);
    recordBug(CheckKind::UninitRead, nextInst());
    B.load("bug.uread.use", CU);

    // (9) Clean uninitialised read: same shape, but the cell is written
    // first — no backend reports it.
    VarID CI = B.alloc("ok.uread.cell", "ok.uread.obj", ObjKind::Stack,
                       /*Singleton=*/true, 1);
    VarID VI = B.alloc("ok.uread.v", "ok.uread.val", ObjKind::Stack,
                       /*Singleton=*/true, 1);
    B.store(VI, CI);
    B.load("ok.uread.use", CI);

    // (10) Untracked free: releasing stack memory.
    VarID SU = B.alloc("bug.ufree.p", "bug.ufree.obj", ObjKind::Stack,
                       /*Singleton=*/true, 1);
    recordBug(CheckKind::UntrackedFree, nextInst());
    B.free(SU);

    // (11) Clean untracked free (ander-only FP): a singleton slot first
    // holds a stack address, then is strongly updated to a heap address
    // before the reload feeds a free. Flow-sensitive backends free exactly
    // the heap object; Andersen's pt = {stack, heap} makes the free look
    // like it may release stack memory. The heap object is freed, so it
    // stays out of the leak ground truth.
    VarID S3 = B.alloc("ok.ufree.slot", "ok.ufree.slot_obj", ObjKind::Stack,
                       /*Singleton=*/true, 1);
    VarID SS = B.alloc("ok.ufree.s", "ok.ufree.stack", ObjKind::Stack,
                       /*Singleton=*/true, 1);
    VarID HH = B.alloc("ok.ufree.h", "ok.ufree.heap", ObjKind::Heap,
                       /*Singleton=*/false, 1);
    B.store(SS, S3);
    B.store(HH, S3); // Strong update: kills the stack address in the slot.
    VarID PF2 = B.load("ok.ufree.pf", S3);
    B.free(PF2);
  }

  void buildFunction(FunID F) {
    std::vector<std::string> ParamNames;
    for (uint32_t I = 0; I < Config.ParamsPerFunction; ++I)
      ParamNames.push_back(numberedName('p', I));
    B.startFunction(M->function(F).Name, ParamNames);

    Pool.clear();
    PtrPool.clear();
    for (VarID P : M->function(F).Params)
      Pool.push_back(P);
    for (VarID G : Globals)
      Pool.push_back(G);

    // Bug patterns live at the head of main's entry block: it executes
    // exactly once (the verifier forbids branches back to entry, and main
    // is never a call target when other functions exist).
    if (F == M->main() && Config.InjectBugs)
      injectBugPatterns();

    const uint32_t NumBlocks = std::max<uint32_t>(1, Config.BlocksPerFunction);
    std::vector<BlockID> Blocks;
    Blocks.push_back(0); // Implicit entry block.
    for (uint32_t I = 1; I < NumBlocks; ++I)
      Blocks.push_back(B.block(numberedName('b', I)));
    // An optional early-return block exercises multi-ret unification.
    BlockID EarlyRet = InvalidBlock;
    if (NumBlocks >= 3 && chance(0.5))
      EarlyRet = B.block("early");

    for (uint32_t I = 0; I < NumBlocks; ++I) {
      B.setInsertPoint(Blocks[I]);
      uint32_t Count = 1 + below(std::max<uint32_t>(1, 2 * Config.InstsPerBlock));
      for (uint32_t K = 0; K < Count; ++K)
        emitRandomInst();

      if (I + 1 == NumBlocks) {
        B.ret(pickValue());
        continue;
      }
      if (chance(Config.BranchProbability)) {
        BlockID Extra;
        if (EarlyRet != InvalidBlock && chance(0.3)) {
          Extra = EarlyRet;
        } else if (I > 0 && chance(Config.LoopProbability)) {
          Extra = Blocks[1 + below(I)]; // Back edge (loop), never to entry.
        } else {
          Extra = Blocks[I + 1 + below(NumBlocks - I - 1)]; // Forward jump.
        }
        B.br(Blocks[I + 1], Extra);
      } else {
        B.br(Blocks[I + 1]);
      }
    }

    if (EarlyRet != InvalidBlock) {
      B.setInsertPoint(EarlyRet);
      B.ret(pickValue());
    }
    B.finishFunction();
  }

  const GenConfig &Config;
  checker::GroundTruth *GT; ///< Receives injected bug sites; may be null.
  std::unique_ptr<Module> M;
  IRBuilder B;
  std::mt19937_64 Rng;

  std::vector<FunID> Funs;
  std::vector<FunID> CallTargets;
  std::vector<VarID> Globals;
  std::vector<VarID> FunPtrGlobals;
  std::vector<VarID> Pool;    ///< All usable values in the current function.
  std::vector<VarID> PtrPool; ///< Values likely to point at objects.
  uint32_t NameCounter = 0;
};

} // namespace

std::unique_ptr<Module>
vsfs::workload::generateProgram(const GenConfig &Config) {
  Generator G(Config, /*GT=*/nullptr);
  return G.run();
}

std::unique_ptr<Module>
vsfs::workload::generateProgram(const GenConfig &Config,
                                checker::GroundTruth *GT) {
  if (GT)
    GT->Sites.clear();
  Generator G(Config, GT);
  return G.run();
}
