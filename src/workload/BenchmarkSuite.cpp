//===- BenchmarkSuite.cpp - The 15 synthetic benchmark presets --*- C++ -*-===//

#include "workload/BenchmarkSuite.h"

using namespace vsfs;
using namespace vsfs::workload;

namespace {

/// Builds one preset. \p Funs/\p Blocks/\p Insts control scale; \p Heap,
/// \p Indirect and \p GlobalAccess control how heap-intensive, how
/// function-pointer-heavy, and how cross-function-shared the program is.
BenchSpec preset(const char *Name, const char *Desc, uint64_t Seed,
                 uint32_t Funs, uint32_t Blocks, uint32_t Insts,
                 uint32_t Globals, double Heap, double Indirect,
                 double GlobalAccess) {
  BenchSpec S;
  S.Name = Name;
  S.Description = Desc;
  GenConfig &C = S.Config;
  C.Seed = Seed;
  C.NumFunctions = Funs;
  C.BlocksPerFunction = Blocks;
  C.InstsPerBlock = Insts;
  C.NumGlobals = Globals;
  C.HeapFraction = Heap;
  C.IndirectCallFraction = Indirect;
  C.GlobalAccessFraction = GlobalAccess;
  return S;
}

} // namespace

std::vector<BenchSpec> vsfs::workload::benchmarkSuite() {
  // Ordered as in Table II (by bitcode size in the paper). Seeds are fixed
  // so every run analyses identical programs.
  return {
      preset("du", "disk usage utility: small, light heap", 101, //
             26, 4, 6, 10, 0.45, 0.10, 0.40),
      preset("ninja", "build system: mid-size, heap-heavy graph structures",
             102, 34, 4, 6, 10, 0.60, 0.15, 0.40),
      preset("bake", "build system: few nodes, extremely dense value flows",
             103, 30, 5, 7, 14, 0.75, 0.20, 0.60),
      preset("dpkg", "package manager: larger but analysis-friendly", 104, //
             40, 4, 5, 8, 0.25, 0.05, 0.25),
      preset("nano", "text editor: buffer-heavy, many shared globals", 105, //
             44, 5, 6, 14, 0.55, 0.10, 0.50),
      preset("i3", "window manager: wide call graph, light heap", 106, //
             52, 4, 5, 10, 0.30, 0.15, 0.30),
      preset("psql", "database frontend: moderate, string-buffer heavy", 107,
             48, 5, 5, 10, 0.40, 0.10, 0.35),
      preset("janet", "language implementation: heap-intensive interpreter",
             108, 56, 5, 7, 16, 0.70, 0.20, 0.50),
      preset("astyle", "code formatter: C++-like, very dense object flows",
             109, 60, 6, 7, 18, 0.75, 0.15, 0.55),
      preset("tmux", "terminal multiplexer: large, many sessions/objects",
             110, 68, 5, 6, 16, 0.55, 0.15, 0.45),
      preset("mruby", "ruby interpreter: big VM objects, moderate sharing",
             111, 72, 5, 6, 12, 0.55, 0.15, 0.35),
      preset("mutt", "mail client: very dense indirect value flows", 112, //
             80, 6, 6, 20, 0.65, 0.20, 0.55),
      preset("bash", "shell: huge def-use chains over shared state", 113, //
             96, 6, 7, 24, 0.65, 0.20, 0.60),
      preset("lynx", "web browser: the largest, most store/load dense", 114,
             112, 6, 7, 28, 0.70, 0.25, 0.60),
      preset("hyriseConsole", "database console: C++-like, widest program",
             115, 128, 6, 7, 24, 0.60, 0.20, 0.45),
  };
}

std::vector<BenchSpec> vsfs::workload::quickSuite() {
  std::vector<BenchSpec> All = benchmarkSuite();
  // The paper's 8 GB tier: the eight least demanding benchmarks.
  const char *Names[] = {"du",   "ninja", "bake", "dpkg",
                         "nano", "i3",    "psql", "mruby"};
  std::vector<BenchSpec> Out;
  for (const char *N : Names)
    for (const BenchSpec &S : All)
      if (S.Name == N)
        Out.push_back(S);
  return Out;
}

bool vsfs::workload::findBenchmark(const std::string &Name, BenchSpec &Out) {
  for (const BenchSpec &S : benchmarkSuite())
    if (S.Name == Name) {
      Out = S;
      return true;
    }
  return false;
}
