//===- Report.h - Machine-readable findings output --------------*- C++ -*-===//
///
/// \file
/// Renders spec-engine findings as a JSON document (--findings-json,
/// schema \c schemas::FindingsJson): one record per finding with the
/// producing spec, the classic (kind, sink, obj, source) tuple, the full
/// witness node chain and the verifier's verdict.
///
//===----------------------------------------------------------------------===//

#ifndef VSFS_TAINT_REPORT_H
#define VSFS_TAINT_REPORT_H

#include "taint/TaintEngine.h"

#include <string>

namespace vsfs {
namespace taint {

/// The full document, terminated with a newline. \p Analysis names the
/// backend the findings came from ("vsfs", ...).
std::string findingsJson(const ir::Module &M,
                         const std::vector<TaintSpec> &Specs,
                         const std::vector<TaintFinding> &Findings,
                         const std::string &Analysis);

} // namespace taint
} // namespace vsfs

#endif // VSFS_TAINT_REPORT_H
