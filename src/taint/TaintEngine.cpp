//===- TaintEngine.cpp - Spec-driven value-flow propagation -----*- C++ -*-===//

#include "taint/TaintEngine.h"

#include <algorithm>
#include <cassert>
#include <deque>

using namespace vsfs;
using namespace vsfs::taint;
using namespace vsfs::ir;
using checker::CheckKind;
using checker::Finding;
using svfg::IndEdge;
using svfg::NodeID;
using svfg::NodeKind;

const char *vsfs::taint::verdictName(Verdict V) {
  switch (V) {
  case Verdict::Unchecked:
    return "unchecked";
  case Verdict::Verified:
    return "verified";
  case Verdict::Unverifiable:
    return "unverifiable";
  }
  return "<invalid>";
}

namespace {

ObjID rootObject(const SymbolTable &Syms, ObjID O) {
  while (Syms.object(O).Kind == ObjKind::Field)
    O = Syms.object(O).Base;
  return O;
}

VarID derefPtr(const Instruction &Inst) {
  switch (Inst.Kind) {
  case InstKind::Load:
    return Inst.loadPtr();
  case InstKind::Store:
    return Inst.storePtr();
  case InstKind::Free:
    return Inst.freePtr();
  default:
    return InvalidVar;
  }
}

/// The sink mask bit a dereference of kind \p K matches, or 0.
uint32_t sinkBit(InstKind K) {
  switch (K) {
  case InstKind::Load:
    return SinkLoad;
  case InstKind::Store:
    return SinkStore;
  case InstKind::Free:
    return SinkFree;
  default:
    return 0;
  }
}

/// Two specs can share one object-flow walk when their taint labels are
/// created and killed identically — only the reported sinks differ.
bool sameObjectWalk(const TaintSpec &X, const TaintSpec &Y) {
  return X.Source == Y.Source && X.SourceInsts == Y.SourceInsts &&
         X.SanitizerInsts == Y.SanitizerInsts &&
         X.SanitizerKinds == Y.SanitizerKinds;
}

} // namespace

std::vector<Finding>
vsfs::taint::toCheckerFindings(const std::vector<TaintFinding> &Findings) {
  std::vector<Finding> Out;
  Out.reserve(Findings.size());
  for (const TaintFinding &TF : Findings)
    Out.push_back(TF.F);
  std::sort(Out.begin(), Out.end());
  Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  return Out;
}

TaintEngine::TaintEngine(const svfg::SVFG &G, const core::PointsToOracle &A)
    : G(G), A(A), M(G.module()) {}

PointsTo TaintEngine::freedObjects(const Instruction &Inst) const {
  PointsTo Roots;
  for (uint32_t O : A.ptsOfVar(Inst.freePtr()))
    if (!M.symbols().isFunctionObject(O))
      Roots.set(rootObject(M.symbols(), O));
  return Roots;
}

bool TaintEngine::isSanitizerNode(const TaintSpec &Spec, NodeID N) const {
  const svfg::Node &Node = G.node(N);
  if (Node.Kind != NodeKind::Inst)
    return false;
  if (Spec.isSanitizerKind(M.inst(Node.Inst).Kind))
    return true;
  return std::binary_search(Spec.SanitizerInsts.begin(),
                            Spec.SanitizerInsts.end(), Node.Inst);
}

void TaintEngine::runObjectFlowGroup(const std::vector<TaintSpec> &Specs,
                                     const std::vector<uint32_t> &Group,
                                     std::vector<TaintFinding> &Out) {
  // One forward walk per (source free, freed root object), shared by every
  // spec in the group; each spec only filters which reached dereferences it
  // reports. With the builtin uaf+dfree pair this is exactly the legacy
  // checkFreeSites traversal.
  const TaintSpec &Shape = Specs[Group.front()];
  StatCounter Steps = Stats.counter("object_walk_steps");
  StatCounter Sources = Stats.counter("object_sources");

  // Source free sites, in instruction order (SourceInsts are sorted).
  std::vector<InstID> Frees;
  if (Shape.Source == SourceEvent::FreeSite) {
    for (InstID F = 0; F < M.numInstructions(); ++F)
      if (M.inst(F).Kind == InstKind::Free)
        Frees.push_back(F);
  } else {
    for (InstID F : Shape.SourceInsts)
      if (F < M.numInstructions() && M.inst(F).Kind == InstKind::Free)
        Frees.push_back(F);
  }

  std::vector<char> Visited(G.numNodes(), 0);
  std::vector<NodeID> Parent(G.numNodes(), svfg::InvalidNode);
  std::vector<NodeID> Stack;
  std::vector<NodeID> Chain;

  for (InstID F : Frees) {
    for (uint32_t O : freedObjects(M.inst(F))) {
      ++Sources;
      std::fill(Visited.begin(), Visited.end(), 0);
      Stack.clear();
      NodeID Start = G.instNode(F);
      Visited[Start] = 1;
      Stack.push_back(Start);
      while (!Stack.empty()) {
        NodeID N = Stack.back();
        Stack.pop_back();
        for (const IndEdge &E : G.indirectSuccs(N)) {
          if (rootObject(M.symbols(), E.Obj) != O || Visited[E.Dst])
            continue;
          ++Steps;
          Visited[E.Dst] = 1;
          Parent[E.Dst] = N;
          // A sanitizer kills the label here: the node is neither a sink
          // nor a relay for this group. (Builtins have none.)
          if (Shape.hasSanitizers() && isSanitizerNode(Shape, E.Dst))
            continue;
          Stack.push_back(E.Dst);
          const svfg::Node &Node = G.node(E.Dst);
          if (Node.Kind != NodeKind::Inst)
            continue;
          const Instruction &Sink = M.inst(Node.Inst);
          VarID Ptr = derefPtr(Sink);
          if (Ptr == InvalidVar)
            continue;
          uint32_t Bit = sinkBit(Sink.Kind);
          bool Wanted = false;
          for (uint32_t SI : Group)
            if (Specs[SI].Sinks & Bit) {
              Wanted = true;
              break;
            }
          if (!Wanted)
            continue;
          // Backend-sensitive sink test, as in the legacy checker: may the
          // dereferenced pointer still refer to the freed allocation?
          bool PointsAtFreed = false;
          for (uint32_t P : A.ptsOfVar(Ptr))
            if (!M.symbols().isFunctionObject(P) &&
                rootObject(M.symbols(), P) == O) {
              PointsAtFreed = true;
              break;
            }
          if (!PointsAtFreed)
            continue;
          // The DFS-tree path source→sink; shared by the group's specs.
          Chain.clear();
          for (NodeID C = E.Dst; C != Start; C = Parent[C])
            Chain.push_back(C);
          Chain.push_back(Start);
          std::reverse(Chain.begin(), Chain.end());
          for (uint32_t SI : Group) {
            if (!(Specs[SI].Sinks & Bit))
              continue;
            TaintFinding TF;
            TF.F = {Specs[SI].Kind, Node.Inst, O, F, false};
            TF.Spec = SI;
            TF.Witness = Chain;
            Out.push_back(std::move(TF));
          }
        }
      }
    }
  }
}

void TaintEngine::runVarFlow(const std::vector<TaintSpec> &Specs,
                             uint32_t SpecIdx, std::vector<TaintFinding> &Out) {
  // The legacy null-deref algorithm parameterised by the source event and
  // sanitizers: taint labels live on top-level variables and flow through
  // copies and phis to every dereference. First-wins assignment makes the
  // predecessor chains acyclic, which is what lets each finding carry an
  // explicit witness.
  const TaintSpec &Spec = Specs[SpecIdx];
  const andersen::Andersen &Aux = G.auxAnalysis();
  const uint32_t NumVars = M.symbols().numVars();
  std::vector<char> Tainted(NumVars, 0);
  std::vector<InstID> SrcInst(NumVars, InvalidInst);
  std::vector<ObjID> SrcObj(NumVars, InvalidObj);
  std::vector<VarID> PredVar(NumVars, InvalidVar);
  std::vector<InstID> ViaInst(NumVars, InvalidInst);
  StatCounter Sources = Stats.counter("var_sources");
  StatCounter Props = Stats.counter("var_propagations");

  auto Taint = [&](VarID V, InstID Origin, ObjID O, VarID Pred, InstID Via) {
    Tainted[V] = 1;
    SrcInst[V] = Origin;
    SrcObj[V] = O;
    PredVar[V] = Pred;
    ViaInst[V] = Via;
  };

  if (Spec.Source == SourceEvent::UninitLoad) {
    for (InstID I = 0; I < M.numInstructions(); ++I) {
      const Instruction &Inst = M.inst(I);
      if (Inst.Kind != InstKind::Load)
        continue;
      if (Spec.hasSanitizers() && isSanitizerNode(Spec, G.instNode(I)))
        continue;
      for (uint32_t O : A.ptsOfVar(Inst.loadPtr())) {
        if (M.symbols().isFunctionObject(O))
          continue;
        if (!Aux.ptsOfObj(O).empty() || !A.ptsOfObjAt(I, O).empty())
          continue;
        Taint(Inst.Dst, I, O, InvalidVar, I);
        ++Sources;
        break;
      }
    }
  } else { // SourceEvent::InstList
    for (InstID I : Spec.SourceInsts) {
      if (I >= M.numInstructions() || !M.inst(I).definesVar())
        continue;
      if (Spec.hasSanitizers() && isSanitizerNode(Spec, G.instNode(I)))
        continue;
      Taint(M.inst(I).Dst, I, InvalidObj, InvalidVar, I);
      ++Sources;
    }
  }

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (InstID I = 0; I < M.numInstructions(); ++I) {
      const Instruction &Inst = M.inst(I);
      VarID Src = InvalidVar;
      if (Inst.Kind == InstKind::Copy) {
        if (Tainted[Inst.copySrc()])
          Src = Inst.copySrc();
      } else if (Inst.Kind == InstKind::Phi) {
        for (VarID S : Inst.phiSrcs())
          if (Tainted[S]) {
            Src = S;
            break;
          }
      }
      if (Src == InvalidVar || Tainted[Inst.Dst])
        continue;
      if (Spec.hasSanitizers() && isSanitizerNode(Spec, G.instNode(I)))
        continue;
      Taint(Inst.Dst, SrcInst[Src], SrcObj[Src], Src, I);
      ++Props;
      Changed = true;
    }
  }

  for (InstID I = 0; I < M.numInstructions(); ++I) {
    VarID Ptr = derefPtr(M.inst(I));
    if (Ptr == InvalidVar || !Tainted[Ptr])
      continue;
    if (!(Spec.Sinks & sinkBit(M.inst(I).Kind)))
      continue;
    if (Spec.hasSanitizers() && isSanitizerNode(Spec, G.instNode(I)))
      continue;
    TaintFinding TF;
    TF.F = {Spec.Kind, I, SrcObj[Ptr], SrcInst[Ptr], false};
    TF.Spec = SpecIdx;
    // Chain of defining instructions source→last-copy, then the sink;
    // consecutive nodes are direct (def-use) SVFG edges.
    for (VarID V = Ptr; V != InvalidVar; V = PredVar[V])
      TF.Witness.push_back(G.instNode(ViaInst[V]));
    std::reverse(TF.Witness.begin(), TF.Witness.end());
    TF.Witness.push_back(G.instNode(I));
    Out.push_back(std::move(TF));
  }
}

void TaintEngine::runSiteRule(const std::vector<TaintSpec> &Specs,
                              uint32_t SpecIdx,
                              std::vector<TaintFinding> &Out) {
  const TaintSpec &Spec = Specs[SpecIdx];
  const SymbolTable &Syms = M.symbols();
  const andersen::Andersen &Aux = G.auxAnalysis();

  if (Spec.Source == SourceEvent::HeapAlloc) {
    // sink unfreed: heap allocations no free site's pointee set covers —
    // the legacy leak checker.
    PointsTo Covered;
    for (InstID I = 0; I < M.numInstructions(); ++I)
      if (M.inst(I).Kind == InstKind::Free)
        Covered.unionWith(freedObjects(M.inst(I)));
    for (ObjID O = 0; O < Syms.numObjects(); ++O) {
      const ObjInfo &Obj = Syms.object(O);
      if (Obj.Kind != ObjKind::Heap || Covered.test(O))
        continue;
      if (Obj.AllocSite == InvalidInst)
        continue;
      TaintFinding TF;
      TF.F = {Spec.Kind, Obj.AllocSite, O, Obj.AllocSite, false};
      TF.Spec = SpecIdx;
      TF.Witness.push_back(G.instNode(Obj.AllocSite));
      Out.push_back(std::move(TF));
      Stats.add("unfreed_sources", 1);
    }
    return;
  }

  if (Spec.Source == SourceEvent::UninitLoad) {
    // sink self: loads that read a cell no store in the whole program
    // initialises. Flow-insensitive on the cell (the auxiliary analysis
    // judges "never initialised"), backend-sensitive on which cells the
    // load can read — sfs/vsfs report a subset of ander's findings.
    for (InstID I = 0; I < M.numInstructions(); ++I) {
      const Instruction &Inst = M.inst(I);
      if (Inst.Kind != InstKind::Load)
        continue;
      for (uint32_t O : A.ptsOfVar(Inst.loadPtr())) {
        if (Syms.isFunctionObject(O) || !Aux.ptsOfObj(O).empty())
          continue;
        ObjID Root = rootObject(Syms, O);
        InstID Alloc = Syms.object(Root).AllocSite;
        TaintFinding TF;
        TF.F = {Spec.Kind, I, O, Alloc != InvalidInst ? Alloc : I, false};
        TF.Spec = SpecIdx;
        TF.Witness.push_back(G.instNode(I));
        Out.push_back(std::move(TF));
        Stats.add("uninit_sources", 1);
      }
    }
    return;
  }

  // SourceEvent::UntrackedFree, sink self: frees whose pointee's root is a
  // stack or global object — never legal to deallocate. The witness links
  // the allocation to the free through the SVFG when a path exists.
  for (InstID F = 0; F < M.numInstructions(); ++F) {
    const Instruction &FreeInst = M.inst(F);
    if (FreeInst.Kind != InstKind::Free)
      continue;
    PointsTo Roots;
    for (uint32_t O : A.ptsOfVar(FreeInst.freePtr())) {
      if (Syms.isFunctionObject(O))
        continue;
      ObjID Root = rootObject(Syms, O);
      const ObjInfo &Obj = Syms.object(Root);
      if (Obj.Kind != ObjKind::Stack && Obj.Kind != ObjKind::Global)
        continue;
      if (!Roots.set(Root))
        continue;
      TaintFinding TF;
      InstID Alloc = Obj.AllocSite;
      TF.F = {Spec.Kind, F, Root, Alloc != InvalidInst ? Alloc : F, false};
      TF.Spec = SpecIdx;
      TF.Witness = allocToFreePath(Alloc, F);
      Out.push_back(std::move(TF));
      Stats.add("untracked_sources", 1);
    }
  }
}

std::vector<NodeID> TaintEngine::allocToFreePath(InstID Alloc, InstID F) {
  // Deterministic BFS from the allocation to the free over direct and
  // indirect edges — how the freed pointer value travelled. Falls back to
  // the free site alone when the allocation is unknown or unreachable
  // (e.g. the pointer arrived through imprecision, not a real flow).
  std::vector<NodeID> Path;
  NodeID Goal = G.instNode(F);
  if (Alloc == InvalidInst) {
    Path.push_back(Goal);
    return Path;
  }
  NodeID Start = G.instNode(Alloc);
  std::vector<NodeID> Parent(G.numNodes(), svfg::InvalidNode);
  std::vector<char> Visited(G.numNodes(), 0);
  std::deque<NodeID> Queue;
  Visited[Start] = 1;
  Queue.push_back(Start);
  bool Found = Start == Goal;
  while (!Queue.empty() && !Found) {
    NodeID N = Queue.front();
    Queue.pop_front();
    auto Visit = [&](NodeID S) {
      if (Visited[S])
        return;
      Visited[S] = 1;
      Parent[S] = N;
      Queue.push_back(S);
      if (S == Goal)
        Found = true;
    };
    for (NodeID S : G.directSuccs(N))
      Visit(S);
    for (const IndEdge &E : G.indirectSuccs(N))
      Visit(E.Dst);
  }
  if (!Found) {
    Path.push_back(Goal);
    return Path;
  }
  for (NodeID C = Goal; C != svfg::InvalidNode && C != Start; C = Parent[C])
    Path.push_back(C);
  Path.push_back(Start);
  std::reverse(Path.begin(), Path.end());
  return Path;
}

std::vector<TaintFinding>
TaintEngine::run(const std::vector<TaintSpec> &Specs) {
  Stats.get("specs") = Specs.size();
  std::vector<TaintFinding> Out;

  // Group object-flow specs that share a walk; run the rest one by one.
  std::vector<char> Grouped(Specs.size(), 0);
  for (uint32_t I = 0; I < Specs.size(); ++I) {
    if (Grouped[I])
      continue;
    switch (Specs[I].Flow) {
    case FlowDomain::ObjectFlow: {
      std::vector<uint32_t> Group{I};
      for (uint32_t J = I + 1; J < Specs.size(); ++J)
        if (!Grouped[J] && Specs[J].Flow == FlowDomain::ObjectFlow &&
            sameObjectWalk(Specs[I], Specs[J])) {
          Group.push_back(J);
          Grouped[J] = 1;
        }
      Stats.add("object_walk_groups", 1);
      runObjectFlowGroup(Specs, Group, Out);
      break;
    }
    case FlowDomain::VarFlow:
      runVarFlow(Specs, I, Out);
      break;
    case FlowDomain::None:
      runSiteRule(Specs, I, Out);
      break;
    }
  }

  // Deterministic order and dedup per (finding, spec); the witness is the
  // final tiebreak so equal findings from different paths sort stably.
  std::sort(Out.begin(), Out.end(),
            [](const TaintFinding &X, const TaintFinding &Y) {
              if (!(X.F == Y.F))
                return X.F < Y.F;
              if (X.Spec != Y.Spec)
                return X.Spec < Y.Spec;
              return X.Witness < Y.Witness;
            });
  Out.erase(std::unique(Out.begin(), Out.end(),
                        [](const TaintFinding &X, const TaintFinding &Y) {
                          return X.F == Y.F && X.Spec == Y.Spec;
                        }),
            Out.end());
  Stats.get("findings") = Out.size();
  return Out;
}

std::vector<TaintFinding> vsfs::taint::runTaint(
    const svfg::SVFG &G, const core::PointsToOracle &A,
    const std::vector<TaintSpec> &Specs) {
  TaintEngine E(G, A);
  return E.run(Specs);
}
