//===- TaintEngine.h - Spec-driven value-flow propagation -------*- C++ -*-===//
///
/// \file
/// The engine that runs a set of \c TaintSpec rules over one (SVFG,
/// points-to backend) pair. Specs sharing a source/sanitizer configuration
/// share a single propagation pass per flow domain, so adding rules does
/// not multiply graph walks. Every finding carries a *path witness* — the
/// SVFG node chain the taint label travelled from source to sink — which
/// \c WitnessVerifier replays independently against the solved points-to
/// results.
///
/// The built-in uaf/dfree/null/leak specs reproduce
/// \c checker::ValueFlowChecker bit-identically (asserted by the
/// differential tests); the legacy checker stays as the oracle.
///
//===----------------------------------------------------------------------===//

#ifndef VSFS_TAINT_TAINTENGINE_H
#define VSFS_TAINT_TAINTENGINE_H

#include "taint/TaintSpec.h"

#include "core/PointerAnalysis.h"
#include "support/Statistics.h"
#include "svfg/SVFG.h"

#include <vector>

namespace vsfs {
namespace taint {

/// Witness verification state of a finding.
enum class Verdict : uint8_t {
  Unchecked,   ///< the verifier has not run
  Verified,    ///< the witness replays against the solved results
  Unverifiable ///< some replay step failed (see TaintFinding::Note)
};

const char *verdictName(Verdict V);

/// One spec-engine finding: the plain checker finding (so legacy scoring
/// and printing apply unchanged) plus provenance and its path witness.
struct TaintFinding {
  checker::Finding F;
  /// Index of the producing spec in the spec vector passed to the engine.
  uint32_t Spec = 0;
  /// The source→sink SVFG node chain. Single-node for site-judged rules
  /// (leak/uread), otherwise every consecutive pair is an edge of the
  /// materialised graph (direct for var flow, object-labelled indirect for
  /// object flow). Nodes are post-coalescing IDs when the graph is
  /// coalesced.
  std::vector<svfg::NodeID> Witness;
  Verdict V = Verdict::Unchecked;
  /// For Unverifiable: the first replay check that failed.
  std::string Note;
};

/// Projects findings onto plain checker findings, sorted and deduplicated —
/// the exact shape \c checker::runCheckers returns, for differential
/// comparison and legacy scoring.
std::vector<checker::Finding>
toCheckerFindings(const std::vector<TaintFinding> &Findings);

/// The engine. Construct once per (SVFG, backend) pair; \c run compiles the
/// spec set into shared propagations and returns findings sorted by
/// (finding, spec) and deduplicated.
class TaintEngine {
public:
  TaintEngine(const svfg::SVFG &G, const core::PointsToOracle &A);

  std::vector<TaintFinding> run(const std::vector<TaintSpec> &Specs);

  /// Work counters ("taint" group): sources seen, walk steps, findings.
  const StatGroup &stats() const { return Stats; }

private:
  void runObjectFlowGroup(const std::vector<TaintSpec> &Specs,
                          const std::vector<uint32_t> &Group,
                          std::vector<TaintFinding> &Out);
  void runVarFlow(const std::vector<TaintSpec> &Specs, uint32_t SpecIdx,
                  std::vector<TaintFinding> &Out);
  void runSiteRule(const std::vector<TaintSpec> &Specs, uint32_t SpecIdx,
                   std::vector<TaintFinding> &Out);

  /// BFS witness for untracked frees: the allocation→free node chain over
  /// direct and indirect edges, or the free site alone when no path exists.
  std::vector<svfg::NodeID> allocToFreePath(ir::InstID Alloc, ir::InstID F);

  /// Objects freed by free instruction \p Inst under the backend:
  /// pt(freePtr) minus function objects, field objects widened to roots.
  PointsTo freedObjects(const ir::Instruction &Inst) const;

  /// True when SVFG node \p N is a sanitizer event of \p Spec. Only
  /// instruction nodes can sanitize; relay nodes never do.
  bool isSanitizerNode(const TaintSpec &Spec, svfg::NodeID N) const;

  const svfg::SVFG &G;
  const core::PointsToOracle &A;
  const ir::Module &M;
  StatGroup Stats{"taint"};
};

/// Convenience wrapper: build, run, return findings (unverified — pair with
/// \c WitnessVerifier::verifyAll).
std::vector<TaintFinding> runTaint(const svfg::SVFG &G,
                                   const core::PointsToOracle &A,
                                   const std::vector<TaintSpec> &Specs);

} // namespace taint
} // namespace vsfs

#endif // VSFS_TAINT_TAINTENGINE_H
