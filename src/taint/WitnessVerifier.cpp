//===- WitnessVerifier.cpp - Independent path-witness replay ----*- C++ -*-===//

#include "taint/WitnessVerifier.h"

#include <algorithm>

using namespace vsfs;
using namespace vsfs::taint;
using namespace vsfs::ir;
using svfg::IndEdge;
using svfg::NodeID;
using svfg::NodeKind;

namespace {

ObjID rootObject(const SymbolTable &Syms, ObjID O) {
  while (Syms.object(O).Kind == ObjKind::Field)
    O = Syms.object(O).Base;
  return O;
}

VarID derefPtr(const Instruction &Inst) {
  switch (Inst.Kind) {
  case InstKind::Load:
    return Inst.loadPtr();
  case InstKind::Store:
    return Inst.storePtr();
  case InstKind::Free:
    return Inst.freePtr();
  default:
    return InvalidVar;
  }
}

uint32_t sinkBit(InstKind K) {
  switch (K) {
  case InstKind::Load:
    return SinkLoad;
  case InstKind::Store:
    return SinkStore;
  case InstKind::Free:
    return SinkFree;
  default:
    return 0;
  }
}

/// Is \p N an instruction node for instruction \p I?
bool isInstNode(const svfg::SVFG &G, NodeID N, InstID I) {
  return N < G.numNodes() && G.node(N).Kind == NodeKind::Inst &&
         G.node(N).Inst == I;
}

/// Does an indirect edge From→To exist whose object widens to root \p O?
bool hasRootedIndirectEdge(const svfg::SVFG &G, const SymbolTable &Syms,
                           NodeID From, NodeID To, ObjID O) {
  for (const IndEdge &E : G.indirectSuccs(From))
    if (E.Dst == To && rootObject(Syms, E.Obj) == O)
      return true;
  return false;
}

bool isSanitizerNode(const svfg::SVFG &G, const ir::Module &M,
                     const TaintSpec &Spec, NodeID N) {
  if (G.node(N).Kind != NodeKind::Inst)
    return false;
  InstID I = G.node(N).Inst;
  if (Spec.isSanitizerKind(M.inst(I).Kind))
    return true;
  return std::binary_search(Spec.SanitizerInsts.begin(),
                            Spec.SanitizerInsts.end(), I);
}

/// Re-derives the freed-roots set of a free instruction from the oracle.
bool freesRoot(const core::PointsToOracle &A, const ir::Module &M,
               const Instruction &FreeInst, ObjID Root) {
  for (uint32_t P : A.ptsOfVar(FreeInst.freePtr()))
    if (!M.symbols().isFunctionObject(P) &&
        rootObject(M.symbols(), P) == Root)
      return true;
  return false;
}

} // namespace

bool WitnessVerifier::fail(TaintFinding &F, const char *Why) const {
  F.V = Verdict::Unverifiable;
  F.Note = Why;
  return false;
}

bool WitnessVerifier::replayObjectFlow(const TaintSpec &Spec,
                                       TaintFinding &F) {
  const std::vector<NodeID> &W = F.Witness;
  if (W.size() < 2)
    return fail(F, "object-flow witness needs a source and a sink");
  for (NodeID N : W)
    if (N >= G.numNodes())
      return fail(F, "witness node out of range");

  // Source: the free site the finding names, really a free of the object.
  if (!isInstNode(G, W.front(), F.F.Source))
    return fail(F, "witness does not start at the finding's source");
  const Instruction &Src = M.inst(F.F.Source);
  if (Spec.Source == SourceEvent::FreeSite) {
    if (Src.Kind != InstKind::Free)
      return fail(F, "source is not a free");
  } else if (!std::binary_search(Spec.SourceInsts.begin(),
                                 Spec.SourceInsts.end(), F.F.Source)) {
    return fail(F, "source not in the spec's source list");
  }
  ObjID O = F.F.Obj;
  if (O == InvalidObj || M.symbols().isFunctionObject(O) ||
      rootObject(M.symbols(), O) != O)
    return fail(F, "tracked object is not a root allocation");
  if (Src.Kind != InstKind::Free || !freesRoot(A, M, Src, O))
    return fail(F, "oracle says the source does not free the object");

  // Every hop is an object-labelled indirect edge of the graph, and no
  // node past the source is a sanitizer of the producing spec.
  for (size_t I = 0; I + 1 < W.size(); ++I)
    if (!hasRootedIndirectEdge(G, M.symbols(), W[I], W[I + 1], O))
      return fail(F, "missing indirect edge on the witness path");
  if (Spec.hasSanitizers())
    for (size_t I = 1; I < W.size(); ++I)
      if (isSanitizerNode(G, M, Spec, W[I]))
        return fail(F, "sanitizer on the witness path");

  // Sink: the named dereference, of a kind the spec reports, whose pointer
  // the oracle still lets point at the freed allocation.
  if (!isInstNode(G, W.back(), F.F.Sink))
    return fail(F, "witness does not end at the finding's sink");
  const Instruction &Sink = M.inst(F.F.Sink);
  if (!(sinkBit(Sink.Kind) & Spec.Sinks))
    return fail(F, "sink kind not reported by the spec");
  VarID Ptr = derefPtr(Sink);
  if (Ptr == InvalidVar)
    return fail(F, "sink does not dereference memory");
  bool PointsAtFreed = false;
  for (uint32_t P : A.ptsOfVar(Ptr))
    if (!M.symbols().isFunctionObject(P) &&
        rootObject(M.symbols(), P) == O) {
      PointsAtFreed = true;
      break;
    }
  if (!PointsAtFreed)
    return fail(F, "oracle says the sink pointer misses the object");
  F.V = Verdict::Verified;
  return true;
}

bool WitnessVerifier::replayVarFlow(const TaintSpec &Spec, TaintFinding &F) {
  const std::vector<NodeID> &W = F.Witness;
  if (W.size() < 2)
    return fail(F, "var-flow witness needs a source and a sink");
  for (NodeID N : W) {
    if (N >= G.numNodes() || G.node(N).Kind != NodeKind::Inst)
      return fail(F, "var-flow witness node is not an instruction");
  }

  // Source: re-derive the taint label's creation from the oracle.
  if (!isInstNode(G, W.front(), F.F.Source))
    return fail(F, "witness does not start at the finding's source");
  const Instruction &Src = M.inst(F.F.Source);
  if (Spec.Source == SourceEvent::UninitLoad) {
    if (Src.Kind != InstKind::Load)
      return fail(F, "source is not a load");
    ObjID O = F.F.Obj;
    if (O == InvalidObj || M.symbols().isFunctionObject(O))
      return fail(F, "source object missing");
    if (!A.ptsOfVar(Src.loadPtr()).test(O))
      return fail(F, "oracle says the source load misses the object");
    if (!G.auxAnalysis().ptsOfObj(O).empty() ||
        !A.ptsOfObjAt(F.F.Source, O).empty())
      return fail(F, "oracle says the source cell is initialised");
  } else {
    if (!std::binary_search(Spec.SourceInsts.begin(),
                            Spec.SourceInsts.end(), F.F.Source))
      return fail(F, "source not in the spec's source list");
    if (!Src.definesVar())
      return fail(F, "source defines no variable");
  }

  // Middle: a def-use chain of copies/phis — every hop a direct edge, and
  // each node's destination feeding the next node's operands.
  VarID Carried = Src.Dst;
  for (size_t I = 1; I + 1 < W.size(); ++I) {
    const Instruction &Via = M.inst(G.node(W[I]).Inst);
    if (!G.hasDirectEdge(W[I - 1], W[I]))
      return fail(F, "missing direct edge on the witness path");
    bool Feeds = false;
    if (Via.Kind == InstKind::Copy)
      Feeds = Via.copySrc() == Carried;
    else if (Via.Kind == InstKind::Phi)
      Feeds = std::find(Via.phiSrcs().begin(), Via.phiSrcs().end(),
                        Carried) != Via.phiSrcs().end();
    if (!Feeds)
      return fail(F, "witness hop does not read the tainted variable");
    Carried = Via.Dst;
  }
  if (W.size() > 2 && !G.hasDirectEdge(W[W.size() - 2], W.back()))
    return fail(F, "missing direct edge into the sink");
  if (W.size() == 2 && !G.hasDirectEdge(W.front(), W.back()))
    return fail(F, "missing direct edge into the sink");
  if (Spec.hasSanitizers())
    for (NodeID N : W)
      if (isSanitizerNode(G, M, Spec, N))
        return fail(F, "sanitizer on the witness path");

  // Sink: the named dereference of the tainted variable.
  if (!isInstNode(G, W.back(), F.F.Sink))
    return fail(F, "witness does not end at the finding's sink");
  const Instruction &Sink = M.inst(F.F.Sink);
  if (!(sinkBit(Sink.Kind) & Spec.Sinks))
    return fail(F, "sink kind not reported by the spec");
  if (derefPtr(Sink) != Carried)
    return fail(F, "sink does not dereference the tainted variable");
  F.V = Verdict::Verified;
  return true;
}

bool WitnessVerifier::replaySiteRule(const TaintSpec &Spec, TaintFinding &F) {
  const std::vector<NodeID> &W = F.Witness;
  const SymbolTable &Syms = M.symbols();
  if (W.empty())
    return fail(F, "empty witness");
  for (NodeID N : W)
    if (N >= G.numNodes())
      return fail(F, "witness node out of range");

  if (Spec.Source == SourceEvent::HeapAlloc) {
    // Leak: the allocation site itself, with an independent rescan of
    // every free site confirming nothing covers the object.
    if (W.size() != 1 || !isInstNode(G, W.front(), F.F.Sink))
      return fail(F, "leak witness must be the allocation site");
    ObjID O = F.F.Obj;
    if (O == InvalidObj || Syms.object(O).Kind != ObjKind::Heap)
      return fail(F, "leaked object is not a heap allocation");
    if (Syms.object(O).AllocSite != F.F.Sink || F.F.Source != F.F.Sink)
      return fail(F, "finding does not name the allocation site");
    for (InstID I = 0; I < M.numInstructions(); ++I) {
      const Instruction &Inst = M.inst(I);
      if (Inst.Kind != InstKind::Free)
        continue;
      for (uint32_t P : A.ptsOfVar(Inst.freePtr()))
        if (!Syms.isFunctionObject(P) && rootObject(Syms, P) == O)
          return fail(F, "a free site covers the object");
    }
    F.V = Verdict::Verified;
    return true;
  }

  if (Spec.Source == SourceEvent::UninitLoad) {
    // Uninitialised read: the load itself; the cell must be empty under
    // the auxiliary analysis and readable per the oracle.
    if (W.size() != 1 || !isInstNode(G, W.front(), F.F.Sink))
      return fail(F, "uninit-read witness must be the load");
    const Instruction &Sink = M.inst(F.F.Sink);
    if (Sink.Kind != InstKind::Load)
      return fail(F, "uninit-read sink is not a load");
    ObjID O = F.F.Obj;
    if (O == InvalidObj || Syms.isFunctionObject(O))
      return fail(F, "read object missing");
    if (!A.ptsOfVar(Sink.loadPtr()).test(O))
      return fail(F, "oracle says the load misses the object");
    if (!G.auxAnalysis().ptsOfObj(O).empty())
      return fail(F, "a store initialises the cell");
    ObjID Root = rootObject(Syms, O);
    InstID Alloc = Syms.object(Root).AllocSite;
    if (F.F.Source != (Alloc != InvalidInst ? Alloc : F.F.Sink))
      return fail(F, "finding does not name the allocation site");
    F.V = Verdict::Verified;
    return true;
  }

  // Untracked free: the free endpoint must re-derive; when the witness
  // carries an allocation→free path, every hop must be a real edge.
  if (!isInstNode(G, W.back(), F.F.Sink))
    return fail(F, "witness does not end at the free");
  const Instruction &Sink = M.inst(F.F.Sink);
  if (Sink.Kind != InstKind::Free)
    return fail(F, "untracked-free sink is not a free");
  ObjID O = F.F.Obj;
  if (O == InvalidObj || Syms.isFunctionObject(O) ||
      rootObject(Syms, O) != O)
    return fail(F, "freed object is not a root");
  const ObjInfo &Obj = Syms.object(O);
  if (Obj.Kind != ObjKind::Stack && Obj.Kind != ObjKind::Global)
    return fail(F, "freed object is heap-allocated after all");
  if (!freesRoot(A, M, Sink, O))
    return fail(F, "oracle says the free misses the object");
  InstID Alloc = Obj.AllocSite;
  if (F.F.Source != (Alloc != InvalidInst ? Alloc : F.F.Sink))
    return fail(F, "finding does not name the allocation site");
  if (W.size() > 1) {
    if (!isInstNode(G, W.front(), Alloc))
      return fail(F, "witness does not start at the allocation");
    for (size_t I = 0; I + 1 < W.size(); ++I) {
      bool HasEdge = G.hasDirectEdge(W[I], W[I + 1]);
      for (const IndEdge &E : G.indirectSuccs(W[I])) {
        if (HasEdge)
          break;
        HasEdge = E.Dst == W[I + 1];
      }
      if (!HasEdge)
        return fail(F, "missing edge on the allocation→free path");
    }
  }
  F.V = Verdict::Verified;
  return true;
}

bool WitnessVerifier::verify(const TaintSpec &Spec, TaintFinding &F) {
  switch (Spec.Flow) {
  case FlowDomain::ObjectFlow:
    return replayObjectFlow(Spec, F);
  case FlowDomain::VarFlow:
    return replayVarFlow(Spec, F);
  case FlowDomain::None:
    return replaySiteRule(Spec, F);
  }
  return fail(F, "unknown flow domain");
}

uint32_t WitnessVerifier::verifyAll(const std::vector<TaintSpec> &Specs,
                                    std::vector<TaintFinding> &Findings) {
  uint32_t Verified = 0;
  for (TaintFinding &F : Findings) {
    if (F.Spec >= Specs.size()) {
      fail(F, "finding names an unknown spec");
      continue;
    }
    if (verify(Specs[F.Spec], F))
      ++Verified;
  }
  return Verified;
}
