//===- TaintSpec.h - Declarative value-flow rule specs ----------*- C++ -*-===//
///
/// \file
/// The declarative surface of the taint/value-flow rule engine
/// (docs/CHECKERS.md): a \c TaintSpec names a *source event* that creates a
/// taint label, a *flow domain* the label propagates through, the *sink
/// events* that report it, and *sanitizer events* that kill the label along
/// a path. The engine (TaintEngine.h) compiles a spec set into shared
/// propagations over the SVFG parameterised by a \c core::PointsToOracle,
/// so every backend (ander/iter/sfs/vsfs), both --pts-repr modes,
/// --coalesce=on graphs and --mode=demand run the same rules unchanged.
///
/// The four legacy checkers are built-in specs (\c builtinSpecs) whose
/// findings are bit-identical to \c checker::runCheckers; uread and ufree
/// exist only as specs. User rules arrive as a line-oriented spec file
/// (\c parseTaintSpecs) via `vsfs-wpa --check-specs=FILE`.
///
//===----------------------------------------------------------------------===//

#ifndef VSFS_TAINT_TAINTSPEC_H
#define VSFS_TAINT_TAINTSPEC_H

#include "checker/Checker.h"
#include "ir/Instruction.h"

#include <string>
#include <string_view>
#include <vector>

namespace vsfs {
namespace taint {

/// What creates a taint label.
enum class SourceEvent : uint8_t {
  FreeSite,      ///< every free instruction; the label is each freed object
  UninitLoad,    ///< loads the auxiliary analysis proves read a cell no
                 ///< store ever initialises (the IR's model of null)
  HeapAlloc,     ///< every heap allocation (leak-style global accounting)
  UntrackedFree, ///< frees whose pointee's root is not a heap allocation
  InstList       ///< user-designated instructions (TaintSpec::SourceInsts)
};

/// What the label propagates through.
enum class FlowDomain : uint8_t {
  ObjectFlow, ///< label = object; flows over object-labelled indirect edges
  VarFlow,    ///< label = top-level variable; flows through copies and phis
  None        ///< degenerate: the source condition is judged at the site
};

// Sink-event mask bits. load/store/free are dereference sinks for the two
// flow domains; self reports the source site itself and unfreed reports
// heap allocations no free site covers (both FlowDomain::None only).
constexpr uint32_t SinkLoad = 1u << 0;
constexpr uint32_t SinkStore = 1u << 1;
constexpr uint32_t SinkFree = 1u << 2;
constexpr uint32_t SinkSelf = 1u << 3;
constexpr uint32_t SinkUnfreed = 1u << 4;

/// One declarative rule.
struct TaintSpec {
  std::string Name;
  /// The kind stamped on every finding this spec reports.
  checker::CheckKind Kind = checker::CheckKind::UseAfterFree;
  SourceEvent Source = SourceEvent::FreeSite;
  FlowDomain Flow = FlowDomain::None;
  uint32_t Sinks = 0; ///< SinkLoad | SinkStore | ... mask.
  /// Source instructions for SourceEvent::InstList. With ObjectFlow the
  /// instructions must be frees (others are skipped); with VarFlow any
  /// var-defining instruction taints its destination unconditionally.
  std::vector<ir::InstID> SourceInsts;
  /// Sanitizers: a path through one of these instructions (by ID, or by
  /// instruction kind) drops the taint label — the node neither reports
  /// nor propagates. Sorted by the parser/validator for binary search.
  std::vector<ir::InstID> SanitizerInsts;
  /// Mask over ir::InstKind: bit (1 << kind) marks every instruction of
  /// that kind a sanitizer.
  uint32_t SanitizerKinds = 0;

  bool isSanitizerKind(ir::InstKind K) const {
    return (SanitizerKinds >> static_cast<uint32_t>(K)) & 1u;
  }
  bool hasSanitizers() const {
    return !SanitizerInsts.empty() || SanitizerKinds != 0;
  }
};

/// Checks the source/flow/sink combination is one the engine implements
/// (see docs/CHECKERS.md for the grammar); returns false and fills
/// \p Error otherwise. Sorts SourceInsts/SanitizerInsts as a side effect.
bool validateSpec(TaintSpec &Spec, std::string &Error);

/// The built-in rules: uaf, dfree, null and leak reproduce the legacy
/// \c checker::ValueFlowChecker bit-identically; uread and ufree are the
/// spec-only kinds. \p KindMask selects by reported kind
/// (checker::checkBit); pass checker::AllChecks for all six.
std::vector<TaintSpec> builtinSpecs(uint32_t KindMask = checker::AllChecks);

/// Parses a spec file (see docs/CHECKERS.md):
///
///   # comment
///   spec NAME
///     report uaf | dfree | null | leak | uread | ufree
///     source free | uninit-load | heap-alloc | untracked-free | inst N[,N]
///     flow object | var | none
///     sink load,store,free | self | unfreed
///     sanitize inst N[,N]
///     sanitize kind load,store,free,copy,phi
///   end
///
/// Returns false with a line-numbered message in \p Error on any syntax or
/// validation problem; \p Out is only filled on success (at least one
/// spec; names unique).
bool parseTaintSpecs(std::string_view Text, std::vector<TaintSpec> &Out,
                     std::string &Error);

} // namespace taint
} // namespace vsfs

#endif // VSFS_TAINT_TAINTSPEC_H
