//===- TaintSpec.cpp - Spec validation, builtins and parser -----*- C++ -*-===//

#include "taint/TaintSpec.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

using namespace vsfs;
using namespace vsfs::taint;
using checker::CheckKind;

bool vsfs::taint::validateSpec(TaintSpec &Spec, std::string &Error) {
  auto Fail = [&](const char *Msg) {
    Error = "spec '" + Spec.Name + "': " + Msg;
    return false;
  };
  if (Spec.Name.empty())
    return Fail("missing name");

  std::sort(Spec.SourceInsts.begin(), Spec.SourceInsts.end());
  Spec.SourceInsts.erase(
      std::unique(Spec.SourceInsts.begin(), Spec.SourceInsts.end()),
      Spec.SourceInsts.end());
  std::sort(Spec.SanitizerInsts.begin(), Spec.SanitizerInsts.end());
  Spec.SanitizerInsts.erase(
      std::unique(Spec.SanitizerInsts.begin(), Spec.SanitizerInsts.end()),
      Spec.SanitizerInsts.end());

  if ((Spec.Source == SourceEvent::InstList) != !Spec.SourceInsts.empty())
    return Fail("'source inst' and an instruction list go together");

  constexpr uint32_t DerefSinks = SinkLoad | SinkStore | SinkFree;
  switch (Spec.Flow) {
  case FlowDomain::ObjectFlow:
    if (Spec.Source != SourceEvent::FreeSite &&
        Spec.Source != SourceEvent::InstList)
      return Fail("object flow needs 'source free' or 'source inst'");
    if (Spec.Sinks == 0 || (Spec.Sinks & ~DerefSinks))
      return Fail("object flow sinks must be some of load, store, free");
    break;
  case FlowDomain::VarFlow:
    if (Spec.Source != SourceEvent::UninitLoad &&
        Spec.Source != SourceEvent::InstList)
      return Fail("var flow needs 'source uninit-load' or 'source inst'");
    if (Spec.Sinks == 0 || (Spec.Sinks & ~DerefSinks))
      return Fail("var flow sinks must be some of load, store, free");
    break;
  case FlowDomain::None:
    if (Spec.hasSanitizers())
      return Fail("'flow none' rules have no paths to sanitize");
    if (Spec.Source == SourceEvent::HeapAlloc) {
      if (Spec.Sinks != SinkUnfreed)
        return Fail("'source heap-alloc' needs 'sink unfreed'");
    } else if (Spec.Source == SourceEvent::UninitLoad ||
               Spec.Source == SourceEvent::UntrackedFree) {
      if (Spec.Sinks != SinkSelf)
        return Fail("a site-local source needs 'sink self'");
    } else {
      return Fail("'flow none' needs a site-judged source "
                  "(uninit-load, heap-alloc, untracked-free)");
    }
    break;
  }
  return true;
}

std::vector<TaintSpec> vsfs::taint::builtinSpecs(uint32_t KindMask) {
  auto Make = [](const char *Name, CheckKind Kind, SourceEvent Source,
                 FlowDomain Flow, uint32_t Sinks) {
    TaintSpec S;
    S.Name = Name;
    S.Kind = Kind;
    S.Source = Source;
    S.Flow = Flow;
    S.Sinks = Sinks;
    return S;
  };
  const TaintSpec All[] = {
      Make("uaf", CheckKind::UseAfterFree, SourceEvent::FreeSite,
           FlowDomain::ObjectFlow, SinkLoad | SinkStore),
      Make("dfree", CheckKind::DoubleFree, SourceEvent::FreeSite,
           FlowDomain::ObjectFlow, SinkFree),
      Make("null", CheckKind::NullDeref, SourceEvent::UninitLoad,
           FlowDomain::VarFlow, SinkLoad | SinkStore | SinkFree),
      Make("leak", CheckKind::Leak, SourceEvent::HeapAlloc, FlowDomain::None,
           SinkUnfreed),
      Make("uread", CheckKind::UninitRead, SourceEvent::UninitLoad,
           FlowDomain::None, SinkSelf),
      Make("ufree", CheckKind::UntrackedFree, SourceEvent::UntrackedFree,
           FlowDomain::None, SinkSelf),
  };
  std::vector<TaintSpec> Out;
  for (const TaintSpec &S : All)
    if (KindMask & checker::checkBit(S.Kind))
      Out.push_back(S);
  return Out;
}

namespace {

/// Splits \p Line at unquoted whitespace into at most a keyword + rest.
void splitKeyword(std::string_view Line, std::string_view &Keyword,
                  std::string_view &Rest) {
  size_t I = 0;
  while (I < Line.size() && Line[I] != ' ' && Line[I] != '\t')
    ++I;
  Keyword = Line.substr(0, I);
  while (I < Line.size() && (Line[I] == ' ' || Line[I] == '\t'))
    ++I;
  Rest = Line.substr(I);
}

std::string_view trim(std::string_view S) {
  while (!S.empty() && (S.front() == ' ' || S.front() == '\t' ||
                        S.front() == '\r'))
    S.remove_prefix(1);
  while (!S.empty() && (S.back() == ' ' || S.back() == '\t' ||
                        S.back() == '\r'))
    S.remove_suffix(1);
  return S;
}

/// Calls \p Fn for every comma-separated, trimmed, non-empty item.
template <typename FnT> bool eachItem(std::string_view List, FnT Fn) {
  size_t Pos = 0;
  bool Any = false;
  while (Pos <= List.size()) {
    size_t Comma = List.find(',', Pos);
    size_t End = Comma == std::string_view::npos ? List.size() : Comma;
    std::string_view Item = trim(List.substr(Pos, End - Pos));
    if (!Item.empty()) {
      Any = true;
      if (!Fn(Item))
        return false;
    }
    if (Comma == std::string_view::npos)
      break;
    Pos = Comma + 1;
  }
  return Any;
}

bool parseInstList(std::string_view List, std::vector<ir::InstID> &Out) {
  return eachItem(List, [&](std::string_view Item) {
    uint64_t V = 0;
    for (char C : Item) {
      if (C < '0' || C > '9')
        return false;
      V = V * 10 + static_cast<uint64_t>(C - '0');
      if (V > 0xFFFFFFFFull)
        return false;
    }
    Out.push_back(static_cast<ir::InstID>(V));
    return true;
  });
}

bool parseReportKind(std::string_view Name, CheckKind &Out) {
  for (uint32_t K = 0; K < checker::NumCheckKinds; ++K)
    if (Name == checker::checkKindFlag(static_cast<CheckKind>(K))) {
      Out = static_cast<CheckKind>(K);
      return true;
    }
  return false;
}

bool parseSanitizerKind(std::string_view Name, ir::InstKind &Out) {
  struct {
    const char *Name;
    ir::InstKind Kind;
  } static const Table[] = {
      {"alloc", ir::InstKind::Alloc}, {"copy", ir::InstKind::Copy},
      {"phi", ir::InstKind::Phi},     {"field", ir::InstKind::FieldAddr},
      {"load", ir::InstKind::Load},   {"store", ir::InstKind::Store},
      {"free", ir::InstKind::Free},   {"call", ir::InstKind::Call},
  };
  for (const auto &E : Table)
    if (Name == E.Name) {
      Out = E.Kind;
      return true;
    }
  return false;
}

} // namespace

bool vsfs::taint::parseTaintSpecs(std::string_view Text,
                                  std::vector<TaintSpec> &Out,
                                  std::string &Error) {
  std::vector<TaintSpec> Specs;
  TaintSpec Cur;
  bool InSpec = false;
  bool SawFlow = false;
  uint32_t LineNo = 0;

  auto Fail = [&](const std::string &Msg) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "line %u: ", LineNo);
    Error = Buf + Msg;
    return false;
  };

  size_t Pos = 0;
  while (Pos <= Text.size()) {
    size_t Nl = Text.find('\n', Pos);
    size_t End = Nl == std::string_view::npos ? Text.size() : Nl;
    std::string_view Line = trim(Text.substr(Pos, End - Pos));
    ++LineNo;
    Pos = End + 1;
    bool LastLine = Nl == std::string_view::npos;

    if (!Line.empty() && Line[0] != '#') {
      std::string_view Keyword, Rest;
      splitKeyword(Line, Keyword, Rest);
      Rest = trim(Rest);

      if (Keyword == "spec") {
        if (InSpec)
          return Fail("'spec' inside an open spec (missing 'end'?)");
        if (Rest.empty())
          return Fail("'spec' needs a name");
        Cur = TaintSpec();
        Cur.Name = std::string(Rest);
        InSpec = true;
        SawFlow = false;
      } else if (!InSpec) {
        return Fail("'" + std::string(Keyword) + "' outside a spec block");
      } else if (Keyword == "report") {
        if (!parseReportKind(Rest, Cur.Kind))
          return Fail("unknown report kind '" + std::string(Rest) + "'");
      } else if (Keyword == "source") {
        std::string_view What, Args;
        splitKeyword(Rest, What, Args);
        Args = trim(Args);
        if (What == "free")
          Cur.Source = SourceEvent::FreeSite;
        else if (What == "uninit-load")
          Cur.Source = SourceEvent::UninitLoad;
        else if (What == "heap-alloc")
          Cur.Source = SourceEvent::HeapAlloc;
        else if (What == "untracked-free")
          Cur.Source = SourceEvent::UntrackedFree;
        else if (What == "inst") {
          Cur.Source = SourceEvent::InstList;
          Cur.SourceInsts.clear();
          if (!parseInstList(Args, Cur.SourceInsts))
            return Fail("'source inst' needs instruction IDs");
          Args = {};
        } else
          return Fail("unknown source event '" + std::string(What) + "'");
        if (!Args.empty())
          return Fail("trailing junk after 'source'");
      } else if (Keyword == "flow") {
        if (Rest == "object")
          Cur.Flow = FlowDomain::ObjectFlow;
        else if (Rest == "var")
          Cur.Flow = FlowDomain::VarFlow;
        else if (Rest == "none")
          Cur.Flow = FlowDomain::None;
        else
          return Fail("unknown flow domain '" + std::string(Rest) + "'");
        SawFlow = true;
      } else if (Keyword == "sink") {
        uint32_t Mask = 0;
        bool Ok = eachItem(Rest, [&](std::string_view Item) {
          if (Item == "load")
            Mask |= SinkLoad;
          else if (Item == "store")
            Mask |= SinkStore;
          else if (Item == "free")
            Mask |= SinkFree;
          else if (Item == "self")
            Mask |= SinkSelf;
          else if (Item == "unfreed")
            Mask |= SinkUnfreed;
          else
            return false;
          return true;
        });
        if (!Ok)
          return Fail("bad sink list '" + std::string(Rest) + "'");
        Cur.Sinks = Mask;
      } else if (Keyword == "sanitize") {
        std::string_view What, Args;
        splitKeyword(Rest, What, Args);
        Args = trim(Args);
        if (What == "inst") {
          if (!parseInstList(Args, Cur.SanitizerInsts))
            return Fail("'sanitize inst' needs instruction IDs");
        } else if (What == "kind") {
          bool Ok = eachItem(Args, [&](std::string_view Item) {
            ir::InstKind K;
            if (!parseSanitizerKind(Item, K))
              return false;
            Cur.SanitizerKinds |= 1u << static_cast<uint32_t>(K);
            return true;
          });
          if (!Ok)
            return Fail("bad 'sanitize kind' list '" + std::string(Args) +
                        "'");
        } else
          return Fail("'sanitize' needs 'inst' or 'kind'");
      } else if (Keyword == "end") {
        if (!Rest.empty())
          return Fail("trailing junk after 'end'");
        if (!SawFlow)
          return Fail("spec '" + Cur.Name + "' never set 'flow'");
        std::string VErr;
        if (!validateSpec(Cur, VErr))
          return Fail(VErr);
        for (const TaintSpec &S : Specs)
          if (S.Name == Cur.Name)
            return Fail("duplicate spec name '" + Cur.Name + "'");
        Specs.push_back(std::move(Cur));
        InSpec = false;
      } else {
        return Fail("unknown keyword '" + std::string(Keyword) + "'");
      }
    }

    if (LastLine)
      break;
  }

  if (InSpec) {
    Error = "spec '" + Cur.Name + "' not closed with 'end'";
    return false;
  }
  if (Specs.empty()) {
    Error = "no specs in file";
    return false;
  }
  Out = std::move(Specs);
  return true;
}
