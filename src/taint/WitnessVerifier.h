//===- WitnessVerifier.h - Independent path-witness replay ------*- C++ -*-===//
///
/// \file
/// Replays each finding's witness chain against the materialised SVFG and
/// the solved points-to results, independently of the engine that produced
/// it: every hop must be a real edge of the right flavour, the source and
/// sink conditions must re-derive from the oracle, and no sanitizer of the
/// producing spec may sit on the path. Findings are stamped
/// \c Verdict::Verified or \c Verdict::Unverifiable (with the first failing
/// check in \c TaintFinding::Note). The taint ctest label asserts 100% of
/// emitted findings verify on every preset × backend × pts-repr ×
/// coalescing × mode combination.
///
//===----------------------------------------------------------------------===//

#ifndef VSFS_TAINT_WITNESSVERIFIER_H
#define VSFS_TAINT_WITNESSVERIFIER_H

#include "taint/TaintEngine.h"

namespace vsfs {
namespace taint {

class WitnessVerifier {
public:
  WitnessVerifier(const svfg::SVFG &G, const core::PointsToOracle &A)
      : G(G), A(A), M(G.module()) {}

  /// Replays \p F's witness for \p Spec (the spec that produced it) and
  /// stamps the verdict. Returns true when Verified.
  bool verify(const TaintSpec &Spec, TaintFinding &F);

  /// Verifies every finding against its producing spec; returns the number
  /// that verified.
  uint32_t verifyAll(const std::vector<TaintSpec> &Specs,
                     std::vector<TaintFinding> &Findings);

private:
  bool replayObjectFlow(const TaintSpec &Spec, TaintFinding &F);
  bool replayVarFlow(const TaintSpec &Spec, TaintFinding &F);
  bool replaySiteRule(const TaintSpec &Spec, TaintFinding &F);

  /// Stamps Unverifiable with \p Why; always returns false.
  bool fail(TaintFinding &F, const char *Why) const;

  const svfg::SVFG &G;
  const core::PointsToOracle &A;
  const ir::Module &M;
};

} // namespace taint
} // namespace vsfs

#endif // VSFS_TAINT_WITNESSVERIFIER_H
