//===- Report.cpp - Machine-readable findings output ------------*- C++ -*-===//

#include "taint/Report.h"

#include "support/Schemas.h"

#include <cstdio>

using namespace vsfs;
using namespace vsfs::taint;

namespace {

void appendEscaped(std::string &Out, const std::string &S) {
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
}

void appendField(std::string &Out, const char *Key, uint64_t V,
                 bool Comma = true) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "\"%s\": %llu%s", Key,
                static_cast<unsigned long long>(V), Comma ? ", " : "");
  Out += Buf;
}

} // namespace

std::string vsfs::taint::findingsJson(const ir::Module &M,
                                      const std::vector<TaintSpec> &Specs,
                                      const std::vector<TaintFinding> &Findings,
                                      const std::string &Analysis) {
  uint64_t Verified = 0, Unverifiable = 0;
  for (const TaintFinding &F : Findings) {
    if (F.V == Verdict::Verified)
      ++Verified;
    else if (F.V == Verdict::Unverifiable)
      ++Unverifiable;
  }

  std::string Out;
  Out += "{\n  \"schema\": \"";
  Out += schemas::FindingsJson;
  Out += "\",\n  \"analysis\": \"";
  appendEscaped(Out, Analysis);
  Out += "\",\n  ";
  appendField(Out, "num_specs", Specs.size());
  appendField(Out, "num_findings", Findings.size());
  appendField(Out, "verified", Verified);
  appendField(Out, "unverifiable", Unverifiable, false);
  Out += ",\n  \"findings\": [";

  bool First = true;
  for (const TaintFinding &F : Findings) {
    Out += First ? "\n    {" : ",\n    {";
    First = false;
    Out += "\"kind\": \"";
    Out += checker::checkKindName(F.F.Kind);
    Out += "\", \"spec\": \"";
    appendEscaped(Out, F.Spec < Specs.size() ? Specs[F.Spec].Name
                                             : std::string("<unknown>"));
    Out += "\", ";
    appendField(Out, "sink", F.F.Sink);
    if (F.F.Obj != ir::InvalidObj) {
      appendField(Out, "obj", F.F.Obj);
      Out += "\"obj_name\": \"";
      appendEscaped(Out, M.symbols().object(F.F.Obj).Name);
      Out += "\", ";
    }
    appendField(Out, "source", F.F.Source);
    Out += "\"aux_precision\": ";
    Out += F.F.AuxPrecision ? "true" : "false";
    Out += ", \"verdict\": \"";
    Out += verdictName(F.V);
    Out += "\"";
    if (!F.Note.empty()) {
      Out += ", \"note\": \"";
      appendEscaped(Out, F.Note);
      Out += "\"";
    }
    Out += ", \"witness\": [";
    for (size_t I = 0; I < F.Witness.size(); ++I) {
      if (I)
        Out += ", ";
      char Buf[16];
      std::snprintf(Buf, sizeof(Buf), "%u", F.Witness[I]);
      Out += Buf;
    }
    Out += "]}";
  }
  Out += First ? "]\n}\n" : "\n  ]\n}\n";
  return Out;
}
