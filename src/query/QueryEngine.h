//===- QueryEngine.h - Demand-driven points-to queries ----------*- C++ -*-===//
///
/// \file
/// The demand-driven front half of `--mode=demand` (docs/QUERIES.md): a
/// per-query solver over backward slices of the SVFG instead of one
/// whole-program fixpoint.
///
/// Each query names a program position; the engine computes the backward
/// slice of the corresponding SVFG node (svfg/Slice.h), grows a *cumulative*
/// node scope with it, and — when the slice added new nodes — re-solves the
/// configured flow-sensitive solver restricted to that scope. Because the
/// scope is backward-closed, the scoped solve computes exactly the
/// whole-program fixpoint at every in-scope position, so query answers are
/// bit-identical to the exhaustive analysis. Overlapping queries memoise
/// naturally: a query whose slice is already covered reuses the last solved
/// fixpoint (a *slice-cache hit*), and with `--pts-repr=persistent` the
/// hash-consed interning cache makes even the re-solves cheap (the sets a
/// re-solve recomputes intern to the already-present nodes).
///
/// Per-query budgets: every re-solve runs under a fresh \c ResourceBudget
/// built from the configured limits, so one pathological query degrades
/// *that query* to auxiliary precision instead of taking the process down —
/// the next query miss simply re-solves fresh. While degraded, the oracle
/// view answers from the auxiliary analysis (sound, flow-insensitive).
///
/// The engine implements \c core::PointsToOracle, so checker clients run
/// the unchanged exhaustive engine against it; \c runCheckersDemand issues
/// exactly the queries the checkers' walk can touch first.
///
//===----------------------------------------------------------------------===//

#ifndef VSFS_QUERY_QUERYENGINE_H
#define VSFS_QUERY_QUERYENGINE_H

#include "checker/Checker.h"
#include "core/AnalysisRunner.h"
#include "svfg/Slice.h"
#include "taint/TaintEngine.h"

#include <memory>
#include <string>
#include <string_view>

namespace vsfs {
namespace query {

/// Demand-driven query engine over a built \c core::AnalysisContext.
class QueryEngine : public core::PointsToOracle {
public:
  struct Options {
    /// Registered solver backing the scoped solves: "sfs" or "vsfs" (the
    /// flow-sensitive solvers that understand a node scope), or "ander"
    /// (a trivial passthrough — every query answers from the already
    /// solved auxiliary analysis; useful as a precision baseline). "iter"
    /// has no SVFG node space to slice and is rejected.
    std::string Solver = "vsfs";
    /// Passed through to the scoped solver.
    bool OnTheFlyCallGraph = true;
    core::MeldRep LabelRep = core::MeldRep::SparseBits;
    /// Per-query resource limits: each re-solve runs under a fresh
    /// \c ResourceBudget with these limits. All-zero = ungoverned.
    ResourceBudget::Limits QueryLimits{};
  };

  /// True for solver names the engine can slice for (plus "ander").
  static bool supportsSolver(std::string_view Name);

  /// \p Ctx must be built; the engine keeps references into it.
  QueryEngine(core::AnalysisContext &Ctx, Options Opts);

  // --- Queries (grow the scope, may re-solve) -----------------------------

  /// pt(V) as observed at instruction \p I — the whole-program fixpoint
  /// value, computed from \p I's backward slice. Top-level sets are
  /// flow-insensitive per partial SSA, so the answer is \p I-independent;
  /// the position tells the engine *what to slice* so the value is final.
  const PointsTo &ptsAt(ir::InstID I, ir::VarID V);

  /// The contents of object \p O as observed by instruction \p I (the
  /// demand analogue of \c PointerAnalysisResult::ptsOfObjAt).
  const PointsTo &ptsOfObjAt(ir::InstID I, ir::ObjID O);

  /// May a value flow from \p Source's SVFG node to \p Sink's along the
  /// value-flow graph? Slices (and solves) at the sink first, so every
  /// interprocedural edge on a Source→Sink path the solver could discover
  /// is materialised, then walks forward exactly.
  bool reachesSink(ir::InstID Source, ir::InstID Sink);

  /// Grows the scope with \p I's backward slice *without* solving: the next
  /// query re-solves once over the accumulated scope. Batch-prefetching a
  /// query set turns N scope-growing queries (N re-solves) into one solve
  /// plus N slice-cache hits — \c runCheckersDemand does exactly this.
  void prefetch(ir::InstID I);

  // --- PointsToOracle (read-only view over everything queried so far) -----

  /// Answers from the cumulative scoped solver — exact for any variable
  /// whose uses were covered by a query; from the auxiliary analysis while
  /// degraded. Does not grow the scope.
  const PointsTo &ptsOfVar(ir::VarID V) const override;
  const PointsTo &ptsOfObjAt(ir::InstID I, ir::ObjID O) const override;

  // --- Introspection -------------------------------------------------------

  /// "query" StatGroup: queries, slice-cache-hits, solves, degraded
  /// queries, slice/scope sizes (docs/QUERIES.md lists the keys).
  const StatGroup &stats() const { return Stats; }

  /// Queries answered at auxiliary precision because their solve's budget
  /// exhausted. Non-zero means findings derived from this engine should be
  /// flagged \c AuxPrecision when \c degraded() is still true at the end.
  uint64_t degradedQueries() const { return DegradedQueries; }
  /// True while the last scoped solve exhausted its budget (the oracle is
  /// answering from the auxiliary analysis until the next re-solve).
  bool degraded() const { return Solver != nullptr && !SolverValid; }
  /// How the last scoped solve ended.
  Termination lastStatus() const { return LastStatus; }

  const svfg::NodeScope &scope() const { return Scope; }
  const svfg::BackwardSlicer &slicer() const { return Slicer; }
  core::AnalysisContext &context() { return Ctx; }
  const Options &options() const { return Opts; }

  /// Packages the engine's cumulative solver as an \c AnalysisRunner
  /// RunResult (solving the current scope first if no query ever ran), so
  /// the CLI's reporting path treats a demand session like a run:
  /// SolveSeconds is the total across re-solves, Degraded reflects a
  /// still-degraded final state. The engine must not be queried afterwards.
  core::AnalysisRunner::RunResult takeRunResult();

private:
  /// Slice at \p Root into the cumulative scope; returns true when the
  /// slice added nodes (and marks the solver stale).
  bool grow(svfg::NodeID Root);
  /// Slice at \p Root, grow the scope, re-solve on miss; afterwards the
  /// oracle accessors answer the query (from the scoped solver, or from
  /// the auxiliary analysis while degraded).
  void materialise(svfg::NodeID Root);
  void resolve();

  core::AnalysisContext &Ctx;
  Options Opts;
  bool Passthrough; ///< "ander": no slicing, answers from aux.

  svfg::BackwardSlicer Slicer;
  svfg::NodeScope Scope;

  /// The cumulative scoped solver (null until the first miss) and the
  /// budget its last solve ran under (owned here: the solver keeps a
  /// pointer, so the budget must outlive it).
  std::unique_ptr<core::PointerAnalysisResult> Solver;
  std::unique_ptr<ResourceBudget> SolveBudget;
  bool SolverValid = false;
  /// The scope grew (query miss or prefetch) since the last solve.
  bool ScopeDirty = false;
  Termination LastStatus = Termination::Completed;
  double SolveSeconds = 0;
  uint64_t DegradedQueries = 0;

  StatGroup Stats{"query"};
};

/// Runs the bug checkers in demand mode: issues one query per free site,
/// walks forward from the frees over the static *and potential* indirect
/// edges to find every candidate sink the auxiliary analysis cannot rule
/// out, queries each candidate (and each aux-qualifying load, for
/// null-deref sources), then runs the unchanged exhaustive
/// \c checker::ValueFlowChecker against the engine's oracle view. The
/// result is bit-identical to exhaustive-mode findings — the aux-superset
/// candidate tests guarantee every exhaustive finding's sink was queried,
/// and scoped answers at queried positions equal the whole-program
/// fixpoint. Findings are flagged \c AuxPrecision when the engine ends
/// degraded.
std::vector<checker::Finding>
runCheckersDemand(QueryEngine &E, uint32_t KindMask = checker::AllChecks);

/// The spec-engine analogue of \c runCheckersDemand: prefetches and
/// queries exactly the positions the spec set's source, sink and coverage
/// tests consult (free sites, object-flow candidate sinks, uninit-cell
/// candidate loads), then runs the unchanged \c taint::runTaint against
/// the engine's oracle view. Findings are bit-identical to exhaustive mode
/// (witness routes may differ through late-materialised edges, but every
/// finding still replays); flagged \c AuxPrecision when the engine ends
/// degraded.
/// \p TaintStats, when non-null, receives a copy of the spec engine's
/// "taint" StatGroup (the CLI merges it into --stats-json).
std::vector<taint::TaintFinding>
runTaintDemand(QueryEngine &E, const std::vector<taint::TaintSpec> &Specs,
               StatGroup *TaintStats = nullptr);

} // namespace query
} // namespace vsfs

#endif // VSFS_QUERY_QUERYENGINE_H
