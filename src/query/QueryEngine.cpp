//===- QueryEngine.cpp - Demand-driven points-to queries --------*- C++ -*-===//

#include "query/QueryEngine.h"

#include <algorithm>
#include <cassert>

using namespace vsfs;
using namespace vsfs::query;
using namespace vsfs::ir;
using svfg::NodeID;
using svfg::NodeKind;

bool QueryEngine::supportsSolver(std::string_view Name) {
  const auto *E = core::AnalysisRunner::registry().find(Name);
  if (!E)
    return false;
  // "iter" solves over the dense ICFG, which has no SVFG node space to
  // slice; everything registered against the SVFG (plus the passthrough
  // auxiliary) works.
  return E->Name == "sfs" || E->Name == "vsfs" || E->Name == "ander";
}

QueryEngine::QueryEngine(core::AnalysisContext &Ctx, Options Opts)
    : Ctx(Ctx), Opts(std::move(Opts)),
      Passthrough(this->Opts.Solver == "ander"), Slicer(Ctx.svfg()),
      Scope(Ctx.svfg().numNodes()) {
  assert(Ctx.isBuilt() && "QueryEngine needs a built AnalysisContext");
  assert(supportsSolver(this->Opts.Solver) && "unsliceable solver");
  Stats.get("svfg-nodes") = Ctx.svfg().numNodes();
}

bool QueryEngine::grow(NodeID Root) {
  svfg::BackwardSlicer::SliceResult R = Slicer.slice(Root, Scope);
  Stats.max("slice-nodes-max", R.SliceNodes);
  Stats.get("slice-nodes-total") += R.SliceNodes;
  uint64_t Touches = Stats.get("queries") + Stats.get("prefetches");
  Stats.get("slice-nodes-mean") =
      Stats.get("slice-nodes-total") / std::max<uint64_t>(Touches, 1);
  Stats.get("scope-nodes") = Scope.size();
  if (R.NewNodes != 0)
    ScopeDirty = true;
  return R.NewNodes != 0;
}

void QueryEngine::prefetch(InstID I) {
  if (Passthrough)
    return;
  ++Stats.get("prefetches");
  grow(Ctx.svfg().instNode(I));
}

void QueryEngine::materialise(NodeID Root) {
  ++Stats.get("queries");
  grow(Root);
  // Hit: the scope already covers the whole slice (no growth since the
  // last solve, including prefetches) *and* the last solve completed. A
  // degraded solver never serves hits — the next query re-solves fresh
  // under a fresh budget (per-query degradation).
  if (!ScopeDirty && Solver && SolverValid)
    ++Stats.get("slice-cache-hits");
  else
    resolve();
}

void QueryEngine::resolve() {
  ++Stats.get("solves");
  auto NewBudget = std::make_unique<ResourceBudget>(Opts.QueryLimits);
  core::SolverOptions SO;
  SO.OnTheFlyCallGraph = Opts.OnTheFlyCallGraph;
  SO.LabelRep = Opts.LabelRep;
  SO.Budget = NewBudget->anyLimit() ? NewBudget.get() : nullptr;
  SO.Scope = &Scope;
  // Degradation policy is the engine's, per query, not the runner's.
  SO.Policy = core::SolverOptions::OnExhaustion::Fail;
  core::AnalysisRunner::RunResult R =
      core::AnalysisRunner::registry().run(Ctx, Opts.Solver, SO);
  // Replace solver before budget: the outgoing solver holds a pointer to
  // the outgoing budget.
  Solver = std::move(R.Analysis);
  SolveBudget = std::move(NewBudget);
  SolveSeconds += R.SolveSeconds;
  LastStatus = R.Status;
  SolverValid = R.Status == Termination::Completed;
  ScopeDirty = false;
  if (!SolverValid) {
    ++DegradedQueries;
    ++Stats.get("degraded-queries");
  }
}

const PointsTo &QueryEngine::ptsAt(InstID I, VarID V) {
  if (!Passthrough)
    materialise(Ctx.svfg().instNode(I));
  else
    ++Stats.get("queries");
  return ptsOfVar(V);
}

const PointsTo &QueryEngine::ptsOfObjAt(InstID I, ObjID O) {
  if (!Passthrough)
    materialise(Ctx.svfg().instNode(I));
  else
    ++Stats.get("queries");
  return static_cast<const QueryEngine *>(this)->ptsOfObjAt(I, O);
}

bool QueryEngine::reachesSink(InstID Source, InstID Sink) {
  const svfg::SVFG &G = Ctx.svfg();
  NodeID SinkN = G.instNode(Sink);
  NodeID SourceN = G.instNode(Source);
  if (!Passthrough)
    materialise(SinkN); // Materialises every discoverable edge on a path.
  else
    ++Stats.get("queries");
  if (SourceN == SinkN)
    return true;
  // Exact forward BFS over the graph as materialised. Any Source→Sink path
  // lies inside Sink's backward closure, which the scoped solve covered.
  std::vector<char> Visited(G.numNodes(), 0);
  std::vector<NodeID> Queue{SourceN};
  Visited[SourceN] = 1;
  for (size_t Head = 0; Head < Queue.size(); ++Head) {
    NodeID N = Queue[Head];
    auto Visit = [&](NodeID S) {
      if (Visited[S])
        return false;
      Visited[S] = 1;
      Queue.push_back(S);
      return S == SinkN;
    };
    for (NodeID S : G.directSuccs(N))
      if (Visit(S))
        return true;
    for (const svfg::IndEdge &E : G.indirectSuccs(N))
      if (Visit(E.Dst))
        return true;
  }
  return false;
}

const PointsTo &QueryEngine::ptsOfVar(VarID V) const {
  if (Solver && SolverValid)
    return Solver->ptsOfVar(V);
  return Ctx.andersen().ptsOfVar(V);
}

const PointsTo &QueryEngine::ptsOfObjAt(InstID I, ObjID O) const {
  if (Solver && SolverValid)
    return Solver->ptsOfObjAt(I, O);
  (void)I; // Aux fallback is flow-insensitive.
  return Ctx.andersen().ptsOfObj(O);
}

core::AnalysisRunner::RunResult QueryEngine::takeRunResult() {
  if (!Passthrough && (!Solver || ScopeDirty))
    resolve(); // Query-less (or prefetch-only) session: cover the scope.
  core::AnalysisRunner::RunResult R;
  R.Name = core::AnalysisRunner::registry().find(Opts.Solver)->Name;
  R.SolveSeconds = SolveSeconds;
  R.Status = LastStatus;
  if (Passthrough || (Solver && SolverValid)) {
    R.Analysis = Passthrough ? std::make_unique<core::AndersenResult>(
                                   Ctx.andersen())
                             : std::move(Solver);
  } else {
    // Still degraded at the end: hand back the auxiliary result, exactly
    // like the runner's Degrade policy (sound over-approximation).
    R.Analysis = std::make_unique<core::AndersenResult>(Ctx.andersen());
    R.Degraded = true;
  }
  return R;
}

namespace {

/// Field objects alias storage inside their base allocation; bug state
/// lives on the root allocation (mirrors the checker's notion).
ObjID rootObject(const SymbolTable &Syms, ObjID O) {
  while (Syms.object(O).Kind == ObjKind::Field)
    O = Syms.object(O).Base;
  return O;
}

/// The pointer operand when \p Inst dereferences memory, else InvalidVar.
VarID derefPtr(const Instruction &Inst) {
  switch (Inst.Kind) {
  case InstKind::Load:
    return Inst.loadPtr();
  case InstKind::Store:
    return Inst.storePtr();
  case InstKind::Free:
    return Inst.freePtr();
  default:
    return InvalidVar;
  }
}

/// From each freed object's flow, walks forward from free site \p F over
/// the static *plus potential* indirect edges — a superset of any graph
/// the solvers can materialise — and hands every candidate sink the
/// auxiliary analysis cannot rule out to \p Touch. Aux over-approximates
/// the backend, so every exhaustive-mode finding's sink is a candidate.
template <typename TouchFn>
void walkFreedCandidates(const svfg::SVFG &G,
                         const svfg::BackwardSlicer &Slicer, InstID F,
                         const PointsTo &FreedPts, TouchFn Touch) {
  const Module &M = G.module();
  const SymbolTable &Syms = M.symbols();
  const andersen::Andersen &Aux = G.auxAnalysis();
  PointsTo FreedRoots;
  for (uint32_t O : FreedPts)
    if (!Syms.isFunctionObject(O))
      FreedRoots.set(rootObject(Syms, O));
  for (uint32_t O : FreedRoots) {
    std::vector<char> Visited(G.numNodes(), 0);
    std::vector<NodeID> Stack{G.instNode(F)};
    Visited[G.instNode(F)] = 1;
    auto Consider = [&](const svfg::IndEdge &Edge) {
      if (rootObject(Syms, Edge.Obj) != O || Visited[Edge.Dst])
        return;
      Visited[Edge.Dst] = 1;
      Stack.push_back(Edge.Dst);
      const svfg::Node &Node = G.node(Edge.Dst);
      if (Node.Kind != NodeKind::Inst)
        return;
      VarID Ptr = derefPtr(M.inst(Node.Inst));
      if (Ptr == InvalidVar)
        return;
      for (uint32_t P : Aux.ptsOfVar(Ptr))
        if (!Syms.isFunctionObject(P) && rootObject(Syms, P) == O) {
          Touch(Node.Inst, Ptr);
          break;
        }
    };
    while (!Stack.empty()) {
      NodeID N = Stack.back();
      Stack.pop_back();
      for (const svfg::IndEdge &Edge : G.indirectSuccs(N))
        Consider(Edge);
      for (const svfg::IndEdge &Edge : Slicer.potentialIndirectSuccs(N))
        Consider(Edge);
    }
  }
}

/// Uninitialised-cell candidates: loads whose pointer may (per the aux
/// analysis, a superset of any backend) target a cell no store ever
/// initialises. Covers both the null-deref sources — which additionally
/// require flow-sensitive emptiness at the load — and the uninit-read
/// rule's site test.
template <typename TouchFn>
void eachUninitCandidate(const Module &M, const andersen::Andersen &Aux,
                         TouchFn Touch) {
  const SymbolTable &Syms = M.symbols();
  for (InstID I = 0; I < M.numInstructions(); ++I) {
    const Instruction &Inst = M.inst(I);
    if (Inst.Kind != InstKind::Load)
      continue;
    for (uint32_t O : Aux.ptsOfVar(Inst.loadPtr()))
      if (!Syms.isFunctionObject(O) && Aux.ptsOfObj(O).empty()) {
        Touch(I, Inst.loadPtr());
        break;
      }
  }
}

} // namespace

std::vector<checker::Finding> vsfs::query::runCheckersDemand(QueryEngine &E,
                                                             uint32_t KindMask) {
  const svfg::SVFG &G = E.context().svfg();
  const Module &M = G.module();
  const andersen::Andersen &Aux = G.auxAnalysis();
  const svfg::BackwardSlicer &Slicer = E.slicer();

  const bool WantFrees =
      (KindMask & (checker::checkBit(checker::CheckKind::UseAfterFree) |
                   checker::checkBit(checker::CheckKind::DoubleFree) |
                   checker::checkBit(checker::CheckKind::Leak))) != 0;
  const bool WantWalk =
      (KindMask & (checker::checkBit(checker::CheckKind::UseAfterFree) |
                   checker::checkBit(checker::CheckKind::DoubleFree))) != 0;
  const bool WantNull =
      (KindMask & checker::checkBit(checker::CheckKind::NullDeref)) != 0;

  auto walkFreed = [&](InstID F, const PointsTo &FreedPts, auto &&Touch) {
    walkFreedCandidates(G, Slicer, F, FreedPts, Touch);
  };
  auto eachNullCandidate = [&](auto &&Touch) {
    eachUninitCandidate(M, Aux, Touch);
  };

  // Phase 0: prefetch. Union every slice the query phases below will need
  // into the scope *before* the first answer, so the engine's lazy solve
  // runs once over the final scope and the queries below answer as
  // slice-cache hits. (Interleaving scope growth with answers re-solved
  // the growing scope once per miss — quadratic on checker workloads.)
  // The walk roots come from the auxiliary freed sets, a superset of the
  // exact freed sets phase 2 walks, so phase 2 touches no new nodes.
  for (InstID F = 0; WantFrees && F < M.numInstructions(); ++F) {
    const Instruction &FreeInst = M.inst(F);
    if (FreeInst.Kind != InstKind::Free)
      continue;
    E.prefetch(F);
    if (WantWalk)
      walkFreed(F, Aux.ptsOfVar(FreeInst.freePtr()),
                [&](InstID I, VarID) { E.prefetch(I); });
  }
  if (WantNull)
    eachNullCandidate([&](InstID I, VarID) { E.prefetch(I); });

  // Phase 1: one query per free site — the checkers' freed-object sets
  // (uaf/dfree sources, leak coverage) must be fixpoint-exact.
  // Phase 2: query every candidate sink on the freed objects' flow, so the
  // scoped answer there is exact and every edge on the free→sink paths is
  // materialised for the final walk.
  if (WantFrees) {
    for (InstID F = 0; F < M.numInstructions(); ++F) {
      const Instruction &FreeInst = M.inst(F);
      if (FreeInst.Kind != InstKind::Free)
        continue;
      const PointsTo &FreedPts = E.ptsAt(F, FreeInst.freePtr());
      if (WantWalk)
        walkFreed(F, FreedPts,
                  [&](InstID I, VarID Ptr) { E.ptsAt(I, Ptr); });
    }
  }

  // Phase 3: query every load with an aux-qualifying candidate so the
  // null-deref source set — which iterates the backend's pt(loadPtr) — is
  // evaluated on exact sets.
  if (WantNull)
    eachNullCandidate([&](InstID I, VarID Ptr) { E.ptsAt(I, Ptr); });

  // Final pass: the unchanged exhaustive engine, with the query engine as
  // its oracle. Every points-to set the walk can consult is now exact (or
  // the whole session is degraded to aux precision and flagged below).
  std::vector<checker::Finding> Findings =
      checker::runCheckers(G, E, KindMask);
  if (E.degraded())
    for (checker::Finding &F : Findings)
      F.AuxPrecision = true;
  return Findings;
}

std::vector<taint::TaintFinding>
vsfs::query::runTaintDemand(QueryEngine &E,
                            const std::vector<taint::TaintSpec> &Specs,
                            StatGroup *TaintStats) {
  const svfg::SVFG &G = E.context().svfg();
  const Module &M = G.module();
  const andersen::Andersen &Aux = G.auxAnalysis();
  const svfg::BackwardSlicer &Slicer = E.slicer();

  // What the spec set needs exact answers for. Every free site's pointee
  // set feeds uaf/dfree sources, leak coverage and the untracked-free site
  // test; object-flow walks additionally query each candidate sink; any
  // uninit-load source (null's var flow, uread's site test) queries the
  // aux-qualifying loads.
  bool WantAllFrees = false, WantWalkAllFrees = false, WantUninit = false;
  std::vector<InstID> ListedFrees;
  for (const taint::TaintSpec &S : Specs) {
    switch (S.Source) {
    case taint::SourceEvent::FreeSite:
      WantAllFrees = true;
      WantWalkAllFrees = true;
      break;
    case taint::SourceEvent::HeapAlloc:
    case taint::SourceEvent::UntrackedFree:
      WantAllFrees = true;
      break;
    case taint::SourceEvent::UninitLoad:
      WantUninit = true;
      break;
    case taint::SourceEvent::InstList:
      // Var-flow list sources taint unconditionally — no oracle involved;
      // object-flow list sources are free sites to query and walk.
      if (S.Flow == taint::FlowDomain::ObjectFlow)
        for (InstID I : S.SourceInsts)
          if (I < M.numInstructions() && M.inst(I).Kind == InstKind::Free)
            ListedFrees.push_back(I);
      break;
    }
  }
  std::sort(ListedFrees.begin(), ListedFrees.end());
  ListedFrees.erase(std::unique(ListedFrees.begin(), ListedFrees.end()),
                    ListedFrees.end());

  // The free sites to query, and the subset to walk candidates from.
  auto eachFree = [&](auto &&Fn) {
    if (WantAllFrees) {
      for (InstID F = 0; F < M.numInstructions(); ++F)
        if (M.inst(F).Kind == InstKind::Free)
          Fn(F, WantWalkAllFrees);
      if (WantWalkAllFrees)
        return; // Listed frees were walked with everything else.
      for (InstID F : ListedFrees)
        Fn(F, true);
    } else {
      for (InstID F : ListedFrees)
        Fn(F, true);
    }
  };

  // Phase 0: prefetch every slice the query phases need (one solve over
  // the final scope; see runCheckersDemand). Walk roots come from the
  // auxiliary freed sets, a superset of the exact sets walked below.
  eachFree([&](InstID F, bool Walk) {
    E.prefetch(F);
    if (Walk)
      walkFreedCandidates(G, Slicer, F,
                          Aux.ptsOfVar(M.inst(F).freePtr()),
                          [&](InstID I, VarID) { E.prefetch(I); });
  });
  if (WantUninit)
    eachUninitCandidate(M, Aux, [&](InstID I, VarID) { E.prefetch(I); });

  // Phases 1+2: exact pointee sets at every free, and exact answers at
  // every candidate sink on the freed objects' flow.
  eachFree([&](InstID F, bool Walk) {
    const PointsTo &FreedPts = E.ptsAt(F, M.inst(F).freePtr());
    if (Walk)
      walkFreedCandidates(G, Slicer, F, FreedPts,
                          [&](InstID I, VarID Ptr) { E.ptsAt(I, Ptr); });
  });

  // Phase 3: exact pt(loadPtr) at every uninit-cell candidate load.
  if (WantUninit)
    eachUninitCandidate(M, Aux,
                        [&](InstID I, VarID Ptr) { E.ptsAt(I, Ptr); });

  // Final pass: the unchanged spec engine with the query engine as its
  // oracle — bit-identical findings to exhaustive mode (witnesses may
  // route differently through late-materialised edges; the taint tests
  // assert every one still verifies).
  taint::TaintEngine TE(G, E);
  std::vector<taint::TaintFinding> Findings = TE.run(Specs);
  if (TaintStats)
    *TaintStats = TE.stats();
  if (E.degraded())
    for (taint::TaintFinding &F : Findings)
      F.F.AuxPrecision = true;
  return Findings;
}
