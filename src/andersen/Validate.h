//===- Validate.h - Andersen solution validator -----------------*- C++ -*-===//
///
/// \file
/// Checks that a solved Andersen analysis actually satisfies every
/// inclusion constraint the program induces — a direct, solver-independent
/// encoding of the [ADDR]/[COPY]/[PHI]/[FIELD]/[LOAD]/[STORE]/[CALL]/[RET]
/// closure rules. The solver being checked uses worklists, difference
/// propagation and cycle collapsing; this validator uses none of them, so
/// a bug in those optimisations cannot hide from it.
///
/// Used by the test suite on generated programs; also handy as a debugging
/// aid when modifying the solver.
///
//===----------------------------------------------------------------------===//

#ifndef VSFS_ANDERSEN_VALIDATE_H
#define VSFS_ANDERSEN_VALIDATE_H

#include "andersen/Andersen.h"

#include <string>
#include <vector>

namespace vsfs {
namespace andersen {

/// Returns all constraint violations found in \p A's solution for \p M
/// (empty means the solution is a valid closure). \p A must be solved.
std::vector<std::string> validateSolution(const ir::Module &M,
                                          const Andersen &A);

} // namespace andersen
} // namespace vsfs

#endif // VSFS_ANDERSEN_VALIDATE_H
