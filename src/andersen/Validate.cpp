//===- Validate.cpp - Andersen solution validator ---------------*- C++ -*-===//

#include "andersen/Validate.h"

#include "ir/Printer.h"

using namespace vsfs;
using namespace vsfs::andersen;
using namespace vsfs::ir;

namespace {

/// Copies the symbol table interface for field lookups without mutating:
/// by validation time every needed field object exists (the solver created
/// them), so getFieldObject only reads.
ObjID fieldObject(Module &M, ObjID Base, uint32_t Offset) {
  return M.symbols().getFieldObject(Base, Offset);
}

} // namespace

std::vector<std::string>
vsfs::andersen::validateSolution(const Module &MConst, const Andersen &A) {
  // getFieldObject is memoised; see fieldObject() above.
  Module &M = const_cast<Module &>(MConst);
  std::vector<std::string> Errors;
  auto Fail = [&Errors, &M](InstID I, const std::string &Why) {
    Errors.push_back("constraint violated at '" + printInst(M, I) +
                     "': " + Why);
  };
  auto Contains = [](const PointsTo &Sup, const PointsTo &Sub) {
    return Sup.contains(Sub);
  };

  for (InstID I = 0; I < M.numInstructions(); ++I) {
    const Instruction &Inst = M.inst(I);
    switch (Inst.Kind) {
    case InstKind::Alloc:
      // [ADDR]: o ∈ pt(p).
      if (!A.ptsOfVar(Inst.Dst).test(Inst.allocObject()))
        Fail(I, "allocated object missing from pt(dst)");
      break;
    case InstKind::Copy:
      // [COPY]: pt(src) ⊆ pt(dst).
      if (!Contains(A.ptsOfVar(Inst.Dst), A.ptsOfVar(Inst.copySrc())))
        Fail(I, "pt(src) not within pt(dst)");
      break;
    case InstKind::Phi:
      for (VarID Src : Inst.phiSrcs())
        if (!Contains(A.ptsOfVar(Inst.Dst), A.ptsOfVar(Src)))
          Fail(I, "pt(phi operand) not within pt(dst)");
      break;
    case InstKind::FieldAddr:
      // [FIELD]: ∀o ∈ pt(base): fld(o, k) ∈ pt(dst).
      for (uint32_t O : A.ptsOfVar(Inst.fieldBase()))
        if (!A.ptsOfVar(Inst.Dst).test(
                fieldObject(M, O, Inst.fieldOffset())))
          Fail(I, "field object of pointee missing from pt(dst)");
      break;
    case InstKind::Load:
      // [LOAD]: ∀o ∈ pt(q): pt(o) ⊆ pt(p).
      for (uint32_t O : A.ptsOfVar(Inst.loadPtr()))
        if (!Contains(A.ptsOfVar(Inst.Dst), A.ptsOfObj(O)))
          Fail(I, "pt(pointee of q) not within pt(p)");
      break;
    case InstKind::Store:
      // [STORE]: ∀o ∈ pt(p): pt(q) ⊆ pt(o).
      for (uint32_t O : A.ptsOfVar(Inst.storePtr()))
        if (!Contains(A.ptsOfObj(O), A.ptsOfVar(Inst.storeVal())))
          Fail(I, "pt(value) not within pt(pointee of p)");
      break;
    case InstKind::Free:
      break; // No points-to constraint.
    case InstKind::Call: {
      // [CALL]/[RET], plus call-graph completeness for indirect calls:
      // every function object in the callee pointer's set is an edge.
      std::vector<FunID> Expected;
      if (Inst.isIndirectCall()) {
        for (uint32_t O : A.ptsOfVar(Inst.indirectCalleeVar()))
          if (M.symbols().isFunctionObject(O))
            Expected.push_back(M.symbols().object(O).Func);
      } else {
        Expected.push_back(Inst.directCallee());
      }
      for (FunID Callee : Expected) {
        if (!A.callGraph().hasEdge(I, Callee)) {
          Fail(I, "missing call-graph edge to @" +
                      M.function(Callee).Name);
          continue;
        }
        const Function &F = M.function(Callee);
        size_t N = std::min(Inst.callArgs().size(), F.Params.size());
        for (size_t K = 0; K < N; ++K)
          if (!Contains(A.ptsOfVar(F.Params[K]),
                        A.ptsOfVar(Inst.callArgs()[K])))
            Fail(I, "pt(arg) not within pt(param) of @" + F.Name);
        VarID Ret = M.inst(F.Exit).exitRet();
        if (Inst.Dst != InvalidVar && Ret != InvalidVar &&
            !Contains(A.ptsOfVar(Inst.Dst), A.ptsOfVar(Ret)))
          Fail(I, "pt(return of @" + F.Name + ") not within pt(dst)");
      }
      break;
    }
    case InstKind::FunEntry:
    case InstKind::FunExit:
      break;
    }
  }
  return Errors;
}
