//===- Andersen.cpp - Inclusion-based points-to analysis --------*- C++ -*-===//

#include "andersen/Andersen.h"

#include "andersen/OVS.h"

#include "graph/Graph.h"
#include "graph/SCC.h"

#include <cassert>

using namespace vsfs;
using namespace vsfs::andersen;
using namespace vsfs::ir;

Andersen::Andersen(Module &M, Options Opts)
    : M(M), Opts(Opts), NumVars(M.symbols().numVars()) {
  uint32_t Initial = NumVars + M.symbols().numObjects();
  ensureNode(Initial == 0 ? 0 : Initial - 1);
}

void Andersen::ensureNode(uint32_t N) {
  uint32_t Size = N + 1;
  if (Size <= Pts.size())
    return;
  Pts.resize(Size);
  Done.resize(Size);
  Succs.resize(Size);
  Loads.resize(Size);
  Stores.resize(Size);
  Geps.resize(Size);
  IndCalls.resize(Size);
  UF.grow(Size);
}

void Andersen::addCopyEdge(uint32_t From, uint32_t To) {
  From = rep(From);
  To = rep(To);
  if (From == To)
    return;
  if (!Succs[From].insert(To).second)
    return;
  ++CopyEdges;
  // A new edge must carry everything already known at its source, including
  // bits marked Done (those were only pushed through the old edges).
  if (Pts[To].unionWith(Pts[From]))
    WorkList.push(To);
}

void Andersen::connectCall(InstID CallSite, FunID Callee) {
  const Instruction &Call = M.inst(CallSite);
  const Function &F = M.function(Callee);
  const auto &Args = Call.callArgs();
  size_t N = std::min(Args.size(), F.Params.size());
  for (size_t I = 0; I < N; ++I)
    addCopyEdge(varNode(Args[I]), varNode(F.Params[I]));
  if (Call.Dst != InvalidVar) {
    VarID Ret = M.inst(F.Exit).exitRet();
    if (Ret != InvalidVar)
      addCopyEdge(varNode(Ret), varNode(Call.Dst));
  }
}

void Andersen::buildConstraints() {
  for (InstID I = 0; I < M.numInstructions(); ++I) {
    const Instruction &Inst = M.inst(I);
    switch (Inst.Kind) {
    case InstKind::Alloc: {
      uint32_t N = rep(varNode(Inst.Dst));
      if (Pts[N].set(Inst.allocObject()))
        WorkList.push(N);
      break;
    }
    case InstKind::Copy:
      addCopyEdge(varNode(Inst.copySrc()), varNode(Inst.Dst));
      break;
    case InstKind::Phi:
      for (VarID Src : Inst.phiSrcs())
        addCopyEdge(varNode(Src), varNode(Inst.Dst));
      break;
    case InstKind::FieldAddr:
      Geps[rep(varNode(Inst.fieldBase()))].push_back(
          {varNode(Inst.Dst), Inst.fieldOffset()});
      WorkList.push(rep(varNode(Inst.fieldBase())));
      break;
    case InstKind::Load:
      Loads[rep(varNode(Inst.loadPtr()))].push_back({varNode(Inst.Dst)});
      WorkList.push(rep(varNode(Inst.loadPtr())));
      break;
    case InstKind::Store:
      Stores[rep(varNode(Inst.storePtr()))].push_back(
          {varNode(Inst.storeVal())});
      WorkList.push(rep(varNode(Inst.storePtr())));
      break;
    case InstKind::Free:
      // Flow-insensitive: deallocation does not constrain points-to sets.
      break;
    case InstKind::Call:
      if (Inst.isIndirectCall()) {
        IndCalls[rep(varNode(Inst.indirectCalleeVar()))].push_back(I);
        WorkList.push(rep(varNode(Inst.indirectCalleeVar())));
      } else {
        if (CG.addEdge(I, Inst.directCallee()))
          connectCall(I, Inst.directCallee());
      }
      break;
    case InstKind::FunEntry:
    case InstKind::FunExit:
      break; // Parameter/return flow is wired per call edge.
    }
  }
}

PointsTo Andersen::pendingDelta(uint32_t N) {
  PointsTo Delta = Pts[N];
  Delta.intersectWithComplement(Done[N]);
  return Delta;
}

void Andersen::processNode(uint32_t N) {
  assert(N == rep(N) && "process representatives only");
  PointsTo Delta = pendingDelta(N);
  if (Delta.empty() && Succs[N].empty())
    return;
  Done[N].unionWith(Delta);

  // Copy the constraint lists: processing a field-addr constraint can create
  // a new object, growing (and relocating) the per-node tables.
  const std::vector<LoadCons> NodeLoads = Loads[N];
  const std::vector<StoreCons> NodeStores = Stores[N];
  const std::vector<GepCons> NodeGeps = Geps[N];
  const std::vector<InstID> NodeIndCalls = IndCalls[N];

  // Complex constraints driven by the new pointees.
  for (uint32_t O : Delta) {
    for (const LoadCons &L : NodeLoads)
      addCopyEdge(objNode(O), varNode(L.Dst));
    for (const StoreCons &S : NodeStores)
      addCopyEdge(varNode(S.Src), objNode(O));
    for (const GepCons &G : NodeGeps) {
      ObjID Fld = M.symbols().getFieldObject(O, G.Offset);
      ensureNode(objNode(Fld));
      uint32_t DstRep = rep(varNode(G.Dst));
      if (Pts[DstRep].set(Fld))
        WorkList.push(DstRep);
    }
    if (!NodeIndCalls.empty() && M.symbols().isFunctionObject(O)) {
      FunID Callee = M.symbols().object(O).Func;
      for (InstID CS : NodeIndCalls)
        if (CG.addEdge(CS, Callee))
          connectCall(CS, Callee);
    }
  }

  // Inclusion propagation of the delta.
  if (!Delta.empty()) {
    for (uint32_t S : Succs[N]) {
      uint32_t SR = rep(S);
      if (SR == N)
        continue;
      ++Propagations;
      if (Pts[SR].unionWith(Delta))
        WorkList.push(SR);
    }
  }
}

void Andersen::collapseCycles() {
  ++Stats.get("scc-passes");
  const uint32_t Size = static_cast<uint32_t>(Pts.size());
  graph::AdjacencyGraph G(Size);
  for (uint32_t N = 0; N < Size; ++N) {
    if (N != rep(N))
      continue;
    for (uint32_t S : Succs[N]) {
      uint32_t SR = rep(S);
      if (SR != N)
        G.addEdge(N, SR);
    }
  }
  graph::SCCResult SCCs = graph::computeSCCs(G);
  for (const auto &Members : SCCs.Members) {
    // Only current representatives matter; non-reps are isolated nodes in G.
    if (Members.size() < 2)
      continue;
    uint32_t Lead = rep(Members.front());
    for (size_t I = 1; I < Members.size(); ++I) {
      uint32_t Node = Members[I];
      if (rep(Node) == Lead)
        continue;
      ++Stats.get("nodes-collapsed");
      mergeNodeInto(Lead, Node);
    }
    // Self-edges may remain as stale entries pointing at merged nodes;
    // rep() mapping at use makes them no-ops.
    WorkList.push(Lead);
  }
}

void Andersen::mergeNodeInto(uint32_t Lead, uint32_t Node) {
  assert(Lead == rep(Lead) && Node == rep(Node) && Lead != Node &&
         "merge distinct representatives");
  UF.uniteInto(Lead, Node);
  Pts[Lead].unionWith(Pts[Node]);
  Pts[Node].clear();
  // Bits count as processed only if both halves processed them.
  Done[Lead].intersectWith(Done[Node]);
  Done[Node].clear();
  Succs[Lead].insert(Succs[Node].begin(), Succs[Node].end());
  Succs[Node].clear();
  Succs[Lead].erase(Lead);
  Succs[Lead].erase(Node);
  auto MoveAll = [](auto &From, auto &To) {
    To.insert(To.end(), From.begin(), From.end());
    From.clear();
    From.shrink_to_fit();
  };
  MoveAll(Loads[Node], Loads[Lead]);
  MoveAll(Stores[Node], Stores[Lead]);
  MoveAll(Geps[Node], Geps[Lead]);
  MoveAll(IndCalls[Node], IndCalls[Lead]);
}

void Andersen::applySubstitution() {
  OfflineSubstitution OVS(M);
  // Group variables by class and merge each class onto one node.
  std::vector<uint32_t> LeadOfClass(OVS.numClasses(), UINT32_MAX);
  for (ir::VarID V = 0; V < NumVars; ++V) {
    uint32_t C = OVS.classOf(V);
    uint32_t Node = rep(varNode(V));
    if (LeadOfClass[C] == UINT32_MAX) {
      LeadOfClass[C] = Node;
      continue;
    }
    uint32_t Lead = rep(LeadOfClass[C]);
    if (Lead != Node) {
      ++Stats.get("vars-substituted");
      mergeNodeInto(Lead, Node);
      WorkList.push(Lead);
    }
    LeadOfClass[C] = Lead;
  }
  Stats.get("ovs-classes") = OVS.numClasses();
}

void Andersen::solve() {
  if (Solved)
    return;
  Solved = true;
  buildConstraints();
  if (Opts.OfflineSubstitution)
    applySubstitution();
  collapseCycles();

  const uint64_t CollapsePeriod =
      std::max<uint64_t>(50000, static_cast<uint64_t>(Pts.size()));
  while (!WorkList.empty()) {
    if (Opts.Budget && !Opts.Budget->checkpoint()) {
      Term = Opts.Budget->status();
      break; // Cooperative cancellation: keep the monotone partial state.
    }
    uint32_t N = rep(WorkList.pop());
    processNode(N);
    if (++ProcessedSinceCollapse >= CollapsePeriod) {
      ProcessedSinceCollapse = 0;
      collapseCycles();
    }
  }

  Stats.get("nodes") = Pts.size();
  Stats.get("objects") = M.symbols().numObjects();
}

const PointsTo &Andersen::ptsOfVar(VarID V) const {
  assert(V < NumVars && "unknown variable");
  return Pts[rep(varNode(V))];
}

const PointsTo &Andersen::ptsOfObj(ObjID O) const {
  uint32_t N = NumVars + O;
  assert(N < Pts.size() && "unknown object");
  return Pts[rep(N)];
}
