//===- OVS.h - Offline variable substitution (HVN) --------------*- C++ -*-===//
///
/// \file
/// Offline variable substitution (Rountev & Chandra), in the hash-based
/// value-numbering form (Hardekopf & Lin): before Andersen's analysis
/// runs, find top-level variables that provably end up with *equal*
/// points-to sets and collapse each class to one solver node.
///
/// §VI of the paper observes that object versioning "is an instance of
/// offline variable substitution" — the same idea, applied offline to the
/// auxiliary analysis itself: assign labels such that equal label sets
/// imply equal solutions, then share.
///
/// Labelling rules over the offline (top-level) constraint graph, processed
/// on the SCC condensation in topological order:
///  - an Alloc destination holds a fresh label (a distinct points-to seed);
///  - "indirect" nodes — load results, destinations of indirect calls, and
///    parameters/returns reachable through address-taken functions — hold
///    fresh labels (their inputs are unknown offline);
///  - a FieldAddr destination's label is a memoised function of its base's
///    label and the offset (equal bases at equal offsets ⇒ equal fields);
///  - every other node's label is the union of its predecessors' labels
///    (hash-consed);
///  - an SCC shares one label.
///
/// Variables with identical labels form one substitution class; Andersen
/// solves one node per class. Precision is unchanged — the classes merge
/// only provably-equal solutions — which tests/ovs_test.cpp verifies
/// against the unsubstituted solver.
///
//===----------------------------------------------------------------------===//

#ifndef VSFS_ANDERSEN_OVS_H
#define VSFS_ANDERSEN_OVS_H

#include "ir/Module.h"
#include "support/Statistics.h"

#include <vector>

namespace vsfs {
namespace andersen {

/// Computes pointer-equivalence classes of top-level variables.
class OfflineSubstitution {
public:
  explicit OfflineSubstitution(const ir::Module &M);

  /// The substitution class of \p V (dense IDs in [0, numClasses())).
  /// Variables sharing a class have provably equal Andersen solutions.
  uint32_t classOf(ir::VarID V) const { return ClassOf[V]; }
  uint32_t numClasses() const { return NumClasses; }

  /// Number of variables sharing a class with at least one other variable
  /// (the substitution opportunity OVS found).
  uint32_t numCollapsibleVars() const { return Collapsible; }

  const StatGroup &stats() const { return Stats; }

private:
  std::vector<uint32_t> ClassOf;
  uint32_t NumClasses = 0;
  uint32_t Collapsible = 0;
  StatGroup Stats{"ovs"};
};

} // namespace andersen
} // namespace vsfs

#endif // VSFS_ANDERSEN_OVS_H
