//===- Andersen.h - Inclusion-based points-to analysis ----------*- C++ -*-===//
///
/// \file
/// Andersen-style flow-insensitive, inclusion-based points-to analysis with
/// on-the-fly call-graph construction and field sensitivity. This is the
/// auxiliary ("staged") analysis of SFS/VSFS: its results build the memory
/// SSA form and the SVFG, and bound which objects each store/load may
/// define/use.
///
/// The solver runs over a unified node space (top-level variables followed
/// by abstract objects), propagating points-to sets along inclusion (copy)
/// edges with difference propagation, and collapsing copy-edge cycles with
/// periodic Tarjan passes over the constraint graph.
///
//===----------------------------------------------------------------------===//

#ifndef VSFS_ANDERSEN_ANDERSEN_H
#define VSFS_ANDERSEN_ANDERSEN_H

#include "adt/PointsTo.h"
#include "adt/UnionFind.h"
#include "adt/WorkList.h"
#include "andersen/CallGraph.h"
#include "ir/Module.h"
#include "support/Budget.h"
#include "support/Statistics.h"

#include <unordered_set>
#include <vector>

namespace vsfs {
namespace andersen {

/// Runs Andersen's analysis on a module and exposes the results.
///
/// Field objects may be created during solving (FieldAddr on heap objects),
/// so the analysis mutates the module's symbol table; all later stages see
/// the complete object universe.
class Andersen {
public:
  struct Options {
    /// Collapse pointer-equivalent variables before solving (offline
    /// variable substitution, see andersen/OVS.h). Precision-neutral.
    bool OfflineSubstitution = false;
    /// Cooperative resource governor polled by the solve loop; null (the
    /// default) disables polling entirely. Not owned; must outlive the
    /// analysis. Never step-governed here — the auxiliary analysis is the
    /// degradation anchor, bounded only by the deadline/memory ceilings.
    ResourceBudget *Budget = nullptr;
  };

  Andersen(ir::Module &M, Options Opts);
  explicit Andersen(ir::Module &M) : Andersen(M, Options()) {}

  /// Solves to a fixed point — or until the configured budget cancels it.
  /// Idempotent.
  void solve();

  /// How solve() ended; anything but Completed means the points-to sets
  /// are a partial (under-approximate) state, unusable as a sound
  /// degradation target.
  Termination termination() const { return Term; }

  /// Points-to set of a top-level variable.
  const PointsTo &ptsOfVar(ir::VarID V) const;
  /// Points-to set of an address-taken object (what its memory points to).
  const PointsTo &ptsOfObj(ir::ObjID O) const;

  /// The call graph including resolved indirect calls.
  const CallGraph &callGraph() const { return CG; }

  /// Work statistics (propagations, SCC collapses, ...).
  const StatGroup &stats() const { return Stats; }
  ir::Module &module() { return M; }

private:
  // --- Node space -------------------------------------------------------
  // Node IDs: [0, NumVars) are variables; NumVars + O is object O.
  uint32_t varNode(ir::VarID V) const { return V; }
  uint32_t objNode(ir::ObjID O) const { return NumVars + O; }
  bool isObjNode(uint32_t N) const { return N >= NumVars; }
  ir::ObjID nodeObj(uint32_t N) const { return N - NumVars; }

  /// Representative node after cycle collapsing.
  uint32_t rep(uint32_t N) const { return UF.find(N); }

  /// Grows per-node tables to cover node \p N (field objects appear lazily).
  void ensureNode(uint32_t N);

  // --- Constraint construction -------------------------------------------
  void buildConstraints();
  void addCopyEdge(uint32_t From, uint32_t To);
  void connectCall(ir::InstID CallSite, ir::FunID Callee);

  // --- Solving ------------------------------------------------------------
  void processNode(uint32_t N);
  void collapseCycles();
  /// Merges node \p Node into representative \p Lead (points-to sets,
  /// constraint lists, edges); used by cycle collapsing and substitution.
  void mergeNodeInto(uint32_t Lead, uint32_t Node);
  /// Applies offline variable substitution's classes to the node space.
  void applySubstitution();

  /// Pending (unprocessed) part of a node's points-to set.
  PointsTo pendingDelta(uint32_t N);

  ir::Module &M;
  Options Opts;
  uint32_t NumVars;

  /// Per-node points-to sets and the already-processed subsets.
  std::vector<PointsTo> Pts;
  std::vector<PointsTo> Done;
  /// Copy (inclusion) edges, deduplicated.
  std::vector<std::unordered_set<uint32_t>> Succs;

  /// Complex constraints indexed by the node whose points-to set drives
  /// them. Loads attach to the loaded pointer, stores to the stored-through
  /// pointer, field-addrs to the base pointer, indirect calls to the callee
  /// pointer.
  struct LoadCons {
    uint32_t Dst;
  };
  struct StoreCons {
    uint32_t Src;
  };
  struct GepCons {
    uint32_t Dst;
    uint32_t Offset;
  };
  std::vector<std::vector<LoadCons>> Loads;
  std::vector<std::vector<StoreCons>> Stores;
  std::vector<std::vector<GepCons>> Geps;
  std::vector<std::vector<ir::InstID>> IndCalls;

  adt::UnionFind UF;
  adt::FIFOWorkList WorkList;
  CallGraph CG;
  StatGroup Stats{"andersen"};
  /// Interned hot-loop counters (see StatCounter): bumped per copy edge /
  /// per propagated delta, where a map lookup each time is measurable.
  StatCounter CopyEdges = Stats.counter("copy-edges");
  StatCounter Propagations = Stats.counter("propagations");

  uint64_t ProcessedSinceCollapse = 0;
  bool Solved = false;
  Termination Term = Termination::Completed;
};

} // namespace andersen
} // namespace vsfs

#endif // VSFS_ANDERSEN_ANDERSEN_H
