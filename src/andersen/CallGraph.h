//===- CallGraph.h - Call graph with indirect-call edges --------*- C++ -*-===//
///
/// \file
/// The call graph discovered by a pointer analysis. Direct call edges come
/// straight from the IR; indirect edges are added as the analysis resolves
/// function-pointer targets (Andersen's for the auxiliary stage, or the
/// flow-sensitive analysis itself when resolving on the fly).
///
//===----------------------------------------------------------------------===//

#ifndef VSFS_ANDERSEN_CALLGRAPH_H
#define VSFS_ANDERSEN_CALLGRAPH_H

#include "ir/Module.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

namespace vsfs {
namespace andersen {

/// Callsite -> callee multimap plus reverse index.
class CallGraph {
public:
  /// Adds an edge; returns true if it was new.
  bool addEdge(ir::InstID CallSite, ir::FunID Callee) {
    auto &Out = CalleesOf[CallSite];
    if (std::find(Out.begin(), Out.end(), Callee) != Out.end())
      return false;
    Out.push_back(Callee);
    CallersOf[Callee].push_back(CallSite);
    ++NumEdgesCount;
    return true;
  }

  bool hasEdge(ir::InstID CallSite, ir::FunID Callee) const {
    auto It = CalleesOf.find(CallSite);
    if (It == CalleesOf.end())
      return false;
    return std::find(It->second.begin(), It->second.end(), Callee) !=
           It->second.end();
  }

  /// Callees of \p CallSite (empty if unresolved).
  const std::vector<ir::FunID> &callees(ir::InstID CallSite) const {
    static const std::vector<ir::FunID> Empty;
    auto It = CalleesOf.find(CallSite);
    return It == CalleesOf.end() ? Empty : It->second;
  }

  /// Callsites that may invoke \p Callee.
  const std::vector<ir::InstID> &callers(ir::FunID Callee) const {
    static const std::vector<ir::InstID> Empty;
    auto It = CallersOf.find(Callee);
    return It == CallersOf.end() ? Empty : It->second;
  }

  uint64_t numEdges() const { return NumEdgesCount; }

  /// All callsites with at least one callee.
  std::vector<ir::InstID> callSites() const {
    std::vector<ir::InstID> Sites;
    Sites.reserve(CalleesOf.size());
    for (const auto &[CS, Callees] : CalleesOf)
      Sites.push_back(CS);
    std::sort(Sites.begin(), Sites.end());
    return Sites;
  }

private:
  std::unordered_map<ir::InstID, std::vector<ir::FunID>> CalleesOf;
  std::unordered_map<ir::FunID, std::vector<ir::InstID>> CallersOf;
  uint64_t NumEdgesCount = 0;
};

} // namespace andersen
} // namespace vsfs

#endif // VSFS_ANDERSEN_CALLGRAPH_H
