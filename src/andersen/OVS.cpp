//===- OVS.cpp - Offline variable substitution (HVN) ------------*- C++ -*-===//

#include "andersen/OVS.h"

#include "adt/LabelStore.h"
#include "graph/Graph.h"
#include "graph/SCC.h"

#include <unordered_map>

using namespace vsfs;
using namespace vsfs::andersen;
using namespace vsfs::ir;

namespace {

/// How a variable's label is computed from its (single, partial-SSA)
/// definition.
enum class DefRule : uint8_t {
  Fresh, ///< alloc dst, load dst, indirect-call dst, address-taken params
  Union, ///< copy/phi/direct-call dst/param: union of input labels
  Gep,   ///< field-addr dst: a memoised function of (base label, offset)
  None   ///< no definition seen (dead name): the empty label
};

} // namespace

OfflineSubstitution::OfflineSubstitution(const Module &M) {
  const uint32_t N = M.symbols().numVars();
  ClassOf.assign(N, 0);
  if (N == 0)
    return;

  std::vector<DefRule> Rule(N, DefRule::None);
  std::vector<std::vector<VarID>> Inputs(N);
  std::vector<uint32_t> GepOffset(N, 0);

  // Which functions may be entered through a pointer: their parameters
  // (and, symmetrically, indirect-call results) have inputs the offline
  // pass cannot see.
  std::vector<uint8_t> AddressTaken(M.numFunctions(), 0);
  for (FunID F = 0; F < M.numFunctions(); ++F)
    AddressTaken[F] = M.function(F).hasAddressTaken();

  for (InstID I = 0; I < M.numInstructions(); ++I) {
    const Instruction &Inst = M.inst(I);
    switch (Inst.Kind) {
    case InstKind::Alloc:
      Rule[Inst.Dst] = DefRule::Fresh;
      break;
    case InstKind::Copy:
      Rule[Inst.Dst] = DefRule::Union;
      Inputs[Inst.Dst].push_back(Inst.copySrc());
      break;
    case InstKind::Phi:
      Rule[Inst.Dst] = DefRule::Union;
      for (VarID Src : Inst.phiSrcs())
        Inputs[Inst.Dst].push_back(Src);
      break;
    case InstKind::FieldAddr:
      Rule[Inst.Dst] = DefRule::Gep;
      Inputs[Inst.Dst].push_back(Inst.fieldBase());
      GepOffset[Inst.Dst] = Inst.fieldOffset();
      break;
    case InstKind::Load:
      Rule[Inst.Dst] = DefRule::Fresh;
      break;
    case InstKind::Store:
    case InstKind::Free:
      break;
    case InstKind::Call: {
      if (Inst.Dst != InvalidVar) {
        if (Inst.isIndirectCall()) {
          Rule[Inst.Dst] = DefRule::Fresh;
        } else {
          Rule[Inst.Dst] = DefRule::Union;
          VarID Ret = M.inst(M.function(Inst.directCallee()).Exit).exitRet();
          if (Ret != InvalidVar)
            Inputs[Inst.Dst].push_back(Ret);
        }
      }
      if (!Inst.isIndirectCall()) {
        // Actual -> formal flows of this (direct) callsite.
        const Function &F = M.function(Inst.directCallee());
        size_t Count = std::min(Inst.callArgs().size(), F.Params.size());
        for (size_t K = 0; K < Count; ++K)
          Inputs[F.Params[K]].push_back(Inst.callArgs()[K]);
      }
      break;
    }
    case InstKind::FunEntry:
      for (VarID P : Inst.entryParams())
        Rule[P] = AddressTaken[Inst.Parent] ? DefRule::Fresh
                                            : DefRule::Union;
      break;
    case InstKind::FunExit:
      break;
    }
  }
  // Fresh nodes take no inputs; drop any recorded for them (e.g. a direct
  // callsite feeding an address-taken function's parameter).
  for (VarID V = 0; V < N; ++V)
    if (Rule[V] == DefRule::Fresh || Rule[V] == DefRule::None)
      Inputs[V].clear();

  // Dependency graph (input -> var) and its condensation; component IDs
  // are reverse-topological, so descending order visits inputs first.
  graph::AdjacencyGraph Dep(N);
  for (VarID V = 0; V < N; ++V)
    for (VarID In : Inputs[V])
      Dep.addEdge(In, V);
  graph::SCCResult SCCs = graph::computeSCCs(Dep);

  adt::LabelStore Store;
  uint32_t NextFreshBit = 0;
  std::vector<adt::LabelID> VarLabel(N, adt::EpsilonLabel);
  // Memoised gep transformer: (base label, offset) -> derived label.
  std::unordered_map<uint64_t, adt::LabelID> GepMemo;

  // A component is "poisoned" when a gep feeds it from within itself: the
  // union algebra cannot stabilise a transformer cycle, and unlike a pure
  // copy/phi cycle its members' solutions are NOT mutually equal (the gep
  // destination holds fields of what the others hold). Poisoned members
  // each get their own fresh label so nothing merges with them. (A gep
  // destination's only input is its base, so gep-in-a-cycle implies the
  // base is in the same component.)
  std::vector<uint8_t> Poisoned(SCCs.NumComponents, 0);
  for (VarID V = 0; V < N; ++V)
    if (Rule[V] == DefRule::Gep &&
        SCCs.ComponentOf[Inputs[V][0]] == SCCs.ComponentOf[V])
      Poisoned[SCCs.ComponentOf[V]] = 1;

  for (uint32_t C = SCCs.NumComponents; C-- > 0;) {
    if (Poisoned[C]) {
      for (VarID V : SCCs.Members[C])
        VarLabel[V] = Store.singleton(NextFreshBit++);
      continue;
    }
    adt::LabelID L = adt::EpsilonLabel;
    for (VarID V : SCCs.Members[C]) {
      switch (Rule[V]) {
      case DefRule::Fresh:
        // Fresh vars have no inputs, so they are always singleton comps.
        L = Store.meld(L, Store.singleton(NextFreshBit++));
        break;
      case DefRule::Gep: {
        // Base outside the component (otherwise poisoned above).
        uint64_t Key =
            (uint64_t(VarLabel[Inputs[V][0]]) << 32) | GepOffset[V];
        auto [It, New] = GepMemo.emplace(Key, adt::EpsilonLabel);
        if (New)
          It->second = Store.singleton(NextFreshBit++);
        L = Store.meld(L, It->second);
        break;
      }
      case DefRule::Union:
      case DefRule::None:
        for (VarID In : Inputs[V])
          if (SCCs.ComponentOf[In] != C)
            L = Store.meld(L, VarLabel[In]);
        break;
      }
    }
    for (VarID V : SCCs.Members[C])
      VarLabel[V] = L;
  }

  // Classes: variables sharing a final label share a class.
  std::unordered_map<adt::LabelID, uint32_t> ClassOfLabel;
  std::vector<uint32_t> ClassSize;
  for (VarID V = 0; V < N; ++V) {
    adt::LabelID L = VarLabel[V];
    auto [It, New] = ClassOfLabel.emplace(L, NumClasses);
    if (New) {
      ++NumClasses;
      ClassSize.push_back(0);
    }
    ClassOf[V] = It->second;
    ++ClassSize[It->second];
  }
  for (uint32_t Size : ClassSize)
    if (Size > 1)
      Collapsible += Size;

  Stats.get("vars") = N;
  Stats.get("classes") = NumClasses;
  Stats.get("collapsible-vars") = Collapsible;
  Stats.get("fresh-bits") = NextFreshBit;
  Stats.get("memo-hits") = Store.memoHits();
}
