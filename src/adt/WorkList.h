//===- WorkList.h - Deduplicating work queues -------------------*- C++ -*-===//
///
/// \file
/// Work queues used by the constraint solvers. Both queues deduplicate: an
/// item already enqueued is not enqueued again, which keeps fixed-point
/// iterations linear in the number of *changes* rather than pushes.
///
//===----------------------------------------------------------------------===//

#ifndef VSFS_ADT_WORKLIST_H
#define VSFS_ADT_WORKLIST_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

namespace vsfs {
namespace adt {

/// FIFO queue of dense uint32_t IDs with O(1) membership checks.
///
/// FIFO order approximates reverse-post-order sweeps on value-flow graphs
/// and is what SVF's solvers use for points-to propagation.
class FIFOWorkList {
public:
  bool empty() const { return Queue.empty(); }
  size_t size() const { return Queue.size(); }

  /// Enqueues \p Id unless it is already queued; returns true if enqueued.
  bool push(uint32_t Id) {
    if (Id >= InQueue.size())
      InQueue.resize(Id + 1, false);
    if (InQueue[Id])
      return false;
    InQueue[Id] = true;
    Queue.push_back(Id);
    return true;
  }

  /// Dequeues the oldest item. Asserts on an empty queue.
  uint32_t pop() {
    assert(!empty() && "pop from empty worklist");
    uint32_t Id = Queue.front();
    Queue.pop_front();
    InQueue[Id] = false;
    return Id;
  }

  void clear() {
    Queue.clear();
    InQueue.assign(InQueue.size(), false);
  }

private:
  std::deque<uint32_t> Queue;
  std::vector<bool> InQueue;
};

/// LIFO variant of \c FIFOWorkList; depth-first processing order suits the
/// meld-labelling propagation where labels stabilise along paths.
class LIFOWorkList {
public:
  bool empty() const { return Stack.empty(); }
  size_t size() const { return Stack.size(); }

  bool push(uint32_t Id) {
    if (Id >= InStack.size())
      InStack.resize(Id + 1, false);
    if (InStack[Id])
      return false;
    InStack[Id] = true;
    Stack.push_back(Id);
    return true;
  }

  uint32_t pop() {
    assert(!empty() && "pop from empty worklist");
    uint32_t Id = Stack.back();
    Stack.pop_back();
    InStack[Id] = false;
    return Id;
  }

  void clear() {
    Stack.clear();
    InStack.assign(InStack.size(), false);
  }

private:
  std::vector<uint32_t> Stack;
  std::vector<bool> InStack;
};

} // namespace adt
} // namespace vsfs

#endif // VSFS_ADT_WORKLIST_H
