//===- PointsTo.h - Dual-representation points-to set -----------*- C++ -*-===//
///
/// \file
/// The canonical points-to set used by every analysis in this library.
/// Historically a bare \c adt::SparseBitVector; now a thin facade over two
/// runtime-selectable representations (--pts-repr):
///
///  - \b sbv: the set owns its SparseBitVector — mutation in place, one
///    heap payload per set (the historical layout, and the default);
///  - \b persistent: the set is a 4-byte \c PointsToID into the global
///    \c PointsToCache — structurally equal sets share one interned node,
///    and union/intersect/subtract/superset are memoised on ID pairs, so
///    the repeated re-unions the flow-sensitive solvers perform degrade to
///    hash lookups.
///
/// Each instance latches the process-wide representation (\c pointsToRepr)
/// at construction and keeps it for life; instances of different
/// representations interoperate (mixed operands fall back on structural
/// bits), so a pipeline built under one mode can be queried under another.
///
/// The mutating API is preserved exactly — \c unionWith and friends return
/// "changed" as before — so the solvers are representation-oblivious. In
/// persistent mode a "mutation" rebinds the instance to the interned result
/// ID; the interning invariant (structural equality ⇔ ID equality) makes
/// the changed-bit an integer compare. Iteration in persistent mode walks
/// the immutable interned node, giving snapshot semantics even if the set
/// is reassigned mid-walk.
///
/// \c capacityBytes() deliberately reports the bytes of a *private* copy in
/// both modes: summing it over an analysis's slots yields the non-shared
/// baseline the footprint accounting always measured, while the actual
/// shared storage is the cache's interned-bytes counter (and the global
/// \c PointsToBytes accounting, which counts each interned node once).
/// The gap between the two is the deduplication win.
///
//===----------------------------------------------------------------------===//

#ifndef VSFS_ADT_POINTSTO_H
#define VSFS_ADT_POINTSTO_H

#include "adt/PersistentPointsTo.h"
#include "adt/PointsToCache.h"
#include "adt/SparseBitVector.h"

namespace vsfs {

/// A set of abstract-object IDs, in the representation selected at
/// construction time.
class PointsTo {
public:
  using const_iterator = adt::SparseBitVector::const_iterator;

  PointsTo()
      : IsPersistent(adt::pointsToRepr() == adt::PtsRepr::Persistent) {}

  // The special members maintain adt::livePersistentSets(), the count of
  // instances pinning a non-empty interned ID (what blocks a cache drain).
  // Empty instances carry ID 0, which survives a clear, so only non-empty
  // handles are counted.
  PointsTo(const PointsTo &O)
      : SBV(O.SBV), Pers(O.Pers), IsPersistent(O.IsPersistent) {
    retainHandle();
  }
  PointsTo(PointsTo &&O) noexcept
      : SBV(std::move(O.SBV)), Pers(O.Pers), IsPersistent(O.IsPersistent) {
    retainHandle(); // The moved-from set keeps (and stays counted for) its ID.
  }
  PointsTo &operator=(const PointsTo &O) {
    releaseHandle();
    SBV = O.SBV;
    Pers = O.Pers;
    IsPersistent = O.IsPersistent;
    retainHandle();
    return *this;
  }
  PointsTo &operator=(PointsTo &&O) noexcept {
    releaseHandle();
    SBV = std::move(O.SBV);
    Pers = O.Pers;
    IsPersistent = O.IsPersistent;
    retainHandle();
    return *this;
  }
  ~PointsTo() { releaseHandle(); }

  /// Which representation this instance latched.
  bool isPersistent() const { return IsPersistent; }
  /// The interned ID (EmptyPointsToID for sbv-mode sets' sake, only
  /// meaningful when \c isPersistent()).
  adt::PointsToID id() const { return Pers.id(); }

  /// A structural view of the set, valid in both representations (for the
  /// persistent one: until the cache is cleared).
  const adt::SparseBitVector &bits() const {
    return IsPersistent ? Pers.bits() : SBV;
  }

  bool empty() const { return IsPersistent ? Pers.empty() : SBV.empty(); }
  uint32_t count() const { return bits().count(); }
  bool test(uint32_t Idx) const { return bits().test(Idx); }
  uint32_t findFirst() const { return bits().findFirst(); }
  uint64_t hash() const { return bits().hash(); }

  /// Sets bit \p Idx; returns true if the bit was newly set.
  bool set(uint32_t Idx) {
    if (!IsPersistent)
      return SBV.set(Idx);
    return rebind(Pers.with(Idx));
  }

  /// Clears bit \p Idx; returns true if the bit was previously set.
  bool reset(uint32_t Idx) {
    if (!IsPersistent)
      return SBV.reset(Idx);
    return rebind(Pers.without(Idx));
  }

  /// Removes all bits.
  void clear() {
    if (!IsPersistent)
      return SBV.clear();
    rebind(adt::PersistentPointsTo());
  }

  /// Unions \p RHS into this set; returns true if any bit was added.
  bool unionWith(const PointsTo &RHS) {
    if (!IsPersistent)
      return SBV.unionWith(RHS.bits());
    return rebind(Pers.unionedWith(RHS.persistentView()));
  }

  PointsTo &operator|=(const PointsTo &RHS) {
    unionWith(RHS);
    return *this;
  }

  /// Intersects this set with \p RHS; returns true if any bit was removed.
  bool intersectWith(const PointsTo &RHS) {
    if (!IsPersistent)
      return SBV.intersectWith(RHS.bits());
    return rebind(Pers.intersectedWith(RHS.persistentView()));
  }

  PointsTo &operator&=(const PointsTo &RHS) {
    intersectWith(RHS);
    return *this;
  }

  /// Removes every bit set in \p RHS (this −= RHS); returns true if any
  /// bit was removed. Used for Kill sets in strong updates.
  bool intersectWithComplement(const PointsTo &RHS) {
    if (!IsPersistent)
      return SBV.intersectWithComplement(RHS.bits());
    return rebind(Pers.subtracted(RHS.persistentView()));
  }

  /// Returns true if every bit of \p RHS is set in this set.
  bool contains(const PointsTo &RHS) const {
    if (IsPersistent && RHS.IsPersistent)
      return Pers.contains(RHS.Pers); // Memoised.
    return bits().contains(RHS.bits());
  }

  /// Returns true if this set and \p RHS share any bit.
  bool intersects(const PointsTo &RHS) const {
    if (IsPersistent && RHS.IsPersistent)
      return Pers.intersects(RHS.Pers); // Memoised.
    return bits().intersects(RHS.bits());
  }

  friend bool operator==(const PointsTo &L, const PointsTo &R) {
    if (L.IsPersistent && R.IsPersistent)
      return L.Pers == R.Pers; // Interning invariant: one integer compare.
    return L.bits() == R.bits();
  }
  friend bool operator!=(const PointsTo &L, const PointsTo &R) {
    return !(L == R);
  }

  const_iterator begin() const { return bits().begin(); }
  const_iterator end() const { return bits().end(); }

  /// Bytes a private copy of this set's payload occupies. Per-slot
  /// accounting (the non-shared baseline) in both modes; see the file
  /// comment for how shared storage is measured instead.
  size_t capacityBytes() const { return bits().capacityBytes(); }

private:
  /// \p RHS as a persistent set: its ID when it has one, an on-the-fly
  /// interning of its bits otherwise (the mixed-representation path).
  adt::PersistentPointsTo persistentView() const {
    return IsPersistent ? Pers : adt::PersistentPointsTo::fromBits(SBV);
  }

  void retainHandle() {
    if (IsPersistent && Pers.id() != adt::EmptyPointsToID)
      ++adt::livePersistentSets();
  }
  void releaseHandle() {
    if (IsPersistent && Pers.id() != adt::EmptyPointsToID)
      --adt::livePersistentSets();
  }

  /// Rebinds the interned handle, keeping the live-handle count in step
  /// with empty↔non-empty transitions; returns whether the set changed.
  bool rebind(adt::PersistentPointsTo New) {
    if (New == Pers)
      return false;
    releaseHandle();
    Pers = New;
    retainHandle();
    return true;
  }

  adt::SparseBitVector SBV;      ///< Owned payload (sbv mode; else empty).
  adt::PersistentPointsTo Pers;  ///< Interned handle (persistent mode).
  bool IsPersistent;
};

} // namespace vsfs

#endif // VSFS_ADT_POINTSTO_H
