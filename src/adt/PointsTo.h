//===- PointsTo.h - Points-to set alias -------------------------*- C++ -*-===//
///
/// \file
/// The canonical points-to set representation used by every analysis in this
/// library: a sparse bit vector of abstract object IDs.
///
//===----------------------------------------------------------------------===//

#ifndef VSFS_ADT_POINTSTO_H
#define VSFS_ADT_POINTSTO_H

#include "adt/SparseBitVector.h"

namespace vsfs {

/// A set of abstract-object IDs.
using PointsTo = adt::SparseBitVector;

} // namespace vsfs

#endif // VSFS_ADT_POINTSTO_H
