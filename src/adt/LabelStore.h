//===- LabelStore.h - Hash-consed meld labels -------------------*- C++ -*-===//
///
/// \file
/// §V-B suggests the versioning overhead "could perhaps be further reduced
/// by designing a data structure specifically catered to versioning rather
/// than using one off-the-shelf (LLVM's SparseBitVector)". This is that
/// experiment: labels are hash-consed into dense IDs, and the meld operator
/// becomes a memoised table over ID pairs — repeated melds of the same two
/// labels (extremely common at join-heavy SVFGs, where the same few
/// prelabel sets meet again and again) cost one hash lookup instead of a
/// bit-vector union.
///
/// Label *content* lives in the process-wide \c PointsToCache — the same
/// hash-consing store the persistent points-to representation uses — so
/// meld labels and points-to sets share interned storage and the cache's
/// memoised union. The store keeps its own dense LabelID space (versioning
/// wants small, per-store-contiguous IDs) and its own meld memo over those
/// IDs, layered on the cache's global one.
///
/// The store upholds the meld algebra by construction:
///   meld(a, a) == a                (idempotence; checked before the memo)
///   meld(a, b) == meld(b, a)       (pairs are memoised order-normalised)
///   meld(a, ε) == a                (ID 0 is ε)
/// and associativity follows from melding the underlying sets.
///
/// Used by ObjectVersioning when MeldRep::Interned is selected (compare
/// with bench_meld_repr) and by the offline variable substitution of
/// Andersen's analysis, whose labelling is the same algebra.
///
//===----------------------------------------------------------------------===//

#ifndef VSFS_ADT_LABELSTORE_H
#define VSFS_ADT_LABELSTORE_H

#include "adt/PointsToCache.h"
#include "adt/SparseBitVector.h"

#include <cassert>
#include <unordered_map>
#include <vector>

namespace vsfs {
namespace adt {

/// A dense ID for an interned label; 0 is the identity ε.
using LabelID = uint32_t;
constexpr LabelID EpsilonLabel = 0;

/// Interns labels (sets of prelabel bits) and memoises their melds.
class LabelStore {
public:
  LabelStore() {
    Labels.push_back(EmptyPointsToID); // ID 0: ε.
    DenseOf.emplace(EmptyPointsToID, EpsilonLabel);
  }

  /// The label {Bit}.
  LabelID singleton(uint32_t Bit) {
    return densify(PointsToCache::get().withBit(EmptyPointsToID, Bit));
  }

  /// Interns an arbitrary bit set.
  LabelID fromBits(const SparseBitVector &Bits) {
    if (Bits.empty())
      return EpsilonLabel;
    return densify(PointsToCache::get().intern(Bits));
  }

  /// meld(A, B): the union of the two labels, memoised.
  LabelID meld(LabelID A, LabelID B) {
    if (A == B || B == EpsilonLabel)
      return A;
    if (A == EpsilonLabel)
      return B;
    // Normalise the pair: the meld operator is commutative.
    if (A > B)
      std::swap(A, B);
    uint64_t Key = (uint64_t(A) << 32) | B;
    auto It = Memo.find(Key);
    if (It != Memo.end()) {
      ++MemoHits;
      return It->second;
    }
    ++MemoMisses;
    LabelID R = densify(PointsToCache::get().unionIDs(Labels[A], Labels[B]));
    Memo.emplace(Key, R);
    return R;
  }

  /// The bit set an ID stands for.
  const SparseBitVector &bits(LabelID Id) const {
    assert(Id < Labels.size() && "unknown label");
    return PointsToCache::get().bits(Labels[Id]);
  }

  uint32_t numLabels() const { return static_cast<uint32_t>(Labels.size()); }
  uint64_t memoHits() const { return MemoHits; }
  uint64_t memoMisses() const { return MemoMisses; }

private:
  /// Maps a cache ID to this store's dense label space, allocating on first
  /// sight. The cache already deduplicated structurally equal sets, so this
  /// is a plain integer map — no hashing of set contents here.
  LabelID densify(PointsToID Pts) {
    auto [It, New] = DenseOf.emplace(Pts, LabelID(Labels.size()));
    if (New)
      Labels.push_back(Pts);
    return It->second;
  }

  /// Dense LabelID -> interned cache ID.
  std::vector<PointsToID> Labels;
  /// Interned cache ID -> dense LabelID.
  std::unordered_map<PointsToID, LabelID> DenseOf;
  std::unordered_map<uint64_t, LabelID> Memo;
  uint64_t MemoHits = 0;
  uint64_t MemoMisses = 0;
};

} // namespace adt
} // namespace vsfs

#endif // VSFS_ADT_LABELSTORE_H
