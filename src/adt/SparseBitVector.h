//===- SparseBitVector.h - Sparse set of unsigned integers -----*- C++ -*-===//
///
/// \file
/// A sparse bit vector storing only 128-bit elements that contain set bits,
/// in base-sorted order. This is the representation for points-to sets and
/// for meld labels (sets of prelabel origins), mirroring the role LLVM's
/// SparseBitVector plays in SVF's SFS/VSFS implementations.
///
/// Set operations are word-parallel merges over the element vectors, so
/// union/intersection cost O(number of set elements), not O(universe).
/// All mutating operations keep the global \c PointsToBytes accounting in
/// sync so analyses can report exact points-to storage (Table III memory).
///
//===----------------------------------------------------------------------===//

#ifndef VSFS_ADT_SPARSEBITVECTOR_H
#define VSFS_ADT_SPARSEBITVECTOR_H

#include "support/MemUsage.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

namespace vsfs {
namespace adt {

/// A set of uint32_t values stored as sparse 128-bit elements.
class SparseBitVector {
  static constexpr uint32_t WordBits = 64;
  static constexpr uint32_t WordsPerElement = 2;
  static constexpr uint32_t ElementBits = WordBits * WordsPerElement;

  /// One aligned 128-bit chunk of the bit space. \c Base is the first bit
  /// index covered (always a multiple of 128). Invariant: at least one bit
  /// is set in \c Words for every element stored.
  struct Element {
    uint32_t Base;
    uint64_t Words[WordsPerElement];

    bool empty() const { return Words[0] == 0 && Words[1] == 0; }

    friend bool operator==(const Element &L, const Element &R) {
      return L.Base == R.Base && L.Words[0] == R.Words[0] &&
             L.Words[1] == R.Words[1];
    }
  };

public:
  SparseBitVector() = default;

  SparseBitVector(const SparseBitVector &RHS) : Elements(RHS.Elements) {
    PointsToBytes::retain(capacityBytes());
  }

  SparseBitVector(SparseBitVector &&RHS) noexcept
      : Elements(std::move(RHS.Elements)) {
    // Moved-from vector releases in its destructor with zero capacity; the
    // bytes stay accounted to this object.
    RHS.Elements = {};
  }

  SparseBitVector &operator=(const SparseBitVector &RHS) {
    if (this == &RHS)
      return *this;
    PointsToBytes::release(capacityBytes());
    Elements = RHS.Elements;
    PointsToBytes::retain(capacityBytes());
    return *this;
  }

  SparseBitVector &operator=(SparseBitVector &&RHS) noexcept {
    if (this == &RHS)
      return *this;
    PointsToBytes::release(capacityBytes());
    Elements = std::move(RHS.Elements);
    RHS.Elements = {};
    return *this;
  }

  ~SparseBitVector() { PointsToBytes::release(capacityBytes()); }

  /// Returns true if no bits are set.
  bool empty() const { return Elements.empty(); }

  /// Number of set bits.
  uint32_t count() const {
    uint32_t Total = 0;
    for (const Element &E : Elements)
      Total += static_cast<uint32_t>(__builtin_popcountll(E.Words[0]) +
                                     __builtin_popcountll(E.Words[1]));
    return Total;
  }

  /// Returns true if bit \p Idx is set.
  bool test(uint32_t Idx) const {
    const Element *E = findElement(baseOf(Idx));
    if (!E)
      return false;
    return (E->Words[wordOf(Idx)] >> bitOf(Idx)) & 1;
  }

  /// Sets bit \p Idx; returns true if the bit was newly set.
  bool set(uint32_t Idx) {
    BytesGuard Guard(*this);
    Element &E = findOrCreateElement(baseOf(Idx));
    uint64_t Mask = uint64_t(1) << bitOf(Idx);
    if (E.Words[wordOf(Idx)] & Mask)
      return false;
    E.Words[wordOf(Idx)] |= Mask;
    return true;
  }

  /// Clears bit \p Idx; returns true if the bit was previously set.
  bool reset(uint32_t Idx) {
    BytesGuard Guard(*this);
    auto It = lowerBound(baseOf(Idx));
    if (It == Elements.end() || It->Base != baseOf(Idx))
      return false;
    uint64_t Mask = uint64_t(1) << bitOf(Idx);
    if (!(It->Words[wordOf(Idx)] & Mask))
      return false;
    It->Words[wordOf(Idx)] &= ~Mask;
    if (It->empty())
      Elements.erase(It);
    return true;
  }

  /// Removes all bits.
  void clear() {
    PointsToBytes::release(capacityBytes());
    Elements.clear();
    Elements.shrink_to_fit();
    PointsToBytes::retain(capacityBytes());
  }

  /// Unions \p RHS into this set; returns true if any bit was added.
  bool unionWith(const SparseBitVector &RHS) {
    if (RHS.Elements.empty())
      return false;
    BytesGuard Guard(*this);
    bool Changed = false;
    std::vector<Element> Result;
    Result.reserve(std::max(Elements.size(), RHS.Elements.size()));
    size_t I = 0, J = 0;
    while (I < Elements.size() && J < RHS.Elements.size()) {
      const Element &L = Elements[I];
      const Element &R = RHS.Elements[J];
      if (L.Base < R.Base) {
        Result.push_back(L);
        ++I;
      } else if (R.Base < L.Base) {
        Result.push_back(R);
        Changed = true;
        ++J;
      } else {
        Element Merged = L;
        Merged.Words[0] |= R.Words[0];
        Merged.Words[1] |= R.Words[1];
        Changed |= !(Merged == L);
        Result.push_back(Merged);
        ++I;
        ++J;
      }
    }
    for (; I < Elements.size(); ++I)
      Result.push_back(Elements[I]);
    for (; J < RHS.Elements.size(); ++J) {
      Result.push_back(RHS.Elements[J]);
      Changed = true;
    }
    if (Changed)
      Elements = std::move(Result);
    return Changed;
  }

  SparseBitVector &operator|=(const SparseBitVector &RHS) {
    unionWith(RHS);
    return *this;
  }

  /// Intersects this set with \p RHS; returns true if any bit was removed.
  bool intersectWith(const SparseBitVector &RHS) {
    BytesGuard Guard(*this);
    bool Changed = false;
    std::vector<Element> Result;
    size_t I = 0, J = 0;
    while (I < Elements.size() && J < RHS.Elements.size()) {
      const Element &L = Elements[I];
      const Element &R = RHS.Elements[J];
      if (L.Base < R.Base) {
        Changed = true;
        ++I;
      } else if (R.Base < L.Base) {
        ++J;
      } else {
        Element Merged = L;
        Merged.Words[0] &= R.Words[0];
        Merged.Words[1] &= R.Words[1];
        Changed |= !(Merged == L);
        if (!Merged.empty())
          Result.push_back(Merged);
        ++I;
        ++J;
      }
    }
    if (I < Elements.size())
      Changed = true;
    if (Changed)
      Elements = std::move(Result);
    return Changed;
  }

  SparseBitVector &operator&=(const SparseBitVector &RHS) {
    intersectWith(RHS);
    return *this;
  }

  /// Removes every bit that is set in \p RHS (this &= ~RHS); returns true if
  /// any bit was removed. Used for Kill sets in strong updates.
  bool intersectWithComplement(const SparseBitVector &RHS) {
    BytesGuard Guard(*this);
    bool Changed = false;
    std::vector<Element> Result;
    Result.reserve(Elements.size());
    size_t I = 0, J = 0;
    while (I < Elements.size()) {
      while (J < RHS.Elements.size() && RHS.Elements[J].Base < Elements[I].Base)
        ++J;
      if (J < RHS.Elements.size() && RHS.Elements[J].Base == Elements[I].Base) {
        Element Merged = Elements[I];
        Merged.Words[0] &= ~RHS.Elements[J].Words[0];
        Merged.Words[1] &= ~RHS.Elements[J].Words[1];
        Changed |= !(Merged == Elements[I]);
        if (!Merged.empty())
          Result.push_back(Merged);
      } else {
        Result.push_back(Elements[I]);
      }
      ++I;
    }
    if (Changed)
      Elements = std::move(Result);
    return Changed;
  }

  /// Returns true if every bit of \p RHS is set in this set.
  bool contains(const SparseBitVector &RHS) const {
    size_t I = 0;
    for (const Element &R : RHS.Elements) {
      while (I < Elements.size() && Elements[I].Base < R.Base)
        ++I;
      if (I == Elements.size() || Elements[I].Base != R.Base)
        return false;
      if ((R.Words[0] & ~Elements[I].Words[0]) ||
          (R.Words[1] & ~Elements[I].Words[1]))
        return false;
    }
    return true;
  }

  /// Returns true if this set and \p RHS share any bit.
  bool intersects(const SparseBitVector &RHS) const {
    size_t I = 0, J = 0;
    while (I < Elements.size() && J < RHS.Elements.size()) {
      if (Elements[I].Base < RHS.Elements[J].Base)
        ++I;
      else if (RHS.Elements[J].Base < Elements[I].Base)
        ++J;
      else {
        if ((Elements[I].Words[0] & RHS.Elements[J].Words[0]) ||
            (Elements[I].Words[1] & RHS.Elements[J].Words[1]))
          return true;
        ++I;
        ++J;
      }
    }
    return false;
  }

  /// Returns the lowest set bit. Asserts on an empty set.
  uint32_t findFirst() const {
    assert(!Elements.empty() && "findFirst on empty SparseBitVector");
    const Element &E = Elements.front();
    if (E.Words[0])
      return E.Base + static_cast<uint32_t>(__builtin_ctzll(E.Words[0]));
    return E.Base + WordBits +
           static_cast<uint32_t>(__builtin_ctzll(E.Words[1]));
  }

  friend bool operator==(const SparseBitVector &L, const SparseBitVector &R) {
    return L.Elements == R.Elements;
  }
  friend bool operator!=(const SparseBitVector &L, const SparseBitVector &R) {
    return !(L == R);
  }

  /// FNV-1a style hash over the element list; suitable for hash-consing
  /// meld labels into dense version IDs.
  uint64_t hash() const {
    uint64_t H = 1469598103934665603ull;
    auto Mix = [&H](uint64_t V) {
      H ^= V;
      H *= 1099511628211ull;
    };
    for (const Element &E : Elements) {
      Mix(E.Base);
      Mix(E.Words[0]);
      Mix(E.Words[1]);
    }
    return H;
  }

  /// Forward iterator over set bit indices in increasing order.
  class const_iterator {
  public:
    using value_type = uint32_t;

    const_iterator() = default;

    uint32_t operator*() const {
      const Element &E = (*Elems)[ElemIdx];
      return E.Base + WordIdx * WordBits +
             static_cast<uint32_t>(__builtin_ctzll(Remaining));
    }

    const_iterator &operator++() {
      Remaining &= Remaining - 1; // Clear lowest set bit.
      advanceToBit();
      return *this;
    }

    friend bool operator==(const const_iterator &L, const const_iterator &R) {
      return L.ElemIdx == R.ElemIdx && L.WordIdx == R.WordIdx &&
             L.Remaining == R.Remaining;
    }
    friend bool operator!=(const const_iterator &L, const const_iterator &R) {
      return !(L == R);
    }

  private:
    /// Skips to the next non-empty word, loading \c Remaining.
    void advanceToBit() {
      if (!Elems)
        return;
      while (ElemIdx < Elems->size()) {
        if (Remaining)
          return;
        if (++WordIdx >= WordsPerElement) {
          ++ElemIdx;
          WordIdx = 0;
          if (ElemIdx >= Elems->size())
            break;
        }
        Remaining = (*Elems)[ElemIdx].Words[WordIdx];
      }
      // End state.
      WordIdx = 0;
      Remaining = 0;
    }

    const std::vector<Element> *Elems = nullptr;
    size_t ElemIdx = 0;
    uint32_t WordIdx = 0;
    uint64_t Remaining = 0;

    friend class SparseBitVector;
  };

  const_iterator begin() const {
    const_iterator It;
    It.Elems = &Elements;
    It.ElemIdx = 0;
    It.WordIdx = 0;
    It.Remaining = Elements.empty() ? 0 : Elements[0].Words[0];
    It.advanceToBit();
    return It;
  }

  const_iterator end() const {
    const_iterator It;
    It.Elems = &Elements;
    It.ElemIdx = Elements.size();
    return It;
  }

  /// Bytes of heap storage currently held (for the global accounting).
  size_t capacityBytes() const { return Elements.capacity() * sizeof(Element); }

private:
  static uint32_t baseOf(uint32_t Idx) { return Idx & ~(ElementBits - 1); }
  static uint32_t wordOf(uint32_t Idx) {
    return (Idx % ElementBits) / WordBits;
  }
  static uint32_t bitOf(uint32_t Idx) { return Idx % WordBits; }

  /// Keeps PointsToBytes in sync across a mutation that may reallocate.
  struct BytesGuard {
    explicit BytesGuard(SparseBitVector &S) : S(S), Old(S.capacityBytes()) {}
    ~BytesGuard() {
      size_t New = S.capacityBytes();
      if (New > Old)
        PointsToBytes::retain(New - Old);
      else
        PointsToBytes::release(Old - New);
    }
    SparseBitVector &S;
    size_t Old;
  };

  std::vector<Element>::iterator lowerBound(uint32_t Base) {
    return std::lower_bound(
        Elements.begin(), Elements.end(), Base,
        [](const Element &E, uint32_t B) { return E.Base < B; });
  }

  const Element *findElement(uint32_t Base) const {
    auto It = std::lower_bound(
        Elements.begin(), Elements.end(), Base,
        [](const Element &E, uint32_t B) { return E.Base < B; });
    if (It == Elements.end() || It->Base != Base)
      return nullptr;
    return &*It;
  }

  Element &findOrCreateElement(uint32_t Base) {
    auto It = lowerBound(Base);
    if (It != Elements.end() && It->Base == Base)
      return *It;
    It = Elements.insert(It, Element{Base, {0, 0}});
    return *It;
  }

  std::vector<Element> Elements;
};

} // namespace adt
} // namespace vsfs

#endif // VSFS_ADT_SPARSEBITVECTOR_H
