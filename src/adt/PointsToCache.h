//===- PointsToCache.h - Hash-consed points-to set store --------*- C++ -*-===//
///
/// \file
/// The persistent points-to representation's backing store: every distinct
/// points-to set exists exactly once as an immutable, interned
/// \c SparseBitVector node identified by a dense 32-bit \c PointsToID, and
/// the binary set algebra (union, intersection, subtraction, superset and
/// overlap tests) is memoised on operand-ID pairs, so repeating an
/// operation on the same two sets costs one hash lookup instead of a
/// word-parallel merge.
///
/// This is MDE's observation applied to our whole SFS/ITER/VSFS/Andersen
/// stack: flow-sensitive analyses store and re-union the *same few* sets
/// enormously often — VSFS removes the duplication across program points by
/// versioning, and the cache removes what remains (identical sets reached
/// at different versions, objects, or variables) by construction.
///
/// Identities the store maintains, by construction:
///
///   structural equality  ⇔  same PointsToID        (interning invariant)
///   ID 0                 =   the empty set
///   union/intersect memo is order-normalised        (commutativity)
///   op(a, a), op(a, ∅) short-circuit before the memo
///
/// ID lifetime rules: an ID is valid until \c clear() is called on the
/// cache that issued it. The cache is thread-local (like the
/// \c PointsToBytes accounting — each analysis is single-threaded, and the
/// analysis service runs one per worker thread) and grows monotonically;
/// \c clear() exists for long-running harnesses (the differential fuzzer,
/// benches, service workers between requests) and may only run when no
/// persistent-mode set other than the empty set is live — node 0 survives
/// a clear, everything else is invalidated. Long-lived hosts additionally
/// bracket each analysis in a \c CacheSessionScope; a drain is forbidden
/// (and asserts) while any session on the thread is live, so a mid-request
/// drain bug cannot silently invalidate the request's IDs.
///
/// Interned nodes are plain \c SparseBitVector values, so the global
/// \c PointsToBytes live/peak accounting automatically reflects the shared
/// storage: under the persistent representation it counts each distinct
/// set once, which is exactly the memory the paper's Table III would
/// measure.
///
//===----------------------------------------------------------------------===//

#ifndef VSFS_ADT_POINTSTOCACHE_H
#define VSFS_ADT_POINTSTOCACHE_H

#include "adt/SparseBitVector.h"
#include "support/Statistics.h"

#include <cassert>
#include <cstdint>
#include <deque>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace vsfs {
namespace adt {

/// Identifies one interned points-to set. 0 is always the empty set.
using PointsToID = uint32_t;
constexpr PointsToID EmptyPointsToID = 0;

/// Which representation \c vsfs::PointsTo uses for sets constructed from
/// now on (see PointsTo.h). Selected once per run via --pts-repr; sets of
/// different representations interoperate, so switching mid-process (tests,
/// the differential fuzzer) is safe.
enum class PtsRepr : uint8_t {
  SBV,       ///< each set owns a SparseBitVector (the historical layout)
  Persistent ///< sets are interned PointsToIDs into the global cache
};

/// Per-thread representation switch. Thread-local so each service worker
/// can hold its own \c PtsReprScope: two concurrent requests with mixed
/// --pts-repr must not alias one latch (single-threaded callers see the
/// historical process-global behaviour unchanged).
inline PtsRepr &pointsToReprSlot() {
  static thread_local PtsRepr Repr = PtsRepr::SBV;
  return Repr;
}
inline PtsRepr pointsToRepr() { return pointsToReprSlot(); }
inline void setPointsToRepr(PtsRepr Repr) { pointsToReprSlot() = Repr; }

/// The --pts-repr spelling of a representation.
inline const char *ptsReprName(PtsRepr Repr) {
  return Repr == PtsRepr::Persistent ? "persistent" : "sbv";
}

/// Parses a --pts-repr value; returns false (leaving \p Out untouched) for
/// anything other than "sbv" or "persistent".
inline bool parsePtsRepr(std::string_view Value, PtsRepr &Out) {
  if (Value == "sbv") {
    Out = PtsRepr::SBV;
    return true;
  }
  if (Value == "persistent") {
    Out = PtsRepr::Persistent;
    return true;
  }
  return false;
}

/// Number of live persistent-mode \c vsfs::PointsTo instances holding a
/// non-empty ID. Maintained by the facade's constructors, mutators and
/// destructor; \c PointsToCache::drainIfIdle() consults it to know when a
/// \c clear() cannot invalidate anything (empty sets are ID 0, which
/// survives a clear, so they don't pin the cache — in particular the
/// function-local `static const PointsTo Empty` sentinels some accessors
/// return never block a drain).
inline uint64_t &livePersistentSets() {
  static thread_local uint64_t Count = 0;
  return Count;
}

/// Number of live \c CacheSessionScope instances on this thread. While
/// non-zero, \c PointsToCache::drainIfIdle() refuses to fire (and asserts)
/// — see the ID lifetime rules above.
inline uint64_t &liveCacheSessions() {
  static thread_local uint64_t Count = 0;
  return Count;
}

/// RAII representation switch for tests and benches: selects \p Repr for
/// the scope, restores the previous selection on exit.
class PtsReprScope {
public:
  explicit PtsReprScope(PtsRepr Repr) : Saved(pointsToRepr()) {
    setPointsToRepr(Repr);
  }
  ~PtsReprScope() { setPointsToRepr(Saved); }
  PtsReprScope(const PtsReprScope &) = delete;
  PtsReprScope &operator=(const PtsReprScope &) = delete;

private:
  PtsRepr Saved;
};

/// RAII marker for one analysis session on this thread. Long-lived hosts
/// (the analysis daemon's workers) open one per request: while it is held,
/// any \c PointsToCache::drainIfIdle() on the thread is refused (asserting
/// in debug builds), so nothing executed on behalf of the request — not
/// even a nested build calling the between-runs drain hook — can
/// invalidate the request's interned IDs out from under it.
class CacheSessionScope {
public:
  CacheSessionScope() { ++liveCacheSessions(); }
  ~CacheSessionScope() {
    assert(liveCacheSessions() > 0 && "unbalanced CacheSessionScope");
    --liveCacheSessions();
  }
  CacheSessionScope(const CacheSessionScope &) = delete;
  CacheSessionScope &operator=(const CacheSessionScope &) = delete;
};

/// Interns points-to sets into dense IDs and memoises their set algebra.
class PointsToCache {
public:
  /// The per-thread cache every persistent set on this thread shares.
  /// Thread-local for the same reason as \c pointsToReprSlot(): service
  /// workers are independent analysis universes, and IDs never cross
  /// threads.
  static PointsToCache &get() {
    static thread_local PointsToCache Cache;
    return Cache;
  }

  PointsToCache() { Nodes.emplace_back(); /* ID 0: the empty set. */ }

  //===--------------------------------------------------------------------===//
  // Interning
  //===--------------------------------------------------------------------===//

  /// Interns \p Bits; structural equality implies ID equality.
  PointsToID intern(const SparseBitVector &Bits) {
    if (Bits.empty())
      return EmptyPointsToID;
    return internNonEmpty(SparseBitVector(Bits));
  }

  /// As \c intern, consuming \p Bits (no copy when the set is new).
  PointsToID intern(SparseBitVector &&Bits) {
    if (Bits.empty())
      return EmptyPointsToID;
    return internNonEmpty(std::move(Bits));
  }

  /// The immutable set an ID stands for. Valid until \c clear().
  const SparseBitVector &bits(PointsToID Id) const {
    assert(Id < Nodes.size() && "stale or foreign PointsToID");
    return Nodes[Id];
  }

  //===--------------------------------------------------------------------===//
  // Memoised set algebra. Every operation is pure: operands are immutable
  // and the result is an interned ID.
  //===--------------------------------------------------------------------===//

  /// A ∪ B.
  PointsToID unionIDs(PointsToID A, PointsToID B) {
    if (A == B || B == EmptyPointsToID)
      return A;
    if (A == EmptyPointsToID)
      return B;
    if (A > B) // Commutative: memoise order-normalised.
      std::swap(A, B);
    return memoised(UnionMemo, A, B, [this](PointsToID L, PointsToID R) {
      SparseBitVector Result = Nodes[L];
      Result.unionWith(Nodes[R]);
      return intern(std::move(Result));
    });
  }

  /// A ∩ B.
  PointsToID intersectIDs(PointsToID A, PointsToID B) {
    if (A == B)
      return A;
    if (A == EmptyPointsToID || B == EmptyPointsToID)
      return EmptyPointsToID;
    if (A > B) // Commutative.
      std::swap(A, B);
    return memoised(IntersectMemo, A, B, [this](PointsToID L, PointsToID R) {
      SparseBitVector Result = Nodes[L];
      Result.intersectWith(Nodes[R]);
      return intern(std::move(Result));
    });
  }

  /// A − B (not commutative).
  PointsToID subtractIDs(PointsToID A, PointsToID B) {
    if (A == EmptyPointsToID || A == B)
      return EmptyPointsToID;
    if (B == EmptyPointsToID)
      return A;
    return memoised(SubtractMemo, A, B, [this](PointsToID L, PointsToID R) {
      SparseBitVector Result = Nodes[L];
      Result.intersectWithComplement(Nodes[R]);
      return intern(std::move(Result));
    });
  }

  /// A ∪ {Bit}.
  PointsToID withBit(PointsToID A, uint32_t Bit) {
    if (Nodes[A].test(Bit))
      return A;
    return memoised(WithBitMemo, A, Bit, [this](PointsToID L, uint32_t B) {
      SparseBitVector Result = Nodes[L];
      Result.set(B);
      return intern(std::move(Result));
    });
  }

  /// A − {Bit}.
  PointsToID withoutBit(PointsToID A, uint32_t Bit) {
    if (!Nodes[A].test(Bit))
      return A;
    return memoised(WithoutBitMemo, A, Bit, [this](PointsToID L, uint32_t B) {
      SparseBitVector Result = Nodes[L];
      Result.reset(B);
      return intern(std::move(Result));
    });
  }

  /// A ⊇ B (superset test; not commutative).
  bool containsIDs(PointsToID A, PointsToID B) {
    if (A == B || B == EmptyPointsToID)
      return true;
    if (A == EmptyPointsToID)
      return false;
    uint64_t Key = pairKey(A, B);
    auto It = ContainsMemo.find(Key);
    if (It != ContainsMemo.end()) {
      ++OpHits;
      return It->second;
    }
    ++OpMisses;
    bool R = Nodes[A].contains(Nodes[B]);
    ContainsMemo.emplace(Key, R);
    return R;
  }

  /// A ∩ B ≠ ∅ (overlap test; commutative).
  bool intersectsIDs(PointsToID A, PointsToID B) {
    if (A == EmptyPointsToID || B == EmptyPointsToID)
      return false;
    if (A == B)
      return true;
    if (A > B)
      std::swap(A, B);
    uint64_t Key = pairKey(A, B);
    auto It = IntersectsMemo.find(Key);
    if (It != IntersectsMemo.end()) {
      ++OpHits;
      return It->second;
    }
    ++OpMisses;
    bool R = Nodes[A].intersects(Nodes[B]);
    IntersectsMemo.emplace(Key, R);
    return R;
  }

  //===--------------------------------------------------------------------===//
  // Instrumentation
  //===--------------------------------------------------------------------===//

  /// Number of distinct sets interned (the empty set included).
  uint32_t numUniqueSets() const { return static_cast<uint32_t>(Nodes.size()); }

  /// Heap bytes the interned nodes actually hold — the shared storage every
  /// persistent set references.
  uint64_t internedBytes() const { return InternedBytes; }

  /// Heap bytes intern requests *would* have allocated had every request
  /// kept its own copy (the non-shared baseline the interning saves
  /// against). Cumulative over the cache's lifetime.
  uint64_t baselineBytes() const { return BaselineBytes; }

  uint64_t opHits() const { return OpHits; }
  uint64_t opMisses() const { return OpMisses; }
  uint64_t internHits() const { return InternHits; }
  uint64_t internMisses() const { return InternMisses; }

  /// The cache counters as a named group ("ptscache"), for --stats-json and
  /// the benches. StatGroup iterates in key order, so emission through it
  /// is deterministic.
  StatGroup statGroup() const {
    StatGroup G("ptscache");
    G.get("unique-sets") = numUniqueSets();
    G.get("interned-bytes") = internedBytes();
    G.get("baseline-bytes") = baselineBytes();
    G.get("op-cache-hits") = OpHits;
    G.get("op-cache-misses") = OpMisses;
    G.get("intern-hits") = InternHits;
    G.get("intern-misses") = InternMisses;
    G.get("drains") = Drains;
    return G;
  }

  /// Zeroes the hit/miss/baseline counters; interned nodes stay.
  void resetStats() {
    OpHits = OpMisses = InternHits = InternMisses = 0;
    BaselineBytes = InternedBytes;
  }

  /// Drops every interned node except the empty set and all memo tables.
  /// Invalidates every outstanding non-empty PointsToID — callers must
  /// ensure no such set is live (see the ID lifetime rules above).
  void clear() {
    Nodes.resize(1);
    InternTable.clear();
    UnionMemo.clear();
    IntersectMemo.clear();
    SubtractMemo.clear();
    WithBitMemo.clear();
    WithoutBitMemo.clear();
    ContainsMemo.clear();
    IntersectsMemo.clear();
    InternedBytes = 0;
    resetStats();
  }

  /// Clears the cache iff no non-empty persistent set is live — the safe
  /// point between independent runs where interned sets from a finished
  /// analysis must not count against the next run's memory budget.
  /// Returns whether it fired; the cumulative \c drains() counter (which
  /// survives \c clear() and \c resetStats()) proves it did.
  bool drainIfIdle() {
    if (numUniqueSets() <= 1)
      return false; // Nothing beyond the empty set: a drain would be a no-op.
    if (livePersistentSets() != 0)
      return false; // An outstanding ID would dangle.
    // A drain while a session is open would reset counters (and, if the
    // session is only between analyses, invalidate IDs it is about to
    // mint against) mid-request: a lifecycle bug, not a policy choice.
    assert(liveCacheSessions() == 0 &&
           "drainIfIdle() fired while an analysis session is live");
    if (liveCacheSessions() != 0)
      return false; // Release builds refuse instead of corrupting state.
    clear();
    ++Drains;
    return true;
  }

  /// Times \c drainIfIdle() actually cleared the cache, over the thread's
  /// lifetime.
  uint64_t drains() const { return Drains; }

  /// Returns the thread's cache to its process-start state: drained, all
  /// counters (including \c drains()) zero. Service workers call this
  /// between requests so a request served warm sees counters — and hence
  /// a --stats-json "ptscache" group — bit-identical to a cold process.
  /// Only legal when idle: no live session, no live non-empty set.
  void resetLifecycle() {
    assert(liveCacheSessions() == 0 && livePersistentSets() == 0 &&
           "resetLifecycle() while an analysis session or set is live");
    if (liveCacheSessions() != 0 || livePersistentSets() != 0)
      return;
    clear();
    Drains = 0;
  }

private:
  static uint64_t pairKey(uint32_t A, uint32_t B) {
    return (uint64_t(A) << 32) | B;
  }

  template <typename ComputeFn>
  PointsToID memoised(std::unordered_map<uint64_t, PointsToID> &Memo,
                      uint32_t A, uint32_t B, ComputeFn Compute) {
    uint64_t Key = pairKey(A, B);
    auto It = Memo.find(Key);
    if (It != Memo.end()) {
      ++OpHits;
      return It->second;
    }
    ++OpMisses;
    PointsToID R = Compute(A, B);
    Memo.emplace(Key, R);
    return R;
  }

  PointsToID internNonEmpty(SparseBitVector Bits) {
    BaselineBytes += Bits.capacityBytes();
    uint64_t H = Bits.hash();
    auto &Chain = InternTable[H];
    for (PointsToID Id : Chain)
      if (Nodes[Id] == Bits) {
        ++InternHits;
        return Id;
      }
    ++InternMisses;
    assert(Nodes.size() < UINT32_MAX && "PointsToID space exhausted");
    PointsToID Id = static_cast<PointsToID>(Nodes.size());
    InternedBytes += Bits.capacityBytes();
    Nodes.push_back(std::move(Bits));
    Chain.push_back(Id);
    return Id;
  }

  /// Interned nodes; a deque so \c bits() references stay stable while the
  /// cache grows (iteration over a set must survive other sets interning).
  std::deque<SparseBitVector> Nodes;
  /// hash(set) -> candidate IDs (collision chain).
  std::unordered_map<uint64_t, std::vector<PointsToID>> InternTable;

  // Operation memo tables, keyed on packed operand pairs.
  std::unordered_map<uint64_t, PointsToID> UnionMemo;
  std::unordered_map<uint64_t, PointsToID> IntersectMemo;
  std::unordered_map<uint64_t, PointsToID> SubtractMemo;
  std::unordered_map<uint64_t, PointsToID> WithBitMemo;
  std::unordered_map<uint64_t, PointsToID> WithoutBitMemo;
  std::unordered_map<uint64_t, bool> ContainsMemo;
  std::unordered_map<uint64_t, bool> IntersectsMemo;

  uint64_t OpHits = 0;
  uint64_t OpMisses = 0;
  uint64_t InternHits = 0;
  uint64_t InternMisses = 0;
  uint64_t InternedBytes = 0;
  uint64_t BaselineBytes = 0;
  uint64_t Drains = 0;
};

} // namespace adt
} // namespace vsfs

#endif // VSFS_ADT_POINTSTOCACHE_H
