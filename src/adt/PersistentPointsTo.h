//===- PersistentPointsTo.h - Immutable interned points-to set --*- C++ -*-===//
///
/// \file
/// An immutable points-to set: a 4-byte handle (\c PointsToID) into the
/// process-wide \c PointsToCache. Copying is free, equality is an integer
/// compare, and the set algebra returns new handles through the cache's
/// memoised operations — two \c PersistentPointsTo values built from the
/// same bits are *the same* set, however they were computed.
///
/// This is the value type the hybrid \c vsfs::PointsTo wraps in persistent
/// mode; it is also usable directly wherever functional (non-mutating) set
/// semantics are wanted.
///
//===----------------------------------------------------------------------===//

#ifndef VSFS_ADT_PERSISTENTPOINTSTO_H
#define VSFS_ADT_PERSISTENTPOINTSTO_H

#include "adt/PointsToCache.h"

namespace vsfs {
namespace adt {

/// An immutable, hash-consed set of uint32_t values.
class PersistentPointsTo {
public:
  using const_iterator = SparseBitVector::const_iterator;

  /// The empty set.
  PersistentPointsTo() = default;

  /// Wraps an existing interned ID.
  static PersistentPointsTo fromID(PointsToID Id) {
    PersistentPointsTo P;
    P.Id = Id;
    return P;
  }

  /// Interns \p Bits.
  static PersistentPointsTo fromBits(const SparseBitVector &Bits) {
    return fromID(PointsToCache::get().intern(Bits));
  }

  /// The set {Bit}.
  static PersistentPointsTo singleton(uint32_t Bit) {
    return fromID(PointsToCache::get().withBit(EmptyPointsToID, Bit));
  }

  PointsToID id() const { return Id; }

  /// The interned bits (valid until the cache is cleared).
  const SparseBitVector &bits() const { return PointsToCache::get().bits(Id); }

  bool empty() const { return Id == EmptyPointsToID; }
  uint32_t count() const { return bits().count(); }
  bool test(uint32_t Bit) const { return bits().test(Bit); }
  uint32_t findFirst() const { return bits().findFirst(); }
  uint64_t hash() const { return bits().hash(); }

  /// this ∪ {Bit}.
  PersistentPointsTo with(uint32_t Bit) const {
    return fromID(PointsToCache::get().withBit(Id, Bit));
  }
  /// this − {Bit}.
  PersistentPointsTo without(uint32_t Bit) const {
    return fromID(PointsToCache::get().withoutBit(Id, Bit));
  }
  /// this ∪ RHS.
  PersistentPointsTo unionedWith(PersistentPointsTo RHS) const {
    return fromID(PointsToCache::get().unionIDs(Id, RHS.Id));
  }
  /// this ∩ RHS.
  PersistentPointsTo intersectedWith(PersistentPointsTo RHS) const {
    return fromID(PointsToCache::get().intersectIDs(Id, RHS.Id));
  }
  /// this − RHS.
  PersistentPointsTo subtracted(PersistentPointsTo RHS) const {
    return fromID(PointsToCache::get().subtractIDs(Id, RHS.Id));
  }

  /// this ⊇ RHS, memoised.
  bool contains(PersistentPointsTo RHS) const {
    return PointsToCache::get().containsIDs(Id, RHS.Id);
  }
  /// this ∩ RHS ≠ ∅, memoised.
  bool intersects(PersistentPointsTo RHS) const {
    return PointsToCache::get().intersectsIDs(Id, RHS.Id);
  }

  /// Interning invariant: structural equality ⇔ ID equality.
  friend bool operator==(PersistentPointsTo L, PersistentPointsTo R) {
    return L.Id == R.Id;
  }
  friend bool operator!=(PersistentPointsTo L, PersistentPointsTo R) {
    return L.Id != R.Id;
  }

  const_iterator begin() const { return bits().begin(); }
  const_iterator end() const { return bits().end(); }

private:
  PointsToID Id = EmptyPointsToID;
};

} // namespace adt
} // namespace vsfs

#endif // VSFS_ADT_PERSISTENTPOINTSTO_H
