//===- UnionFind.h - Disjoint-set forest ------------------------*- C++ -*-===//
///
/// \file
/// Union-find with path compression and union by rank. Andersen's solver
/// uses it to collapse constraint-graph cycles (all pointers in an SCC share
/// one points-to set).
///
//===----------------------------------------------------------------------===//

#ifndef VSFS_ADT_UNIONFIND_H
#define VSFS_ADT_UNIONFIND_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace vsfs {
namespace adt {

/// Disjoint sets over dense uint32_t IDs.
class UnionFind {
public:
  UnionFind() = default;
  explicit UnionFind(uint32_t Size) { grow(Size); }

  /// Ensures IDs [0, Size) exist, each initially its own set.
  void grow(uint32_t Size) {
    uint32_t Old = static_cast<uint32_t>(Parent.size());
    if (Size <= Old)
      return;
    Parent.resize(Size);
    Rank.resize(Size, 0);
    for (uint32_t I = Old; I < Size; ++I)
      Parent[I] = I;
  }

  uint32_t size() const { return static_cast<uint32_t>(Parent.size()); }

  /// Returns the representative of \p Id's set.
  uint32_t find(uint32_t Id) const {
    assert(Id < Parent.size() && "find of unknown id");
    uint32_t Root = Id;
    while (Parent[Root] != Root)
      Root = Parent[Root];
    // Path compression.
    while (Parent[Id] != Root) {
      uint32_t Next = Parent[Id];
      Parent[Id] = Root;
      Id = Next;
    }
    return Root;
  }

  /// Merges the sets of \p A and \p B; returns the new representative.
  uint32_t unite(uint32_t A, uint32_t B) {
    uint32_t RA = find(A), RB = find(B);
    if (RA == RB)
      return RA;
    if (Rank[RA] < Rank[RB])
      std::swap(RA, RB);
    Parent[RB] = RA;
    if (Rank[RA] == Rank[RB])
      ++Rank[RA];
    return RA;
  }

  /// Merges \p Child's set into \p Leader's set and makes \p Leader's
  /// representative the root (useful when one ID owns auxiliary state).
  uint32_t uniteInto(uint32_t Leader, uint32_t Child) {
    uint32_t RL = find(Leader), RC = find(Child);
    if (RL == RC)
      return RL;
    Parent[RC] = RL;
    if (Rank[RL] <= Rank[RC])
      Rank[RL] = Rank[RC] + 1;
    return RL;
  }

  bool connected(uint32_t A, uint32_t B) const { return find(A) == find(B); }

private:
  mutable std::vector<uint32_t> Parent;
  std::vector<uint32_t> Rank;
};

} // namespace adt
} // namespace vsfs

#endif // VSFS_ADT_UNIONFIND_H
