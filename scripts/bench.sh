#!/usr/bin/env bash
# Reproduces the paper's evaluation tables, mirroring the artifact
# appendix's bench.sh workflow (Appendix E):
#
#   ./scripts/bench.sh [runs] [tier]
#
#   runs:  repetitions per analysis (paper used 5; default 1)
#   tier:  "full" (all 15 benchmarks, paper's 120 GB tier analogue)
#          "quick" (8 benchmarks, the 8 GB tier analogue; default)
#
# Outputs land in results/ as plain text, in the paper's table shapes.
set -euo pipefail

RUNS="${1:-1}"
TIER="${2:-quick}"
BUILD_DIR="$(dirname "$0")/../build"
OUT_DIR="$(dirname "$0")/../results"

if [[ ! -x "$BUILD_DIR/bench/bench_table3" ]]; then
  echo "error: build first: cmake -B build -G Ninja && cmake --build build" >&2
  exit 1
fi

TIER_FLAG=""
if [[ "$TIER" == "quick" ]]; then
  TIER_FLAG="--quick"
elif [[ "$TIER" != "full" ]]; then
  echo "error: tier must be 'quick' or 'full'" >&2
  exit 1
fi

mkdir -p "$OUT_DIR"

echo "== Table II: benchmark characteristics =="
"$BUILD_DIR/bench/bench_table2" $TIER_FLAG | tee "$OUT_DIR/table2.txt"
echo
echo "== Table III: time and memory ($RUNS run(s), $TIER tier) =="
"$BUILD_DIR/bench/bench_table3" $TIER_FLAG --runs "$RUNS" | tee "$OUT_DIR/table3.txt"
echo
echo "== Figure 2 counts across the suite =="
"$BUILD_DIR/bench/bench_sparsity" $TIER_FLAG | tee "$OUT_DIR/sparsity.txt"
echo
echo "== Versioning cost sweep (SV-A) =="
"$BUILD_DIR/bench/bench_versioning_cost" | tee "$OUT_DIR/versioning_cost.txt"
echo
echo "== Dense-vs-staged ablation (SIV-A) =="
"$BUILD_DIR/bench/bench_dense_baseline" | tee "$OUT_DIR/dense_baseline.txt"
echo
echo "== Meld representation ablation (SV-B) =="
"$BUILD_DIR/bench/bench_meld_repr" $TIER_FLAG | tee "$OUT_DIR/meld_repr.txt"
echo
echo "== Offline variable substitution ablation (SVI) =="
"$BUILD_DIR/bench/bench_ovs" $TIER_FLAG | tee "$OUT_DIR/ovs.txt"
echo
echo "done; outputs in $OUT_DIR/"
