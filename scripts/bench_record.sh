#!/usr/bin/env bash
# Records a reproducible perf baseline: bench_table2 --json under both
# --pts-repr modes (pipeline shape plus, in persistent mode, the interning
# cache's dedup counters), the bench_ptscache solver-kernel ablation, and
# the bench_demand exhaustive-vs-demand ablation (docs/QUERIES.md), merged
# into one committed JSON trajectory file:
#
#   ./scripts/bench_record.sh [out.json] [tier]
#
#   out.json: destination (default results/BENCH_pr6.json)
#   tier:     "quick" (8 presets) | "full" (all 15; default)
#
# The tier applies to the table2/ptscache sweeps; bench_demand always runs
# its tracked three-preset set (astyle, mutt, bash — EXPERIMENTS.md).
#
# The file is committed so later PRs can diff the trajectory (did unique
# sets, hit rates, or byte ratios regress?) without re-running anything.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
OUT="${1:-$ROOT/results/BENCH_pr6.json}"
TIER="${2:-full}"
BUILD_DIR="$ROOT/build"

if [[ ! -x "$BUILD_DIR/bench/bench_table2" ||
      ! -x "$BUILD_DIR/bench/bench_ptscache" ||
      ! -x "$BUILD_DIR/bench/bench_demand" ]]; then
  echo "error: build first: cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

TIER_FLAG=""
if [[ "$TIER" == "quick" ]]; then
  TIER_FLAG="--quick"
elif [[ "$TIER" != "full" ]]; then
  echo "error: tier must be 'quick' or 'full'" >&2
  exit 1
fi

mkdir -p "$(dirname "$OUT")"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

echo "== bench_table2 --pts-repr=sbv =="
"$BUILD_DIR/bench/bench_table2" $TIER_FLAG --pts-repr=sbv \
  --json "$TMP/table2_sbv.json"
echo "== bench_table2 --pts-repr=persistent =="
"$BUILD_DIR/bench/bench_table2" $TIER_FLAG --pts-repr=persistent \
  --json "$TMP/table2_persistent.json"
echo "== bench_ptscache (solver kernels, both representations) =="
"$BUILD_DIR/bench/bench_ptscache" $TIER_FLAG --json "$TMP/ptscache.json"
echo "== bench_demand (exhaustive vs. sliced per-query solves) =="
"$BUILD_DIR/bench/bench_demand" --json "$TMP/demand.json"

# Merge the four documents into one object, indenting each a level.
indent() { sed 's/^/  /' "$1" | sed '1s/^  //'; }
{
  echo "{"
  echo "  \"schema\": \"vsfs-bench-pr6-v1\","
  echo "  \"tier\": \"$TIER\","
  echo "  \"table2_sbv\": $(indent "$TMP/table2_sbv.json"),"
  echo "  \"table2_persistent\": $(indent "$TMP/table2_persistent.json"),"
  echo "  \"ptscache\": $(indent "$TMP/ptscache.json"),"
  echo "  \"demand\": $(indent "$TMP/demand.json")"
  echo "}"
} > "$OUT"

echo "wrote $OUT"
