#!/usr/bin/env bash
# Records a reproducible perf baseline: bench_table2 --json under both
# --pts-repr modes (pipeline shape plus, in persistent mode, the interning
# cache's dedup counters), the bench_ptscache solver-kernel ablation, the
# bench_demand exhaustive-vs-demand ablation (docs/QUERIES.md), and the
# bench_coalesce transfer-equivalence ablation (docs/COALESCING.md), merged
# into one committed JSON trajectory file:
#
#   ./scripts/bench_record.sh [--force] [out.json] [tier]
#
#   --force:  overwrite an existing out.json (refused otherwise — recorded
#             baselines are append-only history; a new PR records a new
#             BENCH_prN.json rather than silently rewriting an old one)
#   out.json: destination (default results/BENCH_pr10.json)
#   tier:     "quick" (8 presets) | "full" (all 15; default)
#
# The tier applies to the table2/ptscache sweeps; bench_demand,
# bench_coalesce, bench_taint and bench_service always run their tracked
# three-preset set (astyle, mutt, bash — EXPERIMENTS.md).
#
# The file is committed so later PRs can diff the trajectory (did unique
# sets, hit rates, byte ratios, or the coalescing reduction regress?)
# without re-running anything; the recording commit is stamped into the
# JSON so every baseline is traceable to the exact tree that produced it.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"

FORCE=0
POSITIONAL=()
for Arg in "$@"; do
  case "$Arg" in
    --force) FORCE=1 ;;
    -*) echo "unknown option: $Arg" >&2; exit 2 ;;
    *) POSITIONAL+=("$Arg") ;;
  esac
done
OUT="${POSITIONAL[0]:-$ROOT/results/BENCH_pr10.json}"
TIER="${POSITIONAL[1]:-full}"
BUILD_DIR="$ROOT/build"

if [[ -e "$OUT" && "$FORCE" -ne 1 ]]; then
  echo "error: $OUT exists; recorded baselines are history — pass --force" \
       "to overwrite, or record into a new file" >&2
  exit 1
fi

if [[ ! -x "$BUILD_DIR/bench/bench_table2" ||
      ! -x "$BUILD_DIR/bench/bench_ptscache" ||
      ! -x "$BUILD_DIR/bench/bench_demand" ||
      ! -x "$BUILD_DIR/bench/bench_coalesce" ||
      ! -x "$BUILD_DIR/bench/bench_taint" ||
      ! -x "$BUILD_DIR/bench/bench_service" ]]; then
  echo "error: build first: cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

TIER_FLAG=""
if [[ "$TIER" == "quick" ]]; then
  TIER_FLAG="--quick"
elif [[ "$TIER" != "full" ]]; then
  echo "error: tier must be 'quick' or 'full'" >&2
  exit 1
fi

COMMIT="$(git -C "$ROOT" rev-parse HEAD 2>/dev/null || echo unknown)"

mkdir -p "$(dirname "$OUT")"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

echo "== bench_table2 --pts-repr=sbv =="
"$BUILD_DIR/bench/bench_table2" $TIER_FLAG --pts-repr=sbv \
  --json "$TMP/table2_sbv.json"
echo "== bench_table2 --pts-repr=persistent =="
"$BUILD_DIR/bench/bench_table2" $TIER_FLAG --pts-repr=persistent \
  --json "$TMP/table2_persistent.json"
echo "== bench_ptscache (solver kernels, both representations) =="
"$BUILD_DIR/bench/bench_ptscache" $TIER_FLAG --json "$TMP/ptscache.json"
echo "== bench_demand (exhaustive vs. sliced per-query solves) =="
"$BUILD_DIR/bench/bench_demand" --json "$TMP/demand.json"
echo "== bench_coalesce (transfer-equivalence coalescing on vs. off) =="
"$BUILD_DIR/bench/bench_coalesce" --json "$TMP/coalesce.json"
echo "== bench_taint (spec engine vs. legacy checker walk) =="
"$BUILD_DIR/bench/bench_taint" --json "$TMP/taint.json"
echo "== bench_service (cold solve vs. warm cache hit vs. shed) =="
"$BUILD_DIR/bench/bench_service" --json "$TMP/service.json"

# Merge the seven documents into one object, indenting each a level.
indent() { sed 's/^/  /' "$1" | sed '1s/^  //'; }
{
  echo "{"
  echo "  \"schema\": \"vsfs-bench-pr10-v1\","
  echo "  \"commit\": \"$COMMIT\","
  echo "  \"tier\": \"$TIER\","
  echo "  \"table2_sbv\": $(indent "$TMP/table2_sbv.json"),"
  echo "  \"table2_persistent\": $(indent "$TMP/table2_persistent.json"),"
  echo "  \"ptscache\": $(indent "$TMP/ptscache.json"),"
  echo "  \"demand\": $(indent "$TMP/demand.json"),"
  echo "  \"coalesce\": $(indent "$TMP/coalesce.json"),"
  echo "  \"taint\": $(indent "$TMP/taint.json"),"
  echo "  \"service\": $(indent "$TMP/service.json")"
  echo "}"
} > "$OUT"

echo "wrote $OUT (commit $COMMIT)"
