#!/usr/bin/env bash
# Tier-1 gate: configure with warnings-as-errors, build everything, run the
# full test suite. This is what CI (and a reviewer) runs:
#
#   ./scripts/check.sh [--asan] [--fuzz] [--service] [--tidy] [build-dir]
#
# --asan builds a second tree with AddressSanitizer + UBSan and runs the
# full suite under it (slower; catches memory errors the Release build
# can't). --fuzz additionally runs the differential fuzzing suite (the
# "fuzz" ctest label: every preset and 50+ random seeds solved under the
# full {--pts-repr} × {--coalesce} matrix). --service additionally runs
# the analysis-service tier (the "service" ctest label: protocol/cache
# units, the soak test, the cross-process fault-kill + identity matrix and
# the latency bench — docs/SERVICE.md). --tidy runs clang-tidy (the
# checks in .clang-tidy) over src/ using the build tree's compilation
# database instead of building and testing; it fails when clang-tidy is
# not installed. Each ctest label (unit | checker | taint | equivalence |
# query | coalesce | bench | robust, plus fuzz/service when requested) is run
# and timed separately, so slow tiers are visible at a glance. The robust tier
# (budgets, cancellation, degradation — docs/ROBUSTNESS.md) always runs; its
# tests carry per-test timeouts so a wedged cancellation path fails fast.
#
# Uses separate build trees (default build-check/, build-asan/) so it never
# disturbs an existing development build/.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"

ASAN=0
FUZZ=0
SERVICE=0
TIDY=0
BUILD_DIR=""
for Arg in "$@"; do
  case "$Arg" in
    --asan) ASAN=1 ;;
    --fuzz) FUZZ=1 ;;
    --service) SERVICE=1 ;;
    --tidy) TIDY=1 ;;
    -*) echo "unknown option: $Arg" >&2; exit 2 ;;
    *) BUILD_DIR="$Arg" ;;
  esac
done

# Static-analysis tier: configure for the compilation database, then run
# clang-tidy over every library/tool/bench source. Headers are covered via
# the including .cpp files (.clang-tidy's HeaderFilterRegex).
if [ "$TIDY" -eq 1 ]; then
  TIDY_BIN="$(command -v clang-tidy || true)"
  if [ -z "$TIDY_BIN" ]; then
    echo "error: --tidy needs clang-tidy on PATH (apt-get install clang-tidy)" >&2
    exit 2
  fi
  BUILD_DIR="${BUILD_DIR:-$ROOT/build-tidy}"
  cmake -B "$BUILD_DIR" -S "$ROOT" \
    -DCMAKE_BUILD_TYPE=Release \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
  RUNNER="$(command -v run-clang-tidy || true)"
  if [ -n "$RUNNER" ]; then
    "$RUNNER" -p "$BUILD_DIR" -quiet "$ROOT/src/.*\.cpp" "$ROOT/tools/.*\.cpp" \
      "$ROOT/bench/.*\.cpp"
  else
    find "$ROOT/src" "$ROOT/tools" "$ROOT/bench" -name '*.cpp' -print0 |
      xargs -0 -P "$(nproc)" -n 8 "$TIDY_BIN" -p "$BUILD_DIR" --quiet
  fi
  echo "clang-tidy: clean"
  exit 0
fi

if [ "$ASAN" -eq 1 ]; then
  BUILD_DIR="${BUILD_DIR:-$ROOT/build-asan}"
  cmake -B "$BUILD_DIR" -S "$ROOT" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-Wall -Wextra -Werror -fsanitize=address,undefined -fno-omit-frame-pointer" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
else
  BUILD_DIR="${BUILD_DIR:-$ROOT/build-check}"
  cmake -B "$BUILD_DIR" -S "$ROOT" \
    -DCMAKE_BUILD_TYPE=Release \
    -DCMAKE_CXX_FLAGS="-Wall -Wextra -Werror"
fi

cmake --build "$BUILD_DIR" -j "$(nproc)"

# Run per label so each tier's wall-clock is reported; finish with a safety
# net for anything unlabeled (-LE matches tests carrying none of the
# labels). The fuzz and service tiers are opt-in (--fuzz / --service) but
# always excluded from the safety net, so they never run by accident. The
# summary table prints at the end.
ALL_LABELS=(unit checker taint equivalence query coalesce bench fuzz robust
            service)
LABELS=(unit checker taint equivalence query coalesce bench robust)
if [ "$FUZZ" -eq 1 ]; then
  LABELS+=(fuzz)
fi
if [ "$SERVICE" -eq 1 ]; then
  LABELS+=(service)
fi
SUMMARY=""
for Label in "${LABELS[@]}"; do
  Start=$(date +%s)
  ctest --test-dir "$BUILD_DIR" -j "$(nproc)" --output-on-failure -L "$Label"
  End=$(date +%s)
  SUMMARY+=$(printf '  %-12s %4ds' "$Label" "$((End - Start))")$'\n'
done
Start=$(date +%s)
ctest --test-dir "$BUILD_DIR" -j "$(nproc)" --output-on-failure \
  -LE "$(IFS='|'; echo "${ALL_LABELS[*]}")"
End=$(date +%s)
SUMMARY+=$(printf '  %-12s %4ds' "(unlabeled)" "$((End - Start))")$'\n'

echo
echo "label timing summary ($([ "$ASAN" -eq 1 ] && echo asan || echo release)):"
printf '%s' "$SUMMARY"
