#!/usr/bin/env bash
# Tier-1 gate: configure with warnings-as-errors, build everything, run the
# full test suite. This is what CI (and a reviewer) runs:
#
#   ./scripts/check.sh [build-dir]
#
# Uses a separate build tree (default build-check/) so it never disturbs an
# existing development build/.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$ROOT/build-check}"

cmake -B "$BUILD_DIR" -S "$ROOT" \
  -DCMAKE_BUILD_TYPE=Release \
  -DCMAKE_CXX_FLAGS="-Wall -Wextra -Werror"
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" -j "$(nproc)" --output-on-failure
