//===- paper_figure1.cpp - Figure 1: IR, χ/μ, and the SVFG ------*- C++ -*-===//
///
/// Reproduces the paper's Figure 1: a small C snippet lowered to the
/// Table I instruction set, annotated with the χ/μ functions derived from
/// the auxiliary analysis, and the SVFG's indirect (object-labelled)
/// value-flow edges.
///
/// Build & run:  ./build/examples/paper_figure1
///
//===----------------------------------------------------------------------===//

#include "core/AnalysisContext.h"
#include "ir/Printer.h"

#include <cstdio>
#include <sstream>
#include <string>

using namespace vsfs;

namespace {

/// Figure 1a's spirit in C:
///   int **p, *q, a, *x, *y;
///   p = &a_slot; q = &a;          (address-taking)
///   *p = q;                       (store, defines a_slot)
///   x = *p;  y = *p;              (loads, use a_slot)
const char *Program = R"(
  func @main() {
  entry:
    %a = alloc
    %p = alloc
    %q = copy %a
    store %q -> %p
    %x = load %p
    %y = load %p
    ret %x
  }
)";

} // namespace

int main() {
  core::AnalysisContext Ctx;
  std::string Error;
  if (!Ctx.loadText(Program, Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  Ctx.build();
  const ir::Module &M = Ctx.module();
  const memssa::MemSSA &SSA = Ctx.memSSA();
  const svfg::SVFG &G = Ctx.svfg();

  std::printf("=== IR with chi/mu annotations (Figure 1b) ===\n");
  for (ir::InstID I = 0; I < M.numInstructions(); ++I) {
    if (M.inst(I).Parent != M.main())
      continue;
    std::ostringstream Line;
    Line << "  l" << I << ":  " << ir::printInst(M, I);
    const PointsTo &Chis = SSA.chiObjs(I);
    const PointsTo &Mus = SSA.muObjs(I);
    for (uint32_t O : Chis)
      Line << "   [" << M.symbols().object(O).Name << " = chi("
           << M.symbols().object(O).Name << ")]";
    for (uint32_t O : Mus)
      Line << "   [mu(" << M.symbols().object(O).Name << ")]";
    std::printf("%s\n", Line.str().c_str());
  }

  std::printf("\n=== SVFG indirect value-flow edges ===\n");
  for (svfg::NodeID N = 0; N < G.numNodes(); ++N) {
    if (G.node(N).Kind != svfg::NodeKind::Inst)
      continue;
    if (M.inst(G.node(N).Inst).Parent != M.main())
      continue;
    for (const svfg::IndEdge &E : G.indirectSuccs(N)) {
      if (G.node(E.Dst).Kind != svfg::NodeKind::Inst)
        continue;
      std::printf("  l%u --%s--> l%u\n", G.node(N).Inst,
                  M.symbols().object(E.Obj).Name.c_str(),
                  G.node(E.Dst).Inst);
    }
  }
  std::printf("\nThe store defines p.obj; both loads use it — the two\n"
              "indirect edges above are Figure 1b's arrows.\n");
  return 0;
}
