//===- compare_analyses.cpp - All four analyses, side by side ---*- C++ -*-===//
///
/// Runs every solver in the core::AnalysisRunner registry (Andersen, the
/// dense ICFG analysis, SFS and VSFS) on one generated workload and prints
/// a precision/performance scorecard: average points-to set size (lower =
/// more precise), resolved call-graph edges, time, and the storage each
/// keeps. A compact demonstration of the paper's landscape:
/// flow-sensitivity buys precision, staging buys speed, versioning buys
/// more speed and memory at identical precision.
///
/// Build & run:  ./build/examples/compare_analyses [seed]
///
//===----------------------------------------------------------------------===//

#include "core/AnalysisContext.h"
#include "core/AnalysisRunner.h"
#include "support/Format.h"
#include "workload/ProgramGenerator.h"

#include <cstdio>
#include <cstdlib>
#include <string>

using namespace vsfs;

namespace {

double averagePtsSize(const ir::Module &M,
                      const core::PointerAnalysisResult &A) {
  uint64_t Total = 0, Nonempty = 0;
  for (ir::VarID V = 0; V < M.symbols().numVars(); ++V) {
    uint32_t C = A.ptsOfVar(V).count();
    Total += C;
    Nonempty += C > 0;
  }
  return Nonempty == 0 ? 0.0 : double(Total) / double(Nonempty);
}

std::unique_ptr<core::AnalysisContext> pipeline(uint64_t Seed) {
  workload::GenConfig C;
  C.Seed = Seed;
  C.NumFunctions = 16;
  C.NumGlobals = 10;
  C.HeapFraction = 0.5;
  C.IndirectCallFraction = 0.25;
  auto Ctx = std::make_unique<core::AnalysisContext>();
  Ctx->module() = std::move(*workload::generateProgram(C));
  Ctx->build();
  return Ctx;
}

} // namespace

int main(int Argc, char **Argv) {
  uint64_t Seed = Argc > 1 ? std::strtoull(Argv[1], nullptr, 10) : 2026;
  std::printf("workload seed %llu\n\n", (unsigned long long)Seed);

  TableWriter T({-22, 10, 12, 12, 12});
  std::printf("%s", T.row({"analysis", "time", "avg pt size", "cg edges",
                           "pts sets"})
                        .c_str());
  std::printf("%s", T.separator().c_str());

  struct Labeled {
    const char *Name;  // registry name
    const char *Label; // table label
  };
  const Labeled Analyses[] = {{"ander", "andersen"},
                              {"dense", "dense flow-sensitive"},
                              {"sfs", "SFS (staged)"},
                              {"vsfs", "VSFS (versioned)"}};

  for (const Labeled &L : Analyses) {
    // Fresh pipeline per analysis so nothing shares mutable state.
    auto Ctx = pipeline(Seed);
    core::AnalysisRunner::RunResult R =
        core::AnalysisRunner::registry().run(*Ctx, L.Name);
    // Andersen solves during the pipeline build; report that time.
    double Secs =
        R.Name == "ander" ? Ctx->andersenSeconds() : R.SolveSeconds;
    std::printf("%s",
                T.row({L.Label, formatDouble(Secs, 3) + "s",
                       formatDouble(averagePtsSize(Ctx->module(),
                                                   *R.Analysis),
                                    2),
                       std::to_string(R.Analysis->callGraph().numEdges()),
                       std::to_string(R.Analysis->numPtsSetsStored())})
                    .c_str());
  }

  std::printf(
      "\nreading the table:\n"
      "  - the flow-sensitive analyses report smaller average points-to\n"
      "    sets and fewer call-graph edges than Andersen (precision);\n"
      "  - SFS and VSFS report identical precision (§IV-E);\n"
      "  - VSFS stores far fewer points-to sets and runs fastest among\n"
      "    the flow-sensitive analyses.\n");
  return 0;
}
