//===- compare_analyses.cpp - All four analyses, side by side ---*- C++ -*-===//
///
/// Runs Andersen, the dense ICFG analysis, SFS and VSFS on one generated
/// workload and prints a precision/performance scorecard: average
/// points-to set size (lower = more precise), resolved call-graph edges,
/// time, and the storage each keeps. A compact demonstration of the
/// paper's landscape: flow-sensitivity buys precision, staging buys speed,
/// versioning buys more speed and memory at identical precision.
///
/// Build & run:  ./build/examples/compare_analyses [seed]
///
//===----------------------------------------------------------------------===//

#include "core/AnalysisContext.h"
#include "core/FlowSensitive.h"
#include "core/IterativeFlowSensitive.h"
#include "core/VersionedFlowSensitive.h"
#include "support/Format.h"
#include "support/Timer.h"
#include "workload/ProgramGenerator.h"

#include <cstdio>
#include <cstdlib>
#include <string>

using namespace vsfs;

namespace {

double averagePtsSize(const ir::Module &M,
                      const core::PointerAnalysisResult &A) {
  uint64_t Total = 0, Nonempty = 0;
  for (ir::VarID V = 0; V < M.symbols().numVars(); ++V) {
    uint32_t C = A.ptsOfVar(V).count();
    Total += C;
    Nonempty += C > 0;
  }
  return Nonempty == 0 ? 0.0 : double(Total) / double(Nonempty);
}

/// Adapts Andersen's results to the common interface for averagePtsSize.
struct AndersenResult : core::PointerAnalysisResult {
  andersen::Andersen &A;
  explicit AndersenResult(andersen::Andersen &A) : A(A) {}
  const PointsTo &ptsOfVar(ir::VarID V) const override {
    return A.ptsOfVar(V);
  }
  const andersen::CallGraph &callGraph() const override {
    return A.callGraph();
  }
  const StatGroup &stats() const override { return A.stats(); }
};

std::unique_ptr<core::AnalysisContext> pipeline(uint64_t Seed) {
  workload::GenConfig C;
  C.Seed = Seed;
  C.NumFunctions = 16;
  C.NumGlobals = 10;
  C.HeapFraction = 0.5;
  C.IndirectCallFraction = 0.25;
  auto Ctx = std::make_unique<core::AnalysisContext>();
  Ctx->module() = std::move(*workload::generateProgram(C));
  Ctx->build();
  return Ctx;
}

} // namespace

int main(int Argc, char **Argv) {
  uint64_t Seed = Argc > 1 ? std::strtoull(Argv[1], nullptr, 10) : 2026;
  std::printf("workload seed %llu\n\n", (unsigned long long)Seed);

  TableWriter T({-22, 10, 12, 12, 12});
  std::printf("%s", T.row({"analysis", "time", "avg pt size", "cg edges",
                           "pts sets"})
                        .c_str());
  std::printf("%s", T.separator().c_str());

  auto Row = [&T](const char *Name, double Secs, double AvgPts,
                  uint64_t CgEdges, uint64_t Sets) {
    std::printf("%s", T.row({Name, formatDouble(Secs, 3) + "s",
                             formatDouble(AvgPts, 2),
                             std::to_string(CgEdges), std::to_string(Sets)})
                          .c_str());
  };

  // Andersen (flow-insensitive auxiliary).
  {
    auto Ctx = pipeline(Seed);
    AndersenResult AR(Ctx->andersen());
    Row("andersen", Ctx->andersenSeconds(),
        averagePtsSize(Ctx->module(), AR),
        Ctx->andersen().callGraph().numEdges(), 0);
  }

  // Dense ICFG data-flow (traditional flow-sensitive, §IV-A).
  {
    auto Ctx = pipeline(Seed);
    core::IterativeFlowSensitive Dense(Ctx->module(), Ctx->andersen());
    Timer Tm;
    Dense.solve();
    Row("dense flow-sensitive", Tm.seconds(),
        averagePtsSize(Ctx->module(), Dense), Dense.callGraph().numEdges(),
        Dense.numPtsSetsStored());
  }

  // SFS (staged, CGO'11 baseline).
  {
    auto Ctx = pipeline(Seed);
    core::FlowSensitive SFS(Ctx->svfg());
    Timer Tm;
    SFS.solve();
    Row("SFS (staged)", Tm.seconds(), averagePtsSize(Ctx->module(), SFS),
        SFS.callGraph().numEdges(), SFS.numPtsSetsStored());
  }

  // VSFS (this paper).
  {
    auto Ctx = pipeline(Seed);
    core::VersionedFlowSensitive VSFS(Ctx->svfg());
    Timer Tm;
    VSFS.solve();
    Row("VSFS (versioned)", Tm.seconds(),
        averagePtsSize(Ctx->module(), VSFS), VSFS.callGraph().numEdges(),
        VSFS.numPtsSetsStored());
  }

  std::printf(
      "\nreading the table:\n"
      "  - the flow-sensitive analyses report smaller average points-to\n"
      "    sets and fewer call-graph edges than Andersen (precision);\n"
      "  - SFS and VSFS report identical precision (§IV-E);\n"
      "  - VSFS stores far fewer points-to sets and runs fastest among\n"
      "    the flow-sensitive analyses.\n");
  return 0;
}
