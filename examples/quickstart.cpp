//===- quickstart.cpp - Five-minute tour of the library ---------*- C++ -*-===//
///
/// Parses a small program in the textual IR, runs the whole pipeline
/// (Andersen -> memory SSA -> SVFG -> VSFS), and answers the questions a
/// client of a pointer analysis typically asks: what does this pointer
/// point to, and may these two pointers alias?
///
/// Build & run:  ./build/examples/quickstart
///
//===----------------------------------------------------------------------===//

#include "core/AnalysisContext.h"
#include "core/VersionedFlowSensitive.h"
#include "ir/Printer.h"

#include <cstdio>
#include <string>

using namespace vsfs;

namespace {

/// The C program this IR mirrors:
///
///   struct node { void *payload; };
///   struct node slot;              // global
///   void set(void **where, void *what) { *where = what; }
///   int main() {
///     int x, y;
///     void *p = &x;
///     set(&slot.payload, p);       // slot.payload = &x
///     void *q = slot.payload;      // q == &x
///     set(&slot.payload, &y);      // slot.payload = &y (strong update)
///     void *r = slot.payload;      // r == &y
///   }
const char *Program = R"(
  global @slot [fields=2]

  func @set(%where, %what) {
  entry:
    store %what -> %where
    ret
  }

  func @main() {
  entry:
    %x = alloc
    %y = alloc
    %payload = field @slot, 1
    %p = copy %x
    call @set(%payload, %p)
    %q = load %payload
    call @set(%payload, %y)
    %r = load %payload
    ret %r
  }
)";

ir::VarID var(const ir::Module &M, const char *Name) {
  for (ir::VarID V = 0; V < M.symbols().numVars(); ++V)
    if (M.symbols().var(V).Name == Name)
      return V;
  return ir::InvalidVar;
}

void show(const ir::Module &M, const core::PointerAnalysisResult &A,
          const char *Name) {
  std::string Line = std::string("  pt(%") + Name + ") = {";
  bool First = true;
  for (uint32_t O : A.ptsOfVar(var(M, Name))) {
    Line += (First ? " " : ", ") + M.symbols().object(O).Name;
    First = false;
  }
  std::printf("%s }\n", Line.c_str());
}

} // namespace

int main() {
  // 1. Parse and verify the module.
  core::AnalysisContext Ctx;
  std::string Error;
  if (!Ctx.loadText(Program, Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  std::printf("=== input module ===\n%s\n",
              ir::printModule(Ctx.module()).c_str());

  // 2. Build the staged pipeline: Andersen's auxiliary analysis, memory
  //    SSA, and the sparse value-flow graph.
  Ctx.build();
  std::printf("SVFG: %u nodes, %llu direct edges, %llu indirect edges\n\n",
              Ctx.svfg().numNodes(),
              (unsigned long long)Ctx.svfg().numDirectEdges(),
              (unsigned long long)Ctx.svfg().numIndirectEdges());

  // 3. Run the paper's analysis.
  core::VersionedFlowSensitive VSFS(Ctx.svfg());
  VSFS.solve();

  // 4. Query it. Flow-sensitivity with strong updates distinguishes the
  //    two reads of slot.payload even though the writes go through a
  //    helper function.
  const ir::Module &M = Ctx.module();
  std::printf("=== VSFS results ===\n");
  show(M, VSFS, "q");
  show(M, VSFS, "r");
  std::printf("  mayAlias(q, r) = %s\n",
              VSFS.mayAlias(var(M, "q"), var(M, "r")) ? "yes" : "no");

  // Andersen, being flow-insensitive, merges both writes.
  std::printf("\n=== Andersen (auxiliary) for contrast ===\n");
  std::printf("  pt(%%q) and pt(%%r) both = { x.obj, y.obj } there\n");

  std::printf("\n=== analysis statistics ===\n%s",
              VSFS.stats().toString().c_str());
  std::printf("%s", VSFS.versioning().stats().toString().c_str());
  return 0;
}
