//===- uninit_read_checker.cpp - A client of the analysis -------*- C++ -*-===//
///
/// A small downstream client (the paper's motivation: points-to analysis
/// underpins vulnerability detection, verification, slicing): a checker
/// that flags loads which may read pointer memory *before any store
/// initialised it* — at that program point.
///
/// Flow-sensitivity is what makes this checkable at all: with VSFS, the
/// points-to set of the consumed version of o is empty exactly when no
/// store to o can reach the load. A flow-insensitive analysis (Andersen)
/// sees some store to o *somewhere* and goes quiet — missing the bug.
///
/// Build & run:  ./build/examples/uninit_read_checker
///
//===----------------------------------------------------------------------===//

#include "core/AnalysisContext.h"
#include "core/VersionedFlowSensitive.h"
#include "ir/Printer.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace vsfs;

namespace {

/// Mirrors:
///   void *box;                 // global pointer slot
///   int main() {
///     int v;
///     void *early = box;       // BUG: box not yet initialised
///     void **h = malloc(...);
///     void *e2 = *h;           // BUG: heap cell never initialised
///     box = &v;
///     void *late = box;        // fine: box initialised by now
///   }
const char *Program = R"(
  global @box
  func @main() {
  entry:
    %v = alloc
    %early = load @box
    %h = alloc [heap]
    %e2 = load %h
    store %v -> @box
    %late = load @box
    ret %late
  }
)";

struct Finding {
  ir::InstID Load;
  ir::ObjID Obj;
};

/// Reports loads whose loaded cell may be uninitialised at that point:
/// some object the pointer refers to has an empty consumed points-to set
/// while being a pointer-typed location the program later relies on.
std::vector<Finding> findUninitReads(core::AnalysisContext &Ctx,
                                     core::VersionedFlowSensitive &VSFS) {
  std::vector<Finding> Findings;
  const ir::Module &M = Ctx.module();
  for (ir::InstID I = 0; I < M.numInstructions(); ++I) {
    const ir::Instruction &Inst = M.inst(I);
    if (Inst.Kind != ir::InstKind::Load)
      continue;
    for (uint32_t O : VSFS.ptsOfVar(Inst.loadPtr())) {
      if (M.symbols().isFunctionObject(O))
        continue;
      core::Version C = VSFS.versioning().consume(I, O);
      if (VSFS.ptsOfVersion(C).empty())
        Findings.push_back(Finding{I, O});
    }
  }
  return Findings;
}

} // namespace

int main() {
  core::AnalysisContext Ctx;
  std::string Error;
  if (!Ctx.loadText(Program, Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  Ctx.build();
  core::VersionedFlowSensitive VSFS(Ctx.svfg());
  VSFS.solve();

  const ir::Module &M = Ctx.module();
  std::printf("=== program ===\n%s\n", ir::printModule(M).c_str());

  auto Findings = findUninitReads(Ctx, VSFS);
  std::printf("=== possibly-uninitialised pointer reads (VSFS) ===\n");
  for (const Finding &F : Findings)
    std::printf("  %-24s may read %s before any initialising store\n",
                ir::printInst(M, F.Load).c_str(),
                M.symbols().object(F.Obj).Name.c_str());
  std::printf("  (%zu findings; expected 2: %%early and %%e2, "
              "but not %%late)\n",
              Findings.size());

  // Contrast: Andersen would miss the @box case entirely, because *some*
  // store to box exists in the program.
  bool AndersenSeesBoxInitialised = false;
  for (ir::ObjID O = 0; O < M.symbols().numObjects(); ++O)
    if (M.symbols().object(O).Name == "box" &&
        !Ctx.andersen().ptsOfObj(O).empty())
      AndersenSeesBoxInitialised = true;
  std::printf("\nAndersen (flow-insensitive) thinks box is initialised: %s\n"
              "— it cannot place the read before the write.\n",
              AndersenSeesBoxInitialised ? "yes" : "no");

  bool OK = Findings.size() == 2 && AndersenSeesBoxInitialised;
  return OK ? 0 : 1;
}
