//===- meld_labelling.cpp - Figure 4 on the generic API ---------*- C++ -*-===//
///
/// Runs the paper's Figure 4 example through the graph-generic meld
/// labelling of §IV-B: an 8-node digraph prelabelled with two "patterns",
/// melded with set union. Shows that nodes 5 and 8 end with the same label
/// despite different incoming neighbours, because equivalence comes from
/// the *set of prelabels that reach a node*, not from shared predecessors.
///
/// Build & run:  ./build/examples/meld_labelling
///
//===----------------------------------------------------------------------===//

#include "adt/SparseBitVector.h"
#include "core/MeldLabelling.h"

#include <cstdio>
#include <string>

using namespace vsfs;
using adt::SparseBitVector;

namespace {

/// Renders a label set as the paper's patterns: bit 0 = "●", bit 1 = "⊗".
std::string pattern(const SparseBitVector &L) {
  if (L.empty())
    return "ε";
  std::string Out;
  if (L.test(0))
    Out += "●";
  if (L.test(1))
    Out += "⊗";
  return Out;
}

} // namespace

int main() {
  // Figure 4's graph (nodes 1..8 -> ids 0..7):
  //   1 -> 3, 2 -> 3, 3 -> 4, 4 -> 5       (1 prelabelled ●)
  //   2 -> 6, 6 -> 7, 4 -> 7, 7 -> 8, 6 -> 8   (2 prelabelled ⊗)
  graph::AdjacencyGraph G(8);
  auto Edge = [&G](uint32_t A, uint32_t B) { G.addEdge(A - 1, B - 1); };
  Edge(1, 3);
  Edge(2, 3);
  Edge(3, 4);
  Edge(4, 5);
  Edge(2, 6);
  Edge(6, 7);
  Edge(4, 7);
  Edge(7, 8);
  Edge(6, 8);

  std::vector<SparseBitVector> Prelabels(8);
  Prelabels[0].set(0); // node 1: ●
  Prelabels[1].set(1); // node 2: ⊗

  std::printf("prelabelling:\n");
  for (uint32_t N = 0; N < 8; ++N)
    std::printf("  node %u: %s\n", N + 1, pattern(Prelabels[N]).c_str());

  // The meld operator is set union: commutative, associative, idempotent,
  // with ε (the empty set) as identity — exactly §IV-B's requirements.
  auto Labels = core::meldLabel(
      G, Prelabels, [](SparseBitVector &Dst, const SparseBitVector &Src) {
        return Dst.unionWith(Src);
      });

  std::printf("\nafter meld labelling ([MELD] to fixpoint):\n");
  for (uint32_t N = 0; N < 8; ++N)
    std::printf("  node %u: %s\n", N + 1, pattern(Labels[N]).c_str());

  std::printf("\nnodes 5 and 8 share label %s despite different incoming\n"
              "neighbours: the same set of prelabels reaches both — this is\n"
              "exactly why versioned nodes can share points-to sets.\n",
              pattern(Labels[4]).c_str());
  return Labels[4] == Labels[7] ? 0 : 1;
}
