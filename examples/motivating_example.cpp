//===- motivating_example.cpp - Figures 2, 5, 7 and 9 live ------*- C++ -*-===//
///
/// Rebuilds the paper's motivating example (§III): an SVFG fragment where
/// object o is written by two stores and read by four loads. Prints the
/// stages of the pre-analysis (prelabelling, melding — Figures 5/7/9) and
/// then Figure 2b's comparison from live analysis state:
///
///   column 2 (SFS):   points-to sets maintained and propagations done
///   column 3 (VSFS):  versions, shared sets, propagations done
///
/// Build & run:  ./build/examples/motivating_example
///
//===----------------------------------------------------------------------===//

#include "core/AnalysisContext.h"
#include "core/FlowSensitive.h"
#include "core/VersionedFlowSensitive.h"
#include "ir/Printer.h"

#include <cstdio>
#include <map>
#include <string>

using namespace vsfs;

namespace {

/// Figure 2a's shape: l1 stores to o; l2/l3 load o relying only on l1;
/// a second store l2' adds to o on one path; l4/l5 load the merge.
const char *Program = R"(
  func @main() {
  entry:
    %a = alloc
    %b = alloc
    %o = alloc [weak]
    %p = copy %o
    %q = copy %o
    %r = copy %o
    store %a -> %p        ; l1:  pt(o) becomes {a}
    br left, right
  left:
    %v2 = load %q         ; l2:  reads k1
    %v3 = load %q         ; l3:  reads k1
    br middle
  middle:
    store %b -> %r        ; l2': pt(o) gains {b} (weak update)
    br join
  join:
    br out
  right:
    br out
  out:
    %v4 = load %q         ; l4:  reads k1 (x) k2
    %v5 = load %q         ; l5:  reads k1 (x) k2
    ret %v4
  }
)";

} // namespace

int main() {
  core::AnalysisContext Ctx;
  std::string Error;
  if (!Ctx.loadText(Program, Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  Ctx.build();
  const ir::Module &M = Ctx.module();

  // Locate o and the interesting instructions.
  ir::ObjID O = ir::InvalidObj;
  for (ir::ObjID I = 0; I < M.symbols().numObjects(); ++I)
    if (M.symbols().object(I).Name == "o.obj")
      O = I;
  std::vector<ir::InstID> Stores, Loads;
  for (ir::InstID I = 0; I < M.numInstructions(); ++I) {
    if (M.inst(I).Parent != M.main())
      continue;
    if (M.inst(I).Kind == ir::InstKind::Store)
      Stores.push_back(I);
    if (M.inst(I).Kind == ir::InstKind::Load)
      Loads.push_back(I);
  }

  std::printf("=== the SVFG fragment (Figure 2a) ===\n%s\n",
              ir::printModule(M).c_str());

  // --- SFS: column 2 of Figure 2b --------------------------------------
  core::FlowSensitive SFS(Ctx.svfg());
  SFS.solve();

  // --- VSFS: column 3 ----------------------------------------------------
  core::VersionedFlowSensitive VSFS(Ctx.svfg());
  VSFS.solve();
  const core::ObjectVersioning &OV = VSFS.versioning();

  // Figure 5: prelabelling — each store yields a fresh version.
  std::printf("=== prelabelling (Figure 5) ===\n");
  std::map<core::Version, std::string> VersionName;
  for (size_t K = 0; K < Stores.size(); ++K) {
    core::Version Y = OV.yield(Stores[K], O);
    // Built char-by-char: "k" + to_string trips GCC 12's false-positive
    // -Wrestrict (PR 105329) under the check.sh -Werror gate.
    std::string Label("k");
    Label += std::to_string(K + 1);
    VersionName[Y] = Label;
    std::printf("  store '%s' yields %s for o\n",
                ir::printInst(M, Stores[K]).c_str(),
                VersionName[Y].c_str());
  }

  // Figure 9: the versions every load consumes after melding.
  std::printf("\n=== after meld labelling (Figures 7 and 9) ===\n");
  auto NameOf = [&VersionName](core::Version V) {
    auto It = VersionName.find(V);
    if (It != VersionName.end())
      return It->second;
    return std::string("k1(x)k2"); // The only melded version here.
  };
  const char *LoadNames[] = {"l2", "l3", "l4", "l5"};
  for (size_t K = 0; K < Loads.size(); ++K)
    std::printf("  %s ('%s') consumes %s\n", LoadNames[K],
                ir::printInst(M, Loads[K]).c_str(),
                NameOf(OV.consume(Loads[K], O)).c_str());

  // Figure 2b's bottom rows: storage and propagation counts.
  std::printf("\n=== Figure 2b: SFS vs our approach ===\n");
  std::printf("  %-34s %10s %14s\n", "", "SFS", "our approach");
  std::printf("  %-34s %10llu %14llu\n", "points-to sets maintained",
              (unsigned long long)SFS.numPtsSetsStored(),
              (unsigned long long)VSFS.numPtsSetsStored());
  std::printf("  %-34s %10llu %14llu\n", "propagations performed",
              (unsigned long long)SFS.stats().lookup("propagations"),
              (unsigned long long)VSFS.stats().lookup("propagations"));
  std::printf("  (paper's fragment: 6 sets -> 3, 6 constraints -> 2)\n");

  // And the actual points-to results agree exactly (§IV-E).
  std::printf("\n=== identical precision ===\n");
  bool Same = true;
  for (ir::VarID V = 0; V < M.symbols().numVars(); ++V)
    Same &= SFS.ptsOfVar(V) == VSFS.ptsOfVar(V);
  std::printf("  SFS and VSFS agree on every variable: %s\n",
              Same ? "yes" : "NO (bug!)");
  return Same ? 0 : 1;
}
