file(REMOVE_RECURSE
  "libvsfs_andersen.a"
)
