# Empty dependencies file for vsfs_andersen.
# This may be replaced when dependencies are built.
