file(REMOVE_RECURSE
  "CMakeFiles/vsfs_andersen.dir/Andersen.cpp.o"
  "CMakeFiles/vsfs_andersen.dir/Andersen.cpp.o.d"
  "CMakeFiles/vsfs_andersen.dir/OVS.cpp.o"
  "CMakeFiles/vsfs_andersen.dir/OVS.cpp.o.d"
  "CMakeFiles/vsfs_andersen.dir/Validate.cpp.o"
  "CMakeFiles/vsfs_andersen.dir/Validate.cpp.o.d"
  "libvsfs_andersen.a"
  "libvsfs_andersen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsfs_andersen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
