file(REMOVE_RECURSE
  "CMakeFiles/vsfs_support.dir/Format.cpp.o"
  "CMakeFiles/vsfs_support.dir/Format.cpp.o.d"
  "CMakeFiles/vsfs_support.dir/MemUsage.cpp.o"
  "CMakeFiles/vsfs_support.dir/MemUsage.cpp.o.d"
  "CMakeFiles/vsfs_support.dir/Statistics.cpp.o"
  "CMakeFiles/vsfs_support.dir/Statistics.cpp.o.d"
  "libvsfs_support.a"
  "libvsfs_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsfs_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
