# Empty compiler generated dependencies file for vsfs_support.
# This may be replaced when dependencies are built.
