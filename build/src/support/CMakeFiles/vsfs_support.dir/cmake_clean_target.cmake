file(REMOVE_RECURSE
  "libvsfs_support.a"
)
