# Empty compiler generated dependencies file for vsfs_graph.
# This may be replaced when dependencies are built.
