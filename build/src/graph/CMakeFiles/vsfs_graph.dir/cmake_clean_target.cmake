file(REMOVE_RECURSE
  "libvsfs_graph.a"
)
