file(REMOVE_RECURSE
  "CMakeFiles/vsfs_graph.dir/Dominators.cpp.o"
  "CMakeFiles/vsfs_graph.dir/Dominators.cpp.o.d"
  "CMakeFiles/vsfs_graph.dir/Graph.cpp.o"
  "CMakeFiles/vsfs_graph.dir/Graph.cpp.o.d"
  "CMakeFiles/vsfs_graph.dir/SCC.cpp.o"
  "CMakeFiles/vsfs_graph.dir/SCC.cpp.o.d"
  "libvsfs_graph.a"
  "libvsfs_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsfs_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
