file(REMOVE_RECURSE
  "libvsfs_svfg.a"
)
