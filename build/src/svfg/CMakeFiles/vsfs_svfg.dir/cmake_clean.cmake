file(REMOVE_RECURSE
  "CMakeFiles/vsfs_svfg.dir/SVFG.cpp.o"
  "CMakeFiles/vsfs_svfg.dir/SVFG.cpp.o.d"
  "libvsfs_svfg.a"
  "libvsfs_svfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsfs_svfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
