# Empty dependencies file for vsfs_svfg.
# This may be replaced when dependencies are built.
