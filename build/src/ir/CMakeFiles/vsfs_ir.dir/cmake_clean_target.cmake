file(REMOVE_RECURSE
  "libvsfs_ir.a"
)
