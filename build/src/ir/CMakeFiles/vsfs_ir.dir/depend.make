# Empty dependencies file for vsfs_ir.
# This may be replaced when dependencies are built.
