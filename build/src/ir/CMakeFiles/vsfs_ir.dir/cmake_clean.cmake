file(REMOVE_RECURSE
  "CMakeFiles/vsfs_ir.dir/ICFG.cpp.o"
  "CMakeFiles/vsfs_ir.dir/ICFG.cpp.o.d"
  "CMakeFiles/vsfs_ir.dir/IRBuilder.cpp.o"
  "CMakeFiles/vsfs_ir.dir/IRBuilder.cpp.o.d"
  "CMakeFiles/vsfs_ir.dir/Parser.cpp.o"
  "CMakeFiles/vsfs_ir.dir/Parser.cpp.o.d"
  "CMakeFiles/vsfs_ir.dir/Printer.cpp.o"
  "CMakeFiles/vsfs_ir.dir/Printer.cpp.o.d"
  "CMakeFiles/vsfs_ir.dir/Verifier.cpp.o"
  "CMakeFiles/vsfs_ir.dir/Verifier.cpp.o.d"
  "libvsfs_ir.a"
  "libvsfs_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsfs_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
