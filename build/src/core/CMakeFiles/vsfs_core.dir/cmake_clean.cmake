file(REMOVE_RECURSE
  "CMakeFiles/vsfs_core.dir/DotExport.cpp.o"
  "CMakeFiles/vsfs_core.dir/DotExport.cpp.o.d"
  "CMakeFiles/vsfs_core.dir/FlowSensitive.cpp.o"
  "CMakeFiles/vsfs_core.dir/FlowSensitive.cpp.o.d"
  "CMakeFiles/vsfs_core.dir/IterativeFlowSensitive.cpp.o"
  "CMakeFiles/vsfs_core.dir/IterativeFlowSensitive.cpp.o.d"
  "CMakeFiles/vsfs_core.dir/ObjectVersioning.cpp.o"
  "CMakeFiles/vsfs_core.dir/ObjectVersioning.cpp.o.d"
  "CMakeFiles/vsfs_core.dir/VersionedFlowSensitive.cpp.o"
  "CMakeFiles/vsfs_core.dir/VersionedFlowSensitive.cpp.o.d"
  "libvsfs_core.a"
  "libvsfs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsfs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
