# Empty dependencies file for vsfs_core.
# This may be replaced when dependencies are built.
