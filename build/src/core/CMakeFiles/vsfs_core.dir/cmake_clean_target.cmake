file(REMOVE_RECURSE
  "libvsfs_core.a"
)
