# Empty dependencies file for vsfs_memssa.
# This may be replaced when dependencies are built.
