
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memssa/MemSSA.cpp" "src/memssa/CMakeFiles/vsfs_memssa.dir/MemSSA.cpp.o" "gcc" "src/memssa/CMakeFiles/vsfs_memssa.dir/MemSSA.cpp.o.d"
  "/root/repo/src/memssa/Validate.cpp" "src/memssa/CMakeFiles/vsfs_memssa.dir/Validate.cpp.o" "gcc" "src/memssa/CMakeFiles/vsfs_memssa.dir/Validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/andersen/CMakeFiles/vsfs_andersen.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/vsfs_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/vsfs_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/vsfs_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
