file(REMOVE_RECURSE
  "libvsfs_memssa.a"
)
