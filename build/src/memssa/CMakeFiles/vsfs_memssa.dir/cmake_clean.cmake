file(REMOVE_RECURSE
  "CMakeFiles/vsfs_memssa.dir/MemSSA.cpp.o"
  "CMakeFiles/vsfs_memssa.dir/MemSSA.cpp.o.d"
  "CMakeFiles/vsfs_memssa.dir/Validate.cpp.o"
  "CMakeFiles/vsfs_memssa.dir/Validate.cpp.o.d"
  "libvsfs_memssa.a"
  "libvsfs_memssa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsfs_memssa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
