# Empty dependencies file for vsfs_workload.
# This may be replaced when dependencies are built.
