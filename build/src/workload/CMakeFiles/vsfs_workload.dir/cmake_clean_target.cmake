file(REMOVE_RECURSE
  "libvsfs_workload.a"
)
