file(REMOVE_RECURSE
  "CMakeFiles/vsfs_workload.dir/BenchmarkSuite.cpp.o"
  "CMakeFiles/vsfs_workload.dir/BenchmarkSuite.cpp.o.d"
  "CMakeFiles/vsfs_workload.dir/ProgramGenerator.cpp.o"
  "CMakeFiles/vsfs_workload.dir/ProgramGenerator.cpp.o.d"
  "libvsfs_workload.a"
  "libvsfs_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsfs_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
