# Empty dependencies file for ovs_test.
# This may be replaced when dependencies are built.
