file(REMOVE_RECURSE
  "CMakeFiles/ovs_test.dir/ovs_test.cpp.o"
  "CMakeFiles/ovs_test.dir/ovs_test.cpp.o.d"
  "ovs_test"
  "ovs_test.pdb"
  "ovs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ovs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
