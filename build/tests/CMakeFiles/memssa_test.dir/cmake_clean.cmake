file(REMOVE_RECURSE
  "CMakeFiles/memssa_test.dir/memssa_test.cpp.o"
  "CMakeFiles/memssa_test.dir/memssa_test.cpp.o.d"
  "memssa_test"
  "memssa_test.pdb"
  "memssa_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memssa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
