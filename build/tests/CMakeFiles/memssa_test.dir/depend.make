# Empty dependencies file for memssa_test.
# This may be replaced when dependencies are built.
