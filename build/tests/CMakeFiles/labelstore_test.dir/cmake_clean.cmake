file(REMOVE_RECURSE
  "CMakeFiles/labelstore_test.dir/labelstore_test.cpp.o"
  "CMakeFiles/labelstore_test.dir/labelstore_test.cpp.o.d"
  "labelstore_test"
  "labelstore_test.pdb"
  "labelstore_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/labelstore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
