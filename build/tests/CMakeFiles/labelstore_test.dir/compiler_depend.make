# Empty compiler generated dependencies file for labelstore_test.
# This may be replaced when dependencies are built.
