# Empty dependencies file for andersen_test.
# This may be replaced when dependencies are built.
