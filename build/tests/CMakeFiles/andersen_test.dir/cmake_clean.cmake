file(REMOVE_RECURSE
  "CMakeFiles/andersen_test.dir/andersen_test.cpp.o"
  "CMakeFiles/andersen_test.dir/andersen_test.cpp.o.d"
  "andersen_test"
  "andersen_test.pdb"
  "andersen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/andersen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
