file(REMOVE_RECURSE
  "CMakeFiles/flowsensitive_test.dir/flowsensitive_test.cpp.o"
  "CMakeFiles/flowsensitive_test.dir/flowsensitive_test.cpp.o.d"
  "flowsensitive_test"
  "flowsensitive_test.pdb"
  "flowsensitive_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flowsensitive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
