# Empty compiler generated dependencies file for flowsensitive_test.
# This may be replaced when dependencies are built.
