# Empty dependencies file for icfg_test.
# This may be replaced when dependencies are built.
