file(REMOVE_RECURSE
  "CMakeFiles/icfg_test.dir/icfg_test.cpp.o"
  "CMakeFiles/icfg_test.dir/icfg_test.cpp.o.d"
  "icfg_test"
  "icfg_test.pdb"
  "icfg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icfg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
