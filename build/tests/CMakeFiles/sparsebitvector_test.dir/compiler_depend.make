# Empty compiler generated dependencies file for sparsebitvector_test.
# This may be replaced when dependencies are built.
