file(REMOVE_RECURSE
  "CMakeFiles/sparsebitvector_test.dir/sparsebitvector_test.cpp.o"
  "CMakeFiles/sparsebitvector_test.dir/sparsebitvector_test.cpp.o.d"
  "sparsebitvector_test"
  "sparsebitvector_test.pdb"
  "sparsebitvector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparsebitvector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
