file(REMOVE_RECURSE
  "CMakeFiles/vsfs_test.dir/vsfs_test.cpp.o"
  "CMakeFiles/vsfs_test.dir/vsfs_test.cpp.o.d"
  "vsfs_test"
  "vsfs_test.pdb"
  "vsfs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
