# Empty compiler generated dependencies file for vsfs_test.
# This may be replaced when dependencies are built.
