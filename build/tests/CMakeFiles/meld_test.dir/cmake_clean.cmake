file(REMOVE_RECURSE
  "CMakeFiles/meld_test.dir/meld_test.cpp.o"
  "CMakeFiles/meld_test.dir/meld_test.cpp.o.d"
  "meld_test"
  "meld_test.pdb"
  "meld_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meld_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
