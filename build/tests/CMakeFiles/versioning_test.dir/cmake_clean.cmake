file(REMOVE_RECURSE
  "CMakeFiles/versioning_test.dir/versioning_test.cpp.o"
  "CMakeFiles/versioning_test.dir/versioning_test.cpp.o.d"
  "versioning_test"
  "versioning_test.pdb"
  "versioning_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/versioning_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
