# Empty dependencies file for svfg_invariants_test.
# This may be replaced when dependencies are built.
