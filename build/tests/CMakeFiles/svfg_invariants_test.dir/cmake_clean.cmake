file(REMOVE_RECURSE
  "CMakeFiles/svfg_invariants_test.dir/svfg_invariants_test.cpp.o"
  "CMakeFiles/svfg_invariants_test.dir/svfg_invariants_test.cpp.o.d"
  "svfg_invariants_test"
  "svfg_invariants_test.pdb"
  "svfg_invariants_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svfg_invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
