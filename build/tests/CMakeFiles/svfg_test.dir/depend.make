# Empty dependencies file for svfg_test.
# This may be replaced when dependencies are built.
