file(REMOVE_RECURSE
  "CMakeFiles/svfg_test.dir/svfg_test.cpp.o"
  "CMakeFiles/svfg_test.dir/svfg_test.cpp.o.d"
  "svfg_test"
  "svfg_test.pdb"
  "svfg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svfg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
