file(REMOVE_RECURSE
  "CMakeFiles/compare_analyses.dir/compare_analyses.cpp.o"
  "CMakeFiles/compare_analyses.dir/compare_analyses.cpp.o.d"
  "compare_analyses"
  "compare_analyses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_analyses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
