# Empty dependencies file for compare_analyses.
# This may be replaced when dependencies are built.
