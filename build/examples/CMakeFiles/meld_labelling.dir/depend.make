# Empty dependencies file for meld_labelling.
# This may be replaced when dependencies are built.
