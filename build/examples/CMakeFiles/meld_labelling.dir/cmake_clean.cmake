file(REMOVE_RECURSE
  "CMakeFiles/meld_labelling.dir/meld_labelling.cpp.o"
  "CMakeFiles/meld_labelling.dir/meld_labelling.cpp.o.d"
  "meld_labelling"
  "meld_labelling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meld_labelling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
