# Empty dependencies file for uninit_read_checker.
# This may be replaced when dependencies are built.
