file(REMOVE_RECURSE
  "CMakeFiles/uninit_read_checker.dir/uninit_read_checker.cpp.o"
  "CMakeFiles/uninit_read_checker.dir/uninit_read_checker.cpp.o.d"
  "uninit_read_checker"
  "uninit_read_checker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uninit_read_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
