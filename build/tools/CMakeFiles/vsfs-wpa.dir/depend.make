# Empty dependencies file for vsfs-wpa.
# This may be replaced when dependencies are built.
