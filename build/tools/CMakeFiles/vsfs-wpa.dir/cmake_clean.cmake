file(REMOVE_RECURSE
  "CMakeFiles/vsfs-wpa.dir/vsfs-wpa.cpp.o"
  "CMakeFiles/vsfs-wpa.dir/vsfs-wpa.cpp.o.d"
  "vsfs-wpa"
  "vsfs-wpa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsfs-wpa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
