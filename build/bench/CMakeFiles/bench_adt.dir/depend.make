# Empty dependencies file for bench_adt.
# This may be replaced when dependencies are built.
