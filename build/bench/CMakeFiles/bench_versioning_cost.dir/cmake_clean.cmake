file(REMOVE_RECURSE
  "CMakeFiles/bench_versioning_cost.dir/bench_versioning_cost.cpp.o"
  "CMakeFiles/bench_versioning_cost.dir/bench_versioning_cost.cpp.o.d"
  "bench_versioning_cost"
  "bench_versioning_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_versioning_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
