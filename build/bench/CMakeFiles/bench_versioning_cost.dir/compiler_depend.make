# Empty compiler generated dependencies file for bench_versioning_cost.
# This may be replaced when dependencies are built.
