# Empty dependencies file for bench_dense_baseline.
# This may be replaced when dependencies are built.
