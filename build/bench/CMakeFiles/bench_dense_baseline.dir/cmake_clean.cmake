file(REMOVE_RECURSE
  "CMakeFiles/bench_dense_baseline.dir/bench_dense_baseline.cpp.o"
  "CMakeFiles/bench_dense_baseline.dir/bench_dense_baseline.cpp.o.d"
  "bench_dense_baseline"
  "bench_dense_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dense_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
