file(REMOVE_RECURSE
  "CMakeFiles/bench_meld_repr.dir/bench_meld_repr.cpp.o"
  "CMakeFiles/bench_meld_repr.dir/bench_meld_repr.cpp.o.d"
  "bench_meld_repr"
  "bench_meld_repr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_meld_repr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
