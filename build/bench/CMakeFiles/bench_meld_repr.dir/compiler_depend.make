# Empty compiler generated dependencies file for bench_meld_repr.
# This may be replaced when dependencies are built.
