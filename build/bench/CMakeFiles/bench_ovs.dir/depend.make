# Empty dependencies file for bench_ovs.
# This may be replaced when dependencies are built.
