file(REMOVE_RECURSE
  "CMakeFiles/bench_ovs.dir/bench_ovs.cpp.o"
  "CMakeFiles/bench_ovs.dir/bench_ovs.cpp.o.d"
  "bench_ovs"
  "bench_ovs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ovs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
