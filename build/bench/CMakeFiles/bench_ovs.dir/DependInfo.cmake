
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ovs.cpp" "bench/CMakeFiles/bench_ovs.dir/bench_ovs.cpp.o" "gcc" "bench/CMakeFiles/bench_ovs.dir/bench_ovs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/vsfs_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vsfs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/svfg/CMakeFiles/vsfs_svfg.dir/DependInfo.cmake"
  "/root/repo/build/src/memssa/CMakeFiles/vsfs_memssa.dir/DependInfo.cmake"
  "/root/repo/build/src/andersen/CMakeFiles/vsfs_andersen.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/vsfs_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/vsfs_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/vsfs_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
