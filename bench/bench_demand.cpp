//===- bench_demand.cpp - Demand-driven query ablation ----------*- C++ -*-===//
///
/// Exhaustive vs demand-driven solving (docs/QUERIES.md): per preset and
/// flow-sensitive solver, one whole-program solve against a QueryEngine
/// session querying "what may this dereference touch" at 1, 4, and all of
/// the program's load sites (the classic demand-driven client: an alias
/// query at a dereference). The 1- and 4-sink cells spread their picks
/// evenly through the program so they are not biased toward the tiny
/// slices at its start.
///
/// The demand engine computes each sink's backward slice, unions the
/// slices into a cumulative scope, and solves once restricted to that
/// scope; its answers at the queried positions are bit-identical to the
/// exhaustive fixpoint (tests/query_test.cpp pins this). What the table
/// shows is the *cost* side of that trade:
///
///   - scope is a strict subset of the SVFG (asserted per row — a slice
///     that degenerates to the whole graph would make demand pointless);
///   - few sinks => small scope => wall-clock win over exhaustive;
///   - all sinks => the scope approaches the graph's live region and the
///     demand run approaches (slicing overhead included) the exhaustive
///     time. Demand mode is a *query* engine, not a faster analysis.
///
/// Demand times include everything a client pays: slicer construction,
/// slicing, and the scoped solve(s). Each configuration runs on a fresh
/// pipeline (scoped solves materialise call edges into the SVFG, so
/// sharing one graph would leak work between cells).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "query/QueryEngine.h"
#include "support/Schemas.h"

#include <sstream>

using namespace vsfs;
using namespace vsfs::bench;

namespace {

std::vector<ir::InstID> loadSites(const ir::Module &M) {
  std::vector<ir::InstID> Sites;
  for (ir::InstID I = 0; I < M.numInstructions(); ++I)
    if (M.inst(I).Kind == ir::InstKind::Load)
      Sites.push_back(I);
  return Sites;
}

/// \p Want sites spread evenly through \p Sites (all of them when
/// Want >= Sites.size()).
std::vector<ir::InstID> pickSinks(const std::vector<ir::InstID> &Sites,
                                  size_t Want) {
  if (Want >= Sites.size())
    return Sites;
  std::vector<ir::InstID> Picked;
  for (size_t K = 0; K < Want; ++K)
    Picked.push_back(Sites[(K * Sites.size() + Sites.size() / 2) / Want]);
  return Picked;
}

struct DemandMeasure {
  double Seconds = 0;
  uint64_t Sinks = 0; ///< Sites actually queried (<= requested).
  uint64_t ScopeNodes = 0;
  uint64_t SvfgNodes = 0;
  uint64_t Solves = 0;
  bool StrictSubset = false;
};

/// One demand session: prefetch \p NumSinks load sites, then query each
/// (prefetch first so the lazy engine solves once over the final scope —
/// the pattern runCheckersDemand uses).
DemandMeasure runDemand(const workload::BenchSpec &Spec, const char *Solver,
                        size_t NumSinks, uint32_t Runs) {
  DemandMeasure M;
  for (uint32_t Run = 0; Run < Runs; ++Run) {
    auto Ctx = buildPipeline(Spec);
    std::vector<ir::InstID> Sites =
        pickSinks(loadSites(Ctx->module()), NumSinks);
    Timer T;
    query::QueryEngine::Options QO;
    QO.Solver = Solver;
    query::QueryEngine E(*Ctx, QO);
    for (ir::InstID F : Sites)
      E.prefetch(F);
    for (ir::InstID F : Sites)
      E.ptsAt(F, Ctx->module().inst(F).loadPtr());
    M.Seconds += T.seconds() / Runs;
    M.Sinks = Sites.size();
    M.ScopeNodes = E.scope().size();
    M.SvfgNodes = Ctx->svfg().numNodes();
    M.Solves = E.stats().lookup("solves");
    M.StrictSubset = M.ScopeNodes < M.SvfgNodes;
  }
  return M;
}

/// One exhaustive whole-program solve (wall time, fresh pipeline).
double runExhaustive(const workload::BenchSpec &Spec, const char *Solver,
                     uint32_t Runs) {
  double Seconds = 0;
  for (uint32_t Run = 0; Run < Runs; ++Run) {
    auto Ctx = buildPipeline(Spec);
    Timer T;
    core::AnalysisRunner::registry().run(*Ctx, Solver);
    Seconds += T.seconds() / Runs;
  }
  return Seconds;
}

} // namespace

int main(int Argc, char **Argv) {
  uint32_t Runs = 1;
  std::string JsonPath;
  auto Suite = parseSuiteArgs(Argc, Argv, Runs, &JsonPath);
  if (Suite.empty())
    return 0;
  // Default to the three presets the experiment tracks (EXPERIMENTS.md);
  // --bench / --quick select explicitly.
  if (Suite.size() == workload::benchmarkSuite().size()) {
    Suite.clear();
    for (const char *Name : {"astyle", "mutt", "bash"}) {
      workload::BenchSpec S;
      if (workload::findBenchmark(Name, S))
        Suite.push_back(S);
    }
  }

  std::printf("Demand-driven query ablation: exhaustive solve vs sliced "
              "per-query solves\n(%u run%s per cell; sinks are deref loads; "
              "demand times include slicing)\n\n",
              Runs, Runs == 1 ? "" : "s");
  TableWriter T({-14, 6, 7, 9, 9, 9, 10, 10, 8, 7});
  std::printf("%s", T.row({"Bench.", "Solver", "Sinks", "Exh t", "Dem t",
                           "Speedup", "Scope", "SVFG n", "Scope%",
                           "Subset"})
                        .c_str());
  std::printf("%s", T.separator().c_str());

  const char *Solvers[] = {"sfs", "vsfs"};
  std::ostringstream Json;
  Json << "{\n  \"schema\": \"" << schemas::BenchDemand
       << "\",\n  \"runs\": " << Runs << ",\n  \"pts_repr\": \""
       << adt::ptsReprName(adt::pointsToRepr()) << "\",\n  \"rows\": [";
  bool FirstJson = true;
  bool AllSubset = true;
  for (const auto &Spec : Suite) {
    size_t NumLoads = 0;
    {
      auto Ctx = buildPipeline(Spec);
      NumLoads = loadSites(Ctx->module()).size();
    }
    for (const char *Solver : Solvers) {
      double ExhT = runExhaustive(Spec, Solver, Runs);
      for (size_t Want : {size_t(1), size_t(4), NumLoads}) {
        DemandMeasure D = runDemand(Spec, Solver, Want, Runs);
        double Speedup = ExhT / std::max(D.Seconds, 1e-9);
        double ScopePct =
            100.0 * double(D.ScopeNodes) / double(std::max<uint64_t>(
                                               D.SvfgNodes, 1));
        AllSubset = AllSubset && D.StrictSubset;
        std::string SinksLabel = Want == NumLoads
                                     ? "all:" + std::to_string(D.Sinks)
                                     : std::to_string(D.Sinks);
        std::printf(
            "%s",
            T.row({Spec.Name, Solver, SinksLabel, formatDouble(ExhT, 3),
                   formatDouble(D.Seconds, 3), formatRatio(Speedup),
                   std::to_string(D.ScopeNodes),
                   std::to_string(D.SvfgNodes), formatDouble(ScopePct, 1),
                   D.StrictSubset ? "yes" : "NO"})
                .c_str());

        char Buf[512];
        std::snprintf(
            Buf, sizeof(Buf),
            "%s    {\"name\": \"%s\", \"solver\": \"%s\", \"sinks\": %llu, "
            "\"load_sites\": %llu, \"exhaustive_seconds\": %.6f, "
            "\"demand_seconds\": %.6f, \"speedup\": %.4f, "
            "\"scope_nodes\": %llu, \"svfg_nodes\": %llu, \"solves\": %llu, "
            "\"strict_subset\": %s}",
            FirstJson ? "\n" : ",\n", Spec.Name.c_str(), Solver,
            (unsigned long long)D.Sinks, (unsigned long long)NumLoads, ExhT,
            D.Seconds, Speedup, (unsigned long long)D.ScopeNodes,
            (unsigned long long)D.SvfgNodes, (unsigned long long)D.Solves,
            D.StrictSubset ? "true" : "false");
        Json << Buf;
        FirstJson = false;
      }
    }
  }
  Json << "\n  ]\n}\n";

  std::printf("%s", T.separator().c_str());
  std::printf(
      "\nExpected shape: every scope is a strict subset of the SVFG%s, the\n"
      "1-sink cells beat exhaustive clearly, and the all-sinks cells pay\n"
      "back most of the win (demand is a query engine, not a faster\n"
      "whole-program analysis).\n",
      AllSubset ? " (holds)" : " (VIOLATED)");

  if (!JsonPath.empty())
    writeJson(JsonPath, Json.str());
  return AllSubset ? 0 : 1;
}
