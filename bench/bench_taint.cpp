//===- bench_taint.cpp - Spec engine vs legacy checker ablation -*- C++ -*-===//
///
/// The declarative taint engine against the hand-written checker walk
/// (docs/CHECKERS.md): per preset, one vsfs solve, then (a) the legacy
/// \c checker::runCheckers pass over the four original rules, (b) the spec
/// engine running the full builtin set (the same four rules plus uread and
/// ufree) including witness construction, and (c) an independent
/// \c WitnessVerifier replay of every witness. A fourth cell runs the same
/// specs demand-driven through a QueryEngine on a fresh pipeline.
///
/// Three correctness gates decide the exit code on every row, tracked trio
/// or not: the spec findings projected onto the legacy kinds must equal the
/// legacy walk bit-for-bit, every witness must replay Verified, and the
/// demand-mode projection must match the exhaustive one. Wall-clock ratios
/// are reported, never gated — the engine's generality is expected to cost
/// a small constant factor over the fused legacy loop.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "checker/Checker.h"
#include "query/QueryEngine.h"
#include "support/Schemas.h"
#include "taint/TaintEngine.h"
#include "taint/WitnessVerifier.h"

#include <sstream>

using namespace vsfs;
using namespace vsfs::bench;

namespace {

struct TaintCell {
  double LegacySeconds = 0;  ///< runCheckers, legacy kinds only.
  double SpecSeconds = 0;    ///< runTaint, full builtin set.
  double VerifySeconds = 0;  ///< WitnessVerifier::verifyAll replay.
  double DemandSeconds = 0;  ///< runTaintDemand on a fresh pipeline.
  size_t LegacyFindings = 0;
  size_t SpecFindings = 0;
  uint32_t Verified = 0;
  uint64_t WalkSteps = 0; ///< Engine's "object_walk_steps" work counter.
  bool Identical = false; ///< Legacy projection == legacy walk.
  bool DemandIdentical = false;
};

/// Runs all four cells for \p Spec, averaging times over \p Runs. The
/// correctness flags come from the last run (they are deterministic).
/// Bug patterns are injected so the free-based object-flow rules have
/// sources to walk — the stock presets never emit frees.
TaintCell runCell(workload::BenchSpec Spec,
                  const std::vector<taint::TaintSpec> &Specs,
                  uint32_t Runs) {
  Spec.Config.InjectBugs = true;
  TaintCell Cell;
  std::vector<checker::Finding> Exhaustive;
  for (uint32_t Run = 0; Run < Runs; ++Run) {
    auto Ctx = buildPipeline(Spec);
    auto R = core::AnalysisRunner::registry().run(*Ctx, "vsfs");
    const svfg::SVFG &G = Ctx->svfg();
    const core::PointerAnalysisResult &A = *R.Analysis;

    Timer T;
    std::vector<checker::Finding> Legacy =
        checker::runCheckers(G, A, checker::LegacyChecks);
    Cell.LegacySeconds += T.seconds() / Runs;

    T.start();
    taint::TaintEngine TE(G, A);
    std::vector<taint::TaintFinding> TFs = TE.run(Specs);
    Cell.SpecSeconds += T.seconds() / Runs;

    T.start();
    Cell.Verified = taint::WitnessVerifier(G, A).verifyAll(Specs, TFs);
    Cell.VerifySeconds += T.seconds() / Runs;

    Cell.LegacyFindings = Legacy.size();
    Cell.SpecFindings = TFs.size();
    Cell.WalkSteps = TE.stats().lookup("object_walk_steps");
    Exhaustive = taint::toCheckerFindings(TFs);
    std::vector<checker::Finding> LegacyOnly;
    for (const checker::Finding &F : Exhaustive)
      if (checker::checkBit(F.Kind) & checker::LegacyChecks)
        LegacyOnly.push_back(F);
    Cell.Identical = LegacyOnly == Legacy;
  }
  for (uint32_t Run = 0; Run < Runs; ++Run) {
    auto Ctx = buildPipeline(Spec);
    Timer T;
    query::QueryEngine::Options QO;
    QO.Solver = "vsfs";
    query::QueryEngine E(*Ctx, QO);
    std::vector<taint::TaintFinding> TFs = query::runTaintDemand(E, Specs);
    Cell.DemandSeconds += T.seconds() / Runs;
    Cell.DemandIdentical = taint::toCheckerFindings(TFs) == Exhaustive;
  }
  return Cell;
}

} // namespace

int main(int Argc, char **Argv) {
  uint32_t Runs = 1;
  std::string JsonPath;
  auto Suite = parseSuiteArgs(Argc, Argv, Runs, &JsonPath);
  if (Suite.empty())
    return 0;
  // Default to the three tracked presets (EXPERIMENTS.md); --bench /
  // --quick select explicitly. The correctness gates apply either way.
  if (Suite.size() == workload::benchmarkSuite().size()) {
    Suite.clear();
    for (const char *Name : {"astyle", "mutt", "bash"}) {
      workload::BenchSpec S;
      if (workload::findBenchmark(Name, S))
        Suite.push_back(S);
    }
  }

  const std::vector<taint::TaintSpec> Specs = taint::builtinSpecs();
  std::printf("Taint spec engine vs legacy checker walk (vsfs backend, "
              "bugs injected)\n(%u run%s per cell; spec cell runs all %zu "
              "builtin specs and builds witnesses,\nlegacy cell runs the "
              "four original checkers; ver t replays every witness)\n\n",
              Runs, Runs == 1 ? "" : "s", Specs.size());
  TableWriter T({-14, 8, 8, 9, 9, 9, 9, 7, 6});
  std::printf("%s", T.row({"Bench.", "Legacy", "Spec", "leg t", "spec t",
                           "ver t", "dem t", "Verif", "Same"})
                        .c_str());
  std::printf("%s", T.separator().c_str());

  std::ostringstream Json;
  Json << "{\n  \"schema\": \"" << schemas::BenchTaint
       << "\",\n  \"runs\": " << Runs << ",\n  \"specs\": " << Specs.size()
       << ",\n  \"pts_repr\": \"" << adt::ptsReprName(adt::pointsToRepr())
       << "\",\n  \"coalesce\": " << (coalesceEnabled() ? "true" : "false")
       << ",\n  \"rows\": [";
  bool FirstJson = true;
  bool AllGatesHold = true;
  for (const auto &Spec : Suite) {
    TaintCell Cell = runCell(Spec, Specs, Runs);
    bool AllVerified = Cell.Verified == Cell.SpecFindings;
    bool Gates = Cell.Identical && AllVerified && Cell.DemandIdentical;
    AllGatesHold = AllGatesHold && Gates;

    char Verif[32];
    std::snprintf(Verif, sizeof(Verif), "%u/%zu", Cell.Verified,
                  Cell.SpecFindings);
    std::printf(
        "%s", T.row({Spec.Name, std::to_string(Cell.LegacyFindings),
                     std::to_string(Cell.SpecFindings),
                     formatDouble(Cell.LegacySeconds, 3),
                     formatDouble(Cell.SpecSeconds, 3),
                     formatDouble(Cell.VerifySeconds, 3),
                     formatDouble(Cell.DemandSeconds, 3), Verif,
                     Gates ? "yes" : "NO"})
                  .c_str());

    char Buf[512];
    std::snprintf(
        Buf, sizeof(Buf),
        "%s    {\"name\": \"%s\", \"legacy_findings\": %zu, "
        "\"spec_findings\": %zu, \"verified\": %u, \"walk_steps\": %llu, "
        "\"legacy_seconds\": %.6f, \"spec_seconds\": %.6f, "
        "\"verify_seconds\": %.6f, \"demand_seconds\": %.6f, "
        "\"identical\": %s, \"all_verified\": %s, \"demand_identical\": %s}",
        FirstJson ? "\n" : ",\n", Spec.Name.c_str(), Cell.LegacyFindings,
        Cell.SpecFindings, Cell.Verified,
        (unsigned long long)Cell.WalkSteps, Cell.LegacySeconds,
        Cell.SpecSeconds, Cell.VerifySeconds, Cell.DemandSeconds,
        Cell.Identical ? "true" : "false", AllVerified ? "true" : "false",
        Cell.DemandIdentical ? "true" : "false");
    Json << Buf;
    FirstJson = false;
  }
  Json << "\n  ]\n}\n";

  std::printf("%s", T.separator().c_str());
  std::printf("\nExpected shape: legacy projection identical, every witness "
              "replays, demand\nmatches exhaustive — all rows%s. Spec/legacy "
              "time ratio is reported, not gated.\n",
              AllGatesHold ? " (holds)" : " (VIOLATED)");

  if (!JsonPath.empty())
    writeJson(JsonPath, Json.str());
  return AllGatesHold ? 0 : 1;
}
