//===- bench_ptscache.cpp - Points-to representation ablation ---*- C++ -*-===//
///
/// The union-heavy solver kernels (SFS's IN/OUT propagation and VSFS's
/// version propagation re-union the same few sets enormously often) under
/// both points-to representations:
///
///   sbv        — every set owns its SparseBitVector (the historical
///                layout); a union is always a word-parallel merge;
///   persistent — sets are interned PointsToIDs in the process-global
///                PointsToCache; structurally equal sets share one node and
///                repeated unions of the same operands are memo hits.
///
/// Both representations produce identical points-to results (asserted by
/// tests/differential_fuzz_test.cpp); what differs is solve time and the
/// peak points-to storage the solve allocates. "mem x" > 1 means the
/// persistent representation stored fewer bytes — the deduplication the
/// interning buys; "hit%" is the fraction of set operations answered from
/// the memo tables without touching a bit vector.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "support/Schemas.h"

#include <sstream>

using namespace vsfs;
using namespace vsfs::bench;

namespace {

struct ReprMeasure {
  double Seconds = 0;
  uint64_t PtsBytes = 0; ///< Peak growth of live points-to storage.
};

/// Solves \p Solver on fresh pipelines for \p Spec under \p Repr, averaging
/// over \p Runs. Under the persistent representation the cache counters are
/// snapshotted into \p CacheStats and the cache is cleared afterwards, so
/// presets are measured in isolation.
ReprMeasure runOne(const workload::BenchSpec &Spec, const char *Solver,
                   adt::PtsRepr Repr, uint32_t Runs, StatGroup *CacheStats) {
  adt::PtsReprScope Scope(Repr);
  if (Repr == adt::PtsRepr::Persistent)
    adt::PointsToCache::get().resetStats();
  ReprMeasure M;
  for (uint32_t Run = 0; Run < Runs; ++Run) {
    auto Ctx = buildPipeline(Spec);
    PhaseResult P = measurePhase(
        [&] { core::AnalysisRunner::registry().run(*Ctx, Solver); });
    M.Seconds += P.Seconds / Runs;
    M.PtsBytes = std::max(M.PtsBytes, P.PtsBytes);
  }
  if (Repr == adt::PtsRepr::Persistent) {
    if (CacheStats)
      *CacheStats = adt::PointsToCache::get().statGroup();
    // All persistent sets died with the pipelines above; drop the interned
    // nodes so the next preset starts from an empty cache.
    adt::PointsToCache::get().clear();
  }
  return M;
}

} // namespace

int main(int Argc, char **Argv) {
  uint32_t Runs = 1;
  std::string JsonPath;
  auto Suite = parseSuiteArgs(Argc, Argv, Runs, &JsonPath);
  if (Suite.empty())
    return 0;

  std::printf("Points-to representation ablation: sbv vs persistent\n"
              "(%u run%s per cell; times are the solver's main phase)\n\n",
              Runs, Runs == 1 ? "" : "s");
  TableWriter T({-14, 6, 9, 9, 8, 10, 10, 8, 7, 10});
  std::printf("%s", T.row({"Bench.", "Solver", "sbv t", "pers t", "time x",
                           "sbv mem", "pers mem", "mem x", "hit%",
                           "uniq sets"})
                        .c_str());
  std::printf("%s", T.separator().c_str());

  const char *Solvers[] = {"sfs", "vsfs"};
  std::vector<double> TimeRatios, MemRatios;
  std::ostringstream Json;
  Json << "{\n  \"schema\": \"" << schemas::BenchPtsCache
       << "\",\n  \"runs\": " << Runs
       << ",\n  \"rows\": [";
  bool FirstJson = true;
  for (const auto &Spec : Suite) {
    for (const char *Solver : Solvers) {
      ReprMeasure Sbv = runOne(Spec, Solver, adt::PtsRepr::SBV, Runs,
                               nullptr);
      StatGroup Cache;
      ReprMeasure Pers = runOne(Spec, Solver, adt::PtsRepr::Persistent, Runs,
                                &Cache);

      double TimeX = Sbv.Seconds / std::max(Pers.Seconds, 1e-9);
      double MemX = double(Sbv.PtsBytes) /
                    double(std::max<uint64_t>(Pers.PtsBytes, 1));
      uint64_t Hits = Cache.lookup("op-cache-hits");
      uint64_t Misses = Cache.lookup("op-cache-misses");
      double HitPct = Hits + Misses
                          ? 100.0 * double(Hits) / double(Hits + Misses)
                          : 0;
      TimeRatios.push_back(TimeX);
      MemRatios.push_back(MemX);

      std::printf(
          "%s", T.row({Spec.Name, Solver, formatDouble(Sbv.Seconds, 3),
                       formatDouble(Pers.Seconds, 3), formatRatio(TimeX),
                       formatBytes(Sbv.PtsBytes), formatBytes(Pers.PtsBytes),
                       formatRatio(MemX), formatDouble(HitPct, 1),
                       std::to_string(Cache.lookup("unique-sets"))})
                    .c_str());

      char Buf[512];
      std::snprintf(
          Buf, sizeof(Buf),
          "%s    {\"name\": \"%s\", \"solver\": \"%s\", "
          "\"sbv_seconds\": %.6f, \"persistent_seconds\": %.6f, "
          "\"sbv_bytes\": %llu, \"persistent_bytes\": %llu, "
          "\"mem_ratio\": %.4f, \"op_hit_rate\": %.4f, "
          "\"unique_sets\": %llu}",
          FirstJson ? "\n" : ",\n", Spec.Name.c_str(), Solver, Sbv.Seconds,
          Pers.Seconds, (unsigned long long)Sbv.PtsBytes,
          (unsigned long long)Pers.PtsBytes, MemX, HitPct / 100.0,
          (unsigned long long)Cache.lookup("unique-sets"));
      Json << Buf;
      FirstJson = false;
    }
  }
  Json << "\n  ]\n}\n";

  std::printf("%s", T.separator().c_str());
  std::printf("%s", T.row({"Average", "", "", "", formatRatio(
                               geometricMean(TimeRatios)),
                           "", "", formatRatio(geometricMean(MemRatios)), "",
                           ""})
                        .c_str());
  std::printf(
      "\n\"mem x\" > 1: the persistent representation stored fewer bytes\n"
      "(each distinct set once) than one bit vector per slot. \"hit%%\" is\n"
      "the share of unions/intersections/tests answered from the memo.\n");

  if (!JsonPath.empty())
    writeJson(JsonPath, Json.str());
  return 0;
}
