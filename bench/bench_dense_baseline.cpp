//===- bench_dense_baseline.cpp - Staging ablation --------------*- C++ -*-===//
///
/// Ablation for §IV-A / the related-work framing: how much does *staging*
/// itself buy before versioning? Compares the classic dense ICFG data-flow
/// analysis (IN/OUT at every program point) against SFS (sparse on the
/// SVFG) and VSFS on a size sweep. Dense analysis cost explodes with
/// program size, which is precisely why SFS is the baseline the paper
/// starts from — and the gap VSFS then widens further.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace vsfs;
using namespace vsfs::bench;

int main() {
  std::printf("Dense (ICFG) vs. staged (SVFG) vs. versioned analyses\n\n");
  TableWriter T({8, 8, 10, 10, 10, 12, 12});
  std::printf("%s", T.row({"Funcs", "Insts", "Dense t", "SFS t", "VSFS t",
                           "Dense sets", "SFS sets"})
                        .c_str());
  std::printf("%s", T.separator().c_str());

  for (uint32_t Funs : {4u, 8u, 16u, 32u}) {
    workload::GenConfig C;
    C.Seed = 900 + Funs;
    C.NumFunctions = Funs;
    C.BlocksPerFunction = 4;
    C.InstsPerBlock = 5;
    C.NumGlobals = 6;
    C.HeapFraction = 0.5;
    workload::BenchSpec Spec;
    Spec.Name = "dense" + std::to_string(Funs);
    Spec.Config = C;

    double DenseT;
    uint64_t DenseSets;
    {
      auto Ctx = buildPipeline(Spec);
      core::IterativeFlowSensitive Dense(Ctx->module(), Ctx->andersen());
      DenseT = measurePhase([&Dense] { Dense.solve(); }).Seconds;
      DenseSets = Dense.numPtsSetsStored();
    }
    double SfsT;
    uint64_t SfsSets;
    {
      auto Ctx = buildPipeline(Spec);
      core::FlowSensitive SFS(Ctx->svfg());
      SfsT = measurePhase([&SFS] { SFS.solve(); }).Seconds;
      SfsSets = SFS.numPtsSetsStored();
    }
    auto Ctx = buildPipeline(Spec);
    core::VersionedFlowSensitive VSFS(Ctx->svfg());
    double VsfsT = measurePhase([&VSFS] { VSFS.solve(); }).Seconds;

    std::printf("%s",
                T.row({std::to_string(Funs),
                       std::to_string(Ctx->module().numInstructions()),
                       formatDouble(DenseT, 3), formatDouble(SfsT, 3),
                       formatDouble(VsfsT, 3), std::to_string(DenseSets),
                       std::to_string(SfsSets)})
                    .c_str());
  }
  std::printf("\nExpected shape: dense IN/OUT storage dwarfs SFS's (it keeps\n"
              "every object at every program point), and its time grows\n"
              "fastest; SFS improves on it via multiple-object sparsity and\n"
              "VSFS via single-object sparsity on top.\n");
  return 0;
}
