//===- bench_versioning_cost.cpp - §V-A's versioning-cost claim -*- C++ -*-===//
///
/// §V-A observes that the versioning pre-analysis "is always cheap": on
/// small programs it can be a large share of VSFS's total time, but its
/// share shrinks as programs grow (for lynx, minutes of versioning against
/// hours of main phase). This bench sweeps program size and reports the
/// versioning fraction of VSFS's total time, which should fall as size
/// grows, while VSFS stays no slower than SFS overall.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace vsfs;
using namespace vsfs::bench;

int main() {
  std::printf("Versioning cost vs. analysis size (§V-A)\n\n");
  TableWriter T({8, 9, 10, 11, 11, 11, 12});
  std::printf("%s", T.row({"Funcs", "Insts", "SFS t", "Version t", "VSFS t",
                           "Total t", "Vers. share"})
                        .c_str());
  std::printf("%s", T.separator().c_str());

  std::vector<double> Shares;
  for (uint32_t Funs : {8u, 16u, 32u, 64u, 96u, 128u}) {
    workload::GenConfig C;
    C.Seed = 500 + Funs;
    C.NumFunctions = Funs;
    C.BlocksPerFunction = 5;
    C.InstsPerBlock = 6;
    C.NumGlobals = 8 + Funs / 8;
    C.HeapFraction = 0.6;
    C.GlobalAccessFraction = 0.5;
    workload::BenchSpec Spec;
    Spec.Name = "sweep" + std::to_string(Funs);
    Spec.Config = C;

    double SfsT;
    {
      auto Ctx = buildPipeline(Spec);
      core::FlowSensitive SFS(Ctx->svfg());
      SfsT = measurePhase([&SFS] { SFS.solve(); }).Seconds;
    }
    auto Ctx = buildPipeline(Spec);
    core::VersionedFlowSensitive VSFS(Ctx->svfg());
    double TotalT = measurePhase([&VSFS] { VSFS.solve(); }).Seconds;
    double VersT = VSFS.versioningSeconds();
    double Share = VersT / std::max(TotalT, 1e-9);
    Shares.push_back(Share);

    std::printf("%s",
                T.row({std::to_string(Funs),
                       std::to_string(Ctx->module().numInstructions()),
                       formatDouble(SfsT, 3), formatDouble(VersT, 3),
                       formatDouble(TotalT - VersT, 3),
                       formatDouble(TotalT, 3),
                       formatDouble(Share * 100, 1) + "%"})
                    .c_str());
  }
  std::printf("\nExpected shape: the versioning share is largest on the\n"
              "smallest programs and decreases (or at least does not grow)\n"
              "as the main phase comes to dominate — mirroring the paper's\n"
              "mrbuy/bake (large share) vs. lynx (<1%% share) observation.\n");
  return 0;
}
