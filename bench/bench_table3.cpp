//===- bench_table3.cpp - Regenerates Table III -----------------*- C++ -*-===//
///
/// Table III of the paper: per benchmark, the time and memory of Andersen's
/// auxiliary analysis, SFS, and VSFS (with VSFS's versioning time listed
/// separately), plus "Time diff." and "Mem. diff." columns (SFS / VSFS) and
/// their geometric means.
///
/// Following the paper's methodology: analysis times cover only the main
/// phase (the auxiliary analysis, memory-SSA and SVFG construction are
/// excluded from SFS/VSFS times; versioning is reported for VSFS and is
/// included in its total). Memory is each analysis's final state footprint
/// (points-to sets plus the index structures holding them — an exact,
/// per-phase analogue of the paper's max-resident-size measurement, which
/// cannot separate phases inside one process; RSS is also printed).
/// Each analysis runs on its own freshly built pipeline — dispatched
/// through the core::AnalysisRunner registry, the same path the CLI driver
/// takes; with --runs N the times are averaged over N runs, and --json F
/// writes the rows machine-readably for trajectory collection.
///
/// Expected shape (paper: 5.31x mean speedup, up to 26.22x; >= 2.11x mean
/// memory reduction, up to 5.46x): VSFS is never slower, the smallest
/// presets benefit least, and the heap-intensive ones benefit most.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "support/Schemas.h"

#include <sstream>

using namespace vsfs;
using namespace vsfs::bench;

namespace {

struct Row {
  std::string Name;
  double AndersenT = 0;
  double SfsT = 0;
  uint64_t SfsMem = 0;
  double VersT = 0;
  double VsfsMainT = 0;
  uint64_t VsfsMem = 0;
  /// Completed, or the first exhaustion hit while producing this row (the
  /// row's numbers are then partial and excluded from the ratio means).
  Termination Status = Termination::Completed;

  double vsfsTotalT() const { return VersT + VsfsMainT; }
  double timeDiff() const { return SfsT / std::max(vsfsTotalT(), 1e-9); }
  double memDiff() const {
    return double(SfsMem) / double(std::max<uint64_t>(VsfsMem, 1));
  }
};

std::string rowsJson(const std::vector<Row> &Rows, uint32_t Runs,
                     const ResourceBudget *Budget) {
  std::ostringstream OS;
  OS << "{\n  \"schema\": \"" << schemas::BenchTable3
     << "\",\n  \"runs\": " << Runs
     << ",\n  \"pts_repr\": \"" << adt::ptsReprName(adt::pointsToRepr())
     << "\",\n  \"benchmarks\": [";
  for (size_t I = 0; I < Rows.size(); ++I) {
    const Row &R = Rows[I];
    char Buf[512];
    if (R.Status == Termination::Completed) {
      std::snprintf(Buf, sizeof(Buf),
                    "%s    {\"name\": \"%s\", \"andersen_seconds\": %.6f, "
                    "\"sfs_seconds\": %.6f, \"sfs_bytes\": %llu, "
                    "\"versioning_seconds\": %.6f, \"vsfs_main_seconds\": "
                    "%.6f, \"vsfs_bytes\": %llu, \"time_diff\": %.4f, "
                    "\"mem_diff\": %.4f, \"termination\": \"completed\"}",
                    I == 0 ? "\n" : ",\n", R.Name.c_str(), R.AndersenT,
                    R.SfsT, (unsigned long long)R.SfsMem, R.VersT,
                    R.VsfsMainT, (unsigned long long)R.VsfsMem, R.timeDiff(),
                    R.memDiff());
    } else {
      // Cancelled rows carry no ratios: their numbers are partial and a
      // diff computed from them would be meaningless.
      std::snprintf(Buf, sizeof(Buf),
                    "%s    {\"name\": \"%s\", \"termination\": \"%s\"}",
                    I == 0 ? "\n" : ",\n", R.Name.c_str(),
                    terminationName(R.Status));
    }
    OS << Buf;
  }
  OS << "\n  ]";
  if (Budget)
    OS << ",\n  \"budget\": " << budgetJsonObject(*Budget);
  if (adt::pointsToRepr() == adt::PtsRepr::Persistent)
    OS << ",\n  \"ptscache\": " << ptsCacheJsonObject();
  OS << "\n}\n";
  return OS.str();
}

} // namespace

int main(int Argc, char **Argv) {
  uint32_t Runs = 1;
  std::string JsonPath;
  ResourceBudget::Limits Limits;
  auto Suite = parseSuiteArgs(Argc, Argv, Runs, &JsonPath, &Limits);
  if (Suite.empty())
    return 0;
  // One budget for the whole table; rows after exhaustion report their
  // termination instead of silently publishing truncated numbers.
  std::unique_ptr<ResourceBudget> Budget;
  if (Limits.TimeBudgetSeconds > 0 || Limits.MemBudgetBytes != 0 ||
      Limits.StepBudget != 0)
    Budget = std::make_unique<ResourceBudget>(Limits);

  std::printf("Table III: analysis time (seconds) and points-to memory\n"
              "(%u run%s per analysis; times are main phase only)\n\n", Runs,
              Runs == 1 ? "" : "s");
  TableWriter T({-14, 9, 9, 10, 9, 9, 9, 10, 11, 10});
  std::printf("%s", T.row({"Bench.", "Andersen", "SFS t", "SFS mem",
                           "Version", "VSFS t", "Total", "VSFS mem",
                           "Time diff", "Mem diff"})
                        .c_str());
  std::printf("%s", T.separator().c_str());

  const core::AnalysisRunner &Runner = core::AnalysisRunner::registry();
  std::vector<Row> Rows;
  std::vector<double> TimeDiffs, MemDiffs;
  for (const auto &Spec : Suite) {
    Row R;
    R.Name = Spec.Name;
    core::SolverOptions SolverOpts;
    SolverOpts.Budget = Budget.get();
    for (uint32_t Run = 0; Run < Runs; ++Run) {
      // Andersen: timed inside the pipeline build. SFS on that pipeline.
      {
        auto Ctx = buildPipeline(Spec, /*ConnectAuxIndirectCalls=*/false,
                                 Budget.get());
        R.AndersenT += Ctx->andersenSeconds() / Runs;
        if (!Ctx->isBuilt()) {
          R.Status = Ctx->buildTermination();
          break;
        }
        auto SFS = Runner.run(*Ctx, "sfs", SolverOpts);
        R.SfsT += SFS.SolveSeconds / Runs;
        R.SfsMem = std::max(R.SfsMem, SFS.Analysis->footprintBytes());
        if (SFS.Status != Termination::Completed) {
          R.Status = SFS.Status;
          break;
        }
      }
      // VSFS on a fresh pipeline (no shared SVFG mutations).
      {
        auto Ctx = buildPipeline(Spec, /*ConnectAuxIndirectCalls=*/false,
                                 Budget.get());
        if (!Ctx->isBuilt()) {
          R.Status = Ctx->buildTermination();
          break;
        }
        auto VSFS = Runner.run(*Ctx, "vsfs", SolverOpts);
        double VersSecs =
            static_cast<const core::VersionedFlowSensitive &>(*VSFS.Analysis)
                .versioningSeconds();
        R.VersT += VersSecs / Runs;
        R.VsfsMainT += (VSFS.SolveSeconds - VersSecs) / Runs;
        R.VsfsMem = std::max(R.VsfsMem, VSFS.Analysis->footprintBytes());
        if (VSFS.Status != Termination::Completed) {
          R.Status = VSFS.Status;
          break;
        }
      }
    }

    if (R.Status == Termination::Completed) {
      TimeDiffs.push_back(R.timeDiff());
      MemDiffs.push_back(R.memDiff());
      std::printf(
          "%s",
          T.row({R.Name, formatDouble(R.AndersenT, 3),
                 formatDouble(R.SfsT, 3), formatBytes(R.SfsMem),
                 formatDouble(R.VersT, 3), formatDouble(R.VsfsMainT, 3),
                 formatDouble(R.vsfsTotalT(), 3), formatBytes(R.VsfsMem),
                 formatRatio(R.timeDiff()), formatRatio(R.memDiff())})
              .c_str());
    } else {
      std::printf("%s", T.row({R.Name,
                               std::string("cancelled (") +
                                   terminationName(R.Status) + ")",
                               "-", "-", "-", "-", "-", "-", "-", "-"})
                            .c_str());
    }
    Rows.push_back(std::move(R));
  }

  std::printf("%s", T.separator().c_str());
  std::printf("%s",
              T.row({"Average", "", "", "", "", "", "", "",
                     formatRatio(geometricMean(TimeDiffs)),
                     formatRatio(geometricMean(MemDiffs))})
                  .c_str());

  std::printf("\nProcess peak RSS: %s\n",
              formatBytes(peakRSSBytes()).c_str());
  std::printf(
      "\nPaper (Table III, real LLVM benchmarks): time diff 1.46x-26.22x,\n"
      "geometric mean 5.31x; memory diff up to 5.46x, mean >= 2.11x.\n"
      "Reproduction targets shape, not absolute values: VSFS never slower,\n"
      "smallest presets benefit least, heap-intensive presets most, and\n"
      "versioning time is a shrinking fraction as programs grow.\n");

  if (!JsonPath.empty())
    writeJson(JsonPath, rowsJson(Rows, Runs, Budget.get()));
  return 0;
}
