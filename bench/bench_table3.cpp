//===- bench_table3.cpp - Regenerates Table III -----------------*- C++ -*-===//
///
/// Table III of the paper: per benchmark, the time and memory of Andersen's
/// auxiliary analysis, SFS, and VSFS (with VSFS's versioning time listed
/// separately), plus "Time diff." and "Mem. diff." columns (SFS / VSFS) and
/// their geometric means.
///
/// Following the paper's methodology: analysis times cover only the main
/// phase (the auxiliary analysis, memory-SSA and SVFG construction are
/// excluded from SFS/VSFS times; versioning is reported for VSFS and is
/// included in its total). Memory is each analysis's final state footprint
/// (points-to sets plus the index structures holding them — an exact,
/// per-phase analogue of the paper's max-resident-size measurement, which
/// cannot separate phases inside one process; RSS is also printed).
/// Each analysis runs on its own freshly built pipeline; with --runs N the
/// times are averaged over N runs.
///
/// Expected shape (paper: 5.31x mean speedup, up to 26.22x; >= 2.11x mean
/// memory reduction, up to 5.46x): VSFS is never slower, the smallest
/// presets benefit least, and the heap-intensive ones benefit most.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace vsfs;
using namespace vsfs::bench;

namespace {

struct Row {
  std::string Name;
  double AndersenT = 0;
  double SfsT = 0;
  uint64_t SfsMem = 0;
  double VersT = 0;
  double VsfsMainT = 0;
  uint64_t VsfsMem = 0;

  double vsfsTotalT() const { return VersT + VsfsMainT; }
  double timeDiff() const { return SfsT / std::max(vsfsTotalT(), 1e-9); }
  double memDiff() const {
    return double(SfsMem) / double(std::max<uint64_t>(VsfsMem, 1));
  }
};

} // namespace

int main(int Argc, char **Argv) {
  uint32_t Runs = 1;
  auto Suite = parseSuiteArgs(Argc, Argv, Runs);
  if (Suite.empty())
    return 0;

  std::printf("Table III: analysis time (seconds) and points-to memory\n"
              "(%u run%s per analysis; times are main phase only)\n\n", Runs,
              Runs == 1 ? "" : "s");
  TableWriter T({-14, 9, 9, 10, 9, 9, 9, 10, 11, 10});
  std::printf("%s", T.row({"Bench.", "Andersen", "SFS t", "SFS mem",
                           "Version", "VSFS t", "Total", "VSFS mem",
                           "Time diff", "Mem diff"})
                        .c_str());
  std::printf("%s", T.separator().c_str());

  std::vector<double> TimeDiffs, MemDiffs;
  for (const auto &Spec : Suite) {
    Row R;
    R.Name = Spec.Name;
    for (uint32_t Run = 0; Run < Runs; ++Run) {
      // Andersen: timed inside the pipeline build.
      {
        auto Ctx = buildPipeline(Spec);
        R.AndersenT += Ctx->andersenSeconds() / Runs;

        // SFS on this pipeline.
        core::FlowSensitive SFS(Ctx->svfg());
        PhaseResult P = measurePhase([&SFS] { SFS.solve(); });
        R.SfsT += P.Seconds / Runs;
        R.SfsMem = std::max(R.SfsMem, SFS.footprintBytes());
      }
      // VSFS on a fresh pipeline (no shared SVFG mutations).
      {
        auto Ctx = buildPipeline(Spec);
        core::VersionedFlowSensitive VSFS(Ctx->svfg());
        PhaseResult P = measurePhase([&VSFS] { VSFS.solve(); });
        R.VersT += VSFS.versioningSeconds() / Runs;
        R.VsfsMainT += (P.Seconds - VSFS.versioningSeconds()) / Runs;
        R.VsfsMem = std::max(R.VsfsMem, VSFS.footprintBytes());
      }
    }

    TimeDiffs.push_back(R.timeDiff());
    MemDiffs.push_back(R.memDiff());
    std::printf(
        "%s",
        T.row({R.Name, formatDouble(R.AndersenT, 3), formatDouble(R.SfsT, 3),
               formatBytes(R.SfsMem), formatDouble(R.VersT, 3),
               formatDouble(R.VsfsMainT, 3), formatDouble(R.vsfsTotalT(), 3),
               formatBytes(R.VsfsMem), formatRatio(R.timeDiff()),
               formatRatio(R.memDiff())})
            .c_str());
  }

  std::printf("%s", T.separator().c_str());
  std::printf("%s",
              T.row({"Average", "", "", "", "", "", "", "",
                     formatRatio(geometricMean(TimeDiffs)),
                     formatRatio(geometricMean(MemDiffs))})
                  .c_str());

  std::printf("\nProcess peak RSS: %s\n",
              formatBytes(peakRSSBytes()).c_str());
  std::printf(
      "\nPaper (Table III, real LLVM benchmarks): time diff 1.46x-26.22x,\n"
      "geometric mean 5.31x; memory diff up to 5.46x, mean >= 2.11x.\n"
      "Reproduction targets shape, not absolute values: VSFS never slower,\n"
      "smallest presets benefit least, heap-intensive presets most, and\n"
      "versioning time is a shrinking fraction as programs grow.\n");
  return 0;
}
