//===- bench_ovs.cpp - Offline variable substitution ablation ---*- C++ -*-===//
///
/// §VI places object versioning in the offline-variable-substitution family
/// ("our analysis is an instance of offline variable substitution [20]").
/// This bench runs the family's original member — HVN-style substitution on
/// the auxiliary Andersen analysis — across the suite: how many variables
/// collapse, and what it does to auxiliary solve time. A compact
/// demonstration that the same collapse-provably-equal-things-before-the-
/// main-phase idea pays off at both stages of the pipeline.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "andersen/OVS.h"
#include "workload/ProgramGenerator.h"

using namespace vsfs;
using namespace vsfs::bench;

int main(int Argc, char **Argv) {
  uint32_t Runs = 1;
  auto Suite = parseSuiteArgs(Argc, Argv, Runs);
  if (Suite.empty())
    return 0;

  std::printf("Offline variable substitution on the auxiliary analysis "
              "(§VI)\n\n");
  TableWriter T({-14, 8, 9, 12, 10, 10, 9});
  std::printf("%s", T.row({"Bench.", "vars", "classes", "collapsible",
                           "plain t", "OVS t", "ratio"})
                        .c_str());
  std::printf("%s", T.separator().c_str());

  std::vector<double> Ratios;
  for (const auto &Spec : Suite) {
    double PlainT = 0, SubstT = 0;
    uint32_t Vars = 0, Classes = 0, Collapsible = 0;
    for (uint32_t Run = 0; Run < Runs; ++Run) {
      {
        auto M = workload::generateProgram(Spec.Config);
        andersen::Andersen A(*M);
        Timer Tm;
        A.solve();
        PlainT += Tm.seconds() / Runs;
        Vars = M->symbols().numVars();
      }
      {
        auto M = workload::generateProgram(Spec.Config);
        andersen::OfflineSubstitution OVS(*M);
        Classes = OVS.numClasses();
        Collapsible = OVS.numCollapsibleVars();
        andersen::Andersen::Options Opts;
        Opts.OfflineSubstitution = true;
        andersen::Andersen A(*M, Opts);
        Timer Tm;
        A.solve(); // Includes the substitution pass itself.
        SubstT += Tm.seconds() / Runs;
      }
    }
    double Ratio = PlainT / std::max(SubstT, 1e-9);
    Ratios.push_back(Ratio);
    std::printf("%s",
                T.row({Spec.Name, std::to_string(Vars),
                       std::to_string(Classes), std::to_string(Collapsible),
                       formatDouble(PlainT, 4), formatDouble(SubstT, 4),
                       formatRatio(Ratio)})
                    .c_str());
  }
  std::printf("%s", T.separator().c_str());
  std::printf("%s", T.row({"Average", "", "", "", "", "",
                           formatRatio(geometricMean(Ratios))})
                        .c_str());
  std::printf("\nPrecision is unchanged (tests/ovs_test.cpp asserts exact\n"
              "equality); 'collapsible' counts variables sharing a class\n"
              "with at least one other variable.\n");
  return 0;
}
