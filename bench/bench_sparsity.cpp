//===- bench_sparsity.cpp - Figure 2's counts, suite-wide -------*- C++ -*-===//
///
/// §III / Figure 2b quantify VSFS's single-object sparsity on one SVFG
/// fragment: fewer points-to sets stored (6 -> 3) and fewer propagation
/// constraints (6 -> 2). This bench measures the same two quantities across
/// the whole suite:
///
///  - sets stored: SFS's IN/OUT entries vs. VSFS's non-empty version sets;
///  - propagation work: SFS's performed propagations vs. VSFS's performed
///    propagations, plus the SVFG edges whose propagation VSFS avoided
///    entirely because both endpoints share a version.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace vsfs;
using namespace vsfs::bench;

int main(int Argc, char **Argv) {
  uint32_t Runs = 1;
  auto Suite = parseSuiteArgs(Argc, Argv, Runs);
  if (Suite.empty())
    return 0;

  std::printf("Single-object sparsity across the suite (Figure 2's counts,\n"
              "measured on whole programs)\n\n");
  TableWriter T({-14, 11, 11, 9, 13, 13, 10, 9});
  std::printf("%s",
              T.row({"Bench.", "SFS sets", "VSFS sets", "Set red.",
                     "SFS props", "VSFS props", "Avoided", "Prop red."})
                  .c_str());
  std::printf("%s", T.separator().c_str());

  std::vector<double> SetReductions, PropReductions;
  for (const auto &Spec : Suite) {
    uint64_t SfsSets, SfsProps;
    {
      auto Ctx = buildPipeline(Spec);
      core::FlowSensitive SFS(Ctx->svfg());
      SFS.solve();
      SfsSets = SFS.numPtsSetsStored();
      SfsProps = SFS.stats().lookup("propagations");
    }
    auto Ctx = buildPipeline(Spec);
    core::VersionedFlowSensitive VSFS(Ctx->svfg());
    VSFS.solve();
    uint64_t VsfsSets = VSFS.numPtsSetsStored();
    uint64_t VsfsProps = VSFS.stats().lookup("propagations");
    uint64_t Avoided = VSFS.stats().lookup("propagations-avoided");

    double SetRed = double(SfsSets) / double(std::max<uint64_t>(1, VsfsSets));
    double PropRed =
        double(SfsProps) / double(std::max<uint64_t>(1, VsfsProps));
    SetReductions.push_back(SetRed);
    PropReductions.push_back(PropRed);

    std::printf("%s", T.row({Spec.Name, std::to_string(SfsSets),
                             std::to_string(VsfsSets), formatRatio(SetRed),
                             std::to_string(SfsProps),
                             std::to_string(VsfsProps),
                             std::to_string(Avoided), formatRatio(PropRed)})
                          .c_str());
  }
  std::printf("%s", T.separator().c_str());
  std::printf("%s", T.row({"Average", "", "",
                           formatRatio(geometricMean(SetReductions)), "", "",
                           "", formatRatio(geometricMean(PropReductions))})
                        .c_str());
  std::printf("\nFigure 2b reports 6 -> 3 sets and 6 -> 2 propagation\n"
              "constraints on its fragment; at whole-program scale both\n"
              "reductions should comfortably exceed 1x on every preset.\n");
  return 0;
}
