//===- bench_coalesce.cpp - SVFG coalescing ablation ------------*- C++ -*-===//
///
/// Transfer-equivalence coalescing on vs off (docs/COALESCING.md): per
/// preset, how much of the SVFG the pre-solve pass removes (live nodes and
/// edges before/after) and what that buys the flow-sensitive solvers (sfs
/// and vsfs solve time, coalesced pipeline vs stock). Every cell runs on a
/// fresh pipeline; the "Same" column re-verifies bit-identical answers on
/// the spot — all top-level points-to sets plus the memory view at every
/// load site (the \c ptsOfObjAt observation points) must match between the
/// coalesced and stock runs, independently of the fuzz tier's deeper
/// differential coverage.
///
/// Run without --bench/--quick it measures the three tracked presets
/// (astyle, mutt, bash — EXPERIMENTS.md) and exits non-zero unless (a)
/// every row verified bit-identical and (b) at least two of the three show
/// a ≥10% combined node+edge reduction — the structural bar the pass is
/// expected to clear (solve-time wins are reported, not gated: wall-clock
/// is machine-dependent).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "support/Schemas.h"

#include <sstream>

using namespace vsfs;
using namespace vsfs::bench;

namespace {

struct SolveCell {
  double Seconds = 0;
  std::unique_ptr<core::AnalysisContext> Ctx; ///< Last run's pipeline.
  core::AnalysisRunner::RunResult Result;     ///< Last run's solver.
};

/// Solves \p Solver on a fresh pipeline \p Runs times (averaging the solve
/// wall time) and keeps the last pipeline + result for verification.
SolveCell runSolver(const workload::BenchSpec &Spec, const char *Solver,
                    bool Coalesce, uint32_t Runs) {
  SolveCell Cell;
  for (uint32_t Run = 0; Run < Runs; ++Run) {
    auto Ctx = buildPipeline(Spec);
    if (Coalesce)
      Ctx->coalesce();
    Timer T;
    auto R = core::AnalysisRunner::registry().run(*Ctx, Solver);
    Cell.Seconds += T.seconds() / Runs;
    Cell.Ctx = std::move(Ctx);
    Cell.Result = std::move(R);
  }
  return Cell;
}

/// Bit-identical at every observation point: all top-level variable sets,
/// and the memory view of every may-pointee at every load site.
bool sameAnswers(const core::AnalysisContext &Ctx,
                 const core::PointerAnalysisResult &A,
                 const core::PointerAnalysisResult &B) {
  const ir::Module &M = Ctx.module();
  for (ir::VarID V = 0; V < M.symbols().numVars(); ++V)
    if (!(A.ptsOfVar(V) == B.ptsOfVar(V)))
      return false;
  for (ir::InstID I = 0; I < M.numInstructions(); ++I) {
    if (M.inst(I).Kind != ir::InstKind::Load)
      continue;
    for (uint32_t O : A.ptsOfVar(M.inst(I).loadPtr()))
      if (!(A.ptsOfObjAt(I, O) == B.ptsOfObjAt(I, O)))
        return false;
  }
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  uint32_t Runs = 1;
  std::string JsonPath;
  auto Suite = parseSuiteArgs(Argc, Argv, Runs, &JsonPath);
  if (Suite.empty())
    return 0;
  // Default to the three tracked presets; --bench / --quick select
  // explicitly (then only the bit-identical check gates the exit code).
  bool TrackedTrio = Suite.size() == workload::benchmarkSuite().size();
  if (TrackedTrio) {
    Suite.clear();
    for (const char *Name : {"astyle", "mutt", "bash"}) {
      workload::BenchSpec S;
      if (workload::findBenchmark(Name, S))
        Suite.push_back(S);
    }
  }

  std::printf("SVFG coalescing ablation: --coalesce=on vs off\n"
              "(%u run%s per cell; node/edge counts are the live coalesced "
              "view)\n\n",
              Runs, Runs == 1 ? "" : "s");
  TableWriter T({-14, 9, 9, 9, 9, 7, 9, 9, 9, 9, 6});
  std::printf("%s", T.row({"Bench.", "Nodes", "N'", "Edges", "E'", "Red%",
                           "sfs t", "sfs t'", "vsfs t", "vsfs t'", "Same"})
                        .c_str());
  std::printf("%s", T.separator().c_str());

  std::ostringstream Json;
  Json << "{\n  \"schema\": \"" << schemas::BenchCoalesce
       << "\",\n  \"runs\": " << Runs << ",\n  \"pts_repr\": \""
       << adt::ptsReprName(adt::pointsToRepr()) << "\",\n  \"rows\": [";
  bool FirstJson = true;
  bool AllSame = true;
  uint32_t ClearedBar = 0;
  uint32_t TimeWins = 0;
  for (const auto &Spec : Suite) {
    SolveCell SfsOff = runSolver(Spec, "sfs", false, Runs);
    SolveCell SfsOn = runSolver(Spec, "sfs", true, Runs);
    SolveCell VsfsOff = runSolver(Spec, "vsfs", false, Runs);
    SolveCell VsfsOn = runSolver(Spec, "vsfs", true, Runs);

    const svfg::SVFG &Off = SfsOff.Ctx->svfg();
    const svfg::SVFG &On = SfsOn.Ctx->svfg();
    const svfg::CoalesceMap &CM = *SfsOn.Ctx->coalesceMap();
    uint64_t NodesBefore = Off.numNodes();
    uint64_t NodesAfter = NodesBefore - CM.CoalescedNodes;
    uint64_t EdgesBefore = Off.numDirectEdges() + Off.numIndirectEdges();
    uint64_t EdgesAfter = On.numDirectEdges() + On.numIndirectEdges();
    double Reduction =
        100.0 * (1.0 - double(NodesAfter + EdgesAfter) /
                           double(std::max<uint64_t>(
                               NodesBefore + EdgesBefore, 1)));
    bool Same =
        sameAnswers(*SfsOff.Ctx, *SfsOff.Result.Analysis,
                    *SfsOn.Result.Analysis) &&
        sameAnswers(*VsfsOff.Ctx, *VsfsOff.Result.Analysis,
                    *VsfsOn.Result.Analysis);
    AllSame = AllSame && Same;
    if (Reduction >= 10.0)
      ++ClearedBar;
    if (SfsOn.Seconds < SfsOff.Seconds || VsfsOn.Seconds < VsfsOff.Seconds)
      ++TimeWins;

    std::printf(
        "%s", T.row({Spec.Name, std::to_string(NodesBefore),
                     std::to_string(NodesAfter), std::to_string(EdgesBefore),
                     std::to_string(EdgesAfter), formatDouble(Reduction, 1),
                     formatDouble(SfsOff.Seconds, 3),
                     formatDouble(SfsOn.Seconds, 3),
                     formatDouble(VsfsOff.Seconds, 3),
                     formatDouble(VsfsOn.Seconds, 3), Same ? "yes" : "NO"})
                  .c_str());

    char Buf[512];
    std::snprintf(
        Buf, sizeof(Buf),
        "%s    {\"name\": \"%s\", \"nodes\": %llu, \"nodes_coalesced\": "
        "%llu, \"edges\": %llu, \"edges_coalesced\": %llu, "
        "\"reduction_pct\": %.2f, \"classes\": %u, \"refine_iterations\": "
        "%llu, \"sfs_seconds\": %.6f, \"sfs_coalesced_seconds\": %.6f, "
        "\"vsfs_seconds\": %.6f, \"vsfs_coalesced_seconds\": %.6f, "
        "\"identical\": %s}",
        FirstJson ? "\n" : ",\n", Spec.Name.c_str(),
        (unsigned long long)NodesBefore, (unsigned long long)NodesAfter,
        (unsigned long long)EdgesBefore, (unsigned long long)EdgesAfter,
        Reduction, CM.numClasses(),
        (unsigned long long)CM.RefineIterations, SfsOff.Seconds,
        SfsOn.Seconds, VsfsOff.Seconds, VsfsOn.Seconds,
        Same ? "true" : "false");
    Json << Buf;
    FirstJson = false;
  }
  Json << "\n  ]\n}\n";

  std::printf("%s", T.separator().c_str());
  std::printf("\nExpected shape: answers bit-identical everywhere%s; on the "
              "tracked trio a\n>=10%% node+edge reduction (%u/%zu rows) and "
              "a solve-time win (%u/%zu rows).\n",
              AllSame ? " (holds)" : " (VIOLATED)", ClearedBar, Suite.size(),
              TimeWins, Suite.size());

  if (!JsonPath.empty())
    writeJson(JsonPath, Json.str());
  if (!AllSame)
    return 1;
  if (TrackedTrio && ClearedBar < 2)
    return 1;
  return 0;
}
