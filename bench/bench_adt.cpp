//===- bench_adt.cpp - SparseBitVector micro-benchmarks ---------*- C++ -*-===//
///
/// Design-choice ablation (google-benchmark): the sparse bit vector is the
/// points-to set *and* the meld-label representation (§V-B notes the data
/// structure choice matters and that LLVM's SparseBitVector was used
/// off-the-shelf). These microbenches measure the operations the analyses
/// lean on: set/test, union (points-to propagation and melding), the
/// difference used by strong updates, iteration, and the hashing that backs
/// version interning.
///
//===----------------------------------------------------------------------===//

#include "adt/SparseBitVector.h"

#include <benchmark/benchmark.h>

#include <random>

using vsfs::adt::SparseBitVector;

namespace {

/// A set of \p N elements drawn from [0, Universe): density varies with
/// the benchmark argument, like small vs. large points-to sets.
SparseBitVector randomSet(std::mt19937 &Rng, uint32_t N, uint32_t Universe) {
  SparseBitVector S;
  for (uint32_t I = 0; I < N; ++I)
    S.set(Rng() % Universe);
  return S;
}

void BM_Set(benchmark::State &State) {
  std::mt19937 Rng(7);
  const uint32_t Universe = static_cast<uint32_t>(State.range(0));
  std::vector<uint32_t> Values(1024);
  for (auto &V : Values)
    V = Rng() % Universe;
  for (auto _ : State) {
    SparseBitVector S;
    for (uint32_t V : Values)
      benchmark::DoNotOptimize(S.set(V));
  }
  State.SetItemsProcessed(State.iterations() * Values.size());
}
BENCHMARK(BM_Set)->Arg(256)->Arg(4096)->Arg(1 << 20);

void BM_Test(benchmark::State &State) {
  std::mt19937 Rng(11);
  const uint32_t Universe = static_cast<uint32_t>(State.range(0));
  SparseBitVector S = randomSet(Rng, 512, Universe);
  std::vector<uint32_t> Probes(1024);
  for (auto &V : Probes)
    V = Rng() % Universe;
  for (auto _ : State)
    for (uint32_t V : Probes)
      benchmark::DoNotOptimize(S.test(V));
  State.SetItemsProcessed(State.iterations() * Probes.size());
}
BENCHMARK(BM_Test)->Arg(4096)->Arg(1 << 20);

void BM_UnionDisjoint(benchmark::State &State) {
  std::mt19937 Rng(13);
  const uint32_t N = static_cast<uint32_t>(State.range(0));
  SparseBitVector A = randomSet(Rng, N, 1 << 20);
  SparseBitVector B = randomSet(Rng, N, 1 << 20);
  for (auto _ : State) {
    SparseBitVector C = A;
    benchmark::DoNotOptimize(C.unionWith(B));
  }
}
BENCHMARK(BM_UnionDisjoint)->Arg(16)->Arg(256)->Arg(4096);

void BM_UnionSubset(benchmark::State &State) {
  // The steady-state fixpoint case: the union changes nothing.
  std::mt19937 Rng(17);
  const uint32_t N = static_cast<uint32_t>(State.range(0));
  SparseBitVector A = randomSet(Rng, N, 1 << 20);
  SparseBitVector B = A;
  for (auto _ : State)
    benchmark::DoNotOptimize(A.unionWith(B));
}
BENCHMARK(BM_UnionSubset)->Arg(256)->Arg(4096);

void BM_IntersectWithComplement(benchmark::State &State) {
  // Strong updates: IN - KILL.
  std::mt19937 Rng(19);
  const uint32_t N = static_cast<uint32_t>(State.range(0));
  SparseBitVector A = randomSet(Rng, N, 1 << 16);
  SparseBitVector Kill = randomSet(Rng, N / 4, 1 << 16);
  for (auto _ : State) {
    SparseBitVector C = A;
    benchmark::DoNotOptimize(C.intersectWithComplement(Kill));
  }
}
BENCHMARK(BM_IntersectWithComplement)->Arg(256)->Arg(4096);

void BM_Iterate(benchmark::State &State) {
  std::mt19937 Rng(23);
  SparseBitVector S =
      randomSet(Rng, static_cast<uint32_t>(State.range(0)), 1 << 20);
  for (auto _ : State) {
    uint64_t Sum = 0;
    for (uint32_t V : S)
      Sum += V;
    benchmark::DoNotOptimize(Sum);
  }
}
BENCHMARK(BM_Iterate)->Arg(64)->Arg(1024)->Arg(16384);

void BM_HashForInterning(benchmark::State &State) {
  // Version interning hashes one label per (node, object) position.
  std::mt19937 Rng(29);
  SparseBitVector S =
      randomSet(Rng, static_cast<uint32_t>(State.range(0)), 1 << 16);
  for (auto _ : State)
    benchmark::DoNotOptimize(S.hash());
}
BENCHMARK(BM_HashForInterning)->Arg(16)->Arg(256)->Arg(4096);

void BM_MeldLabelChain(benchmark::State &State) {
  // Melding along a def-use chain: repeated unions of mostly-overlapping
  // prelabel sets (object-local dense prelabel numbering keeps them tight).
  const uint32_t Chain = static_cast<uint32_t>(State.range(0));
  for (auto _ : State) {
    SparseBitVector Acc;
    for (uint32_t I = 0; I < Chain; ++I) {
      SparseBitVector Pre;
      Pre.set(I);
      benchmark::DoNotOptimize(Acc.unionWith(Pre));
    }
  }
  State.SetItemsProcessed(State.iterations() * Chain);
}
BENCHMARK(BM_MeldLabelChain)->Arg(64)->Arg(1024);

} // namespace

BENCHMARK_MAIN();
