//===- BenchUtil.h - Shared benchmark-harness helpers -----------*- C++ -*-===//
///
/// \file
/// Common plumbing for the table-regenerating benchmark binaries: building
/// a fresh pipeline for a preset, timing one analysis phase, and measuring
/// the points-to storage it allocates.
///
//===----------------------------------------------------------------------===//

#ifndef VSFS_BENCH_BENCHUTIL_H
#define VSFS_BENCH_BENCHUTIL_H

#include "adt/PointsToCache.h"
#include "core/AnalysisContext.h"
#include "core/AnalysisRunner.h"
#include "core/FlowSensitive.h"
#include "core/IterativeFlowSensitive.h"
#include "core/VersionedFlowSensitive.h"
#include "support/Budget.h"
#include "support/Format.h"
#include "support/MemUsage.h"
#include "support/Timer.h"
#include "workload/BenchmarkSuite.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

namespace vsfs {
namespace bench {

/// Process-wide coalescing toggle for the bench harness, set by
/// parseSuiteArgs from --coalesce=on and applied by buildPipeline — the
/// same pattern as adt::setPointsToRepr, so every bench exposes the flag
/// without per-binary plumbing.
inline bool &coalesceEnabled() {
  static bool On = false;
  return On;
}

/// Builds the full pipeline for a preset (fresh module each call so repeat
/// runs and different analyses never share mutable state). \p Budget, when
/// non-null, governs construction; check Ctx->isBuilt() before touching the
/// SVFG in that case. Applies \c coalesceEnabled() after a successful
/// build.
inline std::unique_ptr<core::AnalysisContext>
buildPipeline(const workload::BenchSpec &Spec,
              bool ConnectAuxIndirectCalls = false,
              ResourceBudget *Budget = nullptr) {
  auto Module = workload::generateProgram(Spec.Config);
  auto Ctx = std::make_unique<core::AnalysisContext>();
  Ctx->module() = std::move(*Module);
  if (Ctx->build(ConnectAuxIndirectCalls, {}, Budget) && coalesceEnabled())
    Ctx->coalesce();
  return Ctx;
}

/// Result of timing one analysis phase.
struct PhaseResult {
  double Seconds = 0;
  /// Peak growth of live points-to storage during the phase (bytes).
  uint64_t PtsBytes = 0;
};

/// Times \p Phase and measures the points-to storage it allocates on top of
/// what was live when it started (the pre-analyses' sets are excluded, so
/// SFS and VSFS main phases are compared on their own storage).
template <typename PhaseFn> PhaseResult measurePhase(PhaseFn Phase) {
  PhaseResult R;
  uint64_t LiveBefore = PointsToBytes::live();
  PointsToBytes::resetPeak();
  Timer T;
  Phase();
  R.Seconds = T.seconds();
  uint64_t Peak = PointsToBytes::peak();
  R.PtsBytes = Peak > LiveBefore ? Peak - LiveBefore : 0;
  return R;
}

/// Parses the common flags: --quick (8-benchmark tier), --runs N,
/// --bench NAME (single benchmark), --pts-repr=REPR (points-to set
/// representation, applied process-wide), --coalesce=off|on (pre-solve
/// SVFG coalescing, applied process-wide), budget limits (--time-budget,
/// --mem-budget, --step-budget; collected into \p Limits when non-null),
/// and — when \p JsonPath is non-null — --json FILE (machine-readable
/// results alongside the table). Returns the selected suite.
inline std::vector<workload::BenchSpec>
parseSuiteArgs(int Argc, char **Argv, uint32_t &Runs,
               std::string *JsonPath = nullptr,
               ResourceBudget::Limits *Limits = nullptr) {
  std::vector<workload::BenchSpec> Suite = workload::benchmarkSuite();
  Runs = 1;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--quick") {
      Suite = workload::quickSuite();
    } else if (Arg == "--runs" && I + 1 < Argc) {
      Runs = static_cast<uint32_t>(std::atoi(Argv[++I]));
      if (Runs == 0)
        Runs = 1;
    } else if (Arg == "--bench" && I + 1 < Argc) {
      workload::BenchSpec S;
      if (workload::findBenchmark(Argv[++I], S)) {
        Suite = {S};
      } else {
        std::fprintf(stderr, "unknown benchmark '%s'\n", Argv[I]);
        Suite.clear();
      }
    } else if (Arg.rfind("--pts-repr=", 0) == 0) {
      adt::PtsRepr Repr;
      if (!adt::parsePtsRepr(Arg.c_str() + std::strlen("--pts-repr="),
                             Repr)) {
        std::fprintf(stderr, "bad --pts-repr '%s' (want sbv | persistent)\n",
                     Arg.c_str());
        Suite.clear();
        return Suite;
      }
      adt::setPointsToRepr(Repr);
    } else if (Arg.rfind("--coalesce=", 0) == 0) {
      std::string V = Arg.substr(std::strlen("--coalesce="));
      if (V == "on") {
        coalesceEnabled() = true;
      } else if (V == "off") {
        coalesceEnabled() = false;
      } else {
        std::fprintf(stderr, "bad --coalesce '%s' (want off | on)\n",
                     Arg.c_str());
        Suite.clear();
        return Suite;
      }
    } else if (Limits && Arg.rfind("--time-budget=", 0) == 0) {
      Limits->TimeBudgetSeconds =
          std::atof(Arg.c_str() + std::strlen("--time-budget="));
    } else if (Limits && Arg.rfind("--mem-budget=", 0) == 0) {
      Limits->MemBudgetBytes =
          std::strtoull(Arg.c_str() + std::strlen("--mem-budget="), nullptr,
                        10);
    } else if (Limits && Arg.rfind("--step-budget=", 0) == 0) {
      Limits->StepBudget = std::strtoull(
          Arg.c_str() + std::strlen("--step-budget="), nullptr, 10);
    } else if (JsonPath && Arg == "--json" && I + 1 < Argc) {
      *JsonPath = Argv[++I];
    } else if (Arg == "--help") {
      std::printf("usage: %s [--quick] [--runs N] [--bench NAME] "
                  "[--pts-repr=sbv|persistent] [--coalesce=off|on]%s%s\n",
                  Argv[0], JsonPath ? " [--json FILE]" : "",
                  Limits ? " [--time-budget=S] [--mem-budget=B] "
                           "[--step-budget=N]"
                         : "");
      Suite.clear();
    }
  }
  return Suite;
}

/// The interning cache's counters as one inline JSON object, for the table
/// benches' --json output. Meaningful under --pts-repr=persistent; in sbv
/// mode the counters are simply zero/empty.
inline std::string ptsCacheJsonObject() {
  std::ostringstream OS;
  OS << '{';
  bool First = true;
  for (const auto &[Key, Value] : adt::PointsToCache::get().statGroup()) {
    OS << (First ? "" : ", ") << '"' << Key << "\": " << Value;
    First = false;
  }
  OS << '}';
  return OS.str();
}

/// A ResourceBudget's statGroup() as one inline JSON object, for the table
/// benches' --json output ("budget" key, mirroring --stats-json's group).
inline std::string budgetJsonObject(const ResourceBudget &B) {
  std::ostringstream OS;
  OS << '{';
  bool First = true;
  for (const auto &[Key, Value] : B.statGroup()) {
    OS << (First ? "" : ", ") << '"' << Key << "\": " << Value;
    First = false;
  }
  OS << '}';
  return OS.str();
}

/// Writes \p Json to \p Path ("-" = stdout) and reports it.
inline void writeJson(const std::string &Path, const std::string &Json) {
  if (Path == "-") {
    std::fputs(Json.c_str(), stdout);
    return;
  }
  std::ofstream Out(Path);
  Out << Json;
  std::printf("\nwrote %s (%zu bytes)\n", Path.c_str(), Json.size());
}

} // namespace bench
} // namespace vsfs

#endif // VSFS_BENCH_BENCHUTIL_H
