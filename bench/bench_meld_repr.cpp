//===- bench_meld_repr.cpp - §V-B's representation ablation -----*- C++ -*-===//
///
/// §V-B: "overhead could perhaps be further reduced by designing a data
/// structure specifically catered to versioning rather than using one
/// off-the-shelf (LLVM's SparseBitVector) which perhaps may use a
/// completely different meld operator." This bench runs that experiment:
/// the versioning pre-analysis with plain sparse-bit-vector labels versus
/// hash-consed label IDs with a memoised meld table, on every preset.
///
/// Both representations produce identical versions (asserted via the
/// version count and the solved points-to results in tests); what differs
/// is pre-analysis time.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "core/ObjectVersioning.h"

using namespace vsfs;
using namespace vsfs::bench;

int main(int Argc, char **Argv) {
  uint32_t Runs = 1;
  auto Suite = parseSuiteArgs(Argc, Argv, Runs);
  if (Suite.empty())
    return 0;

  std::printf("Meld-label representation ablation (§V-B)\n\n");
  TableWriter T({-14, 12, 12, 9, 12, 12, 12});
  std::printf("%s", T.row({"Bench.", "bits t", "interned t", "ratio",
                           "versions", "memo hits", "memo misses"})
                        .c_str());
  std::printf("%s", T.separator().c_str());

  for (const auto &Spec : Suite) {
    double BitsT = 0, InternedT = 0;
    uint64_t VersionsBits = 0, VersionsInterned = 0;
    uint64_t MemoHits = 0, MemoMisses = 0;
    for (uint32_t Run = 0; Run < Runs; ++Run) {
      {
        auto Ctx = buildPipeline(Spec);
        core::ObjectVersioning OV(Ctx->svfg(), /*OnTheFlyCallGraph=*/true,
                                  core::MeldRep::SparseBits);
        OV.run();
        BitsT += OV.seconds() / Runs;
        VersionsBits = OV.numVersions();
      }
      {
        auto Ctx = buildPipeline(Spec);
        core::ObjectVersioning OV(Ctx->svfg(), /*OnTheFlyCallGraph=*/true,
                                  core::MeldRep::Interned);
        OV.run();
        InternedT += OV.seconds() / Runs;
        VersionsInterned = OV.numVersions();
        MemoHits = OV.stats().lookup("memo-hits");
        MemoMisses = OV.stats().lookup("memo-misses");
      }
    }
    if (VersionsBits != VersionsInterned) {
      std::fprintf(stderr, "BUG: representations disagree on %s\n",
                   Spec.Name.c_str());
      return 1;
    }
    std::printf("%s", T.row({Spec.Name, formatDouble(BitsT, 3),
                             formatDouble(InternedT, 3),
                             formatRatio(BitsT / std::max(InternedT, 1e-9)),
                             std::to_string(VersionsBits),
                             std::to_string(MemoHits),
                             std::to_string(MemoMisses)})
                          .c_str());
  }
  std::printf("\nratio > 1x means the interned representation is faster.\n"
              "Memo hits count melds answered without touching a bit "
              "vector.\n");
  return 0;
}
