//===- bench_service.cpp - Analysis service latency ablation ----*- C++ -*-===//
///
/// The three latency classes a `vsfs-served` client can observe
/// (docs/SERVICE.md), measured through real sockets against in-process
/// servers: a cold request (cache miss, full analysis on a worker), a warm
/// hit (the same request again, answered from the result cache — timed N
/// times, minimum reported), and a shed (a server with queue capacity 0
/// refuses at accept with a retry-after hint, never reading the request).
///
/// Two correctness gates decide the exit code on every row: the warm hit
/// must be at least 10x faster than the cold solve (the cache has to pay
/// for itself), and the hit's stats/findings documents must be
/// byte-identical to the miss that populated the cache. Shed latency is
/// reported, never gated — it only demonstrates that overload costs
/// microseconds, not an analysis.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "ir/Printer.h"
#include "service/Client.h"
#include "service/Server.h"
#include "support/Schemas.h"

#include <sstream>
#include <unistd.h>

using namespace vsfs;
using namespace vsfs::bench;
using namespace vsfs::service;

namespace {

std::string uniqueSocket(const char *Tag) {
  return std::string("/tmp/vsfs-bench-service.") +
         std::to_string(::getpid()) + "." + Tag + ".sock";
}

struct ServiceCell {
  double ColdSeconds = 0;
  double WarmMinSeconds = 0;
  double ShedSeconds = 0;
  size_t StatsBytes = 0;
  size_t FindingsBytes = 0;
  bool ColdOk = false;
  bool WarmAllHits = true;
  bool HitIdentical = false;
  bool ShedOk = false;
};

/// One round trip, timed. Returns false on transport failure.
bool timedRequest(const std::string &Sock, const AnalyzeRequest &Req,
                  Response &Resp, double &Seconds) {
  std::string Error;
  Timer T;
  bool Ok = requestAnalyze(Sock, Req, Resp, Error);
  Seconds = T.seconds();
  if (!Ok)
    std::fprintf(stderr, "transport failure: %s\n", Error.c_str());
  return Ok;
}

ServiceCell runCell(const workload::BenchSpec &Spec, const Server &Work,
                    const Server &Shedder, uint32_t WarmRuns) {
  ServiceCell Cell;
  AnalyzeRequest Req;
  Req.Analysis = "vsfs";
  Req.CheckSpecs = "builtin";
  Req.Deterministic = true;
  Req.WantStats = true;
  Req.WantFindings = true;
  Req.ModuleText = ir::printModule(*workload::generateProgram(Spec.Config));

  Response Miss;
  if (!timedRequest(Work.config().SocketPath, Req, Miss, Cell.ColdSeconds))
    return Cell;
  Cell.ColdOk = Miss.St == Status::Ok && !Miss.Cached;
  Cell.StatsBytes = Miss.StatsJson.size();
  Cell.FindingsBytes = Miss.FindingsJson.size();

  Cell.HitIdentical = true;
  for (uint32_t Run = 0; Run < WarmRuns; ++Run) {
    Response Hit;
    double Seconds = 0;
    if (!timedRequest(Work.config().SocketPath, Req, Hit, Seconds))
      return Cell;
    Cell.WarmAllHits = Cell.WarmAllHits && Hit.Cached;
    Cell.HitIdentical = Cell.HitIdentical &&
                        Hit.StatsJson == Miss.StatsJson &&
                        Hit.FindingsJson == Miss.FindingsJson;
    if (Run == 0 || Seconds < Cell.WarmMinSeconds)
      Cell.WarmMinSeconds = Seconds;
  }

  Response Shed;
  if (!timedRequest(Shedder.config().SocketPath, Req, Shed,
                    Cell.ShedSeconds))
    return Cell;
  Cell.ShedOk = Shed.St == Status::Shed && Shed.RetryAfterMs > 0;
  return Cell;
}

} // namespace

int main(int Argc, char **Argv) {
  uint32_t Runs = 1;
  std::string JsonPath;
  auto Suite = parseSuiteArgs(Argc, Argv, Runs, &JsonPath);
  if (Suite.empty())
    return 0;
  // Default to the three tracked presets (EXPERIMENTS.md); --bench /
  // --quick select explicitly. The gates apply either way.
  if (Suite.size() == workload::benchmarkSuite().size()) {
    Suite.clear();
    for (const char *Name : {"astyle", "mutt", "bash"}) {
      workload::BenchSpec S;
      if (workload::findBenchmark(Name, S))
        Suite.push_back(S);
    }
  }
  const uint32_t WarmRuns = Runs * 8;

  // One working server and one permanently-overloaded one, shared by every
  // row. The cache is big enough that no preset evicts another, so each
  // row's warm hits follow its own miss.
  Server Work([] {
    Server::Config C;
    C.SocketPath = uniqueSocket("work");
    C.Workers = 2;
    return C;
  }());
  Server Shedder([] {
    Server::Config C;
    C.SocketPath = uniqueSocket("shed");
    C.Workers = 1;
    C.QueueCap = 0; // every accept sheds
    return C;
  }());
  std::string Error;
  if (!Work.start(Error) || !Shedder.start(Error)) {
    std::fprintf(stderr, "server start failed: %s\n", Error.c_str());
    return 1;
  }

  std::printf("Analysis service latency: cold solve vs warm cache hit vs "
              "shed\n(in-process servers, real unix sockets; warm = min of "
              "%u hits; gates: warm*10 <= cold,\nhit documents byte-"
              "identical to the miss)\n\n",
              WarmRuns);
  TableWriter T({-14, 9, 9, 9, 9, 7, 6});
  std::printf("%s", T.row({"Bench.", "cold t", "warm t", "shed t", "Speedup",
                           "Bytes", "Same"})
                        .c_str());
  std::printf("%s", T.separator().c_str());

  std::ostringstream Json;
  Json << "{\n  \"schema\": \"" << schemas::BenchService
       << "\",\n  \"warm_runs\": " << WarmRuns << ",\n  \"rows\": [";
  bool FirstJson = true;
  bool AllGatesHold = true;
  for (const auto &Spec : Suite) {
    ServiceCell Cell = runCell(Spec, Work, Shedder, WarmRuns);
    double Speedup = Cell.WarmMinSeconds > 0
                         ? Cell.ColdSeconds / Cell.WarmMinSeconds
                         : 0;
    bool Gates = Cell.ColdOk && Cell.WarmAllHits && Cell.HitIdentical &&
                 Cell.ShedOk && Speedup >= 10.0;
    AllGatesHold = AllGatesHold && Gates;

    std::printf("%s",
                T.row({Spec.Name, formatDouble(Cell.ColdSeconds, 3),
                       formatDouble(Cell.WarmMinSeconds, 6),
                       formatDouble(Cell.ShedSeconds, 6),
                       formatDouble(Speedup, 1),
                       formatBytes(Cell.StatsBytes + Cell.FindingsBytes),
                       Gates ? "yes" : "NO"})
                    .c_str());

    char Buf[512];
    std::snprintf(
        Buf, sizeof(Buf),
        "%s    {\"name\": \"%s\", \"cold_seconds\": %.6f, "
        "\"warm_min_seconds\": %.6f, \"shed_seconds\": %.6f, "
        "\"speedup\": %.1f, \"stats_bytes\": %zu, \"findings_bytes\": %zu, "
        "\"cold_ok\": %s, \"warm_all_hits\": %s, \"hit_identical\": %s, "
        "\"shed_ok\": %s}",
        FirstJson ? "\n" : ",\n", Spec.Name.c_str(), Cell.ColdSeconds,
        Cell.WarmMinSeconds, Cell.ShedSeconds, Speedup, Cell.StatsBytes,
        Cell.FindingsBytes, Cell.ColdOk ? "true" : "false",
        Cell.WarmAllHits ? "true" : "false",
        Cell.HitIdentical ? "true" : "false", Cell.ShedOk ? "true" : "false");
    Json << Buf;
    FirstJson = false;
  }
  Json << "\n  ]\n}\n";
  Work.stop();
  Shedder.stop();

  std::printf("%s", T.separator().c_str());
  std::printf("\nExpected shape: every warm hit >= 10x below its cold solve "
              "and byte-identical to\nthe miss; shed responses cost "
              "microseconds — all rows%s.\n",
              AllGatesHold ? " (holds)" : " (VIOLATED)");

  if (!JsonPath.empty())
    writeJson(JsonPath, Json.str());
  return AllGatesHold ? 0 : 1;
}
