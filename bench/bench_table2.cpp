//===- bench_table2.cpp - Regenerates Table II ------------------*- C++ -*-===//
///
/// Table II of the paper lists, per benchmark: lines of code, bitcode size,
/// SVFG nodes, direct and indirect edge counts, and the number of top-level
/// and address-taken variables.
///
/// Our benchmarks are synthetic (DESIGN.md), so "LOC" is the instruction
/// count of the generated partial-SSA module and there is no bitcode size;
/// every SVFG statistic is measured from the same pipeline the analyses
/// run on. The shape to compare against the paper: indirect edges dominate
/// direct edges by 1–2 orders of magnitude, and the counts grow from du to
/// hyriseConsole.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "support/Schemas.h"

#include <sstream>

using namespace vsfs;
using namespace vsfs::bench;

int main(int Argc, char **Argv) {
  uint32_t Runs = 1;
  std::string JsonPath;
  ResourceBudget::Limits Limits;
  auto Suite = parseSuiteArgs(Argc, Argv, Runs, &JsonPath, &Limits);
  if (Suite.empty())
    return 0;
  // One budget across the whole suite: the typical deployment question is
  // "what does this table cost within my limits", not per-preset limits.
  std::unique_ptr<ResourceBudget> Budget;
  if (Limits.TimeBudgetSeconds > 0 || Limits.MemBudgetBytes != 0 ||
      Limits.StepBudget != 0)
    Budget = std::make_unique<ResourceBudget>(Limits);

  std::printf("Table II: benchmark characteristics (synthetic presets; see "
              "DESIGN.md)\n\n");
  TableWriter T({-14, 7, 9, 9, 10, 11, 9, 10, -38});
  std::printf("%s", T.row({"Bench.", "Insts", "Funcs", "# Nodes", "# D.Edges",
                           "# I.Edges", "TopLvl", "AddrTaken", "Description"})
                        .c_str());
  std::printf("%s", T.separator().c_str());

  std::ostringstream Json;
  Json << "{\n  \"schema\": \"" << schemas::BenchTable2
       << "\",\n  \"pts_repr\": \""
       << adt::ptsReprName(adt::pointsToRepr()) << "\",\n  \"benchmarks\": [";
  bool FirstJson = true;
  for (const auto &Spec : Suite) {
    auto Ctx = buildPipeline(Spec, /*ConnectAuxIndirectCalls=*/false,
                             Budget.get());
    const auto &M = Ctx->module();
    if (!Ctx->isBuilt()) {
      // Budget ran out mid-suite: report the row as cancelled and keep
      // going, so the table is an honest partial answer, not an abort.
      std::printf("%s", T.row({Spec.Name, std::to_string(M.numInstructions()),
                               "-", "-", "-", "-", "-", "-",
                               std::string("cancelled (") +
                                   terminationName(Ctx->buildTermination()) +
                                   ")"})
                            .c_str());
      Json << (FirstJson ? "\n" : ",\n") << "    {\"name\": \"" << Spec.Name
           << "\", \"termination\": \""
           << terminationName(Ctx->buildTermination()) << "\"}";
      FirstJson = false;
      continue;
    }
    const auto &G = Ctx->svfg();

    // Address-taken variables = abstract objects that are not functions.
    uint32_t AddrTaken = 0;
    for (ir::ObjID O = 0; O < M.symbols().numObjects(); ++O)
      if (!M.symbols().isFunctionObject(O))
        ++AddrTaken;

    std::printf(
        "%s",
        T.row({Spec.Name, std::to_string(M.numInstructions()),
               std::to_string(M.numFunctions()), std::to_string(G.numNodes()),
               std::to_string(G.numDirectEdges()),
               std::to_string(G.numIndirectEdges()),
               std::to_string(M.symbols().numVars()),
               std::to_string(AddrTaken), Spec.Description})
            .c_str());

    Json << (FirstJson ? "\n" : ",\n") << "    {\"name\": \"" << Spec.Name
         << "\", \"instructions\": " << M.numInstructions()
         << ", \"functions\": " << M.numFunctions()
         << ", \"svfg_nodes\": " << G.numNodes()
         << ", \"svfg_direct_edges\": " << G.numDirectEdges()
         << ", \"svfg_indirect_edges\": " << G.numIndirectEdges()
         << ", \"top_level_vars\": " << M.symbols().numVars()
         << ", \"address_taken\": " << AddrTaken
         << ", \"termination\": \""
         << terminationName(Ctx->buildTermination()) << "\"}";
    FirstJson = false;
  }
  Json << "\n  ]";
  if (Budget)
    Json << ",\n  \"budget\": " << budgetJsonObject(*Budget);
  if (adt::pointsToRepr() == adt::PtsRepr::Persistent)
    Json << ",\n  \"ptscache\": " << ptsCacheJsonObject();
  Json << "\n}\n";
  std::printf("\nShape checks vs. the paper's Table II:\n"
              "  - indirect edges exceed direct edges throughout;\n"
              "  - node/edge counts grow roughly monotonically down the "
              "table;\n"
              "  - the C++-like presets (astyle, hyriseConsole) have the "
              "densest graphs.\n");
  if (!JsonPath.empty())
    writeJson(JsonPath, Json.str());
  return 0;
}
