//===- ovs_test.cpp - Offline variable substitution tests -------*- C++ -*-===//

#include "TestUtil.h"

#include "andersen/OVS.h"

using namespace vsfs;
using namespace vsfs::test;
using andersen::OfflineSubstitution;

TEST(OVS, CopiesOfOneSourceCollapse) {
  auto Ctx = buildFromText(R"(
    func @main() {
    entry:
      %a = alloc
      %b = copy %a
      %c = copy %a
      %d = copy %b
      ret %d
    }
  )");
  const ir::Module &M = Ctx->module();
  OfflineSubstitution OVS(M);
  // a, b, c, d all provably share a's points-to set.
  uint32_t CA = OVS.classOf(findVar(M, "a"));
  EXPECT_EQ(OVS.classOf(findVar(M, "b")), CA);
  EXPECT_EQ(OVS.classOf(findVar(M, "c")), CA);
  EXPECT_EQ(OVS.classOf(findVar(M, "d")), CA);
  EXPECT_GE(OVS.numCollapsibleVars(), 4u);
}

TEST(OVS, DistinctAllocationsStayDistinct) {
  auto Ctx = buildFromText(R"(
    func @main() {
    entry:
      %a = alloc
      %b = alloc
      ret %a
    }
  )");
  const ir::Module &M = Ctx->module();
  OfflineSubstitution OVS(M);
  EXPECT_NE(OVS.classOf(findVar(M, "a")), OVS.classOf(findVar(M, "b")));
}

TEST(OVS, PhiOfSameInputsCollapses) {
  auto Ctx = buildFromText(R"(
    func @main() {
    entry:
      %a = alloc
      %b = alloc
      br l, r
    l:
      br join
    r:
      br join
    join:
      %m1 = phi %a, %b
      %m2 = phi %b, %a
      %single = phi %a, %a
      ret %m1
    }
  )");
  const ir::Module &M = Ctx->module();
  OfflineSubstitution OVS(M);
  // phi{a,b} == phi{b,a} (set semantics); phi{a,a} == a.
  EXPECT_EQ(OVS.classOf(findVar(M, "m1")), OVS.classOf(findVar(M, "m2")));
  EXPECT_EQ(OVS.classOf(findVar(M, "single")),
            OVS.classOf(findVar(M, "a")));
  EXPECT_NE(OVS.classOf(findVar(M, "m1")), OVS.classOf(findVar(M, "a")));
}

TEST(OVS, LoadsAreIndirect) {
  auto Ctx = buildFromText(R"(
    func @main() {
    entry:
      %p = alloc
      %x = load %p
      %y = load %p
      ret %x
    }
  )");
  const ir::Module &M = Ctx->module();
  OfflineSubstitution OVS(M);
  // HVN cannot see through memory: two loads of the same cell stay apart
  // (a finer pass could merge them; freshness is the sound default).
  EXPECT_NE(OVS.classOf(findVar(M, "x")), OVS.classOf(findVar(M, "y")));
}

TEST(OVS, FieldsOfEqualBasesCollapse) {
  auto Ctx = buildFromText(R"(
    func @main() {
    entry:
      %s = alloc [fields=4]
      %t = copy %s
      %f1 = field %s, 2
      %f2 = field %t, 2
      %f3 = field %s, 3
      ret %f1
    }
  )");
  const ir::Module &M = Ctx->module();
  OfflineSubstitution OVS(M);
  // Same base class + same offset => same field class; offsets differ =>
  // classes differ.
  EXPECT_EQ(OVS.classOf(findVar(M, "f1")), OVS.classOf(findVar(M, "f2")));
  EXPECT_NE(OVS.classOf(findVar(M, "f1")), OVS.classOf(findVar(M, "f3")));
}

TEST(OVS, DirectCallResultsShareTheReturnClass) {
  auto Ctx = buildFromText(R"(
    func @mk() {
    entry:
      %o = alloc [heap]
      ret %o
    }
    func @main() {
    entry:
      %r1 = call @mk()
      %r2 = call @mk()
      ret %r1
    }
  )");
  const ir::Module &M = Ctx->module();
  OfflineSubstitution OVS(M);
  EXPECT_EQ(OVS.classOf(findVar(M, "r1")), OVS.classOf(findVar(M, "r2")));
  EXPECT_EQ(OVS.classOf(findVar(M, "r1")), OVS.classOf(findVar(M, "o")));
}

TEST(OVS, AddressTakenFunctionParamsAreFresh) {
  auto Ctx = buildFromText(R"(
    func @target(%x) {
    entry:
      ret %x
    }
    func @main() {
    entry:
      %a = alloc
      %fp = funcaddr @target
      %r = call %fp(%a)
      call @target(%a)
      ret %r
    }
  )");
  const ir::Module &M = Ctx->module();
  OfflineSubstitution OVS(M);
  // %x could also receive from unseen indirect callers: never collapsed
  // with its (single visible) argument.
  EXPECT_NE(OVS.classOf(findVar(M, "x")), OVS.classOf(findVar(M, "a")));
  // The indirect call's result is likewise fresh.
  EXPECT_NE(OVS.classOf(findVar(M, "r")), OVS.classOf(findVar(M, "x")));
}

namespace {

/// Field objects are created lazily during solving, so their raw IDs vary
/// with processing order; canonicalise by (base object, offset).
std::set<std::pair<uint32_t, uint32_t>>
canonicalPts(const ir::Module &M, const PointsTo &Pts) {
  std::set<std::pair<uint32_t, uint32_t>> Out;
  for (uint32_t O : Pts) {
    const ir::ObjInfo &Info = M.symbols().object(O);
    Out.emplace(Info.Base, Info.Offset);
  }
  return Out;
}

} // namespace

class OVSProperty : public ::testing::TestWithParam<uint32_t> {};

TEST_P(OVSProperty, SubstitutionPreservesTheSolution) {
  // The central guarantee: solving with classes collapsed produces exactly
  // the same points-to sets and call graph as solving without.
  workload::GenConfig C;
  C.Seed = GetParam() * 61 + 17;
  C.NumFunctions = 3 + GetParam() % 9;
  C.NumGlobals = GetParam() % 7;
  C.IndirectCallFraction = (GetParam() % 3) * 0.3;

  auto M1 = workload::generateProgram(C);
  andersen::Andersen Plain(*M1);
  Plain.solve();

  auto M2 = workload::generateProgram(C);
  andersen::Andersen::Options Opts;
  Opts.OfflineSubstitution = true;
  andersen::Andersen Substituted(*M2, Opts);
  Substituted.solve();

  ASSERT_EQ(M1->symbols().numVars(), M2->symbols().numVars());
  for (ir::VarID V = 0; V < M1->symbols().numVars(); ++V)
    ASSERT_EQ(canonicalPts(*M1, Plain.ptsOfVar(V)),
              canonicalPts(*M2, Substituted.ptsOfVar(V)))
        << "var " << ir::printVar(*M1, V);
  EXPECT_EQ(Plain.callGraph().numEdges(),
            Substituted.callGraph().numEdges());
}

TEST_P(OVSProperty, ClassesNeverExceedVars) {
  workload::GenConfig C;
  C.Seed = GetParam() * 71 + 29;
  C.NumFunctions = 4;
  auto M = workload::generateProgram(C);
  OfflineSubstitution OVS(*M);
  EXPECT_LE(OVS.numClasses(), M->symbols().numVars());
  EXPECT_GT(OVS.numClasses(), 0u);
  // Some substitution opportunity almost always exists in generated code.
  EXPECT_GT(OVS.numCollapsibleVars(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OVSProperty, ::testing::Range(1u, 26u));
