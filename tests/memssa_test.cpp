//===- memssa_test.cpp - Memory SSA tests -----------------------*- C++ -*-===//

#include "TestUtil.h"

#include "memssa/MemSSA.h"

using namespace vsfs;
using namespace vsfs::test;
using memssa::MemSSA;

namespace {

ir::ObjID findObj(const ir::Module &M, const std::string &Name) {
  for (ir::ObjID O = 0; O < M.symbols().numObjects(); ++O)
    if (M.symbols().object(O).Name == Name)
      return O;
  ADD_FAILURE() << "unknown object " << Name;
  return ir::InvalidObj;
}

/// Finds the unique instruction of a kind in a function.
ir::InstID findInst(const ir::Module &M, ir::InstKind Kind,
                    const std::string &FunName, uint32_t Skip = 0) {
  ir::FunID F = M.lookupFunction(FunName);
  for (ir::InstID I = 0; I < M.numInstructions(); ++I)
    if (M.inst(I).Kind == Kind && M.inst(I).Parent == F) {
      if (Skip == 0)
        return I;
      --Skip;
    }
  ADD_FAILURE() << "no such instruction in " << FunName;
  return ir::InvalidInst;
}

} // namespace

TEST(MemSSA, StoreChiAndLoadMuSets) {
  auto Ctx = buildFromText(R"(
    func @main() {
    entry:
      %x = alloc
      %p = alloc
      store %x -> %p
      %y = load %p
      ret %y
    }
  )");
  auto &M = Ctx->module();
  auto &SSA = Ctx->memSSA();
  ir::InstID Store = findInst(M, ir::InstKind::Store, "main");
  ir::InstID Load = findInst(M, ir::InstKind::Load, "main");
  ir::ObjID PObj = findObj(M, "p.obj");
  EXPECT_TRUE(SSA.chiObjs(Store).test(PObj));
  EXPECT_EQ(SSA.chiObjs(Store).count(), 1u);
  EXPECT_TRUE(SSA.muObjs(Load).test(PObj));
}

TEST(MemSSA, LoadReachesItsStoreDef) {
  auto Ctx = buildFromText(R"(
    func @main() {
    entry:
      %x = alloc
      %p = alloc
      store %x -> %p
      %y = load %p
      ret %y
    }
  )");
  auto &M = Ctx->module();
  auto &SSA = Ctx->memSSA();
  ir::InstID Store = findInst(M, ir::InstKind::Store, "main");
  ir::InstID Load = findInst(M, ir::InstKind::Load, "main");
  ir::ObjID PObj = findObj(M, "p.obj");

  bool Found = false;
  for (const MemSSA::Mu &U : SSA.mus()) {
    if (U.Kind != MemSSA::MuKind::LoadMu || U.Inst != Load || U.Obj != PObj)
      continue;
    Found = true;
    ASSERT_NE(U.Reaching, memssa::InvalidDef);
    const MemSSA::Def &D = SSA.defs()[U.Reaching];
    EXPECT_EQ(D.Kind, MemSSA::DefKind::StoreChi);
    EXPECT_EQ(D.Inst, Store);
  }
  EXPECT_TRUE(Found);
}

TEST(MemSSA, MemPhiAtJoin) {
  auto Ctx = buildFromText(R"(
    func @main() {
    entry:
      %x = alloc
      %z = alloc
      %p = alloc
      br l, r
    l:
      store %x -> %p
      br join
    r:
      store %z -> %p
      br join
    join:
      %y = load %p
      ret %y
    }
  )");
  auto &SSA = Ctx->memSSA();
  auto &M = Ctx->module();
  ir::ObjID PObj = findObj(M, "p.obj");
  // One MemPhi for p.obj at the join, merging the two store chis.
  uint32_t Phis = 0;
  for (const MemSSA::Def &D : SSA.defs()) {
    if (D.Kind != MemSSA::DefKind::MemPhi || D.Obj != PObj)
      continue;
    ++Phis;
    EXPECT_EQ(D.PhiOperands.size(), 2u);
    for (memssa::DefID Op : D.PhiOperands) {
      ASSERT_NE(Op, memssa::InvalidDef);
      EXPECT_EQ(SSA.defs()[Op].Kind, MemSSA::DefKind::StoreChi);
    }
  }
  EXPECT_EQ(Phis, 1u);
  // The load reaches the phi.
  ir::InstID Load = findInst(M, ir::InstKind::Load, "main");
  for (const MemSSA::Mu &U : SSA.mus())
    if (U.Kind == MemSSA::MuKind::LoadMu && U.Inst == Load &&
        U.Obj == PObj) {
      EXPECT_EQ(SSA.defs()[U.Reaching].Kind, MemSSA::DefKind::MemPhi);
    }
}

TEST(MemSSA, NoPhiWithoutJoinOfDefs) {
  auto Ctx = buildFromText(R"(
    func @main() {
    entry:
      %x = alloc
      %p = alloc
      store %x -> %p
      br l, r
    l:
      br join
    r:
      br join
    join:
      %y = load %p
      ret %y
    }
  )");
  // A single def before the branch needs no MemPhi (pruned SSA).
  uint32_t Phis = 0;
  for (const MemSSA::Def &D : Ctx->memSSA().defs())
    if (D.Kind == MemSSA::DefKind::MemPhi)
      ++Phis;
  EXPECT_EQ(Phis, 0u);
}

TEST(MemSSA, ChiOperandChainsStores) {
  auto Ctx = buildFromText(R"(
    func @main() {
    entry:
      %x = alloc
      %z = alloc
      %p = alloc [weak]
      store %x -> %p
      store %z -> %p
      %y = load %p
      ret %y
    }
  )");
  auto &M = Ctx->module();
  auto &SSA = Ctx->memSSA();
  ir::InstID Store1 = findInst(M, ir::InstKind::Store, "main", 0);
  ir::InstID Store2 = findInst(M, ir::InstKind::Store, "main", 1);
  ir::ObjID PObj = findObj(M, "p.obj");
  // The second store's chi operand is the first store's def.
  for (const MemSSA::Def &D : SSA.defs()) {
    if (D.Kind != MemSSA::DefKind::StoreChi || D.Inst != Store2 ||
        D.Obj != PObj)
      continue;
    ASSERT_NE(D.Operand, memssa::InvalidDef);
    EXPECT_EQ(SSA.defs()[D.Operand].Inst, Store1);
  }
}

TEST(MemSSA, ModRefTransitiveOverCalls) {
  auto Ctx = buildFromText(R"(
    global @g
    func @writer(%v) {
    entry:
      store %v -> @g
      ret
    }
    func @outer(%v) {
    entry:
      call @writer(%v)
      ret
    }
    func @reader() {
    entry:
      %r = load @g
      ret %r
    }
    func @main() {
    entry:
      %a = alloc
      call @outer(%a)
      %x = call @reader()
      ret %x
    }
  )");
  auto &M = Ctx->module();
  auto &SSA = Ctx->memSSA();
  ir::ObjID GObj = findObj(M, "g");
  // Mod propagates writer -> outer -> main; Ref propagates reader -> main.
  EXPECT_TRUE(SSA.modOf(M.lookupFunction("writer")).test(GObj));
  EXPECT_TRUE(SSA.modOf(M.lookupFunction("outer")).test(GObj));
  EXPECT_TRUE(SSA.modOf(M.lookupFunction("main")).test(GObj));
  EXPECT_FALSE(SSA.modOf(M.lookupFunction("reader")).test(GObj));
  EXPECT_TRUE(SSA.refOf(M.lookupFunction("reader")).test(GObj));
  EXPECT_FALSE(SSA.refOf(M.lookupFunction("writer")).test(GObj));

  // The call to @outer carries a chi for g; the call to @reader a mu.
  ir::InstID CallOuter = findInst(M, ir::InstKind::Call, "main", 0);
  ir::InstID CallReader = findInst(M, ir::InstKind::Call, "main", 1);
  EXPECT_TRUE(SSA.chiObjs(CallOuter).test(GObj));
  EXPECT_TRUE(SSA.muObjs(CallReader).test(GObj));
  EXPECT_FALSE(SSA.chiObjs(CallReader).test(GObj));
}

TEST(MemSSA, EntryChiAndExitMu) {
  auto Ctx = buildFromText(R"(
    global @g
    func @writer(%v) {
    entry:
      store %v -> @g
      ret
    }
    func @main() {
    entry:
      %a = alloc
      call @writer(%a)
      ret
    }
  )");
  auto &M = Ctx->module();
  auto &SSA = Ctx->memSSA();
  ir::ObjID GObj = findObj(M, "g");
  ir::FunID Writer = M.lookupFunction("writer");
  // writer has an entry chi (g flows in: mod => mod∪ref) and an exit mu.
  bool HasEntryChi = false, HasExitMu = false;
  for (const MemSSA::Def &D : SSA.defs())
    if (D.Kind == MemSSA::DefKind::EntryChi && D.Fun == Writer &&
        D.Obj == GObj)
      HasEntryChi = true;
  for (const MemSSA::Mu &U : SSA.mus())
    if (U.Kind == MemSSA::MuKind::ExitMu && U.Obj == GObj &&
        M.inst(U.Inst).Parent == Writer)
      HasExitMu = true;
  EXPECT_TRUE(HasEntryChi);
  EXPECT_TRUE(HasExitMu);
}

TEST(MemSSA, FunctionObjectsExcluded) {
  auto Ctx = buildFromText(R"(
    func @f() {
    entry:
      ret
    }
    func @main() {
    entry:
      %fp = funcaddr @f
      %p = alloc
      store %fp -> %p
      %x = load %p
      call @f()
      ret %x
    }
  )");
  auto &M = Ctx->module();
  auto &SSA = Ctx->memSSA();
  // No chi/mu ever names a function object.
  for (const MemSSA::Def &D : SSA.defs())
    EXPECT_FALSE(M.symbols().isFunctionObject(D.Obj));
  for (const MemSSA::Mu &U : SSA.mus())
    EXPECT_FALSE(M.symbols().isFunctionObject(U.Obj));
}

TEST(MemSSA, LoopStoreGetsPhiAtHeader) {
  auto Ctx = buildFromText(R"(
    func @main() {
    entry:
      %x = alloc
      %p = alloc [weak]
      br loop
    loop:
      %v = load %p
      store %x -> %p
      br loop, out
    out:
      ret %v
    }
  )");
  auto &M = Ctx->module();
  auto &SSA = Ctx->memSSA();
  ir::ObjID PObj = findObj(M, "p.obj");
  // The loop header joins entry and back edge: one MemPhi for p.obj there,
  // and the load in the loop reads that phi.
  ir::InstID Load = findInst(M, ir::InstKind::Load, "main");
  bool LoadReadsPhi = false;
  for (const MemSSA::Mu &U : SSA.mus())
    if (U.Kind == MemSSA::MuKind::LoadMu && U.Inst == Load && U.Obj == PObj)
      LoadReadsPhi = SSA.defs()[U.Reaching].Kind == MemSSA::DefKind::MemPhi;
  EXPECT_TRUE(LoadReadsPhi);
}

TEST(MemSSA, StatsArePopulated) {
  workload::GenConfig C;
  C.Seed = 11;
  auto Ctx = buildFromConfig(C);
  ASSERT_NE(Ctx, nullptr);
  EXPECT_GT(Ctx->memSSA().stats().lookup("defs"), 0u);
  EXPECT_GT(Ctx->memSSA().stats().lookup("mus"), 0u);
}
