//===- analysisrunner_test.cpp - Registry and runner tests ------*- C++ -*-===//
///
/// The unified dispatch layer: registry lookup (names, aliases,
/// later-registration-wins), AnalysisContext build idempotence, the
/// solver-equivalence property driven through the registry on every
/// workload preset (the same path the CLI and benches take), and the
/// golden shape of the machine-readable statistics JSON.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "adt/PointsToCache.h"
#include "core/AnalysisRunner.h"
#include "workload/BenchmarkSuite.h"

#include <algorithm>

using namespace vsfs;
using namespace vsfs::test;
using core::AnalysisRunner;
using core::SolverOptions;

namespace {

/// Compares every variable's points-to set; reports the first mismatch.
void expectSamePointsTo(const ir::Module &M,
                        const core::PointerAnalysisResult &A,
                        const core::PointerAnalysisResult &B,
                        const char *What) {
  for (ir::VarID V = 0; V < M.symbols().numVars(); ++V) {
    if (A.ptsOfVar(V) == B.ptsOfVar(V))
      continue;
    ADD_FAILURE() << What << ": mismatch at " << ir::printVar(M, V)
                  << "\n  first:  "
                  << ::testing::PrintToString(pointeeNames(M, A.ptsOfVar(V)))
                  << "\n  second: "
                  << ::testing::PrintToString(pointeeNames(M, B.ptsOfVar(V)));
    return;
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Registry semantics
//===----------------------------------------------------------------------===//

TEST(AnalysisRunnerRegistry, BuiltinsAreRegistered) {
  const AnalysisRunner &R = AnalysisRunner::registry();
  for (const char *Name : {"ander", "iter", "sfs", "vsfs"}) {
    const AnalysisRunner::Entry *E = R.find(Name);
    ASSERT_NE(E, nullptr) << Name;
    EXPECT_EQ(E->Name, Name);
    EXPECT_FALSE(E->Description.empty());
  }
  EXPECT_EQ(R.find("bogus"), nullptr);
  EXPECT_EQ(R.find(""), nullptr);
}

TEST(AnalysisRunnerRegistry, AliasResolvesToCanonicalName) {
  // "dense" is the historical CLI spelling of the iterative baseline.
  const AnalysisRunner::Entry *E = AnalysisRunner::registry().find("dense");
  ASSERT_NE(E, nullptr);
  EXPECT_EQ(E->Name, "iter");
}

TEST(AnalysisRunnerRegistry, NamesStringListsCanonicalNamesInOrder) {
  EXPECT_EQ(AnalysisRunner::registry().namesString(),
            "ander | iter | sfs | vsfs");
}

TEST(AnalysisRunnerRegistry, LaterRegistrationWinsOnNameCollision) {
  // On a private runner so the process-wide registry stays untouched.
  AnalysisRunner R;
  R.add({"x", {"alias1"}, "first", nullptr});
  R.add({"y", {}, "other", nullptr});
  R.add({"x", {}, "second", nullptr});
  ASSERT_EQ(R.entries().size(), 2u);
  const AnalysisRunner::Entry *E = R.find("x");
  ASSERT_NE(E, nullptr);
  EXPECT_EQ(E->Description, "second");
  // The override replaced the whole entry, aliases included.
  EXPECT_EQ(R.find("alias1"), nullptr);
}

TEST(AnalysisRunnerRegistry, RunWithUnknownNameReturnsNullAnalysis) {
  workload::GenConfig C;
  C.Seed = 3;
  auto Ctx = buildFromConfig(C);
  ASSERT_NE(Ctx, nullptr);
  AnalysisRunner::RunResult R =
      AnalysisRunner::registry().run(*Ctx, "bogus");
  EXPECT_EQ(R.Analysis, nullptr);
  EXPECT_TRUE(R.Name.empty());
}

//===----------------------------------------------------------------------===//
// AnalysisContext build idempotence
//===----------------------------------------------------------------------===//

TEST(AnalysisContextBuild, RepeatedBuildSameOptionsIsOkDifferentIsNot) {
  workload::GenConfig C;
  C.Seed = 5;
  auto Module = workload::generateProgram(C);
  core::AnalysisContext Ctx;
  Ctx.module() = std::move(*Module);

  EXPECT_FALSE(Ctx.isBuilt());
  EXPECT_TRUE(Ctx.build(/*ConnectAuxIndirectCalls=*/false));
  EXPECT_TRUE(Ctx.isBuilt());
  EXPECT_FALSE(Ctx.builtWithAuxIndirectCalls());
  const svfg::SVFG *Before = &Ctx.svfg();

  // Same options again: fine, nothing rebuilt.
  EXPECT_TRUE(Ctx.build(/*ConnectAuxIndirectCalls=*/false));
  EXPECT_EQ(&Ctx.svfg(), Before);

  // Different options: refused, pipeline untouched.
  EXPECT_FALSE(Ctx.build(/*ConnectAuxIndirectCalls=*/true));
  andersen::Andersen::Options OVS;
  OVS.OfflineSubstitution = true;
  EXPECT_FALSE(Ctx.build(/*ConnectAuxIndirectCalls=*/false, OVS));
  EXPECT_EQ(&Ctx.svfg(), Before);
  EXPECT_FALSE(Ctx.builtWithAuxIndirectCalls());
}

//===----------------------------------------------------------------------===//
// Registered-solver equivalence on every workload preset
//===----------------------------------------------------------------------===//

/// One instance per benchmark preset (all 15 of Table II/III).
class RunnerPresetEquivalence
    : public ::testing::TestWithParam<workload::BenchSpec> {};

TEST_P(RunnerPresetEquivalence, SfsAndVsfsAgreeAndRefineAndersen) {
  const workload::BenchSpec &Spec = GetParam();
  auto Ctx = std::make_unique<core::AnalysisContext>();
  Ctx->module() = std::move(*workload::generateProgram(Spec.Config));
  ASSERT_TRUE(Ctx->build());

  const AnalysisRunner &Runner = AnalysisRunner::registry();
  auto Ander = Runner.run(*Ctx, "ander");
  auto SFS = Runner.run(*Ctx, "sfs");
  auto VSFS = Runner.run(*Ctx, "vsfs");
  ASSERT_NE(Ander.Analysis, nullptr);
  ASSERT_NE(SFS.Analysis, nullptr);
  ASSERT_NE(VSFS.Analysis, nullptr);

  const ir::Module &M = Ctx->module();
  // §IV-E: identical precision, preset for preset.
  expectSamePointsTo(M, *SFS.Analysis, *VSFS.Analysis, Spec.Name.c_str());

  // Staging soundness: the flow-sensitive result refines the auxiliary
  // one, and resolves no more call edges.
  for (ir::VarID V = 0; V < M.symbols().numVars(); ++V)
    ASSERT_TRUE(
        Ander.Analysis->ptsOfVar(V).contains(SFS.Analysis->ptsOfVar(V)))
        << Spec.Name << ": SFS exceeds Andersen at " << ir::printVar(M, V);
  EXPECT_LE(SFS.Analysis->callGraph().numEdges(),
            Ander.Analysis->callGraph().numEdges());

  // The versioned solver stores no more sets than the staged one.
  EXPECT_LE(VSFS.Analysis->numPtsSetsStored(),
            SFS.Analysis->numPtsSetsStored())
      << Spec.Name;
}

namespace {

std::string presetName(
    const ::testing::TestParamInfo<workload::BenchSpec> &Info) {
  return Info.param.Name;
}

} // namespace

INSTANTIATE_TEST_SUITE_P(AllPresets, RunnerPresetEquivalence,
                         ::testing::ValuesIn(workload::benchmarkSuite()),
                         presetName);

/// The dense baseline through the registry (alias included) against SFS on
/// call-free programs — the oracle property, now exercised via dispatch.
class RunnerDenseOracle : public ::testing::TestWithParam<uint32_t> {};

TEST_P(RunnerDenseOracle, IterMatchesSfsIntraprocedurally) {
  workload::GenConfig C;
  C.Seed = GetParam();
  C.NumFunctions = 0;
  C.CallWeight = 0.0;
  C.BlocksPerFunction = 3 + GetParam() % 6;
  C.InstsPerBlock = 4 + GetParam() % 5;
  C.NumGlobals = GetParam() % 8;
  C.HeapFraction = (GetParam() % 4) * 0.25;
  auto Ctx = buildFromConfig(C, /*ConnectAuxIndirectCalls=*/true);
  ASSERT_NE(Ctx, nullptr);

  const AnalysisRunner &Runner = AnalysisRunner::registry();
  auto SFS = Runner.run(*Ctx, "sfs");
  auto Dense = Runner.run(*Ctx, "dense"); // alias for "iter"
  ASSERT_NE(Dense.Analysis, nullptr);
  EXPECT_EQ(Dense.Name, "iter");
  expectSamePointsTo(Ctx->module(), *SFS.Analysis, *Dense.Analysis,
                     "SFS vs dense via runner");
}

INSTANTIATE_TEST_SUITE_P(Seeds, RunnerDenseOracle, ::testing::Range(1u, 9u));

//===----------------------------------------------------------------------===//
// Statistics output shape
//===----------------------------------------------------------------------===//

namespace {

/// A structural walk over the JSON text: brace/bracket balance and string
/// integrity — enough to catch emission bugs without a JSON library.
void expectWellFormedJson(const std::string &J) {
  int Depth = 0;
  bool InString = false;
  for (size_t I = 0; I < J.size(); ++I) {
    char C = J[I];
    if (InString) {
      ASSERT_NE(C, '\n') << "newline inside a JSON string at offset " << I;
      if (C == '\\')
        ++I;
      else if (C == '"')
        InString = false;
      continue;
    }
    switch (C) {
    case '"':
      InString = true;
      break;
    case '{':
    case '[':
      ++Depth;
      break;
    case '}':
    case ']':
      ASSERT_GT(Depth, 0) << "unbalanced close at offset " << I;
      --Depth;
      break;
    default:
      break;
    }
  }
  EXPECT_FALSE(InString);
  EXPECT_EQ(Depth, 0);
}

size_t countOccurrences(const std::string &Hay, const std::string &Needle) {
  size_t N = 0;
  for (size_t P = Hay.find(Needle); P != std::string::npos;
       P = Hay.find(Needle, P + Needle.size()))
    ++N;
  return N;
}

} // namespace

TEST(StatsJson, GoldenShapeForAllAnalyses) {
  workload::GenConfig C;
  C.Seed = 11;
  C.NumFunctions = 8;
  C.IndirectCallFraction = 0.3;
  auto Ctx = buildFromConfig(C, /*ConnectAuxIndirectCalls=*/true);
  ASSERT_NE(Ctx, nullptr);

  const AnalysisRunner &Runner = AnalysisRunner::registry();
  SolverOptions Opts;
  Opts.OnTheFlyCallGraph = false;
  std::vector<AnalysisRunner::RunResult> Results;
  for (const auto &E : Runner.entries())
    Results.push_back(Runner.run(*Ctx, E.Name, Opts));

  std::string J = core::statsJson(*Ctx, Results);
  expectWellFormedJson(J);

  // Top-level shape.
  EXPECT_NE(J.find("\"schema\": \"vsfs-stats-v5\""), std::string::npos);
  EXPECT_NE(J.find("\"mode\": \"exhaustive\""), std::string::npos);
  for (const char *Key :
       {"\"module\"", "\"pipeline\"", "\"analyses\"", "\"instructions\"",
        "\"functions\"", "\"variables\"", "\"objects\"",
        "\"andersen_seconds\"", "\"memssa_seconds\"", "\"svfg_seconds\"",
        "\"svfg_nodes\"", "\"svfg_direct_edges\"", "\"svfg_indirect_edges\"",
        "\"coalesce_seconds\""})
    EXPECT_NE(J.find(Key), std::string::npos) << Key;

  // v2: the pipeline's own termination plus a per-run status triple. All
  // these runs were ungoverned, so everything reads completed/false.
  EXPECT_NE(J.find("\"termination\": \"completed\""), std::string::npos);
  EXPECT_EQ(countOccurrences(J, "\"termination\": "), Results.size() + 1);
  EXPECT_EQ(countOccurrences(J, "\"degraded\": false"), Results.size());
  EXPECT_EQ(countOccurrences(J, "\"partial\": false"), Results.size());

  // One analysis object per run, each with the per-run fields.
  EXPECT_EQ(countOccurrences(J, "\"name\": "), Results.size());
  EXPECT_EQ(countOccurrences(J, "\"solve_seconds\": "), Results.size());
  EXPECT_EQ(countOccurrences(J, "\"pts_sets_stored\": "), Results.size());
  EXPECT_EQ(countOccurrences(J, "\"footprint_bytes\": "), Results.size());
  EXPECT_EQ(countOccurrences(J, "\"counters\": "), Results.size());
  for (const auto &E : Runner.entries())
    EXPECT_NE(J.find("\"name\": \"" + E.Name + "\""), std::string::npos);

  // The versioned solver additionally reports its pre-analysis.
  EXPECT_EQ(countOccurrences(J, "\"versioning_seconds\": "), 1u);
  EXPECT_EQ(countOccurrences(J, "\"versioning_counters\": "), 1u);
}

TEST(PtsReprFlag, ParseAcceptsKnownValuesAndRejectsUnknown) {
  adt::PtsRepr Repr = adt::PtsRepr::SBV;
  EXPECT_TRUE(adt::parsePtsRepr("persistent", Repr));
  EXPECT_EQ(Repr, adt::PtsRepr::Persistent);
  EXPECT_TRUE(adt::parsePtsRepr("sbv", Repr));
  EXPECT_EQ(Repr, adt::PtsRepr::SBV);

  Repr = adt::PtsRepr::Persistent;
  for (const char *Bad : {"bogus", "", "SBV", "Persistent", "sbv "}) {
    EXPECT_FALSE(adt::parsePtsRepr(Bad, Repr)) << Bad;
    EXPECT_EQ(Repr, adt::PtsRepr::Persistent) << "output clobbered on "
                                              << Bad;
  }
  EXPECT_STREQ(adt::ptsReprName(adt::PtsRepr::SBV), "sbv");
  EXPECT_STREQ(adt::ptsReprName(adt::PtsRepr::Persistent), "persistent");
}

namespace {

/// Runs sfs on a small workload under \p Repr and returns the stats JSON,
/// emitted while that representation is still selected.
std::string statsJsonUnder(adt::PtsRepr Repr) {
  adt::PtsReprScope Scope(Repr);
  workload::GenConfig C;
  C.Seed = 17;
  auto Ctx = buildFromConfig(C);
  if (!Ctx)
    return {};
  std::vector<AnalysisRunner::RunResult> Results;
  Results.push_back(AnalysisRunner::registry().run(*Ctx, "sfs"));
  std::string J = core::statsJson(*Ctx, Results);
  Results.clear(); // Persistent sets die before the scope (and cache) do.
  Ctx.reset();
  if (Repr == adt::PtsRepr::Persistent)
    adt::PointsToCache::get().clear();
  return J;
}

} // namespace

TEST(StatsJson, PtsCacheGroupPresentExactlyInPersistentMode) {
  std::string Sbv = statsJsonUnder(adt::PtsRepr::SBV);
  expectWellFormedJson(Sbv);
  EXPECT_NE(Sbv.find("\"pts_repr\": \"sbv\""), std::string::npos);
  EXPECT_EQ(Sbv.find("\"ptscache\""), std::string::npos);

  std::string Pers = statsJsonUnder(adt::PtsRepr::Persistent);
  expectWellFormedJson(Pers);
  EXPECT_NE(Pers.find("\"pts_repr\": \"persistent\""), std::string::npos);
  EXPECT_NE(Pers.find("\"ptscache\""), std::string::npos);
  // The cache group carries the op-cache hit rate's ingredients.
  for (const char *Key :
       {"\"unique-sets\"", "\"interned-bytes\"", "\"baseline-bytes\"",
        "\"op-cache-hits\"", "\"op-cache-misses\"", "\"intern-hits\"",
        "\"intern-misses\""})
    EXPECT_NE(Pers.find(Key), std::string::npos) << Key;
}

namespace {

/// Collects the keys of every JSON object nested under a `"Name": {` group
/// emitted by jsonCounters and asserts they appear in sorted order — the
/// deterministic-key-order contract golden comparisons rely on.
void expectSortedCounterKeys(const std::string &J, const std::string &Group) {
  size_t P = 0;
  size_t Seen = 0;
  std::string Marker = "\"" + Group + "\": {";
  while ((P = J.find(Marker, P)) != std::string::npos) {
    size_t End = J.find('}', P);
    ASSERT_NE(End, std::string::npos);
    std::vector<std::string> Keys;
    size_t Q = P + Marker.size();
    while (true) {
      size_t KeyStart = J.find('"', Q);
      if (KeyStart == std::string::npos || KeyStart > End)
        break;
      size_t KeyEnd = J.find('"', KeyStart + 1);
      ASSERT_NE(KeyEnd, std::string::npos);
      Keys.push_back(J.substr(KeyStart + 1, KeyEnd - KeyStart - 1));
      Q = KeyEnd + 1;
    }
    ASSERT_FALSE(Keys.empty()) << Group;
    EXPECT_TRUE(std::is_sorted(Keys.begin(), Keys.end()))
        << Group << " keys not in sorted order: "
        << ::testing::PrintToString(Keys);
    ++Seen;
    P = End;
  }
  EXPECT_GT(Seen, 0u) << "no \"" << Group << "\" object found";
}

} // namespace

TEST(StatsJson, CounterObjectsEmitKeysInDeterministicSortedOrder) {
  std::string Pers = statsJsonUnder(adt::PtsRepr::Persistent);
  expectSortedCounterKeys(Pers, "counters");
  expectSortedCounterKeys(Pers, "ptscache");

  // Same module, same mode: byte-identical except the timing floats — the
  // key sequence itself is reproducible.
  auto KeySequence = [](const std::string &J) {
    std::vector<std::string> Keys;
    for (size_t P = J.find('"'); P != std::string::npos;
         P = J.find('"', P + 1)) {
      size_t End = J.find('"', P + 1);
      if (End == std::string::npos)
        break;
      std::string Tok = J.substr(P + 1, End - P - 1);
      if (J.compare(End + 1, 2, ": ") == 0)
        Keys.push_back(Tok); // A key, not a value.
      P = End + 1;
    }
    return Keys;
  };
  std::string Again = statsJsonUnder(adt::PtsRepr::Persistent);
  EXPECT_EQ(KeySequence(Pers), KeySequence(Again));
}

TEST(StatsText, IncludesSolverCountersAndVersioningGroup) {
  workload::GenConfig C;
  C.Seed = 13;
  auto Ctx = buildFromConfig(C);
  ASSERT_NE(Ctx, nullptr);

  auto SFS = AnalysisRunner::registry().run(*Ctx, "sfs");
  std::string SfsText = core::statsText(SFS);
  EXPECT_NE(SfsText.find("node-visits"), std::string::npos);
  EXPECT_NE(SfsText.find("propagations"), std::string::npos);

  auto VSFS = AnalysisRunner::registry().run(*Ctx, "vsfs");
  std::string VsfsText = core::statsText(VSFS);
  // Versioning group first, then the solver's own counters.
  EXPECT_NE(VsfsText.find("versioning"), std::string::npos);
  EXPECT_NE(VsfsText.find("version-visits"), std::string::npos);
}
