//===- TestUtil.h - Shared test helpers -------------------------*- C++ -*-===//
///
/// \file
/// Helpers shared across the test suite: building the full analysis
/// pipeline from textual IR or a generator config, pretty-printing
/// points-to sets for failure messages, and resolving names to IDs.
///
//===----------------------------------------------------------------------===//

#ifndef VSFS_TESTS_TESTUTIL_H
#define VSFS_TESTS_TESTUTIL_H

#include "core/AnalysisContext.h"
#include "core/FlowSensitive.h"
#include "core/IterativeFlowSensitive.h"
#include "core/VersionedFlowSensitive.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "workload/ProgramGenerator.h"

#include "gtest/gtest.h"

#include <memory>
#include <set>
#include <string>

namespace vsfs {
namespace test {

/// Parses and builds the full pipeline; fails the test on any error.
inline std::unique_ptr<core::AnalysisContext>
buildFromText(const char *Text, bool ConnectAuxIndirectCalls = false) {
  auto Ctx = std::make_unique<core::AnalysisContext>();
  std::string Error;
  if (!Ctx->loadText(Text, Error)) {
    ADD_FAILURE() << "IR error: " << Error;
    return nullptr;
  }
  Ctx->build(ConnectAuxIndirectCalls);
  return Ctx;
}

/// Builds the pipeline for a generated program.
inline std::unique_ptr<core::AnalysisContext>
buildFromConfig(const workload::GenConfig &Config,
                bool ConnectAuxIndirectCalls = false) {
  auto Module = workload::generateProgram(Config);
  auto Violations = ir::verifyModule(*Module);
  if (!Violations.empty()) {
    ADD_FAILURE() << "generated module invalid: " << Violations.front();
    return nullptr;
  }
  auto Ctx = std::make_unique<core::AnalysisContext>();
  Ctx->module() = std::move(*Module);
  Ctx->build(ConnectAuxIndirectCalls);
  return Ctx;
}

/// Looks up a local variable by function and name (globals via "@name").
inline ir::VarID findVar(const ir::Module &M, const std::string &Name) {
  if (!Name.empty() && Name[0] == '@') {
    ir::VarID V = M.lookupGlobalVar(Name.substr(1));
    EXPECT_NE(V, ir::InvalidVar) << "unknown global " << Name;
    return V;
  }
  for (ir::VarID V = 0; V < M.symbols().numVars(); ++V)
    if (M.symbols().var(V).Name == Name)
      return V;
  ADD_FAILURE() << "unknown variable " << Name;
  return ir::InvalidVar;
}

/// The names of the objects a variable points to, for readable assertions.
inline std::set<std::string> pointeeNames(const ir::Module &M,
                                          const PointsTo &Pts) {
  std::set<std::string> Names;
  for (uint32_t O : Pts)
    Names.insert(M.symbols().object(O).Name);
  return Names;
}

/// Convenience: run an analysis and return {names} for a variable.
template <typename Analysis>
std::set<std::string> pointees(const ir::Module &M, const Analysis &A,
                               const std::string &VarName) {
  return pointeeNames(M, A.ptsOfVar(findVar(M, VarName)));
}

} // namespace test
} // namespace vsfs

#endif // VSFS_TESTS_TESTUTIL_H
