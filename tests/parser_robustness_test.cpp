//===- parser_robustness_test.cpp - Parser failure injection ----*- C++ -*-===//
///
/// Failure-injection property tests: valid programs are mutilated —
/// truncated at arbitrary offsets, bytes flipped, tokens deleted — and the
/// front end must degrade gracefully: the parser either succeeds or
/// returns a diagnostic (never crashes or hangs); mutations that parse but
/// break semantic rules (double definitions, missing labels, unterminated
/// blocks) are caught by the verifier; and anything passing both stages
/// must run through the whole analysis pipeline without incident.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include <random>

using namespace vsfs;
using namespace vsfs::test;

namespace {

std::string validProgramText(uint64_t Seed) {
  workload::GenConfig C;
  C.Seed = Seed;
  C.NumFunctions = 3;
  C.NumGlobals = 3;
  C.BlocksPerFunction = 3;
  return ir::printModule(*workload::generateProgram(C));
}

/// Parses; failures must carry a diagnostic, and inputs passing both the
/// parser and the verifier must survive the full pipeline.
void expectGraceful(const std::string &Text) {
  ir::Module M;
  std::string Error;
  if (!ir::parseModule(Text, M, Error)) {
    EXPECT_FALSE(Error.empty()) << "failure must carry a diagnostic";
    return;
  }
  if (!ir::verifyModule(M).empty())
    return; // Semantically broken mutations stop at the verifier.
  // Fully valid after mutation: the analyses must handle it.
  core::AnalysisContext Ctx;
  Ctx.module() = std::move(M);
  Ctx.build();
  core::VersionedFlowSensitive VSFS(Ctx.svfg());
  VSFS.solve();
}

} // namespace

TEST(ParserRobustness, EmptyAndTrivialInputs) {
  expectGraceful("");
  expectGraceful("\n\n\n");
  expectGraceful("; only a comment\n");
  expectGraceful("func");
  expectGraceful("global");
  expectGraceful("}{");
  expectGraceful("func @f(");
  expectGraceful("func @f() {");
  expectGraceful("func @f() {\nentry:");
  expectGraceful(std::string(1000, '%'));
}

TEST(ParserRobustness, BinaryGarbage) {
  std::string Garbage;
  std::mt19937 Rng(5);
  for (int I = 0; I < 2048; ++I)
    Garbage += static_cast<char>(Rng() % 255 + 1); // Avoid embedded NUL.
  expectGraceful(Garbage);
}

class TruncationProperty : public ::testing::TestWithParam<uint32_t> {};

TEST_P(TruncationProperty, EveryPrefixParsesGracefully) {
  std::string Text = validProgramText(GetParam());
  // Sample prefixes densely near token boundaries, sparsely elsewhere.
  for (size_t Cut = 0; Cut < Text.size(); Cut += 1 + Cut / 16)
    expectGraceful(Text.substr(0, Cut));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TruncationProperty, ::testing::Range(1u, 5u));

class MutationProperty : public ::testing::TestWithParam<uint32_t> {};

TEST_P(MutationProperty, ByteFlipsParseGracefully) {
  std::string Original = validProgramText(GetParam() + 100);
  std::mt19937 Rng(GetParam() * 911);
  const char Alphabet[] = "%@{}[]=,->0123456789abz_ \n";
  for (int Round = 0; Round < 200; ++Round) {
    std::string Text = Original;
    // 1-3 random byte substitutions.
    int Flips = 1 + Rng() % 3;
    for (int F = 0; F < Flips; ++F)
      Text[Rng() % Text.size()] =
          Alphabet[Rng() % (sizeof(Alphabet) - 1)];
    expectGraceful(Text);
  }
}

TEST_P(MutationProperty, LineDeletionsParseGracefully) {
  std::string Original = validProgramText(GetParam() + 200);
  std::vector<std::string> Lines;
  std::string Cur;
  for (char C : Original) {
    if (C == '\n') {
      Lines.push_back(Cur);
      Cur.clear();
    } else {
      Cur += C;
    }
  }
  std::mt19937 Rng(GetParam() * 977);
  for (int Round = 0; Round < 50; ++Round) {
    size_t Drop = Rng() % Lines.size();
    std::string Text;
    for (size_t I = 0; I < Lines.size(); ++I)
      if (I != Drop)
        Text += Lines[I] + "\n";
    expectGraceful(Text);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationProperty, ::testing::Range(1u, 5u));
