//===- taint_matrix_test.cpp - Spec engine across the full matrix -*- C++ -*-===//
///
/// \file
/// The spec engine's portability contract, asserted over every Table II
/// preset × {sbv, persistent} × {coalesce off, on}:
///
///  - the built-in uaf/dfree/null/leak specs reproduce the legacy
///    \c checker::runCheckers findings bit-identically;
///  - every finding the engine emits (all six builtin rules) carries a
///    witness that \c WitnessVerifier replays successfully — 100% verified,
///    exhaustive and demand mode alike;
///  - demand mode reports the identical finding set as exhaustive mode.
///
/// Witness *routes* may legitimately differ between modes (demand
/// materialises edges lazily); finding identity and replayability must not.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "adt/PointsToCache.h"
#include "core/AnalysisRunner.h"
#include "query/QueryEngine.h"
#include "taint/TaintEngine.h"
#include "taint/WitnessVerifier.h"
#include "workload/BenchmarkSuite.h"

#include <tuple>

using namespace vsfs;
using namespace vsfs::test;

namespace {

using MatrixParam = std::tuple<uint32_t, adt::PtsRepr, bool>;

std::string paramName(const ::testing::TestParamInfo<MatrixParam> &Info) {
  std::string Name = workload::benchmarkSuite()[std::get<0>(Info.param)].Name;
  Name += std::get<1>(Info.param) == adt::PtsRepr::SBV ? "_sbv" : "_persistent";
  Name += std::get<2>(Info.param) ? "_coalesce" : "_plain";
  return Name;
}

} // namespace

class TaintMatrix : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(TaintMatrix, LegacyIdentityAndAllWitnessesVerify) {
  adt::PtsReprScope Repr(std::get<1>(GetParam()));
  workload::BenchSpec Spec = workload::benchmarkSuite()[std::get<0>(GetParam())];
  workload::GenConfig Config = Spec.Config;
  Config.InjectBugs = true;

  auto Module = workload::generateProgram(Config, nullptr);
  core::AnalysisContext Ctx;
  Ctx.module() = std::move(*Module);
  Ctx.build();
  if (std::get<2>(GetParam()))
    Ctx.coalesce();

  const std::vector<taint::TaintSpec> Specs = taint::builtinSpecs();

  // Exhaustive: one vsfs solve feeds the engine, the verifier and the
  // legacy oracle.
  core::AnalysisRunner::RunResult R =
      core::AnalysisRunner::registry().run(Ctx, "vsfs");
  ASSERT_NE(R.Analysis, nullptr);
  std::vector<taint::TaintFinding> Findings =
      taint::runTaint(Ctx.svfg(), *R.Analysis, Specs);

  taint::WitnessVerifier V(Ctx.svfg(), *R.Analysis);
  EXPECT_EQ(V.verifyAll(Specs, Findings), Findings.size()) << Spec.Name;
  for (const taint::TaintFinding &F : Findings)
    EXPECT_EQ(F.V, taint::Verdict::Verified)
        << Spec.Name << ": " << checker::printFinding(Ctx.module(), F.F)
        << " note: " << F.Note;

  // Differential oracle: the projection of the legacy-kind findings equals
  // the legacy engine's output bit for bit. (Each builtin spec reports one
  // kind, so filtering the projection by kind equals running only the
  // legacy specs.)
  std::vector<checker::Finding> Projected =
      taint::toCheckerFindings(Findings);
  std::vector<checker::Finding> LegacyOnly;
  for (const checker::Finding &F : Projected)
    if (checker::checkBit(F.Kind) & checker::LegacyChecks)
      LegacyOnly.push_back(F);
  std::vector<checker::Finding> Oracle =
      checker::runCheckers(Ctx.svfg(), *R.Analysis);
  ASSERT_EQ(LegacyOnly.size(), Oracle.size()) << Spec.Name;
  for (size_t I = 0; I < Oracle.size(); ++I)
    EXPECT_TRUE(LegacyOnly[I] == Oracle[I])
        << Spec.Name << ": finding " << I << " differs:\n  spec:   "
        << checker::printFinding(Ctx.module(), LegacyOnly[I])
        << "\n  legacy: " << checker::printFinding(Ctx.module(), Oracle[I]);

  // Demand: identical finding set, and every demand witness replays
  // against the query engine's oracle view.
  query::QueryEngine::Options QO;
  QO.Solver = "vsfs";
  query::QueryEngine Engine(Ctx, QO);
  std::vector<taint::TaintFinding> Demand =
      query::runTaintDemand(Engine, Specs);
  EXPECT_EQ(taint::toCheckerFindings(Demand), Projected) << Spec.Name;
  taint::WitnessVerifier DV(Ctx.svfg(), Engine);
  EXPECT_EQ(DV.verifyAll(Specs, Demand), Demand.size()) << Spec.Name;
  for (const taint::TaintFinding &F : Demand)
    EXPECT_EQ(F.V, taint::Verdict::Verified)
        << Spec.Name << " (demand): "
        << checker::printFinding(Ctx.module(), F.F) << " note: " << F.Note;
}

INSTANTIATE_TEST_SUITE_P(
    FullMatrix, TaintMatrix,
    ::testing::Combine(::testing::Range(0u, 15u),
                       ::testing::Values(adt::PtsRepr::SBV,
                                         adt::PtsRepr::Persistent),
                       ::testing::Bool()),
    paramName);
