//===- differential_fuzz_test.cpp - Cross-representation fuzzing -*- C++ -*-===//
///
/// The proof that neither the persistent (hash-consed, memoised) points-to
/// representation nor the pre-solve SVFG coalescing pass changes any
/// analysis result: every benchmark preset and a swarm of seeded random
/// workloads are solved under the full {sbv, persistent} × {--coalesce=off,
/// --coalesce=on} matrix, and the complete per-variable points-to relation
/// plus the bug checkers' findings (exhaustive and demand-mode) must be
/// bit-identical across all four cells.
///
/// Within each representation the usual precision laws are asserted too:
/// vsfs ≡ sfs (§IV-E), iter ≡ sfs on call-free programs (the dense oracle),
/// and every flow-sensitive result refines Andersen's (⊆ ander).
///
/// The process-global PointsToCache is cleared between persistent-mode runs
/// (after their pipelines die, per the ID lifetime rules) so the fuzzer's
/// memory stays bounded no matter how many seeds run.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "adt/PointsToCache.h"
#include "checker/Checker.h"
#include "core/AnalysisRunner.h"
#include "query/QueryEngine.h"
#include "workload/BenchmarkSuite.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace vsfs;
using namespace vsfs::test;
using core::AnalysisRunner;

namespace {

/// Everything one (config, representation) run produced, snapshotted into
/// plain containers so comparisons never dangle into a cleared cache.
struct Snapshot {
  std::vector<std::vector<uint32_t>> Ander, Sfs, Vsfs, Iter;
  std::vector<std::string> SfsFindings, VsfsFindings, DemandFindings;
};

std::vector<std::vector<uint32_t>>
snapshotVarPts(const ir::Module &M, const core::PointerAnalysisResult &A) {
  std::vector<std::vector<uint32_t>> Out(M.symbols().numVars());
  for (ir::VarID V = 0; V < M.symbols().numVars(); ++V)
    for (uint32_t O : A.ptsOfVar(V))
      Out[V].push_back(O);
  return Out;
}

std::vector<std::string> findingStrings(const core::AnalysisContext &Ctx,
                                        const core::PointerAnalysisResult &A) {
  std::vector<std::string> Out;
  for (const checker::Finding &F :
       checker::runCheckers(Ctx.svfg(), A, checker::AllChecks))
    Out.push_back(checker::printFinding(Ctx.module(), F));
  return Out;
}

/// Solves ander/sfs/vsfs (and iter when \p RunIter) on \p C under \p Repr,
/// optionally with the SVFG coalesced first (--coalesce=on's path),
/// asserting the intra-representation precision laws, and returns the full
/// result snapshot. Clears the cache afterwards in persistent mode.
Snapshot solveAndCheck(const workload::GenConfig &C, adt::PtsRepr Repr,
                       bool Coalesce, bool RunIter, const char *What) {
  Snapshot Snap;
  {
    adt::PtsReprScope Scope(Repr);
    auto Ctx = buildFromConfig(C, /*ConnectAuxIndirectCalls=*/true);
    if (!Ctx)
      return Snap;
    if (Coalesce) {
      EXPECT_TRUE(Ctx->coalesce()) << What << ": coalesce pass refused";
    }
    const AnalysisRunner &Runner = AnalysisRunner::registry();
    auto Ander = Runner.run(*Ctx, "ander");
    auto Sfs = Runner.run(*Ctx, "sfs");
    auto Vsfs = Runner.run(*Ctx, "vsfs");

    const ir::Module &M = Ctx->module();
    for (ir::VarID V = 0; V < M.symbols().numVars(); ++V) {
      // vsfs ≡ sfs, both refine ander — inside this representation.
      // First mismatch only: one detailed failure beats thousands.
      if (Sfs.Analysis->ptsOfVar(V) != Vsfs.Analysis->ptsOfVar(V)) {
        ADD_FAILURE() << What << " [" << adt::ptsReprName(Repr)
                      << "]: sfs/vsfs disagree at " << ir::printVar(M, V);
        break;
      }
      if (!Ander.Analysis->ptsOfVar(V).contains(Sfs.Analysis->ptsOfVar(V))) {
        ADD_FAILURE() << What << " [" << adt::ptsReprName(Repr)
                      << "]: sfs exceeds ander at " << ir::printVar(M, V);
        break;
      }
    }
    if (RunIter) {
      auto Iter = Runner.run(*Ctx, "iter");
      for (ir::VarID V = 0; V < M.symbols().numVars(); ++V)
        if (Iter.Analysis->ptsOfVar(V) != Sfs.Analysis->ptsOfVar(V)) {
          ADD_FAILURE() << What << " [" << adt::ptsReprName(Repr)
                        << "]: iter/sfs disagree at " << ir::printVar(M, V);
          break;
        }
      Snap.Iter = snapshotVarPts(M, *Iter.Analysis);
    }

    Snap.Ander = snapshotVarPts(M, *Ander.Analysis);
    Snap.Sfs = snapshotVarPts(M, *Sfs.Analysis);
    Snap.Vsfs = snapshotVarPts(M, *Vsfs.Analysis);
    Snap.SfsFindings = findingStrings(*Ctx, *Sfs.Analysis);
    Snap.VsfsFindings = findingStrings(*Ctx, *Vsfs.Analysis);

    // Demand mode under the same representation: the checker client over
    // per-query scoped solves must reproduce the exhaustive findings
    // exactly (docs/QUERIES.md).
    {
      query::QueryEngine::Options QO;
      QO.Solver = "vsfs";
      QO.OnTheFlyCallGraph = false; // Graph carries the aux call edges.
      query::QueryEngine E(*Ctx, QO);
      for (const checker::Finding &F : query::runCheckersDemand(E))
        Snap.DemandFindings.push_back(checker::printFinding(M, F));
      EXPECT_EQ(Snap.DemandFindings, Snap.VsfsFindings)
          << What << " [" << adt::ptsReprName(Repr)
          << "]: demand checker findings differ from exhaustive";
    }
  }
  // All persistent sets died with the scope above; reclaim the interned
  // nodes so a long fuzz run's memory stays bounded.
  if (Repr == adt::PtsRepr::Persistent)
    adt::PointsToCache::get().clear();
  return Snap;
}

void expectSameSnapshots(const Snapshot &Base, const Snapshot &Other,
                         const char *What, const char *Which) {
  EXPECT_EQ(Base.Ander, Other.Ander)
      << What << ": ander differs under " << Which;
  EXPECT_EQ(Base.Sfs, Other.Sfs) << What << ": sfs differs under " << Which;
  EXPECT_EQ(Base.Vsfs, Other.Vsfs)
      << What << ": vsfs differs under " << Which;
  EXPECT_EQ(Base.Iter, Other.Iter)
      << What << ": iter differs under " << Which;
  EXPECT_EQ(Base.SfsFindings, Other.SfsFindings)
      << What << ": sfs checker findings differ under " << Which;
  EXPECT_EQ(Base.VsfsFindings, Other.VsfsFindings)
      << What << ": vsfs checker findings differ under " << Which;
  EXPECT_EQ(Base.DemandFindings, Other.DemandFindings)
      << What << ": demand checker findings differ under " << Which;
}

/// Runs the full 2×2 matrix — {sbv, persistent} × {--coalesce=off, on} —
/// and compares every cell against the sbv/uncoalesced baseline. One
/// baseline beats pairwise: any detected difference names the exact cell.
void runMatrix(const workload::GenConfig &C, bool RunIter,
               const char *What) {
  Snapshot Base = solveAndCheck(C, adt::PtsRepr::SBV, /*Coalesce=*/false,
                                RunIter, What);
  struct Cell {
    adt::PtsRepr Repr;
    bool Coalesce;
    const char *Which;
  };
  for (const Cell &X : {Cell{adt::PtsRepr::SBV, true, "sbv+coalesce"},
                        Cell{adt::PtsRepr::Persistent, false, "persistent"},
                        Cell{adt::PtsRepr::Persistent, true,
                             "persistent+coalesce"}}) {
    Snapshot S = solveAndCheck(C, X.Repr, X.Coalesce, RunIter, What);
    expectSameSnapshots(Base, S, What, X.Which);
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// All 15 benchmark presets, bugs injected so the checkers have findings
//===----------------------------------------------------------------------===//

class PresetDifferential
    : public ::testing::TestWithParam<workload::BenchSpec> {};

TEST_P(PresetDifferential, PersistentMatchesSbv) {
  workload::GenConfig C = GetParam().Config;
  C.InjectBugs = true; // Non-trivial checker findings to compare.
  const char *What = GetParam().Name.c_str();
  // Presets are interprocedural, so iter is only an over-approximation —
  // the dense oracle is asserted on the call-free seeds below instead.
  runMatrix(C, /*RunIter=*/false, What);
}

namespace {

std::string presetName(
    const ::testing::TestParamInfo<workload::BenchSpec> &Info) {
  return Info.param.Name;
}

} // namespace

INSTANTIATE_TEST_SUITE_P(AllPresets, PresetDifferential,
                         ::testing::ValuesIn(workload::benchmarkSuite()),
                         presetName);

//===----------------------------------------------------------------------===//
// Seeded random workloads beyond the presets (call-free: the full chain
// vsfs ≡ sfs ≡ iter ⊆ ander holds exactly, under both representations)
//===----------------------------------------------------------------------===//

class SeedDifferential : public ::testing::TestWithParam<uint32_t> {};

TEST_P(SeedDifferential, FullChainHoldsUnderBothRepresentations) {
  uint32_t Seed = GetParam();
  workload::GenConfig C;
  C.Seed = Seed;
  C.NumFunctions = 0; // Intraprocedural: iter is exact, not approximate.
  C.CallWeight = 0.0;
  C.BlocksPerFunction = 3 + Seed % 7;
  C.InstsPerBlock = 4 + Seed % 6;
  C.NumGlobals = Seed % 10;
  C.HeapFraction = (Seed % 5) * 0.2;

  char What[32];
  std::snprintf(What, sizeof(What), "seed %u", Seed);
  runMatrix(C, /*RunIter=*/true, What);
}

// 56 seeds, disjoint from every seed used elsewhere in the suite.
INSTANTIATE_TEST_SUITE_P(Seeds, SeedDifferential,
                         ::testing::Range(100u, 156u));
