//===- parser_test.cpp - Textual IR parser tests ----------------*- C++ -*-===//

#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"

#include "gtest/gtest.h"

#include <map>

using namespace vsfs;
using namespace vsfs::ir;

namespace {

/// Parses or fails the test with the parser's message.
Module parseOK(const char *Text) {
  Module M;
  std::string Error;
  EXPECT_TRUE(parseModule(Text, M, Error)) << Error;
  auto Violations = verifyModule(M);
  EXPECT_TRUE(Violations.empty()) << Violations.front();
  return M;
}

std::string parseErr(const char *Text) {
  Module M;
  std::string Error;
  EXPECT_FALSE(parseModule(Text, M, Error));
  return Error;
}

const Instruction *findInst(const Module &M, InstKind Kind, FunID F) {
  for (InstID I = 0; I < M.numInstructions(); ++I)
    if (M.inst(I).Kind == Kind && M.inst(I).Parent == F)
      return &M.inst(I);
  return nullptr;
}

} // namespace

TEST(Parser, MinimalFunction) {
  Module M = parseOK(R"(
    func @main() {
    entry:
      %p = alloc
      ret %p
    }
  )");
  EXPECT_EQ(M.numFunctions(), 1u);
  EXPECT_EQ(M.main(), M.lookupFunction("main"));
  const Function &Main = M.function(M.main());
  EXPECT_EQ(M.inst(Main.Entry).Kind, InstKind::FunEntry);
}

TEST(Parser, AllInstructionKinds) {
  Module M = parseOK(R"(
    global @g [fields=2]
    func @helper(%x) {
    entry:
      ret %x
    }
    func @main(%a, %b) {
    entry:
      %p = alloc [heap] [fields=4]
      %c = copy %a
      %f = field %p, 3
      %l = load @g
      store %c -> %p
      %d = call @helper(%a)
      %fp = funcaddr @helper
      %e = call %fp(%b)
      br next, done
    next:
      %m = phi %c, %d
      ret %m
    done:
      ret %e
    }
  )");
  FunID Main = M.lookupFunction("main");
  EXPECT_NE(findInst(M, InstKind::Alloc, Main), nullptr);
  EXPECT_NE(findInst(M, InstKind::Copy, Main), nullptr);
  EXPECT_NE(findInst(M, InstKind::FieldAddr, Main), nullptr);
  EXPECT_NE(findInst(M, InstKind::Load, Main), nullptr);
  EXPECT_NE(findInst(M, InstKind::Store, Main), nullptr);
  EXPECT_NE(findInst(M, InstKind::Phi, Main), nullptr);
  const Instruction *Field = findInst(M, InstKind::FieldAddr, Main);
  EXPECT_EQ(Field->fieldOffset(), 3u);
}

TEST(Parser, AllocAttributes) {
  Module M = parseOK(R"(
    func @main() {
    entry:
      %h = alloc [heap]
      %w = alloc [weak]
      %s = alloc
      ret %s
    }
  )");
  uint32_t Heap = 0, WeakStack = 0, SingletonStack = 0;
  for (ObjID O = 0; O < M.symbols().numObjects(); ++O) {
    const ObjInfo &Info = M.symbols().object(O);
    if (Info.Kind == ObjKind::Heap) {
      ++Heap;
      EXPECT_FALSE(Info.Singleton) << "heap objects are never singletons";
    } else if (Info.Kind == ObjKind::Stack) {
      Info.Singleton ? ++SingletonStack : ++WeakStack;
    }
  }
  EXPECT_EQ(Heap, 1u);
  EXPECT_EQ(WeakStack, 1u);
  EXPECT_EQ(SingletonStack, 1u);
}

TEST(Parser, GlobalInitializers) {
  Module M = parseOK(R"(
    global @table = @f, @g2
    global @g2 [fields=3] [weak]
    func @f(%x) {
    entry:
      ret %x
    }
    func @main() {
    entry:
      %p = load @table
      ret %p
    }
  )");
  // @table initialised with a function address and a later-declared global.
  const Function &GI = M.function(M.globalInit());
  uint32_t Stores = 0;
  for (InstID I : GI.Blocks[0].Insts)
    if (M.inst(I).Kind == InstKind::Store)
      ++Stores;
  EXPECT_EQ(Stores, 2u);
}

TEST(Parser, ForwardLocalReferencesInLoops) {
  // %y is referenced by the phi before its definition (loop-carried).
  Module M = parseOK(R"(
    func @main() {
    entry:
      %a = alloc
      br loop
    loop:
      %x = phi %a, %y
      %y = copy %x
      br loop2
    loop2:
      br loop, done
    done:
      ret %x
    }
  )");
  FunID Main = M.lookupFunction("main");
  const Instruction *Phi = findInst(M, InstKind::Phi, Main);
  ASSERT_NE(Phi, nullptr);
  // Both phi operands resolve to defined variables.
  for (VarID V : Phi->phiSrcs())
    EXPECT_LT(V, M.symbols().numVars());
}

TEST(Parser, CallToMainGetsLinked) {
  Module M = parseOK(R"(
    global @g = @x
    global @x
    func @main() {
    entry:
      %v = load @g
      ret %v
    }
  )");
  // __global_init__ must call main so initialisation reaches it.
  const Function &GI = M.function(M.globalInit());
  bool CallsMain = false;
  for (InstID I : GI.Blocks[0].Insts) {
    const Instruction &Inst = M.inst(I);
    if (Inst.Kind == InstKind::Call && !Inst.isIndirectCall() &&
        Inst.directCallee() == M.main())
      CallsMain = true;
  }
  EXPECT_TRUE(CallsMain);
}

TEST(Parser, RoundTripThroughPrinter) {
  const char *Text = R"(
    global @g [fields=2] = @x
    global @x
    func @callee(%a) {
    entry:
      %r = load %a
      ret %r
    }
    func @main(%argc) {
    entry:
      %p = alloc [heap]
      store @x -> %p
      %q = call @callee(%p)
      br more, done
    more:
      %s = load %p
      ret %s
    done:
      ret %q
    }
  )";
  Module M1 = parseOK(Text);
  std::string Printed = printModule(M1);
  Module M2;
  std::string Error;
  ASSERT_TRUE(parseModule(Printed, M2, Error)) << Error << "\n" << Printed;
  EXPECT_TRUE(verifyModule(M2).empty());
  // Same shape: function count and instruction-kind histogram match.
  EXPECT_EQ(M1.numFunctions(), M2.numFunctions());
  auto Histogram = [](const Module &M) {
    std::map<InstKind, uint32_t> H;
    for (InstID I = 0; I < M.numInstructions(); ++I)
      if (M.inst(I).Kind != InstKind::Phi) // Exit unification may add phis.
        ++H[M.inst(I).Kind];
    return H;
  };
  EXPECT_EQ(Histogram(M1), Histogram(M2));
}

TEST(Parser, ErrorsCarryLineNumbers) {
  std::string E = parseErr("func @f() {\nentry:\n  %p = bogus\n}");
  EXPECT_NE(E.find("line 3"), std::string::npos);
  EXPECT_NE(E.find("bogus"), std::string::npos);
}

TEST(Parser, ErrorUnknownCallee) {
  std::string E = parseErr(R"(
    func @main() {
    entry:
      %r = call @nosuch()
      ret %r
    }
  )");
  EXPECT_NE(E.find("nosuch"), std::string::npos);
}

TEST(Parser, ErrorUnknownGlobalOperand) {
  std::string E = parseErr(R"(
    func @main() {
    entry:
      %c = copy @missing
      ret %c
    }
  )");
  EXPECT_NE(E.find("missing"), std::string::npos);
}

TEST(Parser, ErrorDuplicateFunction) {
  std::string E = parseErr("func @f() {\nentry:\n ret\n}\nfunc @f() {\nentry:\n ret\n}");
  EXPECT_NE(E.find("duplicate"), std::string::npos);
}

TEST(Parser, ErrorDuplicateGlobal) {
  std::string E = parseErr("global @g\nglobal @g");
  EXPECT_NE(E.find("duplicate"), std::string::npos);
}

TEST(Parser, ErrorMissingTerminator) {
  std::string E = parseErr(R"(
    func @main() {
    entry:
      %p = alloc
    }
  )");
  EXPECT_FALSE(E.empty());
}

TEST(Parser, ErrorZeroFields) {
  std::string E = parseErr(R"(
    func @main() {
    entry:
      %p = alloc [fields=0]
      ret %p
    }
  )");
  EXPECT_NE(E.find("field count"), std::string::npos);
}

TEST(Parser, CommentsAndWhitespace) {
  parseOK(R"(
    ; leading comment
    func @main() { ; trailing comment
    entry:
      ; a full-line comment
      %p = alloc ; another
      ret %p
    }
  )");
}

TEST(Parser, VoidReturnAndNoDstCall) {
  Module M = parseOK(R"(
    func @sub() {
    entry:
      ret
    }
    func @main() {
    entry:
      call @sub()
      ret
    }
  )");
  FunID Main = M.lookupFunction("main");
  const Instruction *Call = findInst(M, InstKind::Call, Main);
  ASSERT_NE(Call, nullptr);
  EXPECT_EQ(Call->Dst, InvalidVar);
  EXPECT_EQ(M.inst(M.function(Main).Exit).exitRet(), InvalidVar);
}
