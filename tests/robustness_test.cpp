//===- robustness_test.cpp - Resource governor & degradation ----*- C++ -*-===//
///
/// \file
/// The robustness suite (label: robust; docs/ROBUSTNESS.md): step-exact
/// budget accounting, deterministic fault injection reaching every
/// Termination kind in every governed phase, the degradation ladder
/// (fail / partial / degrade-to-Andersen) across the full benchmark
/// suite, and teardown hygiene — a budget-cancelled run must leak no
/// points-to bytes and must not wedge the interning cache. Everything is
/// deterministic: no sleeps, no oversized inputs; exhaustion is reached
/// by counting polls, not by racing a clock.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "adt/PointsTo.h"
#include "adt/PointsToCache.h"
#include "checker/Checker.h"
#include "core/AnalysisRunner.h"
#include "support/Budget.h"
#include "support/FaultInjection.h"
#include "support/MemUsage.h"
#include "workload/BenchmarkSuite.h"

#include <cstdlib>

using namespace vsfs;
using namespace vsfs::test;

namespace {

/// A pipeline-sized generated program that every solver finishes in
/// milliseconds ungoverned, yet takes well over one poll stride of work —
/// so an injected fault at poll N always lands mid-phase.
workload::GenConfig smallConfig() {
  workload::GenConfig C;
  C.Seed = 11;
  C.NumFunctions = 6;
  return C;
}

/// Builds the pipeline under \p Budget (TestUtil's builders are
/// ungoverned); the caller checks isBuilt()/buildTermination().
std::unique_ptr<core::AnalysisContext>
buildGoverned(const workload::GenConfig &Config, ResourceBudget *Budget) {
  auto Module = workload::generateProgram(Config);
  auto Ctx = std::make_unique<core::AnalysisContext>();
  Ctx->module() = std::move(*Module);
  Ctx->build(/*ConnectAuxIndirectCalls=*/false, {}, Budget);
  return Ctx;
}

/// Every injectable exhaustion kind (everything but Completed).
const Termination AllKinds[] = {Termination::Deadline, Termination::Memory,
                                Termination::Steps, Termination::Fault};

/// RAII guard: no test may leave a fault plan armed for its neighbours.
struct FaultGuard {
  ~FaultGuard() { FaultInjection::get().disarm(); }
};

} // namespace

//===----------------------------------------------------------------------===//
// ResourceBudget unit behaviour
//===----------------------------------------------------------------------===//

TEST(ResourceBudget, NoLimitsNeverExhaust) {
  ResourceBudget B;
  EXPECT_FALSE(B.anyLimit());
  B.beginPhase("vsfs", /*StepGoverned=*/true);
  for (int I = 0; I < 10000; ++I)
    ASSERT_TRUE(B.checkpoint());
  EXPECT_EQ(B.status(), Termination::Completed);
  EXPECT_FALSE(B.exhausted());
  EXPECT_EQ(B.phaseSteps(), 10000u);
}

TEST(ResourceBudget, StepBudgetIsExactWithZeroOvershoot) {
  // The countdown is re-armed to land a poll exactly on the boundary, so
  // the Nth checkpoint — not N+stride — is the first to fail.
  ResourceBudget B({/*Time*/ 0, /*Mem*/ 0, /*Steps*/ 100});
  B.beginPhase("sfs", /*StepGoverned=*/true);
  for (uint64_t Step = 1; Step <= 100; ++Step)
    ASSERT_EQ(B.checkpoint(), Step < 100) << "at step " << Step;
  EXPECT_EQ(B.status(), Termination::Steps);
  EXPECT_EQ(B.phaseSteps(), 100u);
  EXPECT_EQ(B.totalSteps(), 100u);
}

TEST(ResourceBudget, StepBudgetIgnoredInUngovernedPhase) {
  // The auxiliary analysis and the SSA/SVFG builders are never
  // step-governed: the step budget bounds flow-sensitive effort only.
  ResourceBudget B({0, 0, /*Steps*/ 10});
  B.beginPhase("andersen", /*StepGoverned=*/false);
  for (int I = 0; I < 1000; ++I)
    ASSERT_TRUE(B.checkpoint());
  EXPECT_EQ(B.status(), Termination::Completed);
}

TEST(ResourceBudget, StepExhaustionIsPhaseLocal) {
  ResourceBudget B({0, 0, /*Steps*/ 8});
  B.beginPhase("sfs", true);
  while (B.checkpoint())
    ;
  EXPECT_EQ(B.status(), Termination::Steps);
  // A later phase gets a fresh meter.
  B.beginPhase("vsfs", true);
  EXPECT_EQ(B.status(), Termination::Completed);
  EXPECT_TRUE(B.checkpoint());
  EXPECT_EQ(B.phaseSteps(), 1u);
}

TEST(ResourceBudget, DeadlineIsTerminalAcrossPhases) {
  // A 1ns deadline is exceeded by the time any bounded amount of work has
  // polled a few times; no later beginPhase() may resurrect the run.
  ResourceBudget B({/*Time*/ 1e-9, 0, 0});
  B.beginPhase("iter", true);
  bool Exhausted = false;
  for (int I = 0; I < 1000000 && !Exhausted; ++I)
    Exhausted = !B.checkpoint();
  ASSERT_TRUE(Exhausted);
  EXPECT_EQ(B.status(), Termination::Deadline);
  B.beginPhase("vsfs", true);
  EXPECT_EQ(B.status(), Termination::Deadline);
  EXPECT_FALSE(B.checkpoint());
}

TEST(ResourceBudget, MemoryExhaustionRecedesWithThePressure) {
  // Pressure is simulated through the exact byte ledger (no real
  // allocation, so the RSS term stays flat and the test is deterministic).
  uint64_t Baseline = PointsToBytes::live();
  ResourceBudget B({0, /*Mem*/ Baseline + (1u << 20), 0});
  PointsToBytes::retain(8u << 20);
  B.beginPhase("sfs", true);
  EXPECT_FALSE(B.checkpoint());
  EXPECT_EQ(B.status(), Termination::Memory);
  // While pressure stands, a new phase re-trips immediately.
  B.beginPhase("vsfs", true);
  EXPECT_EQ(B.status(), Termination::Memory);
  // The offending state was dropped (as the Degrade policy does): the
  // next phase may proceed.
  PointsToBytes::release(8u << 20);
  B.beginPhase("vsfs", true);
  EXPECT_EQ(B.status(), Termination::Completed);
  EXPECT_TRUE(B.checkpoint());
}

TEST(ResourceBudget, PostExhaustionCheckpointsFailImmediately) {
  // Once exhausted, the stride collapses to 1: a misbehaving loop that
  // keeps polling is told to stop on every single call, and the status
  // stays pinned (checkpoint calls are still counted — they happened).
  ResourceBudget B({0, 0, /*Steps*/ 4});
  B.beginPhase("sfs", true);
  while (B.checkpoint())
    ;
  for (int I = 0; I < 100; ++I)
    EXPECT_FALSE(B.checkpoint());
  EXPECT_EQ(B.status(), Termination::Steps);
}

TEST(ResourceBudget, StatGroupReportsRemainingBudgets) {
  ResourceBudget B({0, 0, /*Steps*/ 100});
  B.beginPhase("vsfs", true);
  for (int I = 0; I < 60; ++I)
    ASSERT_TRUE(B.checkpoint());
  StatGroup G = B.statGroup();
  EXPECT_EQ(G.get("step-budget"), 100u);
  EXPECT_EQ(G.get("phase-steps"), 60u);
  EXPECT_EQ(G.get("steps-remaining"), 40u);
}

//===----------------------------------------------------------------------===//
// Fault injection plumbing
//===----------------------------------------------------------------------===//

TEST(FaultInjectionSpec, ParsesWellFormedSpecs) {
  Termination K;
  uint64_t N;
  std::string Phase;
  ASSERT_TRUE(FaultInjection::parseSpec("fault@1", K, N, Phase));
  EXPECT_EQ(K, Termination::Fault);
  EXPECT_EQ(N, 1u);
  EXPECT_TRUE(Phase.empty());
  ASSERT_TRUE(FaultInjection::parseSpec("deadline@37:vsfs", K, N, Phase));
  EXPECT_EQ(K, Termination::Deadline);
  EXPECT_EQ(N, 37u);
  EXPECT_EQ(Phase, "vsfs");
  ASSERT_TRUE(FaultInjection::parseSpec("memory@2:memssa", K, N, Phase));
  EXPECT_EQ(K, Termination::Memory);
  ASSERT_TRUE(FaultInjection::parseSpec("steps@10", K, N, Phase));
  EXPECT_EQ(K, Termination::Steps);
}

TEST(FaultInjectionSpec, RejectsMalformedSpecs) {
  Termination K;
  uint64_t N;
  std::string Phase;
  for (const char *Bad : {"", "fault", "fault@", "fault@0", "fault@x",
                          "fault@1x", "@1", "bogus@1", "completed@1"})
    EXPECT_FALSE(FaultInjection::parseSpec(Bad, K, N, Phase)) << Bad;
}

TEST(FaultInjection, FiresAtNthMatchingPollThenDisarms) {
  FaultGuard Guard;
  FaultInjection::get().arm(Termination::Fault, 2, "vsfs");
  ResourceBudget B; // No limits: only the injected fault can end it.
  B.beginPhase("sfs", true);
  for (int I = 0; I < 300; ++I) // Several polls in a non-matching phase.
    ASSERT_TRUE(B.checkpoint());
  B.beginPhase("vsfs", true);
  uint64_t Survived = 0;
  while (B.checkpoint())
    ++Survived;
  EXPECT_EQ(B.status(), Termination::Fault);
  // Poll 1 happens at the first checkpoint of the phase, poll 2 one
  // default stride later: the plan fired on the second matching poll.
  EXPECT_EQ(Survived, 64u);
  EXPECT_FALSE(FaultInjection::active()); // One-shot.
}

TEST(FaultInjectionSpec, FormatSpecRoundTripsThroughTheEnvironment) {
  // formatSpec is how the analysis service forwards a client's fault plan
  // over the wire; the grammar must survive format -> env -> armFromEnv
  // for every kind and every phase class, service phases included.
  FaultGuard Guard;
  for (Termination Kind : AllKinds) {
    for (const char *Phase :
         {"", phases::Serve, phases::Cache, phases::Worker, "vsfs"}) {
      std::string Spec = FaultInjection::formatSpec(Kind, 3, Phase);
      Termination K;
      uint64_t N;
      std::string P;
      ASSERT_TRUE(FaultInjection::parseSpec(Spec, K, N, P)) << Spec;
      EXPECT_EQ(K, Kind) << Spec;
      EXPECT_EQ(N, 3u) << Spec;
      EXPECT_EQ(P, Phase) << Spec;
      ::setenv("VSFS_FAULT_INJECT", Spec.c_str(), 1);
      ASSERT_TRUE(FaultInjection::get().armFromEnv()) << Spec;
      EXPECT_TRUE(FaultInjection::active());
      FaultInjection::get().disarm();
    }
  }
  ::unsetenv("VSFS_FAULT_INJECT");
}

TEST(FaultInjection, ServicePhasesAreTargetable) {
  // The daemon opens serve/cache/worker phases around each request on a
  // limit-free budget; a plan filtered to one of them must hold fire in
  // analysis phases and trip at that phase's first poll.
  FaultGuard Guard;
  for (const char *Phase : {phases::Serve, phases::Cache, phases::Worker}) {
    SCOPED_TRACE(Phase);
    FaultInjection::get().arm(Termination::Fault, 1, Phase);
    ResourceBudget B;
    B.beginPhase("vsfs", /*StepGoverned=*/true);
    ASSERT_TRUE(B.checkpoint()); // Non-matching phase: the plan holds fire.
    B.beginPhase(Phase, /*StepGoverned=*/false);
    EXPECT_FALSE(B.checkpoint());
    EXPECT_EQ(B.status(), Termination::Fault);
    EXPECT_FALSE(FaultInjection::active()); // One-shot, as in the daemon.
  }
}

TEST(FaultInjection, ArmFromEnvHonoursAndValidatesTheVariable) {
  FaultGuard Guard;
  ::unsetenv("VSFS_FAULT_INJECT");
  EXPECT_TRUE(FaultInjection::get().armFromEnv()); // Unset: fine, inactive.
  EXPECT_FALSE(FaultInjection::active());
  ::setenv("VSFS_FAULT_INJECT", "deadline@3:sfs", 1);
  EXPECT_TRUE(FaultInjection::get().armFromEnv());
  EXPECT_TRUE(FaultInjection::active());
  FaultInjection::get().disarm();
  // A typo must be a hard error, not a silently disabled fault.
  ::setenv("VSFS_FAULT_INJECT", "deadlin@3", 1);
  EXPECT_FALSE(FaultInjection::get().armFromEnv());
  ::unsetenv("VSFS_FAULT_INJECT");
}

//===----------------------------------------------------------------------===//
// Every Termination kind in every pipeline-construction phase
//===----------------------------------------------------------------------===//

TEST(BuildCancellation, EveryKindInEveryConstructionPhase) {
  FaultGuard Guard;
  for (const char *Phase : {"andersen", "memssa", "svfg"}) {
    for (Termination Kind : AllKinds) {
      SCOPED_TRACE(std::string(Phase) + "/" + terminationName(Kind));
      FaultInjection::get().arm(Kind, 1, Phase);
      ResourceBudget B;
      auto Ctx = buildGoverned(smallConfig(), &B);
      EXPECT_FALSE(Ctx->isBuilt());
      EXPECT_EQ(Ctx->buildTermination(), Kind);
      EXPECT_FALSE(FaultInjection::active());
      // The degradation anchor: once construction is past Andersen, the
      // auxiliary result is complete and remains usable.
      if (std::string(Phase) != "andersen") {
        EXPECT_EQ(Ctx->andersen().termination(), Termination::Completed);
      }
    }
  }
}

TEST(BuildCancellation, CancelledBuildRefusesToRunSolvers) {
  FaultGuard Guard;
  FaultInjection::get().arm(Termination::Fault, 1, "svfg");
  ResourceBudget B;
  auto Ctx = buildGoverned(smallConfig(), &B);
  ASSERT_FALSE(Ctx->isBuilt());
  // One-shot build: retrying without the fault does not resurrect it, and
  // the partial SVFG was discarded rather than left half-initialised.
  EXPECT_FALSE(Ctx->build());
  EXPECT_FALSE(Ctx->isBuilt());
}

//===----------------------------------------------------------------------===//
// Every Termination kind in every flow-sensitive solver
//===----------------------------------------------------------------------===//

TEST(SolverCancellation, EveryKindInEverySolverUnderFailPolicy) {
  FaultGuard Guard;
  const auto &Runner = core::AnalysisRunner::registry();
  for (const char *Solver : {"iter", "sfs", "vsfs"}) {
    for (Termination Kind : AllKinds) {
      SCOPED_TRACE(std::string(Solver) + "/" + terminationName(Kind));
      auto Ctx = buildFromConfig(smallConfig());
      ASSERT_TRUE(Ctx && Ctx->isBuilt());
      FaultInjection::get().arm(Kind, 1, Solver);
      ResourceBudget B;
      core::SolverOptions Opts;
      Opts.Budget = &B;
      Opts.Policy = core::SolverOptions::OnExhaustion::Fail;
      auto R = Runner.run(*Ctx, Solver, Opts);
      EXPECT_EQ(R.Status, Kind);
      EXPECT_FALSE(R.Degraded);
      EXPECT_FALSE(R.Partial);
    }
  }
}

TEST(SolverCancellation, VsfsMeldPreAnalysisIsGoverned) {
  // Poll 1 of the vsfs phase lands inside meld-labelling (it runs before
  // the main solve), so versioning itself is cancellable.
  FaultGuard Guard;
  auto Ctx = buildFromConfig(smallConfig());
  ASSERT_TRUE(Ctx && Ctx->isBuilt());
  FaultInjection::get().arm(Termination::Fault, 1, "vsfs");
  ResourceBudget B;
  core::SolverOptions Opts;
  Opts.Budget = &B;
  auto R = core::AnalysisRunner::registry().run(*Ctx, "vsfs", Opts);
  EXPECT_EQ(R.Status, Termination::Fault);
  EXPECT_EQ(B.status(), Termination::Fault);
}

TEST(SolverCancellation, PartialPolicyKeepsInFlightState) {
  auto Ctx = buildFromConfig(smallConfig());
  ASSERT_TRUE(Ctx && Ctx->isBuilt());
  ResourceBudget B({0, 0, /*Steps*/ 10});
  core::SolverOptions Opts;
  Opts.Budget = &B;
  Opts.Policy = core::SolverOptions::OnExhaustion::Partial;
  auto R = core::AnalysisRunner::registry().run(*Ctx, "vsfs", Opts);
  ASSERT_NE(R.Analysis, nullptr);
  EXPECT_EQ(R.Status, Termination::Steps);
  EXPECT_TRUE(R.Partial);
  EXPECT_FALSE(R.Degraded);
  // The partial state is a sound under-approximation: every target it
  // reports is also in the (over-approximating) Andersen result.
  const auto &M = Ctx->module();
  for (ir::VarID V = 0; V < M.symbols().numVars(); ++V)
    for (uint32_t O : R.Analysis->ptsOfVar(V))
      EXPECT_TRUE(Ctx->andersen().ptsOfVar(V).test(O))
          << "var " << V << " obj " << O;
}

TEST(SolverCancellation, DegradedRunAlwaysCarriesACompletedAux) {
  // Degrading is only sound when the auxiliary analysis finished (an
  // incomplete aux is an under-approximation and no anchor). The one-shot
  // build contract makes an exhausted solve over an incomplete aux
  // unreachable — a cancelled-aux build never reaches run() — so the
  // observable guarantee is: every degraded run's aux reads Completed,
  // and the exhaustion cause is still reported truthfully.
  auto Ctx = buildFromConfig(smallConfig());
  ASSERT_TRUE(Ctx && Ctx->isBuilt());
  ResourceBudget B({0, 0, /*Steps*/ 10});
  core::SolverOptions Opts;
  Opts.Budget = &B;
  Opts.Policy = core::SolverOptions::OnExhaustion::Degrade;
  auto R = core::AnalysisRunner::registry().run(*Ctx, "vsfs", Opts);
  ASSERT_TRUE(R.Degraded);
  EXPECT_EQ(R.Status, Termination::Steps);
  EXPECT_EQ(Ctx->andersen().termination(), Termination::Completed);
  EXPECT_EQ(R.Analysis->termination(), Termination::Completed);
}

//===----------------------------------------------------------------------===//
// Degradation across the full benchmark suite
//===----------------------------------------------------------------------===//

TEST(Degradation, DegradedVsfsEqualsAndersenOnEveryPreset) {
  const auto &Runner = core::AnalysisRunner::registry();
  for (const auto &Spec : workload::benchmarkSuite()) {
    SCOPED_TRACE(Spec.Name);
    auto Module = workload::generateProgram(Spec.Config);
    auto Ctx = std::make_unique<core::AnalysisContext>();
    Ctx->module() = std::move(*Module);
    // Build phases are not step-governed, so a 1-step budget still lets
    // the whole pipeline (and the degradation anchor) complete.
    ResourceBudget B({0, 0, /*Steps*/ 1});
    ASSERT_TRUE(Ctx->build(false, {}, &B));
    core::SolverOptions Opts;
    Opts.Budget = &B;
    Opts.Policy = core::SolverOptions::OnExhaustion::Degrade;
    auto R = Runner.run(*Ctx, "vsfs", Opts);
    ASSERT_NE(R.Analysis, nullptr);
    EXPECT_EQ(R.Status, Termination::Steps);
    EXPECT_TRUE(R.Degraded);
    // The substituted result IS the auxiliary analysis: identical
    // points-to sets for every variable.
    const auto &M = Ctx->module();
    for (ir::VarID V = 0; V < M.symbols().numVars(); ++V)
      ASSERT_EQ(R.Analysis->ptsOfVar(V), Ctx->andersen().ptsOfVar(V))
          << "var " << V;
  }
}

TEST(Degradation, AuxPrecisionFlagIsMetadataOnly) {
  // The CLI stamps AuxPrecision on every finding of a degraded run; the
  // flag must surface in the rendering yet never affect identity, so
  // degraded finding sets stay comparable against full-precision ones.
  auto Ctx = buildFromConfig(smallConfig());
  ASSERT_TRUE(Ctx && Ctx->isBuilt());
  checker::Finding F{checker::CheckKind::UseAfterFree, /*Sink=*/1,
                     /*Obj=*/0, /*Source=*/0};
  checker::Finding Flagged = F;
  Flagged.AuxPrecision = true;
  EXPECT_EQ(F, Flagged);
  EXPECT_FALSE(F < Flagged);
  EXPECT_FALSE(Flagged < F);
  std::string Plain = checker::printFinding(Ctx->module(), F);
  std::string Marked = checker::printFinding(Ctx->module(), Flagged);
  EXPECT_EQ(Plain.find("[aux-precision]"), std::string::npos);
  EXPECT_NE(Marked.find("[aux-precision]"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Teardown hygiene after cancellation
//===----------------------------------------------------------------------===//

namespace {

/// Runs a governed, step-exhausted vsfs solve to mid-flight, then tears
/// everything down; the caller brackets it with byte accounting.
void exhaustAndTearDown() {
  auto Module = workload::generateProgram(smallConfig());
  auto Ctx = std::make_unique<core::AnalysisContext>();
  Ctx->module() = std::move(*Module);
  ResourceBudget B({0, 0, /*Steps*/ 50});
  ASSERT_TRUE(Ctx->build(false, {}, &B));
  core::SolverOptions Opts;
  Opts.Budget = &B;
  auto R = core::AnalysisRunner::registry().run(*Ctx, "vsfs", Opts);
  ASSERT_EQ(R.Status, Termination::Steps);
}

} // namespace

TEST(TeardownHygiene, NoLiveByteLeakAfterExhaustionSbv) {
  ASSERT_EQ(adt::pointsToRepr(), adt::PtsRepr::SBV);
  uint64_t Before = PointsToBytes::live();
  exhaustAndTearDown();
  EXPECT_EQ(PointsToBytes::live(), Before);
}

TEST(TeardownHygiene, NoLiveByteLeakAfterExhaustionPersistent) {
  adt::PtsRepr Old = adt::pointsToRepr();
  adt::setPointsToRepr(adt::PtsRepr::Persistent);
  auto &Cache = adt::PointsToCache::get();
  Cache.drainIfIdle(); // Start from a clean cache.
  uint64_t Before = PointsToBytes::live();
  exhaustAndTearDown();
  // Handles are dead; the interned storage drains, restoring the
  // baseline — a cancelled run must not wedge the process-global cache.
  EXPECT_EQ(adt::livePersistentSets(), 0u);
  EXPECT_TRUE(Cache.drainIfIdle());
  EXPECT_EQ(PointsToBytes::live(), Before);
  adt::setPointsToRepr(Old);
}

TEST(TeardownHygiene, DrainFiresOnlyWhenNoHandlesAreLive) {
  adt::PtsRepr Old = adt::pointsToRepr();
  adt::setPointsToRepr(adt::PtsRepr::Persistent);
  auto &Cache = adt::PointsToCache::get();
  Cache.drainIfIdle();
  uint64_t Drains0 = Cache.drains();
  {
    PointsTo P;
    P.set(3);
    P.set(999);
    ASSERT_GT(adt::livePersistentSets(), 0u);
    // A drain while any handle is live would dangle its interned bits.
    EXPECT_FALSE(Cache.drainIfIdle());
    EXPECT_EQ(Cache.drains(), Drains0);
  }
  EXPECT_EQ(adt::livePersistentSets(), 0u);
  EXPECT_TRUE(Cache.drainIfIdle());
  EXPECT_EQ(Cache.drains(), Drains0 + 1);
  // Idle AND empty (just the interned empty set): nothing to drain.
  EXPECT_FALSE(Cache.drainIfIdle());
  adt::setPointsToRepr(Old);
}

//===----------------------------------------------------------------------===//
// PointsToBytes underflow clamp (satellite of the memory governor: a
// wrapped counter would read as instant Memory exhaustion)
//===----------------------------------------------------------------------===//

TEST(PointsToBytesAccounting, RetainReleaseRoundTrips) {
  uint64_t Before = PointsToBytes::live();
  PointsToBytes::retain(4096);
  EXPECT_EQ(PointsToBytes::live(), Before + 4096);
  PointsToBytes::release(4096);
  EXPECT_EQ(PointsToBytes::live(), Before);
}

#ifdef NDEBUG
TEST(PointsToBytesAccounting, ReleaseUnderflowClampsInsteadOfWrapping) {
  uint64_t Before = PointsToBytes::live();
  PointsToBytes::retain(16);
  PointsToBytes::release(PointsToBytes::live() + 1024);
  EXPECT_EQ(PointsToBytes::live(), 0u); // Clamped, not ~0ull.
  PointsToBytes::retain(Before); // Restore the global ledger for peers.
}
#else
TEST(PointsToBytesAccountingDeathTest, ReleaseUnderflowAssertsInDebug) {
  EXPECT_DEATH(
      {
        PointsToBytes::retain(16);
        PointsToBytes::release(PointsToBytes::live() + 1024);
      },
      "underflow");
}
#endif
