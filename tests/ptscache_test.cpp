//===- ptscache_test.cpp - Hash-consed points-to store tests ----*- C++ -*-===//
///
/// The interning invariants of adt::PointsToCache (structural equality ⇔
/// same PointsToID), the correctness of its memoised set algebra against
/// plain SparseBitVector oracles, the empty/singleton/self-operand edge
/// cases, and the behaviour of the PersistentPointsTo / hybrid PointsTo
/// wrappers built on top of it.
///
//===----------------------------------------------------------------------===//

#include "adt/PersistentPointsTo.h"
#include "adt/PointsTo.h"
#include "adt/PointsToCache.h"
#include "adt/SparseBitVector.h"

#include "gtest/gtest.h"

#include <vector>

using namespace vsfs;
using namespace vsfs::adt;

namespace {

/// Deterministic pseudo-random bit sets (no global RNG state between tests).
class Lcg {
public:
  explicit Lcg(uint64_t Seed) : State(Seed * 2654435761u + 1) {}
  uint32_t next(uint32_t Bound) {
    State = State * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<uint32_t>((State >> 33) % Bound);
  }

private:
  uint64_t State;
};

SparseBitVector randomSet(Lcg &Rng, uint32_t MaxBit, uint32_t MaxBits) {
  SparseBitVector S;
  uint32_t N = Rng.next(MaxBits + 1);
  for (uint32_t I = 0; I < N; ++I)
    S.set(Rng.next(MaxBit));
  return S;
}

PointsToCache &cache() { return PointsToCache::get(); }

} // namespace

//===----------------------------------------------------------------------===//
// Interning invariants
//===----------------------------------------------------------------------===//

TEST(PointsToCacheIntern, EmptySetIsAlwaysIDZero) {
  EXPECT_EQ(cache().intern(SparseBitVector()), EmptyPointsToID);
  EXPECT_TRUE(cache().bits(EmptyPointsToID).empty());
}

TEST(PointsToCacheIntern, StructuralEqualityImpliesSameID) {
  Lcg Rng(42);
  for (int Round = 0; Round < 100; ++Round) {
    SparseBitVector A = randomSet(Rng, 400, 30);
    SparseBitVector B = A; // Structurally equal, distinct object.
    PointsToID IdA = cache().intern(A);
    PointsToID IdB = cache().intern(B);
    EXPECT_EQ(IdA, IdB);
    EXPECT_EQ(cache().bits(IdA), A);
  }
}

TEST(PointsToCacheIntern, DistinctSetsGetDistinctIDs) {
  SparseBitVector A, B;
  A.set(1);
  B.set(2);
  PointsToID IdA = cache().intern(A);
  PointsToID IdB = cache().intern(B);
  EXPECT_NE(IdA, IdB);
  EXPECT_NE(IdA, EmptyPointsToID);
  EXPECT_NE(IdB, EmptyPointsToID);
  EXPECT_EQ(cache().bits(IdA), A);
  EXPECT_EQ(cache().bits(IdB), B);
}

TEST(PointsToCacheIntern, ReinterningIsAHit) {
  SparseBitVector S;
  S.set(77);
  S.set(301);
  PointsToID First = cache().intern(S);
  uint64_t HitsBefore = cache().internHits();
  PointsToID Second = cache().intern(S);
  EXPECT_EQ(First, Second);
  EXPECT_GT(cache().internHits(), HitsBefore);
}

//===----------------------------------------------------------------------===//
// Memoised algebra vs SparseBitVector oracles
//===----------------------------------------------------------------------===//

TEST(PointsToCacheAlgebra, UnionMatchesOracle) {
  Lcg Rng(7);
  for (int Round = 0; Round < 200; ++Round) {
    SparseBitVector A = randomSet(Rng, 500, 40);
    SparseBitVector B = randomSet(Rng, 500, 40);
    SparseBitVector Oracle = A;
    Oracle.unionWith(B);
    PointsToID R = cache().unionIDs(cache().intern(A), cache().intern(B));
    EXPECT_EQ(cache().bits(R), Oracle);
    // Interning invariant on the result too.
    EXPECT_EQ(R, cache().intern(Oracle));
  }
}

TEST(PointsToCacheAlgebra, IntersectMatchesOracle) {
  Lcg Rng(8);
  for (int Round = 0; Round < 200; ++Round) {
    SparseBitVector A = randomSet(Rng, 300, 40); // Denser: overlaps happen.
    SparseBitVector B = randomSet(Rng, 300, 40);
    SparseBitVector Oracle = A;
    Oracle.intersectWith(B);
    PointsToID R = cache().intersectIDs(cache().intern(A), cache().intern(B));
    EXPECT_EQ(cache().bits(R), Oracle);
  }
}

TEST(PointsToCacheAlgebra, SubtractMatchesOracle) {
  Lcg Rng(9);
  for (int Round = 0; Round < 200; ++Round) {
    SparseBitVector A = randomSet(Rng, 300, 40);
    SparseBitVector B = randomSet(Rng, 300, 40);
    SparseBitVector Oracle = A;
    Oracle.intersectWithComplement(B);
    PointsToID R = cache().subtractIDs(cache().intern(A), cache().intern(B));
    EXPECT_EQ(cache().bits(R), Oracle);
  }
}

TEST(PointsToCacheAlgebra, ContainsAndIntersectsMatchOracle) {
  Lcg Rng(10);
  for (int Round = 0; Round < 200; ++Round) {
    SparseBitVector A = randomSet(Rng, 200, 30);
    SparseBitVector B = randomSet(Rng, 200, 10);
    PointsToID IdA = cache().intern(A);
    PointsToID IdB = cache().intern(B);
    EXPECT_EQ(cache().containsIDs(IdA, IdB), A.contains(B));
    EXPECT_EQ(cache().intersectsIDs(IdA, IdB), A.intersects(B));
    // Memoised answers are stable.
    EXPECT_EQ(cache().containsIDs(IdA, IdB), A.contains(B));
    EXPECT_EQ(cache().intersectsIDs(IdA, IdB), A.intersects(B));
  }
}

TEST(PointsToCacheAlgebra, RepeatedUnionIsAMemoHit) {
  SparseBitVector A, B;
  A.set(1000);
  B.set(2000);
  PointsToID IdA = cache().intern(A);
  PointsToID IdB = cache().intern(B);
  PointsToID First = cache().unionIDs(IdA, IdB);
  uint64_t HitsBefore = cache().opHits();
  PointsToID Second = cache().unionIDs(IdA, IdB);
  PointsToID Swapped = cache().unionIDs(IdB, IdA); // Commutative memo.
  EXPECT_EQ(First, Second);
  EXPECT_EQ(First, Swapped);
  EXPECT_GE(cache().opHits(), HitsBefore + 2);
}

TEST(PointsToCacheAlgebra, WithAndWithoutBitMatchOracle) {
  Lcg Rng(11);
  for (int Round = 0; Round < 100; ++Round) {
    SparseBitVector A = randomSet(Rng, 300, 20);
    uint32_t Bit = Rng.next(300);
    PointsToID IdA = cache().intern(A);

    SparseBitVector WithOracle = A;
    WithOracle.set(Bit);
    EXPECT_EQ(cache().bits(cache().withBit(IdA, Bit)), WithOracle);

    SparseBitVector WithoutOracle = A;
    WithoutOracle.reset(Bit);
    EXPECT_EQ(cache().bits(cache().withoutBit(IdA, Bit)), WithoutOracle);

    // A set that already has / lacks the bit is returned unchanged.
    EXPECT_EQ(cache().withBit(cache().intern(WithOracle), Bit),
              cache().intern(WithOracle));
    EXPECT_EQ(cache().withoutBit(cache().intern(WithoutOracle), Bit),
              cache().intern(WithoutOracle));
  }
}

//===----------------------------------------------------------------------===//
// Edge cases: empty, singleton, self operands
//===----------------------------------------------------------------------===//

TEST(PointsToCacheEdges, SelfAndEmptyOperandsShortCircuit) {
  SparseBitVector A;
  A.set(5);
  A.set(140);
  PointsToID IdA = cache().intern(A);

  EXPECT_EQ(cache().unionIDs(IdA, IdA), IdA);
  EXPECT_EQ(cache().unionIDs(IdA, EmptyPointsToID), IdA);
  EXPECT_EQ(cache().unionIDs(EmptyPointsToID, IdA), IdA);

  EXPECT_EQ(cache().intersectIDs(IdA, IdA), IdA);
  EXPECT_EQ(cache().intersectIDs(IdA, EmptyPointsToID), EmptyPointsToID);
  EXPECT_EQ(cache().intersectIDs(EmptyPointsToID, IdA), EmptyPointsToID);

  EXPECT_EQ(cache().subtractIDs(IdA, IdA), EmptyPointsToID);
  EXPECT_EQ(cache().subtractIDs(IdA, EmptyPointsToID), IdA);
  EXPECT_EQ(cache().subtractIDs(EmptyPointsToID, IdA), EmptyPointsToID);

  EXPECT_TRUE(cache().containsIDs(IdA, IdA));
  EXPECT_TRUE(cache().containsIDs(IdA, EmptyPointsToID));
  EXPECT_FALSE(cache().containsIDs(EmptyPointsToID, IdA));
  EXPECT_TRUE(cache().containsIDs(EmptyPointsToID, EmptyPointsToID));

  EXPECT_TRUE(cache().intersectsIDs(IdA, IdA));
  EXPECT_FALSE(cache().intersectsIDs(IdA, EmptyPointsToID));
  EXPECT_FALSE(cache().intersectsIDs(EmptyPointsToID, EmptyPointsToID));
}

TEST(PointsToCacheEdges, SingletonRoundTrips) {
  for (uint32_t Bit : {0u, 1u, 63u, 64u, 127u, 128u, 5000u}) {
    PersistentPointsTo S = PersistentPointsTo::singleton(Bit);
    EXPECT_EQ(S.count(), 1u);
    EXPECT_TRUE(S.test(Bit));
    EXPECT_EQ(S.findFirst(), Bit);
    // Same singleton again: same ID.
    EXPECT_EQ(S, PersistentPointsTo::singleton(Bit));
    // Removing the bit yields the empty set (ID 0).
    EXPECT_EQ(S.without(Bit).id(), EmptyPointsToID);
  }
}

//===----------------------------------------------------------------------===//
// PersistentPointsTo wrapper
//===----------------------------------------------------------------------===//

TEST(PersistentPointsToTest, EqualityIsStructural) {
  PersistentPointsTo A =
      PersistentPointsTo::singleton(3).with(10).with(200);
  PersistentPointsTo B =
      PersistentPointsTo::singleton(200).with(3).with(10);
  EXPECT_EQ(A, B); // Same bits, however computed.
  EXPECT_EQ(A.id(), B.id());
  EXPECT_NE(A, A.with(11));
}

TEST(PersistentPointsToTest, IterationYieldsSortedBits) {
  PersistentPointsTo S = PersistentPointsTo::singleton(300)
                             .with(2)
                             .with(150)
                             .with(64);
  std::vector<uint32_t> Bits;
  for (uint32_t Bit : S)
    Bits.push_back(Bit);
  EXPECT_EQ(Bits, (std::vector<uint32_t>{2, 64, 150, 300}));
}

//===----------------------------------------------------------------------===//
// Hybrid PointsTo facade: persistent mode behaves exactly like sbv mode
//===----------------------------------------------------------------------===//

TEST(HybridPointsTo, MutationApiAgreesAcrossRepresentations) {
  Lcg Rng(21);
  for (int Round = 0; Round < 50; ++Round) {
    PtsReprScope Scope(PtsRepr::Persistent);
    PointsTo P; // Latched persistent.
    EXPECT_TRUE(P.isPersistent());
    SparseBitVector Oracle;
    for (int Op = 0; Op < 40; ++Op) {
      uint32_t Bit = Rng.next(200);
      if (Rng.next(4) == 0)
        EXPECT_EQ(P.reset(Bit), Oracle.reset(Bit));
      else
        EXPECT_EQ(P.set(Bit), Oracle.set(Bit));
    }
    EXPECT_EQ(P.bits(), Oracle);
    EXPECT_EQ(P.count(), Oracle.count());
    EXPECT_EQ(P.hash(), Oracle.hash());
  }
}

TEST(HybridPointsTo, BinaryOpsAgreeAcrossRepresentations) {
  Lcg Rng(22);
  for (int Round = 0; Round < 50; ++Round) {
    // Build the same two operand sets in both representations.
    SparseBitVector RawA = randomSet(Rng, 300, 25);
    SparseBitVector RawB = randomSet(Rng, 300, 25);
    auto Build = [](const SparseBitVector &Bits, PtsRepr Repr) {
      PtsReprScope Scope(Repr);
      PointsTo P;
      for (uint32_t Bit : Bits)
        P.set(Bit);
      return P;
    };
    PointsTo SbvA = Build(RawA, PtsRepr::SBV);
    PointsTo SbvB = Build(RawB, PtsRepr::SBV);
    PointsTo PerA = Build(RawA, PtsRepr::Persistent);
    PointsTo PerB = Build(RawB, PtsRepr::Persistent);

    // Mixed-representation equality and tests.
    EXPECT_EQ(SbvA, PerA);
    EXPECT_EQ(PerB, SbvB);
    EXPECT_EQ(PerA.contains(PerB), SbvA.contains(SbvB));
    EXPECT_EQ(PerA.contains(SbvB), SbvA.contains(SbvB));
    EXPECT_EQ(PerA.intersects(PerB), SbvA.intersects(SbvB));

    // The mutating algebra returns the same changed-bit and result.
    PointsTo U1 = SbvA, U2 = PerA;
    EXPECT_EQ(U1.unionWith(SbvB), U2.unionWith(PerB));
    EXPECT_EQ(U1, U2);

    PointsTo I1 = SbvA, I2 = PerA;
    EXPECT_EQ(I1.intersectWith(SbvB), I2.intersectWith(PerB));
    EXPECT_EQ(I1, I2);

    PointsTo D1 = SbvA, D2 = PerA;
    EXPECT_EQ(D1.intersectWithComplement(SbvB),
              D2.intersectWithComplement(PerB));
    EXPECT_EQ(D1, D2);
  }
}

TEST(HybridPointsTo, SelfOperandsAreNoChange) {
  PtsReprScope Scope(PtsRepr::Persistent);
  PointsTo P;
  P.set(9);
  P.set(130);
  PointsTo Copy = P;
  EXPECT_FALSE(P.unionWith(Copy));
  EXPECT_FALSE(P.intersectWith(Copy));
  EXPECT_TRUE(P.intersectWithComplement(Copy));
  EXPECT_TRUE(P.empty());
}

//===----------------------------------------------------------------------===//
// Instrumentation and ID lifetime
//===----------------------------------------------------------------------===//

TEST(PointsToCacheStats, GroupReportsAllCountersInKeyOrder) {
  StatGroup G = cache().statGroup();
  EXPECT_EQ(G.name(), "ptscache");
  std::vector<std::string> Keys;
  for (const auto &[Key, Value] : G) {
    (void)Value;
    Keys.push_back(Key);
  }
  EXPECT_EQ(Keys, (std::vector<std::string>{
                      "baseline-bytes", "drains", "intern-hits",
                      "intern-misses", "interned-bytes", "op-cache-hits",
                      "op-cache-misses", "unique-sets"}));
  EXPECT_EQ(G.lookup("unique-sets"), cache().numUniqueSets());
}

TEST(PointsToCacheStats, InterningDeduplicatesBaselineBytes) {
  SparseBitVector S;
  S.set(42);
  S.set(314);
  uint64_t BaselineBefore = cache().baselineBytes();
  uint64_t InternedBefore = cache().internedBytes();
  PointsToID First = cache().intern(S);
  uint64_t InternedAfterFirst = cache().internedBytes();
  for (int I = 0; I < 10; ++I)
    EXPECT_EQ(cache().intern(S), First);
  // Eleven requests' worth of baseline, at most one node's worth interned.
  EXPECT_GE(cache().baselineBytes() - BaselineBefore,
            11 * S.capacityBytes());
  EXPECT_EQ(cache().internedBytes(), InternedAfterFirst);
  EXPECT_GE(InternedAfterFirst, InternedBefore);
}

// Runs last in this file by convention: clear() invalidates every ID the
// tests above created.
TEST(PointsToCacheStats, ZClearKeepsOnlyTheEmptySet) {
  SparseBitVector S;
  S.set(1);
  PointsToID Id = cache().intern(S);
  EXPECT_NE(Id, EmptyPointsToID);
  EXPECT_GT(cache().numUniqueSets(), 1u);

  cache().clear();
  EXPECT_EQ(cache().numUniqueSets(), 1u); // Node 0 survives.
  EXPECT_TRUE(cache().bits(EmptyPointsToID).empty());
  EXPECT_EQ(cache().opHits(), 0u);
  EXPECT_EQ(cache().opMisses(), 0u);
  EXPECT_EQ(cache().internedBytes(), 0u);

  // The store works normally after a clear.
  PointsToID Fresh = cache().intern(S);
  EXPECT_NE(Fresh, EmptyPointsToID);
  EXPECT_EQ(cache().bits(Fresh), S);
}

//===----------------------------------------------------------------------===//
// Daemon-safe lifecycle (docs/SERVICE.md): session scoping and reset
//===----------------------------------------------------------------------===//

TEST(PointsToCacheLifecycle, SessionScopeBlocksDrainUntilIdle) {
  cache().resetLifecycle();
  SparseBitVector S;
  S.set(7);
  cache().intern(S);
  ASSERT_GT(cache().numUniqueSets(), 1u);
  {
    CacheSessionScope Session;
    // A drain mid-session is a lifecycle bug: with asserts compiled in it
    // dies loudly; in any build it must refuse rather than invalidate
    // interned IDs under a live request.
#if !defined(NDEBUG) && defined(GTEST_HAS_DEATH_TEST)
    EXPECT_DEATH(cache().drainIfIdle(), "session is live");
#else
    EXPECT_FALSE(cache().drainIfIdle());
#endif
    EXPECT_GT(cache().numUniqueSets(), 1u); // Nothing was invalidated.
  }
  EXPECT_TRUE(cache().drainIfIdle()); // Idle again: the drain proceeds.
}

TEST(PointsToCacheLifecycle, SessionScopesNest) {
  EXPECT_EQ(liveCacheSessions(), 0u);
  {
    CacheSessionScope Outer;
    CacheSessionScope Inner;
    EXPECT_EQ(liveCacheSessions(), 2u);
  }
  EXPECT_EQ(liveCacheSessions(), 0u);
}

TEST(PointsToCacheLifecycle, ResetLifecycleRestoresProcessStartState) {
  // A daemon worker calls this between requests so its next request sees
  // byte-identical ptscache stats to a cold process — including drains=0,
  // which clear()/drainIfIdle() deliberately do not reset.
  cache().resetLifecycle();
  SparseBitVector S;
  S.set(3);
  cache().intern(S);
  EXPECT_TRUE(cache().drainIfIdle());
  EXPECT_EQ(cache().statGroup().lookup("drains"), 1u);
  cache().intern(S);
  cache().resetLifecycle();
  EXPECT_EQ(cache().numUniqueSets(), 1u); // Only the empty set survives.
  EXPECT_EQ(cache().statGroup().lookup("drains"), 0u);
  EXPECT_EQ(cache().internedBytes(), 0u);
}
