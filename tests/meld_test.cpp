//===- meld_test.cpp - Generic meld labelling tests -------------*- C++ -*-===//
///
/// §IV-B: the prelabelling extension. Includes the paper's Figure 4 example
/// and a property test checking the semantic characterisation: after meld
/// labelling with set-union as the meld operator, a node's label equals the
/// set of prelabels of the prelabelled nodes that transitively reach it.
///
//===----------------------------------------------------------------------===//

#include "adt/SparseBitVector.h"
#include "core/MeldLabelling.h"

#include "gtest/gtest.h"

#include <random>

using namespace vsfs;
using vsfs::adt::SparseBitVector;
using vsfs::core::meldLabel;
using vsfs::graph::AdjacencyGraph;

namespace {

/// The meld operator instantiation used by object versioning.
bool meldUnion(SparseBitVector &Dst, const SparseBitVector &Src) {
  return Dst.unionWith(Src);
}

SparseBitVector label(std::initializer_list<uint32_t> Bits) {
  SparseBitVector L;
  for (uint32_t B : Bits)
    L.set(B);
  return L;
}

} // namespace

TEST(MeldLabelling, ChainPropagatesLabel) {
  AdjacencyGraph G(3);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  std::vector<SparseBitVector> Pre(3);
  Pre[0] = label({7});
  auto Labels = meldLabel(G, Pre, meldUnion);
  EXPECT_EQ(Labels[0], label({7}));
  EXPECT_EQ(Labels[1], label({7}));
  EXPECT_EQ(Labels[2], label({7}));
}

TEST(MeldLabelling, UnreachableNodesKeepIdentity) {
  AdjacencyGraph G(3);
  G.addEdge(0, 1);
  std::vector<SparseBitVector> Pre(3);
  Pre[0] = label({1});
  auto Labels = meldLabel(G, Pre, meldUnion);
  EXPECT_TRUE(Labels[2].empty()) << "node 2 is reached by no prelabel";
}

TEST(MeldLabelling, MeldAtJoin) {
  // 0 and 1 prelabelled; both reach 2.
  AdjacencyGraph G(3);
  G.addEdge(0, 2);
  G.addEdge(1, 2);
  std::vector<SparseBitVector> Pre(3);
  Pre[0] = label({1});
  Pre[1] = label({2});
  auto Labels = meldLabel(G, Pre, meldUnion);
  EXPECT_EQ(Labels[2], label({1, 2}));
}

TEST(MeldLabelling, CyclesConverge) {
  // A cycle through prelabelled and unlabelled nodes stabilises.
  AdjacencyGraph G(4);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  G.addEdge(2, 3);
  G.addEdge(3, 1);
  std::vector<SparseBitVector> Pre(4);
  Pre[0] = label({5});
  Pre[2] = label({9});
  auto Labels = meldLabel(G, Pre, meldUnion);
  EXPECT_EQ(Labels[1], label({5, 9}));
  EXPECT_EQ(Labels[2], label({5, 9}));
  EXPECT_EQ(Labels[3], label({5, 9}));
}

TEST(MeldLabelling, FrozenNodesNeverChange) {
  AdjacencyGraph G(3);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  std::vector<SparseBitVector> Pre(3);
  Pre[0] = label({1});
  Pre[1] = label({2}); // Frozen: a δ node keeps its prelabel.
  std::vector<bool> Frozen{false, true, false};
  auto Labels = meldLabel(G, Pre, Frozen, meldUnion);
  EXPECT_EQ(Labels[1], label({2}));
  // Downstream still melds from the frozen node's (unchanged) label.
  EXPECT_EQ(Labels[2], label({2}));
}

TEST(MeldLabelling, Figure4) {
  // The paper's Figure 4: an 8-node graph prelabelled with two patterns
  // (here bits 1 and 2). Nodes 5 and 8 finish with the same melded label
  // despite different incoming neighbours, because the same *set* of
  // prelabels reaches them.
  //
  //   1 -> 3 -> 4 -> 5        (1 prelabelled ●)
  //   2 -> 3,  2 -> 6 -> 7 -> 8,  4 -> 7,  6 -> 8   (2 prelabelled ⊗)
  // We number nodes 0..7 for 1..8.
  AdjacencyGraph G(8);
  auto E = [&G](uint32_t A, uint32_t B) { G.addEdge(A - 1, B - 1); };
  E(1, 3);
  E(2, 3);
  E(3, 4);
  E(4, 5);
  E(2, 6);
  E(6, 7);
  E(4, 7);
  E(7, 8);
  E(6, 8);
  std::vector<SparseBitVector> Pre(8);
  Pre[0] = label({1});
  Pre[1] = label({2});
  auto Labels = meldLabel(G, Pre, meldUnion);
  // Nodes reached by both prelabels share the meld ●⊗.
  EXPECT_EQ(Labels[2], label({1, 2})); // 3
  EXPECT_EQ(Labels[3], label({1, 2})); // 4
  EXPECT_EQ(Labels[4], label({1, 2})); // 5
  // Node 6 only sees ⊗.
  EXPECT_EQ(Labels[5], label({2}));
  // Nodes 7 and 8: different incoming neighbours (4,6 vs 7,6) but the same
  // reaching prelabel set -> equal labels (the paper's observation).
  EXPECT_EQ(Labels[6], label({1, 2}));
  EXPECT_EQ(Labels[7], label({1, 2}));
  EXPECT_EQ(Labels[6], Labels[7]);
}

class MeldProperty : public ::testing::TestWithParam<uint32_t> {};

TEST_P(MeldProperty, LabelEqualsReachingPrelabels) {
  std::mt19937 Rng(GetParam() * 613 + 11);
  const uint32_t N = 20 + GetParam() % 15;
  AdjacencyGraph G(N);
  for (uint32_t I = 0; I < 3 * N; ++I)
    G.addEdge(Rng() % N, Rng() % N);

  std::vector<SparseBitVector> Pre(N);
  std::vector<uint32_t> PrelabelOf(N, UINT32_MAX);
  uint32_t NextBit = 0;
  for (uint32_t I = 0; I < N; ++I)
    if (Rng() % 4 == 0) {
      PrelabelOf[I] = NextBit;
      Pre[I] = label({NextBit});
      ++NextBit;
    }

  auto Labels = meldLabel(G, Pre, meldUnion);

  // Oracle: BFS from each prelabelled node.
  std::vector<SparseBitVector> Expected(N);
  for (uint32_t S = 0; S < N; ++S) {
    if (PrelabelOf[S] == UINT32_MAX)
      continue;
    std::vector<uint8_t> Seen(N, 0);
    std::vector<uint32_t> Stack{S};
    Seen[S] = 1;
    while (!Stack.empty()) {
      uint32_t Cur = Stack.back();
      Stack.pop_back();
      Expected[Cur].set(PrelabelOf[S]);
      for (uint32_t Next : G.successors(Cur))
        if (!Seen[Next]) {
          Seen[Next] = 1;
          Stack.push_back(Next);
        }
    }
  }
  for (uint32_t I = 0; I < N; ++I)
    EXPECT_EQ(Labels[I], Expected[I]) << "node " << I;
}

TEST_P(MeldProperty, EquivalenceClassesAreSharedLabelSets) {
  // Two nodes share a final label iff the same set of prelabelled nodes
  // reaches them — the property versioning exploits to share points-to
  // sets.
  std::mt19937 Rng(GetParam() * 269 + 3);
  const uint32_t N = 15;
  AdjacencyGraph G(N);
  for (uint32_t I = 0; I < 2 * N; ++I)
    G.addEdge(Rng() % N, Rng() % N);
  std::vector<SparseBitVector> Pre(N);
  Pre[0] = label({0});
  Pre[1] = label({1});
  auto Labels = meldLabel(G, Pre, meldUnion);
  for (uint32_t A = 0; A < N; ++A)
    for (uint32_t B = 0; B < N; ++B)
      if (Labels[A] == Labels[B]) {
        EXPECT_EQ(Labels[A].count(), Labels[B].count());
      }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MeldProperty, ::testing::Range(1u, 13u));
