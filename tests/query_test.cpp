//===- query_test.cpp - Demand-driven query engine --------------*- C++ -*-===//
///
/// \file
/// The `--mode=demand` contract (docs/QUERIES.md), pinned from four sides:
///
///  - *slice invariants*: a backward slice is backward-closed over every
///    dependence the scoped solvers exercise — static direct + indirect
///    preds and the potential interprocedural edges — and contains at
///    least the brute-force transpose reachability of its root;
///  - *answer exactness*: demand answers (top-level and per-position
///    object contents) are bit-identical to the exhaustive fixpoint, for
///    every supported backend and both points-to representations, while
///    the solved scope stays a strict subset of the SVFG;
///  - *finding equivalence*: the demand checker client reproduces the
///    exhaustive checkers' findings exactly on every Table II preset with
///    injected bugs (the acceptance bar of the demand refactor);
///  - *memoisation and budgets*: covered re-queries are slice-cache hits
///    (no re-solve), prefetch batches collapse to one solve, and a
///    per-query budget degrades that query to auxiliary precision without
///    poisoning later queries or the process.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "adt/PointsToCache.h"
#include "checker/Checker.h"
#include "core/AnalysisRunner.h"
#include "query/QueryEngine.h"
#include "svfg/Slice.h"
#include "workload/BenchmarkSuite.h"

using namespace vsfs;
using namespace vsfs::test;
using svfg::NodeID;

namespace {

/// A small-but-interprocedural generated program: indirect calls, heap
/// objects, enough memory traffic that slices are non-trivial.
workload::GenConfig smallConfig(uint64_t Seed) {
  workload::GenConfig C;
  C.Seed = Seed;
  C.NumFunctions = 6;
  C.BlocksPerFunction = 3;
  C.InstsPerBlock = 5;
  return C;
}

std::vector<ir::InstID> sitesOfKind(const ir::Module &M, ir::InstKind K) {
  std::vector<ir::InstID> Sites;
  for (ir::InstID I = 0; I < M.numInstructions(); ++I)
    if (M.inst(I).Kind == K)
      Sites.push_back(I);
  return Sites;
}

} // namespace

//===----------------------------------------------------------------------===//
// Slice invariants
//===----------------------------------------------------------------------===//

TEST(Slice, BackwardClosedOverStaticAndPotentialEdges) {
  auto Ctx = buildFromConfig(smallConfig(11));
  ASSERT_TRUE(Ctx && Ctx->isBuilt());
  const svfg::SVFG &G = Ctx->svfg();
  svfg::BackwardSlicer Slicer(G);
  svfg::NodeScope Scope(G.numNodes());

  // Slice at a handful of spread-out roots into one cumulative scope.
  for (NodeID Root = 0; Root < G.numNodes(); Root += G.numNodes() / 7 + 1)
    Slicer.slice(Root, Scope);
  ASSERT_GT(Scope.size(), 0u);

  // Closure over the static graph: an in-scope node's static predecessors
  // are in scope (no out-of-scope node may influence an in-scope one).
  for (NodeID N = 0; N < G.numNodes(); ++N) {
    for (NodeID S : G.directSuccs(N))
      if (Scope.contains(S)) {
        EXPECT_TRUE(Scope.contains(N))
            << "direct edge " << N << " -> " << S << " enters the scope";
      }
    for (const svfg::IndEdge &E : G.indirectSuccs(N))
      if (Scope.contains(E.Dst)) {
        EXPECT_TRUE(Scope.contains(N))
            << "indirect edge " << N << " -> " << E.Dst
            << " enters the scope";
      }
    // Closure over the *potential* interprocedural edges: the solvers may
    // materialise any of them mid-solve, so their sources are dependences
    // of their (in-scope) destinations.
    for (const svfg::IndEdge &E : Slicer.potentialIndirectSuccs(N))
      if (Scope.contains(E.Dst)) {
        EXPECT_TRUE(Scope.contains(N))
            << "potential edge " << N << " -> " << E.Dst
            << " enters the scope";
      }
  }
}

TEST(Slice, ContainsBruteForceTransposeReachability) {
  auto Ctx = buildFromConfig(smallConfig(23));
  ASSERT_TRUE(Ctx && Ctx->isBuilt());
  const svfg::SVFG &G = Ctx->svfg();
  svfg::BackwardSlicer Slicer(G);

  // Brute-force transpose adjacency over static + potential edges.
  std::vector<std::vector<NodeID>> Preds(G.numNodes());
  for (NodeID N = 0; N < G.numNodes(); ++N) {
    for (NodeID S : G.directSuccs(N))
      Preds[S].push_back(N);
    for (const svfg::IndEdge &E : G.indirectSuccs(N))
      Preds[E.Dst].push_back(N);
    for (const svfg::IndEdge &E : Slicer.potentialIndirectSuccs(N))
      Preds[E.Dst].push_back(N);
  }

  for (NodeID Root = 0; Root < G.numNodes();
       Root += G.numNodes() / 11 + 1) {
    svfg::NodeScope Scope(G.numNodes());
    svfg::BackwardSlicer::SliceResult R = Slicer.slice(Root, Scope);
    EXPECT_TRUE(Scope.contains(Root));
    EXPECT_EQ(R.SliceNodes, Scope.size());
    EXPECT_EQ(R.NewNodes, Scope.size());
    EXPECT_LE(Scope.size(), G.numNodes());

    // BFS the transpose; the slicer must cover everything it reaches (it
    // may cover more: discovery/binding dependences are slicer-internal).
    std::vector<char> Reached(G.numNodes(), 0);
    std::vector<NodeID> Queue{Root};
    Reached[Root] = 1;
    for (size_t Head = 0; Head < Queue.size(); ++Head)
      for (NodeID P : Preds[Queue[Head]])
        if (!Reached[P]) {
          Reached[P] = 1;
          Queue.push_back(P);
        }
    for (NodeID N = 0; N < G.numNodes(); ++N)
      if (Reached[N]) {
        EXPECT_TRUE(Scope.contains(N))
            << "transpose-reachable node " << N << " missing from slice of "
            << Root;
      }

    // Re-slicing the same root into the same scope is a no-op.
    svfg::BackwardSlicer::SliceResult Again = Slicer.slice(Root, Scope);
    EXPECT_EQ(Again.NewNodes, 0u);
    EXPECT_EQ(Again.SliceNodes, R.SliceNodes);
  }
}

//===----------------------------------------------------------------------===//
// Answer exactness: demand == exhaustive, scope a strict subset
//===----------------------------------------------------------------------===//

class QueryExactness
    : public ::testing::TestWithParam<std::tuple<const char *, adt::PtsRepr>> {
};

TEST_P(QueryExactness, DemandAnswersEqualExhaustiveFixpoint) {
  const char *Solver = std::get<0>(GetParam());
  adt::PtsReprScope Repr(std::get<1>(GetParam()));

  workload::GenConfig Config = smallConfig(42);
  // Exhaustive reference and demand engine on separate pipelines: scoped
  // solves materialise call edges, and the generator is deterministic, so
  // the two graphs start identical.
  auto Ref = buildFromConfig(Config);
  auto Ctx = buildFromConfig(Config);
  ASSERT_TRUE(Ref && Ref->isBuilt() && Ctx && Ctx->isBuilt());
  core::AnalysisRunner::RunResult Exhaustive =
      core::AnalysisRunner::registry().run(*Ref, Solver);
  ASSERT_EQ(Exhaustive.Status, Termination::Completed);

  query::QueryEngine::Options QO;
  QO.Solver = Solver;
  query::QueryEngine E(*Ctx, QO);

  const ir::Module &M = Ctx->module();
  std::vector<ir::InstID> Loads = sitesOfKind(M, ir::InstKind::Load);
  ASSERT_FALSE(Loads.empty());
  for (size_t K = 0; K < Loads.size(); K += 3) {
    ir::InstID I = Loads[K];
    ir::VarID P = M.inst(I).loadPtr();
    const PointsTo &Demand = E.ptsAt(I, P);
    const PointsTo &Full = Exhaustive.Analysis->ptsOfVar(P);
    EXPECT_TRUE(Demand == Full)
        << Solver << " load #" << I << ": demand {"
        << pointeeNames(M, Demand).size() << "} != exhaustive {"
        << pointeeNames(M, Full).size() << "}";
    // Per-position object contents for everything the pointer targets.
    for (uint32_t O : Full)
      if (!M.symbols().isFunctionObject(O)) {
        EXPECT_TRUE(E.ptsOfObjAt(I, O) ==
                    Exhaustive.Analysis->ptsOfObjAt(I, O))
            << Solver << " load #" << I << " object " << O;
      }
  }

  if (std::string(Solver) != "ander") {
    // The point of demand mode: the solved scope is a strict subset.
    EXPECT_GT(E.scope().size(), 0u);
    EXPECT_LT(E.scope().size(), Ctx->svfg().numNodes());
    EXPECT_GE(E.stats().lookup("solves"), 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Backends, QueryExactness,
    ::testing::Combine(::testing::Values("sfs", "vsfs", "ander"),
                       ::testing::Values(adt::PtsRepr::SBV,
                                         adt::PtsRepr::Persistent)),
    [](const auto &Info) {
      return std::string(std::get<0>(Info.param)) +
             (std::get<1>(Info.param) == adt::PtsRepr::Persistent
                  ? "_persistent"
                  : "_sbv");
    });

TEST(QueryEngine, ReachesSinkFollowsValueFlow) {
  auto Ctx = buildFromConfig(smallConfig(7));
  ASSERT_TRUE(Ctx && Ctx->isBuilt());
  query::QueryEngine::Options QO;
  query::QueryEngine E(*Ctx, QO);

  const svfg::SVFG &G = Ctx->svfg();
  // Any indirect Inst->Inst edge is a one-hop value flow.
  bool CheckedEdge = false;
  for (NodeID N = 0; N < G.numNodes() && !CheckedEdge; ++N) {
    if (G.node(N).Kind != svfg::NodeKind::Inst)
      continue;
    for (const svfg::IndEdge &Edge : G.indirectSuccs(N)) {
      if (G.node(Edge.Dst).Kind != svfg::NodeKind::Inst)
        continue;
      EXPECT_TRUE(E.reachesSink(G.node(N).Inst, G.node(Edge.Dst).Inst));
      CheckedEdge = true;
      break;
    }
  }
  EXPECT_TRUE(CheckedEdge) << "no Inst->Inst indirect edge to exercise";

  // Reflexive, and an alloc in main is never reached from a later,
  // unrelated position... at minimum the query must not crash and must be
  // consistent when asked twice (memoised scope).
  ir::InstID Some = sitesOfKind(Ctx->module(), ir::InstKind::Load).front();
  EXPECT_TRUE(E.reachesSink(Some, Some));
}

//===----------------------------------------------------------------------===//
// Memoisation
//===----------------------------------------------------------------------===//

TEST(QueryEngine, CoveredQueriesHitWithoutResolving) {
  auto Ctx = buildFromConfig(smallConfig(5));
  ASSERT_TRUE(Ctx && Ctx->isBuilt());
  query::QueryEngine::Options QO;
  query::QueryEngine E(*Ctx, QO);

  const ir::Module &M = Ctx->module();
  std::vector<ir::InstID> Loads = sitesOfKind(M, ir::InstKind::Load);
  ASSERT_GE(Loads.size(), 2u);

  E.ptsAt(Loads[0], M.inst(Loads[0]).loadPtr());
  uint64_t SolvesAfterFirst = E.stats().lookup("solves");
  EXPECT_GE(SolvesAfterFirst, 1u);

  // Same query again: the scope already covers the slice — a hit, no solve.
  E.ptsAt(Loads[0], M.inst(Loads[0]).loadPtr());
  EXPECT_EQ(E.stats().lookup("solves"), SolvesAfterFirst);
  EXPECT_GE(E.stats().lookup("slice-cache-hits"), 1u);
}

TEST(QueryEngine, PrefetchBatchCollapsesToOneSolve) {
  auto Ctx = buildFromConfig(smallConfig(5));
  ASSERT_TRUE(Ctx && Ctx->isBuilt());
  query::QueryEngine::Options QO;
  query::QueryEngine E(*Ctx, QO);

  const ir::Module &M = Ctx->module();
  std::vector<ir::InstID> Loads = sitesOfKind(M, ir::InstKind::Load);
  ASSERT_GE(Loads.size(), 4u);

  // Grow the scope for every query first; no solve happens yet.
  for (ir::InstID I : Loads)
    E.prefetch(I);
  EXPECT_EQ(E.stats().lookup("solves"), 0u);

  // Then answer them all: one solve over the final scope, rest are hits.
  for (ir::InstID I : Loads)
    E.ptsAt(I, M.inst(I).loadPtr());
  EXPECT_EQ(E.stats().lookup("solves"), 1u);
  EXPECT_EQ(E.stats().lookup("slice-cache-hits"),
            uint64_t(Loads.size()) - 1);
}

//===----------------------------------------------------------------------===//
// Per-query budgets
//===----------------------------------------------------------------------===//

TEST(QueryEngine, ExhaustedQueryDegradesToAuxWithoutPoisoningProcess) {
  workload::GenConfig Config = smallConfig(9);
  auto Ctx = buildFromConfig(Config);
  ASSERT_TRUE(Ctx && Ctx->isBuilt());

  query::QueryEngine::Options QO;
  QO.Solver = "vsfs";
  QO.QueryLimits.StepBudget = 1; // Any real solve exhausts immediately.
  query::QueryEngine E(*Ctx, QO);

  const ir::Module &M = Ctx->module();
  ir::InstID I = sitesOfKind(M, ir::InstKind::Load).front();
  ir::VarID P = M.inst(I).loadPtr();

  const PointsTo &DegradedPts = E.ptsAt(I, P);
  EXPECT_TRUE(E.degraded());
  EXPECT_GE(E.degradedQueries(), 1u);
  EXPECT_NE(E.lastStatus(), Termination::Completed);
  // Degraded answers come from the (sound, completed) auxiliary analysis.
  EXPECT_TRUE(DegradedPts == Ctx->andersen().ptsOfVar(P));

  core::AnalysisRunner::RunResult R = E.takeRunResult();
  EXPECT_TRUE(R.Degraded);
  EXPECT_NE(R.Status, Termination::Completed);

  // The degradation was per-query, per-engine: a fresh engine without
  // limits answers the same query exactly.
  auto Ref = buildFromConfig(Config);
  auto Ctx2 = buildFromConfig(Config);
  ASSERT_TRUE(Ref && Ref->isBuilt() && Ctx2 && Ctx2->isBuilt());
  core::AnalysisRunner::RunResult Exhaustive =
      core::AnalysisRunner::registry().run(*Ref, "vsfs");
  query::QueryEngine::Options Clean;
  query::QueryEngine E2(*Ctx2, Clean);
  EXPECT_FALSE(E2.degraded());
  EXPECT_TRUE(E2.ptsAt(I, P) == Exhaustive.Analysis->ptsOfVar(P));
}

TEST(QueryEngine, DegradedSolverNeverServesHits) {
  auto Ctx = buildFromConfig(smallConfig(9));
  ASSERT_TRUE(Ctx && Ctx->isBuilt());
  query::QueryEngine::Options QO;
  QO.Solver = "vsfs";
  QO.QueryLimits.StepBudget = 1;
  query::QueryEngine E(*Ctx, QO);

  const ir::Module &M = Ctx->module();
  ir::InstID I = sitesOfKind(M, ir::InstKind::Load).front();
  E.ptsAt(I, M.inst(I).loadPtr());
  uint64_t Solves = E.stats().lookup("solves");
  // The covered slice alone is not enough — a degraded solver re-solves
  // (fresh budget) instead of serving the stale, partial fixpoint.
  E.ptsAt(I, M.inst(I).loadPtr());
  EXPECT_EQ(E.stats().lookup("solves"), Solves + 1);
  EXPECT_EQ(E.stats().lookup("slice-cache-hits"), 0u);
}

//===----------------------------------------------------------------------===//
// Finding equivalence on every Table II preset (the acceptance bar)
//===----------------------------------------------------------------------===//

class QueryCheckerEquivalence : public ::testing::TestWithParam<uint32_t> {};

TEST_P(QueryCheckerEquivalence, DemandFindingsEqualExhaustive) {
  workload::BenchSpec Spec = workload::benchmarkSuite()[GetParam()];
  workload::GenConfig Config = Spec.Config;
  Config.InjectBugs = true;

  auto Ref = buildFromConfig(Config);
  auto Ctx = buildFromConfig(Config);
  ASSERT_TRUE(Ref && Ref->isBuilt() && Ctx && Ctx->isBuilt());

  core::AnalysisRunner::RunResult Exhaustive =
      core::AnalysisRunner::registry().run(*Ref, "vsfs");
  std::vector<checker::Finding> Want =
      checker::runCheckers(Ref->svfg(), *Exhaustive.Analysis);

  query::QueryEngine::Options QO;
  QO.Solver = "vsfs";
  query::QueryEngine E(*Ctx, QO);
  std::vector<checker::Finding> Got = query::runCheckersDemand(E);

  ASSERT_EQ(Got.size(), Want.size()) << Spec.Name;
  for (size_t I = 0; I < Want.size(); ++I)
    EXPECT_TRUE(Got[I] == Want[I])
        << Spec.Name << ": finding " << I << " differs:\n  exhaustive: "
        << checker::printFinding(Ref->module(), Want[I])
        << "\n  demand:     " << checker::printFinding(Ctx->module(), Got[I]);
  EXPECT_FALSE(E.degraded());
  EXPECT_LT(E.scope().size(), Ctx->svfg().numNodes()) << Spec.Name;
}

INSTANTIATE_TEST_SUITE_P(
    AllPresets, QueryCheckerEquivalence,
    ::testing::Range(0u, uint32_t(workload::benchmarkSuite().size())),
    [](const ::testing::TestParamInfo<uint32_t> &Info) {
      return workload::benchmarkSuite()[Info.param].Name;
    });
