//===- dot_test.cpp - GraphViz export tests ---------------------*- C++ -*-===//

#include "TestUtil.h"

#include "core/DotExport.h"

#include <algorithm>

using namespace vsfs;
using namespace vsfs::test;

namespace {

const char *Program = R"(
  global @g
  func @callee(%x) {
  entry:
    store %x -> @g
    ret
  }
  func @main() {
  entry:
    %a = alloc
    %fp = funcaddr @callee
    call %fp(%a)
    call @callee(%a)
    %v = load @g
    br next, done
  next:
    ret %v
  done:
    ret %a
  }
)";

} // namespace

TEST(DotExport, CFGListsBlocksAndEdges) {
  auto Ctx = buildFromText(Program);
  std::string Dot = core::dotCFG(Ctx->module(), Ctx->module().main());
  EXPECT_NE(Dot.find("digraph"), std::string::npos);
  EXPECT_NE(Dot.find("entry:"), std::string::npos);
  EXPECT_NE(Dot.find("next:"), std::string::npos);
  EXPECT_NE(Dot.find("%v = load @g"), std::string::npos);
  // entry (b0) branches to next and done.
  EXPECT_NE(Dot.find("b0 -> b1"), std::string::npos);
  EXPECT_NE(Dot.find("b0 -> b2"), std::string::npos);
}

TEST(DotExport, CallGraphMarksIndirectEdges) {
  auto Ctx = buildFromText(Program);
  std::string Dot =
      core::dotCallGraph(Ctx->module(), Ctx->andersen().callGraph());
  EXPECT_NE(Dot.find("\"main\""), std::string::npos);
  EXPECT_NE(Dot.find("\"callee\""), std::string::npos);
  // The indirect call edge is dashed; the direct one is not.
  EXPECT_NE(Dot.find("[style=dashed]"), std::string::npos);
}

TEST(DotExport, SVFGShowsNodeKindsAndLabelledEdges) {
  auto Ctx = buildFromText(Program, /*ConnectAuxIndirectCalls=*/true);
  std::string Dot = core::dotSVFG(Ctx->svfg());
  EXPECT_NE(Dot.find("entrychi(g)@callee"), std::string::npos);
  EXPECT_NE(Dot.find("exitmu(g)@callee"), std::string::npos);
  EXPECT_NE(Dot.find("callmu(g)"), std::string::npos);
  EXPECT_NE(Dot.find("callchi(g)"), std::string::npos);
  EXPECT_NE(Dot.find("style=dashed, label=\"g\""), std::string::npos);
  EXPECT_NE(Dot.find("store %x -> @g"), std::string::npos);
}

TEST(DotExport, SVFGNodeCapElides) {
  workload::GenConfig C;
  C.Seed = 4;
  C.NumFunctions = 8;
  auto Ctx = buildFromConfig(C);
  ASSERT_NE(Ctx, nullptr);
  ASSERT_GT(Ctx->svfg().numNodes(), 50u);
  std::string Dot = core::dotSVFG(Ctx->svfg(), /*MaxNodes=*/50);
  EXPECT_NE(Dot.find("more nodes elided"), std::string::npos);
  // No references to elided nodes appear in edges.
  EXPECT_EQ(Dot.find("n51 ->"), std::string::npos);
}

TEST(DotExport, EscapesQuotes) {
  // Labels go through escaping; quotes in output must stay balanced.
  auto Ctx = buildFromText(Program);
  std::string Dot = core::dotCFG(Ctx->module(), Ctx->module().main());
  // Balanced quotes: even count.
  EXPECT_EQ(std::count(Dot.begin(), Dot.end(), '"') % 2, 0);
}
