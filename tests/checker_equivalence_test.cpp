//===- checker_equivalence_test.cpp - Checkers as precision clients -*- C++ -*-===//
///
/// \file
/// The checkers are pointer-analysis *clients*, so the paper's equivalence
/// theorem (§IV-E: VSFS computes exactly SFS's solution) must be visible
/// through them. Over every Table II preset with injected bug patterns:
///
///  - sfs- and vsfs-backed checkers report the identical finding set;
///  - neither misses a ground-truth bug (zero false negatives);
///  - the flow-insensitive auxiliary backend (ander) reports strictly more
///    false positives on the use-after-free and null-deref checkers — the
///    injected clean variants are built around strong updates, which only
///    the flow-sensitive backends resolve.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "checker/Checker.h"
#include "core/AnalysisRunner.h"
#include "workload/BenchmarkSuite.h"

using namespace vsfs;
using namespace vsfs::test;
using checker::CheckKind;
using checker::CheckScore;
using checker::Finding;

namespace {

struct CheckedRun {
  std::vector<Finding> Findings;
  std::array<CheckScore, checker::NumCheckKinds> Scores;
};

CheckedRun runOn(core::AnalysisContext &Ctx, const char *Analysis,
                 const checker::GroundTruth &GT) {
  CheckedRun Out;
  core::AnalysisRunner::RunResult R =
      core::AnalysisRunner::registry().run(Ctx, Analysis);
  Out.Findings = checker::runCheckers(Ctx.svfg(), *R.Analysis);
  Out.Scores = checker::scoreFindings(Out.Findings, GT);
  return Out;
}

uint32_t scoreOf(const CheckedRun &R, CheckKind K,
                 uint32_t CheckScore::*Field) {
  return R.Scores[static_cast<uint32_t>(K)].*Field;
}

} // namespace

class CheckerEquivalence : public ::testing::TestWithParam<uint32_t> {};

TEST_P(CheckerEquivalence, SfsAndVsfsAgreeAndBeatAndersen) {
  workload::BenchSpec Spec = workload::benchmarkSuite()[GetParam()];
  workload::GenConfig Config = Spec.Config;
  Config.InjectBugs = true;

  checker::GroundTruth GT;
  auto Module = workload::generateProgram(Config, &GT);
  ASSERT_TRUE(ir::verifyModule(*Module).empty())
      << Spec.Name << ": injected module must still verify";
  ASSERT_FALSE(GT.Sites.empty());

  core::AnalysisContext Ctx;
  Ctx.module() = std::move(*Module);
  Ctx.build();

  CheckedRun Ander = runOn(Ctx, "ander", GT);
  CheckedRun Sfs = runOn(Ctx, "sfs", GT);
  CheckedRun Vsfs = runOn(Ctx, "vsfs", GT);

  // The equivalence theorem, observed through a client: identical findings,
  // not just identical points-to sets.
  ASSERT_EQ(Sfs.Findings.size(), Vsfs.Findings.size()) << Spec.Name;
  for (size_t I = 0; I < Sfs.Findings.size(); ++I)
    EXPECT_TRUE(Sfs.Findings[I] == Vsfs.Findings[I])
        << Spec.Name << ": finding " << I << " differs:\n  sfs:  "
        << checker::printFinding(Ctx.module(), Sfs.Findings[I])
        << "\n  vsfs: "
        << checker::printFinding(Ctx.module(), Vsfs.Findings[I]);

  // Soundness against ground truth: the flow-sensitive backends miss
  // nothing that was injected (nor any never-freed heap allocation). Only
  // the kinds the legacy walk reports are scored here; the spec-only
  // uread/ufree sites get the same zero-FN guarantee from the spec engine
  // in taint_test.cpp (InjectedPatternsScoreExactly).
  for (uint32_t K = 0; K < checker::NumCheckKinds; ++K) {
    if (!(checker::checkBit(static_cast<CheckKind>(K)) &
          checker::LegacyChecks))
      continue;
    EXPECT_EQ(Sfs.Scores[K].FN, 0u)
        << Spec.Name << ": sfs missed a "
        << checker::checkKindName(static_cast<CheckKind>(K)) << " site";
    EXPECT_EQ(Vsfs.Scores[K].FN, 0u)
        << Spec.Name << ": vsfs missed a "
        << checker::checkKindName(static_cast<CheckKind>(K)) << " site";
  }

  // Precision: flow-sensitivity strictly beats the auxiliary analysis on
  // the strong-update-driven checkers.
  EXPECT_GT(scoreOf(Ander, CheckKind::UseAfterFree, &CheckScore::FP),
            scoreOf(Sfs, CheckKind::UseAfterFree, &CheckScore::FP))
      << Spec.Name;
  EXPECT_GT(scoreOf(Ander, CheckKind::NullDeref, &CheckScore::FP),
            scoreOf(Sfs, CheckKind::NullDeref, &CheckScore::FP))
      << Spec.Name;
  // And never loses: every sfs false positive is also an ander one by the
  // checkers' monotone source conditions.
  EXPECT_GE(scoreOf(Ander, CheckKind::DoubleFree, &CheckScore::FP),
            scoreOf(Sfs, CheckKind::DoubleFree, &CheckScore::FP))
      << Spec.Name;
  EXPECT_GE(scoreOf(Ander, CheckKind::Leak, &CheckScore::FP),
            scoreOf(Sfs, CheckKind::Leak, &CheckScore::FP))
      << Spec.Name;
}

INSTANTIATE_TEST_SUITE_P(AllPresets, CheckerEquivalence,
                         ::testing::Range(0u, 15u),
                         [](const ::testing::TestParamInfo<uint32_t> &Info) {
                           return workload::benchmarkSuite()[Info.param].Name;
                         });
