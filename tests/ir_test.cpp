//===- ir_test.cpp - IRBuilder / SymbolTable / Verifier tests ---*- C++ -*-===//

#include "ir/IRBuilder.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"

#include "gtest/gtest.h"

using namespace vsfs;
using namespace vsfs::ir;

TEST(SymbolTable, VarsAndObjects) {
  SymbolTable S;
  VarID V = S.makeVar("p", 3);
  EXPECT_EQ(S.var(V).Name, "p");
  EXPECT_EQ(S.var(V).Parent, 3u);

  ObjID O = S.makeObject("o", ObjKind::Stack, true, 2);
  EXPECT_EQ(S.object(O).NumFields, 2u);
  EXPECT_TRUE(S.object(O).Singleton);
  EXPECT_EQ(S.object(O).Base, O);
  EXPECT_EQ(S.numVars(), 1u);
  EXPECT_EQ(S.numObjects(), 1u);
}

TEST(SymbolTable, FunctionObjects) {
  SymbolTable S;
  ObjID F = S.makeFunctionObject("f", 7);
  EXPECT_TRUE(S.isFunctionObject(F));
  EXPECT_EQ(S.object(F).Func, 7u);
  EXPECT_TRUE(S.object(F).Singleton);
}

TEST(SymbolTable, FieldObjectsAreMemoized) {
  SymbolTable S;
  ObjID Base = S.makeObject("agg", ObjKind::Heap, false, 4);
  ObjID F1 = S.getFieldObject(Base, 1);
  EXPECT_EQ(S.getFieldObject(Base, 1), F1);
  EXPECT_NE(S.getFieldObject(Base, 2), F1);
  EXPECT_EQ(S.object(F1).Base, Base);
  EXPECT_EQ(S.object(F1).Offset, 1u);
  EXPECT_EQ(S.object(F1).Kind, ObjKind::Field);
  // Fields inherit the base's singleton-ness (a field of one runtime
  // object is one runtime location).
  EXPECT_FALSE(S.object(F1).Singleton);
}

TEST(SymbolTable, FieldOffsetZeroIsTheBase) {
  SymbolTable S;
  ObjID Base = S.makeObject("agg", ObjKind::Stack, true, 4);
  EXPECT_EQ(S.getFieldObject(Base, 0), Base);
}

TEST(SymbolTable, FieldsFlattenAndClamp) {
  SymbolTable S;
  ObjID Base = S.makeObject("agg", ObjKind::Stack, true, 4);
  ObjID F1 = S.getFieldObject(Base, 1);
  // Field of a field flattens: (base.f1).f2 == base.f3.
  EXPECT_EQ(S.getFieldObject(F1, 2), S.getFieldObject(Base, 3));
  // Out-of-bounds clamps to the last field.
  EXPECT_EQ(S.getFieldObject(Base, 99), S.getFieldObject(Base, 3));
  // Single-field objects are their own only field.
  ObjID Scalar = S.makeObject("s", ObjKind::Stack, true, 1);
  EXPECT_EQ(S.getFieldObject(Scalar, 5), Scalar);
}

TEST(IRBuilder, BuildsAWellFormedFunction) {
  Module M;
  IRBuilder B(M);
  FunID F = B.startFunction("main", {"a"});
  M.setMain(F);
  VarID P = B.alloc("p", "obj");
  VarID Q = B.copy("q", P);
  B.store(Q, P);
  VarID L = B.load("l", P);
  B.ret(L);
  B.finishFunction();

  EXPECT_TRUE(verifyModule(M).empty()) << verifyModule(M).front();
  const Function &Fun = M.function(F);
  EXPECT_EQ(M.inst(Fun.Entry).Kind, InstKind::FunEntry);
  EXPECT_EQ(M.inst(Fun.Exit).Kind, InstKind::FunExit);
  EXPECT_EQ(M.inst(Fun.Exit).exitRet(), L);
  EXPECT_EQ(Fun.Params.size(), 1u);
}

TEST(IRBuilder, MultipleReturnsUnified) {
  Module M;
  IRBuilder B(M);
  B.startFunction("f", {});
  VarID A = B.alloc("a", "ao");
  VarID C = B.alloc("c", "co");
  BlockID B1 = B.block("one"), B2 = B.block("two");
  B.br(B1, B2);
  B.setInsertPoint(B1);
  B.ret(A);
  B.setInsertPoint(B2);
  B.ret(C);
  FunID F = B.finishFunction();

  EXPECT_TRUE(verifyModule(M).empty()) << verifyModule(M).front();
  // The unified exit returns a phi of both values.
  const Function &Fun = M.function(F);
  VarID Ret = M.inst(Fun.Exit).exitRet();
  ASSERT_NE(Ret, InvalidVar);
  // Find the phi defining it.
  bool FoundPhi = false;
  for (InstID I = 0; I < M.numInstructions(); ++I) {
    const Instruction &Inst = M.inst(I);
    if (Inst.Kind == InstKind::Phi && Inst.Dst == Ret) {
      FoundPhi = true;
      EXPECT_EQ(Inst.phiSrcs().size(), 2u);
    }
  }
  EXPECT_TRUE(FoundPhi);
}

TEST(IRBuilder, GlobalsLiveInGlobalInit) {
  Module M;
  IRBuilder B(M);
  VarID G = B.addGlobal("g", 2);
  VarID H = B.addGlobal("h");
  B.addGlobalInit(G, H);
  ASSERT_NE(M.globalInit(), InvalidFun);
  EXPECT_EQ(M.lookupGlobalVar("g"), G);
  EXPECT_EQ(M.lookupGlobalVar("missing"), InvalidVar);
  EXPECT_TRUE(verifyModule(M).empty()) << verifyModule(M).front();

  // The init function holds two allocs and one store.
  const Function &GI = M.function(M.globalInit());
  uint32_t Allocs = 0, Stores = 0;
  for (InstID I : GI.Blocks[0].Insts) {
    if (M.inst(I).Kind == InstKind::Alloc)
      ++Allocs;
    if (M.inst(I).Kind == InstKind::Store)
      ++Stores;
  }
  EXPECT_EQ(Allocs, 2u);
  EXPECT_EQ(Stores, 1u);
}

TEST(IRBuilder, FunctionAddressIsMemoized) {
  Module M;
  IRBuilder B(M);
  FunID F = M.makeFunction("callee");
  VarID A1 = B.functionAddress(F);
  VarID A2 = B.functionAddress(F);
  EXPECT_EQ(A1, A2);
  EXPECT_EQ(M.funAddrVarTarget(A1), F);
  EXPECT_TRUE(M.function(F).hasAddressTaken());
}

TEST(IRBuilder, LinkProgramEntryIsIdempotent) {
  Module M;
  IRBuilder B(M);
  B.addGlobal("g");
  FunID Main = B.startFunction("main", {});
  M.setMain(Main);
  B.ret();
  B.finishFunction();

  linkProgramEntry(M);
  uint32_t CallsBefore = 0;
  for (InstID I = 0; I < M.numInstructions(); ++I)
    if (M.inst(I).Kind == InstKind::Call)
      ++CallsBefore;
  linkProgramEntry(M);
  uint32_t CallsAfter = 0;
  for (InstID I = 0; I < M.numInstructions(); ++I)
    if (M.inst(I).Kind == InstKind::Call)
      ++CallsAfter;
  EXPECT_EQ(CallsBefore, 1u);
  EXPECT_EQ(CallsAfter, 1u);
  EXPECT_EQ(programEntry(M), M.globalInit());
}

TEST(IRBuilder, ProgramEntryWithoutGlobalsIsMain) {
  Module M;
  IRBuilder B(M);
  FunID Main = B.startFunction("main", {});
  M.setMain(Main);
  B.ret();
  B.finishFunction();
  linkProgramEntry(M);
  EXPECT_EQ(programEntry(M), Main);
}

TEST(Verifier, CatchesDoubleDefinition) {
  Module M;
  IRBuilder B(M);
  B.startFunction("f", {});
  VarID A = B.alloc("a", "ao");
  B.copyTo(A, A); // Second definition of %a.
  B.ret();
  B.finishFunction();
  auto Errors = verifyModule(M);
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors.front().find("definitions"), std::string::npos);
}

TEST(Verifier, CatchesUseWithoutDef) {
  Module M;
  IRBuilder B(M);
  B.startFunction("f", {});
  VarID Ghost = B.makeVar("ghost");
  B.copy("c", Ghost);
  B.ret();
  B.finishFunction();
  auto Errors = verifyModule(M);
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors.front().find("never defined"), std::string::npos);
}

TEST(Verifier, CatchesBranchToEntry) {
  Module M;
  IRBuilder B(M);
  B.startFunction("f", {});
  B.alloc("a", "ao");
  B.br(0); // Branch back to the entry block.
  auto Errors = verifyModule(M);
  bool Found = false;
  for (const auto &E : Errors)
    if (E.find("entry block") != std::string::npos)
      Found = true;
  EXPECT_TRUE(Found);
}

TEST(Verifier, CatchesCrossFunctionVarUse) {
  Module M;
  IRBuilder B(M);
  B.startFunction("f", {});
  VarID A = B.alloc("a", "ao");
  B.ret();
  B.finishFunction();
  B.startFunction("g", {});
  B.copy("c", A); // Uses f's local.
  B.ret();
  B.finishFunction();
  auto Errors = verifyModule(M);
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors.front().find("another function"), std::string::npos);
}

TEST(Printer, InstructionsRenderReadably) {
  Module M;
  IRBuilder B(M);
  FunID Callee = M.makeFunction("callee");
  B.startFunction("main", {"arg"});
  VarID P = B.alloc("p", "obj", ObjKind::Heap, false, 3);
  VarID Q = B.fieldAddr("q", P, 2);
  B.store(Q, P);
  VarID L = B.load("l", P);
  VarID FP = B.funcAddr("fp", Callee);
  B.callIndirect("r", FP, {L});
  B.ret(L);
  B.finishFunction();

  std::string Text = printModule(M);
  EXPECT_NE(Text.find("%p = alloc [heap] [fields=3]"), std::string::npos);
  EXPECT_NE(Text.find("%q = field %p, 2"), std::string::npos);
  EXPECT_NE(Text.find("store %q -> %p"), std::string::npos);
  EXPECT_NE(Text.find("%l = load %p"), std::string::npos);
  EXPECT_NE(Text.find("%fp = funcaddr @callee"), std::string::npos);
  EXPECT_NE(Text.find("%r = call %fp(%l)"), std::string::npos);
}

// --- Cell-level lints (Verifier.h lintModule) ---------------------------

namespace {

/// True when any warning contains every given fragment.
bool hasWarning(const std::vector<std::string> &Warnings,
                std::initializer_list<const char *> Fragments) {
  for (const std::string &W : Warnings) {
    bool All = true;
    for (const char *F : Fragments)
      All = All && W.find(F) != std::string::npos;
    if (All)
      return true;
  }
  return false;
}

} // namespace

TEST(Lint, FlagsDeadStoreCell) {
  // %a is stored to twice and never loaded; the writes are unobservable.
  // The accesses span two blocks, so only the dead-store lint applies.
  Module M;
  IRBuilder B(M);
  FunID F = B.startFunction("main", {"p"});
  VarID P = M.function(F).Params[0];
  VarID A = B.alloc("a", "cell");
  B.store(P, A);
  BlockID Next = B.block("next");
  B.br(Next);
  B.setInsertPoint(Next);
  B.store(P, A);
  B.ret(P);
  B.finishFunction();
  ASSERT_TRUE(verifyModule(M).empty()) << verifyModule(M).front();

  auto Warnings = lintModule(M);
  EXPECT_TRUE(hasWarning(Warnings, {"stored to", "never loaded"}))
      << "missing dead-store-cell warning";
  EXPECT_FALSE(hasWarning(Warnings, {"never escapes"}))
      << "single-block lint must not fire on cross-block accesses";
}

TEST(Lint, FlagsSingleBlockAlloc) {
  // Every access to %a sits in the entry block; the address never escapes
  // it. The cell is both stored and loaded, so the dead-store lint stays
  // quiet and only the single-block lint fires.
  Module M;
  IRBuilder B(M);
  FunID F = B.startFunction("main", {"p"});
  VarID P = M.function(F).Params[0];
  VarID A = B.alloc("a", "cell");
  B.store(P, A);
  VarID L = B.load("l", A);
  B.ret(L);
  B.finishFunction();
  ASSERT_TRUE(verifyModule(M).empty()) << verifyModule(M).front();

  auto Warnings = lintModule(M);
  EXPECT_TRUE(hasWarning(Warnings, {"never escapes", "%a"}))
      << "missing single-block-alloc warning";
  EXPECT_FALSE(hasWarning(Warnings, {"never loaded"}));
}

TEST(Lint, EscapingAddressSuppressesCellLints) {
  // %a's address is copied, so the access set is not syntactically
  // complete: neither cell lint may fire, even though the direct accesses
  // alone would qualify for both.
  Module M;
  IRBuilder B(M);
  FunID F = B.startFunction("main", {"p"});
  VarID P = M.function(F).Params[0];
  VarID A = B.alloc("a", "cell");
  B.store(P, A);
  VarID C = B.copy("c", A); // Escape: the cell may be read through %c.
  VarID L = B.load("l", C);
  B.ret(L);
  B.finishFunction();
  ASSERT_TRUE(verifyModule(M).empty()) << verifyModule(M).front();

  auto Warnings = lintModule(M);
  EXPECT_FALSE(hasWarning(Warnings, {"never loaded"}));
  EXPECT_FALSE(hasWarning(Warnings, {"never escapes"}));
}

TEST(Lint, StoredAddressEscapes) {
  // Storing the address itself (*%b = %a) escapes %a — it can later be
  // loaded back and dereferenced — so the cell lints must stay quiet
  // about %a even though no load through %a exists.
  Module M;
  IRBuilder B(M);
  B.startFunction("main", {"p"});
  VarID A = B.alloc("a", "cell_a");
  VarID Bv = B.alloc("b", "cell_b");
  B.store(A, Bv);
  VarID L = B.load("l", Bv);
  VarID L2 = B.load("l2", L);
  B.ret(L2);
  B.finishFunction();
  ASSERT_TRUE(verifyModule(M).empty()) << verifyModule(M).front();

  auto Warnings = lintModule(M);
  EXPECT_FALSE(hasWarning(Warnings, {"cell_a", "never loaded"}));
  EXPECT_FALSE(hasWarning(Warnings, {"%a", "never escapes"}));
}

TEST(Lint, FreeOnlyCellIsDeadStoreFree) {
  // A cell that is only ever freed: no stores, so the dead-store lint is
  // quiet; the single access is in the alloc's block, so the single-block
  // lint fires.
  Module M;
  IRBuilder B(M);
  FunID F = B.startFunction("main", {"p"});
  VarID P = M.function(F).Params[0];
  VarID A = B.alloc("a", "cell");
  B.free(A);
  B.ret(P);
  B.finishFunction();
  ASSERT_TRUE(verifyModule(M).empty()) << verifyModule(M).front();

  auto Warnings = lintModule(M);
  EXPECT_FALSE(hasWarning(Warnings, {"never loaded"}));
  EXPECT_TRUE(hasWarning(Warnings, {"never escapes", "%a"}));
}
