//===- adt_test.cpp - WorkList and UnionFind tests --------------*- C++ -*-===//

#include "adt/UnionFind.h"
#include "adt/WorkList.h"

#include "gtest/gtest.h"

#include <random>

using namespace vsfs::adt;

TEST(FIFOWorkList, FifoOrder) {
  FIFOWorkList WL;
  EXPECT_TRUE(WL.empty());
  WL.push(3);
  WL.push(1);
  WL.push(2);
  EXPECT_EQ(WL.size(), 3u);
  EXPECT_EQ(WL.pop(), 3u);
  EXPECT_EQ(WL.pop(), 1u);
  EXPECT_EQ(WL.pop(), 2u);
  EXPECT_TRUE(WL.empty());
}

TEST(FIFOWorkList, DeduplicatesWhileQueued) {
  FIFOWorkList WL;
  EXPECT_TRUE(WL.push(7));
  EXPECT_FALSE(WL.push(7));
  EXPECT_EQ(WL.size(), 1u);
  EXPECT_EQ(WL.pop(), 7u);
  // After popping, the item may be queued again.
  EXPECT_TRUE(WL.push(7));
}

TEST(FIFOWorkList, ClearResets) {
  FIFOWorkList WL;
  WL.push(1);
  WL.push(2);
  WL.clear();
  EXPECT_TRUE(WL.empty());
  EXPECT_TRUE(WL.push(1));
}

TEST(LIFOWorkList, LifoOrder) {
  LIFOWorkList WL;
  WL.push(1);
  WL.push(2);
  WL.push(3);
  EXPECT_EQ(WL.pop(), 3u);
  EXPECT_EQ(WL.pop(), 2u);
  EXPECT_EQ(WL.pop(), 1u);
}

TEST(LIFOWorkList, Deduplicates) {
  LIFOWorkList WL;
  EXPECT_TRUE(WL.push(5));
  EXPECT_FALSE(WL.push(5));
  WL.pop();
  EXPECT_TRUE(WL.push(5));
}

TEST(WorkLists, LargeSparseIds) {
  FIFOWorkList WL;
  WL.push(1000000);
  WL.push(0);
  EXPECT_EQ(WL.pop(), 1000000u);
  EXPECT_EQ(WL.pop(), 0u);
}

TEST(UnionFind, SingletonsInitially) {
  UnionFind UF(5);
  for (uint32_t I = 0; I < 5; ++I)
    EXPECT_EQ(UF.find(I), I);
  EXPECT_FALSE(UF.connected(0, 1));
}

TEST(UnionFind, UniteMerges) {
  UnionFind UF(6);
  UF.unite(0, 1);
  UF.unite(2, 3);
  EXPECT_TRUE(UF.connected(0, 1));
  EXPECT_FALSE(UF.connected(1, 2));
  UF.unite(1, 3);
  EXPECT_TRUE(UF.connected(0, 2));
  EXPECT_TRUE(UF.connected(0, 3));
  EXPECT_FALSE(UF.connected(0, 4));
}

TEST(UnionFind, UniteIntoKeepsLeaderRoot) {
  UnionFind UF(4);
  EXPECT_EQ(UF.uniteInto(2, 0), 2u);
  EXPECT_EQ(UF.uniteInto(2, 1), 2u);
  EXPECT_EQ(UF.find(0), 2u);
  EXPECT_EQ(UF.find(1), 2u);
  EXPECT_EQ(UF.find(2), 2u);
}

TEST(UnionFind, GrowPreservesExistingSets) {
  UnionFind UF(2);
  UF.unite(0, 1);
  UF.grow(5);
  EXPECT_TRUE(UF.connected(0, 1));
  EXPECT_EQ(UF.find(4), 4u);
  EXPECT_EQ(UF.size(), 5u);
}

TEST(UnionFind, RandomizedAgainstNaive) {
  std::mt19937 Rng(99);
  const uint32_t N = 200;
  UnionFind UF(N);
  // Naive: component label array with full relabelling.
  std::vector<uint32_t> Label(N);
  for (uint32_t I = 0; I < N; ++I)
    Label[I] = I;
  for (int Step = 0; Step < 500; ++Step) {
    uint32_t A = Rng() % N, B = Rng() % N;
    if (Rng() % 2) {
      UF.unite(A, B);
      uint32_t From = Label[B], To = Label[A];
      for (uint32_t I = 0; I < N; ++I)
        if (Label[I] == From)
          Label[I] = To;
    } else {
      EXPECT_EQ(UF.connected(A, B), Label[A] == Label[B]);
    }
  }
  for (uint32_t I = 0; I < N; ++I)
    for (uint32_t J = 0; J < N; J += 17)
      EXPECT_EQ(UF.connected(I, J), Label[I] == Label[J]);
}
