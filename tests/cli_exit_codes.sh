#!/usr/bin/env bash
# Asserts the documented vsfs-wpa exit-code contract (docs/ROBUSTNESS.md):
#   0 ok | 1 usage | 2 input error | 3 budget exhausted under fail |
#   4 internal fault | 5 service unavailable (--connect).
# Usage: cli_exit_codes.sh <path-to-vsfs-wpa> [path-to-vsfs-served]
# The service cases (docs/SERVICE.md) run only when the daemon is given.
set -u

WPA=${1:?usage: cli_exit_codes.sh <path-to-vsfs-wpa> [path-to-vsfs-served]}
SERVED=${2:-}
FAILURES=0

# expect <code> <description> -- <args...>  (runs $WPA "${args[@]}")
expect() {
  local want=$1 desc=$2
  shift 3 # <code> <desc> --
  "$WPA" "$@" >/dev/null 2>&1
  local got=$?
  if [ "$got" -ne "$want" ]; then
    echo "FAIL: $desc: expected exit $want, got $got ($WPA $*)" >&2
    FAILURES=$((FAILURES + 1))
  else
    echo "ok: $desc (exit $got)"
  fi
}

# 0: a normal run, and --help.
expect 0 "normal run"            -- --gen 3 --analysis=vsfs
expect 0 "--help"                -- --help

# 1: usage errors — unknown flag, unknown analysis, malformed budget
#    flags, malformed fault-injection spec.
expect 1 "unknown flag"          -- --gen 3 --bogus-flag
expect 1 "unknown analysis"      -- --gen 3 --analysis=bogus
expect 1 "bad --step-budget"     -- --gen 3 --step-budget=abc
expect 1 "bad --time-budget"     -- --gen 3 --time-budget=-1
expect 1 "bad --on-exhaustion"   -- --gen 3 --on-exhaustion=bogus
VSFS_FAULT_INJECT="not-a-spec" "$WPA" --gen 3 >/dev/null 2>&1
if [ $? -ne 1 ]; then
  echo "FAIL: malformed VSFS_FAULT_INJECT should be a usage error" >&2
  FAILURES=$((FAILURES + 1))
else
  echo "ok: malformed VSFS_FAULT_INJECT (exit 1)"
fi

# 2: input errors — unreadable file.
expect 2 "missing input file"    -- /nonexistent.ir

# Taint spec engine (--check-specs): a malformed spec file is a usage
# error (1), an unreadable one an input error (2); --findings-json needs
# --check-specs and a single analysis.
SPEC=$(mktemp)
printf 'spec broken\n  bogus clause\nend\n' > "$SPEC"
expect 1 "malformed spec file"   -- --gen 3 --check-specs="$SPEC"
rm -f "$SPEC"
expect 2 "missing spec file"     -- --gen 3 --check-specs=/nonexistent.spec
expect 1 "empty --check-specs"   -- --gen 3 --check-specs=
expect 1 "findings-json without specs" -- --gen 3 --findings-json
expect 1 "findings-json with analysis=all" \
  -- --gen 3 --analysis=all --check-specs=builtin --findings-json
expect 0 "builtin spec run"      -- --gen 3 --check-specs=builtin

# 3: budget exhausted under --on-exhaustion=fail; no result printed.
OUT=$("$WPA" --bench du --analysis=vsfs --step-budget=1 \
      --on-exhaustion=fail --print-pts 2>/dev/null)
CODE=$?
if [ "$CODE" -ne 3 ]; then
  echo "FAIL: step exhaustion under fail: expected exit 3, got $CODE" >&2
  FAILURES=$((FAILURES + 1))
elif echo "$OUT" | grep -q "points-to sets"; then
  echo "FAIL: exhausted fail run must not print points-to sets" >&2
  FAILURES=$((FAILURES + 1))
else
  echo "ok: step exhaustion under fail (exit 3, no result)"
fi

# 0 again: the same exhaustion under degrade succeeds at aux precision,
# reporting termination=steps and degraded=true in --stats-json.
JSON=$("$WPA" --bench du --analysis=vsfs --step-budget=1 \
       --on-exhaustion=degrade --stats-json=- 2>/dev/null)
CODE=$?
if [ "$CODE" -ne 0 ]; then
  echo "FAIL: degrade policy: expected exit 0, got $CODE" >&2
  FAILURES=$((FAILURES + 1))
elif ! echo "$JSON" | grep -q '"termination": "steps"'; then
  echo "FAIL: degraded run must report termination=steps" >&2
  FAILURES=$((FAILURES + 1))
elif ! echo "$JSON" | grep -q '"degraded": true'; then
  echo "FAIL: degraded run must report degraded=true" >&2
  FAILURES=$((FAILURES + 1))
else
  echo "ok: degrade policy (exit 0, termination=steps, degraded=true)"
fi

# Checker findings from a degraded run are stamped [aux-precision].
OUT=$("$WPA" --gen 7 --inject-bugs --analysis=vsfs --check=all \
      --step-budget=1 --on-exhaustion=degrade 2>/dev/null)
CODE=$?
if [ "$CODE" -ne 0 ]; then
  echo "FAIL: degraded checker run: expected exit 0, got $CODE" >&2
  FAILURES=$((FAILURES + 1))
elif ! echo "$OUT" | grep -q "aux-precision"; then
  echo "FAIL: degraded checker findings must carry [aux-precision]" >&2
  FAILURES=$((FAILURES + 1))
else
  echo "ok: degraded checker findings carry [aux-precision]"
fi

# 4: an injected internal fault under fail.
VSFS_FAULT_INJECT="fault@1:vsfs" "$WPA" --bench du --analysis=vsfs \
  --on-exhaustion=fail >/dev/null 2>&1
CODE=$?
if [ "$CODE" -ne 4 ]; then
  echo "FAIL: injected fault: expected exit 4, got $CODE" >&2
  FAILURES=$((FAILURES + 1))
else
  echo "ok: injected fault (exit 4)"
fi

# 4 during construction: a fault while building the SVFG is internal too.
VSFS_FAULT_INJECT="fault@1:svfg" "$WPA" --bench du --analysis=vsfs \
  --on-exhaustion=fail >/dev/null 2>&1
CODE=$?
if [ "$CODE" -ne 4 ]; then
  echo "FAIL: build-phase fault: expected exit 4, got $CODE" >&2
  FAILURES=$((FAILURES + 1))
else
  echo "ok: build-phase fault (exit 4)"
fi

# --- service mode (docs/SERVICE.md) -------------------------------------
# The same contract must hold through the wire: the daemon maps each
# request's outcome to a Status and the thin client reconstructs the exit
# code a local run would have produced — plus 5 for "no daemon at all".

# 5: nobody listening (no daemon needed for this one).
expect 5 "unreachable daemon" -- --connect=/nonexistent-dir/vsfs.sock --gen 3

# 1: flags the wire cannot serve are rejected client-side.
expect 1 "connect rejects --print-pts" -- --connect=/tmp/x.sock --gen 3 \
  --print-pts
expect 1 "connect rejects --analysis=all" -- --connect=/tmp/x.sock --gen 3 \
  --analysis=all
expect 1 "--health without --connect" -- --health

if [ -n "$SERVED" ]; then
  SOCK=$(mktemp -u /tmp/vsfs-exitcodes.XXXXXX.sock)
  "$SERVED" --socket="$SOCK" --workers=1 --request-timeout=0.0001 &
  SRV=$!
  for _ in $(seq 50); do [ -S "$SOCK" ] && break; sleep 0.1; done

  # 2: a module that fails to parse, through the wire.
  BADIR=$(mktemp)
  printf 'this is not ir\n' > "$BADIR"
  expect 2 "malformed module over the wire" -- --connect="$SOCK" "$BADIR"
  rm -f "$BADIR"

  # 3: per-request budget exhaustion under fail, through the wire.
  expect 3 "step exhaustion over the wire" -- --connect="$SOCK" --bench du \
    --analysis=vsfs --step-budget=1 --on-exhaustion=fail

  # 3: the daemon's own --request-timeout ceiling trips the deadline.
  expect 3 "request timeout over the wire" -- --connect="$SOCK" --bench du \
    --analysis=vsfs --on-exhaustion=fail

  # 4: a forwarded fault plan poisons this request only.
  VSFS_FAULT_INJECT="fault@1:serve" "$WPA" --connect="$SOCK" --gen 3 \
    >/dev/null 2>&1
  CODE=$?
  if [ "$CODE" -ne 4 ]; then
    echo "FAIL: forwarded fault: expected exit 4, got $CODE" >&2
    FAILURES=$((FAILURES + 1))
  else
    echo "ok: forwarded fault over the wire (exit 4)"
  fi

  # 0: the daemon that just served three failures still serves health.
  expect 0 "health after failures" -- --connect="$SOCK" --health

  kill -TERM $SRV
  wait $SRV
  CODE=$?
  if [ "$CODE" -ne 0 ]; then
    echo "FAIL: daemon SIGTERM drain: expected exit 0, got $CODE" >&2
    FAILURES=$((FAILURES + 1))
  else
    echo "ok: daemon drains and exits 0 on SIGTERM"
  fi
  rm -f "$SOCK"
else
  echo "skipping daemon-backed service cases (no vsfs-served path given)"
fi

if [ "$FAILURES" -ne 0 ]; then
  echo "$FAILURES exit-code assertion(s) failed" >&2
  exit 1
fi
echo "all exit-code assertions passed"
