//===- roundtrip_test.cpp - print/parse round-trip properties ---*- C++ -*-===//
///
/// Property: printing any generated module and re-parsing the text yields a
/// semantically identical program — the whole pipeline computes the same
/// points-to results, matched up by variable name. This exercises printer,
/// lexer, parser, builder and verifier against each other on hundreds of
/// machine-generated modules.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include <map>

using namespace vsfs;
using namespace vsfs::test;

namespace {

/// Canonical, round-trip-stable object identity: functions by name, fields
/// by base identity + offset, allocations by the qualified name of the
/// variable their alloc defines. (The generator's raw object names are not
/// preserved by the printer; allocation sites are.)
std::string canonicalObjName(const ir::Module &M, ir::ObjID O) {
  const ir::ObjInfo &Info = M.symbols().object(O);
  if (Info.Kind == ir::ObjKind::Function)
    return "fun:" + M.function(Info.Func).Name;
  if (Info.Kind == ir::ObjKind::Field)
    return canonicalObjName(M, Info.Base) + ".f" +
           std::to_string(Info.Offset);
  if (Info.AllocSite != ir::InvalidInst) {
    const ir::Instruction &Site = M.inst(Info.AllocSite);
    const ir::VarInfo &Var = M.symbols().var(Site.Dst);
    std::string Fun = Var.Parent == ir::InvalidFun
                          ? "@"
                          : M.function(Var.Parent).Name + "::";
    return "alloc:" + Fun + Var.Name;
  }
  return Info.Name;
}

/// Name-keyed points-to results: variable name -> set of pointee names.
/// (IDs shift across a reparse; names are the stable identity.)
std::map<std::string, std::set<std::string>>
namedResults(const ir::Module &M, const core::PointerAnalysisResult &A) {
  std::map<std::string, std::set<std::string>> Out;
  for (ir::VarID V = 0; V < M.symbols().numVars(); ++V) {
    const ir::VarInfo &Info = M.symbols().var(V);
    std::string Key = Info.Name;
    if (Info.Parent != ir::InvalidFun)
      Key = M.function(Info.Parent).Name + "::" + Key;
    std::set<std::string> Names;
    for (uint32_t O : A.ptsOfVar(V))
      Names.insert(canonicalObjName(M, O));
    Out[Key] = std::move(Names);
  }
  return Out;
}

} // namespace

class RoundTripProperty : public ::testing::TestWithParam<uint32_t> {};

TEST_P(RoundTripProperty, ReparsedModuleAnalysesIdentically) {
  workload::GenConfig C;
  C.Seed = GetParam() * 7 + 1;
  C.NumFunctions = 2 + GetParam() % 6;
  C.NumGlobals = GetParam() % 6;
  C.IndirectCallFraction = (GetParam() % 3) * 0.3;
  auto Original = workload::generateProgram(C);
  ASSERT_TRUE(ir::verifyModule(*Original).empty());

  std::string Text = ir::printModule(*Original);
  auto Reparsed = std::make_unique<core::AnalysisContext>();
  std::string Error;
  ASSERT_TRUE(Reparsed->loadText(Text, Error)) << Error;

  auto Ctx1 = std::make_unique<core::AnalysisContext>();
  Ctx1->module() = std::move(*Original);
  Ctx1->build();
  Reparsed->build();

  core::VersionedFlowSensitive V1(Ctx1->svfg());
  V1.solve();
  core::VersionedFlowSensitive V2(Reparsed->svfg());
  V2.solve();

  auto R1 = namedResults(Ctx1->module(), V1);
  auto R2 = namedResults(Reparsed->module(), V2);
  // The reparse may add exit-unification phi variables; compare on the
  // intersection of names and require R1's names to survive.
  for (const auto &[Name, Pts] : R1) {
    // Printer renames nothing, so every original name must exist...
    // except variables of the synthetic __global_init__, which the parser
    // reconstructs from the globals section.
    if (Name.find("__global_init__") != std::string::npos ||
        Name.find(".addr") != std::string::npos)
      continue;
    auto It = R2.find(Name);
    ASSERT_NE(It, R2.end()) << "variable lost in round-trip: " << Name;
    EXPECT_EQ(It->second, Pts) << "points-to changed for " << Name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripProperty, ::testing::Range(1u, 21u));

class MeldRepEquivalence : public ::testing::TestWithParam<uint32_t> {};

TEST_P(MeldRepEquivalence, InternedLabelsGiveIdenticalResults) {
  // §V-B ablation safety: both label representations must produce the same
  // version structure, hence the same solved points-to sets.
  workload::GenConfig C;
  C.Seed = GetParam() * 13 + 5;
  C.NumFunctions = 3 + GetParam() % 7;
  C.IndirectCallFraction = 0.3;
  C.NumGlobals = 6;

  auto CtxA = buildFromConfig(C);
  ASSERT_NE(CtxA, nullptr);
  core::VersionedFlowSensitive::Options OA;
  OA.LabelRep = core::MeldRep::SparseBits;
  core::VersionedFlowSensitive VA(CtxA->svfg(), OA);
  VA.solve();

  auto CtxB = buildFromConfig(C);
  ASSERT_NE(CtxB, nullptr);
  core::VersionedFlowSensitive::Options OB;
  OB.LabelRep = core::MeldRep::Interned;
  core::VersionedFlowSensitive VB(CtxB->svfg(), OB);
  VB.solve();

  EXPECT_EQ(VA.versioning().numVersions(), VB.versioning().numVersions());
  EXPECT_EQ(VA.numPtsSetsStored(), VB.numPtsSetsStored());
  for (ir::VarID V = 0; V < CtxA->module().symbols().numVars(); ++V)
    ASSERT_EQ(VA.ptsOfVar(V), VB.ptsOfVar(V)) << "var " << V;
}

INSTANTIATE_TEST_SUITE_P(Seeds, MeldRepEquivalence, ::testing::Range(1u, 13u));
