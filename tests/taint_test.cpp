//===- taint_test.cpp - Declarative taint spec engine -----------*- C++ -*-===//
///
/// \file
/// The spec engine's contract (docs/CHECKERS.md):
///  - the spec-file grammar parses, and malformed input fails with
///    line-numbered messages;
///  - the built-in uaf/dfree/null/leak specs reproduce the legacy
///    \c checker::runCheckers findings bit-identically on every backend
///    (the legacy engine stays as the differential oracle);
///  - every emitted finding carries a path witness that \c WitnessVerifier
///    replays independently, and tampered witnesses are rejected;
///  - sanitizers kill a label along the path;
///  - the spec-only uread/ufree rules report crafted bugs, stay silent on
///    their clean twins under flow-sensitive backends, and show the
///    expected ander-only false positives;
///  - demand mode produces the identical finding set and its witnesses
///    also verify;
///  - the pointer-aware free-of-non-heap IR lint fires exactly on frees
///    that cannot release heap memory.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "core/AnalysisRunner.h"
#include "query/QueryEngine.h"
#include "taint/TaintEngine.h"
#include "taint/TaintSpec.h"
#include "taint/WitnessVerifier.h"
#include "workload/BenchmarkSuite.h"

#include <algorithm>

using namespace vsfs;
using namespace vsfs::test;
using checker::CheckKind;

namespace {

/// Runs one backend and the spec engine over it; keeps the analysis alive
/// alongside the findings.
struct SpecRun {
  core::AnalysisRunner::RunResult R;
  std::vector<taint::TaintFinding> Findings;
};

SpecRun runSpecs(core::AnalysisContext &Ctx, const char *Analysis,
                 const std::vector<taint::TaintSpec> &Specs) {
  SpecRun Out;
  Out.R = core::AnalysisRunner::registry().run(Ctx, Analysis);
  EXPECT_NE(Out.R.Analysis, nullptr) << "unknown analysis " << Analysis;
  Out.Findings = taint::runTaint(Ctx.svfg(), *Out.R.Analysis, Specs);
  return Out;
}

uint32_t countKind(const std::vector<taint::TaintFinding> &Findings,
                   CheckKind K) {
  uint32_t N = 0;
  for (const taint::TaintFinding &F : Findings)
    N += F.F.Kind == K;
  return N;
}

/// The instruction that defines the variable named \p Name.
ir::InstID defSite(const ir::Module &M, const std::string &Name) {
  ir::VarID V = findVar(M, Name);
  for (ir::InstID I = 0; I < M.numInstructions(); ++I)
    if (M.inst(I).definesVar() && M.inst(I).Dst == V)
      return I;
  ADD_FAILURE() << "no definition of " << Name;
  return ir::InvalidInst;
}

/// The free instruction whose pointer operand is named \p Name.
ir::InstID freeSite(const ir::Module &M, const std::string &Name) {
  ir::VarID V = findVar(M, Name);
  for (ir::InstID I = 0; I < M.numInstructions(); ++I)
    if (M.inst(I).Kind == ir::InstKind::Free && M.inst(I).freePtr() == V)
      return I;
  ADD_FAILURE() << "no free of " << Name;
  return ir::InvalidInst;
}

constexpr const char *UafIR = R"(
func @main() {
entry:
  %h = alloc [heap]
  %v = alloc
  store %v -> %h
  free %h
  %use = load %h
  ret %use
}
)";

} // namespace

// --- Spec grammar --------------------------------------------------------

TEST(TaintSpecParse, AcceptsFullGrammar) {
  const char *Text = R"(
# a user rule with every clause
spec my-uaf
  report uaf
  source free
  flow object
  sink load,store
  sanitize inst 3,1
  sanitize kind copy,phi
end

spec my-leak
  report leak
  source heap-alloc
  flow none
  sink unfreed
end
)";
  std::vector<taint::TaintSpec> Specs;
  std::string Error;
  ASSERT_TRUE(taint::parseTaintSpecs(Text, Specs, Error)) << Error;
  ASSERT_EQ(Specs.size(), 2u);
  EXPECT_EQ(Specs[0].Name, "my-uaf");
  EXPECT_EQ(Specs[0].Kind, CheckKind::UseAfterFree);
  EXPECT_EQ(Specs[0].Flow, taint::FlowDomain::ObjectFlow);
  EXPECT_EQ(Specs[0].Sinks, taint::SinkLoad | taint::SinkStore);
  EXPECT_EQ(Specs[0].SanitizerInsts, (std::vector<ir::InstID>{1, 3}));
  EXPECT_TRUE(Specs[0].isSanitizerKind(ir::InstKind::Copy));
  EXPECT_TRUE(Specs[0].isSanitizerKind(ir::InstKind::Phi));
  EXPECT_FALSE(Specs[0].isSanitizerKind(ir::InstKind::Load));
  EXPECT_EQ(Specs[1].Kind, CheckKind::Leak);
  EXPECT_EQ(Specs[1].Sinks, taint::SinkUnfreed);
}

TEST(TaintSpecParse, RejectsMalformedWithLineNumbers) {
  struct Case {
    const char *Text;
    const char *Hint;
  };
  const Case Cases[] = {
      {"", "no specs"},
      {"report uaf\n", "line 1"},                     // clause outside spec
      {"spec a\n  report bogus\nend\n", "line 2"},    // unknown kind
      {"spec a\n  report uaf\n", "not closed"},       // missing end
      {"spec a\n  source free\n  flow object\n  sink load\nend\n"
       "spec a\n  source free\n  flow object\n  sink load\nend\n",
       "duplicate"},
      {"spec a\n  report leak\n  source heap-alloc\n  flow none\n"
       "  sink load\nend\n",
       "line 6"}, // leak must sink unfreed; caught by end's validation
      {"spec a\n  report uaf\n  source uninit-load\n  flow object\n"
       "  sink load\nend\n",
       "line 6"}, // object flow cannot source uninit-load
  };
  for (const Case &C : Cases) {
    std::vector<taint::TaintSpec> Specs;
    std::string Error;
    EXPECT_FALSE(taint::parseTaintSpecs(C.Text, Specs, Error))
        << "should reject: " << C.Text;
    EXPECT_NE(Error.find(C.Hint), std::string::npos)
        << "error for {" << C.Text << "} was: " << Error;
  }
}

TEST(TaintSpecParse, BuiltinsFilterByKind) {
  EXPECT_EQ(taint::builtinSpecs().size(), 6u);
  std::vector<taint::TaintSpec> Uaf =
      taint::builtinSpecs(checker::checkBit(CheckKind::UseAfterFree));
  ASSERT_EQ(Uaf.size(), 1u);
  EXPECT_EQ(Uaf[0].Name, "uaf");
  std::vector<taint::TaintSpec> New =
      taint::builtinSpecs(checker::checkBit(CheckKind::UninitRead) |
                          checker::checkBit(CheckKind::UntrackedFree));
  ASSERT_EQ(New.size(), 2u);
  EXPECT_EQ(New[0].Name, "uread");
  EXPECT_EQ(New[1].Name, "ufree");
}

// --- Differential: built-ins == legacy checkers --------------------------

TEST(TaintEngineTest, BuiltinsMatchLegacyCheckersOnEveryBackend) {
  workload::GenConfig Config;
  Config.Seed = 7;
  Config.InjectBugs = true;
  checker::GroundTruth GT;
  auto Module = workload::generateProgram(Config, &GT);
  core::AnalysisContext Ctx;
  Ctx.module() = std::move(*Module);
  Ctx.build();

  std::vector<taint::TaintSpec> Legacy =
      taint::builtinSpecs(checker::LegacyChecks);
  for (const char *Backend : {"ander", "iter", "sfs", "vsfs"}) {
    SpecRun Run = runSpecs(Ctx, Backend, Legacy);
    std::vector<checker::Finding> Projected =
        taint::toCheckerFindings(Run.Findings);
    std::vector<checker::Finding> Oracle =
        checker::runCheckers(Ctx.svfg(), *Run.R.Analysis);
    ASSERT_EQ(Projected.size(), Oracle.size()) << Backend;
    for (size_t I = 0; I < Oracle.size(); ++I)
      EXPECT_TRUE(Projected[I] == Oracle[I])
          << Backend << ": finding " << I << " differs:\n  spec:   "
          << checker::printFinding(Ctx.module(), Projected[I])
          << "\n  legacy: "
          << checker::printFinding(Ctx.module(), Oracle[I]);

    // And with the full builtin set, every finding's witness verifies.
    SpecRun Full = runSpecs(Ctx, Backend, taint::builtinSpecs());
    taint::WitnessVerifier V(Ctx.svfg(), *Full.R.Analysis);
    EXPECT_EQ(V.verifyAll(taint::builtinSpecs(), Full.Findings),
              Full.Findings.size())
        << Backend;
    for (const taint::TaintFinding &F : Full.Findings)
      EXPECT_EQ(F.V, taint::Verdict::Verified)
          << Backend << ": " << checker::printFinding(Ctx.module(), F.F)
          << " note: " << F.Note;
  }
}

// --- Witnesses -----------------------------------------------------------

TEST(TaintWitness, EndpointsAreSourceAndSink) {
  auto Ctx = buildFromText(UafIR);
  ASSERT_TRUE(Ctx);
  std::vector<taint::TaintSpec> Specs =
      taint::builtinSpecs(checker::checkBit(CheckKind::UseAfterFree));
  SpecRun Run = runSpecs(*Ctx, "vsfs", Specs);
  ASSERT_EQ(Run.Findings.size(), 1u);
  const taint::TaintFinding &F = Run.Findings[0];
  const ir::Module &M = Ctx->module();
  ASSERT_GE(F.Witness.size(), 2u);
  EXPECT_EQ(F.Witness.front(), Ctx->svfg().instNode(freeSite(M, "h")));
  EXPECT_EQ(F.Witness.back(), Ctx->svfg().instNode(defSite(M, "use")));
  EXPECT_EQ(F.F.Sink, defSite(M, "use"));
  EXPECT_EQ(F.F.Source, freeSite(M, "h"));
}

TEST(TaintWitness, TamperedWitnessIsRejected) {
  auto Ctx = buildFromText(UafIR);
  ASSERT_TRUE(Ctx);
  std::vector<taint::TaintSpec> Specs =
      taint::builtinSpecs(checker::checkBit(CheckKind::UseAfterFree));
  SpecRun Run = runSpecs(*Ctx, "vsfs", Specs);
  ASSERT_EQ(Run.Findings.size(), 1u);
  taint::WitnessVerifier V(Ctx->svfg(), *Run.R.Analysis);

  // Pristine: verifies.
  taint::TaintFinding Good = Run.Findings[0];
  EXPECT_TRUE(V.verify(Specs[0], Good));

  // Truncated chain: the remaining node is not a free site.
  taint::TaintFinding Truncated = Run.Findings[0];
  Truncated.Witness.erase(Truncated.Witness.begin());
  EXPECT_FALSE(V.verify(Specs[0], Truncated));
  EXPECT_EQ(Truncated.V, taint::Verdict::Unverifiable);
  EXPECT_FALSE(Truncated.Note.empty());

  // Wrong object: the hop is no longer an edge labelled with it.
  taint::TaintFinding WrongObj = Run.Findings[0];
  WrongObj.F.Obj = WrongObj.F.Obj + 1;
  EXPECT_FALSE(V.verify(Specs[0], WrongObj));

  // Fabricated hop: a node the graph has no edge to from the source.
  taint::TaintFinding BadHop = Run.Findings[0];
  BadHop.Witness.insert(BadHop.Witness.begin() + 1, BadHop.Witness.front());
  EXPECT_FALSE(V.verify(Specs[0], BadHop));
}

TEST(TaintEngineTest, SanitizerKillsPath) {
  auto Ctx = buildFromText(UafIR);
  ASSERT_TRUE(Ctx);
  const ir::Module &M = Ctx->module();

  taint::TaintSpec S;
  S.Name = "uaf-sanitized";
  S.Kind = CheckKind::UseAfterFree;
  S.Source = taint::SourceEvent::FreeSite;
  S.Flow = taint::FlowDomain::ObjectFlow;
  S.Sinks = taint::SinkLoad | taint::SinkStore;
  S.SanitizerInsts = {defSite(M, "use")};
  std::string Error;
  ASSERT_TRUE(taint::validateSpec(S, Error)) << Error;

  SpecRun Sanitized = runSpecs(*Ctx, "vsfs", {S});
  EXPECT_EQ(Sanitized.Findings.size(), 0u)
      << "sanitizer on the sink must kill the label";

  // Sanitizing by an irrelevant kind changes nothing.
  taint::TaintSpec S2 = S;
  S2.SanitizerInsts.clear();
  S2.SanitizerKinds = 1u << static_cast<uint32_t>(ir::InstKind::Phi);
  ASSERT_TRUE(taint::validateSpec(S2, Error)) << Error;
  SpecRun Unsanitized = runSpecs(*Ctx, "vsfs", {S2});
  EXPECT_EQ(Unsanitized.Findings.size(), 1u);
}

// --- The spec-only rules -------------------------------------------------

TEST(TaintNewRules, UninitReadReportsAndClearsOnInit) {
  const char *IR = R"(
func @main() {
entry:
  %bad = alloc
  %v1 = load %bad
  %good = alloc
  %init = alloc
  store %init -> %good
  %v2 = load %good
  ret %v2
}
)";
  auto Ctx = buildFromText(IR);
  ASSERT_TRUE(Ctx);
  std::vector<taint::TaintSpec> Specs =
      taint::builtinSpecs(checker::checkBit(CheckKind::UninitRead));
  SpecRun Run = runSpecs(*Ctx, "sfs", Specs);
  ASSERT_EQ(Run.Findings.size(), 1u);
  EXPECT_EQ(Run.Findings[0].F.Kind, CheckKind::UninitRead);
  EXPECT_EQ(Run.Findings[0].F.Sink, defSite(Ctx->module(), "v1"));
  taint::WitnessVerifier V(Ctx->svfg(), *Run.R.Analysis);
  EXPECT_EQ(V.verifyAll(Specs, Run.Findings), 1u);
}

TEST(TaintNewRules, UntrackedFreeReportsStackAndGlobalRoots) {
  const char *IR = R"(
global @g

func @main() {
entry:
  %s = alloc
  free %s
  %h = alloc [heap]
  free %h
  %pg = copy @g
  free %pg
  ret %s
}
)";
  auto Ctx = buildFromText(IR);
  ASSERT_TRUE(Ctx);
  std::vector<taint::TaintSpec> Specs =
      taint::builtinSpecs(checker::checkBit(CheckKind::UntrackedFree));
  SpecRun Run = runSpecs(*Ctx, "sfs", Specs);
  // The stack free and the global free report; the heap free does not.
  EXPECT_EQ(countKind(Run.Findings, CheckKind::UntrackedFree), 2u);
  for (const taint::TaintFinding &F : Run.Findings)
    EXPECT_NE(F.F.Sink, freeSite(Ctx->module(), "h"));
  taint::WitnessVerifier V(Ctx->svfg(), *Run.R.Analysis);
  EXPECT_EQ(V.verifyAll(Specs, Run.Findings), Run.Findings.size());
}

TEST(TaintNewRules, UntrackedFreeCleanTwinIsAnderOnly) {
  // The slot is strongly updated from a stack address to a heap address
  // before the reload feeds the free: flow-sensitive backends free exactly
  // the heap object, Andersen conflates both stores.
  const char *IR = R"(
func @main() {
entry:
  %slot = alloc
  %s = alloc
  %h = alloc [heap]
  store %s -> %slot
  store %h -> %slot
  %p = load %slot
  free %p
  ret %p
}
)";
  auto Ctx = buildFromText(IR);
  ASSERT_TRUE(Ctx);
  std::vector<taint::TaintSpec> Specs =
      taint::builtinSpecs(checker::checkBit(CheckKind::UntrackedFree));
  SpecRun Sfs = runSpecs(*Ctx, "sfs", Specs);
  EXPECT_EQ(countKind(Sfs.Findings, CheckKind::UntrackedFree), 0u);
  SpecRun Ander = runSpecs(*Ctx, "ander", Specs);
  EXPECT_EQ(countKind(Ander.Findings, CheckKind::UntrackedFree), 1u);
  // The ander false positive still carries a replayable witness: it is a
  // faithful report of what *that backend's* results imply.
  taint::WitnessVerifier V(Ctx->svfg(), *Ander.R.Analysis);
  EXPECT_EQ(V.verifyAll(Specs, Ander.Findings), Ander.Findings.size());
}

TEST(TaintNewRules, InjectedPatternsScoreExactly) {
  workload::GenConfig Config;
  Config.Seed = 7;
  Config.InjectBugs = true;
  checker::GroundTruth GT;
  auto Module = workload::generateProgram(Config, &GT);
  core::AnalysisContext Ctx;
  Ctx.module() = std::move(*Module);
  Ctx.build();

  std::vector<taint::TaintSpec> Specs = taint::builtinSpecs();
  SpecRun Sfs = runSpecs(Ctx, "sfs", Specs);
  auto Scores =
      checker::scoreFindings(taint::toCheckerFindings(Sfs.Findings), GT);
  const auto &URead = Scores[static_cast<uint32_t>(CheckKind::UninitRead)];
  const auto &UFree = Scores[static_cast<uint32_t>(CheckKind::UntrackedFree)];
  // Both injected uread sites (the dedicated pattern and the null
  // pattern's source load) and the injected ufree are found...
  EXPECT_EQ(URead.TP, 2u);
  EXPECT_EQ(URead.FN, 0u);
  EXPECT_EQ(UFree.TP, 1u);
  EXPECT_EQ(UFree.FN, 0u);
  // ...and the clean ufree twin stays silent under sfs but not ander.
  EXPECT_EQ(UFree.FP, 0u);
  SpecRun Ander = runSpecs(Ctx, "ander", Specs);
  auto AnderScores =
      checker::scoreFindings(taint::toCheckerFindings(Ander.Findings), GT);
  EXPECT_GE(AnderScores[static_cast<uint32_t>(CheckKind::UntrackedFree)].FP,
            1u);
  EXPECT_GT(AnderScores[static_cast<uint32_t>(CheckKind::UninitRead)].FP,
            URead.FP);
}

// --- Demand mode ---------------------------------------------------------

TEST(TaintDemand, MatchesExhaustiveAndVerifies) {
  workload::GenConfig Config;
  Config.Seed = 7;
  Config.InjectBugs = true;
  auto Module = workload::generateProgram(Config, nullptr);
  core::AnalysisContext Ctx;
  Ctx.module() = std::move(*Module);
  Ctx.build();

  std::vector<taint::TaintSpec> Specs = taint::builtinSpecs();
  SpecRun Exhaustive = runSpecs(Ctx, "vsfs", Specs);

  query::QueryEngine::Options QO;
  QO.Solver = "vsfs";
  query::QueryEngine Engine(Ctx, QO);
  std::vector<taint::TaintFinding> Demand =
      query::runTaintDemand(Engine, Specs);

  // Identical findings (witness routes may differ; the projection is the
  // finding identity the differential contract is about).
  EXPECT_EQ(taint::toCheckerFindings(Demand),
            taint::toCheckerFindings(Exhaustive.Findings));

  // Every demand witness replays against the engine's oracle view.
  taint::WitnessVerifier V(Ctx.svfg(), Engine);
  EXPECT_EQ(V.verifyAll(Specs, Demand), Demand.size());
  for (const taint::TaintFinding &F : Demand)
    EXPECT_EQ(F.V, taint::Verdict::Verified)
        << checker::printFinding(Ctx.module(), F.F) << " note: " << F.Note;
}

// --- The pointer-aware lint ----------------------------------------------

TEST(LintTest, FlagsFreeOfNonHeapTarget) {
  const char *IR = R"(
func @main() {
entry:
  %s = alloc
  free %s
  %h = alloc [heap]
  free %h
  ret %h
}
)";
  auto Ctx = buildFromText(IR);
  ASSERT_TRUE(Ctx);
  const ir::Module &M = Ctx->module();
  auto AuxPts = [&Ctx](ir::VarID V) { return &Ctx->andersen().ptsOfVar(V); };

  std::vector<std::string> Warnings = ir::lintModule(M, AuxPts);
  uint32_t NonHeapFrees = 0;
  for (const std::string &W : Warnings)
    NonHeapFrees += W.find("cannot release a heap object") != std::string::npos;
  EXPECT_EQ(NonHeapFrees, 1u) << "only the stack free should be flagged";

  // Without a points-to view the pointer-aware lints stay off.
  for (const std::string &W : ir::lintModule(M))
    EXPECT_EQ(W.find("cannot release"), std::string::npos) << W;
}

TEST(LintTest, FlagsFreeOfNothing) {
  // The freed pointer is loaded from a never-initialised cell: its
  // points-to set is empty, so the free releases nothing on any path.
  const char *IR = R"(
func @main() {
entry:
  %cell = alloc
  %p = load %cell
  free %p
  ret %p
}
)";
  auto Ctx = buildFromText(IR);
  ASSERT_TRUE(Ctx);
  auto AuxPts = [&Ctx](ir::VarID V) { return &Ctx->andersen().ptsOfVar(V); };
  bool Found = false;
  for (const std::string &W : ir::lintModule(Ctx->module(), AuxPts))
    Found |= W.find("points to nothing") != std::string::npos;
  EXPECT_TRUE(Found);
}
