//===- service_test.cpp - Analysis service soak tests ---------------------===//
///
/// The fault-isolated analysis daemon (docs/SERVICE.md), exercised
/// in-process over a real unix socket: the wire protocol round-trips, the
/// bounded result cache, per-request isolation under interleaved good /
/// malformed / budget-exhausted / fault-injected traffic, overload
/// shedding, concurrent mixed-representation clients, graceful drain, and
/// monotone health counters. The cross-process flavour of the same
/// guarantees lives in tests/service_identity.sh.
///
//===----------------------------------------------------------------------===//

#include "ir/Printer.h"
#include "service/Client.h"
#include "service/Exec.h"
#include "service/ResultCache.h"
#include "service/Server.h"
#include "workload/ProgramGenerator.h"

#include "gtest/gtest.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace vsfs;
using namespace vsfs::service;

namespace {

std::string moduleText(uint64_t Seed) {
  workload::GenConfig C;
  C.Seed = Seed;
  return ir::printModule(*workload::generateProgram(C, nullptr));
}

/// A per-test socket path: the pid disambiguates parallel ctest jobs, the
/// counter disambiguates tests within one process.
std::string uniqueSocket() {
  static std::atomic<int> N{0};
  return "/tmp/vsfs-service-test." + std::to_string(::getpid()) + "." +
         std::to_string(N++) + ".sock";
}

AnalyzeRequest baseRequest(const std::string &Module) {
  AnalyzeRequest R;
  R.Analysis = "vsfs";
  R.CheckSpecs = "builtin";
  R.Deterministic = true;
  R.WantStats = true;
  R.WantFindings = true;
  R.ModuleText = Module;
  return R;
}

/// What a cold process would answer: run the executor on a fresh thread,
/// i.e. a fresh thread-local analysis universe (representation latch,
/// interning cache, memory accounting), exactly like a daemon worker that
/// has never served anything.
Response coldReference(const AnalyzeRequest &R) {
  Response Out;
  std::thread([&] { Out = executeAnalyze(R); }).join();
  return Out;
}

// The identity contract covers the deterministic JSON documents; the
// human-readable summary carries wall-clock timings and peak RSS, which
// legitimately vary run to run.
void expectSameDocuments(const Response &A, const Response &B) {
  EXPECT_EQ(A.StatsJson, B.StatsJson);
  EXPECT_EQ(A.FindingsJson, B.FindingsJson);
  EXPECT_EQ(A.St, B.St);
  EXPECT_EQ(A.Term, B.Term);
}

struct RunningServer {
  explicit RunningServer(Server::Config C) : S(std::move(C)) {
    std::string Error;
    if (!S.start(Error))
      ADD_FAILURE() << "server start failed: " << Error;
  }
  ~RunningServer() { S.stop(); }
  Server S;
};

Server::Config config(const std::string &Sock, uint32_t Workers = 2,
                      uint32_t QueueCap = 16) {
  Server::Config C;
  C.SocketPath = Sock;
  C.Workers = Workers;
  C.QueueCap = QueueCap;
  return C;
}

//===----------------------------------------------------------------------===//
// Protocol round-trips
//===----------------------------------------------------------------------===//

TEST(ServiceProtocol, AnalyzeRequestRoundTrips) {
  AnalyzeRequest R = baseRequest("module m\nend\n");
  R.Mode = "demand";
  R.QueryTimeBudget = 0.25;
  R.QueryStepBudget = 77;
  R.PtsRepr = adt::PtsRepr::Persistent;
  R.Coalesce = true;
  R.CheckMask = 5;
  R.CheckSpecs = "inline";
  R.SpecText = "spec s\nend\n";
  R.AuxCallGraph = true;
  R.OVS = true;
  R.Stats = true;
  R.TimeBudget = 1.5;
  R.MemBudget = 1 << 20;
  R.StepBudget = 123;
  R.Policy = core::SolverOptions::OnExhaustion::Partial;
  R.Fault = "fault@2:vsfs";

  RequestKind Kind;
  AnalyzeRequest P;
  std::string Error;
  ASSERT_TRUE(parseRequest(encodeAnalyzeRequest(R), Kind, P, Error)) << Error;
  EXPECT_EQ(Kind, RequestKind::Analyze);
  EXPECT_EQ(P.Analysis, R.Analysis);
  EXPECT_EQ(P.Mode, R.Mode);
  EXPECT_EQ(P.QueryTimeBudget, R.QueryTimeBudget);
  EXPECT_EQ(P.QueryStepBudget, R.QueryStepBudget);
  EXPECT_EQ(P.PtsRepr, R.PtsRepr);
  EXPECT_EQ(P.Coalesce, R.Coalesce);
  EXPECT_EQ(P.CheckMask, R.CheckMask);
  EXPECT_EQ(P.CheckSpecs, R.CheckSpecs);
  EXPECT_EQ(P.SpecText, R.SpecText);
  EXPECT_EQ(P.AuxCallGraph, R.AuxCallGraph);
  EXPECT_EQ(P.OVS, R.OVS);
  EXPECT_EQ(P.Stats, R.Stats);
  EXPECT_EQ(P.TimeBudget, R.TimeBudget);
  EXPECT_EQ(P.MemBudget, R.MemBudget);
  EXPECT_EQ(P.StepBudget, R.StepBudget);
  EXPECT_EQ(P.Policy, R.Policy);
  EXPECT_EQ(P.Deterministic, R.Deterministic);
  EXPECT_EQ(P.WantStats, R.WantStats);
  EXPECT_EQ(P.WantFindings, R.WantFindings);
  EXPECT_EQ(P.Fault, R.Fault);
  EXPECT_EQ(P.ModuleText, R.ModuleText);
}

TEST(ServiceProtocol, ResponseRoundTrips) {
  Response R;
  R.St = Status::Degraded;
  R.Term = Termination::Steps;
  R.Degraded = true;
  R.Cached = true;
  R.RetryAfterMs = 250;
  R.Error = "an error line";
  R.Summary = "line one\nline two\n";
  R.StatsJson = "{\"a\": 1}\n";
  R.FindingsJson = "{\"b\": [2]}\n";

  Response P;
  std::string Error;
  ASSERT_TRUE(parseResponse(encodeResponse(R), P, Error)) << Error;
  EXPECT_EQ(P.St, R.St);
  EXPECT_EQ(P.Term, R.Term);
  EXPECT_EQ(P.Degraded, R.Degraded);
  EXPECT_EQ(P.Partial, R.Partial);
  EXPECT_EQ(P.Cached, R.Cached);
  EXPECT_EQ(P.RetryAfterMs, R.RetryAfterMs);
  EXPECT_EQ(P.Error, R.Error);
  EXPECT_EQ(P.Summary, R.Summary);
  EXPECT_EQ(P.StatsJson, R.StatsJson);
  EXPECT_EQ(P.FindingsJson, R.FindingsJson);
}

TEST(ServiceProtocol, MalformedPayloadsAreRejectedNotFatal) {
  RequestKind Kind;
  AnalyzeRequest R;
  std::string Error;
  for (const char *Bad :
       {"", "garbage", "vsfs-served-v1 analyze\n", // no end line
        "vsfs-served-v1 analyze\nmodule-bytes=999999\nend\n", // short section
        "vsfs-served-v0 analyze\nend\n"}) {        // wrong magic
    EXPECT_FALSE(parseRequest(Bad, Kind, R, Error)) << Bad;
    EXPECT_FALSE(Error.empty());
  }
  Response Resp;
  EXPECT_FALSE(parseResponse("not a response", Resp, Error));
}

TEST(ServiceProtocol, CacheKeyIgnoresFaultAndSeparatesOptions) {
  AnalyzeRequest A = baseRequest(moduleText(3));
  AnalyzeRequest B = A;
  B.Fault = "fault@1:vsfs"; // poisoned twin: same key, but never cached
  EXPECT_EQ(cacheKey(A), cacheKey(B));
  B = A;
  B.Analysis = "sfs";
  EXPECT_NE(cacheKey(A), cacheKey(B));
  B = A;
  B.ModuleText += " ";
  EXPECT_NE(cacheKey(A), cacheKey(B));
  B = A;
  B.StepBudget = 1;
  EXPECT_NE(cacheKey(A), cacheKey(B));
}

TEST(ServiceProtocol, StatusExitCodesMatchTheContract) {
  EXPECT_EQ(statusExitCode(Status::Ok), 0);
  EXPECT_EQ(statusExitCode(Status::Degraded), 0);
  EXPECT_EQ(statusExitCode(Status::Partial), 0);
  EXPECT_EQ(statusExitCode(Status::BadRequest), 1);
  EXPECT_EQ(statusExitCode(Status::BadInput), 2);
  EXPECT_EQ(statusExitCode(Status::Exhausted), 3);
  EXPECT_EQ(statusExitCode(Status::Fault), 4);
  EXPECT_EQ(statusExitCode(Status::Shed), 5);
}

//===----------------------------------------------------------------------===//
// Result cache
//===----------------------------------------------------------------------===//

TEST(ResultCacheTest, LRUBoundedByEntriesAndBytes) {
  ResultCache::Limits L;
  L.MaxEntries = 2;
  ResultCache C(L);
  Response R;
  R.Summary = "payload";
  C.insert("a", R);
  C.insert("b", R);
  C.insert("c", R); // evicts "a" (least recently used)
  EXPECT_EQ(C.entries(), 2u);
  EXPECT_EQ(C.evictions(), 1u);
  Response Out;
  EXPECT_FALSE(C.lookup("a", Out));
  EXPECT_TRUE(C.lookup("b", Out)); // "b" now most recently used
  C.insert("d", R);                // evicts "c", not "b"
  EXPECT_TRUE(C.lookup("b", Out));
  EXPECT_FALSE(C.lookup("c", Out)); // a miss leaves Out untouched
  EXPECT_EQ(Out.Summary, "payload");

  ResultCache::Limits LB;
  LB.MaxBytes = 10;
  ResultCache CB(LB);
  Response Big;
  Big.Summary = std::string(100, 'x');
  CB.insert("big", Big); // larger than the cap on its own: not retained
  EXPECT_EQ(CB.entries(), 0u);
  EXPECT_EQ(CB.bytes(), 0u);
}

TEST(ResultCacheTest, HitIsByteIdenticalToStoredResponse) {
  ResultCache C({});
  Response R;
  R.St = Status::Ok;
  R.Summary = "s\n";
  R.StatsJson = "{}\n";
  R.FindingsJson = "[]\n";
  C.insert("k", R);
  Response Out;
  ASSERT_TRUE(C.lookup("k", Out));
  expectSameDocuments(R, Out);
}

//===----------------------------------------------------------------------===//
// The daemon
//===----------------------------------------------------------------------===//

TEST(ServiceServer, SoakInterleavedOutcomesStayPerRequest) {
  const std::string Module = moduleText(7);
  const AnalyzeRequest Good = baseRequest(Module);
  const Response Cold = coldReference(Good);
  ASSERT_EQ(Cold.St, Status::Ok);
  ASSERT_FALSE(Cold.StatsJson.empty());

  RunningServer RS(config(uniqueSocket(), /*Workers=*/2));
  const std::string &Sock = RS.S.config().SocketPath;
  std::string Error;

  for (int Round = 0; Round < 3; ++Round) {
    // A malformed frame: answered BadRequest, daemon unharmed.
    Response R;
    ASSERT_TRUE(roundTrip(Sock, "complete garbage", R, Error)) << Error;
    EXPECT_EQ(R.St, Status::BadRequest);

    // A module that does not parse: BadInput for this request only.
    AnalyzeRequest Bad = Good;
    Bad.ModuleText = "not ir at all";
    ASSERT_TRUE(requestAnalyze(Sock, Bad, R, Error)) << Error;
    EXPECT_EQ(R.St, Status::BadInput);
    EXPECT_FALSE(R.Error.empty());

    // A request that exhausts its own budget under fail.
    AnalyzeRequest Exhausted = Good;
    Exhausted.StepBudget = 1;
    ASSERT_TRUE(requestAnalyze(Sock, Exhausted, R, Error)) << Error;
    EXPECT_EQ(R.St, Status::Exhausted);
    EXPECT_EQ(R.Term, Termination::Steps);

    // The same exhaustion under degrade is a served (exit-0) outcome.
    Exhausted.Policy = core::SolverOptions::OnExhaustion::Degrade;
    ASSERT_TRUE(requestAnalyze(Sock, Exhausted, R, Error)) << Error;
    EXPECT_EQ(R.St, Status::Degraded);
    EXPECT_TRUE(R.Degraded);

    // A fault-injected request is poisoned alone, in every phase class.
    for (const char *Fault : {"fault@1:serve", "fault@1:cache",
                              "fault@1:worker", "fault@1:vsfs"}) {
      AnalyzeRequest Poisoned = Good;
      Poisoned.Fault = Fault;
      ASSERT_TRUE(requestAnalyze(Sock, Poisoned, R, Error)) << Error;
      EXPECT_EQ(R.St, Status::Fault) << Fault;
      EXPECT_EQ(R.Term, Termination::Fault) << Fault;
      EXPECT_FALSE(R.Cached) << Fault;
    }

    // After all of that, a good request on the same daemon answers
    // bit-identically to a cold process.
    ASSERT_TRUE(requestAnalyze(Sock, Good, R, Error)) << Error;
    if (Round == 0) {
      EXPECT_FALSE(R.Cached);
      expectSameDocuments(Cold, R);
    } else {
      // ... and repeats are cache hits, byte-identical to the miss.
      EXPECT_TRUE(R.Cached);
      expectSameDocuments(Cold, R);
    }
  }
}

TEST(ServiceServer, MixedReprConcurrentClientsMatchColdRuns) {
  const std::string M1 = moduleText(11), M2 = moduleText(12);
  AnalyzeRequest SBV = baseRequest(M1);
  AnalyzeRequest Persistent = baseRequest(M2);
  Persistent.PtsRepr = adt::PtsRepr::Persistent;
  const Response ColdSBV = coldReference(SBV);
  const Response ColdPersistent = coldReference(Persistent);
  ASSERT_EQ(ColdSBV.St, Status::Ok);
  ASSERT_EQ(ColdPersistent.St, Status::Ok);

  RunningServer RS(config(uniqueSocket(), /*Workers=*/4, /*QueueCap=*/64));
  const std::string &Sock = RS.S.config().SocketPath;

  // Two representations in flight at once: if worker universes leaked
  // state (the repr latch, the interning cache, the byte accounting),
  // these documents would diverge from the cold references.
  std::atomic<int> Mismatches{0};
  std::vector<std::thread> Clients;
  for (int T = 0; T < 8; ++T)
    Clients.emplace_back([&, T] {
      const AnalyzeRequest &Req = (T % 2) ? Persistent : SBV;
      const Response &Cold = (T % 2) ? ColdPersistent : ColdSBV;
      for (int I = 0; I < 3; ++I) {
        Response R;
        std::string Error;
        if (!requestAnalyze(Sock, Req, R, Error) ||
            R.St != Status::Ok || R.StatsJson != Cold.StatsJson ||
            R.FindingsJson != Cold.FindingsJson)
          ++Mismatches;
      }
    });
  for (std::thread &C : Clients)
    C.join();
  EXPECT_EQ(Mismatches.load(), 0);
}

TEST(ServiceServer, ZeroQueueCapShedsWithRetryAfter) {
  Server::Config C = config(uniqueSocket(), /*Workers=*/1, /*QueueCap=*/0);
  C.RetryAfterMs = 333;
  RunningServer RS(C);
  Response R;
  std::string Error;
  ASSERT_TRUE(requestAnalyze(RS.S.config().SocketPath,
                             baseRequest(moduleText(3)), R, Error))
      << Error;
  EXPECT_EQ(R.St, Status::Shed);
  EXPECT_EQ(R.RetryAfterMs, 333u);
  EXPECT_NE(R.Error.find("retry"), std::string::npos);
  EXPECT_EQ(statusExitCode(R.St), 5);
}

TEST(ServiceServer, RequestTimeoutCeilingMapsToExhausted) {
  Server::Config C = config(uniqueSocket(), /*Workers=*/1);
  C.RequestTimeoutSeconds = 1e-4; // trips at the first deadline poll
  RunningServer RS(C);
  Response R;
  std::string Error;
  ASSERT_TRUE(requestAnalyze(RS.S.config().SocketPath,
                             baseRequest(moduleText(7)), R, Error))
      << Error;
  EXPECT_EQ(R.St, Status::Exhausted);
  EXPECT_EQ(R.Term, Termination::Deadline);
}

TEST(ServiceServer, ValidationErrorsAreBadRequests) {
  RunningServer RS(config(uniqueSocket()));
  const std::string &Sock = RS.S.config().SocketPath;
  std::string Error;

  AnalyzeRequest R = baseRequest(moduleText(3));
  R.Analysis = "all"; // not served: one request, one analysis
  Response Resp;
  ASSERT_TRUE(requestAnalyze(Sock, R, Resp, Error)) << Error;
  EXPECT_EQ(Resp.St, Status::BadRequest);

  R = baseRequest(moduleText(3));
  R.Fault = "bogus-spec";
  ASSERT_TRUE(requestAnalyze(Sock, R, Resp, Error)) << Error;
  EXPECT_EQ(Resp.St, Status::BadRequest);

  R = baseRequest(moduleText(3));
  R.CheckSpecs = "inline";
  R.SpecText = "spec broken\n  bogus clause\nend\n";
  ASSERT_TRUE(requestAnalyze(Sock, R, Resp, Error)) << Error;
  EXPECT_EQ(Resp.St, Status::BadRequest);
}

TEST(ServiceServer, HealthCountersAreMonotone) {
  RunningServer RS(config(uniqueSocket()));
  const std::string &Sock = RS.S.config().SocketPath;
  std::string Error;

  auto Count = [](const std::string &Json, const std::string &Key) {
    size_t At = Json.find("\"" + Key + "\": ");
    EXPECT_NE(At, std::string::npos) << Key << " missing in " << Json;
    return std::strtoull(Json.c_str() + At + Key.size() + 4, nullptr, 10);
  };

  Response H1;
  ASSERT_TRUE(requestHealth(Sock, H1, Error)) << Error;
  EXPECT_EQ(Count(H1.StatsJson, "requests_total"), 0u);

  AnalyzeRequest Good = baseRequest(moduleText(3));
  Response R;
  ASSERT_TRUE(requestAnalyze(Sock, Good, R, Error));
  ASSERT_TRUE(requestAnalyze(Sock, Good, R, Error)); // cache hit
  AnalyzeRequest Poisoned = Good;
  Poisoned.Fault = "deadline@1:worker";
  ASSERT_TRUE(requestAnalyze(Sock, Poisoned, R, Error));

  Response H2;
  ASSERT_TRUE(requestHealth(Sock, H2, Error)) << Error;
  EXPECT_EQ(Count(H2.StatsJson, "requests_total"), 3u);
  EXPECT_EQ(Count(H2.StatsJson, "ok"), 2u);
  EXPECT_EQ(Count(H2.StatsJson, "hits"), 1u);
  EXPECT_EQ(Count(H2.StatsJson, "misses"), 1u);
  EXPECT_EQ(Count(H2.StatsJson, "insertions"), 1u);
  EXPECT_EQ(Count(H2.StatsJson, "deadline"), 1u);
  EXPECT_GE(Count(H2.StatsJson, "health_requests"), 1u);
  EXPECT_EQ(Count(H2.StatsJson, "queue_depth"), 0u);
}

TEST(ServiceServer, GracefulStopDrainsInFlightWork) {
  RunningServer RS(config(uniqueSocket(), /*Workers=*/1, /*QueueCap=*/8));
  const std::string &Sock = RS.S.config().SocketPath;

  // Launch several requests at a single worker, then stop the server
  // while they are queued/in flight: every client must still receive a
  // complete, well-formed response (drain, not drop).
  std::atomic<int> Answered{0};
  std::vector<std::thread> Clients;
  for (int T = 0; T < 4; ++T)
    Clients.emplace_back([&] {
      Response R;
      std::string Error;
      if (requestAnalyze(Sock, baseRequest(moduleText(7)), R, Error) &&
          (R.St == Status::Ok || R.St == Status::Shed))
        ++Answered;
    });
  // Wait (via the in-process health snapshot) until all four are either
  // queued or already being served, then initiate the drain.
  auto Accepted = [&] {
    std::string H = RS.S.healthJson();
    auto Count = [&H](const char *Key) {
      size_t At = H.find(std::string("\"") + Key + "\": ");
      return At == std::string::npos
                 ? 0ull
                 : std::strtoull(H.c_str() + At + std::strlen(Key) + 4,
                                 nullptr, 10);
    };
    return Count("requests_total") + Count("queue_depth");
  };
  for (int Spins = 0; Accepted() < 4 && Spins < 500; ++Spins)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  RS.S.stop();
  for (std::thread &C : Clients)
    C.join();
  EXPECT_EQ(Answered.load(), 4);
}

} // namespace
