//===- sparsebitvector_test.cpp - SparseBitVector tests ---------*- C++ -*-===//
///
/// Unit tests plus parameterized property sweeps checking every operation
/// against a std::set<uint32_t> oracle.
///
//===----------------------------------------------------------------------===//

#include "adt/SparseBitVector.h"

#include "gtest/gtest.h"

#include <random>
#include <set>

using vsfs::adt::SparseBitVector;

namespace {

SparseBitVector fromList(std::initializer_list<uint32_t> Values) {
  SparseBitVector S;
  for (uint32_t V : Values)
    S.set(V);
  return S;
}

std::set<uint32_t> toSet(const SparseBitVector &S) {
  std::set<uint32_t> Out;
  for (uint32_t V : S)
    Out.insert(V);
  return Out;
}

} // namespace

TEST(SparseBitVector, EmptyBasics) {
  SparseBitVector S;
  EXPECT_TRUE(S.empty());
  EXPECT_EQ(S.count(), 0u);
  EXPECT_FALSE(S.test(0));
  EXPECT_FALSE(S.test(12345));
  EXPECT_EQ(S.begin(), S.end());
}

TEST(SparseBitVector, SetAndTest) {
  SparseBitVector S;
  EXPECT_TRUE(S.set(5));
  EXPECT_FALSE(S.set(5)); // Already set.
  EXPECT_TRUE(S.test(5));
  EXPECT_FALSE(S.test(4));
  EXPECT_EQ(S.count(), 1u);
}

TEST(SparseBitVector, SetAcrossElementBoundaries) {
  SparseBitVector S;
  // 128-bit elements: exercise word 0, word 1, and separate elements.
  for (uint32_t V : {0u, 63u, 64u, 127u, 128u, 1000000u})
    EXPECT_TRUE(S.set(V));
  for (uint32_t V : {0u, 63u, 64u, 127u, 128u, 1000000u})
    EXPECT_TRUE(S.test(V));
  EXPECT_FALSE(S.test(1));
  EXPECT_FALSE(S.test(129));
  EXPECT_EQ(S.count(), 6u);
}

TEST(SparseBitVector, ResetRemovesAndPrunesElements) {
  SparseBitVector S = fromList({7, 300});
  EXPECT_TRUE(S.reset(7));
  EXPECT_FALSE(S.reset(7));
  EXPECT_FALSE(S.test(7));
  EXPECT_TRUE(S.test(300));
  EXPECT_TRUE(S.reset(300));
  EXPECT_TRUE(S.empty());
  EXPECT_FALSE(S.reset(9999)); // Never present.
}

TEST(SparseBitVector, ClearEmptiesEverything) {
  SparseBitVector S = fromList({1, 2, 3, 500});
  S.clear();
  EXPECT_TRUE(S.empty());
  EXPECT_EQ(S.count(), 0u);
}

TEST(SparseBitVector, IterationIsSortedAscending) {
  SparseBitVector S = fromList({900, 5, 64, 63, 128, 0});
  std::vector<uint32_t> Values;
  for (uint32_t V : S)
    Values.push_back(V);
  EXPECT_EQ(Values, (std::vector<uint32_t>{0, 5, 63, 64, 128, 900}));
}

TEST(SparseBitVector, FindFirst) {
  EXPECT_EQ(fromList({42}).findFirst(), 42u);
  EXPECT_EQ(fromList({100, 7}).findFirst(), 7u);
  EXPECT_EQ(fromList({64}).findFirst(), 64u); // Word-1 only element.
  EXPECT_EQ(fromList({70, 65}).findFirst(), 65u);
}

TEST(SparseBitVector, UnionWith) {
  SparseBitVector A = fromList({1, 200});
  SparseBitVector B = fromList({2, 200, 4000});
  EXPECT_TRUE(A.unionWith(B));
  EXPECT_EQ(toSet(A), (std::set<uint32_t>{1, 2, 200, 4000}));
  // Union with a subset changes nothing.
  EXPECT_FALSE(A.unionWith(B));
  EXPECT_FALSE(A.unionWith(A));
}

TEST(SparseBitVector, UnionWithEmpty) {
  SparseBitVector A = fromList({3});
  SparseBitVector Empty;
  EXPECT_FALSE(A.unionWith(Empty));
  EXPECT_TRUE(Empty.unionWith(A));
  EXPECT_EQ(toSet(Empty), (std::set<uint32_t>{3}));
}

TEST(SparseBitVector, IntersectWith) {
  SparseBitVector A = fromList({1, 2, 3, 300});
  SparseBitVector B = fromList({2, 300, 400});
  EXPECT_TRUE(A.intersectWith(B));
  EXPECT_EQ(toSet(A), (std::set<uint32_t>{2, 300}));
  EXPECT_FALSE(A.intersectWith(B)); // Already the intersection.
}

TEST(SparseBitVector, IntersectToEmpty) {
  SparseBitVector A = fromList({1});
  SparseBitVector B = fromList({2});
  EXPECT_TRUE(A.intersectWith(B));
  EXPECT_TRUE(A.empty());
}

TEST(SparseBitVector, IntersectWithComplement) {
  SparseBitVector A = fromList({1, 2, 3, 130});
  SparseBitVector Kill = fromList({2, 130, 999});
  EXPECT_TRUE(A.intersectWithComplement(Kill));
  EXPECT_EQ(toSet(A), (std::set<uint32_t>{1, 3}));
  EXPECT_FALSE(A.intersectWithComplement(Kill));
}

TEST(SparseBitVector, Contains) {
  SparseBitVector A = fromList({1, 2, 3, 500});
  EXPECT_TRUE(A.contains(fromList({1, 500})));
  EXPECT_TRUE(A.contains(SparseBitVector()));
  EXPECT_FALSE(A.contains(fromList({1, 4})));
  EXPECT_FALSE(fromList({1}).contains(A));
}

TEST(SparseBitVector, Intersects) {
  EXPECT_TRUE(fromList({1, 2}).intersects(fromList({2, 3})));
  EXPECT_FALSE(fromList({1, 2}).intersects(fromList({3, 4})));
  EXPECT_FALSE(fromList({1}).intersects(SparseBitVector()));
  EXPECT_TRUE(fromList({1000}).intersects(fromList({1000})));
}

TEST(SparseBitVector, EqualityAndHash) {
  SparseBitVector A = fromList({1, 64, 129});
  SparseBitVector B = fromList({129, 1, 64});
  EXPECT_EQ(A, B);
  EXPECT_EQ(A.hash(), B.hash());
  B.set(2);
  EXPECT_NE(A, B);
}

TEST(SparseBitVector, CopyAndMoveSemantics) {
  SparseBitVector A = fromList({5, 600});
  SparseBitVector Copy(A);
  EXPECT_EQ(Copy, A);
  Copy.set(7);
  EXPECT_FALSE(A.test(7)); // Deep copy.

  SparseBitVector Moved(std::move(Copy));
  EXPECT_TRUE(Moved.test(7));
  EXPECT_TRUE(Moved.test(600));

  SparseBitVector Assigned;
  Assigned = A;
  EXPECT_EQ(Assigned, A);
  Assigned = std::move(Moved);
  EXPECT_TRUE(Assigned.test(7));
}

TEST(SparseBitVector, MemoryAccounting) {
  uint64_t Before = vsfs::PointsToBytes::live();
  {
    SparseBitVector S;
    for (uint32_t I = 0; I < 1000; ++I)
      S.set(I * 256); // One element per bit: forces real storage.
    EXPECT_GT(vsfs::PointsToBytes::live(), Before);
  }
  // Destruction releases every accounted byte.
  EXPECT_EQ(vsfs::PointsToBytes::live(), Before);
}

// --- Property sweeps against a std::set oracle ---------------------------

class SparseBitVectorProperty : public ::testing::TestWithParam<uint32_t> {};

TEST_P(SparseBitVectorProperty, MatchesSetOracle) {
  std::mt19937 Rng(GetParam());
  SparseBitVector S;
  std::set<uint32_t> Oracle;
  // Mixed universe: clustered small values and sparse large ones.
  auto Draw = [&Rng]() {
    uint32_t Roll = Rng() % 3;
    if (Roll == 0)
      return Rng() % 64;
    if (Roll == 1)
      return Rng() % 4096;
    return Rng() % 1000000;
  };
  for (int Step = 0; Step < 2000; ++Step) {
    uint32_t V = Draw();
    switch (Rng() % 3) {
    case 0:
      EXPECT_EQ(S.set(V), Oracle.insert(V).second);
      break;
    case 1:
      EXPECT_EQ(S.reset(V), Oracle.erase(V) > 0);
      break;
    case 2:
      EXPECT_EQ(S.test(V), Oracle.count(V) > 0);
      break;
    }
  }
  EXPECT_EQ(toSet(S), Oracle);
  EXPECT_EQ(S.count(), Oracle.size());
  if (!Oracle.empty()) {
    EXPECT_EQ(S.findFirst(), *Oracle.begin());
  }
}

TEST_P(SparseBitVectorProperty, BinaryOpsMatchSetOracle) {
  std::mt19937 Rng(GetParam() * 7919 + 13);
  auto Random = [&Rng]() {
    SparseBitVector S;
    std::set<uint32_t> O;
    uint32_t N = Rng() % 200;
    for (uint32_t I = 0; I < N; ++I) {
      uint32_t V = Rng() % 2048;
      S.set(V);
      O.insert(V);
    }
    return std::make_pair(S, O);
  };

  for (int Round = 0; Round < 20; ++Round) {
    auto [A, OA] = Random();
    auto [B, OB] = Random();

    SparseBitVector U = A;
    U.unionWith(B);
    std::set<uint32_t> OU = OA;
    OU.insert(OB.begin(), OB.end());
    EXPECT_EQ(toSet(U), OU);

    SparseBitVector I = A;
    I.intersectWith(B);
    std::set<uint32_t> OI;
    for (uint32_t V : OA)
      if (OB.count(V))
        OI.insert(V);
    EXPECT_EQ(toSet(I), OI);

    SparseBitVector D = A;
    D.intersectWithComplement(B);
    std::set<uint32_t> OD;
    for (uint32_t V : OA)
      if (!OB.count(V))
        OD.insert(V);
    EXPECT_EQ(toSet(D), OD);

    EXPECT_EQ(A.contains(B), std::includes(OA.begin(), OA.end(), OB.begin(),
                                           OB.end()));
    EXPECT_EQ(A.intersects(B), !OI.empty());

    // Algebra required of the meld operator (§IV-B): union is commutative,
    // associative, idempotent with the empty set as identity.
    SparseBitVector BA = B;
    BA.unionWith(A);
    EXPECT_EQ(U, BA);
    SparseBitVector Idem = A;
    Idem.unionWith(A);
    EXPECT_EQ(Idem, A);
    SparseBitVector Ident = A;
    Ident.unionWith(SparseBitVector());
    EXPECT_EQ(Ident, A);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparseBitVectorProperty,
                         ::testing::Range(1u, 13u));
