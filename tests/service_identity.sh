#!/usr/bin/env bash
# The analysis service's two headline guarantees (docs/SERVICE.md), driven
# end to end through real processes and the real socket:
#
#  1. Fault isolation: every Termination kind injected into every phase of
#     an in-flight request — the three service phases and the pipeline/
#     solver phases — becomes a structured error for that request only.
#     The daemon is never restarted during the matrix.
#  2. Identity: after absorbing the whole fault matrix, the SAME daemon
#     serves every benchmark preset with --stats-json and --findings-json
#     documents bit-identical to a cold vsfs-wpa run on the same IR file,
#     and a repeated request is a cache hit with byte-identical documents.
#
# Usage: service_identity.sh <path-to-vsfs-wpa> <path-to-vsfs-served>
set -u

WPA=${1:?usage: service_identity.sh <vsfs-wpa> <vsfs-served>}
SERVED=${2:?usage: service_identity.sh <vsfs-wpa> <vsfs-served>}
FAILURES=0

DIR=$(mktemp -d /tmp/vsfs-identity.XXXXXX)
SOCK="$DIR/served.sock"
trap 'kill -9 $SRV 2>/dev/null; rm -rf "$DIR"' EXIT

"$SERVED" --socket="$SOCK" --workers=2 > "$DIR/served.log" 2>&1 &
SRV=$!
for _ in $(seq 50); do [ -S "$SOCK" ] && break; sleep 0.1; done
if ! [ -S "$SOCK" ]; then
  echo "FAIL: daemon did not come up" >&2
  exit 1
fi

"$WPA" --bench du --emit-ir="$DIR/du.ir" > /dev/null

# --- 1. fault-kill matrix ------------------------------------------------
for kind in deadline memory steps fault; do
  for phase in serve cache worker andersen memssa svfg vsfs; do
    VSFS_FAULT_INJECT="$kind@1:$phase" "$WPA" --connect="$SOCK" \
      "$DIR/du.ir" --analysis=vsfs --on-exhaustion=fail \
      > /dev/null 2> "$DIR/err.txt"
    got=$?
    want=3
    [ "$kind" = fault ] && want=4
    if [ "$got" -ne "$want" ]; then
      echo "FAIL: $kind@1:$phase: expected exit $want, got $got" >&2
      FAILURES=$((FAILURES + 1))
    elif ! grep -q "budget exhausted ($kind)" "$DIR/err.txt"; then
      echo "FAIL: $kind@1:$phase: missing structured error:" >&2
      cat "$DIR/err.txt" >&2
      FAILURES=$((FAILURES + 1))
    else
      echo "ok: $kind@1:$phase -> exit $want, per-request error"
    fi
  done
done

if ! kill -0 $SRV 2>/dev/null; then
  echo "FAIL: daemon died during the fault matrix" >&2
  exit 1
fi
echo "ok: daemon survived the full fault matrix"

# --- 2. per-preset identity on the battle-tested daemon ------------------
PRESETS="du ninja bake dpkg nano i3 psql janet astyle tmux mruby mutt bash \
lynx hyriseConsole"
ARGS=(--analysis=vsfs --deterministic-stats --check-specs=builtin)
for b in $PRESETS; do
  IR="$DIR/$b.ir"
  "$WPA" --bench "$b" --emit-ir="$IR" > /dev/null
  "$WPA" "$IR" "${ARGS[@]}" --stats-json="$DIR/$b.cold.stats" \
    --findings-json="$DIR/$b.cold.findings" > /dev/null 2>&1
  cold=$?
  "$WPA" --connect="$SOCK" "$IR" "${ARGS[@]}" \
    --stats-json="$DIR/$b.served.stats" \
    --findings-json="$DIR/$b.served.findings" > /dev/null 2>&1
  served=$?
  if [ "$cold" -ne 0 ] || [ "$served" -ne 0 ]; then
    echo "FAIL: $b: cold exit $cold, served exit $served" >&2
    FAILURES=$((FAILURES + 1))
    continue
  fi
  if ! cmp -s "$DIR/$b.cold.stats" "$DIR/$b.served.stats"; then
    echo "FAIL: $b: served stats JSON differs from cold run" >&2
    diff "$DIR/$b.cold.stats" "$DIR/$b.served.stats" | head -5 >&2
    FAILURES=$((FAILURES + 1))
  fi
  if ! cmp -s "$DIR/$b.cold.findings" "$DIR/$b.served.findings"; then
    echo "FAIL: $b: served findings JSON differs from cold run" >&2
    FAILURES=$((FAILURES + 1))
  fi
  # The repeat must be a cache hit, byte-identical to the miss.
  "$WPA" --connect="$SOCK" "$IR" "${ARGS[@]}" \
    --stats-json="$DIR/$b.hit.stats" \
    --findings-json="$DIR/$b.hit.findings" > "$DIR/$b.hit.log" 2>&1
  if ! grep -q "served from result cache" "$DIR/$b.hit.log"; then
    echo "FAIL: $b: repeated request was not a cache hit" >&2
    FAILURES=$((FAILURES + 1))
  elif ! cmp -s "$DIR/$b.served.stats" "$DIR/$b.hit.stats" ||
       ! cmp -s "$DIR/$b.served.findings" "$DIR/$b.hit.findings"; then
    echo "FAIL: $b: cache hit not byte-identical to the miss" >&2
    FAILURES=$((FAILURES + 1))
  else
    echo "ok: $b cold == served == cache hit (bit-identical)"
  fi
done

kill -TERM $SRV
wait $SRV
if [ $? -ne 0 ]; then
  echo "FAIL: daemon did not drain and exit 0" >&2
  FAILURES=$((FAILURES + 1))
fi
SRV=""

if [ "$FAILURES" -ne 0 ]; then
  echo "$FAILURES service identity assertion(s) failed" >&2
  exit 1
fi
echo "all service identity assertions passed"
