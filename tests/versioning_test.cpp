//===- versioning_test.cpp - Object versioning tests ------------*- C++ -*-===//
///
/// §IV-C: prelabelling + meld labelling over the SVFG. Includes the paper's
/// motivating example (Figures 2/5/7/9): two stores, four loads, and the
/// version sharing κ1 / κ1⊙κ2 they illustrate.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "core/ObjectVersioning.h"

using namespace vsfs;
using namespace vsfs::test;
using core::ObjectVersioning;
using core::Version;

namespace {

ir::ObjID findObj(const ir::Module &M, const std::string &Name) {
  for (ir::ObjID O = 0; O < M.symbols().numObjects(); ++O)
    if (M.symbols().object(O).Name == Name)
      return O;
  ADD_FAILURE() << "unknown object " << Name;
  return ir::InvalidObj;
}

std::vector<ir::InstID> findAll(const ir::Module &M, ir::InstKind Kind,
                                const std::string &FunName) {
  ir::FunID F = M.lookupFunction(FunName);
  std::vector<ir::InstID> Out;
  for (ir::InstID I = 0; I < M.numInstructions(); ++I)
    if (M.inst(I).Kind == Kind && M.inst(I).Parent == F)
      Out.push_back(I);
  return Out;
}

/// The motivating example of Figure 2: an object o written by two stores
/// (ℓ1 dominating everything, ℓ2 on one branch) and read by four loads:
/// two seeing only ℓ1's value, two seeing the merge of both.
const char *MotivatingExample = R"(
  func @main() {
  entry:
    %a = alloc
    %b = alloc
    %o = alloc [weak]       ; the object o of Figure 2
    %p = copy %o            ; pt(p) = {o}
    %q = copy %o            ; pt(q) = {o}
    store %a -> %p          ; l1: o's points-to becomes {a}
    br left, right
  left:
    %l2v = load %q          ; l2: consumes l1's version k1
    %l3v = load %q          ; l3: consumes k1 too
    br middle
  middle:
    store %b -> %q          ; l2/store: o's points-to gains {b} (weak)
    br join
  join:
    br out
  right:
    br out
  out:
    %l4v = load %q          ; l4: consumes k1 (x) k2
    %l5v = load %q          ; l5: same version as l4
    ret %l4v
  }
)";

} // namespace

TEST(ObjectVersioning, StoresYieldDistinctFreshVersions) {
  auto Ctx = buildFromText(MotivatingExample);
  ObjectVersioning OV(Ctx->svfg(), /*OnTheFlyCallGraph=*/true);
  OV.run();
  auto &M = Ctx->module();
  ir::ObjID O = findObj(M, "o.obj");
  auto Stores = findAll(M, ir::InstKind::Store, "main");
  ASSERT_EQ(Stores.size(), 2u);
  Version Y1 = OV.yield(Stores[0], O);
  Version Y2 = OV.yield(Stores[1], O);
  EXPECT_NE(Y1, Y2) << "each store yields its own version";
  EXPECT_FALSE(OV.isEpsilon(Y1));
  EXPECT_FALSE(OV.isEpsilon(Y2));
}

TEST(ObjectVersioning, LoadsShareVersionsAsInFigure2) {
  auto Ctx = buildFromText(MotivatingExample);
  ObjectVersioning OV(Ctx->svfg(), true);
  OV.run();
  auto &M = Ctx->module();
  ir::ObjID O = findObj(M, "o.obj");
  auto Loads = findAll(M, ir::InstKind::Load, "main");
  ASSERT_EQ(Loads.size(), 4u);
  Version L2 = OV.consume(Loads[0], O);
  Version L3 = OV.consume(Loads[1], O);
  Version L4 = OV.consume(Loads[2], O);
  Version L5 = OV.consume(Loads[3], O);

  auto Stores = findAll(M, ir::InstKind::Store, "main");
  Version K1 = OV.yield(Stores[0], O);

  // Figure 2b column 3: C_l2(o) = C_l3(o) = Y_l1(o) = k1 ...
  EXPECT_EQ(L2, K1);
  EXPECT_EQ(L3, K1);
  // ... and C_l4(o) = C_l5(o) = k1 (x) k2, distinct from k1 and k2.
  EXPECT_EQ(L4, L5);
  EXPECT_NE(L4, K1);
  EXPECT_NE(L4, OV.yield(Stores[1], O));
}

TEST(ObjectVersioning, MotivatingExampleStorageCounts) {
  // Figure 2b: our approach stores 3 points-to sets for o (k1, k2, k1(x)k2)
  // where SFS stores 6.
  auto Ctx = buildFromText(MotivatingExample);
  ObjectVersioning OV(Ctx->svfg(), true);
  OV.run();
  auto &M = Ctx->module();
  ir::ObjID O = findObj(M, "o.obj");

  std::set<Version> Versions;
  for (ir::InstID I = 0; I < M.numInstructions(); ++I) {
    const ir::Instruction &Inst = M.inst(I);
    if (Inst.Parent != M.lookupFunction("main"))
      continue;
    if (Inst.Kind == ir::InstKind::Load || Inst.Kind == ir::InstKind::Store) {
      Version C = OV.consume(I, O);
      Version Y = OV.yield(I, O);
      if (!OV.isEpsilon(C))
        Versions.insert(C);
      if (!OV.isEpsilon(Y))
        Versions.insert(Y);
    }
  }
  EXPECT_EQ(Versions.size(), 3u) << "k1, k2, and k1(x)k2";
}

TEST(ObjectVersioning, NonStoreNodesYieldWhatTheyConsume) {
  auto Ctx = buildFromText(MotivatingExample);
  auto &G = Ctx->svfg();
  ObjectVersioning OV(G, true);
  OV.run();
  auto &M = Ctx->module();
  ir::ObjID O = findObj(M, "o.obj");
  for (ir::InstID I = 0; I < M.numInstructions(); ++I) {
    if (M.inst(I).Kind == ir::InstKind::Store)
      continue;
    EXPECT_EQ(OV.consume(I, O), OV.yield(I, O))
        << "[INTERNAL]: non-store " << ir::printInst(M, I);
  }
}

TEST(ObjectVersioning, EpsilonForUntouchedObjects) {
  auto Ctx = buildFromText(R"(
    func @main() {
    entry:
      %never = alloc
      %x = alloc
      %l = load %never     ; no store ever writes never.obj
      ret %l
    }
  )");
  ObjectVersioning OV(Ctx->svfg(), true);
  OV.run();
  auto &M = Ctx->module();
  ir::ObjID O = findObj(M, "never.obj");
  auto Loads = findAll(M, ir::InstKind::Load, "main");
  ASSERT_EQ(Loads.size(), 1u);
  EXPECT_TRUE(OV.isEpsilon(OV.consume(Loads[0], O)));
  EXPECT_EQ(OV.objectOf(OV.consume(Loads[0], O)), O);
}

TEST(ObjectVersioning, DeltaNodesGetFrozenConsumeVersions) {
  // An address-taken function's entry-chi consumes a fresh version even
  // though a direct call also reaches it ([OTF-CG] prelabelling).
  auto Ctx = buildFromText(R"(
    global @g
    func @writer(%v) {
    entry:
      store %v -> @g
      ret
    }
    func @main() {
    entry:
      %a = alloc
      %fp = funcaddr @writer
      call %fp(%a)
      %x = load @g
      ret %x
    }
  )");
  auto &G = Ctx->svfg();
  auto &M = Ctx->module();
  ir::ObjID GObj = findObj(M, "g");

  ObjectVersioning OTF(G, /*OnTheFlyCallGraph=*/true);
  OTF.run();
  svfg::NodeID EntryChi = G.entryChiNode(M.lookupFunction("writer"), GObj);
  ASSERT_NE(EntryChi, svfg::InvalidNode);
  Version C = OTF.consume(EntryChi, GObj);
  EXPECT_FALSE(OTF.isEpsilon(C)) << "δ node consumes a prelabelled version";
  EXPECT_GT(OTF.stats().lookup("prelabels"), 1u);
}

TEST(ObjectVersioning, NoDeltaPrelabelsInAuxCallGraphMode) {
  auto Ctx = buildFromText(R"(
    global @g
    func @writer(%v) {
    entry:
      store %v -> @g
      ret
    }
    func @main() {
    entry:
      %a = alloc
      %fp = funcaddr @writer
      call %fp(%a)
      ret
    }
  )", /*ConnectAuxIndirectCalls=*/true);
  ObjectVersioning OV(Ctx->svfg(), /*OnTheFlyCallGraph=*/false);
  OV.run();
  // Without OTF resolution there are no δ nodes: every prelabel comes from
  // a store. This program has exactly 2 stores of g (the writer's store;
  // __global_init__ has none for g) -> prelabels == number of store-chis.
  uint64_t StoreChis = 0;
  auto &M = Ctx->module();
  for (ir::InstID I = 0; I < M.numInstructions(); ++I)
    if (M.inst(I).Kind == ir::InstKind::Store)
      StoreChis += Ctx->memSSA().chiObjs(I).count();
  EXPECT_EQ(OV.stats().lookup("prelabels"), StoreChis);
}

TEST(ObjectVersioning, VersioningIsFastRelativeToNothing) {
  // Smoke: versioning runs and reports timing and counts on a generated
  // program.
  workload::GenConfig C;
  C.Seed = 5;
  C.NumFunctions = 12;
  auto Ctx = buildFromConfig(C);
  ASSERT_NE(Ctx, nullptr);
  ObjectVersioning OV(Ctx->svfg(), true);
  OV.run();
  EXPECT_GT(OV.numVersions(), Ctx->module().symbols().numObjects());
  EXPECT_GE(OV.seconds(), 0.0);
  EXPECT_GT(OV.stats().lookup("meld-ops"), 0u);
}

TEST(ObjectVersioning, VersionsBelongToTheirObject) {
  workload::GenConfig C;
  C.Seed = 9;
  auto Ctx = buildFromConfig(C);
  ASSERT_NE(Ctx, nullptr);
  auto &M = Ctx->module();
  auto &G = Ctx->svfg();
  ObjectVersioning OV(G, true);
  OV.run();
  // consume/yield of (node, o) always return a version of o itself.
  for (ir::InstID I = 0; I < M.numInstructions(); ++I) {
    const ir::Instruction &Inst = M.inst(I);
    if (Inst.Kind == ir::InstKind::Load) {
      for (uint32_t O : Ctx->memSSA().muObjs(I))
        EXPECT_EQ(OV.objectOf(OV.consume(I, O)), O);
    } else if (Inst.Kind == ir::InstKind::Store) {
      for (uint32_t O : Ctx->memSSA().chiObjs(I)) {
        EXPECT_EQ(OV.objectOf(OV.consume(I, O)), O);
        EXPECT_EQ(OV.objectOf(OV.yield(I, O)), O);
      }
    }
  }
}
