//===- labelstore_test.cpp - Hash-consed label tests ------------*- C++ -*-===//

#include "adt/LabelStore.h"

#include "gtest/gtest.h"

#include <random>
#include <set>

using namespace vsfs;
using adt::EpsilonLabel;
using adt::LabelID;
using adt::LabelStore;

TEST(LabelStore, EpsilonIsIdentity) {
  LabelStore S;
  LabelID A = S.singleton(3);
  EXPECT_EQ(S.meld(A, EpsilonLabel), A);
  EXPECT_EQ(S.meld(EpsilonLabel, A), A);
  EXPECT_EQ(S.meld(EpsilonLabel, EpsilonLabel), EpsilonLabel);
  EXPECT_TRUE(S.bits(EpsilonLabel).empty());
}

TEST(LabelStore, SingletonsAreInterned) {
  LabelStore S;
  EXPECT_EQ(S.singleton(5), S.singleton(5));
  EXPECT_NE(S.singleton(5), S.singleton(6));
  EXPECT_TRUE(S.bits(S.singleton(5)).test(5));
  EXPECT_EQ(S.bits(S.singleton(5)).count(), 1u);
}

TEST(LabelStore, MeldIsIdempotent) {
  LabelStore S;
  LabelID A = S.singleton(1);
  EXPECT_EQ(S.meld(A, A), A);
}

TEST(LabelStore, MeldIsCommutative) {
  LabelStore S;
  LabelID A = S.singleton(1), B = S.singleton(2);
  EXPECT_EQ(S.meld(A, B), S.meld(B, A));
}

TEST(LabelStore, MeldIsAssociative) {
  LabelStore S;
  LabelID A = S.singleton(1), B = S.singleton(2), C = S.singleton(3);
  EXPECT_EQ(S.meld(S.meld(A, B), C), S.meld(A, S.meld(B, C)));
}

TEST(LabelStore, MeldComputesUnions) {
  LabelStore S;
  LabelID AB = S.meld(S.singleton(1), S.singleton(2));
  EXPECT_TRUE(S.bits(AB).test(1));
  EXPECT_TRUE(S.bits(AB).test(2));
  EXPECT_EQ(S.bits(AB).count(), 2u);
}

TEST(LabelStore, EqualSetsShareOneID) {
  LabelStore S;
  LabelID X = S.meld(S.singleton(1), S.singleton(2));
  vsfs::adt::SparseBitVector Bits;
  Bits.set(2);
  Bits.set(1);
  EXPECT_EQ(S.fromBits(Bits), X);
  EXPECT_EQ(S.fromBits(vsfs::adt::SparseBitVector()), EpsilonLabel);
}

TEST(LabelStore, MemoisationCounts) {
  LabelStore S;
  LabelID A = S.singleton(1), B = S.singleton(2);
  S.meld(A, B); // Miss.
  uint64_t Misses = S.memoMisses();
  S.meld(A, B); // Hit.
  S.meld(B, A); // Hit (commutative normalisation).
  EXPECT_EQ(S.memoMisses(), Misses);
  EXPECT_GE(S.memoHits(), 2u);
}

TEST(LabelStore, RandomizedAgainstSetSemantics) {
  std::mt19937 Rng(31);
  LabelStore S;
  // Pairs of (id, oracle set); repeatedly meld random pairs and compare.
  std::vector<std::pair<LabelID, std::set<uint32_t>>> Pool;
  for (uint32_t I = 0; I < 8; ++I)
    Pool.push_back({S.singleton(I), {I}});
  for (int Step = 0; Step < 500; ++Step) {
    auto &[IdA, SetA] = Pool[Rng() % Pool.size()];
    auto &[IdB, SetB] = Pool[Rng() % Pool.size()];
    LabelID M = S.meld(IdA, IdB);
    std::set<uint32_t> Expect = SetA;
    Expect.insert(SetB.begin(), SetB.end());
    std::set<uint32_t> Got;
    for (uint32_t V : S.bits(M))
      Got.insert(V);
    ASSERT_EQ(Got, Expect);
    if (Pool.size() < 64)
      Pool.push_back({M, Expect});
  }
}
