//===- graph_test.cpp - Graph algorithm tests -------------------*- C++ -*-===//
///
/// SCC against brute-force reachability, dominators against the naive
/// O(V·E) "remove the node and test reachability" definition, and frontier
/// sanity — on hand-made and random graphs.
///
//===----------------------------------------------------------------------===//

#include "graph/Dominators.h"
#include "graph/Graph.h"
#include "graph/SCC.h"

#include "gtest/gtest.h"

#include <random>

using namespace vsfs::graph;

namespace {

/// Reachability matrix by BFS from every node.
std::vector<std::vector<bool>> reachability(const AdjacencyGraph &G) {
  uint32_t N = G.numNodes();
  std::vector<std::vector<bool>> R(N, std::vector<bool>(N, false));
  for (uint32_t S = 0; S < N; ++S) {
    std::vector<uint32_t> Stack{S};
    R[S][S] = true;
    while (!Stack.empty()) {
      uint32_t Cur = Stack.back();
      Stack.pop_back();
      for (uint32_t Next : G.successors(Cur))
        if (!R[S][Next]) {
          R[S][Next] = true;
          Stack.push_back(Next);
        }
    }
  }
  return R;
}

AdjacencyGraph randomGraph(std::mt19937 &Rng, uint32_t N, uint32_t Edges) {
  AdjacencyGraph G(N);
  for (uint32_t I = 0; I < Edges; ++I)
    G.addEdge(Rng() % N, Rng() % N);
  return G;
}

/// Random graph where every node is reachable from node 0 and node 0 has no
/// predecessors (a CFG shape; the verifier enforces the same for IR).
AdjacencyGraph randomFlowGraph(std::mt19937 &Rng, uint32_t N,
                               uint32_t ExtraEdges) {
  AdjacencyGraph G(N);
  for (uint32_t I = 1; I < N; ++I)
    G.addEdge(Rng() % I, I); // Spanning tree from 0.
  for (uint32_t I = 0; I < ExtraEdges; ++I)
    G.addEdge(Rng() % N, 1 + Rng() % (N - 1));
  return G;
}

} // namespace

TEST(AdjacencyGraph, Basics) {
  AdjacencyGraph G;
  EXPECT_EQ(G.numNodes(), 0u);
  uint32_t A = G.addNode(), B = G.addNode();
  G.addEdge(A, B);
  EXPECT_EQ(G.numNodes(), 2u);
  EXPECT_EQ(G.numEdges(), 1u);
  EXPECT_EQ(G.successors(A).size(), 1u);
  EXPECT_TRUE(G.successors(B).empty());
}

TEST(AdjacencyGraph, UniqueEdges) {
  AdjacencyGraph G(2);
  EXPECT_TRUE(G.addUniqueEdge(0, 1));
  EXPECT_FALSE(G.addUniqueEdge(0, 1));
  EXPECT_EQ(G.numEdges(), 1u);
}

TEST(AdjacencyGraph, Predecessors) {
  AdjacencyGraph G(3);
  G.addEdge(0, 2);
  G.addEdge(1, 2);
  auto Preds = G.buildPredecessors();
  EXPECT_EQ(Preds[2], (std::vector<uint32_t>{0, 1}));
  EXPECT_TRUE(Preds[0].empty());
}

TEST(ReversePostOrder, LinearChain) {
  AdjacencyGraph G(3);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  EXPECT_EQ(reversePostOrder(G, 0), (std::vector<uint32_t>{0, 1, 2}));
}

TEST(ReversePostOrder, DiamondKeepsTopologicalOrder) {
  AdjacencyGraph G(4);
  G.addEdge(0, 1);
  G.addEdge(0, 2);
  G.addEdge(1, 3);
  G.addEdge(2, 3);
  auto RPO = reversePostOrder(G, 0);
  ASSERT_EQ(RPO.size(), 4u);
  EXPECT_EQ(RPO.front(), 0u);
  EXPECT_EQ(RPO.back(), 3u);
}

TEST(ReversePostOrder, SkipsUnreachable) {
  AdjacencyGraph G(3);
  G.addEdge(0, 1);
  EXPECT_EQ(reversePostOrder(G, 0).size(), 2u);
}

TEST(SCC, SelfLoopAndChain) {
  AdjacencyGraph G(3);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  G.addEdge(1, 1);
  SCCResult R = computeSCCs(G);
  EXPECT_EQ(R.NumComponents, 3u);
  EXPECT_FALSE(R.inCycle(0));
  EXPECT_FALSE(R.inCycle(1)); // Self loop but single member.
  EXPECT_FALSE(R.inCycle(2));
}

TEST(SCC, SimpleCycle) {
  AdjacencyGraph G(4);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  G.addEdge(2, 0);
  G.addEdge(2, 3);
  SCCResult R = computeSCCs(G);
  EXPECT_EQ(R.NumComponents, 2u);
  EXPECT_EQ(R.ComponentOf[0], R.ComponentOf[1]);
  EXPECT_EQ(R.ComponentOf[1], R.ComponentOf[2]);
  EXPECT_NE(R.ComponentOf[3], R.ComponentOf[0]);
  EXPECT_TRUE(R.inCycle(0));
  EXPECT_FALSE(R.inCycle(3));
}

TEST(SCC, ComponentIDsReverseTopological) {
  AdjacencyGraph G(4);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  G.addEdge(2, 3);
  SCCResult R = computeSCCs(G);
  // Every edge goes from a higher component id to a lower one.
  for (uint32_t N = 0; N < 4; ++N)
    for (uint32_t S : G.successors(N))
      EXPECT_GT(R.ComponentOf[N], R.ComponentOf[S]);
}

class SCCProperty : public ::testing::TestWithParam<uint32_t> {};

TEST_P(SCCProperty, MatchesMutualReachability) {
  std::mt19937 Rng(GetParam());
  AdjacencyGraph G = randomGraph(Rng, 30 + GetParam() % 20, 80);
  SCCResult R = computeSCCs(G);
  auto Reach = reachability(G);
  for (uint32_t A = 0; A < G.numNodes(); ++A)
    for (uint32_t B = 0; B < G.numNodes(); ++B) {
      bool SameComp = R.ComponentOf[A] == R.ComponentOf[B];
      bool Mutual = Reach[A][B] && Reach[B][A];
      EXPECT_EQ(SameComp, Mutual) << "nodes " << A << "," << B;
    }
  // Edges never go topologically forward in component numbering.
  for (uint32_t N = 0; N < G.numNodes(); ++N)
    for (uint32_t S : G.successors(N))
      EXPECT_GE(R.ComponentOf[N], R.ComponentOf[S]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SCCProperty, ::testing::Range(1u, 11u));

TEST(DominatorTree, DiamondIDoms) {
  AdjacencyGraph G(4);
  G.addEdge(0, 1);
  G.addEdge(0, 2);
  G.addEdge(1, 3);
  G.addEdge(2, 3);
  DominatorTree DT(G, 0);
  EXPECT_EQ(DT.immediateDominator(0), 0u);
  EXPECT_EQ(DT.immediateDominator(1), 0u);
  EXPECT_EQ(DT.immediateDominator(2), 0u);
  EXPECT_EQ(DT.immediateDominator(3), 0u); // Join dominated by the fork.
  EXPECT_TRUE(DT.dominates(0, 3));
  EXPECT_FALSE(DT.dominates(1, 3));
  EXPECT_TRUE(DT.dominates(1, 1));
}

TEST(DominatorTree, LoopBody) {
  // 0 -> 1 -> 2 -> 1, 2 -> 3
  AdjacencyGraph G(4);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  G.addEdge(2, 1);
  G.addEdge(2, 3);
  DominatorTree DT(G, 0);
  EXPECT_EQ(DT.immediateDominator(1), 0u);
  EXPECT_EQ(DT.immediateDominator(2), 1u);
  EXPECT_EQ(DT.immediateDominator(3), 2u);
}

TEST(DominatorTree, UnreachableNodes) {
  AdjacencyGraph G(3);
  G.addEdge(0, 1);
  DominatorTree DT(G, 0);
  EXPECT_FALSE(DT.isReachable(2));
  EXPECT_FALSE(DT.dominates(0, 2));
  EXPECT_FALSE(DT.dominates(2, 0));
}

class DominatorProperty : public ::testing::TestWithParam<uint32_t> {};

TEST_P(DominatorProperty, MatchesRemovalDefinition) {
  std::mt19937 Rng(GetParam() * 31 + 5);
  uint32_t N = 12 + GetParam() % 8;
  AdjacencyGraph G = randomFlowGraph(Rng, N, N);
  DominatorTree DT(G, 0);

  // Naive: A dominates B iff removing A makes B unreachable from 0.
  auto ReachableWithout = [&](uint32_t Removed) {
    std::vector<bool> Seen(N, false);
    if (Removed == 0)
      return Seen;
    std::vector<uint32_t> Stack{0};
    Seen[0] = true;
    while (!Stack.empty()) {
      uint32_t Cur = Stack.back();
      Stack.pop_back();
      for (uint32_t S : G.successors(Cur))
        if (S != Removed && !Seen[S]) {
          Seen[S] = true;
          Stack.push_back(S);
        }
    }
    return Seen;
  };

  for (uint32_t A = 0; A < N; ++A) {
    auto Reach = ReachableWithout(A);
    for (uint32_t B = 0; B < N; ++B) {
      if (B == A)
        continue;
      bool Naive = DT.isReachable(B) && !Reach[B];
      EXPECT_EQ(DT.dominates(A, B), Naive) << "A=" << A << " B=" << B;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DominatorProperty, ::testing::Range(1u, 11u));

TEST(DominanceFrontier, DiamondFrontier) {
  AdjacencyGraph G(4);
  G.addEdge(0, 1);
  G.addEdge(0, 2);
  G.addEdge(1, 3);
  G.addEdge(2, 3);
  DominatorTree DT(G, 0);
  DominanceFrontier DF(G, DT);
  EXPECT_EQ(DF.frontier(1), (std::vector<uint32_t>{3}));
  EXPECT_EQ(DF.frontier(2), (std::vector<uint32_t>{3}));
  EXPECT_TRUE(DF.frontier(0).empty()); // 0 dominates the join.
  EXPECT_TRUE(DF.frontier(3).empty());
}

TEST(DominanceFrontier, LoopHeaderInOwnFrontier) {
  AdjacencyGraph G(4);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  G.addEdge(2, 1);
  G.addEdge(2, 3);
  DominatorTree DT(G, 0);
  DominanceFrontier DF(G, DT);
  // The loop header (1) is a join of {0, 2}; 1 and 2 both have it in DF.
  EXPECT_EQ(DF.frontier(2), (std::vector<uint32_t>{1}));
  EXPECT_EQ(DF.frontier(1), (std::vector<uint32_t>{1}));
}

TEST(DominanceFrontier, IteratedFrontierClosure) {
  // Two nested diamonds: IDF of a def in the inner arm includes both joins.
  AdjacencyGraph G(7);
  G.addEdge(0, 1);
  G.addEdge(0, 2);
  G.addEdge(1, 3);
  G.addEdge(1, 4);
  G.addEdge(3, 5);
  G.addEdge(4, 5);
  G.addEdge(5, 6);
  G.addEdge(2, 6);
  DominatorTree DT(G, 0);
  DominanceFrontier DF(G, DT);
  auto IDF = DF.iteratedFrontier({3});
  EXPECT_EQ(IDF, (std::vector<uint32_t>{5, 6}));
}

class FrontierProperty : public ::testing::TestWithParam<uint32_t> {};

TEST_P(FrontierProperty, FrontierDefinition) {
  // DF(n) = { m | n dominates some pred of m, n does not strictly dom m }.
  std::mt19937 Rng(GetParam() * 101 + 7);
  uint32_t N = 10 + GetParam() % 10;
  AdjacencyGraph G = randomFlowGraph(Rng, N, N + 4);
  DominatorTree DT(G, 0);
  DominanceFrontier DF(G, DT);
  auto Preds = G.buildPredecessors();
  for (uint32_t Node = 0; Node < N; ++Node) {
    std::vector<uint32_t> Expected;
    for (uint32_t M = 0; M < N; ++M) {
      if (!DT.isReachable(M))
        continue;
      bool DomsPred = false;
      for (uint32_t P : Preds[M])
        if (DT.isReachable(P) && DT.dominates(Node, P))
          DomsPred = true;
      bool StrictlyDoms = Node != M && DT.dominates(Node, M);
      if (DomsPred && !StrictlyDoms)
        Expected.push_back(M);
    }
    EXPECT_EQ(DF.frontier(Node), Expected) << "node " << Node;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FrontierProperty, ::testing::Range(1u, 11u));
