//===- checker_test.cpp - Golden value-flow checker tests -------*- C++ -*-===//
///
/// \file
/// Hand-written programs with known bugs (and their clean twins). The
/// golden rules:
///  - every known bug site is reported by every backend (no false
///    negatives);
///  - the clean variants are silent under the flow-sensitive backends
///    (sfs, vsfs), while Andersen — conflating all stores to a slot —
///    reports them, which is exactly the precision gap the paper's
///    analyses close;
///  - the `free` instruction round-trips through the printer/parser and
///    strong-update frees kill like stores do.
/// Also unit-tests the non-fatal IR lint pass surfaced by --lint.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "checker/Checker.h"
#include "core/AnalysisRunner.h"
#include "ir/IRBuilder.h"

using namespace vsfs;
using namespace vsfs::test;
using checker::CheckKind;
using checker::Finding;

namespace {

std::vector<Finding> findingsFor(core::AnalysisContext &Ctx,
                                 const char *Analysis,
                                 uint32_t Mask = checker::AllChecks) {
  core::AnalysisRunner::RunResult R =
      core::AnalysisRunner::registry().run(Ctx, Analysis);
  EXPECT_NE(R.Analysis, nullptr) << "unknown analysis " << Analysis;
  return checker::runCheckers(Ctx.svfg(), *R.Analysis, Mask);
}

uint32_t countKind(const std::vector<Finding> &Findings, CheckKind K) {
  uint32_t N = 0;
  for (const Finding &F : Findings)
    if (F.Kind == K)
      ++N;
  return N;
}

/// The instruction that defines the variable named \p Name.
ir::InstID defSite(const ir::Module &M, const std::string &Name) {
  ir::VarID V = findVar(M, Name);
  for (ir::InstID I = 0; I < M.numInstructions(); ++I)
    if (M.inst(I).definesVar() && M.inst(I).Dst == V)
      return I;
  ADD_FAILURE() << "no definition of " << Name;
  return ir::InvalidInst;
}

} // namespace

// --- Use-after-free ------------------------------------------------------

static const char *UafBug = R"(
func @main() {
entry:
  %h = alloc [heap]
  %v = alloc
  store %v -> %h
  free %h
  %u = load %h
  ret %u
}
)";

TEST(CheckerUaf, BugReportedByEveryBackend) {
  auto Ctx = buildFromText(UafBug);
  ASSERT_TRUE(Ctx);
  ir::InstID Sink = defSite(Ctx->module(), "u");
  for (const char *A : {"ander", "iter", "sfs", "vsfs"}) {
    auto Findings = findingsFor(*Ctx, A);
    ASSERT_EQ(countKind(Findings, CheckKind::UseAfterFree), 1u) << A;
    for (const Finding &F : Findings)
      if (F.Kind == CheckKind::UseAfterFree) {
        EXPECT_EQ(F.Sink, Sink) << A;
      }
  }
}

// The slot pattern: a singleton cell holds A, A is freed, the cell is
// strongly updated to B, and the reloaded pointer is dereferenced. Safe at
// runtime; only a flow-sensitive backend proves it.
static const char *UafClean = R"(
func @main() {
entry:
  %slot = alloc
  %a = alloc [heap]
  %b = alloc [heap]
  %v = alloc
  store %v -> %a
  store %v -> %b
  store %a -> %slot
  %pa = load %slot
  free %pa
  store %b -> %slot
  %pb = load %slot
  %u = load %pb
  ret %u
}
)";

TEST(CheckerUaf, CleanVariantSilentFlowSensitiveOnly) {
  auto Ctx = buildFromText(UafClean);
  ASSERT_TRUE(Ctx);
  for (const char *A : {"sfs", "vsfs"})
    EXPECT_EQ(countKind(findingsFor(*Ctx, A), CheckKind::UseAfterFree), 0u)
        << A;
  // Andersen conflates both stores into the slot and reports.
  EXPECT_GE(countKind(findingsFor(*Ctx, "ander"), CheckKind::UseAfterFree),
            1u);
}

// --- Double free ---------------------------------------------------------

static const char *DoubleFreeBug = R"(
func @main() {
entry:
  %h = alloc [heap]
  %v = alloc
  store %v -> %h
  free %h
  free %h
  ret %v
}
)";

TEST(CheckerDoubleFree, BugReportedByEveryBackend) {
  auto Ctx = buildFromText(DoubleFreeBug);
  ASSERT_TRUE(Ctx);
  for (const char *A : {"ander", "iter", "sfs", "vsfs"})
    EXPECT_EQ(countKind(findingsFor(*Ctx, A), CheckKind::DoubleFree), 1u)
        << A;
}

static const char *SingleFreeClean = R"(
func @main() {
entry:
  %h = alloc [heap]
  %v = alloc
  store %v -> %h
  free %h
  ret %v
}
)";

TEST(CheckerDoubleFree, SingleFreeIsSilent) {
  auto Ctx = buildFromText(SingleFreeClean);
  ASSERT_TRUE(Ctx);
  for (const char *A : {"ander", "sfs", "vsfs"}) {
    auto Findings = findingsFor(*Ctx, A);
    EXPECT_EQ(countKind(Findings, CheckKind::DoubleFree), 0u) << A;
    EXPECT_EQ(countKind(Findings, CheckKind::Leak), 0u) << A;
  }
}

// --- Null dereference ----------------------------------------------------

static const char *NullBug = R"(
func @main() {
entry:
  %c = alloc
  %p = load %c
  %x = load %p
  ret %x
}
)";

TEST(CheckerNull, UninitialisedCellReportedByEveryBackend) {
  auto Ctx = buildFromText(NullBug);
  ASSERT_TRUE(Ctx);
  ir::InstID Sink = defSite(Ctx->module(), "x");
  for (const char *A : {"ander", "iter", "sfs", "vsfs"}) {
    auto Findings = findingsFor(*Ctx, A, checker::checkBit(CheckKind::NullDeref));
    ASSERT_EQ(Findings.size(), 1u) << A;
    EXPECT_EQ(Findings[0].Sink, Sink) << A;
  }
}

// The slot pattern again: the slot first points at never-initialised E,
// then is strongly updated to initialised F before the dereference.
static const char *NullClean = R"(
func @main() {
entry:
  %slot = alloc
  %e = alloc
  %f = alloc
  %v = alloc
  store %v -> %f
  store %e -> %slot
  store %f -> %slot
  %pf = load %slot
  %val = load %pf
  store %v -> %val
  ret %val
}
)";

TEST(CheckerNull, CleanVariantSilentFlowSensitiveOnly) {
  auto Ctx = buildFromText(NullClean);
  ASSERT_TRUE(Ctx);
  for (const char *A : {"sfs", "vsfs"})
    EXPECT_EQ(countKind(findingsFor(*Ctx, A), CheckKind::NullDeref), 0u)
        << A;
  EXPECT_GE(countKind(findingsFor(*Ctx, "ander"), CheckKind::NullDeref), 1u);
}

// --- Leak ----------------------------------------------------------------

static const char *LeakBug = R"(
func @main() {
entry:
  %h = alloc [heap]
  %k = alloc [heap]
  %v = alloc
  store %v -> %h
  store %v -> %k
  free %k
  ret %v
}
)";

TEST(CheckerLeak, UnfreedHeapAllocationReported) {
  auto Ctx = buildFromText(LeakBug);
  ASSERT_TRUE(Ctx);
  ir::InstID Sink = defSite(Ctx->module(), "h");
  for (const char *A : {"ander", "sfs", "vsfs"}) {
    auto Findings = findingsFor(*Ctx, A, checker::checkBit(CheckKind::Leak));
    ASSERT_EQ(Findings.size(), 1u) << A;
    EXPECT_EQ(Findings[0].Sink, Sink) << A;
  }
}

// --- The free instruction itself -----------------------------------------

TEST(FreeInst, RoundTripsThroughPrinterAndParser) {
  auto Ctx = buildFromText(UafBug);
  ASSERT_TRUE(Ctx);
  std::string Printed = ir::printModule(Ctx->module());
  EXPECT_NE(Printed.find("free %h"), std::string::npos) << Printed;
  // Reparsing re-synthesises the exit-unification block, so textual
  // identity is out of reach (same for every printed module); compare
  // semantics instead, like roundtrip_test: the free must survive and the
  // analysis results must match.
  auto Ctx2 = buildFromText(Printed.c_str());
  ASSERT_TRUE(Ctx2);
  EXPECT_NE(ir::printModule(Ctx2->module()).find("free %h"),
            std::string::npos);
  for (const char *A : {"sfs", "vsfs"}) {
    core::AnalysisRunner::RunResult R1 =
        core::AnalysisRunner::registry().run(*Ctx, A);
    core::AnalysisRunner::RunResult R2 =
        core::AnalysisRunner::registry().run(*Ctx2, A);
    EXPECT_EQ(pointeeNames(Ctx->module(),
                           R1.Analysis->ptsOfVar(findVar(Ctx->module(), "u"))),
              pointeeNames(Ctx2->module(), R2.Analysis->ptsOfVar(
                                               findVar(Ctx2->module(), "u"))))
        << A;
  }
}

TEST(FreeInst, StrongUpdateFreeKillsSingletonCell) {
  // free of a singleton stack slot kills its contents, exactly like a
  // strong-update store with nothing stored.
  auto Ctx = buildFromText(R"(
func @main() {
entry:
  %s = alloc
  %p = alloc
  store %p -> %s
  free %s
  %x = load %s
  ret %x
}
)");
  ASSERT_TRUE(Ctx);
  for (const char *A : {"iter", "sfs", "vsfs"}) {
    core::AnalysisRunner::RunResult R =
        core::AnalysisRunner::registry().run(*Ctx, A);
    EXPECT_TRUE(R.Analysis->ptsOfVar(findVar(Ctx->module(), "x")).empty())
        << A << ": strong-update free must kill the cell";
  }
  // Andersen has no kill: the load still sees the stored pointer.
  core::AnalysisRunner::RunResult R =
      core::AnalysisRunner::registry().run(*Ctx, "ander");
  EXPECT_EQ(pointeeNames(Ctx->module(),
                         R.Analysis->ptsOfVar(findVar(Ctx->module(), "x"))),
            (std::set<std::string>{"p.obj"}));
}

// --- Check-kind spec parsing --------------------------------------------

TEST(CheckSpec, ParsesNamesAndRejectsJunk) {
  uint32_t Mask = 0;
  EXPECT_TRUE(checker::parseCheckKinds("uaf", Mask));
  EXPECT_EQ(Mask, checker::checkBit(CheckKind::UseAfterFree));
  EXPECT_TRUE(checker::parseCheckKinds("uaf,leak", Mask));
  EXPECT_EQ(Mask, checker::checkBit(CheckKind::UseAfterFree) |
                      checker::checkBit(CheckKind::Leak));
  EXPECT_TRUE(checker::parseCheckKinds("all", Mask));
  EXPECT_EQ(Mask, checker::AllChecks);
  EXPECT_FALSE(checker::parseCheckKinds("bogus", Mask));
  EXPECT_FALSE(checker::parseCheckKinds("", Mask));
}

// --- Lint ---------------------------------------------------------------

TEST(Lint, FlagsUnreachableBlockAndDeadDefinition) {
  auto Ctx = buildFromText(R"(
func @main(%p) {
entry:
  %dead = alloc
  ret %p
island:
  ret %p
}
)");
  ASSERT_TRUE(Ctx);
  auto Warnings = ir::lintModule(Ctx->module());
  bool SawUnreachable = false, SawDead = false;
  for (const std::string &W : Warnings) {
    if (W.find("island") != std::string::npos &&
        W.find("unreachable") != std::string::npos)
      SawUnreachable = true;
    if (W.find("%dead") != std::string::npos &&
        W.find("never used") != std::string::npos)
      SawDead = true;
  }
  EXPECT_TRUE(SawUnreachable) << "missing unreachable-block warning";
  EXPECT_TRUE(SawDead) << "missing dead-definition warning";
}

TEST(Lint, FlagsLoadThroughNeverDefinedPointer) {
  // Built by hand: the verifier rejects uses of never-defined variables,
  // but lint must still diagnose them on unverified modules.
  ir::Module M;
  ir::IRBuilder B(M);
  ir::FunID F = B.startFunction("main", {});
  ir::VarID Ghost = M.symbols().makeVar("ghost", F);
  ir::VarID X = B.load("x", Ghost);
  B.ret(X);
  B.finishFunction();

  auto Warnings = ir::lintModule(M);
  bool Saw = false;
  for (const std::string &W : Warnings)
    if (W.find("never-defined") != std::string::npos &&
        W.find("%ghost") != std::string::npos)
      Saw = true;
  EXPECT_TRUE(Saw) << "missing never-defined-pointer warning";
}

TEST(Lint, CleanProgramHasNoWarnings) {
  // The cell is stored and loaded, and its accesses span two blocks, so
  // neither of the cell-level lints applies.
  auto Ctx = buildFromText(R"(
func @main(%p) {
entry:
  %a = alloc
  store %p -> %a
  br next
next:
  %b = load %a
  ret %b
}
)");
  ASSERT_TRUE(Ctx);
  auto Warnings = ir::lintModule(Ctx->module());
  EXPECT_TRUE(Warnings.empty())
      << "unexpected: " << (Warnings.empty() ? "" : Warnings.front());
}
